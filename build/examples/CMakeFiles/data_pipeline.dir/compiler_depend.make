# Empty compiler generated dependencies file for data_pipeline.
# This may be replaced when dependencies are built.
