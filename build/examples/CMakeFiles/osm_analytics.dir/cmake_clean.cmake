file(REMOVE_RECURSE
  "CMakeFiles/osm_analytics.dir/osm_analytics.cpp.o"
  "CMakeFiles/osm_analytics.dir/osm_analytics.cpp.o.d"
  "osm_analytics"
  "osm_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
