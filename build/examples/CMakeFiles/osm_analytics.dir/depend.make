# Empty dependencies file for osm_analytics.
# This may be replaced when dependencies are built.
