file(REMOVE_RECURSE
  "CMakeFiles/heatmap.dir/heatmap.cpp.o"
  "CMakeFiles/heatmap.dir/heatmap.cpp.o.d"
  "heatmap"
  "heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
