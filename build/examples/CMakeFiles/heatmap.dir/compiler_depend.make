# Empty compiler generated dependencies file for heatmap.
# This may be replaced when dependencies are built.
