file(REMOVE_RECURSE
  "CMakeFiles/shadoop_shell.dir/shadoop_shell.cpp.o"
  "CMakeFiles/shadoop_shell.dir/shadoop_shell.cpp.o.d"
  "shadoop_shell"
  "shadoop_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadoop_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
