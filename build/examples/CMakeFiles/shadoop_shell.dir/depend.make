# Empty dependencies file for shadoop_shell.
# This may be replaced when dependencies are built.
