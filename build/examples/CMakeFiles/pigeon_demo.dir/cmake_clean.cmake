file(REMOVE_RECURSE
  "CMakeFiles/pigeon_demo.dir/pigeon_demo.cpp.o"
  "CMakeFiles/pigeon_demo.dir/pigeon_demo.cpp.o.d"
  "pigeon_demo"
  "pigeon_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
