# Empty compiler generated dependencies file for pigeon_demo.
# This may be replaced when dependencies are built.
