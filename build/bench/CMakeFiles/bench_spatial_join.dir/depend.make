# Empty dependencies file for bench_spatial_join.
# This may be replaced when dependencies are built.
