# Empty dependencies file for bench_cg_ops.
# This may be replaced when dependencies are built.
