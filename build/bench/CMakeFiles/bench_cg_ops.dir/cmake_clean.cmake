file(REMOVE_RECURSE
  "CMakeFiles/bench_cg_ops.dir/bench_cg_ops.cc.o"
  "CMakeFiles/bench_cg_ops.dir/bench_cg_ops.cc.o.d"
  "bench_cg_ops"
  "bench_cg_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cg_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
