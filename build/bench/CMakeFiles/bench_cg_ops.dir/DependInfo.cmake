
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_cg_ops.cc" "bench/CMakeFiles/bench_cg_ops.dir/bench_cg_ops.cc.o" "gcc" "bench/CMakeFiles/bench_cg_ops.dir/bench_cg_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pigeon/CMakeFiles/shadoop_pigeon.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/shadoop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/shadoop_index.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/shadoop_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/shadoop_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/shadoop_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/shadoop_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/shadoop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
