file(REMOVE_RECURSE
  "CMakeFiles/bench_index_quality.dir/bench_index_quality.cc.o"
  "CMakeFiles/bench_index_quality.dir/bench_index_quality.cc.o.d"
  "bench_index_quality"
  "bench_index_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
