# Empty dependencies file for bench_index_quality.
# This may be replaced when dependencies are built.
