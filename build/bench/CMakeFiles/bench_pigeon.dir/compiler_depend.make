# Empty compiler generated dependencies file for bench_pigeon.
# This may be replaced when dependencies are built.
