file(REMOVE_RECURSE
  "CMakeFiles/bench_pigeon.dir/bench_pigeon.cc.o"
  "CMakeFiles/bench_pigeon.dir/bench_pigeon.cc.o.d"
  "bench_pigeon"
  "bench_pigeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pigeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
