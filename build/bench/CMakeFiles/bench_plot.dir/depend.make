# Empty dependencies file for bench_plot.
# This may be replaced when dependencies are built.
