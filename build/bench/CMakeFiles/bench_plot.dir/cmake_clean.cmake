file(REMOVE_RECURSE
  "CMakeFiles/bench_plot.dir/bench_plot.cc.o"
  "CMakeFiles/bench_plot.dir/bench_plot.cc.o.d"
  "bench_plot"
  "bench_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
