# Empty dependencies file for bench_knn_join.
# This may be replaced when dependencies are built.
