file(REMOVE_RECURSE
  "CMakeFiles/bench_knn_join.dir/bench_knn_join.cc.o"
  "CMakeFiles/bench_knn_join.dir/bench_knn_join.cc.o.d"
  "bench_knn_join"
  "bench_knn_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_knn_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
