# Empty dependencies file for shadoop_viz.
# This may be replaced when dependencies are built.
