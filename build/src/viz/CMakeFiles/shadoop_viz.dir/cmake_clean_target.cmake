file(REMOVE_RECURSE
  "libshadoop_viz.a"
)
