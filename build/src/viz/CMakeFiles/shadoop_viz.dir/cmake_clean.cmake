file(REMOVE_RECURSE
  "CMakeFiles/shadoop_viz.dir/canvas.cc.o"
  "CMakeFiles/shadoop_viz.dir/canvas.cc.o.d"
  "CMakeFiles/shadoop_viz.dir/plot.cc.o"
  "CMakeFiles/shadoop_viz.dir/plot.cc.o.d"
  "libshadoop_viz.a"
  "libshadoop_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadoop_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
