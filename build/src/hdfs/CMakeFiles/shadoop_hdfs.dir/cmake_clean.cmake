file(REMOVE_RECURSE
  "CMakeFiles/shadoop_hdfs.dir/file_system.cc.o"
  "CMakeFiles/shadoop_hdfs.dir/file_system.cc.o.d"
  "libshadoop_hdfs.a"
  "libshadoop_hdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadoop_hdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
