file(REMOVE_RECURSE
  "libshadoop_hdfs.a"
)
