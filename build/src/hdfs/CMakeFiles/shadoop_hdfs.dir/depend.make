# Empty dependencies file for shadoop_hdfs.
# This may be replaced when dependencies are built.
