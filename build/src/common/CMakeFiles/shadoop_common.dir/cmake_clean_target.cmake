file(REMOVE_RECURSE
  "libshadoop_common.a"
)
