# Empty dependencies file for shadoop_common.
# This may be replaced when dependencies are built.
