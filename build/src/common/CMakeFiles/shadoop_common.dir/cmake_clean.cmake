file(REMOVE_RECURSE
  "CMakeFiles/shadoop_common.dir/logging.cc.o"
  "CMakeFiles/shadoop_common.dir/logging.cc.o.d"
  "CMakeFiles/shadoop_common.dir/random.cc.o"
  "CMakeFiles/shadoop_common.dir/random.cc.o.d"
  "CMakeFiles/shadoop_common.dir/status.cc.o"
  "CMakeFiles/shadoop_common.dir/status.cc.o.d"
  "CMakeFiles/shadoop_common.dir/string_util.cc.o"
  "CMakeFiles/shadoop_common.dir/string_util.cc.o.d"
  "libshadoop_common.a"
  "libshadoop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadoop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
