file(REMOVE_RECURSE
  "libshadoop_index.a"
)
