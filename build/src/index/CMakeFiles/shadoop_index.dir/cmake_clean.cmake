file(REMOVE_RECURSE
  "CMakeFiles/shadoop_index.dir/curve_partitioner.cc.o"
  "CMakeFiles/shadoop_index.dir/curve_partitioner.cc.o.d"
  "CMakeFiles/shadoop_index.dir/global_index.cc.o"
  "CMakeFiles/shadoop_index.dir/global_index.cc.o.d"
  "CMakeFiles/shadoop_index.dir/grid_partitioner.cc.o"
  "CMakeFiles/shadoop_index.dir/grid_partitioner.cc.o.d"
  "CMakeFiles/shadoop_index.dir/index_builder.cc.o"
  "CMakeFiles/shadoop_index.dir/index_builder.cc.o.d"
  "CMakeFiles/shadoop_index.dir/kdtree_partitioner.cc.o"
  "CMakeFiles/shadoop_index.dir/kdtree_partitioner.cc.o.d"
  "CMakeFiles/shadoop_index.dir/partition.cc.o"
  "CMakeFiles/shadoop_index.dir/partition.cc.o.d"
  "CMakeFiles/shadoop_index.dir/partitioner.cc.o"
  "CMakeFiles/shadoop_index.dir/partitioner.cc.o.d"
  "CMakeFiles/shadoop_index.dir/quadtree_partitioner.cc.o"
  "CMakeFiles/shadoop_index.dir/quadtree_partitioner.cc.o.d"
  "CMakeFiles/shadoop_index.dir/record_shape.cc.o"
  "CMakeFiles/shadoop_index.dir/record_shape.cc.o.d"
  "CMakeFiles/shadoop_index.dir/rtree.cc.o"
  "CMakeFiles/shadoop_index.dir/rtree.cc.o.d"
  "CMakeFiles/shadoop_index.dir/space_filling_curve.cc.o"
  "CMakeFiles/shadoop_index.dir/space_filling_curve.cc.o.d"
  "CMakeFiles/shadoop_index.dir/str_partitioner.cc.o"
  "CMakeFiles/shadoop_index.dir/str_partitioner.cc.o.d"
  "libshadoop_index.a"
  "libshadoop_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadoop_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
