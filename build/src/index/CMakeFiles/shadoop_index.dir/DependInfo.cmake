
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/curve_partitioner.cc" "src/index/CMakeFiles/shadoop_index.dir/curve_partitioner.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/curve_partitioner.cc.o.d"
  "/root/repo/src/index/global_index.cc" "src/index/CMakeFiles/shadoop_index.dir/global_index.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/global_index.cc.o.d"
  "/root/repo/src/index/grid_partitioner.cc" "src/index/CMakeFiles/shadoop_index.dir/grid_partitioner.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/grid_partitioner.cc.o.d"
  "/root/repo/src/index/index_builder.cc" "src/index/CMakeFiles/shadoop_index.dir/index_builder.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/index_builder.cc.o.d"
  "/root/repo/src/index/kdtree_partitioner.cc" "src/index/CMakeFiles/shadoop_index.dir/kdtree_partitioner.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/kdtree_partitioner.cc.o.d"
  "/root/repo/src/index/partition.cc" "src/index/CMakeFiles/shadoop_index.dir/partition.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/partition.cc.o.d"
  "/root/repo/src/index/partitioner.cc" "src/index/CMakeFiles/shadoop_index.dir/partitioner.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/partitioner.cc.o.d"
  "/root/repo/src/index/quadtree_partitioner.cc" "src/index/CMakeFiles/shadoop_index.dir/quadtree_partitioner.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/quadtree_partitioner.cc.o.d"
  "/root/repo/src/index/record_shape.cc" "src/index/CMakeFiles/shadoop_index.dir/record_shape.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/record_shape.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/index/CMakeFiles/shadoop_index.dir/rtree.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/rtree.cc.o.d"
  "/root/repo/src/index/space_filling_curve.cc" "src/index/CMakeFiles/shadoop_index.dir/space_filling_curve.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/space_filling_curve.cc.o.d"
  "/root/repo/src/index/str_partitioner.cc" "src/index/CMakeFiles/shadoop_index.dir/str_partitioner.cc.o" "gcc" "src/index/CMakeFiles/shadoop_index.dir/str_partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shadoop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/shadoop_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/shadoop_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/shadoop_mapreduce.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
