# Empty dependencies file for shadoop_index.
# This may be replaced when dependencies are built.
