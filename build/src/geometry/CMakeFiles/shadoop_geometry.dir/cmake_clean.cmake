file(REMOVE_RECURSE
  "CMakeFiles/shadoop_geometry.dir/closest_pair.cc.o"
  "CMakeFiles/shadoop_geometry.dir/closest_pair.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/convex_hull.cc.o"
  "CMakeFiles/shadoop_geometry.dir/convex_hull.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/envelope.cc.o"
  "CMakeFiles/shadoop_geometry.dir/envelope.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/farthest_pair.cc.o"
  "CMakeFiles/shadoop_geometry.dir/farthest_pair.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/polygon.cc.o"
  "CMakeFiles/shadoop_geometry.dir/polygon.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/polygon_clip.cc.o"
  "CMakeFiles/shadoop_geometry.dir/polygon_clip.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/polygon_union.cc.o"
  "CMakeFiles/shadoop_geometry.dir/polygon_union.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/segment.cc.o"
  "CMakeFiles/shadoop_geometry.dir/segment.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/simplify.cc.o"
  "CMakeFiles/shadoop_geometry.dir/simplify.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/skyline.cc.o"
  "CMakeFiles/shadoop_geometry.dir/skyline.cc.o.d"
  "CMakeFiles/shadoop_geometry.dir/wkt.cc.o"
  "CMakeFiles/shadoop_geometry.dir/wkt.cc.o.d"
  "libshadoop_geometry.a"
  "libshadoop_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadoop_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
