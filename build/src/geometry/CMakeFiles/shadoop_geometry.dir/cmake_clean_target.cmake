file(REMOVE_RECURSE
  "libshadoop_geometry.a"
)
