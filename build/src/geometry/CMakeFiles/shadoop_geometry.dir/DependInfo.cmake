
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/closest_pair.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/closest_pair.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/closest_pair.cc.o.d"
  "/root/repo/src/geometry/convex_hull.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/convex_hull.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/convex_hull.cc.o.d"
  "/root/repo/src/geometry/envelope.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/envelope.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/envelope.cc.o.d"
  "/root/repo/src/geometry/farthest_pair.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/farthest_pair.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/farthest_pair.cc.o.d"
  "/root/repo/src/geometry/polygon.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/polygon.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/polygon.cc.o.d"
  "/root/repo/src/geometry/polygon_clip.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/polygon_clip.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/polygon_clip.cc.o.d"
  "/root/repo/src/geometry/polygon_union.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/polygon_union.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/polygon_union.cc.o.d"
  "/root/repo/src/geometry/segment.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/segment.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/segment.cc.o.d"
  "/root/repo/src/geometry/simplify.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/simplify.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/simplify.cc.o.d"
  "/root/repo/src/geometry/skyline.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/skyline.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/skyline.cc.o.d"
  "/root/repo/src/geometry/wkt.cc" "src/geometry/CMakeFiles/shadoop_geometry.dir/wkt.cc.o" "gcc" "src/geometry/CMakeFiles/shadoop_geometry.dir/wkt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shadoop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
