# Empty dependencies file for shadoop_geometry.
# This may be replaced when dependencies are built.
