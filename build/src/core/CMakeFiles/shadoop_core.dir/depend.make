# Empty dependencies file for shadoop_core.
# This may be replaced when dependencies are built.
