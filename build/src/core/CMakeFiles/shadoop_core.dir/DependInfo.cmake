
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate_op.cc" "src/core/CMakeFiles/shadoop_core.dir/aggregate_op.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/aggregate_op.cc.o.d"
  "/root/repo/src/core/closest_pair_op.cc" "src/core/CMakeFiles/shadoop_core.dir/closest_pair_op.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/closest_pair_op.cc.o.d"
  "/root/repo/src/core/convex_hull_op.cc" "src/core/CMakeFiles/shadoop_core.dir/convex_hull_op.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/convex_hull_op.cc.o.d"
  "/root/repo/src/core/farthest_pair_op.cc" "src/core/CMakeFiles/shadoop_core.dir/farthest_pair_op.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/farthest_pair_op.cc.o.d"
  "/root/repo/src/core/file_mbr.cc" "src/core/CMakeFiles/shadoop_core.dir/file_mbr.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/file_mbr.cc.o.d"
  "/root/repo/src/core/histogram_op.cc" "src/core/CMakeFiles/shadoop_core.dir/histogram_op.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/histogram_op.cc.o.d"
  "/root/repo/src/core/knn.cc" "src/core/CMakeFiles/shadoop_core.dir/knn.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/knn.cc.o.d"
  "/root/repo/src/core/knn_join.cc" "src/core/CMakeFiles/shadoop_core.dir/knn_join.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/knn_join.cc.o.d"
  "/root/repo/src/core/local_join.cc" "src/core/CMakeFiles/shadoop_core.dir/local_join.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/local_join.cc.o.d"
  "/root/repo/src/core/operation_skeleton.cc" "src/core/CMakeFiles/shadoop_core.dir/operation_skeleton.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/operation_skeleton.cc.o.d"
  "/root/repo/src/core/range_query.cc" "src/core/CMakeFiles/shadoop_core.dir/range_query.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/range_query.cc.o.d"
  "/root/repo/src/core/skyline_op.cc" "src/core/CMakeFiles/shadoop_core.dir/skyline_op.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/skyline_op.cc.o.d"
  "/root/repo/src/core/spatial_file_splitter.cc" "src/core/CMakeFiles/shadoop_core.dir/spatial_file_splitter.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/spatial_file_splitter.cc.o.d"
  "/root/repo/src/core/spatial_join.cc" "src/core/CMakeFiles/shadoop_core.dir/spatial_join.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/spatial_join.cc.o.d"
  "/root/repo/src/core/spatial_record_reader.cc" "src/core/CMakeFiles/shadoop_core.dir/spatial_record_reader.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/spatial_record_reader.cc.o.d"
  "/root/repo/src/core/union_op.cc" "src/core/CMakeFiles/shadoop_core.dir/union_op.cc.o" "gcc" "src/core/CMakeFiles/shadoop_core.dir/union_op.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/shadoop_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/shadoop_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/hdfs/CMakeFiles/shadoop_hdfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/shadoop_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/shadoop_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
