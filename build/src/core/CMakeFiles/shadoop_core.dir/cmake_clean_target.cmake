file(REMOVE_RECURSE
  "libshadoop_core.a"
)
