# Empty dependencies file for shadoop_mapreduce.
# This may be replaced when dependencies are built.
