file(REMOVE_RECURSE
  "libshadoop_mapreduce.a"
)
