file(REMOVE_RECURSE
  "CMakeFiles/shadoop_mapreduce.dir/cluster.cc.o"
  "CMakeFiles/shadoop_mapreduce.dir/cluster.cc.o.d"
  "CMakeFiles/shadoop_mapreduce.dir/job_runner.cc.o"
  "CMakeFiles/shadoop_mapreduce.dir/job_runner.cc.o.d"
  "libshadoop_mapreduce.a"
  "libshadoop_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadoop_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
