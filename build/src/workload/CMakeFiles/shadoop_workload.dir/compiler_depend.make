# Empty compiler generated dependencies file for shadoop_workload.
# This may be replaced when dependencies are built.
