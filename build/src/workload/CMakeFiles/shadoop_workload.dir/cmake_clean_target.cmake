file(REMOVE_RECURSE
  "libshadoop_workload.a"
)
