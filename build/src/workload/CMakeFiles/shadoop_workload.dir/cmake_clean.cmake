file(REMOVE_RECURSE
  "CMakeFiles/shadoop_workload.dir/generators.cc.o"
  "CMakeFiles/shadoop_workload.dir/generators.cc.o.d"
  "CMakeFiles/shadoop_workload.dir/import.cc.o"
  "CMakeFiles/shadoop_workload.dir/import.cc.o.d"
  "libshadoop_workload.a"
  "libshadoop_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadoop_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
