file(REMOVE_RECURSE
  "CMakeFiles/shadoop_pigeon.dir/executor.cc.o"
  "CMakeFiles/shadoop_pigeon.dir/executor.cc.o.d"
  "CMakeFiles/shadoop_pigeon.dir/lexer.cc.o"
  "CMakeFiles/shadoop_pigeon.dir/lexer.cc.o.d"
  "CMakeFiles/shadoop_pigeon.dir/parser.cc.o"
  "CMakeFiles/shadoop_pigeon.dir/parser.cc.o.d"
  "libshadoop_pigeon.a"
  "libshadoop_pigeon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shadoop_pigeon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
