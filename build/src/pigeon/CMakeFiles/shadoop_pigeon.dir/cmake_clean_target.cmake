file(REMOVE_RECURSE
  "libshadoop_pigeon.a"
)
