# Empty dependencies file for shadoop_pigeon.
# This may be replaced when dependencies are built.
