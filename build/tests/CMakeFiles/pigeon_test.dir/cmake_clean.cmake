file(REMOVE_RECURSE
  "CMakeFiles/pigeon_test.dir/pigeon_test.cc.o"
  "CMakeFiles/pigeon_test.dir/pigeon_test.cc.o.d"
  "pigeon_test"
  "pigeon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pigeon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
