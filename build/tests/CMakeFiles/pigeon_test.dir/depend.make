# Empty dependencies file for pigeon_test.
# This may be replaced when dependencies are built.
