# Empty dependencies file for operation_skeleton_test.
# This may be replaced when dependencies are built.
