file(REMOVE_RECURSE
  "CMakeFiles/operation_skeleton_test.dir/operation_skeleton_test.cc.o"
  "CMakeFiles/operation_skeleton_test.dir/operation_skeleton_test.cc.o.d"
  "operation_skeleton_test"
  "operation_skeleton_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operation_skeleton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
