file(REMOVE_RECURSE
  "CMakeFiles/cg_ops_test.dir/cg_ops_test.cc.o"
  "CMakeFiles/cg_ops_test.dir/cg_ops_test.cc.o.d"
  "cg_ops_test"
  "cg_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
