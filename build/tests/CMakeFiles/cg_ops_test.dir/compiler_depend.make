# Empty compiler generated dependencies file for cg_ops_test.
# This may be replaced when dependencies are built.
