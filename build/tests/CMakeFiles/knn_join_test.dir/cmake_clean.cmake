file(REMOVE_RECURSE
  "CMakeFiles/knn_join_test.dir/knn_join_test.cc.o"
  "CMakeFiles/knn_join_test.dir/knn_join_test.cc.o.d"
  "knn_join_test"
  "knn_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
