# Empty dependencies file for knn_join_test.
# This may be replaced when dependencies are built.
