file(REMOVE_RECURSE
  "CMakeFiles/cg_algorithms_test.dir/cg_algorithms_test.cc.o"
  "CMakeFiles/cg_algorithms_test.dir/cg_algorithms_test.cc.o.d"
  "cg_algorithms_test"
  "cg_algorithms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
