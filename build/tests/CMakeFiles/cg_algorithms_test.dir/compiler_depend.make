# Empty compiler generated dependencies file for cg_algorithms_test.
# This may be replaced when dependencies are built.
