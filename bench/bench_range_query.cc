// Experiment E3 — range query: Hadoop full scan vs SpatialHadoop indexed,
// sweeping the query area from 0.01% to 100% of the space. Regenerates
// the range-query figure. Expected shape: the indexed query cost is
// roughly flat and far below the scan at small areas (it touches O(1)
// partitions), and converges to the scan as the query covers the file —
// the crossover the paper reports.

#include "core/range_query.h"

#include "bench_common.h"

namespace shadoop::bench {
namespace {

constexpr size_t kCount = 500000;

struct SharedData {
  SharedData() : cluster() {
    WritePoints(&cluster.fs, "/pts", kCount,
                workload::Distribution::kUniform, 42);
    file = BuildIndex(&cluster.runner, "/pts", "/pts.str",
                      index::PartitionScheme::kStr);
    space = file.global_index.Bounds();
  }
  BenchCluster cluster;
  index::SpatialFileInfo file;
  Envelope space;
};

SharedData& Shared() {
  static SharedData* data = new SharedData();
  return *data;
}

Envelope QueryForAreaPermyriad(const Envelope& space, int64_t permyriad) {
  // A square query of the given area fraction, anchored off-center so it
  // does not straddle every partition boundary symmetrically.
  const double frac = permyriad / 10000.0;
  const double side = std::sqrt(frac);
  const double w = space.Width() * side;
  const double h = space.Height() * side;
  const double x =
      space.min_x() + (space.Width() - w) * 0.37;
  const double y = space.min_y() + (space.Height() - h) * 0.59;
  return Envelope(x, y, x + w, y + h);
}

void BM_RangeHadoop(benchmark::State& state) {
  SharedData& data = Shared();
  const Envelope query = QueryForAreaPermyriad(data.space, state.range(0));
  for (auto _ : state) {
    core::OpStats stats;
    auto result = core::RangeQueryHadoop(&data.cluster.runner, "/pts",
                                         index::ShapeType::kPoint, query,
                                         &stats)
                      .ValueOrDie();
    state.counters["results"] = static_cast<double>(result.size());
    ReportStats(state, stats);
  }
}

void BM_RangeSpatial(benchmark::State& state) {
  SharedData& data = Shared();
  const Envelope query = QueryForAreaPermyriad(data.space, state.range(0));
  for (auto _ : state) {
    core::OpStats stats;
    auto result =
        core::RangeQuerySpatial(&data.cluster.runner, data.file, query, &stats)
            .ValueOrDie();
    state.counters["results"] = static_cast<double>(result.size());
    ReportStats(state, stats);
  }
}

// Query area in 1/10000 of the space: 0.01% .. 100%.
const std::vector<int64_t> kAreas = {1, 10, 100, 500, 2000, 10000};

BENCHMARK(BM_RangeHadoop)
    ->ArgsProduct({{kAreas}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeSpatial)
    ->ArgsProduct({{kAreas}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
