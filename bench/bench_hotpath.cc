// Wall-clock microbenchmarks for the zero-copy record fast path: index
// build, range query over a local-indexed file, and the polygon
// distributed join. Unlike the simulated-cost suite (bench_*.cc on
// google-benchmark), this harness measures *real* wall time, because the
// zero-copy work changes host performance, not the simulated cost model.
//
// Usage:
//   bench_hotpath --label <name> [--out results.json] [--reps N]
//   bench_hotpath --merge baseline.json current.json
//
// The merge mode pairs benchmarks by name, computes speedups, prints the
// combined report (scripts/bench.sh redirects it to BENCH_pr2.json), and
// exits non-zero if the parse-once invariant failed: in a tree with
// parse counters, each benchmark asserts the number of geometry parses
// never exceeds its record-visit bound. The harness intentionally
// compiles against trees that predate the counters (the baseline build
// in scripts/bench.sh), reporting parses as -1 there.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/range_query.h"
#include "core/spatial_join.h"
#include "index/index_builder.h"
#include "index/record_shape.h"
#include "mapreduce/job_runner.h"
#include "workload/generators.h"

namespace shadoop {
namespace {

constexpr size_t kIndexBuildPoints = 250000;
constexpr size_t kRangeQueryPoints = 200000;
constexpr int kRangeQueries = 48;
constexpr size_t kJoinPolygonsA = 14000;
constexpr size_t kJoinPolygonsB = 10000;
// Dense overlay: each polygon intersects several partners, so the join's
// refinement step visits every record many times — the regime the
// parse-once columns are built for.
constexpr double kJoinRadiusFraction = 0.03;

struct BenchResult {
  std::string name;
  double wall_ms = 0;           // Best of `reps` repetitions.
  int64_t records = 0;          // Record-visit bound for the run.
  int64_t parses = -1;          // Geometry parses (-1: not measured).
  int64_t checksum = 0;         // Result size, guards against dead code.
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int64_t ParseDelta(uint64_t before) {
#ifdef SHADOOP_HAS_PARSE_COUNTERS
  return static_cast<int64_t>(index::GeometryParseCount() - before);
#else
  (void)before;
  return -1;
#endif
}

uint64_t ParseSnapshot() {
#ifdef SHADOOP_HAS_PARSE_COUNTERS
  return index::GeometryParseCount();
#else
  return 0;
#endif
}

/// The benchmark cluster mirrors bench_common.h: 64 KiB blocks, 25
/// slots, so datasets span hundreds of blocks.
struct Cluster {
  Cluster() : fs(HdfsConfig()), runner(&fs, ClusterConfig()) {}

  static hdfs::HdfsConfig HdfsConfig() {
    hdfs::HdfsConfig config;
    config.block_size = 64 * 1024;
    config.num_datanodes = 25;
    return config;
  }
  static mapreduce::ClusterConfig ClusterConfig() {
    mapreduce::ClusterConfig config;
    config.num_slots = 25;
    return config;
  }

  hdfs::FileSystem fs;
  mapreduce::JobRunner runner;
};

// ---------------------------------------------------------------------
// Benchmarks. Fixed seeds throughout; each runs `reps` times and keeps
// the fastest repetition (the least-noise estimate of the hot path).

BenchResult BenchIndexBuild(int reps) {
  BenchResult result;
  result.name = "index_build";
  Cluster cluster;
  workload::PointGenOptions gen;
  gen.count = kIndexBuildPoints;
  gen.seed = 7;
  gen.distribution = workload::Distribution::kClustered;
  SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/pts", gen));

  result.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    index::IndexBuilder builder(&cluster.runner);
    index::IndexBuildOptions options;
    options.scheme = index::PartitionScheme::kStr;
    options.shape = index::ShapeType::kPoint;
    const uint64_t parses_before = ParseSnapshot();
    const auto start = std::chrono::steady_clock::now();
    const auto info =
        builder.Build("/pts", "/idx" + std::to_string(rep), options)
            .ValueOrDie();
    result.wall_ms = std::min(result.wall_ms, MsSince(start));
    result.parses = ParseDelta(parses_before);
    result.checksum = static_cast<int64_t>(info.global_index.NumPartitions());
  }
  // The build visits each record once per job phase that interprets
  // geometry: the analysis scan, the partition map, and the master-side
  // finalize pass over the partitioned output.
  result.records = static_cast<int64_t>(kIndexBuildPoints) * 3;
  return result;
}

BenchResult BenchRangeQuery(int reps) {
  BenchResult result;
  result.name = "range_query";
  Cluster cluster;
  workload::PointGenOptions gen;
  gen.count = kRangeQueryPoints;
  gen.seed = 11;
  gen.distribution = workload::Distribution::kUniform;
  SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/pts", gen));
  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  options.scheme = index::PartitionScheme::kStr;
  options.shape = index::ShapeType::kPoint;
  options.build_local_indexes = true;  // The #lidx fast path.
  const auto file = builder.Build("/pts", "/pts.idx", options).ValueOrDie();

  // A deterministic sweep of query windows (5% of each side) across the
  // space; the partitions touched vary per query.
  std::vector<Envelope> queries;
  for (int i = 0; i < kRangeQueries; ++i) {
    const double x = (i * 131) % 950000;
    const double y = (i * 377) % 950000;
    queries.emplace_back(x, y, x + 50000, y + 50000);
  }

  result.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t parses_before = ParseSnapshot();
    size_t rows = 0;
    const auto start = std::chrono::steady_clock::now();
    for (const Envelope& query : queries) {
      rows += core::RangeQuerySpatial(&cluster.runner, file, query)
                  .ValueOrDie()
                  .size();
    }
    result.wall_ms = std::min(result.wall_ms, MsSince(start));
    result.parses = ParseDelta(parses_before);
    result.checksum = static_cast<int64_t>(rows);
  }
  // With persisted local indexes every envelope comes from the #lidx
  // header: a query sweep should parse nothing at all, but allow one
  // parse per stored record per query for trees without the header
  // fast path.
  result.records =
      static_cast<int64_t>(kRangeQueryPoints) * kRangeQueries;
  return result;
}

BenchResult BenchSpatialJoin(int reps) {
  BenchResult result;
  result.name = "spatial_join";
  Cluster cluster;
  workload::PolygonGenOptions gen_a;
  gen_a.centers.count = kJoinPolygonsA;
  gen_a.centers.seed = 21;
  gen_a.centers.distribution = workload::Distribution::kClustered;
  gen_a.max_radius_fraction = kJoinRadiusFraction;
  SHADOOP_CHECK_OK(workload::WritePolygonFile(&cluster.fs, "/a", gen_a));
  workload::PolygonGenOptions gen_b = gen_a;
  gen_b.centers.count = kJoinPolygonsB;
  gen_b.centers.seed = 22;
  SHADOOP_CHECK_OK(workload::WritePolygonFile(&cluster.fs, "/b", gen_b));

  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  options.scheme = index::PartitionScheme::kStr;
  options.shape = index::ShapeType::kPolygon;
  const auto file_a = builder.Build("/a", "/a.idx", options).ValueOrDie();
  const auto file_b = builder.Build("/b", "/b.idx", options).ValueOrDie();

  // Record-visit bound of the distributed join: each overlapping
  // partition pair reads both partitions in full, once per pair.
  int64_t pair_records = 0;
  for (const index::Partition& pa : file_a.global_index.partitions()) {
    for (const index::Partition& pb : file_b.global_index.partitions()) {
      if (pa.mbr.Intersects(pb.mbr)) {
        pair_records += static_cast<int64_t>(pa.num_records) +
                        static_cast<int64_t>(pb.num_records);
      }
    }
  }

  result.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t parses_before = ParseSnapshot();
    const auto start = std::chrono::steady_clock::now();
    const auto rows =
        core::DistributedJoin(&cluster.runner, file_a, file_b).ValueOrDie();
    result.wall_ms = std::min(result.wall_ms, MsSince(start));
    result.parses = ParseDelta(parses_before);
    result.checksum = static_cast<int64_t>(rows.size());
  }
  result.records = pair_records;
  return result;
}

// ---------------------------------------------------------------------
// Ad-hoc JSON (one benchmark object per line, so the merge mode can
// read it back with plain string scanning — no JSON library needed).

std::string ToJson(const std::string& label,
                   const std::vector<BenchResult>& results) {
  std::ostringstream out;
  out << "{\n  \"label\": \"" << label << "\",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"wall_ms\": "
        << r.wall_ms << ", \"records\": " << r.records
        << ", \"parses\": " << r.parses << ", \"checksum\": " << r.checksum
        << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

bool ExtractString(const std::string& text, const std::string& key,
                   std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const size_t start = at + needle.size();
  const size_t end = text.find('"', start);
  if (end == std::string::npos) return false;
  *out = text.substr(start, end - start);
  return true;
}

bool ExtractNumber(const std::string& text, const std::string& key,
                   double* out) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  *out = std::strtod(text.c_str() + at + needle.size(), nullptr);
  return true;
}

struct ParsedRun {
  std::string label;
  std::vector<BenchResult> benchmarks;
};

bool LoadRun(const std::string& path, ParsedRun* run) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::string name;
    if (run->label.empty()) ExtractString(line, "label", &run->label);
    if (!ExtractString(line, "name", &name)) continue;
    BenchResult r;
    r.name = name;
    double value = 0;
    if (ExtractNumber(line, "wall_ms", &value)) r.wall_ms = value;
    if (ExtractNumber(line, "records", &value)) {
      r.records = static_cast<int64_t>(value);
    }
    if (ExtractNumber(line, "parses", &value)) {
      r.parses = static_cast<int64_t>(value);
    }
    if (ExtractNumber(line, "checksum", &value)) {
      r.checksum = static_cast<int64_t>(value);
    }
    run->benchmarks.push_back(std::move(r));
  }
  return !run->benchmarks.empty();
}

int Merge(const std::string& baseline_path, const std::string& current_path) {
  ParsedRun baseline, current;
  if (!LoadRun(baseline_path, &baseline) || !LoadRun(current_path, &current)) {
    return 2;
  }
  bool parse_invariant_ok = true;
  bool speedup_target_met = false;
  std::ostringstream rows;
  for (size_t i = 0; i < current.benchmarks.size(); ++i) {
    const BenchResult& cur = current.benchmarks[i];
    const BenchResult* base = nullptr;
    for (const BenchResult& b : baseline.benchmarks) {
      if (b.name == cur.name) base = &b;
    }
    if (base == nullptr) continue;
    const double speedup = cur.wall_ms > 0 ? base->wall_ms / cur.wall_ms : 0;
    if (speedup >= 2.0) speedup_target_met = true;
    // The parse-once invariant only applies to the current tree (the
    // baseline predates the counters and reports -1).
    const bool parses_ok = cur.parses < 0 || cur.parses <= cur.records;
    if (!parses_ok) parse_invariant_ok = false;
    rows << "    {\"name\": \"" << cur.name << "\", \"baseline_wall_ms\": "
         << base->wall_ms << ", \"wall_ms\": " << cur.wall_ms
         << ", \"speedup\": " << speedup << ", \"records\": " << cur.records
         << ", \"parses\": " << cur.parses << ", \"baseline_parses\": "
         << base->parses << ", \"parse_once_ok\": "
         << (parses_ok ? "true" : "false") << ", \"checksum\": "
         << cur.checksum << ", \"baseline_checksum\": " << base->checksum
         << "}" << (i + 1 < current.benchmarks.size() ? "," : "") << "\n";
  }
  std::cout << "{\n  \"bench\": \"zero-copy-hotpath\",\n"
            << "  \"baseline\": \"" << baseline.label << "\",\n"
            << "  \"current\": \"" << current.label << "\",\n"
            << "  \"results\": [\n" << rows.str() << "  ],\n"
            << "  \"parse_invariant_ok\": "
            << (parse_invariant_ok ? "true" : "false") << ",\n"
            << "  \"speedup_target_met\": "
            << (speedup_target_met ? "true" : "false") << "\n}\n";
  if (!parse_invariant_ok) {
    std::cerr << "FAIL: geometry parses exceed records processed\n";
    return 1;
  }
  return 0;
}

int RunAll(const std::string& label, const std::string& out_path, int reps) {
  std::vector<BenchResult> results;
  for (auto* bench : {&BenchIndexBuild, &BenchRangeQuery, &BenchSpatialJoin}) {
    const BenchResult r = bench(reps);
    std::cerr << r.name << ": " << r.wall_ms << " ms (parses=" << r.parses
              << ", records=" << r.records << ")\n";
    if (r.parses >= 0 && r.parses > r.records) {
      std::cerr << "FAIL: " << r.name << " parsed " << r.parses
                << " geometries for a bound of " << r.records << "\n";
      return 1;
    }
    results.push_back(r);
  }
  const std::string json = ToJson(label, results);
  if (out_path.empty()) {
    std::cout << json;
  } else {
    std::ofstream out(out_path);
    out << json;
  }
  return 0;
}

}  // namespace
}  // namespace shadoop

int main(int argc, char** argv) {
  std::string label = "run";
  std::string out_path;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--merge" && i + 2 < argc) {
      return shadoop::Merge(argv[i + 1], argv[i + 2]);
    }
    if (arg == "--label" && i + 1 < argc) label = argv[++i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
  }
  return shadoop::RunAll(label, out_path, reps);
}
