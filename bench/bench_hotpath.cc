// Wall-clock microbenchmarks for the zero-copy record fast path — index
// build, range query over a local-indexed file, and the polygon
// distributed join — plus a fault-recovery scenario that reruns a query
// sweep under deterministic task-fault injection (5% failures +
// stragglers) and records the simulated recovery overhead. Unlike the
// simulated-cost suite (bench_*.cc on google-benchmark), this harness
// measures *real* wall time, because the zero-copy work changes host
// performance, not the simulated cost model; the fault scenario
// additionally reports the sim-time overhead of retries, backoff and
// speculative re-execution. The incremental-ingest scenario times
// catalog appends (routing + copy-on-write rewrites + skew splits)
// against a full bulk rebuild of the same records, and fails if the
// appended version's query rows diverge from the rebuilt index. The
// server-saturation scenario drives concurrent tenant sessions through
// the query server and reports simulated p50/p99 request latencies,
// failing unless they are identical across reruns and admission seeds
// and the concurrent rows match a single-session sequential run.
//
// Usage:
//   bench_hotpath --label <name> [--out results.json] [--reps N]
//                 [--only <benchmark-name>]
//   bench_hotpath --merge baseline.json current.json
//
// The merge mode pairs benchmarks by name, computes speedups, prints the
// combined report (scripts/bench.sh redirects it to BENCH_pr8.json), and
// exits non-zero if an invariant failed: geometry parses exceeding the
// record-visit bound, or fault-injected output diverging from the clean
// run. Benchmarks with no baseline row (the fault scenario, against
// trees that predate the fault subsystem) are still emitted, with
// baseline fields set to -1. The harness intentionally compiles against
// older trees (the baseline build in scripts/bench.sh): parse counters
// report -1 there, and the fault scenario drops out via __has_include.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/range_query.h"
#include "core/spatial_join.h"
#include "index/index_builder.h"
#include "index/record_shape.h"
#include "mapreduce/job_runner.h"
#include "workload/generators.h"

#if __has_include("fault/fault_injector.h")
#include "fault/fault_injector.h"
#define SHADOOP_HAS_FAULT_INJECTION 1
#endif

#if __has_include("catalog/dataset_catalog.h")
#include "catalog/dataset_catalog.h"
#define SHADOOP_HAS_CATALOG 1
#endif

#if __has_include("server/query_server.h")
#include "server/query_server.h"
#define SHADOOP_HAS_SERVER 1
#endif

// The planning scenario needs both the query server (sessions, admission
// seeds) and the cost-based optimizer; baselines that predate either
// simply skip it.
#if defined(SHADOOP_HAS_SERVER) && __has_include("optimizer/optimizer.h")
#define SHADOOP_HAS_OPTIMIZER 1
#endif

namespace shadoop {
namespace {

constexpr size_t kIndexBuildPoints = 250000;
constexpr size_t kRangeQueryPoints = 200000;
constexpr int kRangeQueries = 48;
constexpr size_t kJoinPolygonsA = 14000;
constexpr size_t kJoinPolygonsB = 10000;
// Dense overlay: each polygon intersects several partners, so the join's
// refinement step visits every record many times — the regime the
// parse-once columns are built for.
constexpr double kJoinRadiusFraction = 0.03;
constexpr size_t kIngestBasePoints = 60000;
constexpr size_t kIngestBatchPoints = 20000;
constexpr int kIngestBatches = 3;

struct BenchResult {
  std::string name;
  double wall_ms = 0;           // Best of `reps` repetitions.
  int64_t records = 0;          // Record-visit bound for the run.
  int64_t parses = -1;          // Geometry parses (-1: not measured).
  int64_t checksum = 0;         // Result size, guards against dead code.
  double overhead_ms = -1;      // Simulated recovery overhead (-1: n/a).
  double p50_ms = -1;           // Simulated request latency p50 (-1: n/a).
  double p99_ms = -1;           // Simulated request latency p99 (-1: n/a).
};

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int64_t ParseDelta(uint64_t before) {
#ifdef SHADOOP_HAS_PARSE_COUNTERS
  return static_cast<int64_t>(index::GeometryParseCount() - before);
#else
  (void)before;
  return -1;
#endif
}

uint64_t ParseSnapshot() {
#ifdef SHADOOP_HAS_PARSE_COUNTERS
  return index::GeometryParseCount();
#else
  return 0;
#endif
}

/// The benchmark cluster mirrors bench_common.h: 64 KiB blocks, 25
/// slots, so datasets span hundreds of blocks.
struct Cluster {
  Cluster() : fs(HdfsConfig()), runner(&fs, ClusterConfig()) {}

  static hdfs::HdfsConfig HdfsConfig() {
    hdfs::HdfsConfig config;
    config.block_size = 64 * 1024;
    config.num_datanodes = 25;
    return config;
  }
  static mapreduce::ClusterConfig ClusterConfig() {
    mapreduce::ClusterConfig config;
    config.num_slots = 25;
    return config;
  }

  hdfs::FileSystem fs;
  mapreduce::JobRunner runner;
};

// ---------------------------------------------------------------------
// Benchmarks. Fixed seeds throughout; each runs `reps` times and keeps
// the fastest repetition (the least-noise estimate of the hot path).

BenchResult BenchIndexBuild(int reps) {
  BenchResult result;
  result.name = "index_build";
  Cluster cluster;
  workload::PointGenOptions gen;
  gen.count = kIndexBuildPoints;
  gen.seed = 7;
  gen.distribution = workload::Distribution::kClustered;
  SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/pts", gen));

  result.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    index::IndexBuilder builder(&cluster.runner);
    index::IndexBuildOptions options;
    options.scheme = index::PartitionScheme::kStr;
    options.shape = index::ShapeType::kPoint;
    const uint64_t parses_before = ParseSnapshot();
    const auto start = std::chrono::steady_clock::now();
    const auto info =
        builder.Build("/pts", "/idx" + std::to_string(rep), options)
            .ValueOrDie();
    result.wall_ms = std::min(result.wall_ms, MsSince(start));
    result.parses = ParseDelta(parses_before);
    result.checksum = static_cast<int64_t>(info.global_index.NumPartitions());
  }
  // The build visits each record once per job phase that interprets
  // geometry: the analysis scan, the partition map, and the master-side
  // finalize pass over the partitioned output.
  result.records = static_cast<int64_t>(kIndexBuildPoints) * 3;
  return result;
}

BenchResult BenchRangeQuery(int reps) {
  BenchResult result;
  result.name = "range_query";
  Cluster cluster;
  workload::PointGenOptions gen;
  gen.count = kRangeQueryPoints;
  gen.seed = 11;
  gen.distribution = workload::Distribution::kUniform;
  SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/pts", gen));
  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  options.scheme = index::PartitionScheme::kStr;
  options.shape = index::ShapeType::kPoint;
  options.build_local_indexes = true;  // The #lidx fast path.
  const auto file = builder.Build("/pts", "/pts.idx", options).ValueOrDie();

  // A deterministic sweep of query windows (5% of each side) across the
  // space; the partitions touched vary per query.
  std::vector<Envelope> queries;
  for (int i = 0; i < kRangeQueries; ++i) {
    const double x = (i * 131) % 950000;
    const double y = (i * 377) % 950000;
    queries.emplace_back(x, y, x + 50000, y + 50000);
  }

  result.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t parses_before = ParseSnapshot();
    size_t rows = 0;
    const auto start = std::chrono::steady_clock::now();
    for (const Envelope& query : queries) {
      rows += core::RangeQuerySpatial(&cluster.runner, file, query)
                  .ValueOrDie()
                  .size();
    }
    result.wall_ms = std::min(result.wall_ms, MsSince(start));
    result.parses = ParseDelta(parses_before);
    result.checksum = static_cast<int64_t>(rows);
  }
  // With persisted local indexes every envelope comes from the #lidx
  // header: a query sweep should parse nothing at all, but allow one
  // parse per stored record per query for trees without the header
  // fast path.
  result.records =
      static_cast<int64_t>(kRangeQueryPoints) * kRangeQueries;
  return result;
}

BenchResult BenchSpatialJoin(int reps) {
  BenchResult result;
  result.name = "spatial_join";
  Cluster cluster;
  workload::PolygonGenOptions gen_a;
  gen_a.centers.count = kJoinPolygonsA;
  gen_a.centers.seed = 21;
  gen_a.centers.distribution = workload::Distribution::kClustered;
  gen_a.max_radius_fraction = kJoinRadiusFraction;
  SHADOOP_CHECK_OK(workload::WritePolygonFile(&cluster.fs, "/a", gen_a));
  workload::PolygonGenOptions gen_b = gen_a;
  gen_b.centers.count = kJoinPolygonsB;
  gen_b.centers.seed = 22;
  SHADOOP_CHECK_OK(workload::WritePolygonFile(&cluster.fs, "/b", gen_b));

  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  options.scheme = index::PartitionScheme::kStr;
  options.shape = index::ShapeType::kPolygon;
  const auto file_a = builder.Build("/a", "/a.idx", options).ValueOrDie();
  const auto file_b = builder.Build("/b", "/b.idx", options).ValueOrDie();

  // Record-visit bound of the distributed join: each overlapping
  // partition pair reads both partitions in full, once per pair.
  int64_t pair_records = 0;
  for (const index::Partition& pa : file_a.global_index.partitions()) {
    for (const index::Partition& pb : file_b.global_index.partitions()) {
      if (pa.mbr.Intersects(pb.mbr)) {
        pair_records += static_cast<int64_t>(pa.num_records) +
                        static_cast<int64_t>(pb.num_records);
      }
    }
  }

  result.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const uint64_t parses_before = ParseSnapshot();
    const auto start = std::chrono::steady_clock::now();
    const auto rows =
        core::DistributedJoin(&cluster.runner, file_a, file_b).ValueOrDie();
    result.wall_ms = std::min(result.wall_ms, MsSince(start));
    result.parses = ParseDelta(parses_before);
    result.checksum = static_cast<int64_t>(rows.size());
  }
  result.records = pair_records;
  return result;
}

#ifdef SHADOOP_HAS_FAULT_INJECTION
BenchResult BenchFaultRecovery(int reps) {
  BenchResult result;
  result.name = "fault_recovery";
  Cluster cluster;
  workload::PointGenOptions gen;
  gen.count = 100000;
  gen.seed = 31;
  gen.distribution = workload::Distribution::kUniform;
  SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/pts", gen));

  std::vector<Envelope> queries;
  for (int i = 0; i < 12; ++i) {
    const double x = (i * 211) % 900000;
    const double y = (i * 433) % 900000;
    queries.emplace_back(x, y, x + 100000, y + 100000);
  }
  auto sweep = [&](core::OpStats* stats) {
    int64_t rows = 0;
    for (const Envelope& query : queries) {
      rows += static_cast<int64_t>(
          core::RangeQueryHadoop(&cluster.runner, "/pts",
                                 index::ShapeType::kPoint, query, stats)
              .ValueOrDie()
              .size());
    }
    return rows;
  };

  core::OpStats clean_stats;
  const int64_t clean_rows = sweep(&clean_stats);

  // The paper's recovery story: 5% of task attempts fail, 5% land on
  // slow nodes and straggle into speculative re-execution.
  fault::FaultPolicy policy;
  policy.seed = 17;
  policy.map_failure_prob = 0.05;
  policy.reduce_failure_prob = 0.05;
  policy.straggler_prob = 0.05;
  fault::FaultInjector injector(policy);

  result.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    core::OpStats stats;
    cluster.runner.set_fault_injector(&injector);
    const auto start = std::chrono::steady_clock::now();
    const int64_t rows = sweep(&stats);
    result.wall_ms = std::min(result.wall_ms, MsSince(start));
    cluster.runner.set_fault_injector(nullptr);
    if (rows != clean_rows) {
      std::cerr << "FAIL: fault-injected sweep returned " << rows
                << " rows, clean run returned " << clean_rows << "\n";
      std::exit(1);
    }
    result.checksum = rows;
    // Recovery overhead in *simulated* time: retries, exponential
    // backoff and straggler delays all land in the cost model, so the
    // delta against the clean sweep is deterministic.
    result.overhead_ms = stats.cost.total_ms - clean_stats.cost.total_ms;
  }
  result.records =
      static_cast<int64_t>(gen.count) * static_cast<int64_t>(queries.size());
  return result;
}
#endif  // SHADOOP_HAS_FAULT_INJECTION

#ifdef SHADOOP_HAS_CATALOG
// Incremental ingest through the versioned catalog: bulk-build a base
// STR index, then append three 20k-point batches (skewed, gaussian,
// uniform — each triggers routing, copy-on-write delta rewrites and,
// for the clustered batch, skew splits). wall_ms times the appends
// only. overhead_ms is the wall time of the three appends minus a full
// bulk rebuild of the union (both best-of-reps) — negative means
// incremental maintenance beat rebuilding from scratch. The final
// version must return exactly the rows the bulk rebuild returns.
BenchResult BenchIncrementalIngest(int reps) {
  BenchResult result;
  result.name = "incremental_ingest";
  const int64_t total_records = static_cast<int64_t>(
      kIngestBasePoints + kIngestBatches * kIngestBatchPoints);

  result.wall_ms = std::numeric_limits<double>::infinity();
  double rebuild_wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    // Fresh cluster per repetition: appends advance the dataset's
    // version, so reusing one catalog would time ever-larger datasets.
    Cluster cluster;
    workload::PointGenOptions base;
    base.count = kIngestBasePoints;
    base.seed = 41;
    base.distribution = workload::Distribution::kUniform;
    SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/base", base));
    const workload::Distribution batch_dist[kIngestBatches] = {
        workload::Distribution::kClustered,
        workload::Distribution::kGaussian,
        workload::Distribution::kUniform};
    std::vector<std::string> batches;
    for (int i = 0; i < kIngestBatches; ++i) {
      workload::PointGenOptions gen;
      gen.count = kIngestBatchPoints;
      gen.seed = 43 + static_cast<uint64_t>(i);
      gen.distribution = batch_dist[i];
      batches.push_back("/batch" + std::to_string(i));
      SHADOOP_CHECK_OK(
          workload::WritePointFile(&cluster.fs, batches.back(), gen));
    }

    catalog::DatasetCatalog catalog(&cluster.runner);
    index::IndexBuildOptions options;
    options.scheme = index::PartitionScheme::kStr;
    options.shape = index::ShapeType::kPoint;
    SHADOOP_CHECK_OK(
        catalog.Create("pts", "/base", "/pts.idx", options).status());

    core::OpStats ingest_stats;
    const auto start = std::chrono::steady_clock::now();
    for (const std::string& batch : batches) {
      SHADOOP_CHECK_OK(catalog.Append("pts", batch, &ingest_stats).status());
    }
    result.wall_ms = std::min(result.wall_ms, MsSince(start));

    // Full-rebuild yardstick: bulk-index the union of every record.
    std::vector<std::string> all = cluster.fs.ReadLines("/base").ValueOrDie();
    for (const std::string& batch : batches) {
      std::vector<std::string> lines =
          cluster.fs.ReadLines(batch).ValueOrDie();
      all.insert(all.end(), lines.begin(), lines.end());
    }
    SHADOOP_CHECK_OK(cluster.fs.WriteLines("/all", all));
    index::IndexBuilder builder(&cluster.runner);
    const auto rebuild_start = std::chrono::steady_clock::now();
    const index::SpatialFileInfo rebuilt =
        builder.Build("/all", "/all.idx", options).ValueOrDie();
    rebuild_wall_ms = std::min(rebuild_wall_ms, MsSince(rebuild_start));

    const index::SpatialFileInfo latest =
        catalog.Snapshot("pts").ValueOrDie();
    const Envelope everything(0, 0, 1e6, 1e6);
    const int64_t inc_rows = static_cast<int64_t>(
        core::RangeQuerySpatial(&cluster.runner, latest, everything)
            .ValueOrDie()
            .size());
    const int64_t bulk_rows = static_cast<int64_t>(
        core::RangeQuerySpatial(&cluster.runner, rebuilt, everything)
            .ValueOrDie()
            .size());
    if (inc_rows != total_records || inc_rows != bulk_rows) {
      std::cerr << "FAIL: incremental version returned " << inc_rows
                << " rows, bulk rebuild " << bulk_rows << ", expected "
                << total_records << "\n";
      std::exit(1);
    }
    // Partition count folds the split decisions into the checksum, so a
    // nondeterministic repartition shows up as a checksum diff.
    result.checksum =
        static_cast<int64_t>(latest.global_index.NumPartitions()) * 1000000 +
        inc_rows;
  }
  result.overhead_ms = result.wall_ms - rebuild_wall_ms;
  result.records = total_records;
  return result;
}
#endif  // SHADOOP_HAS_CATALOG

#ifdef SHADOOP_HAS_SERVER
constexpr size_t kServerPoints = 100000;
constexpr int kServerSessions = 5;

uint64_t Fnv64(const std::string& text, uint64_t h) {
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Nearest-rank percentile over an already-sorted latency vector.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return -1;
  const size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  return sorted[rank == 0 ? 0 : rank - 1];
}

// The mixed template stream of one tenant: two per-tenant range windows
// plus shared COUNT/KNN templates (repeated across and within streams,
// so the shared result cache sees real concurrent traffic).
std::vector<std::vector<std::string>> SaturationScripts() {
  std::vector<std::vector<std::string>> streams;
  for (int i = 0; i < kServerSessions; ++i) {
    const std::string x0 = std::to_string(120000 * i);
    const std::string x1 = std::to_string(120000 * i + 200000);
    streams.push_back({
        "a = RANGE pts RECTANGLE(" + x0 + ", 0, " + x1 + ", 400000); DUMP a;",
        "b = COUNT pts RECTANGLE(100000, 100000, 800000, 800000); DUMP b;",
        "c = KNN pts POINT(500000, 400000) K 8; DUMP c;",
        "d = COUNT pts RECTANGLE(100000, 100000, 800000, 800000); DUMP d;",
        "e = RANGE pts RECTANGLE(0, " + x0 + ", 350000, " +
            std::to_string(120000 * i + 250000) + "); DUMP e;",
        "f = KNN pts POINT(250000, 650000) K 4; DUMP f;",
    });
  }
  return streams;
}

struct SaturationRun {
  double wall_ms = 0;     // Real time of the concurrent phase.
  double p50_ms = -1;     // Simulated per-request latency percentiles.
  double p99_ms = -1;
  uint64_t checksum = 0;  // FNV over every request's rows, stream order.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

// One saturation round: a fresh server over the shared filesystem, 5
// tenants x 5 slots on the 25-slot cluster (equal, remainder-free lane
// shares -> seed-invariant admission), each tenant a session driving
// its template stream concurrently.
SaturationRun RunServerSaturation(hdfs::FileSystem* fs, uint64_t seed) {
  server::ServerOptions options;
  options.cluster = Cluster::ClusterConfig();
  options.admission_seed = seed;
  server::QueryServer qs(fs, options);
  SHADOOP_CHECK_OK(qs.AttachDataset("pts", "/pts.idx"));

  const std::vector<std::vector<std::string>> scripts = SaturationScripts();
  std::vector<server::SessionStream> streams;
  for (int i = 0; i < kServerSessions; ++i) {
    const server::SessionId id =
        qs.OpenSession("tenant" + std::to_string(i), 5).ValueOrDie();
    streams.push_back(server::SessionStream{id, scripts[i]});
  }

  SaturationRun run;
  const auto start = std::chrono::steady_clock::now();
  const auto results = qs.ExecuteConcurrent(streams).ValueOrDie();
  run.wall_ms = MsSince(start);

  std::vector<double> latencies;
  uint64_t h = 1469598103934665603ULL;
  for (const auto& stream : results) {
    for (const server::RequestResult& request : stream) {
      latencies.push_back(request.sim_latency_ms);
      for (const std::string& row : request.rows) h = Fnv64(row + "\n", h);
      h = Fnv64("--\n", h);
    }
  }
  std::sort(latencies.begin(), latencies.end());
  run.p50_ms = Percentile(latencies, 50);
  run.p99_ms = Percentile(latencies, 99);
  run.checksum = h;
  run.cache_hits = qs.result_cache().hits();
  run.cache_misses = qs.result_cache().misses();
  return run;
}

// Query-server saturation: N concurrent tenant sessions over one shared
// indexed dataset, mixed RANGE/COUNT/KNN templates, shared result
// cache, admission lanes live. wall_ms times the concurrent phase
// (best-of-reps); p50/p99 are *simulated* request latencies and must be
// bit-identical across repetitions and admission seeds — the scenario
// exits non-zero otherwise, and also if the concurrent row checksum
// diverges from a single-session sequential execution of the same
// query mix.
BenchResult BenchServerSaturation(int reps) {
  BenchResult result;
  result.name = "server_saturation";
  Cluster cluster;
  workload::PointGenOptions gen;
  gen.count = kServerPoints;
  gen.seed = 51;
  gen.distribution = workload::Distribution::kUniform;
  SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/pts", gen));
  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  options.scheme = index::PartitionScheme::kStr;
  options.shape = index::ShapeType::kPoint;
  options.build_local_indexes = true;
  SHADOOP_CHECK_OK(builder.Build("/pts", "/pts.idx", options).status());

  // Repetitions double as the rerun-determinism check; extra seeds
  // check that admission tie-break seeding cannot leak into results.
  SaturationRun base;
  result.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const SaturationRun run = RunServerSaturation(&cluster.fs, 0);
    if (rep == 0) {
      base = run;
    } else if (run.p50_ms != base.p50_ms || run.p99_ms != base.p99_ms ||
               run.checksum != base.checksum) {
      std::cerr << "FAIL: server_saturation rerun diverged (p50 "
                << run.p50_ms << " vs " << base.p50_ms << ", p99 "
                << run.p99_ms << " vs " << base.p99_ms << ")\n";
      std::exit(1);
    }
    result.wall_ms = std::min(result.wall_ms, run.wall_ms);
  }
  for (uint64_t seed : {uint64_t{1}, uint64_t{2}}) {
    const SaturationRun run = RunServerSaturation(&cluster.fs, seed);
    if (run.p50_ms != base.p50_ms || run.p99_ms != base.p99_ms ||
        run.checksum != base.checksum) {
      std::cerr << "FAIL: server_saturation diverged under admission seed "
                << seed << "\n";
      std::exit(1);
    }
  }

  // Single-session yardstick: one session executes every stream's
  // requests in stream order. The concurrent checksum must match byte
  // for byte — concurrency must be invisible in results.
  server::ServerOptions seq_options;
  seq_options.cluster = Cluster::ClusterConfig();
  server::QueryServer sequential(&cluster.fs, seq_options);
  SHADOOP_CHECK_OK(sequential.AttachDataset("pts", "/pts.idx"));
  const server::SessionId session = sequential.OpenSession().ValueOrDie();
  uint64_t h = 1469598103934665603ULL;
  for (const std::vector<std::string>& stream : SaturationScripts()) {
    for (const std::string& script : stream) {
      const server::RequestResult request =
          sequential.Execute(session, script).ValueOrDie();
      for (const std::string& row : request.rows) h = Fnv64(row + "\n", h);
      h = Fnv64("--\n", h);
    }
  }
  if (h != base.checksum) {
    std::cerr << "FAIL: concurrent rows diverge from single-session "
                 "sequential execution\n";
    std::exit(1);
  }

  result.p50_ms = base.p50_ms;
  result.p99_ms = base.p99_ms;
  // 53-bit mask: the merge reader parses numbers as doubles, so a wider
  // checksum would round and compare unequal between raw and merged
  // reports.
  result.checksum = static_cast<int64_t>(base.checksum & 0x1fffffffffffffULL);
  std::cerr << "server_saturation: result_cache hits=" << base.cache_hits
            << " misses=" << base.cache_misses << "\n";
  // Visit bound: every request may scan the whole dataset.
  result.records = static_cast<int64_t>(kServerPoints) *
                   static_cast<int64_t>(kServerSessions) * 6;
  return result;
}
#endif  // SHADOOP_HAS_SERVER

#ifdef SHADOOP_HAS_OPTIMIZER
constexpr size_t kPlanPoints = 30000;
constexpr size_t kPlanPolygons = 4000;
constexpr size_t kPlanSkewPoints = 20000;

// The statement stream of one planning run: every costed decision in the
// tree — join strategy on disjoint point indexes and on overlapping
// polygon indexes, range index-vs-scan, and the AUTO partitioning
// advisor — each followed by the EXPLAIN that renders its `; plan:`
// segment. The FNV checksum over the returned rows therefore pins the
// *chosen plans* (and their rendered cost estimates), not just the query
// answers: a machine- or seed-dependent plan flips the checksum.
std::vector<std::string> PlanningScripts() {
  return {
      "a = LOAD '/opt_a' AS POINT;",
      "b = LOAD '/opt_b' AS POINT;",
      "ai = INDEX a WITH STR INTO '/opt_a.idx';",
      "bi = INDEX b WITH STR INTO '/opt_b.idx';",
      "pj = SJOIN ai, bi; EXPLAIN pj;",
      "r = RANGE ai RECTANGLE(100000, 100000, 420000, 420000); EXPLAIN r;",
      "c = COUNT bi RECTANGLE(0, 0, 250000, 990000); EXPLAIN c; DUMP c;",
      "pa = LOAD '/opt_pa' AS POLYGON;",
      "pb = LOAD '/opt_pb' AS POLYGON;",
      "pai = INDEX pa WITH STR INTO '/opt_pa.idx';",
      "pbi = INDEX pb WITH STR INTO '/opt_pb.idx';",
      "gj = SJOIN pai, pbi; EXPLAIN gj;",
      "skew = LOAD '/opt_skew' AS POINT;",
      "auto_idx = INDEX skew WITH AUTO INTO '/opt_auto.idx';",
      "EXPLAIN auto_idx;",
      "n = COUNT auto_idx RECTANGLE(0, 0, 1000000, 1000000); DUMP n;",
  };
}

struct PlanningRun {
  double wall_ms = 0;
  uint64_t checksum = 0;
};

// One planning round on a fresh filesystem (identical bytes and paths
// every time, so EXPLAIN output — which prints paths — is comparable
// across rounds): generate the datasets, open one server session, drive
// the statement stream, hash every returned row.
PlanningRun RunOptimizerPlanning(uint64_t seed) {
  Cluster cluster;
  workload::PointGenOptions uniform_a;
  uniform_a.count = kPlanPoints;
  uniform_a.seed = 71;
  SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/opt_a", uniform_a));
  workload::PointGenOptions uniform_b = uniform_a;
  uniform_b.seed = 72;
  SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/opt_b", uniform_b));
  workload::PointGenOptions skew;
  skew.distribution = workload::Distribution::kClustered;
  skew.count = kPlanSkewPoints;
  skew.seed = 73;
  SHADOOP_CHECK_OK(workload::WritePointFile(&cluster.fs, "/opt_skew", skew));
  // Clustered, fat polygons: the partition MBRs overlap heavily, which
  // is the regime where the pairwise join explodes and SJMR competes.
  workload::PolygonGenOptions poly;
  poly.centers.distribution = workload::Distribution::kClustered;
  poly.centers.count = kPlanPolygons;
  poly.centers.seed = 74;
  poly.max_radius_fraction = 0.04;
  SHADOOP_CHECK_OK(workload::WritePolygonFile(&cluster.fs, "/opt_pa", poly));
  poly.centers.seed = 75;
  SHADOOP_CHECK_OK(workload::WritePolygonFile(&cluster.fs, "/opt_pb", poly));

  server::ServerOptions options;
  options.cluster = Cluster::ClusterConfig();
  options.admission_seed = seed;
  server::QueryServer qs(&cluster.fs, options);
  const server::SessionId session = qs.OpenSession().ValueOrDie();

  PlanningRun run;
  uint64_t h = 1469598103934665603ULL;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& script : PlanningScripts()) {
    const server::RequestResult request =
        qs.Execute(session, script).ValueOrDie();
    for (const std::string& row : request.rows) h = Fnv64(row + "\n", h);
    h = Fnv64("--\n", h);
  }
  run.wall_ms = MsSince(start);
  run.checksum = h;
  return run;
}

// Cost-based planning end to end: index builds (one via the AUTO
// advisor), two planned joins, planned range/count — wall_ms is the
// whole planned-and-executed stream, best-of-reps. Repetitions double as
// the plan-determinism check, and extra admission seeds verify that
// scheduling tie-breaks cannot leak into plan choices: the row checksum
// (which pins every EXPLAIN `; plan:` line) must be bit-identical across
// all of them, or the scenario exits non-zero.
BenchResult BenchOptimizerPlanning(int reps) {
  BenchResult result;
  result.name = "optimizer_planning";
  PlanningRun base;
  result.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const PlanningRun run = RunOptimizerPlanning(0);
    if (rep == 0) {
      base = run;
    } else if (run.checksum != base.checksum) {
      std::cerr << "FAIL: optimizer_planning rerun diverged (checksum "
                << run.checksum << " vs " << base.checksum << ")\n";
      std::exit(1);
    }
    result.wall_ms = std::min(result.wall_ms, run.wall_ms);
  }
  for (uint64_t seed : {uint64_t{1}, uint64_t{2}}) {
    const PlanningRun run = RunOptimizerPlanning(seed);
    if (run.checksum != base.checksum) {
      std::cerr << "FAIL: optimizer_planning plans diverged under admission "
                   "seed "
                << seed << "\n";
      std::exit(1);
    }
  }
  // Visit bound: each dataset is read a bounded number of times (build,
  // sample, join pairs); generous but finite so dead-code elimination of
  // the stream would still be caught by the checksum, not this field.
  result.records = static_cast<int64_t>(2 * kPlanPoints + kPlanSkewPoints +
                                        2 * kPlanPolygons) *
                   16;
  result.checksum = static_cast<int64_t>(base.checksum & 0x1fffffffffffffULL);
  return result;
}
#endif  // SHADOOP_HAS_OPTIMIZER

// ---------------------------------------------------------------------
// Ad-hoc JSON (one benchmark object per line, so the merge mode can
// read it back with plain string scanning — no JSON library needed).

std::string ToJson(const std::string& label,
                   const std::vector<BenchResult>& results) {
  std::ostringstream out;
  out << "{\n  \"label\": \"" << label << "\",\n  \"benchmarks\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out << "    {\"name\": \"" << r.name << "\", \"wall_ms\": "
        << r.wall_ms << ", \"records\": " << r.records
        << ", \"parses\": " << r.parses << ", \"checksum\": " << r.checksum
        << ", \"overhead_ms\": " << r.overhead_ms
        << ", \"p50_ms\": " << r.p50_ms << ", \"p99_ms\": " << r.p99_ms << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

bool ExtractString(const std::string& text, const std::string& key,
                   std::string* out) {
  const std::string needle = "\"" + key + "\": \"";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  const size_t start = at + needle.size();
  const size_t end = text.find('"', start);
  if (end == std::string::npos) return false;
  *out = text.substr(start, end - start);
  return true;
}

bool ExtractNumber(const std::string& text, const std::string& key,
                   double* out) {
  const std::string needle = "\"" + key + "\": ";
  const size_t at = text.find(needle);
  if (at == std::string::npos) return false;
  *out = std::strtod(text.c_str() + at + needle.size(), nullptr);
  return true;
}

struct ParsedRun {
  std::string label;
  std::vector<BenchResult> benchmarks;
};

bool LoadRun(const std::string& path, ParsedRun* run) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    std::string name;
    if (run->label.empty()) ExtractString(line, "label", &run->label);
    if (!ExtractString(line, "name", &name)) continue;
    BenchResult r;
    r.name = name;
    double value = 0;
    if (ExtractNumber(line, "wall_ms", &value)) r.wall_ms = value;
    if (ExtractNumber(line, "records", &value)) {
      r.records = static_cast<int64_t>(value);
    }
    if (ExtractNumber(line, "parses", &value)) {
      r.parses = static_cast<int64_t>(value);
    }
    if (ExtractNumber(line, "checksum", &value)) {
      r.checksum = static_cast<int64_t>(value);
    }
    if (ExtractNumber(line, "overhead_ms", &value)) r.overhead_ms = value;
    // Latency percentiles only exist on server-era reports; older
    // baselines simply keep the -1 defaults.
    if (ExtractNumber(line, "p50_ms", &value)) r.p50_ms = value;
    if (ExtractNumber(line, "p99_ms", &value)) r.p99_ms = value;
    run->benchmarks.push_back(std::move(r));
  }
  return !run->benchmarks.empty();
}

int Merge(const std::string& baseline_path, const std::string& current_path) {
  ParsedRun baseline, current;
  if (!LoadRun(baseline_path, &baseline) || !LoadRun(current_path, &current)) {
    return 2;
  }
  bool parse_invariant_ok = true;
  // PR 7 raised the bar: the vectorized filter-refine path must hold
  // >= 2.5x on BOTH query-side scenarios, not 2x on any one.
  bool join_target = false;
  bool range_target = false;
  std::ostringstream rows;
  for (size_t i = 0; i < current.benchmarks.size(); ++i) {
    const BenchResult& cur = current.benchmarks[i];
    const BenchResult* base = nullptr;
    for (const BenchResult& b : baseline.benchmarks) {
      if (b.name == cur.name) base = &b;
    }
    // A benchmark the baseline tree cannot run (e.g. fault_recovery
    // against a pre-fault-subsystem revision) is still reported, with
    // the baseline columns pinned to -1.
    const double base_wall = base != nullptr ? base->wall_ms : -1;
    const int64_t base_parses = base != nullptr ? base->parses : -1;
    const int64_t base_checksum = base != nullptr ? base->checksum : -1;
    const double speedup =
        base != nullptr && cur.wall_ms > 0 ? base_wall / cur.wall_ms : 0;
    if (cur.name == "spatial_join" && speedup >= 2.5) join_target = true;
    if (cur.name == "range_query" && speedup >= 2.5) range_target = true;
    // The parse-once invariant only applies to the current tree (the
    // baseline predates the counters and reports -1).
    const bool parses_ok = cur.parses < 0 || cur.parses <= cur.records;
    if (!parses_ok) parse_invariant_ok = false;
    rows << "    {\"name\": \"" << cur.name << "\", \"baseline_wall_ms\": "
         << base_wall << ", \"wall_ms\": " << cur.wall_ms
         << ", \"speedup\": " << speedup << ", \"records\": " << cur.records
         << ", \"parses\": " << cur.parses << ", \"baseline_parses\": "
         << base_parses << ", \"parse_once_ok\": "
         << (parses_ok ? "true" : "false") << ", \"checksum\": "
         << cur.checksum << ", \"baseline_checksum\": " << base_checksum
         << ", \"overhead_ms\": " << cur.overhead_ms
         << ", \"p50_ms\": " << cur.p50_ms << ", \"p99_ms\": " << cur.p99_ms
         << "}"
         << (i + 1 < current.benchmarks.size() ? "," : "") << "\n";
  }
  std::cout << "{\n  \"bench\": \"zero-copy-hotpath\",\n"
            << "  \"baseline\": \"" << baseline.label << "\",\n"
            << "  \"current\": \"" << current.label << "\",\n"
            << "  \"results\": [\n" << rows.str() << "  ],\n"
            << "  \"parse_invariant_ok\": "
            << (parse_invariant_ok ? "true" : "false") << ",\n"
            << "  \"speedup_target_met\": "
            << (join_target && range_target ? "true" : "false") << "\n}\n";
  if (!parse_invariant_ok) {
    std::cerr << "FAIL: geometry parses exceed records processed\n";
    return 1;
  }
  return 0;
}

int RunAll(const std::string& label, const std::string& out_path, int reps,
           const std::string& only) {
  std::vector<BenchResult> results;
  using NamedBench = std::pair<const char*, BenchResult (*)(int)>;
  std::vector<NamedBench> benches = {{"index_build", &BenchIndexBuild},
                                     {"range_query", &BenchRangeQuery},
                                     {"spatial_join", &BenchSpatialJoin}};
#ifdef SHADOOP_HAS_FAULT_INJECTION
  benches.push_back({"fault_recovery", &BenchFaultRecovery});
#endif
#ifdef SHADOOP_HAS_CATALOG
  benches.push_back({"incremental_ingest", &BenchIncrementalIngest});
#endif
#ifdef SHADOOP_HAS_SERVER
  benches.push_back({"server_saturation", &BenchServerSaturation});
#endif
#ifdef SHADOOP_HAS_OPTIMIZER
  benches.push_back({"optimizer_planning", &BenchOptimizerPlanning});
#endif
  for (const NamedBench& bench : benches) {
    if (!only.empty() && only != bench.first) continue;
    const BenchResult r = bench.second(reps);
    std::cerr << r.name << ": " << r.wall_ms << " ms (parses=" << r.parses
              << ", records=" << r.records
              << ", recovery_overhead_ms=" << r.overhead_ms << ")\n";
    if (r.parses >= 0 && r.parses > r.records) {
      std::cerr << "FAIL: " << r.name << " parsed " << r.parses
                << " geometries for a bound of " << r.records << "\n";
      return 1;
    }
    results.push_back(r);
  }
  const std::string json = ToJson(label, results);
  if (out_path.empty()) {
    std::cout << json;
  } else {
    std::ofstream out(out_path);
    out << json;
  }
  return 0;
}

}  // namespace
}  // namespace shadoop

int main(int argc, char** argv) {
  std::string label = "run";
  std::string out_path;
  std::string only;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--merge" && i + 2 < argc) {
      return shadoop::Merge(argv[i + 1], argv[i + 2]);
    }
    if (arg == "--label" && i + 1 < argc) label = argv[++i];
    if (arg == "--out" && i + 1 < argc) out_path = argv[++i];
    if (arg == "--reps" && i + 1 < argc) reps = std::atoi(argv[++i]);
    if (arg == "--only" && i + 1 < argc) only = argv[++i];
  }
  return shadoop::RunAll(label, out_path, reps, only);
}
