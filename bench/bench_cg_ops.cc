// Experiment E6 — computational-geometry operations: traditional
// single-machine algorithm vs Hadoop vs SpatialHadoop, per operation.
// Regenerates the CG speedup tables. Expected shape: Hadoop gains come
// from parallel scanning (about one order of magnitude on these sizes);
// SpatialHadoop adds partition pruning (skyline/hull) or removes the
// serial merge entirely (enhanced union), gaining substantially more.
// The single-machine baseline is costed with the same deterministic
// model (local scan + algorithm CPU), so the three rows are comparable.

#include <cmath>

#include "bench_common.h"
#include "core/closest_pair_op.h"
#include "core/convex_hull_op.h"
#include "core/farthest_pair_op.h"
#include "core/skyline_op.h"
#include "core/union_op.h"
#include "geometry/closest_pair.h"
#include "geometry/convex_hull.h"
#include "geometry/farthest_pair.h"
#include "geometry/polygon_union.h"
#include "geometry/skyline.h"

namespace shadoop::bench {
namespace {

constexpr size_t kPointCount = 300000;
constexpr size_t kPolygonCount = 4000;

struct CgData {
  CgData() {
    WritePoints(&cluster.fs, "/pts", kPointCount,
                workload::Distribution::kClustered, 42);
    points_str = BuildIndex(&cluster.runner, "/pts", "/pts.str",
                            index::PartitionScheme::kStr);
    points_grid = BuildIndex(&cluster.runner, "/pts", "/pts.grid",
                             index::PartitionScheme::kGrid);
    // The farthest-pair worst case: a thin ring puts (nearly) every
    // point on the convex hull, defeating the hull-based route.
    WritePoints(&cluster.fs, "/ring", kPointCount,
                workload::Distribution::kCircular, 42);
    ring_str = BuildIndex(&cluster.runner, "/ring", "/ring.str",
                          index::PartitionScheme::kStr);
    workload::PolygonGenOptions polys;
    polys.centers.distribution = workload::Distribution::kClustered;
    polys.centers.count = kPolygonCount;
    polys.centers.seed = 9;
    polys.max_radius_fraction = 0.012;
    SHADOOP_CHECK_OK(workload::WritePolygonFile(&cluster.fs, "/poly", polys));
    polygons_quad = BuildIndex(&cluster.runner, "/poly", "/poly.quad",
                               index::PartitionScheme::kQuadTree,
                               index::ShapeType::kPolygon);
    points_meta = cluster.fs.GetFileMeta("/pts").ValueOrDie();
    poly_meta = cluster.fs.GetFileMeta("/poly").ValueOrDie();
  }
  BenchCluster cluster;
  index::SpatialFileInfo points_str, points_grid, polygons_quad, ring_str;
  hdfs::FileMeta points_meta, poly_meta;
};

CgData& Data() {
  static CgData* data = new CgData();
  return *data;
}

uint64_t NLogNOps(size_t n, double factor) {
  return static_cast<uint64_t>(
      n > 1 ? n * std::log2(static_cast<double>(n)) * factor : n);
}

// --- Single-machine baselines (really computed, deterministically
// costed with the shared model) ----------------------------------------

void BM_SkylineSingleMachine(benchmark::State& state) {
  CgData& data = Data();
  const auto lines = data.cluster.fs.ReadLines("/pts").ValueOrDie();
  std::vector<Point> points;
  for (const auto& line : lines) {
    points.push_back(index::RecordPoint(line).ValueOrDie());
  }
  for (auto _ : state) {
    auto result = Skyline(points);
    benchmark::DoNotOptimize(result);
    state.counters["sim_s"] = SingleMachineSeconds(
        data.cluster.runner, data.points_meta, NLogNOps(points.size(), 20));
  }
}

void BM_ConvexHullSingleMachine(benchmark::State& state) {
  CgData& data = Data();
  const auto lines = data.cluster.fs.ReadLines("/pts").ValueOrDie();
  std::vector<Point> points;
  for (const auto& line : lines) {
    points.push_back(index::RecordPoint(line).ValueOrDie());
  }
  for (auto _ : state) {
    auto result = ConvexHull(points);
    benchmark::DoNotOptimize(result);
    state.counters["sim_s"] = SingleMachineSeconds(
        data.cluster.runner, data.points_meta, NLogNOps(points.size(), 20));
  }
}

void BM_ClosestPairSingleMachine(benchmark::State& state) {
  CgData& data = Data();
  const auto lines = data.cluster.fs.ReadLines("/pts").ValueOrDie();
  std::vector<Point> points;
  for (const auto& line : lines) {
    points.push_back(index::RecordPoint(line).ValueOrDie());
  }
  for (auto _ : state) {
    auto result = ClosestPair(points);
    benchmark::DoNotOptimize(result);
    state.counters["sim_s"] = SingleMachineSeconds(
        data.cluster.runner, data.points_meta, NLogNOps(points.size(), 40));
  }
}

void BM_FarthestPairSingleMachine(benchmark::State& state) {
  CgData& data = Data();
  const auto lines = data.cluster.fs.ReadLines("/pts").ValueOrDie();
  std::vector<Point> points;
  for (const auto& line : lines) {
    points.push_back(index::RecordPoint(line).ValueOrDie());
  }
  for (auto _ : state) {
    auto result = FarthestPair(points);
    benchmark::DoNotOptimize(result);
    state.counters["sim_s"] = SingleMachineSeconds(
        data.cluster.runner, data.points_meta, NLogNOps(points.size(), 20));
  }
}

void BM_UnionSingleMachine(benchmark::State& state) {
  CgData& data = Data();
  const auto lines = data.cluster.fs.ReadLines("/poly").ValueOrDie();
  std::vector<Polygon> polygons;
  uint64_t edges = 0;
  for (const auto& line : lines) {
    polygons.push_back(index::RecordPolygon(line).ValueOrDie());
    edges += polygons.back().NumVertices();
  }
  for (auto _ : state) {
    auto result = UnionBoundary(polygons);
    benchmark::DoNotOptimize(result);
    state.counters["sim_s"] = SingleMachineSeconds(
        data.cluster.runner, data.poly_meta, edges * edges / 16 + edges * 100);
  }
}

// --- Hadoop and SpatialHadoop flavours ---------------------------------

#define CG_DISTRIBUTED_BENCH(name, call)                      \
  void name(benchmark::State& state) {                        \
    CgData& data = Data();                                    \
    for (auto _ : state) {                                    \
      core::OpStats stats;                                    \
      auto result = (call).ValueOrDie();                      \
      benchmark::DoNotOptimize(result);                       \
      ReportStats(state, stats);                              \
    }                                                         \
  }

CG_DISTRIBUTED_BENCH(BM_SkylineHadoop,
                     core::SkylineHadoop(&data.cluster.runner, "/pts", &stats))
CG_DISTRIBUTED_BENCH(BM_SkylineSpatial,
                     core::SkylineSpatial(&data.cluster.runner,
                                          data.points_str, &stats))
CG_DISTRIBUTED_BENCH(BM_ConvexHullHadoop,
                     core::ConvexHullHadoop(&data.cluster.runner, "/pts",
                                            &stats))
CG_DISTRIBUTED_BENCH(BM_ConvexHullSpatial,
                     core::ConvexHullSpatial(&data.cluster.runner,
                                             data.points_str, &stats))
CG_DISTRIBUTED_BENCH(BM_ClosestPairSpatial,
                     core::ClosestPairSpatial(&data.cluster.runner,
                                              data.points_grid, &stats))
CG_DISTRIBUTED_BENCH(BM_FarthestPairHadoop,
                     core::FarthestPairHadoop(&data.cluster.runner, "/pts",
                                              &stats))
CG_DISTRIBUTED_BENCH(BM_FarthestPairSpatial,
                     core::FarthestPairSpatial(&data.cluster.runner,
                                               data.points_str, &stats))
// Circular (huge-hull) worst case: the hull-based route degenerates while
// the pair filter still prunes to near-diametral pairs.
CG_DISTRIBUTED_BENCH(BM_FarthestPairHadoopCircular,
                     core::FarthestPairHadoop(&data.cluster.runner, "/ring",
                                              &stats))
CG_DISTRIBUTED_BENCH(BM_FarthestPairSpatialCircular,
                     core::FarthestPairSpatial(&data.cluster.runner,
                                               data.ring_str, &stats))
CG_DISTRIBUTED_BENCH(BM_UnionHadoop,
                     core::UnionHadoop(&data.cluster.runner, "/poly", &stats))
CG_DISTRIBUTED_BENCH(BM_UnionSpatialEnhanced,
                     core::UnionSpatialEnhanced(&data.cluster.runner,
                                                data.polygons_quad, &stats))

#define CG_REGISTER(name) \
  BENCHMARK(name)->Iterations(1)->Unit(benchmark::kMillisecond)

CG_REGISTER(BM_SkylineSingleMachine);
CG_REGISTER(BM_SkylineHadoop);
CG_REGISTER(BM_SkylineSpatial);
CG_REGISTER(BM_ConvexHullSingleMachine);
CG_REGISTER(BM_ConvexHullHadoop);
CG_REGISTER(BM_ConvexHullSpatial);
CG_REGISTER(BM_ClosestPairSingleMachine);
CG_REGISTER(BM_ClosestPairSpatial);
CG_REGISTER(BM_FarthestPairSingleMachine);
CG_REGISTER(BM_FarthestPairHadoop);
CG_REGISTER(BM_FarthestPairSpatial);
CG_REGISTER(BM_FarthestPairHadoopCircular);
CG_REGISTER(BM_FarthestPairSpatialCircular);
CG_REGISTER(BM_UnionSingleMachine);
CG_REGISTER(BM_UnionHadoop);
CG_REGISTER(BM_UnionSpatialEnhanced);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
