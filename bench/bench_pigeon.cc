// Experiment E9 — Pigeon language overhead. Regenerates the language-
// layer table: wall-clock cost of lexing+parsing a realistic script, and
// the end-to-end comparison of the same range query issued through
// Pigeon vs the direct C++ API. Expected shape: parse/plan time is
// microseconds — vanishing against multi-second (simulated) jobs — and
// both paths produce identical simulated cluster cost.

#include "bench_common.h"
#include "core/range_query.h"
#include "pigeon/executor.h"
#include "pigeon/parser.h"

namespace shadoop::bench {
namespace {

constexpr const char* kScript = R"(
  pts = LOAD '/pts' AS POINT;
  idx = INDEX pts WITH STR INTO '/pts.str2';
  r1 = RANGE idx RECTANGLE(100000, 100000, 200000, 200000);
  near = KNN idx POINT(500000, 500000) K 10;
  sky = SKYLINE idx;
  STORE r1 INTO '/out1';
  DUMP near;
)";

void BM_PigeonParse(benchmark::State& state) {
  for (auto _ : state) {
    auto script = pigeon::Parse(kScript);
    benchmark::DoNotOptimize(script);
  }
}

struct PigeonData {
  PigeonData() {
    WritePoints(&cluster.fs, "/pts", 80000, workload::Distribution::kClustered,
                42);
    file = BuildIndex(&cluster.runner, "/pts", "/pts.str",
                      index::PartitionScheme::kStr);
  }
  BenchCluster cluster;
  index::SpatialFileInfo file;
};

PigeonData& Data() {
  static PigeonData* data = new PigeonData();
  return *data;
}

const Envelope kQuery(100000, 100000, 200000, 200000);

// The same unindexed range query issued through both front-ends: the
// simulated cluster cost must be identical; the Pigeon path adds only
// parse/plan wall time.
void BM_RangeViaApi(benchmark::State& state) {
  PigeonData& data = Data();
  for (auto _ : state) {
    core::OpStats stats;
    auto result = core::RangeQueryHadoop(&data.cluster.runner, "/pts",
                                         index::ShapeType::kPoint, kQuery,
                                         &stats)
                      .ValueOrDie();
    benchmark::DoNotOptimize(result);
    ReportStats(state, stats);
  }
}

void BM_RangeViaPigeon(benchmark::State& state) {
  PigeonData& data = Data();
  for (auto _ : state) {
    pigeon::Executor executor(&data.cluster.runner);
    auto report = executor.Execute(
        "pts = LOAD '/pts' AS POINT;"
        "r = RANGE pts RECTANGLE(100000, 100000, 200000, 200000);"
        "DUMP r;");
    SHADOOP_CHECK_OK(report.status());
    benchmark::DoNotOptimize(report);
    state.counters["sim_s"] = report->stats.cost.total_ms / 1000.0;
    state.counters["jobs"] = static_cast<double>(report->stats.jobs_run);
  }
}

BENCHMARK(BM_PigeonParse)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RangeViaApi)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RangeViaPigeon)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
