// Experiment E5 — spatial join: SJMR (unindexed Hadoop baseline, full
// repartition) vs the distributed join DJ (both inputs indexed, map-only).
// Regenerates the join table over growing inputs. Expected shape: DJ
// wins, and the factor grows with input size because SJMR shuffles every
// record (plus two MBR pre-scans) while DJ shuffles nothing.

#include "core/spatial_join.h"

#include "bench_common.h"

namespace shadoop::bench {
namespace {

struct JoinData {
  explicit JoinData(size_t count) {
    WriteRects(&cluster.fs, "/a", count, 5, 0.008);
    WriteRects(&cluster.fs, "/b", count * 3 / 4, 6, 0.008);
    a_str = BuildIndex(&cluster.runner, "/a", "/a.str",
                       index::PartitionScheme::kStr,
                       index::ShapeType::kRectangle);
    b_str = BuildIndex(&cluster.runner, "/b", "/b.str",
                       index::PartitionScheme::kStr,
                       index::ShapeType::kRectangle);
    a_quad = BuildIndex(&cluster.runner, "/a", "/a.quad",
                        index::PartitionScheme::kQuadTree,
                        index::ShapeType::kRectangle);
    b_quad = BuildIndex(&cluster.runner, "/b", "/b.quad",
                        index::PartitionScheme::kQuadTree,
                        index::ShapeType::kRectangle);
  }
  BenchCluster cluster;
  index::SpatialFileInfo a_str, b_str, a_quad, b_quad;
};

JoinData& DataOfSize(size_t count) {
  static std::map<size_t, std::unique_ptr<JoinData>>* cache =
      new std::map<size_t, std::unique_ptr<JoinData>>();
  auto& slot = (*cache)[count];
  if (!slot) slot = std::make_unique<JoinData>(count);
  return *slot;
}

void BM_JoinSjmr(benchmark::State& state) {
  JoinData& data = DataOfSize(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    core::OpStats stats;
    auto result =
        core::SjmrJoin(&data.cluster.runner, "/a",
                       index::ShapeType::kRectangle, "/b",
                       index::ShapeType::kRectangle, &stats)
            .ValueOrDie();
    state.counters["results"] = static_cast<double>(result.size());
    ReportStats(state, stats);
  }
}

void BM_JoinDjStr(benchmark::State& state) {
  JoinData& data = DataOfSize(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    core::OpStats stats;
    auto result = core::DistributedJoin(&data.cluster.runner, data.a_str,
                                        data.b_str, &stats)
                      .ValueOrDie();
    state.counters["results"] = static_cast<double>(result.size());
    ReportStats(state, stats);
  }
}

void BM_JoinDjQuadTree(benchmark::State& state) {
  JoinData& data = DataOfSize(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    core::OpStats stats;
    auto result = core::DistributedJoin(&data.cluster.runner, data.a_quad,
                                        data.b_quad, &stats)
                      .ValueOrDie();
    state.counters["results"] = static_cast<double>(result.size());
    ReportStats(state, stats);
  }
}

const std::vector<int64_t> kSizes = {20000, 40000, 80000};

BENCHMARK(BM_JoinSjmr)->ArgsProduct({{kSizes}})->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_JoinDjStr)->ArgsProduct({{kSizes}})->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_JoinDjQuadTree)
    ->ArgsProduct({{kSizes}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
