// Experiment E2 — partition quality per technique. Regenerates the index
// quality table: partition-count, load balance (max/avg records),
// replication overhead (stored/input records, rectangles only) and total
// partition-MBR overlap area. Expected shape: the uniform grid balances
// only uniform data; STR/K-d balance everything; disjoint techniques pay
// replication on extended shapes; curve techniques show MBR overlap.

#include "bench_common.h"

namespace shadoop::bench {
namespace {

const index::PartitionScheme kSchemes[] = {
    index::PartitionScheme::kGrid,     index::PartitionScheme::kStr,
    index::PartitionScheme::kStrPlus,  index::PartitionScheme::kQuadTree,
    index::PartitionScheme::kKdTree,   index::PartitionScheme::kZCurve,
    index::PartitionScheme::kHilbert,
};

double MbrOverlapRatio(const index::GlobalIndex& gi) {
  // Total pairwise overlap area, normalized by the file MBR area.
  double overlap = 0;
  const auto& parts = gi.partitions();
  for (size_t i = 0; i < parts.size(); ++i) {
    for (size_t j = i + 1; j < parts.size(); ++j) {
      overlap += parts[i].mbr.Intersection(parts[j].mbr).Area();
    }
  }
  const double total = gi.Bounds().Area();
  return total > 0 ? overlap / total : 0;
}

void BM_IndexQuality(benchmark::State& state) {
  const auto scheme = kSchemes[state.range(0)];
  const bool rectangles = state.range(1) != 0;
  for (auto _ : state) {
    BenchCluster cluster;
    const size_t count = 60000;
    index::SpatialFileInfo info;
    if (rectangles) {
      WriteRects(&cluster.fs, "/data", count / 3, 7, 0.02);
      info = BuildIndex(&cluster.runner, "/data", "/data.idx", scheme,
                        index::ShapeType::kRectangle);
    } else {
      WritePoints(&cluster.fs, "/data", count,
                  workload::Distribution::kClustered, 7);
      info = BuildIndex(&cluster.runner, "/data", "/data.idx", scheme);
    }
    size_t max_records = 0;
    size_t total_records = 0;
    for (const index::Partition& p : info.global_index.partitions()) {
      max_records = std::max(max_records, p.num_records);
      total_records += p.num_records;
    }
    const double parts =
        static_cast<double>(info.global_index.NumPartitions());
    state.counters["partitions"] = parts;
    state.counters["balance"] =
        max_records / (static_cast<double>(total_records) / parts);
    state.counters["replication"] =
        static_cast<double>(total_records) /
        (rectangles ? count / 3 : count);
    state.counters["mbr_overlap"] = MbrOverlapRatio(info.global_index);
  }
  state.SetLabel(std::string(index::PartitionSchemeName(scheme)) +
                 (rectangles ? "/rectangles" : "/points"));
}

BENCHMARK(BM_IndexQuality)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
