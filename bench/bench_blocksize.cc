// Experiment E8 — block-size sensitivity. Regenerates the block-size
// ablation called out in DESIGN.md: sweep the HDFS block size and report
// index build cost and selective-range-query cost. Expected shape: tiny
// blocks are task-startup bound (many partitions, many map tasks); huge
// blocks prune poorly (a selective query still reads a big block); the
// sweet spot sits in the middle.

#include "bench_common.h"
#include "core/range_query.h"

namespace shadoop::bench {
namespace {

void BM_BlockSize(benchmark::State& state) {
  const size_t block_size = static_cast<size_t>(state.range(0)) * 1024;
  BenchCluster cluster(block_size);
  WritePoints(&cluster.fs, "/pts", 150000, workload::Distribution::kClustered,
              42);
  const index::SpatialFileInfo file = BuildIndex(
      &cluster.runner, "/pts", "/pts.str", index::PartitionScheme::kStr);
  // A selective query (~0.2% of the space).
  const Envelope space = file.global_index.Bounds();
  const double w = space.Width() * 0.045;
  const double h = space.Height() * 0.045;
  const Envelope query(space.min_x() + space.Width() * 0.4,
                       space.min_y() + space.Height() * 0.4,
                       space.min_x() + space.Width() * 0.4 + w,
                       space.min_y() + space.Height() * 0.4 + h);
  for (auto _ : state) {
    core::OpStats stats;
    auto result =
        core::RangeQuerySpatial(&cluster.runner, file, query, &stats)
            .ValueOrDie();
    benchmark::DoNotOptimize(result);
    state.counters["build_sim_s"] = file.build_cost.total_ms / 1000.0;
    state.counters["partitions"] =
        static_cast<double>(file.global_index.NumPartitions());
    ReportStats(state, stats);
  }
}

// Block size in KiB.
BENCHMARK(BM_BlockSize)
    ->ArgsProduct({{4, 16, 64, 256, 1024}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
