// Experiment E10 — visualization layer: single-level plotting of the
// whole file, Hadoop vs SpatialHadoop. Regenerates the plotting table.
// Expected shape: both scan everything (an image needs every record), but
// the Hadoop path pays an extra MBR scan job, while the spatially
// clustered partitions of the indexed path compress the pixel shuffle
// (each partition touches few rows). The pyramid costs a single job for
// all zoom levels.

#include "bench_common.h"
#include "viz/plot.h"

namespace shadoop::bench {
namespace {

struct PlotData {
  PlotData() {
    WritePoints(&cluster.fs, "/pts", 300000,
                workload::Distribution::kClustered, 42);
    file = BuildIndex(&cluster.runner, "/pts", "/pts.str",
                      index::PartitionScheme::kStr);
  }
  BenchCluster cluster;
  index::SpatialFileInfo file;
};

PlotData& Data() {
  static PlotData* data = new PlotData();
  return *data;
}

viz::PlotOptions OptionsForSize(int64_t pixels) {
  viz::PlotOptions options;
  options.width = static_cast<int>(pixels);
  options.height = static_cast<int>(pixels);
  return options;
}

void BM_PlotHadoop(benchmark::State& state) {
  PlotData& data = Data();
  for (auto _ : state) {
    core::OpStats stats;
    auto canvas =
        viz::PlotHadoop(&data.cluster.runner, "/pts",
                        index::ShapeType::kPoint,
                        OptionsForSize(state.range(0)), &stats)
            .ValueOrDie();
    benchmark::DoNotOptimize(canvas);
    ReportStats(state, stats);
  }
}

void BM_PlotSpatial(benchmark::State& state) {
  PlotData& data = Data();
  for (auto _ : state) {
    core::OpStats stats;
    auto canvas = viz::PlotSpatial(&data.cluster.runner, data.file,
                                   OptionsForSize(state.range(0)), &stats)
                      .ValueOrDie();
    benchmark::DoNotOptimize(canvas);
    ReportStats(state, stats);
  }
}

void BM_PlotPyramid(benchmark::State& state) {
  PlotData& data = Data();
  for (auto _ : state) {
    core::OpStats stats;
    viz::PyramidOptions options;
    options.tile_size = 256;
    options.num_levels = static_cast<int>(state.range(0));
    auto tiles = viz::PlotPyramid(&data.cluster.runner, data.file, options,
                                  "", &stats)
                     .ValueOrDie();
    state.counters["tiles"] = static_cast<double>(tiles.size());
    ReportStats(state, stats);
  }
}

BENCHMARK(BM_PlotHadoop)
    ->ArgsProduct({{256, 512, 1024}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlotSpatial)
    ->ArgsProduct({{256, 512, 1024}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PlotPyramid)
    ->ArgsProduct({{1, 3, 5}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
