#ifndef SHADOOP_BENCH_BENCH_COMMON_H_
#define SHADOOP_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "core/op_stats.h"
#include "hdfs/file_system.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"
#include "workload/generators.h"

namespace shadoop::bench {

/// The benchmark suite's scaled-down cluster: 25 worker slots (as in the
/// paper), 64 KiB blocks standing in for Hadoop's 64 MB blocks. To keep
/// the paper's *cost ratios* intact under the 1024x block shrink, the
/// cost-model bandwidths shrink by the same factor: one block still costs
/// ~0.65 s to scan, versus a 5 s job startup and 0.2 s task startup —
/// exactly the regime of the original cluster. Datasets of 10^5..10^6
/// records then span hundreds of blocks, matching the block-count regime
/// of the paper's 10^9-record datasets.
struct BenchCluster {
  explicit BenchCluster(size_t block_size = 64 * 1024, int num_slots = 25)
      : fs(MakeHdfsConfig(block_size)),
        runner(&fs, MakeClusterConfig(num_slots)) {}

  static hdfs::HdfsConfig MakeHdfsConfig(size_t block_size) {
    hdfs::HdfsConfig config;
    config.block_size = block_size;
    config.num_datanodes = 25;
    return config;
  }

  static mapreduce::ClusterConfig MakeClusterConfig(int num_slots) {
    mapreduce::ClusterConfig config;
    config.num_slots = num_slots;
    config.disk_bytes_per_ms = 100.0;  // 100 MB/s scaled by 1/1024.
    config.net_bytes_per_ms = 125.0;   // 1 Gb/s scaled by 1/1024.
    return config;
  }

  hdfs::FileSystem fs;
  mapreduce::JobRunner runner;
};

inline void WritePoints(hdfs::FileSystem* fs, const std::string& path,
                        size_t count, workload::Distribution dist,
                        uint64_t seed) {
  workload::PointGenOptions options;
  options.distribution = dist;
  options.count = count;
  options.seed = seed;
  SHADOOP_CHECK_OK(workload::WritePointFile(fs, path, options));
}

inline void WriteRects(hdfs::FileSystem* fs, const std::string& path,
                       size_t count, uint64_t seed,
                       double max_side_fraction = 0.01) {
  workload::RectGenOptions options;
  options.centers.count = count;
  options.centers.seed = seed;
  options.centers.distribution = workload::Distribution::kClustered;
  options.max_side_fraction = max_side_fraction;
  SHADOOP_CHECK_OK(workload::WriteRectangleFile(fs, path, options));
}

inline index::SpatialFileInfo BuildIndex(
    mapreduce::JobRunner* runner, const std::string& src,
    const std::string& dst, index::PartitionScheme scheme,
    index::ShapeType shape = index::ShapeType::kPoint) {
  index::IndexBuilder builder(runner);
  index::IndexBuildOptions options;
  options.scheme = scheme;
  options.shape = shape;
  return builder.Build(src, dst, options).ValueOrDie();
}

/// Publishes the standard counters of one operation run. `sim_s` — the
/// headline deterministic metric (simulated cluster seconds) — is what
/// EXPERIMENTS.md tabulates.
inline void ReportStats(benchmark::State& state, const core::OpStats& stats) {
  state.counters["sim_s"] = stats.cost.total_ms / 1000.0;
  state.counters["MB_read"] = stats.cost.bytes_read / 1048576.0;
  state.counters["MB_shuffled"] = stats.cost.bytes_shuffled / 1048576.0;
  state.counters["map_tasks"] = static_cast<double>(stats.cost.num_map_tasks);
  state.counters["jobs"] = static_cast<double>(stats.jobs_run);
}

/// Simulated cost of the traditional single-machine algorithm: scan the
/// file from local disk and spend `extra_cpu_ops` on the algorithm, using
/// the same cost constants as the cluster model.
inline double SingleMachineSeconds(const mapreduce::JobRunner& runner,
                                   const hdfs::FileMeta& meta,
                                   uint64_t extra_cpu_ops) {
  return core::SingleMachineCostMs(runner.cluster(), meta.total_bytes,
                                   meta.total_records, extra_cpu_ops) /
         1000.0;
}

}  // namespace shadoop::bench

#endif  // SHADOOP_BENCH_BENCH_COMMON_H_
