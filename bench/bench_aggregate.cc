// Experiment E11 — aggregate (COUNT) queries and the metadata shortcut.
// Regenerates the aggregate-query table: Hadoop scans everything every
// time; SpatialHadoop reads only the partitions straddling the query
// boundary and answers fully covered partitions from the master file.
// Expected shape: the indexed count approaches *zero* I/O both for tiny
// queries (everything pruned) and for near-complete queries (everything
// covered) — cost peaks in the middle where the boundary is longest.

#include "bench_common.h"
#include "core/aggregate_op.h"

namespace shadoop::bench {
namespace {

constexpr size_t kCount = 400000;

struct CountData {
  CountData() {
    WritePoints(&cluster.fs, "/pts", kCount, workload::Distribution::kUniform,
                42);
    file = BuildIndex(&cluster.runner, "/pts", "/pts.str",
                      index::PartitionScheme::kStr);
    space = file.global_index.Bounds();
  }
  BenchCluster cluster;
  index::SpatialFileInfo file;
  Envelope space;
};

CountData& Data() {
  static CountData* data = new CountData();
  return *data;
}

Envelope CenteredQuery(const Envelope& space, int64_t percent) {
  const double side = std::sqrt(percent / 100.0);
  const double w = space.Width() * side;
  const double h = space.Height() * side;
  const Point c = space.Center();
  return Envelope(c.x - w / 2, c.y - h / 2, c.x + w / 2, c.y + h / 2);
}

void BM_CountHadoop(benchmark::State& state) {
  CountData& data = Data();
  const Envelope query = CenteredQuery(data.space, state.range(0));
  for (auto _ : state) {
    core::OpStats stats;
    const int64_t count =
        core::RangeCountHadoop(&data.cluster.runner, "/pts",
                               index::ShapeType::kPoint, query, &stats)
            .ValueOrDie();
    state.counters["count"] = static_cast<double>(count);
    ReportStats(state, stats);
  }
}

void BM_CountSpatial(benchmark::State& state) {
  CountData& data = Data();
  const Envelope query = CenteredQuery(data.space, state.range(0));
  for (auto _ : state) {
    core::OpStats stats;
    const int64_t count =
        core::RangeCountSpatial(&data.cluster.runner, data.file, query,
                                &stats)
            .ValueOrDie();
    state.counters["count"] = static_cast<double>(count);
    state.counters["metadata_parts"] = static_cast<double>(
        stats.counters.Get("count.metadata_partitions"));
    ReportStats(state, stats);
  }
}

// Query area as percent of the space.
const std::vector<int64_t> kPercents = {1, 10, 50, 90, 100};

BENCHMARK(BM_CountHadoop)
    ->ArgsProduct({{kPercents}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CountSpatial)
    ->ArgsProduct({{kPercents}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
