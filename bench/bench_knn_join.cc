// Experiment E13 — kNN join (for every record of A, the k nearest of B):
// the two-round bound-then-verify algorithm over two indexed files,
// sweeping k and |A|. Expected shape: cost grows mildly with k (wider
// verify fan-in) and linearly with |A|; the bound round keeps the verify
// round's reads far below the all-pairs cross product.

#include "bench_common.h"
#include "core/knn_join.h"

namespace shadoop::bench {
namespace {

struct KnnJoinData {
  explicit KnnJoinData(size_t count_a) {
    WritePoints(&cluster.fs, "/a", count_a,
                workload::Distribution::kClustered, 5);
    WritePoints(&cluster.fs, "/b", 60000, workload::Distribution::kClustered,
                5);
    a = BuildIndex(&cluster.runner, "/a", "/a.str",
                   index::PartitionScheme::kStr);
    b = BuildIndex(&cluster.runner, "/b", "/b.str",
                   index::PartitionScheme::kStr);
  }
  BenchCluster cluster;
  index::SpatialFileInfo a, b;
};

KnnJoinData& DataOfSize(size_t count) {
  static std::map<size_t, std::unique_ptr<KnnJoinData>>* cache =
      new std::map<size_t, std::unique_ptr<KnnJoinData>>();
  auto& slot = (*cache)[count];
  if (!slot) slot = std::make_unique<KnnJoinData>(count);
  return *slot;
}

void BM_KnnJoin(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  KnnJoinData& data = DataOfSize(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    core::OpStats stats;
    auto answers =
        core::KnnJoinSpatial(&data.cluster.runner, data.a, data.b, k, &stats)
            .ValueOrDie();
    state.counters["results"] = static_cast<double>(answers.size());
    ReportStats(state, stats);
  }
}

// Args: {k, |A|}.
void KnnJoinArgs(benchmark::internal::Benchmark* b) {
  for (int64_t k : {1, 4, 16}) b->Args({k, 20000});
  for (int64_t n : {10000, 40000}) b->Args({4, n});
}

BENCHMARK(BM_KnnJoin)->Apply(KnnJoinArgs)->Iterations(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
