// Experiment E7 — cluster scale-out: fixed work, sweeping the number of
// worker slots from 1 to 32. Regenerates the speedup figure. Expected
// shape: near-linear speedup while there are more tasks than slots, then
// a plateau set by task granularity and the serial fractions (job
// startup, single-reducer merge).

#include "bench_common.h"
#include "core/range_query.h"
#include "core/skyline_op.h"
#include "core/spatial_join.h"

namespace shadoop::bench {
namespace {

void BM_ScanScaleout(benchmark::State& state) {
  const int slots = static_cast<int>(state.range(0));
  BenchCluster cluster(64 * 1024, slots);
  WritePoints(&cluster.fs, "/pts", 300000, workload::Distribution::kUniform,
              42);
  // A near-full-space range query: pure parallel scan work.
  const Envelope query(0, 0, 9e5, 9e5);
  for (auto _ : state) {
    core::OpStats stats;
    auto result = core::RangeQueryHadoop(&cluster.runner, "/pts",
                                         index::ShapeType::kPoint, query,
                                         &stats)
                      .ValueOrDie();
    benchmark::DoNotOptimize(result);
    ReportStats(state, stats);
  }
}

void BM_JoinScaleout(benchmark::State& state) {
  const int slots = static_cast<int>(state.range(0));
  BenchCluster cluster(64 * 1024, slots);
  WriteRects(&cluster.fs, "/a", 20000, 5, 0.008);
  WriteRects(&cluster.fs, "/b", 15000, 6, 0.008);
  const auto a = BuildIndex(&cluster.runner, "/a", "/a.str",
                            index::PartitionScheme::kStr,
                            index::ShapeType::kRectangle);
  const auto b = BuildIndex(&cluster.runner, "/b", "/b.str",
                            index::PartitionScheme::kStr,
                            index::ShapeType::kRectangle);
  for (auto _ : state) {
    core::OpStats stats;
    auto result =
        core::DistributedJoin(&cluster.runner, a, b, &stats).ValueOrDie();
    benchmark::DoNotOptimize(result);
    ReportStats(state, stats);
  }
}

void BM_SkylineScaleout(benchmark::State& state) {
  const int slots = static_cast<int>(state.range(0));
  BenchCluster cluster(64 * 1024, slots);
  WritePoints(&cluster.fs, "/pts", 300000,
              workload::Distribution::kAntiCorrelated, 42);
  for (auto _ : state) {
    core::OpStats stats;
    auto result =
        core::SkylineHadoop(&cluster.runner, "/pts", &stats).ValueOrDie();
    benchmark::DoNotOptimize(result);
    ReportStats(state, stats);
  }
}

const std::vector<int64_t> kSlots = {1, 2, 4, 8, 16, 32};

BENCHMARK(BM_ScanScaleout)->ArgsProduct({{kSlots}})->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_JoinScaleout)->ArgsProduct({{kSlots}})->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_SkylineScaleout)
    ->ArgsProduct({{kSlots}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
