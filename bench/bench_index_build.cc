// Experiment E1 — index building time per partitioning technique.
// Regenerates the "index construction" table: simulated build time of
// each technique over uniform and clustered (OSM-like) points as input
// size grows. Expected shape: grid cheapest (no per-record tree descent,
// no sample needed), sample-based techniques close behind and all scale
// near-linearly; all pay the same two-job (analyze + partition) floor.

#include "bench_common.h"

namespace shadoop::bench {
namespace {

const index::PartitionScheme kSchemes[] = {
    index::PartitionScheme::kGrid,     index::PartitionScheme::kStr,
    index::PartitionScheme::kStrPlus,  index::PartitionScheme::kQuadTree,
    index::PartitionScheme::kKdTree,   index::PartitionScheme::kZCurve,
    index::PartitionScheme::kHilbert,
};

void BM_IndexBuild(benchmark::State& state) {
  const auto scheme = kSchemes[state.range(0)];
  const size_t count = static_cast<size_t>(state.range(1));
  const bool skewed = state.range(2) != 0;
  for (auto _ : state) {
    BenchCluster cluster;
    WritePoints(&cluster.fs, "/pts", count,
                skewed ? workload::Distribution::kClustered
                       : workload::Distribution::kUniform,
                42);
    const index::SpatialFileInfo info =
        BuildIndex(&cluster.runner, "/pts", "/pts.idx", scheme);
    state.counters["sim_s"] = info.build_cost.total_ms / 1000.0;
    state.counters["partitions"] =
        static_cast<double>(info.global_index.NumPartitions());
    state.counters["MB_shuffled"] =
        info.build_cost.bytes_shuffled / 1048576.0;
  }
  state.SetLabel(std::string(index::PartitionSchemeName(scheme)) +
                 (skewed ? "/clustered" : "/uniform"));
}

void IndexBuildArgs(benchmark::internal::Benchmark* b) {
  for (int scheme = 0; scheme < 7; ++scheme) {
    for (int64_t count : {25000, 50000, 100000}) {
      for (int skew : {0, 1}) {
        b->Args({scheme, count, skew});
      }
    }
  }
}

BENCHMARK(BM_IndexBuild)
    ->Apply(IndexBuildArgs)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
