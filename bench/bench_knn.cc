// Experiment E4 — k-nearest-neighbors: Hadoop full scan vs SpatialHadoop
// iterative pruned search, sweeping k and the input size. Regenerates the
// kNN figure. Expected shape: the indexed query reads O(1) partitions,
// so its cost is nearly independent of the input size while the scan
// grows linearly; growing k only slowly increases the indexed cost
// (occasionally one extra round).

#include "core/knn.h"

#include "bench_common.h"

namespace shadoop::bench {
namespace {

struct SizedData {
  explicit SizedData(size_t count) {
    WritePoints(&cluster.fs, "/pts", count,
                workload::Distribution::kClustered, 42);
    file = BuildIndex(&cluster.runner, "/pts", "/pts.str",
                      index::PartitionScheme::kStr);
  }
  BenchCluster cluster;
  index::SpatialFileInfo file;
};

SizedData& DataOfSize(size_t count) {
  static std::map<size_t, std::unique_ptr<SizedData>>* cache =
      new std::map<size_t, std::unique_ptr<SizedData>>();
  auto& slot = (*cache)[count];
  if (!slot) slot = std::make_unique<SizedData>(count);
  return *slot;
}

const Point kQuery(430000, 610000);

void BM_KnnHadoop(benchmark::State& state) {
  SizedData& data = DataOfSize(static_cast<size_t>(state.range(1)));
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    core::OpStats stats;
    auto result = core::KnnHadoop(&data.cluster.runner, "/pts",
                                  index::ShapeType::kPoint, kQuery, k, &stats)
                      .ValueOrDie();
    benchmark::DoNotOptimize(result);
    ReportStats(state, stats);
  }
}

void BM_KnnSpatial(benchmark::State& state) {
  SizedData& data = DataOfSize(static_cast<size_t>(state.range(1)));
  const size_t k = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    core::OpStats stats;
    auto result =
        core::KnnSpatial(&data.cluster.runner, data.file, kQuery, k, &stats)
            .ValueOrDie();
    benchmark::DoNotOptimize(result);
    ReportStats(state, stats);
  }
}

// Args: {k, dataset size}.
void KnnArgs(benchmark::internal::Benchmark* b) {
  for (int64_t k : {1, 10, 100, 1000}) b->Args({k, 200000});
  for (int64_t n : {50000, 100000, 400000}) b->Args({10, n});
}

BENCHMARK(BM_KnnHadoop)->Apply(KnnArgs)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_KnnSpatial)->Apply(KnnArgs)->Iterations(1)->Unit(
    benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
