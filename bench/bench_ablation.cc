// Experiment E12 — ablations of the design choices DESIGN.md calls out.
//
// (a) Sample ratio: STR boundary quality vs sampling cost. Expected:
//     balance degrades sharply below ~0.1% sampling; beyond ~2% extra
//     sampling buys nothing.
// (b) Map-side local pruning (the "combiner step" of the CG skeleton):
//     skyline with the local-skyline step vs a mapper that forwards every
//     point to the single reducer. Expected: orders of magnitude more
//     shuffle + a serial reduce without it — the argument for the paper's
//     local-processing step.
// (c) Replication: range queries over rectangle data on a replicating
//     disjoint index (quad-tree) vs a single-copy overlapping index
//     (STR). Expected: replication inflates reads slightly but buys
//     strictly disjoint cells (required by closest-pair/union);
//     single-copy reads less but cannot serve those operations.
// (d) Persisted local indexes: geometry-heavy (polygon) range queries
//     with and without the in-block #lidx header. Expected: the header
//     costs extra bytes but removes the O(n log n) R-tree build charge.
// (e) Local join kernel: the distributed join with the R-tree probe vs
//     the plane sweep. Expected: comparable results, different CPU
//     profile — sweep avoids index-build cost per pair.
// (f) Histogram-balanced SJMR on skewed data vs the uniform grid.
//     Expected: extra histogram jobs, but a smaller reduce makespan
//     (even cell loads), paying off as skew grows.

#include <cmath>

#include "bench_common.h"
#include "core/range_query.h"
#include "core/spatial_join.h"
#include "core/skyline_op.h"
#include "geometry/skyline.h"
#include "geometry/wkt.h"

namespace shadoop::bench {
namespace {

// ---------------------------------------------------------------- (a)

void BM_SampleRatio(benchmark::State& state) {
  const double ratio = state.range(0) / 100000.0;  // Range arg in 1/1000 %.
  BenchCluster cluster;
  WritePoints(&cluster.fs, "/pts", 200000, workload::Distribution::kClustered,
              42);
  for (auto _ : state) {
    index::IndexBuilder builder(&cluster.runner);
    index::IndexBuildOptions options;
    options.scheme = index::PartitionScheme::kStr;
    options.sample_ratio = ratio;
    const auto info =
        builder.Build("/pts", "/pts.r" + std::to_string(state.range(0)),
                      options)
            .ValueOrDie();
    size_t max_records = 0;
    size_t total = 0;
    for (const index::Partition& p : info.global_index.partitions()) {
      max_records = std::max(max_records, p.num_records);
      total += p.num_records;
    }
    state.counters["balance"] =
        max_records /
        (static_cast<double>(total) / info.global_index.NumPartitions());
    state.counters["build_sim_s"] = info.build_cost.total_ms / 1000.0;
    state.counters["sample_pct"] = ratio * 100;
  }
}

BENCHMARK(BM_SampleRatio)
    ->ArgsProduct({{10, 100, 1000, 2000, 10000}})  // 0.01% .. 10%.
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- (b)

/// The ablated skyline mapper: no local pruning, every point goes to the
/// reducer (what a naive MapReduce port would do).
class ForwardAllMapper : public mapreduce::Mapper {
 public:
  void Map(std::string_view record, mapreduce::MapContext& ctx) override {
    ctx.Emit("S", record);
  }
};

class GlobalSkylineReducer : public mapreduce::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mapreduce::ReduceContext& ctx) override {
    (void)key;
    std::vector<Point> points;
    points.reserve(values.size());
    for (const std::string& value : values) {
      auto p = ParsePointCsv(value);
      if (p.ok()) points.push_back(p.value());
    }
    const size_t n = points.size();
    ctx.ChargeCpu(static_cast<uint64_t>(
        n > 1 ? n * std::log2(static_cast<double>(n)) * 20 : n));
    for (const Point& p : Skyline(std::move(points))) {
      ctx.Write(PointToCsv(p));
    }
  }
};

struct SkylineData {
  SkylineData() {
    WritePoints(&cluster.fs, "/pts", 300000,
                workload::Distribution::kUniform, 42);
  }
  BenchCluster cluster;
};

SkylineData& GetSkylineData() {
  static SkylineData* data = new SkylineData();
  return *data;
}

void BM_SkylineWithLocalPruning(benchmark::State& state) {
  SkylineData& data = GetSkylineData();
  for (auto _ : state) {
    core::OpStats stats;
    auto result =
        core::SkylineHadoop(&data.cluster.runner, "/pts", &stats)
            .ValueOrDie();
    benchmark::DoNotOptimize(result);
    ReportStats(state, stats);
  }
}

void BM_SkylineWithoutLocalPruning(benchmark::State& state) {
  SkylineData& data = GetSkylineData();
  for (auto _ : state) {
    mapreduce::JobConfig job;
    job.name = "skyline-naive";
    job.splits =
        mapreduce::MakeBlockSplits(data.cluster.fs, "/pts").ValueOrDie();
    job.mapper = []() { return std::make_unique<ForwardAllMapper>(); };
    job.reducer = []() { return std::make_unique<GlobalSkylineReducer>(); };
    job.num_reducers = 1;
    mapreduce::JobResult result = data.cluster.runner.Run(job);
    SHADOOP_CHECK_OK(result.status);
    core::OpStats stats;
    stats.Accumulate(result);
    ReportStats(state, stats);
  }
}

BENCHMARK(BM_SkylineWithLocalPruning)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_SkylineWithoutLocalPruning)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- (c)

struct ReplicationData {
  ReplicationData() {
    WriteRects(&cluster.fs, "/rects", 120000, 5, 0.01);
    replicated = BuildIndex(&cluster.runner, "/rects", "/rects.quad",
                            index::PartitionScheme::kQuadTree,
                            index::ShapeType::kRectangle);
    single_copy = BuildIndex(&cluster.runner, "/rects", "/rects.str",
                             index::PartitionScheme::kStr,
                             index::ShapeType::kRectangle);
  }
  BenchCluster cluster;
  index::SpatialFileInfo replicated, single_copy;
};

ReplicationData& GetReplicationData() {
  static ReplicationData* data = new ReplicationData();
  return *data;
}

void RunReplicationQuery(benchmark::State& state,
                         const index::SpatialFileInfo& file) {
  ReplicationData& data = GetReplicationData();
  const Envelope query(3e5, 3e5, 4.5e5, 4.5e5);
  for (auto _ : state) {
    core::OpStats stats;
    auto result =
        core::RangeQuerySpatial(&data.cluster.runner, file, query, &stats)
            .ValueOrDie();
    state.counters["results"] = static_cast<double>(result.size());
    state.counters["deduplicated"] =
        static_cast<double>(stats.counters.Get("range.deduplicated"));
    ReportStats(state, stats);
  }
}

void BM_RangeOverReplicatedIndex(benchmark::State& state) {
  RunReplicationQuery(state, GetReplicationData().replicated);
}

void BM_RangeOverSingleCopyIndex(benchmark::State& state) {
  RunReplicationQuery(state, GetReplicationData().single_copy);
}

BENCHMARK(BM_RangeOverReplicatedIndex)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_RangeOverSingleCopyIndex)->Iterations(1)->Unit(
    benchmark::kMillisecond);

// ---------------------------------------------------------------- (d)

struct LidxData {
  LidxData() {
    workload::PolygonGenOptions polys;
    polys.centers.distribution = workload::Distribution::kClustered;
    polys.centers.count = 40000;
    polys.centers.seed = 11;
    polys.max_radius_fraction = 0.005;
    SHADOOP_CHECK_OK(workload::WritePolygonFile(&cluster.fs, "/poly", polys));
    index::IndexBuilder builder(&cluster.runner);
    index::IndexBuildOptions options;
    options.scheme = index::PartitionScheme::kStr;
    options.shape = index::ShapeType::kPolygon;
    plain = builder.Build("/poly", "/poly.plain", options).ValueOrDie();
    options.build_local_indexes = true;
    with_lidx = builder.Build("/poly", "/poly.lidx", options).ValueOrDie();
  }
  BenchCluster cluster;
  index::SpatialFileInfo plain, with_lidx;
};

LidxData& GetLidxData() {
  static LidxData* data = new LidxData();
  return *data;
}

void RunLidxQuery(benchmark::State& state,
                  const index::SpatialFileInfo& file) {
  LidxData& data = GetLidxData();
  const Envelope query(2e5, 2e5, 7e5, 7e5);
  for (auto _ : state) {
    core::OpStats stats;
    auto result =
        core::RangeQuerySpatial(&data.cluster.runner, file, query, &stats)
            .ValueOrDie();
    state.counters["results"] = static_cast<double>(result.size());
    ReportStats(state, stats);
  }
}

void BM_RangeWithoutLocalIndex(benchmark::State& state) {
  RunLidxQuery(state, GetLidxData().plain);
}

void BM_RangeWithPersistedLocalIndex(benchmark::State& state) {
  RunLidxQuery(state, GetLidxData().with_lidx);
}

BENCHMARK(BM_RangeWithoutLocalIndex)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_RangeWithPersistedLocalIndex)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- (e)

struct KernelData {
  KernelData() {
    WriteRects(&cluster.fs, "/ka", 40000, 5, 0.008);
    WriteRects(&cluster.fs, "/kb", 30000, 6, 0.008);
    a = BuildIndex(&cluster.runner, "/ka", "/ka.str",
                   index::PartitionScheme::kStr,
                   index::ShapeType::kRectangle);
    b = BuildIndex(&cluster.runner, "/kb", "/kb.str",
                   index::PartitionScheme::kStr,
                   index::ShapeType::kRectangle);
  }
  BenchCluster cluster;
  index::SpatialFileInfo a, b;
};

KernelData& GetKernelData() {
  static KernelData* data = new KernelData();
  return *data;
}

void RunKernelJoin(benchmark::State& state,
                   core::LocalJoinAlgorithm algorithm) {
  KernelData& data = GetKernelData();
  for (auto _ : state) {
    core::OpStats stats;
    core::DjOptions options;
    options.local_algorithm = algorithm;
    auto result = core::DistributedJoin(&data.cluster.runner, data.a, data.b,
                                        &stats, options)
                      .ValueOrDie();
    state.counters["results"] = static_cast<double>(result.size());
    ReportStats(state, stats);
  }
}

void BM_JoinKernelRTreeProbe(benchmark::State& state) {
  RunKernelJoin(state, core::LocalJoinAlgorithm::kRTreeProbe);
}

void BM_JoinKernelPlaneSweep(benchmark::State& state) {
  RunKernelJoin(state, core::LocalJoinAlgorithm::kPlaneSweep);
}

BENCHMARK(BM_JoinKernelRTreeProbe)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_JoinKernelPlaneSweep)->Iterations(1)->Unit(
    benchmark::kMillisecond);

// ---------------------------------------------------------------- (f)

struct SkewedJoinData {
  SkewedJoinData() {
    WriteRects(&cluster.fs, "/sa", 40000, 7, 0.006);
    WriteRects(&cluster.fs, "/sb", 30000, 8, 0.006);
  }
  BenchCluster cluster;
};

SkewedJoinData& GetSkewedJoinData() {
  static SkewedJoinData* data = new SkewedJoinData();
  return *data;
}

void RunSjmrVariant(benchmark::State& state, bool balanced) {
  SkewedJoinData& data = GetSkewedJoinData();
  for (auto _ : state) {
    core::OpStats stats;
    core::SjmrOptions options;
    options.histogram_balanced = balanced;
    auto result =
        core::SjmrJoin(&data.cluster.runner, "/sa",
                       index::ShapeType::kRectangle, "/sb",
                       index::ShapeType::kRectangle, &stats, options)
            .ValueOrDie();
    state.counters["results"] = static_cast<double>(result.size());
    state.counters["reduce_makespan_s"] =
        stats.cost.reduce_makespan_ms / 1000.0;
    ReportStats(state, stats);
  }
}

void BM_SjmrUniformGridOnSkew(benchmark::State& state) {
  RunSjmrVariant(state, false);
}

void BM_SjmrHistogramBalancedOnSkew(benchmark::State& state) {
  RunSjmrVariant(state, true);
}

BENCHMARK(BM_SjmrUniformGridOnSkew)->Iterations(1)->Unit(
    benchmark::kMillisecond);
BENCHMARK(BM_SjmrHistogramBalancedOnSkew)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace shadoop::bench

BENCHMARK_MAIN();
