#!/usr/bin/env bash
# Wall-clock benchmark of the spatial hot path against a baseline
# revision. Builds bench_hotpath in Release mode twice — once in this
# tree, once in a detached worktree of the baseline ref (default:
# HEAD~1) with the same harness source copied in — runs both with
# identical fixed seeds, and merges the two reports into BENCH_pr9.json.
# Besides the zero-copy benchmarks, the current tree also runs the
# fault-recovery scenario (5% task failures + stragglers), the
# incremental-ingest scenario (catalog appends vs a full rebuild), the
# server-saturation scenario (concurrent tenant sessions through the
# query server, reporting simulated p50/p99 request latencies), and the
# optimizer-planning scenario (cost-based join/range/index planning,
# whose row checksum pins every EXPLAIN plan line and must be identical
# across reruns and admission seeds); baselines that predate the fault,
# catalog, server or optimizer subsystems simply skip them (the merge
# emits those rows with baseline -1).
#
# Fails if the parse-once invariant is violated (geometry parses exceed
# the record-visit bound of any benchmark in the current tree) or if the
# fault-injected sweep's rows diverge from the clean run.
#
# Usage: scripts/bench.sh [baseline-ref]        (default: HEAD~1)
#        REPS=5 OUT=my.json scripts/bench.sh    (env overrides)
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE_REF="${1:-HEAD~1}"
REPS="${REPS:-3}"
OUT="${OUT:-BENCH_pr9.json}"
BASELINE_DIR=".bench-baseline"

echo "== building current tree (Release) =="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j "$(nproc)" --target bench_hotpath

echo "== preparing baseline worktree (${BASELINE_REF}) =="
git worktree remove --force "${BASELINE_DIR}" 2>/dev/null || true
rm -rf "${BASELINE_DIR}"
git worktree add --detach "${BASELINE_DIR}" "${BASELINE_REF}"
trap 'git worktree remove --force "'"${BASELINE_DIR}"'" 2>/dev/null || true' EXIT

# The harness itself rides along: it compiles against trees without the
# parse counters (reporting parses as -1), so the baseline needs only
# the source file and a target registration.
cp bench/bench_hotpath.cc "${BASELINE_DIR}/bench/"
if ! grep -q bench_hotpath "${BASELINE_DIR}/bench/CMakeLists.txt"; then
  cat >> "${BASELINE_DIR}/bench/CMakeLists.txt" <<'EOF'

add_executable(bench_hotpath bench_hotpath.cc)
target_link_libraries(bench_hotpath PRIVATE
  shadoop_core shadoop_index shadoop_mapreduce shadoop_hdfs
  shadoop_geometry shadoop_workload shadoop_common Threads::Threads)
EOF
fi

echo "== building baseline (Release) =="
cmake -B "${BASELINE_DIR}/build-bench" -S "${BASELINE_DIR}" \
  -DCMAKE_BUILD_TYPE=Release
cmake --build "${BASELINE_DIR}/build-bench" -j "$(nproc)" \
  --target bench_hotpath

echo "== running baseline =="
"${BASELINE_DIR}/build-bench/bench/bench_hotpath" \
  --label "baseline-$(git rev-parse --short "${BASELINE_REF}")" \
  --reps "${REPS}" --out build-bench/baseline.json

echo "== running current =="
./build-bench/bench/bench_hotpath \
  --label "current-$(git rev-parse --short HEAD)" \
  --reps "${REPS}" --out build-bench/current.json

echo "== merging -> ${OUT} =="
./build-bench/bench/bench_hotpath --merge \
  build-bench/baseline.json build-bench/current.json > "${OUT}"
cat "${OUT}"

# Trajectory check: a scenario whose speedup drops versus the previous
# PR's report is a regression in the making (spatial_join slid
# 1.10x -> 1.05x between pr3 and pr6 with nothing saying so). Compare
# each scenario against the newest committed BENCH_pr*.json other than
# ${OUT} and warn — advisory, not blocking, because reports may span
# runners; the same-runner wall-clock bound stays the blocking check.
PREV=""
for report in $(ls BENCH_pr*.json 2>/dev/null | sort -V); do
  [ "${report}" = "${OUT}" ] && continue
  PREV="${report}"
done
if [ -n "${PREV}" ]; then
  echo "== speedup trajectory vs ${PREV} =="
  awk -v prev="${PREV}" -v prev_name="${PREV}" '
    function row(line, arr) {
      if (match(line, /"name": "[^"]+"/) == 0) return ""
      name = substr(line, RSTART + 9, RLENGTH - 10)
      if (match(line, /"speedup": [-0-9.eE+]+/) == 0) return ""
      arr[name] = substr(line, RSTART + 11, RLENGTH - 11) + 0
      return name
    }
    FNR == NR { row($0, p); next }          # first file: previous report
    {
      name = row($0, c)
      # Rows either tree could not run carry speedup <= 0; skip them.
      if (name == "" || !(name in p) || p[name] <= 0 || c[name] <= 0) next
      printf "  %-20s %.2fx -> %.2fx", name, p[name], c[name]
      if (c[name] < p[name]) {
        printf "   WARNING: speedup fell vs %s", prev_name
        warned = 1
      }
      printf "\n"
    }
    END { if (warned) print "  (investigate before merging: a drop here compounds silently)" }
  ' "${PREV}" "${OUT}"
fi
