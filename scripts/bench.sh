#!/usr/bin/env bash
# Wall-clock benchmark of the spatial hot path against a baseline
# revision. Builds bench_hotpath in Release mode twice — once in this
# tree, once in a detached worktree of the baseline ref (default:
# HEAD~1) with the same harness source copied in — runs both with
# identical fixed seeds, and merges the two reports into BENCH_pr6.json.
# Besides the zero-copy benchmarks, the current tree also runs the
# fault-recovery scenario (5% task failures + stragglers) and the
# incremental-ingest scenario (catalog appends vs a full rebuild);
# baselines that predate the fault or catalog subsystems simply skip
# them (the merge emits those rows with baseline -1).
#
# Fails if the parse-once invariant is violated (geometry parses exceed
# the record-visit bound of any benchmark in the current tree) or if the
# fault-injected sweep's rows diverge from the clean run.
#
# Usage: scripts/bench.sh [baseline-ref]        (default: HEAD~1)
#        REPS=5 OUT=my.json scripts/bench.sh    (env overrides)
set -euo pipefail

cd "$(dirname "$0")/.."
BASELINE_REF="${1:-HEAD~1}"
REPS="${REPS:-3}"
OUT="${OUT:-BENCH_pr6.json}"
BASELINE_DIR=".bench-baseline"

echo "== building current tree (Release) =="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-bench -j "$(nproc)" --target bench_hotpath

echo "== preparing baseline worktree (${BASELINE_REF}) =="
git worktree remove --force "${BASELINE_DIR}" 2>/dev/null || true
rm -rf "${BASELINE_DIR}"
git worktree add --detach "${BASELINE_DIR}" "${BASELINE_REF}"
trap 'git worktree remove --force "'"${BASELINE_DIR}"'" 2>/dev/null || true' EXIT

# The harness itself rides along: it compiles against trees without the
# parse counters (reporting parses as -1), so the baseline needs only
# the source file and a target registration.
cp bench/bench_hotpath.cc "${BASELINE_DIR}/bench/"
if ! grep -q bench_hotpath "${BASELINE_DIR}/bench/CMakeLists.txt"; then
  cat >> "${BASELINE_DIR}/bench/CMakeLists.txt" <<'EOF'

add_executable(bench_hotpath bench_hotpath.cc)
target_link_libraries(bench_hotpath PRIVATE
  shadoop_core shadoop_index shadoop_mapreduce shadoop_hdfs
  shadoop_geometry shadoop_workload shadoop_common Threads::Threads)
EOF
fi

echo "== building baseline (Release) =="
cmake -B "${BASELINE_DIR}/build-bench" -S "${BASELINE_DIR}" \
  -DCMAKE_BUILD_TYPE=Release
cmake --build "${BASELINE_DIR}/build-bench" -j "$(nproc)" \
  --target bench_hotpath

echo "== running baseline =="
"${BASELINE_DIR}/build-bench/bench/bench_hotpath" \
  --label "baseline-$(git rev-parse --short "${BASELINE_REF}")" \
  --reps "${REPS}" --out build-bench/baseline.json

echo "== running current =="
./build-bench/bench/bench_hotpath \
  --label "current-$(git rev-parse --short HEAD)" \
  --reps "${REPS}" --out build-bench/current.json

echo "== merging -> ${OUT} =="
./build-bench/bench/bench_hotpath --merge \
  build-bench/baseline.json build-bench/current.json > "${OUT}"
cat "${OUT}"
