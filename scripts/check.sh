#!/usr/bin/env bash
# Full verification pass: configure a dedicated sanitizer build tree,
# compile with AddressSanitizer + UndefinedBehaviorSanitizer, and run the
# whole test suite under them. Use this before sending a change for
# review; the plain `build/` tree stays untouched for fast iteration.
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# The zero-copy lifetime suite first and on its own: it holds record
# views across arena growth/eviction, so a broken lifetime contract
# must surface here as a sanitizer report before the full run.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -R zero_copy_test

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"
