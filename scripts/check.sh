#!/usr/bin/env bash
# Full verification pass, two sanitizer trees:
#   1. AddressSanitizer + UndefinedBehaviorSanitizer over the whole test
#      suite (memory and UB coverage).
#   2. ThreadSanitizer over the concurrency-heavy suites — the MapReduce
#      runtime, the zero-copy record path, and the fault-tolerance
#      scheduler whose speculative attempts race by design.
# Use this before sending a change for review; the plain `build/` tree
# stays untouched for fast iteration.
#
# Usage: scripts/check.sh [asan-build-dir] [tsan-build-dir]
#        (defaults: build-asan build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"
SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"
TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# The zero-copy lifetime suite first and on its own: it holds record
# views across arena growth/eviction, so a broken lifetime contract
# must surface here as a sanitizer report before the full run.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -R zero_copy_test

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)"

# ---------------------------------------------------------------------
# ThreadSanitizer pass. Kept to the suites that exercise real
# concurrency so the (slow) TSan runtime stays affordable:
#   - mapreduce_test: thread pool, shuffle, parallel map/reduce
#   - zero_copy_test: shared block arenas across map attempts
#   - fault_test: retries + speculative attempt races, commit-once CAS
#   - robustness_test: fault-matrix sweep over whole operations
cmake -B "${TSAN_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="${TSAN_FLAGS}" \
  -DCMAKE_EXE_LINKER_FLAGS="${TSAN_FLAGS}"
cmake --build "${TSAN_DIR}" -j "$(nproc)" \
  --target mapreduce_test zero_copy_test fault_test robustness_test

TSAN_OPTIONS="halt_on_error=1" ctest --test-dir "${TSAN_DIR}" \
  --output-on-failure \
  -R '^(mapreduce_test|zero_copy_test|fault_test|robustness_test)$'
