#!/usr/bin/env bash
# Full verification pass — lint first (fastest feedback), then two
# sanitizer trees:
#   0. Static analysis via scripts/lint.sh: the repo-specific
#      determinism lint, plus clang-tidy and the Clang thread-safety
#      build when those tools are installed (DESIGN.md §11).
#   1. AddressSanitizer + UndefinedBehaviorSanitizer over the whole test
#      suite (memory and UB coverage).
#   2. ThreadSanitizer over the concurrency-heavy suites — the MapReduce
#      runtime, the zero-copy record path, the fault-tolerance scheduler
#      whose speculative attempts race by design, and the multi-tenant
#      admission controller whose FIFO queues block across threads.
# Use this before sending a change for review; the plain `build/` tree
# stays untouched for fast iteration.
#
# Usage: scripts/check.sh [--lint-only|--analyze-only|--tsan-only]
#        [asan-dir] [tsan-dir]   (defaults: build-asan build-tsan)
#        --analyze-only runs just the cross-TU analyzer phase
#        (scripts/lint.sh --analyze-only, DESIGN.md §16).
#
# Environment:
#   JOBS   parallelism for builds and ctest (default: nproc). CI runners
#          set this below their core count to avoid memory pressure.
#
# Exit codes (CI maps these to named annotations):
#   0   clean
#   30  lint phase failed (scripts/lint.sh: determinism lint findings,
#       clang-tidy errors, or -Werror=thread-safety errors)
#   40  cross-TU analyzer phase failed (determinism-taint/layering
#       findings or a stale baseline; scripts/lint.sh phase 4)
#   10  ASan/UBSan phase failed (build or tests)
#   20  TSan phase failed (build or tests)
#   2   usage error
set -uo pipefail

cd "$(dirname "$0")/.."

TSAN_ONLY=0
LINT_ONLY=0
if [[ "${1:-}" == "--tsan-only" ]]; then
  TSAN_ONLY=1
  shift
elif [[ "${1:-}" == "--lint-only" ]]; then
  LINT_ONLY=1
  shift
elif [[ "${1:-}" == "--analyze-only" ]]; then
  if ! scripts/lint.sh --analyze-only; then
    echo "check.sh: analyzer phase FAILED" >&2
    exit 40
  fi
  echo "check.sh: analyzer phase passed (--analyze-only)"
  exit 0
fi
if [[ "${1:-}" == --* ]]; then
  echo "check.sh: unknown flag '$1'" >&2
  echo "usage: scripts/check.sh [--lint-only|--analyze-only|--tsan-only] [asan-dir] [tsan-dir]" >&2
  exit 2
fi

BUILD_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"
JOBS="${JOBS:-$(nproc)}"
SAN_FLAGS="-fsanitize=address,undefined -fno-omit-frame-pointer -fno-sanitize-recover=all"
TSAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"

# The TSan pass is kept to the suites that exercise real concurrency so
# the (slow) TSan runtime stays affordable:
#   - mapreduce_test: thread pool, shuffle, parallel map/reduce
#   - zero_copy_test: shared block arenas across map attempts
#   - fault_test: retries + speculative attempt races, commit-once CAS
#   - robustness_test: fault-matrix sweep over whole operations
#   - admission_test: cross-thread FIFO admission, quota blocking, lane
#     accounting under concurrent tenants
#   - catalog_test: snapshot reads racing concurrent catalog appends
TSAN_SUITES=(mapreduce_test zero_copy_test fault_test robustness_test
             admission_test catalog_test server_test)

asan_phase() {
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
    -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}" &&
  cmake --build "${BUILD_DIR}" -j "${JOBS}" &&
  # The zero-copy lifetime suite first and on its own: it holds record
  # views across arena growth/eviction, so a broken lifetime contract
  # must surface here as a sanitizer report before the full run.
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -R zero_copy_test &&
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"
}

tsan_phase() {
  local regex
  regex="^($(IFS='|'; echo "${TSAN_SUITES[*]}"))\$"
  cmake -B "${TSAN_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="${TSAN_FLAGS}" \
    -DCMAKE_EXE_LINKER_FLAGS="${TSAN_FLAGS}" &&
  cmake --build "${TSAN_DIR}" -j "${JOBS}" --target "${TSAN_SUITES[@]}" &&
  TSAN_OPTIONS="halt_on_error=1" ctest --test-dir "${TSAN_DIR}" \
    --output-on-failure -R "${regex}"
}

# Lint runs first: it is seconds where the sanitizer trees are minutes,
# so a banned pattern or lock-discipline break fails fast.
if [[ "${TSAN_ONLY}" -eq 0 ]]; then
  scripts/lint.sh
  lint_code=$?
  if [[ "${lint_code}" -eq 40 ]]; then
    echo "check.sh: analyzer phase FAILED" >&2
    exit 40
  elif [[ "${lint_code}" -ne 0 ]]; then
    echo "check.sh: lint phase FAILED" >&2
    exit 30
  fi
fi
if [[ "${LINT_ONLY}" -eq 1 ]]; then
  echo "check.sh: lint phase passed (--lint-only)"
  exit 0
fi

if [[ "${TSAN_ONLY}" -eq 0 ]]; then
  if ! asan_phase; then
    echo "check.sh: ASan/UBSan phase FAILED" >&2
    exit 10
  fi
fi

if ! tsan_phase; then
  echo "check.sh: TSan phase FAILED" >&2
  exit 20
fi

echo "check.sh: all sanitizer phases passed"
