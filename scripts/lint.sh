#!/usr/bin/env bash
# Static-analysis driver (DESIGN.md §11, §16) — four phases, fastest
# first:
#
#   1. determinism lint: builds tools/lint (spatial_lint) and runs it
#      over src/ + tools/ + bench/. Repo-specific banned patterns: stray
#      clocks, ambient RNG, unordered-container iteration, naked
#      std::mutex, <iostream> in library code. Findings print as
#      file:line: rule-id: message.
#   2. clang-tidy (skipped with a notice when not installed): the tuned
#      .clang-tidy profile over every .cc under src/, using the compile
#      database exported by phase 1's build tree. concurrency-* findings
#      are errors; other families annotate without blocking.
#   3. thread-safety build (skipped with a notice when clang++ is not
#      installed): recompiles every src/ library with
#      -DSPATIAL_THREAD_SAFETY=ON, i.e. -Wthread-safety
#      -Werror=thread-safety over the annotated lock discipline in
#      common/thread_annotations.h.
#   4. cross-TU analyzer: builds tools/analyze (spatial_analyze) and
#      runs the determinism-taint + layering analyses over src/ +
#      tools/ + bench/ against the checked-in baseline, writing the
#      call-chain report to <lint-build-dir>/analysis_report.txt (CI
#      uploads it as an artifact on failure).
#
# The CI `lint` job installs clang so phases 1-3 run and block; the
# separate `analysis` job runs phase 4 via --analyze-only. Locally on a
# gcc-only box you still get phases 1 and 4, the repo-specific halves
# no other tool provides.
#
# Usage: scripts/lint.sh [--analyze-only] [lint-build-dir] [tsafety-build-dir]
#        (defaults: build-lint build-tsafety)
#
# Environment:
#   JOBS   parallelism for builds (default: nproc).
#
# Exit codes (CI maps these to named annotations):
#   0   clean (skipped phases count as clean)
#   30  a lint phase failed (findings, tidy errors, or analysis errors)
#   40  the cross-TU analyzer phase failed (taint/layering findings or
#       a stale baseline)
#   2   usage error
set -uo pipefail

cd "$(dirname "$0")/.."

ANALYZE_ONLY=0
if [[ "${1:-}" == "--analyze-only" ]]; then
  ANALYZE_ONLY=1
  shift
fi
if [[ "${1:-}" == --* ]]; then
  echo "lint.sh: unknown flag '$1'" >&2
  echo "usage: scripts/lint.sh [--analyze-only] [lint-build-dir] [tsafety-build-dir]" >&2
  exit 2
fi

BUILD_DIR="${1:-build-lint}"
TSAFETY_DIR="${2:-build-tsafety}"
JOBS="${JOBS:-$(nproc)}"

configure_build_dir() {
  cmake -B "${BUILD_DIR}" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
}

analyzer_phase() {
  echo "lint.sh: [4/4] cross-TU analyzer (tools/analyze) over src/ tools/ bench/"
  if ! configure_build_dir ||
     ! cmake --build "${BUILD_DIR}" -j "${JOBS}" --target spatial_analyze \
         > /dev/null; then
    echo "lint.sh: FAILED to build spatial_analyze" >&2
    return 1
  fi
  if ! "${BUILD_DIR}/tools/analyze/spatial_analyze" \
         --baseline tools/analyze/analysis_baseline.txt \
         --report "${BUILD_DIR}/analysis_report.txt" \
         src tools bench; then
    echo "lint.sh: cross-TU analysis FAILED" >&2
    echo "lint.sh: call-chain report: ${BUILD_DIR}/analysis_report.txt" >&2
    return 1
  fi
  return 0
}

if [[ "${ANALYZE_ONLY}" -eq 1 ]]; then
  if ! analyzer_phase; then
    exit 40
  fi
  echo "lint.sh: analyzer phase passed (--analyze-only)"
  exit 0
fi

# -- Phase 1: determinism lint ------------------------------------------

echo "lint.sh: [1/4] determinism lint (tools/lint) over src/ tools/ bench/"
if ! configure_build_dir ||
   ! cmake --build "${BUILD_DIR}" -j "${JOBS}" --target spatial_lint \
       > /dev/null; then
  echo "lint.sh: FAILED to build spatial_lint" >&2
  exit 30
fi
if ! "${BUILD_DIR}/tools/lint/spatial_lint" src tools bench; then
  echo "lint.sh: determinism lint FAILED" >&2
  exit 30
fi

# -- Phase 2: clang-tidy ------------------------------------------------

if command -v clang-tidy > /dev/null; then
  echo "lint.sh: [2/4] clang-tidy over src/ (.clang-tidy profile)"
  mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
  if ! printf '%s\n' "${tidy_sources[@]}" |
       xargs -P "${JOBS}" -n 4 clang-tidy -p "${BUILD_DIR}" --quiet; then
    echo "lint.sh: clang-tidy FAILED" >&2
    exit 30
  fi
else
  echo "lint.sh: [2/4] clang-tidy not installed — phase skipped"
fi

# -- Phase 3: Clang thread-safety build ---------------------------------

if command -v clang++ > /dev/null; then
  echo "lint.sh: [3/4] clang++ -Wthread-safety build of src/ libraries"
  if ! cmake -B "${TSAFETY_DIR}" -S . \
         -DCMAKE_BUILD_TYPE=Debug \
         -DCMAKE_CXX_COMPILER=clang++ \
         -DSPATIAL_THREAD_SAFETY=ON > /dev/null ||
     ! cmake --build "${TSAFETY_DIR}" -j "${JOBS}" --target \
         shadoop_common shadoop_geometry shadoop_fault shadoop_hdfs \
         shadoop_mapreduce shadoop_index shadoop_core shadoop_pigeon \
         shadoop_workload shadoop_viz; then
    echo "lint.sh: thread-safety build FAILED" >&2
    exit 30
  fi
else
  echo "lint.sh: [3/4] clang++ not installed — phase skipped"
fi

# -- Phase 4: cross-TU analyzer -----------------------------------------

if ! analyzer_phase; then
  exit 40
fi

echo "lint.sh: all lint phases passed"
