#!/usr/bin/env bash
# Static-analysis driver (DESIGN.md §11) — three phases, fastest first:
#
#   1. determinism lint: builds tools/lint (spatial_lint) and runs it
#      over src/. Repo-specific banned patterns: stray clocks, ambient
#      RNG, unordered-container iteration, naked std::mutex, <iostream>
#      in library code. Findings print as file:line: rule-id: message.
#   2. clang-tidy (skipped with a notice when not installed): the tuned
#      .clang-tidy profile over every .cc under src/, using the compile
#      database exported by phase 1's build tree. concurrency-* findings
#      are errors; other families annotate without blocking.
#   3. thread-safety build (skipped with a notice when clang++ is not
#      installed): recompiles every src/ library with
#      -DSPATIAL_THREAD_SAFETY=ON, i.e. -Wthread-safety
#      -Werror=thread-safety over the annotated lock discipline in
#      common/thread_annotations.h.
#
# The CI `lint` job installs clang so all three phases run and block;
# locally on a gcc-only box you still get phase 1, which is the
# repo-specific half no other tool provides.
#
# Usage: scripts/lint.sh [lint-build-dir] [thread-safety-build-dir]
#        (defaults: build-lint build-tsafety)
#
# Environment:
#   JOBS   parallelism for builds (default: nproc).
#
# Exit codes (CI maps these to named annotations):
#   0   clean (skipped phases count as clean)
#   30  a lint phase failed (findings, tidy errors, or analysis errors)
#   2   usage error
set -uo pipefail

cd "$(dirname "$0")/.."

if [[ "${1:-}" == --* ]]; then
  echo "lint.sh: unknown flag '$1'" >&2
  echo "usage: scripts/lint.sh [lint-build-dir] [tsafety-build-dir]" >&2
  exit 2
fi

BUILD_DIR="${1:-build-lint}"
TSAFETY_DIR="${2:-build-tsafety}"
JOBS="${JOBS:-$(nproc)}"

# -- Phase 1: determinism lint ------------------------------------------

echo "lint.sh: [1/3] determinism lint (tools/lint) over src/"
if ! cmake -B "${BUILD_DIR}" -S . \
       -DCMAKE_BUILD_TYPE=Debug \
       -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null ||
   ! cmake --build "${BUILD_DIR}" -j "${JOBS}" --target spatial_lint \
       > /dev/null; then
  echo "lint.sh: FAILED to build spatial_lint" >&2
  exit 30
fi
if ! "${BUILD_DIR}/tools/lint/spatial_lint" src; then
  echo "lint.sh: determinism lint FAILED" >&2
  exit 30
fi

# -- Phase 2: clang-tidy ------------------------------------------------

if command -v clang-tidy > /dev/null; then
  echo "lint.sh: [2/3] clang-tidy over src/ (.clang-tidy profile)"
  mapfile -t tidy_sources < <(find src -name '*.cc' | sort)
  if ! printf '%s\n' "${tidy_sources[@]}" |
       xargs -P "${JOBS}" -n 4 clang-tidy -p "${BUILD_DIR}" --quiet; then
    echo "lint.sh: clang-tidy FAILED" >&2
    exit 30
  fi
else
  echo "lint.sh: [2/3] clang-tidy not installed — phase skipped"
fi

# -- Phase 3: Clang thread-safety build ---------------------------------

if command -v clang++ > /dev/null; then
  echo "lint.sh: [3/3] clang++ -Wthread-safety build of src/ libraries"
  if ! cmake -B "${TSAFETY_DIR}" -S . \
         -DCMAKE_BUILD_TYPE=Debug \
         -DCMAKE_CXX_COMPILER=clang++ \
         -DSPATIAL_THREAD_SAFETY=ON > /dev/null ||
     ! cmake --build "${TSAFETY_DIR}" -j "${JOBS}" --target \
         shadoop_common shadoop_geometry shadoop_fault shadoop_hdfs \
         shadoop_mapreduce shadoop_index shadoop_core shadoop_pigeon \
         shadoop_workload shadoop_viz; then
    echo "lint.sh: thread-safety build FAILED" >&2
    exit 30
  fi
else
  echo "lint.sh: [3/3] clang++ not installed — phase skipped"
fi

echo "lint.sh: all lint phases passed"
