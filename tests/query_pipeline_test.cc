#include "core/query_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/operation_skeleton.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;
using mapreduce::JobResult;
using mapreduce::MapContext;

// ---------------------------------------------------------------------
// SpatialJobBuilder planning

TEST(QueryPipelineTest, MissingMapperIsRejected) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 100);
  SpatialJobBuilder builder(&cluster.runner);
  builder.ScanFile("/pts");
  EXPECT_TRUE(builder.Run(nullptr).status().IsInvalidArgument());
}

TEST(QueryPipelineTest, PlanErrorIsDeferredToRun) {
  testing::TestCluster cluster;
  SpatialJobBuilder builder(&cluster.runner);
  // Chaining continues after the failed scan; Run reports the first error.
  builder.ScanFile("/no-such-file").Map([]() {
    return std::unique_ptr<mapreduce::Mapper>();
  });
  EXPECT_FALSE(builder.plan_status().ok());
  EXPECT_FALSE(builder.Run(nullptr).ok());
}

TEST(QueryPipelineTest, ScanIndexedAppliesGlobalFilter) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 2000);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  ASSERT_GT(file.global_index.NumPartitions(), 1u);
  const int keep = file.global_index.partitions().front().id;
  SpatialJobBuilder builder(&cluster.runner);
  builder.ScanIndexed(file, [keep](const index::GlobalIndex&) {
    return std::vector<int>{keep};
  });
  EXPECT_TRUE(builder.plan_status().ok());
  EXPECT_EQ(builder.NumSplits(), 1u);

  SpatialJobBuilder unfiltered(&cluster.runner);
  unfiltered.ScanIndexed(file);
  EXPECT_EQ(unfiltered.NumSplits(), file.global_index.NumPartitions());
}

TEST(QueryPipelineTest, ScanFileTagsSplits) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/a", 600);
  testing::WritePoints(&cluster.fs, "/b", 600, workload::Distribution::kUniform,
                       9);
  class TagMapper : public mapreduce::Mapper {
   public:
    void BeginSplit(MapContext& ctx) override {
      ctx.WriteOutput(ctx.split().meta);
    }
    void Map(std::string_view, MapContext&) override {}
  };
  const JobResult result = SpatialJobBuilder(&cluster.runner)
                               .ScanFile("/a", "A")
                               .ScanFile("/b", "B")
                               .Map([]() { return std::make_unique<TagMapper>(); })
                               .Run(nullptr)
                               .ValueOrDie();
  EXPECT_TRUE(std::count(result.output.begin(), result.output.end(), "A") > 0);
  EXPECT_TRUE(std::count(result.output.begin(), result.output.end(), "B") > 0);
}

// ---------------------------------------------------------------------
// PartitionView

/// Mapper that checks the local R-tree is memoized: two LocalIndex calls
/// must return the same object, and the entry count must match Search.
class MemoMapper : public PartitionMapper {
 public:
  MemoMapper() : PartitionMapper(index::ShapeType::kPoint) {}

 protected:
  void Process(const SplitExtent& extent, PartitionView& view,
               MapContext& ctx) override {
    const index::PackedRTree& first = view.LocalIndex(ctx);
    const index::PackedRTree& second = view.LocalIndex(ctx);
    ctx.WriteOutput(&first == &second ? "memoized" : "rebuilt");
    const auto hits = view.Search(extent.mbr, ctx);
    ctx.WriteOutput("hits=" + std::to_string(hits.size()) +
                    " records=" + std::to_string(view.NumRecords()));
  }
};

TEST(QueryPipelineTest, PartitionViewMemoizesLocalIndex) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 800);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  const JobResult result = SpatialJobBuilder(&cluster.runner)
                               .ScanIndexed(file)
                               .Map([]() { return std::make_unique<MemoMapper>(); })
                               .Run(nullptr)
                               .ValueOrDie();
  size_t memoized = 0;
  size_t matched = 0;
  for (const std::string& line : result.output) {
    if (line == "memoized") ++memoized;
    ASSERT_NE(line, "rebuilt");
    // Searching the partition's own MBR must return every indexed record.
    const size_t eq = line.find("hits=");
    if (eq != std::string::npos) {
      const std::string counts = line.substr(5);
      auto fields = SplitString(counts, ' ');
      ASSERT_EQ(fields.size(), 2u);
      if (std::string(fields[0]) ==
          std::string(fields[1]).substr(std::string("records=").size())) {
        ++matched;
      }
    }
  }
  EXPECT_EQ(memoized, file.global_index.NumPartitions());
  EXPECT_EQ(matched, file.global_index.NumPartitions());
}

TEST(QueryPipelineTest, LocalIndexBuildIsChargedOnce) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 800);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);

  /// Calls Search N times; the build cost must be charged only on the
  /// first call, so job cost is independent of N apart from the searches.
  class RepeatSearchMapper : public PartitionMapper {
   public:
    explicit RepeatSearchMapper(int searches)
        : PartitionMapper(index::ShapeType::kPoint), searches_(searches) {}

   protected:
    void Process(const SplitExtent& extent, PartitionView& view,
                 MapContext& ctx) override {
      for (int i = 0; i < searches_; ++i) view.Search(extent.mbr, ctx);
    }

   private:
    int searches_;
  };

  auto run = [&](int searches) {
    OpStats stats;
    SHADOOP_CHECK_OK(SpatialJobBuilder(&cluster.runner)
                         .ScanIndexed(file)
                         .Map([searches]() {
                           return std::make_unique<RepeatSearchMapper>(
                               searches);
                         })
                         .Run(&stats)
                         .status());
    return stats.cost.total_ms;
  };
  const double once = run(1);
  const double twice = run(2);
  const double thrice = run(3);
  // Each extra Search adds only the (constant) search cost, never a
  // rebuild: the increments are equal.
  EXPECT_NEAR(twice - once, thrice - twice, 1e-9);
  EXPECT_GT(twice, once);
}

// ---------------------------------------------------------------------
// PairPartitionMapper

TEST(QueryPipelineTest, PairMapperSeparatesSides) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/a", 700);
  testing::WritePoints(&cluster.fs, "/b", 900, workload::Distribution::kUniform,
                       11);
  const auto file_a = testing::BuildIndex(&cluster.runner, "/a", "/a.idx",
                                          PartitionScheme::kGrid);
  const auto file_b = testing::BuildIndex(&cluster.runner, "/b", "/b.idx",
                                          PartitionScheme::kGrid);
  const auto pairs = index::OverlappingPartitionPairs(file_a.global_index,
                                                      file_b.global_index);
  ASSERT_FALSE(pairs.empty());

  class SideCountMapper : public PairPartitionMapper {
   public:
    SideCountMapper()
        : PairPartitionMapper(index::ShapeType::kPoint,
                              index::ShapeType::kPoint) {}

   protected:
    void Process(const SplitExtent& extent_a, const SplitExtent& extent_b,
                 PartitionView& view_a, PartitionView& view_b,
                 MapContext& ctx) override {
      // Every A record must lie in the A partition's cell, and similarly
      // for B — proving blocks were routed to the right side.
      for (const Point& p : view_a.Points()) {
        if (!extent_a.mbr.Contains(p)) ctx.WriteOutput("misrouted-a");
      }
      for (const Point& p : view_b.Points()) {
        if (!extent_b.mbr.Contains(p)) ctx.WriteOutput("misrouted-b");
      }
      ctx.WriteOutput("a=" + std::to_string(view_a.NumRecords()) +
                      " b=" + std::to_string(view_b.NumRecords()));
    }
  };

  const JobResult result =
      SpatialJobBuilder(&cluster.runner)
          .ScanPartitionPairs(file_a, file_b, pairs)
          .Map([]() { return std::make_unique<SideCountMapper>(); })
          .Run(nullptr)
          .ValueOrDie();
  ASSERT_EQ(result.output.size(), pairs.size());
  for (const std::string& line : result.output) {
    EXPECT_TRUE(line.rfind("a=", 0) == 0) << line;
  }
}

// ---------------------------------------------------------------------
// Fault injection through the builder

TEST(QueryPipelineTest, FaultInjectorRetriesThroughBuilder) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 300);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  class CountMapper : public PartitionMapper {
   public:
    CountMapper() : PartitionMapper(index::ShapeType::kPoint) {}

   protected:
    void Process(const SplitExtent&, PartitionView& view,
                 MapContext& ctx) override {
      ctx.WriteOutput(std::to_string(view.NumRecords()));
    }
  };
  auto mapper = []() { return std::make_unique<CountMapper>(); };

  // First attempt of every task fails; retries succeed.
  const JobResult retried =
      SpatialJobBuilder(&cluster.runner)
          .ScanIndexed(file)
          .Map(mapper)
          .WithFaultInjector([](int, int attempt) { return attempt == 1; })
          .Run(nullptr)
          .ValueOrDie();
  size_t total = 0;
  for (const std::string& line : retried.output) {
    total += ParseInt64(line).ValueOrDie();
  }
  EXPECT_EQ(total, 300u);

  // Persistent faults exhaust max_task_attempts and fail the job.
  EXPECT_FALSE(SpatialJobBuilder(&cluster.runner)
                   .ScanIndexed(file)
                   .Map(mapper)
                   .WithFaultInjector([](int, int) { return true; })
                   .MaxTaskAttempts(2)
                   .Run(nullptr)
                   .ok());
}

// ---------------------------------------------------------------------
// ParallelMerge

TEST(QueryPipelineTest, ParallelMergeSpreadsReducers) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 4000);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  ASSERT_GE(file.global_index.NumPartitions(), 8u);

  class EmitOneMapper : public PartitionMapper {
   public:
    EmitOneMapper() : PartitionMapper(index::ShapeType::kPoint) {}

   protected:
    void Process(const SplitExtent&, PartitionView& view,
                 MapContext& ctx) override {
      ctx.Emit("K", std::to_string(view.NumRecords()));
    }
  };
  class EchoReducer : public mapreduce::Reducer {
   public:
    void Reduce(const std::string&, const std::vector<std::string>& values,
                mapreduce::ReduceContext& ctx) override {
      for (const std::string& v : values) ctx.Write(v);
    }
  };

  SpatialJobBuilder builder(&cluster.runner);
  builder.ScanIndexed(file);
  const size_t splits = builder.NumSplits();
  OpStats stats;
  const JobResult result =
      builder.Map([]() { return std::make_unique<EmitOneMapper>(); })
          .ParallelMerge([]() { return std::make_unique<EchoReducer>(); })
          .Run(&stats)
          .ValueOrDie();
  const int expected = std::min<int>(
      cluster.runner.cluster().num_slots,
      std::max<int>(1, static_cast<int>(splits) / 4));
  EXPECT_EQ(result.cost.num_reduce_tasks, expected);
  EXPECT_GT(expected, 1);
  // No row is lost in the pre-merge round.
  EXPECT_EQ(result.output.size(), splits);
  EXPECT_EQ(stats.jobs_run, 1);
}

// ---------------------------------------------------------------------
// OperationSkeleton semantics on the shared pipeline

TEST(QueryPipelineTest, SkeletonEarlyFlushPrecedesMergeOutput) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 400);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  OperationSkeleton op;
  op.name = "flush-and-merge";
  op.local = [](const SplitExtent&, const std::vector<std::string>& records,
                LocalOutput* out) {
    out->ToOutput("flushed:" + std::to_string(records.size()));
    out->ToMerge(std::to_string(records.size()));
  };
  op.merge = [](const std::vector<std::string>& candidates,
                std::vector<std::string>* final_out) {
    int64_t total = 0;
    for (const std::string& c : candidates) total += ParseInt64(c).ValueOrDie();
    final_out->push_back("merged:" + std::to_string(total));
  };
  const auto rows = RunOperation(&cluster.runner, file, op).ValueOrDie();
  const size_t parts = file.global_index.NumPartitions();
  ASSERT_EQ(rows.size(), parts + 1);
  for (size_t i = 0; i < parts; ++i) {
    EXPECT_EQ(rows[i].rfind("flushed:", 0), 0u) << rows[i];
  }
  EXPECT_EQ(rows.back(), "merged:400");
}

TEST(QueryPipelineTest, SkeletonWithoutMergePassesCandidatesThrough) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 300);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  OperationSkeleton op;
  op.name = "pass-through";
  op.local = [](const SplitExtent&, const std::vector<std::string>& records,
                LocalOutput* out) {
    out->ToOutput("flushed");
    out->ToMerge("candidate:" + std::to_string(records.size()));
  };
  const auto rows = RunOperation(&cluster.runner, file, op).ValueOrDie();
  const size_t parts = file.global_index.NumPartitions();
  ASSERT_EQ(rows.size(), 2 * parts);
  // Without a merge function, candidates are appended unchanged after the
  // early-flushed rows.
  size_t total = 0;
  for (size_t i = parts; i < rows.size(); ++i) {
    ASSERT_EQ(rows[i].rfind("candidate:", 0), 0u) << rows[i];
    total += ParseInt64(rows[i].substr(std::string("candidate:").size()))
                 .ValueOrDie();
  }
  EXPECT_EQ(total, 300u);
}

// ---------------------------------------------------------------------
// Counters heterogeneous lookup

TEST(QueryPipelineTest, CountersAcceptStringViews) {
  mapreduce::Counters counters;
  counters.Increment("alpha");
  counters.Increment(std::string_view("alpha"), 2);
  counters.Increment(std::string("beta"), 5);
  EXPECT_EQ(counters.Get("alpha"), 3);
  EXPECT_EQ(counters.Get(std::string_view("beta")), 5);
  EXPECT_EQ(counters.Get("never-set"), 0);

  mapreduce::Counters other;
  other.Increment("alpha", 10);
  counters.MergeFrom(other);
  EXPECT_EQ(counters.Get("alpha"), 13);
}

}  // namespace
}  // namespace shadoop::core
