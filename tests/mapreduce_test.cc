#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "common/random.h"
#include "common/string_util.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job_runner.h"
#include "test_util.h"

namespace shadoop::mapreduce {
namespace {

/// Classic word count: validates map -> shuffle -> reduce plumbing.
class WordCountMapper : public Mapper {
 public:
  void Map(std::string_view record, MapContext& ctx) override {
    for (std::string_view word : SplitWhitespace(record)) {
      ctx.Emit(std::string(word), "1");
    }
  }
};

class SumReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext& ctx) override {
    ctx.Write(key + "=" + std::to_string(values.size()));
  }
};

JobConfig WordCountJob(hdfs::FileSystem& fs, const std::string& path,
                       int num_reducers) {
  JobConfig job;
  job.name = "wordcount";
  job.splits = MakeBlockSplits(fs, path).ValueOrDie();
  job.mapper = []() { return std::make_unique<WordCountMapper>(); };
  job.reducer = []() { return std::make_unique<SumReducer>(); };
  job.num_reducers = num_reducers;
  return job;
}

TEST(MapReduceTest, WordCount) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/text", {"a b a", "c b", "a"})
                  .ok());
  JobResult result = cluster.runner.Run(WordCountJob(cluster.fs, "/text", 1));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.output, (std::vector<std::string>{"a=3", "b=2", "c=1"}));
}

TEST(MapReduceTest, MultipleReducersProduceSameGroups) {
  testing::TestCluster cluster;
  std::vector<std::string> lines;
  for (int i = 0; i < 200; ++i) {
    lines.push_back("w" + std::to_string(i % 17));
  }
  ASSERT_TRUE(cluster.fs.WriteLines("/text", lines).ok());
  JobResult r1 = cluster.runner.Run(WordCountJob(cluster.fs, "/text", 1));
  JobResult r5 = cluster.runner.Run(WordCountJob(cluster.fs, "/text", 5));
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r5.status.ok());
  std::vector<std::string> a = r1.output;
  std::vector<std::string> b = r5.output;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 17u);
}

TEST(MapReduceTest, CombinerReducesShuffleBytes) {
  testing::TestCluster cluster;
  std::vector<std::string> lines(500, "x y x");
  ASSERT_TRUE(cluster.fs.WriteLines("/text", lines).ok());

  JobConfig plain = WordCountJob(cluster.fs, "/text", 1);
  JobResult without = cluster.runner.Run(plain);
  ASSERT_TRUE(without.status.ok());

  // A count-preserving combiner: re-emits one value per occurrence count.
  class CountCombiner : public Reducer {
   public:
    void Reduce(const std::string& key, const std::vector<std::string>& values,
                ReduceContext& ctx) override {
      (void)key;
      ctx.Write(std::to_string(values.size()));
    }
  };
  class WeightedSumReducer : public Reducer {
   public:
    void Reduce(const std::string& key, const std::vector<std::string>& values,
                ReduceContext& ctx) override {
      int64_t total = 0;
      for (const std::string& v : values) {
        total += ParseInt64(v).ValueOrDie();
      }
      ctx.Write(key + "=" + std::to_string(total));
    }
  };
  JobConfig combined = WordCountJob(cluster.fs, "/text", 1);
  combined.combiner = []() { return std::make_unique<CountCombiner>(); };
  combined.reducer = []() { return std::make_unique<WeightedSumReducer>(); };
  JobResult with = cluster.runner.Run(combined);
  ASSERT_TRUE(with.status.ok());

  EXPECT_EQ(with.output, (std::vector<std::string>{"x=1000", "y=500"}));
  EXPECT_LT(with.cost.bytes_shuffled, without.cost.bytes_shuffled / 10);
}

TEST(MapReduceTest, MapOnlyJobWritesDirectOutput) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/in", {"1", "2", "3"}).ok());
  class PassMapper : public Mapper {
   public:
    void Map(std::string_view record, MapContext& ctx) override {
      ctx.WriteOutput("out:" + std::string(record));
    }
  };
  JobConfig job;
  job.splits = MakeBlockSplits(cluster.fs, "/in").ValueOrDie();
  job.mapper = []() { return std::make_unique<PassMapper>(); };
  job.output_path = "/out";
  JobResult result = cluster.runner.Run(job);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.cost.num_reduce_tasks, 0);
  EXPECT_EQ(cluster.fs.ReadLines("/out").ValueOrDie(),
            (std::vector<std::string>{"out:1", "out:2", "out:3"}));
}

TEST(MapReduceTest, InjectedFaultIsRetried) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/in", {"r"}).ok());
  class PassMapper : public Mapper {
   public:
    void Map(std::string_view record, MapContext& ctx) override {
      ctx.WriteOutput(record);
    }
  };
  JobConfig job;
  job.splits = MakeBlockSplits(cluster.fs, "/in").ValueOrDie();
  job.mapper = []() { return std::make_unique<PassMapper>(); };
  job.fault_injector = [](int task, int attempt) {
    return task == 0 && attempt == 1;  // First attempt fails.
  };
  JobResult result = cluster.runner.Run(job);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.output, std::vector<std::string>{"r"});
}

TEST(MapReduceTest, PersistentFaultFailsTheJob) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/in", {"r"}).ok());
  class PassMapper : public Mapper {
   public:
    void Map(std::string_view record, MapContext& ctx) override {
      ctx.WriteOutput(record);
    }
  };
  JobConfig job;
  job.splits = MakeBlockSplits(cluster.fs, "/in").ValueOrDie();
  job.mapper = []() { return std::make_unique<PassMapper>(); };
  job.fault_injector = [](int, int) { return true; };
  JobResult result = cluster.runner.Run(job);
  EXPECT_TRUE(result.status.IsIoError());
}

TEST(MapReduceTest, UserFailureSurfacesStatus) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/in", {"bad"}).ok());
  class FailMapper : public Mapper {
   public:
    void Map(std::string_view record, MapContext& ctx) override {
      ctx.Fail(Status::ParseError("cannot parse " + std::string(record)));
    }
  };
  JobConfig job;
  job.splits = MakeBlockSplits(cluster.fs, "/in").ValueOrDie();
  job.mapper = []() { return std::make_unique<FailMapper>(); };
  JobResult result = cluster.runner.Run(job);
  EXPECT_TRUE(result.status.IsParseError());
}

TEST(MapReduceTest, CostModelChargesStartupAndScan) {
  testing::TestCluster cluster;
  std::vector<std::string> lines(2000, "0123456789");
  ASSERT_TRUE(cluster.fs.WriteLines("/in", lines).ok());
  class NullMapper : public Mapper {
   public:
    void Map(std::string_view, MapContext&) override {}
  };
  JobConfig job;
  job.splits = MakeBlockSplits(cluster.fs, "/in").ValueOrDie();
  job.mapper = []() { return std::make_unique<NullMapper>(); };
  JobResult result = cluster.runner.Run(job);
  ASSERT_TRUE(result.status.ok());
  const ClusterConfig& cfg = cluster.runner.cluster();
  EXPECT_GE(result.cost.total_ms, cfg.job_startup_ms);
  EXPECT_EQ(result.cost.bytes_read, 2000u * 11);
  EXPECT_GT(result.cost.map_makespan_ms, cfg.task_startup_ms);
}

TEST(MapReduceTest, SimulatedCostIsDeterministic) {
  testing::TestCluster cluster;
  std::vector<std::string> lines(300, "a b c d");
  ASSERT_TRUE(cluster.fs.WriteLines("/in", lines).ok());
  JobResult r1 = cluster.runner.Run(WordCountJob(cluster.fs, "/in", 3));
  JobResult r2 = cluster.runner.Run(WordCountJob(cluster.fs, "/in", 3));
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_DOUBLE_EQ(r1.cost.total_ms, r2.cost.total_ms);
  EXPECT_EQ(r1.output, r2.output);
}

TEST(MakespanTest, GreedyScheduling) {
  EXPECT_DOUBLE_EQ(Makespan({}, 4), 0.0);
  EXPECT_DOUBLE_EQ(Makespan({5.0}, 4), 5.0);
  EXPECT_DOUBLE_EQ(Makespan({1, 1, 1, 1}, 4), 1.0);
  EXPECT_DOUBLE_EQ(Makespan({1, 1, 1, 1}, 2), 2.0);
  EXPECT_DOUBLE_EQ(Makespan({4, 1, 1, 1, 1}, 2), 4.0);
  EXPECT_DOUBLE_EQ(Makespan({1, 1}, 1), 2.0);
}

TEST(MakespanTest, MoreSlotsNeverSlower) {
  std::vector<double> tasks;
  Random rng(7);
  for (int i = 0; i < 50; ++i) tasks.push_back(rng.NextDouble(0.1, 10.0));
  double previous = Makespan(tasks, 1);
  for (int slots = 2; slots <= 64; slots *= 2) {
    const double current = Makespan(tasks, slots);
    EXPECT_LE(current, previous + 1e-9);
    previous = current;
  }
}

}  // namespace
}  // namespace shadoop::mapreduce
