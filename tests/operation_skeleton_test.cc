#include <gtest/gtest.h>

#include <algorithm>

#include "common/string_util.h"
#include "core/operation_skeleton.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;

/// A complete custom operation in ~20 lines: the 5 north-most points.
/// Filter: partitions whose MBR reaches the top band. Local: this
/// partition's 5 north-most. Merge: global top 5.
OperationSkeleton TopNorthOperation(size_t n) {
  OperationSkeleton op;
  op.name = "top-north";
  op.filter = [n](const index::GlobalIndex& gi) {
    // Keep the partitions whose MBR top edge is among the n highest: a
    // partition below n other partitions' top edges cannot contribute.
    std::vector<double> tops;
    for (const auto& p : gi.partitions()) tops.push_back(p.mbr.max_y());
    std::sort(tops.begin(), tops.end(), std::greater<double>());
    const double cutoff = tops[std::min(tops.size() - 1, n - 1)];
    std::vector<int> keep;
    for (const auto& p : gi.partitions()) {
      if (p.mbr.max_y() >= cutoff) keep.push_back(p.id);
    }
    return keep;
  };
  op.local = [n](const SplitExtent&, const std::vector<std::string>& records,
                 LocalOutput* out) {
    std::vector<std::pair<double, std::string>> by_y;
    for (const std::string& record : records) {
      auto p = index::RecordPoint(record);
      if (p.ok()) by_y.emplace_back(-p.value().y, record);
    }
    std::sort(by_y.begin(), by_y.end());
    out->ChargeCpu(records.size() * 50);
    for (size_t i = 0; i < by_y.size() && i < n; ++i) {
      out->ToMerge(by_y[i].second);
    }
  };
  op.merge = [n](const std::vector<std::string>& candidates,
                 std::vector<std::string>* final_out) {
    std::vector<std::pair<double, std::string>> by_y;
    for (const std::string& record : candidates) {
      auto p = index::RecordPoint(record);
      if (p.ok()) by_y.emplace_back(-p.value().y, record);
    }
    std::sort(by_y.begin(), by_y.end());
    for (size_t i = 0; i < by_y.size() && i < n; ++i) {
      final_out->push_back(by_y[i].second);
    }
  };
  return op;
}

TEST(OperationSkeletonTest, CustomTopNorthMatchesBruteForce) {
  testing::TestCluster cluster;
  // Uniform data: no duplicate y values (the clustered generator clamps
  // many points to the space edge, making "top 5 by y" ambiguous).
  const auto points = testing::WritePoints(&cluster.fs, "/pts", 3000,
                                           workload::Distribution::kUniform,
                                           7);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kStr);
  OpStats stats;
  const auto rows =
      RunOperation(&cluster.runner, file, TopNorthOperation(5), &stats)
          .ValueOrDie();
  std::vector<Point> expected = points;
  std::sort(expected.begin(), expected.end(),
            [](const Point& a, const Point& b) { return a.y > b.y; });
  ASSERT_EQ(rows.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(index::RecordPoint(rows[i]).ValueOrDie(), expected[i])
        << "rank " << i;
  }
  // The filter pruned partitions (most do not reach the top band).
  EXPECT_LT(stats.cost.num_map_tasks,
            static_cast<int>(file.global_index.NumPartitions()));
}

TEST(OperationSkeletonTest, EarlyFlushBypassesMerge) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 500);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  // An operation that early-flushes per-partition record counts and sends
  // nothing to merge: per-partition statistics, map-only.
  OperationSkeleton op;
  op.name = "partition-counts";
  op.local = [](const SplitExtent& extent,
                const std::vector<std::string>& records, LocalOutput* out) {
    out->ToOutput(EnvelopeToCsv(extent.cell) + " -> " +
                  std::to_string(records.size()));
  };
  const auto rows =
      RunOperation(&cluster.runner, file, op).ValueOrDie();
  EXPECT_EQ(rows.size(), file.global_index.NumPartitions());
  size_t total = 0;
  for (const std::string& row : rows) {
    total += ParseInt64(row.substr(row.find("-> ") + 3)).ValueOrDie();
  }
  EXPECT_EQ(total, 500u);
}

TEST(OperationSkeletonTest, MissingLocalFunctionRejected) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 50);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  OperationSkeleton op;
  EXPECT_TRUE(RunOperation(&cluster.runner, file, op)
                  .status()
                  .IsInvalidArgument());
}

TEST(OperationSkeletonTest, DefaultMergeAppendsCandidates) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 200);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  OperationSkeleton op;
  op.name = "echo-first";
  op.local = [](const SplitExtent&, const std::vector<std::string>& records,
                LocalOutput* out) {
    if (!records.empty()) out->ToMerge(records.front());
  };
  const auto rows = RunOperation(&cluster.runner, file, op).ValueOrDie();
  EXPECT_EQ(rows.size(), file.global_index.NumPartitions());
}

}  // namespace
}  // namespace shadoop::core
