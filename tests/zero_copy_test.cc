#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/range_query.h"
#include "core/spatial_record_reader.h"
#include "geometry/wkt.h"
#include "hdfs/block_arena.h"
#include "index/record_shape.h"
#include "mapreduce/thread_pool.h"
#include "test_util.h"

namespace shadoop {
namespace {

using core::SpatialRecordReader;
using hdfs::BlockArena;
using index::ShapeType;

// ---------------------------------------------------------------------
// BlockArena lifetime guarantees. These tests are part of the ASan suite
// (scripts/check.sh): a violated lifetime contract shows up as a
// use-after-free under the sanitizer, not just a value mismatch.

TEST(BlockArenaTest, InternedViewsStayValidAcrossChunkGrowth) {
  BlockArena arena;
  std::vector<std::string> originals;
  std::vector<std::string_view> views;
  // Far more than one 16 KiB chunk, with sizes straddling the chunk
  // boundary, so growth allocates many new chunks while old views are
  // still held.
  for (int i = 0; i < 4000; ++i) {
    originals.push_back("record-" + std::to_string(i) + "-" +
                        std::string(static_cast<size_t>(i % 97), 'x'));
    views.push_back(arena.Intern(originals.back()));
  }
  // An interned view larger than the minimum chunk gets its own chunk.
  const std::string huge(64 * 1024, 'h');
  const std::string_view huge_view = arena.Intern(huge);
  for (size_t i = 0; i < views.size(); ++i) {
    EXPECT_EQ(views[i], originals[i]);
  }
  EXPECT_EQ(huge_view, huge);
  EXPECT_GT(arena.interned_bytes(), size_t{64} * 1024);
}

TEST(BlockArenaTest, AddBlockPinsPayloadBeyondCallerRelease) {
  BlockArena arena;
  std::vector<std::string_view> records;
  {
    auto payload = std::make_shared<const std::string>("1,2\n3,4\nuntermina"
                                                       "ted");
    records = arena.AddBlock(payload);
    // The caller's reference dies here; the arena's pin must keep the
    // bytes alive.
  }
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "1,2");
  EXPECT_EQ(records[1], "3,4");
  EXPECT_EQ(records[2], "unterminated");
  EXPECT_EQ(arena.pinned_blocks(), 1u);
}

TEST(BlockArenaTest, OpResultsOutliveArenaEviction) {
  // Views produced from arena bytes are materialized into owned strings
  // by every operation before they escape; this mirrors that flow and
  // lets ASan prove the owned results don't alias evicted chunks.
  std::vector<std::string> results;
  {
    BlockArena arena;
    for (int i = 0; i < 1000; ++i) {
      std::string_view v = arena.Intern("row-" + std::to_string(i));
      if (i % 3 == 0) results.emplace_back(v);
    }
    arena.Clear();  // Evicts every chunk; `results` must not notice.
    EXPECT_TRUE(arena.empty());
  }
  ASSERT_EQ(results.size(), 334u);
  EXPECT_EQ(results.front(), "row-0");
  EXPECT_EQ(results.back(), "row-999");
}

// ---------------------------------------------------------------------
// SpatialRecordReader: parse-once columns and reuse after Clear().

TEST(SpatialRecordReaderTest, GeometryIsParsedOncePerRecord) {
  SpatialRecordReader reader(ShapeType::kPoint);
  for (int i = 0; i < 100; ++i) {
    reader.Add(PointToCsv(Point(i, -i)));
  }
  index::ResetGeometryParseCount();
  const auto first = reader.Envelopes();
  EXPECT_EQ(index::GeometryParseCount(), 100u);
  // Every later access — repeat accessors, point lookups, the R-tree
  // bulk load — reads the memoized columns.
  const auto second = reader.Envelopes();
  reader.Points();
  reader.BuildLocalIndex();
  for (size_t i = 0; i < reader.NumRecords(); ++i) {
    ASSERT_NE(reader.EnvelopeAt(i), nullptr);
    ASSERT_NE(reader.PointAt(i), nullptr);
  }
  EXPECT_EQ(index::GeometryParseCount(), 100u);
  ASSERT_EQ(first.size(), second.size());
}

TEST(SpatialRecordReaderTest, LocalIndexHeaderFeedsEnvelopesWithoutParsing) {
  std::vector<Envelope> envelopes = {Envelope(0, 0, 0, 0),
                                     Envelope(5, 5, 5, 5)};
  SpatialRecordReader reader(ShapeType::kPoint);
  reader.Add(index::EncodeLocalIndexHeader(envelopes));
  reader.Add("0,0");
  reader.Add("5,5");
  ASSERT_TRUE(reader.has_local_index());
  index::ResetGeometryParseCount();
  const auto entries = reader.Envelopes();
  EXPECT_EQ(index::GeometryParseCount(), 0u);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].box, envelopes[1]);
}

TEST(SpatialRecordReaderTest, ClearDropsPreparsedEnvelopesAndColumns) {
  SpatialRecordReader reader(ShapeType::kPoint);
  reader.Add(index::EncodeLocalIndexHeader(
      {Envelope(1, 1, 1, 1), Envelope(2, 2, 2, 2)}));
  reader.Add("1,1");
  reader.Add("2,2");
  ASSERT_TRUE(reader.has_local_index());
  ASSERT_EQ(reader.Envelopes().size(), 2u);

  reader.Clear();
  EXPECT_EQ(reader.NumRecords(), 0u);
  EXPECT_FALSE(reader.has_local_index());
  EXPECT_EQ(reader.bad_records(), 0u);

  // Reuse with a different record count and NO header: were the two
  // stale preparsed envelopes still around, they would either be served
  // for the wrong records or trip has_local_index() at size 2.
  reader.Add("10,10");
  reader.Add("not-a-point");
  reader.Add("30,30");
  EXPECT_FALSE(reader.has_local_index());
  const auto entries = reader.Envelopes();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].box, Envelope::FromPoint(Point(10, 10)));
  EXPECT_EQ(entries[1].box, Envelope::FromPoint(Point(30, 30)));
  EXPECT_EQ(entries[1].payload, 2u);
  EXPECT_EQ(reader.bad_records(), 1u);
  EXPECT_EQ(reader.EnvelopeAt(1), nullptr);
}

TEST(SpatialRecordReaderTest, ClearAlsoReleasesInternedBytes) {
  SpatialRecordReader reader(ShapeType::kPoint);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 500; ++i) {
      // Add() interns (the temporary dies immediately); records() views
      // must point at arena-owned bytes.
      reader.Add(PointToCsv(Point(round, i)));
    }
    ASSERT_EQ(reader.NumRecords(), 500u);
    EXPECT_EQ(reader.records().front(), PointToCsv(Point(round, 0)));
    EXPECT_EQ(reader.Points().size(), 500u);
    reader.Clear();
  }
  EXPECT_EQ(reader.NumRecords(), 0u);
}

TEST(SpatialRecordReaderTest, BorrowedViewsStableWhileArenaGrows) {
  // Mixing borrowed and interned records: growing the intern arena must
  // never move previously added records of either kind.
  const std::string stable_a = "1,2";
  const std::string stable_b = "3,4";
  SpatialRecordReader reader(ShapeType::kPoint);
  reader.AddBorrowed(stable_a);
  for (int i = 0; i < 2000; ++i) {
    reader.Add(PointToCsv(Point(i, i)));
  }
  reader.AddBorrowed(stable_b);
  EXPECT_EQ(reader.records().front(), "1,2");
  EXPECT_EQ(reader.records().back(), "3,4");
  EXPECT_EQ(reader.records().front().data(), stable_a.data());
  EXPECT_EQ(reader.Points().size(), 2002u);
}

// ---------------------------------------------------------------------
// End-to-end: a job over a local-indexed file parses nothing, and the
// parse count never exceeds one per record processed.

TEST(ZeroCopyJobTest, IndexedRangeQueryParsesNothingWithPersistedLidx) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 3000);
  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  options.scheme = index::PartitionScheme::kStr;
  options.build_local_indexes = true;
  const auto file = builder.Build("/pts", "/pts.idx", options).ValueOrDie();

  const Envelope query(2e5, 2e5, 7e5, 7e5);
  index::ResetGeometryParseCount();
  const auto rows =
      core::RangeQuerySpatial(&cluster.runner, file, query).ValueOrDie();
  // Every envelope comes from the persisted #lidx headers.
  EXPECT_EQ(index::GeometryParseCount(), 0u);

  size_t expected = 0;
  for (const Point& p : points) expected += query.Contains(p);
  EXPECT_EQ(rows.size(), expected);
}

TEST(ZeroCopyJobTest, UnindexedScanParsesEachRecordAtMostOnce) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 2000);
  index::ResetGeometryParseCount();
  const Envelope query(0, 0, 5e5, 5e5);
  const auto rows = core::RangeQueryHadoop(&cluster.runner, "/pts",
                                           ShapeType::kPoint, query)
                        .ValueOrDie();
  EXPECT_FALSE(rows.empty());
  EXPECT_LE(index::GeometryParseCount(), 2000u);
}

// ---------------------------------------------------------------------
// ThreadPool.

TEST(ThreadPoolTest, CoversEveryIndexAndToleratesNesting) {
  mapreduce::ThreadPool& pool = mapreduce::ThreadPool::Shared();
  std::vector<std::atomic<int>> hits(512);
  pool.ParallelFor(hits.size(), 8, [&](size_t i) {
    // Nested calls degrade to serial execution; they must still cover
    // every index without deadlocking.
    if (i == 0) {
      pool.ParallelFor(4, 4, [&](size_t j) { hits[j].fetch_add(0); });
    }
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, SerialAndParallelProduceSameAggregate) {
  mapreduce::ThreadPool& pool = mapreduce::ThreadPool::Shared();
  auto run = [&](int parallelism) {
    std::vector<uint64_t> out(1000);
    pool.ParallelFor(out.size(), parallelism,
                     [&](size_t i) { out[i] = i * i; });
    uint64_t sum = 0;
    for (uint64_t v : out) sum += v;
    return sum;
  };
  const uint64_t serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(64), serial);
}

}  // namespace
}  // namespace shadoop
