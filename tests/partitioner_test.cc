#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>

#include "index/grid_partitioner.h"
#include "index/partitioner.h"
#include "test_util.h"
#include "workload/generators.h"

namespace shadoop::index {
namespace {

using workload::Distribution;

struct PartitionerCase {
  PartitionScheme scheme;
  Distribution distribution;
};

std::string CaseName(
    const ::testing::TestParamInfo<PartitionerCase>& info) {
  std::string name = PartitionSchemeName(info.param.scheme);
  name += "_";
  name += workload::DistributionName(info.param.distribution);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
  }
  return name;
}

class PartitionerPropertyTest
    : public ::testing::TestWithParam<PartitionerCase> {
 protected:
  void SetUp() override {
    workload::PointGenOptions options;
    options.distribution = GetParam().distribution;
    options.count = 4000;
    options.seed = 99;
    points_ = workload::GeneratePoints(options);
    for (const Point& p : points_) space_.ExpandToInclude(p);

    partitioner_ = MakePartitioner(GetParam().scheme).ValueOrDie();
    // Sample: every 10th point.
    std::vector<Point> sample;
    for (size_t i = 0; i < points_.size(); i += 10) sample.push_back(points_[i]);
    ASSERT_TRUE(partitioner_->Construct(space_, sample, 16).ok());
  }

  std::vector<Point> points_;
  Envelope space_;
  std::unique_ptr<Partitioner> partitioner_;
};

TEST_P(PartitionerPropertyTest, EveryPointGetsExactlyOneCell) {
  for (const Point& p : points_) {
    const int cell = partitioner_->AssignPoint(p);
    ASSERT_GE(cell, 0);
    ASSERT_LT(cell, partitioner_->NumCells());
  }
}

TEST_P(PartitionerPropertyTest, DisjointCellsContainTheirPoints) {
  if (!partitioner_->IsDisjoint()) GTEST_SKIP();
  for (const Point& p : points_) {
    const int cell = partitioner_->AssignPoint(p);
    const Envelope extent = partitioner_->CellExtent(cell);
    EXPECT_TRUE(extent.Contains(p))
        << "point " << p.x << "," << p.y << " not in cell "
        << extent.ToString();
  }
}

TEST_P(PartitionerPropertyTest, DisjointCellsTileTheSpace) {
  if (!partitioner_->IsDisjoint()) GTEST_SKIP();
  // Total cell area equals the space area (no gaps, no overlaps).
  double total = 0;
  for (int id = 0; id < partitioner_->NumCells(); ++id) {
    total += partitioner_->CellExtent(id).Area();
  }
  EXPECT_NEAR(total, space_.Area(), space_.Area() * 1e-9);
}

TEST_P(PartitionerPropertyTest, EnvelopeAssignmentCoversContainingCells) {
  Random rng(5);
  for (int i = 0; i < 100; ++i) {
    const Point c(rng.NextDouble(space_.min_x(), space_.max_x()),
                  rng.NextDouble(space_.min_y(), space_.max_y()));
    const Envelope box(c.x, c.y,
                       std::min(space_.max_x(), c.x + space_.Width() * 0.03),
                       std::min(space_.max_y(), c.y + space_.Height() * 0.03));
    const std::vector<int> cells = partitioner_->AssignEnvelope(box);
    ASSERT_FALSE(cells.empty());
    if (partitioner_->IsDisjoint()) {
      // Every cell intersecting the box must be present.
      for (int id = 0; id < partitioner_->NumCells(); ++id) {
        const bool overlaps = partitioner_->CellExtent(id).Intersects(box);
        const bool listed =
            std::find(cells.begin(), cells.end(), id) != cells.end();
        EXPECT_EQ(overlaps, listed) << "cell " << id;
      }
    } else {
      // Single-placement schemes store the shape exactly once.
      EXPECT_EQ(cells.size(), 1u);
    }
  }
}

TEST_P(PartitionerPropertyTest, AdaptiveSchemesBalanceSkewedData) {
  // The uniform grid is expected to fail this on skewed data; the
  // sample-based techniques must keep the largest cell within a small
  // multiple of the average.
  if (GetParam().scheme == PartitionScheme::kGrid) GTEST_SKIP();
  if (GetParam().distribution == Distribution::kUniform) GTEST_SKIP();
  std::map<int, size_t> counts;
  for (const Point& p : points_) counts[partitioner_->AssignPoint(p)]++;
  size_t max_count = 0;
  for (const auto& [cell, count] : counts) max_count = std::max(max_count, count);
  const double average =
      static_cast<double>(points_.size()) / partitioner_->NumCells();
  EXPECT_LT(static_cast<double>(max_count), 6.0 * average);
}

std::vector<PartitionerCase> AllCases() {
  std::vector<PartitionerCase> cases;
  for (PartitionScheme scheme : testing::AllSchemes()) {
    for (Distribution dist :
         {Distribution::kUniform, Distribution::kGaussian,
          Distribution::kClustered, Distribution::kAntiCorrelated}) {
      cases.push_back({scheme, dist});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, PartitionerPropertyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

TEST(PartitionSchemeTest, NamesRoundTrip) {
  for (PartitionScheme scheme : testing::AllSchemes()) {
    EXPECT_EQ(ParsePartitionScheme(PartitionSchemeName(scheme)).ValueOrDie(),
              scheme);
  }
  EXPECT_FALSE(ParsePartitionScheme("nope").ok());
}

TEST(PartitionSchemeTest, DisjointClassification) {
  EXPECT_TRUE(IsDisjointScheme(PartitionScheme::kGrid));
  EXPECT_TRUE(IsDisjointScheme(PartitionScheme::kStrPlus));
  EXPECT_TRUE(IsDisjointScheme(PartitionScheme::kQuadTree));
  EXPECT_TRUE(IsDisjointScheme(PartitionScheme::kKdTree));
  EXPECT_FALSE(IsDisjointScheme(PartitionScheme::kStr));
  EXPECT_FALSE(IsDisjointScheme(PartitionScheme::kZCurve));
  EXPECT_FALSE(IsDisjointScheme(PartitionScheme::kHilbert));
  EXPECT_FALSE(IsDisjointScheme(PartitionScheme::kNone));
}

TEST(GridPartitionerTest, UniformCellsOnUnitSquare) {
  GridPartitioner grid;
  ASSERT_TRUE(grid.Construct(Envelope(0, 0, 1, 1), {}, 16).ok());
  EXPECT_EQ(grid.NumCells(), 16);
  EXPECT_EQ(grid.cols(), 4);
  EXPECT_EQ(grid.rows(), 4);
  EXPECT_EQ(grid.AssignPoint(Point(0.1, 0.1)), 0);
  EXPECT_EQ(grid.AssignPoint(Point(0.9, 0.9)), 15);
  // Boundary points are assigned to exactly one cell.
  EXPECT_EQ(grid.AssignPoint(Point(0.25, 0.0)), 1);
  // Points on the global max edge stay in range.
  EXPECT_EQ(grid.AssignPoint(Point(1.0, 1.0)), 15);
}

TEST(CurvePartitionerTest, HilbertPreservesLocality) {
  // Neighbouring points should mostly land in the same or adjacent cells;
  // we only assert the weaker property that both curve schemes produce
  // the requested number of cells and consistent assignment.
  for (PartitionScheme scheme :
       {PartitionScheme::kZCurve, PartitionScheme::kHilbert}) {
    auto part = MakePartitioner(scheme).ValueOrDie();
    workload::PointGenOptions options;
    options.count = 1000;
    std::vector<Point> sample = workload::GeneratePoints(options);
    ASSERT_TRUE(part->Construct(options.space, sample, 10).ok());
    EXPECT_EQ(part->NumCells(), 10);
    std::map<int, int> counts;
    for (const Point& p : sample) counts[part->AssignPoint(p)]++;
    // Equal-count cuts of the sample itself: within 2x of fair share.
    for (const auto& [cell, count] : counts) {
      EXPECT_LT(count, 200) << PartitionSchemeName(scheme);
    }
  }
}

}  // namespace
}  // namespace shadoop::index
