#include <gtest/gtest.h>

#include <set>

#include "geometry/skyline.h"
#include "geometry/wkt.h"
#include "pigeon/executor.h"
#include "pigeon/lexer.h"
#include "pigeon/parser.h"
#include "test_util.h"

namespace shadoop::pigeon {
namespace {

TEST(LexerTest, TokenizesAllKinds) {
  auto tokens = Tokenize("pts = LOAD '/p' AS point; -- comment\nK 5 (1,-2.5e1)")
                    .ValueOrDie();
  std::vector<TokenType> kinds;
  for (const Token& t : tokens) kinds.push_back(t.type);
  EXPECT_EQ(kinds, (std::vector<TokenType>{
                       TokenType::kIdentifier, TokenType::kEquals,
                       TokenType::kIdentifier, TokenType::kString,
                       TokenType::kIdentifier, TokenType::kIdentifier,
                       TokenType::kSemicolon, TokenType::kIdentifier,
                       TokenType::kNumber, TokenType::kLeftParen,
                       TokenType::kNumber, TokenType::kComma,
                       TokenType::kNumber, TokenType::kRightParen,
                       TokenType::kEnd}));
  EXPECT_EQ(tokens[3].text, "/p");
  EXPECT_DOUBLE_EQ(tokens[12].number, -25.0);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a = @;").ok());
}

TEST(ParserTest, ParsesFullScript) {
  const char* script = R"(
    pts = LOAD '/pts' AS POINT;
    idx = INDEX pts WITH STR INTO '/pts.idx';
    r = RANGE idx RECTANGLE(0, 0, 10, 10);
    nn = KNN idx POINT(5, 5) K 3;
    j = SJOIN r, nn;
    s = SKYLINE idx;
    STORE s INTO '/out';
    DUMP r;
  )";
  const Script parsed = Parse(script).ValueOrDie();
  ASSERT_EQ(parsed.size(), 8u);
  EXPECT_EQ(parsed[0].expr.kind, Expr::Kind::kLoad);
  EXPECT_EQ(parsed[1].expr.kind, Expr::Kind::kIndex);
  EXPECT_EQ(parsed[1].expr.scheme, index::PartitionScheme::kStr);
  EXPECT_EQ(parsed[2].expr.range, Envelope(0, 0, 10, 10));
  EXPECT_EQ(parsed[3].expr.k, 3u);
  EXPECT_EQ(parsed[4].expr.source, "r");
  EXPECT_EQ(parsed[4].expr.source_b, "nn");
  EXPECT_EQ(parsed[6].kind, Statement::Kind::kStore);
  EXPECT_EQ(parsed[7].kind, Statement::Kind::kDump);
}

TEST(ParserTest, ErrorsCarryLineNumbers) {
  auto missing_semi = Parse("a = LOAD '/x' AS POINT");
  ASSERT_FALSE(missing_semi.ok());
  EXPECT_NE(missing_semi.status().message().find("line 1"), std::string::npos);

  auto bad_op = Parse("\n\na = FROBNICATE b;");
  ASSERT_FALSE(bad_op.ok());
  EXPECT_NE(bad_op.status().message().find("line 3"), std::string::npos);

  EXPECT_FALSE(Parse("a = RANGE b RECTANGLE(5, 5, 1, 1);").ok())
      << "inverted rectangle";
  EXPECT_FALSE(Parse("a = KNN b POINT(1,2) K 0;").ok());
  EXPECT_FALSE(Parse("a = LOAD '/x' AS BLOB;").ok());
}

TEST(ExecutorTest, EndToEndQueryPipeline) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      shadoop::testing::WritePoints(&cluster.fs, "/pts", 1200);
  Executor executor(&cluster.runner);
  const char* script = R"(
    pts = LOAD '/pts' AS POINT;
    idx = INDEX pts WITH STR INTO '/pts.idx';
    near = KNN idx POINT(500000, 500000) K 5;
    box = RANGE idx RECTANGLE(100000, 100000, 300000, 300000);
    STORE box INTO '/box_out';
    DUMP near;
  )";
  const ExecutionReport report = executor.Execute(script).ValueOrDie();
  EXPECT_EQ(report.dump_output.size(), 5u);
  EXPECT_GT(report.stats.jobs_run, 2);

  // STORE materialized the range result.
  const auto stored = cluster.fs.ReadLines("/box_out").ValueOrDie();
  size_t expected = 0;
  const Envelope query(100000, 100000, 300000, 300000);
  for (const Point& p : points) {
    if (query.Contains(p)) ++expected;
  }
  EXPECT_EQ(stored.size(), expected);
}

TEST(ExecutorTest, SkylineViaScriptMatchesLibrary) {
  testing::TestCluster cluster;
  const std::vector<Point> points = shadoop::testing::WritePoints(
      &cluster.fs, "/pts", 900, workload::Distribution::kAntiCorrelated);
  Executor executor(&cluster.runner);
  const ExecutionReport report =
      executor
          .Execute(
              "p = LOAD '/pts' AS POINT; s = SKYLINE p; DUMP s;")
          .ValueOrDie();
  std::multiset<std::string> got(report.dump_output.begin(),
                                 report.dump_output.end());
  std::multiset<std::string> expected;
  for (const Point& p : Skyline(points)) expected.insert(PointToCsv(p));
  EXPECT_EQ(got, expected);
}

TEST(ExecutorTest, EnvironmentPersistsAcrossCalls) {
  testing::TestCluster cluster;
  shadoop::testing::WritePoints(&cluster.fs, "/pts", 300);
  Executor executor(&cluster.runner);
  ASSERT_TRUE(executor.Execute("p = LOAD '/pts' AS POINT;").ok());
  const ExecutionReport report =
      executor.Execute("h = CONVEXHULL p; DUMP h;").ValueOrDie();
  EXPECT_GE(report.dump_output.size(), 3u);
}

TEST(ExecutorTest, ErrorsForBadReferences) {
  testing::TestCluster cluster;
  Executor executor(&cluster.runner);
  EXPECT_TRUE(executor.Execute("DUMP nothing;").status().IsInvalidArgument());
  EXPECT_TRUE(executor.Execute("p = LOAD '/missing' AS POINT;")
                  .status()
                  .IsInvalidArgument());
  shadoop::testing::WritePoints(&cluster.fs, "/pts", 100);
  ASSERT_TRUE(executor.Execute("p = LOAD '/pts' AS POINT;").ok());
  EXPECT_TRUE(executor.Execute("c = CLOSESTPAIR p;")
                  .status()
                  .IsInvalidArgument())
      << "closest pair needs an index";
  EXPECT_TRUE(executor.Execute("u = UNION p;").status().IsInvalidArgument())
      << "union needs polygons";
}

TEST(ExecutorTest, CountAndLoadIndexStatements) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      shadoop::testing::WritePoints(&cluster.fs, "/pts", 800);
  Executor builder(&cluster.runner);
  ASSERT_TRUE(builder
                  .Execute("p = LOAD '/pts' AS POINT;"
                           "i = INDEX p WITH KDTREE INTO '/pts.kd';")
                  .ok());

  // A fresh session reopens the index by path (no rebuild) and counts.
  Executor session(&cluster.runner);
  const ExecutionReport report =
      session
          .Execute(
              "i = LOADINDEX '/pts.kd';"
              "c = COUNT i RECTANGLE(0, 0, 500000, 1000000);"
              "DUMP c;")
          .ValueOrDie();
  ASSERT_EQ(report.dump_output.size(), 1u);
  int64_t expected = 0;
  const Envelope query(0, 0, 500000, 1000000);
  for (const Point& p : points) expected += query.Contains(p);
  EXPECT_EQ(report.dump_output.front(), std::to_string(expected));

  EXPECT_TRUE(session.Execute("x = LOADINDEX '/nothing';")
                  .status()
                  .IsInvalidArgument());
}

TEST(ExecutorTest, KnnJoinStatement) {
  testing::TestCluster cluster;
  shadoop::testing::WritePoints(&cluster.fs, "/a", 120,
                                workload::Distribution::kUniform, 5);
  shadoop::testing::WritePoints(&cluster.fs, "/b", 200,
                                workload::Distribution::kUniform, 6);
  Executor executor(&cluster.runner);
  const ExecutionReport report =
      executor
          .Execute(
              "a = LOAD '/a' AS POINT;"
              "b = LOAD '/b' AS POINT;"
              "ai = INDEX a WITH STR;"
              "bi = INDEX b WITH STR;"
              "nn = KNNJOIN ai, bi K 3;"
              "DUMP nn;")
          .ValueOrDie();
  EXPECT_EQ(report.dump_output.size(), 120u * 3);

  // Unindexed inputs are rejected with a clear error.
  EXPECT_TRUE(executor.Execute("x = KNNJOIN a, b K 3;")
                  .status()
                  .IsInvalidArgument());
}

TEST(ExecutorTest, ExplainDescribesBindings) {
  testing::TestCluster cluster;
  shadoop::testing::WritePoints(&cluster.fs, "/pts", 400);
  Executor executor(&cluster.runner);
  const ExecutionReport report =
      executor
          .Execute(
              "p = LOAD '/pts' AS POINT;"
              "i = INDEX p WITH GRID;"
              "r = RANGE i RECTANGLE(0, 0, 100, 100);"
              "EXPLAIN p; EXPLAIN i; EXPLAIN r;")
          .ValueOrDie();
  ASSERT_EQ(report.dump_output.size(), 3u);
  EXPECT_NE(report.dump_output[0].find("raw file '/pts'"), std::string::npos);
  EXPECT_NE(report.dump_output[0].find("full-scan"), std::string::npos);
  EXPECT_NE(report.dump_output[1].find("scheme=grid"), std::string::npos);
  EXPECT_NE(report.dump_output[1].find("pruned"), std::string::npos);
  EXPECT_NE(report.dump_output[2].find("materialized result"),
            std::string::npos);
}

TEST(ExecutorTest, JoinRoutesToDistributedJoinWhenIndexed) {
  testing::TestCluster cluster;
  workload::RectGenOptions options;
  options.centers.count = 300;
  options.centers.seed = 2;
  options.max_side_fraction = 0.05;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/a", workload::RectanglesToRecords(
                                        workload::GenerateRectangles(options)))
                  .ok());
  options.centers.seed = 3;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/b", workload::RectanglesToRecords(
                                        workload::GenerateRectangles(options)))
                  .ok());
  Executor executor(&cluster.runner);
  const char* script = R"(
    a = LOAD '/a' AS RECTANGLE;
    b = LOAD '/b' AS RECTANGLE;
    ai = INDEX a WITH GRID;
    bi = INDEX b WITH GRID;
    joined = SJOIN ai, bi;
    DUMP joined;
  )";
  const ExecutionReport indexed = executor.Execute(script).ValueOrDie();

  Executor executor2(&cluster.runner);
  const char* script2 = R"(
    a = LOAD '/a' AS RECTANGLE;
    b = LOAD '/b' AS RECTANGLE;
    joined = SJOIN a, b;
    DUMP joined;
  )";
  const ExecutionReport unindexed = executor2.Execute(script2).ValueOrDie();
  std::multiset<std::string> left(indexed.dump_output.begin(),
                                  indexed.dump_output.end());
  std::multiset<std::string> right(unindexed.dump_output.begin(),
                                   unindexed.dump_output.end());
  EXPECT_EQ(left, right) << "both join paths must agree";
}

}  // namespace
}  // namespace shadoop::pigeon
