#include <gtest/gtest.h>

#include "geometry/envelope.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/polygon_clip.h"
#include "geometry/segment.h"
#include "geometry/simplify.h"
#include "geometry/wkt.h"

namespace shadoop {
namespace {

TEST(PointTest, OrderingAndDistance) {
  EXPECT_LT(Point(1, 5), Point(2, 0));
  EXPECT_LT(Point(1, 1), Point(1, 2));
  EXPECT_DOUBLE_EQ(Distance(Point(0, 0), Point(3, 4)), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance(Point(1, 1), Point(2, 2)), 2.0);
}

TEST(PointTest, CrossProductOrientation) {
  EXPECT_GT(Cross(Point(0, 0), Point(1, 0), Point(1, 1)), 0);  // CCW.
  EXPECT_LT(Cross(Point(0, 0), Point(1, 0), Point(1, -1)), 0);  // CW.
  EXPECT_EQ(Cross(Point(0, 0), Point(1, 1), Point(2, 2)), 0);  // Collinear.
}

TEST(EnvelopeTest, EmptyBehaviour) {
  Envelope e;
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_EQ(e.Area(), 0.0);
  EXPECT_FALSE(e.Intersects(Envelope(0, 0, 1, 1)));
  e.ExpandToInclude(Point(2, 3));
  EXPECT_FALSE(e.IsEmpty());
  EXPECT_EQ(e, Envelope(2, 3, 2, 3));
}

TEST(EnvelopeTest, ContainsAndIntersects) {
  const Envelope e(0, 0, 10, 5);
  EXPECT_TRUE(e.Contains(Point(0, 0)));
  EXPECT_TRUE(e.Contains(Point(10, 5)));
  EXPECT_FALSE(e.Contains(Point(10.001, 5)));
  EXPECT_TRUE(e.Intersects(Envelope(10, 5, 20, 20)));  // Corner touch.
  EXPECT_FALSE(e.Intersects(Envelope(11, 0, 20, 5)));
  EXPECT_TRUE(e.Contains(Envelope(1, 1, 2, 2)));
  EXPECT_FALSE(e.Contains(Envelope(1, 1, 11, 2)));
}

TEST(EnvelopeTest, HalfOpenContains) {
  const Envelope e(0, 0, 10, 10);
  EXPECT_TRUE(e.ContainsHalfOpen(Point(0, 0)));
  EXPECT_FALSE(e.ContainsHalfOpen(Point(10, 5)));
  EXPECT_FALSE(e.ContainsHalfOpen(Point(5, 10)));
  EXPECT_TRUE(e.ContainsHalfOpen(Point(10, 5), /*is_right_edge=*/true));
  EXPECT_TRUE(e.ContainsHalfOpen(Point(5, 10), false, /*is_top_edge=*/true));
}

TEST(EnvelopeTest, IntersectionGeometry) {
  const Envelope a(0, 0, 10, 10);
  const Envelope b(5, 5, 20, 20);
  EXPECT_EQ(a.Intersection(b), Envelope(5, 5, 10, 10));
  EXPECT_TRUE(a.Intersection(Envelope(11, 11, 12, 12)).IsEmpty());
}

TEST(EnvelopeTest, MinMaxDistances) {
  const Envelope e(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(e.MinDistance(Point(5, 5)), 0.0);
  EXPECT_DOUBLE_EQ(e.MinDistance(Point(13, 14)), 5.0);
  EXPECT_DOUBLE_EQ(e.MaxDistance(Point(0, 0)),
                   Distance(Point(0, 0), Point(10, 10)));
  const Envelope far(20, 0, 30, 10);
  EXPECT_DOUBLE_EQ(e.MinDistance(far), 10.0);
  EXPECT_DOUBLE_EQ(e.MaxDistance(far), Distance(Point(0, 0), Point(30, 10)));
  // Overlapping envelopes: min distance zero.
  EXPECT_DOUBLE_EQ(e.MinDistance(Envelope(5, 5, 15, 15)), 0.0);
}

TEST(SegmentTest, IntersectionTests) {
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {10, 10}),
                                Segment({0, 10}, {10, 0})));
  EXPECT_FALSE(SegmentsIntersect(Segment({0, 0}, {1, 1}),
                                 Segment({2, 2}, {3, 1})));
  // Shared endpoint counts as intersecting.
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {1, 1}),
                                Segment({1, 1}, {2, 0})));
  // Collinear overlap.
  EXPECT_TRUE(SegmentsIntersect(Segment({0, 0}, {4, 0}),
                                Segment({2, 0}, {6, 0})));

  auto p = SegmentIntersection(Segment({0, 0}, {10, 10}),
                               Segment({0, 10}, {10, 0}));
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, Point(5, 5));
  EXPECT_FALSE(SegmentIntersection(Segment({0, 0}, {1, 0}),
                                   Segment({0, 1}, {1, 1}))
                   .has_value());  // Parallel.
}

TEST(SegmentTest, PointSegmentDistance) {
  const Segment s({0, 0}, {10, 0});
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(5, 3), s), 3.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(-3, 4), s), 5.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(5, 0), s), 0.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point(3, 4), Segment({0, 0}, {0, 0})),
                   5.0);
}

TEST(PolygonTest, AreaAndOrientation) {
  Polygon square({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  EXPECT_DOUBLE_EQ(square.SignedArea(), 16.0);
  EXPECT_DOUBLE_EQ(square.Perimeter(), 16.0);
  Polygon clockwise({{0, 0}, {0, 4}, {4, 4}, {4, 0}});
  EXPECT_DOUBLE_EQ(clockwise.SignedArea(), -16.0);
  clockwise.Normalize();
  EXPECT_DOUBLE_EQ(clockwise.SignedArea(), 16.0);
}

TEST(PolygonTest, Containment) {
  const Polygon tri({{0, 0}, {10, 0}, {5, 10}});
  EXPECT_TRUE(tri.Contains(Point(5, 2)));
  EXPECT_TRUE(tri.Contains(Point(0, 0)));     // Vertex.
  EXPECT_TRUE(tri.Contains(Point(5, 0)));     // Edge.
  EXPECT_FALSE(tri.Contains(Point(0, 5)));
  EXPECT_TRUE(tri.ContainsInterior(Point(5, 2)));
  EXPECT_FALSE(tri.ContainsInterior(Point(0, 0)));
}

TEST(PolygonTest, IntersectionCases) {
  const Polygon a({{0, 0}, {4, 0}, {4, 4}, {0, 4}});
  const Polygon b({{2, 2}, {6, 2}, {6, 6}, {2, 6}});    // Overlaps a.
  const Polygon c({{10, 10}, {12, 10}, {11, 12}});      // Disjoint.
  const Polygon d({{1, 1}, {2, 1}, {2, 2}, {1, 2}});    // Inside a.
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Intersects(d));  // Containment counts.
  EXPECT_TRUE(d.Intersects(a));
}

TEST(PolygonClipTest, ClipSquareToBox) {
  const Polygon square({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const Polygon clipped = ClipPolygonToBox(square, Envelope(5, 5, 20, 20));
  EXPECT_DOUBLE_EQ(clipped.Area(), 25.0);
  EXPECT_EQ(clipped.Bounds(), Envelope(5, 5, 10, 10));
}

TEST(PolygonClipTest, DisjointClipIsEmpty) {
  const Polygon square({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  EXPECT_TRUE(ClipPolygonToBox(square, Envelope(5, 5, 6, 6)).IsEmpty());
}

TEST(PolygonClipTest, ContainedPolygonUnchanged) {
  const Polygon tri({{1, 1}, {3, 1}, {2, 3}});
  const Polygon clipped = ClipPolygonToBox(tri, Envelope(0, 0, 10, 10));
  EXPECT_DOUBLE_EQ(clipped.Area(), tri.Area());
}

TEST(SegmentClipTest, LiangBarsky) {
  const Envelope box(0, 0, 10, 10);
  auto inside = ClipSegmentToBox(Segment({1, 1}, {2, 2}), box);
  ASSERT_TRUE(inside.has_value());
  EXPECT_EQ(*inside, Segment({1, 1}, {2, 2}));

  auto crossing = ClipSegmentToBox(Segment({-5, 5}, {15, 5}), box);
  ASSERT_TRUE(crossing.has_value());
  EXPECT_EQ(*crossing, Segment({0, 5}, {10, 5}));

  EXPECT_FALSE(ClipSegmentToBox(Segment({-5, -5}, {-1, -1}), box).has_value());
  // Touching only a corner degenerates to a point: rejected.
  EXPECT_FALSE(
      ClipSegmentToBox(Segment({-1, 1}, {1, -1}), box).has_value());
}

TEST(SimplifyTest, DropsNearCollinearVertices) {
  // A straight line with tiny wiggles collapses to its endpoints.
  std::vector<Point> wiggly;
  for (int i = 0; i <= 100; ++i) {
    wiggly.emplace_back(i, (i % 2) * 0.001);
  }
  const auto simplified = SimplifyPolyline(wiggly, 0.01);
  ASSERT_EQ(simplified.size(), 2u);
  EXPECT_EQ(simplified.front(), wiggly.front());
  EXPECT_EQ(simplified.back(), wiggly.back());
}

TEST(SimplifyTest, KeepsSignificantVertices) {
  const std::vector<Point> zigzag = {{0, 0}, {5, 10}, {10, 0}};
  EXPECT_EQ(SimplifyPolyline(zigzag, 1.0), zigzag);
  // Zero tolerance is the identity.
  EXPECT_EQ(SimplifyPolyline(zigzag, 0.0), zigzag);
}

TEST(SimplifyTest, ErrorIsBoundedByTolerance) {
  // Every dropped vertex of a dense arc is within tolerance of the
  // simplified polyline.
  std::vector<Point> arc;
  for (int i = 0; i <= 200; ++i) {
    const double angle = M_PI * i / 200;
    arc.emplace_back(std::cos(angle) * 100, std::sin(angle) * 100);
  }
  const double tolerance = 2.0;
  const auto simplified = SimplifyPolyline(arc, tolerance);
  EXPECT_LT(simplified.size(), arc.size() / 2);
  for (const Point& p : arc) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i + 1 < simplified.size(); ++i) {
      best = std::min(best, PointSegmentDistance(
                                p, Segment(simplified[i], simplified[i + 1])));
    }
    EXPECT_LE(best, tolerance + 1e-9);
  }
}

TEST(SimplifyTest, PolygonStaysClosedAndRetainsArea) {
  // A dense circle simplifies to a much smaller ring with similar area.
  Polygon circle = MakeRegularPolygon(Point(0, 0), 100, 256);
  const Polygon simplified = SimplifyPolygon(circle, 1.0);
  EXPECT_LT(simplified.NumVertices(), circle.NumVertices() / 2);
  EXPECT_GE(simplified.NumVertices(), 3u);
  EXPECT_NEAR(simplified.Area(), circle.Area(), circle.Area() * 0.05);
  // Tiny polygons and zero tolerance pass through unchanged.
  const Polygon tri({{0, 0}, {1, 0}, {0, 1}});
  EXPECT_EQ(SimplifyPolygon(tri, 10.0), tri);
  EXPECT_EQ(SimplifyPolygon(circle, 0.0), circle);
}

TEST(WktTest, PointRoundTrip) {
  const Point p(1.5, -2.25);
  EXPECT_EQ(ParsePointWkt(ToWkt(p)).ValueOrDie(), p);
  EXPECT_EQ(ParsePointWkt("point( 3 4 )").ValueOrDie(), Point(3, 4));
  EXPECT_FALSE(ParsePointWkt("POINT 1 2").ok());
  EXPECT_FALSE(ParsePointWkt("POINT (1)").ok());
}

TEST(WktTest, PolygonRoundTrip) {
  const Polygon tri({{0, 0}, {4, 0}, {2, 3}});
  const Polygon parsed = ParsePolygonWkt(ToWkt(tri)).ValueOrDie();
  EXPECT_EQ(parsed, tri);
  EXPECT_FALSE(ParsePolygonWkt("POLYGON ((0 0, 1 1))").ok());
  EXPECT_FALSE(
      ParsePolygonWkt("POLYGON ((0 0,4 0,4 4,0 4),(1 1,2 1,2 2))").ok())
      << "holes are rejected";
}

TEST(WktTest, LineStringRoundTrip) {
  const std::vector<Point> pts = {{0, 0}, {1, 2}, {3, 4}};
  EXPECT_EQ(ParseLineStringWkt(LineStringToWkt(pts)).ValueOrDie(), pts);
  EXPECT_FALSE(ParseLineStringWkt("LINESTRING (1 2)").ok());
}

TEST(WktTest, CsvCodecs) {
  const Point p(123.456, -7.0);
  EXPECT_EQ(ParsePointCsv(PointToCsv(p)).ValueOrDie(), p);
  const Envelope e(1, 2, 3, 4);
  EXPECT_EQ(ParseEnvelopeCsv(EnvelopeToCsv(e)).ValueOrDie(), e);
  EXPECT_FALSE(ParsePointCsv("1").ok());
  EXPECT_FALSE(ParseEnvelopeCsv("1,2,3").ok());
  EXPECT_FALSE(ParseEnvelopeCsv("3,2,1,4").ok()) << "inverted bounds";
}

}  // namespace
}  // namespace shadoop
