#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "geometry/closest_pair.h"
#include "geometry/convex_hull.h"
#include "geometry/farthest_pair.h"
#include "geometry/polygon_union.h"
#include "geometry/skyline.h"
#include "workload/generators.h"

namespace shadoop {
namespace {

using workload::Distribution;

std::vector<Point> RandomPoints(Distribution dist, size_t n, uint64_t seed) {
  workload::PointGenOptions options;
  options.distribution = dist;
  options.count = n;
  options.seed = seed;
  options.space = Envelope(0, 0, 1000, 1000);
  return workload::GeneratePoints(options);
}

// ---------------------------------------------------------------------
// Convex hull

TEST(ConvexHullTest, SmallCases) {
  EXPECT_TRUE(ConvexHull({}).empty());
  EXPECT_EQ(ConvexHull({{1, 2}}), (std::vector<Point>{{1, 2}}));
  EXPECT_EQ(ConvexHull({{1, 2}, {1, 2}}).size(), 1u);
  EXPECT_EQ(ConvexHull({{0, 0}, {1, 1}}).size(), 2u);
  // Collinear points collapse to the two extremes.
  EXPECT_EQ(ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}}).size(), 2u);
}

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  const std::vector<Point> hull =
      ConvexHull({{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}});
  EXPECT_EQ(hull.size(), 4u);
  for (const Point& corner :
       {Point(0, 0), Point(4, 0), Point(4, 4), Point(0, 4)}) {
    EXPECT_NE(std::find(hull.begin(), hull.end(), corner), hull.end());
  }
}

TEST(ConvexHullTest, HullIsCcwAndContainsAllPoints) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<Point> points =
        RandomPoints(Distribution::kUniform, 500, seed);
    const std::vector<Point> hull = ConvexHull(points);
    // CCW: every consecutive triple turns left (or straight).
    for (size_t i = 0; i < hull.size(); ++i) {
      EXPECT_GT(Cross(hull[i], hull[(i + 1) % hull.size()],
                      hull[(i + 2) % hull.size()]),
                0);
    }
    for (const Point& p : points) {
      EXPECT_TRUE(HullContains(hull, p));
    }
  }
}

TEST(ConvexHullTest, Idempotent) {
  const std::vector<Point> points =
      RandomPoints(Distribution::kCircular, 400, 9);
  const std::vector<Point> hull = ConvexHull(points);
  EXPECT_EQ(ConvexHull(hull), hull);
}

// ---------------------------------------------------------------------
// Closest pair

TEST(ClosestPairTest, MatchesBruteForceAcrossDistributions) {
  for (Distribution dist : {Distribution::kUniform, Distribution::kGaussian,
                            Distribution::kClustered}) {
    for (uint64_t seed : {10u, 20u}) {
      const std::vector<Point> points = RandomPoints(dist, 400, seed);
      const PointPair fast = ClosestPair(points);
      const PointPair slow = ClosestPairBruteForce(points);
      EXPECT_DOUBLE_EQ(fast.distance, slow.distance)
          << workload::DistributionName(dist) << " seed " << seed;
    }
  }
}

TEST(ClosestPairTest, DuplicatePointsGiveZero) {
  const PointPair pair = ClosestPair({{1, 1}, {5, 5}, {1, 1}});
  EXPECT_DOUBLE_EQ(pair.distance, 0.0);
}

TEST(ClosestPairTest, DegenerateInputs) {
  EXPECT_TRUE(std::isinf(ClosestPair({}).distance));
  EXPECT_TRUE(std::isinf(ClosestPair({{1, 1}}).distance));
  const PointPair two = ClosestPair({{0, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(two.distance, 5.0);
}

TEST(ClosestPairTest, AllCollinear) {
  std::vector<Point> points;
  for (int i = 0; i < 100; ++i) points.emplace_back(i * 2.0, i * 2.0);
  points.emplace_back(50.5, 50.5);  // Closest to (50, 50).
  const PointPair pair = ClosestPair(points);
  EXPECT_DOUBLE_EQ(pair.distance, ClosestPairBruteForce(points).distance);
}

// ---------------------------------------------------------------------
// Farthest pair

TEST(FarthestPairTest, MatchesBruteForce) {
  for (Distribution dist : {Distribution::kUniform, Distribution::kCircular}) {
    const std::vector<Point> points = RandomPoints(dist, 300, 77);
    EXPECT_DOUBLE_EQ(FarthestPair(points).distance,
                     FarthestPairBruteForce(points).distance)
        << workload::DistributionName(dist);
  }
}

TEST(FarthestPairTest, KnownDiameter) {
  // A rectangle: the diagonal is the diameter.
  const PointPair pair =
      FarthestPair({{0, 0}, {6, 0}, {6, 8}, {0, 8}, {3, 4}});
  EXPECT_DOUBLE_EQ(pair.distance, 10.0);
}

TEST(FarthestPairTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(FarthestPair({}).distance, 0.0);
  EXPECT_DOUBLE_EQ(FarthestPair({{1, 1}}).distance, 0.0);
  EXPECT_DOUBLE_EQ(FarthestPair({{0, 0}, {3, 4}}).distance, 5.0);
}

// ---------------------------------------------------------------------
// Skyline

TEST(SkylineTest, MatchesBruteForceInAllDirections) {
  for (SkylineDominance dir :
       {SkylineDominance::kMaxMax, SkylineDominance::kMaxMin,
        SkylineDominance::kMinMax, SkylineDominance::kMinMin}) {
    for (Distribution dist :
         {Distribution::kUniform, Distribution::kCorrelated,
          Distribution::kAntiCorrelated}) {
      std::vector<Point> points = RandomPoints(dist, 300, 5);
      std::vector<Point> fast = Skyline(points, dir);
      std::vector<Point> slow = SkylineBruteForce(points, dir);
      EXPECT_EQ(fast, slow) << workload::DistributionName(dist);
    }
  }
}

TEST(SkylineTest, NoPointOnSkylineIsDominated) {
  const std::vector<Point> points =
      RandomPoints(Distribution::kAntiCorrelated, 1000, 3);
  const std::vector<Point> sky = Skyline(points);
  for (const Point& p : sky) {
    for (const Point& q : points) {
      EXPECT_FALSE(Dominates(q, p, SkylineDominance::kMaxMax));
    }
  }
}

TEST(SkylineTest, CorrelationControlsSkylineSize) {
  const size_t correlated =
      Skyline(RandomPoints(Distribution::kCorrelated, 2000, 8)).size();
  const size_t anti =
      Skyline(RandomPoints(Distribution::kAntiCorrelated, 2000, 8)).size();
  EXPECT_LT(correlated * 5, anti) << "anti-correlated data has a much "
                                     "larger skyline";
}

TEST(SkylineTest, DuplicatesAndTies) {
  const std::vector<Point> sky =
      Skyline({{1, 1}, {1, 1}, {2, 1}, {1, 2}, {0, 3}});
  EXPECT_EQ(sky, (std::vector<Point>{{0, 3}, {1, 2}, {2, 1}}));
}

// ---------------------------------------------------------------------
// Polygon union

TEST(PolygonUnionTest, DisjointPolygonsKeepAllEdges) {
  const Polygon a({{0, 0}, {1, 0}, {1, 1}, {0, 1}});
  const Polygon b({{5, 5}, {6, 5}, {6, 6}, {5, 6}});
  EXPECT_DOUBLE_EQ(UnionBoundaryLength({a, b}),
                   a.Perimeter() + b.Perimeter());
}

TEST(PolygonUnionTest, AdjacentSquaresDropSharedBorder) {
  const Polygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const Polygon b({{2, 0}, {4, 0}, {4, 2}, {2, 2}});
  // Union is a 4x2 rectangle: perimeter 12 (shared border removed).
  EXPECT_DOUBLE_EQ(UnionBoundaryLength({a, b}), 12.0);
}

TEST(PolygonUnionTest, OverlappingSquares) {
  const Polygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const Polygon b({{1, 1}, {3, 1}, {3, 3}, {1, 3}});
  // The union is an L-ish octagon with perimeter 12.
  EXPECT_NEAR(UnionBoundaryLength({a, b}), 12.0, 1e-9);
}

TEST(PolygonUnionTest, ContainedPolygonDisappears) {
  const Polygon outer({{0, 0}, {10, 0}, {10, 10}, {0, 10}});
  const Polygon inner({{2, 2}, {4, 2}, {4, 4}, {2, 4}});
  EXPECT_DOUBLE_EQ(UnionBoundaryLength({outer, inner}), 40.0);
}

TEST(PolygonUnionTest, GroupingFindsConnectedComponents) {
  const Polygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const Polygon b({{1, 1}, {3, 1}, {3, 3}, {1, 3}});   // Overlaps a.
  const Polygon c({{10, 10}, {12, 10}, {11, 12}});     // Alone.
  const auto groups = GroupOverlappingPolygons({a, b, c});
  ASSERT_EQ(groups.size(), 2u);
  // One group of two, one singleton.
  const size_t max_size = std::max(groups[0].size(), groups[1].size());
  const size_t min_size = std::min(groups[0].size(), groups[1].size());
  EXPECT_EQ(max_size, 2u);
  EXPECT_EQ(min_size, 1u);
}

TEST(PolygonUnionTest, UnionIsIdempotentOnItsInput) {
  // Union of a single polygon returns its own edges.
  const Polygon tri({{0, 0}, {5, 0}, {2, 4}});
  EXPECT_DOUBLE_EQ(UnionBoundaryLength({tri}), tri.Perimeter());
}

}  // namespace
}  // namespace shadoop
