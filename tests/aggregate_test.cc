#include <gtest/gtest.h>

#include "core/aggregate_op.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;

int64_t BruteForceCount(const std::vector<Point>& points,
                        const Envelope& query) {
  int64_t count = 0;
  for (const Point& p : points) count += query.Contains(p);
  return count;
}

class RangeCountSchemeTest : public ::testing::TestWithParam<PartitionScheme> {
};

TEST_P(RangeCountSchemeTest, MatchesBruteForce) {
  testing::TestCluster cluster;
  const std::vector<Point> points = testing::WritePoints(
      &cluster.fs, "/pts", 3000, workload::Distribution::kClustered, 21);
  const index::SpatialFileInfo file =
      testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx", GetParam());
  Random rng(4);
  for (double frac : {0.05, 0.3, 0.9}) {
    const double side = 1e6 * frac;
    const double x = rng.NextDouble() * (1e6 - side);
    const double y = rng.NextDouble() * (1e6 - side);
    const Envelope query(x, y, x + side, y + side);
    EXPECT_EQ(
        RangeCountSpatial(&cluster.runner, file, query).ValueOrDie(),
        BruteForceCount(points, query))
        << "fraction " << frac;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, RangeCountSchemeTest,
    ::testing::ValuesIn(testing::AllSchemes()),
    [](const ::testing::TestParamInfo<PartitionScheme>& info) {
      std::string name = index::PartitionSchemeName(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
      }
      return name;
    });

TEST(RangeCountTest, HadoopMatchesBruteForce) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 1000);
  const Envelope query(1e5, 1e5, 7e5, 4e5);
  EXPECT_EQ(RangeCountHadoop(&cluster.runner, "/pts",
                             index::ShapeType::kPoint, query)
                .ValueOrDie(),
            BruteForceCount(points, query));
}

TEST(RangeCountTest, MetadataShortcutAvoidsReadingCoveredPartitions) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 8000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kStr);
  // A query covering most of the space: most partitions fully inside.
  const Envelope query(1e4, 1e4, 9.9e5, 9.9e5);
  OpStats stats;
  EXPECT_EQ(RangeCountSpatial(&cluster.runner, file, query, &stats)
                .ValueOrDie(),
            BruteForceCount(points, query));
  EXPECT_GT(stats.counters.Get("count.metadata_partitions"), 0);
  EXPECT_LT(stats.cost.bytes_read,
            cluster.fs.GetFileMeta("/pts.idx").ValueOrDie().total_bytes / 2)
      << "covered partitions must not be read";
}

TEST(RangeCountTest, WholeFileQueryCostsZeroJobs) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 2000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kKdTree);
  Envelope everything;
  for (const Point& p : points) everything.ExpandToInclude(p);
  OpStats stats;
  EXPECT_EQ(RangeCountSpatial(&cluster.runner, file, everything, &stats)
                .ValueOrDie(),
            static_cast<int64_t>(points.size()));
  EXPECT_EQ(stats.jobs_run, 0) << "answered entirely from the master file";
  EXPECT_EQ(stats.cost.bytes_read, 0u);
}

TEST(RangeCountTest, ReplicatedRectanglesStillCountedOnce) {
  testing::TestCluster cluster;
  workload::RectGenOptions options;
  options.centers.count = 1000;
  options.centers.seed = 31;
  options.max_side_fraction = 0.08;
  const std::vector<Envelope> rects = workload::GenerateRectangles(options);
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/rects", workload::RectanglesToRecords(rects))
                  .ok());
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/rects", "/rects.idx", PartitionScheme::kQuadTree,
      index::ShapeType::kRectangle);
  const Envelope query(2e5, 2e5, 8e5, 8e5);
  int64_t expected = 0;
  for (const Envelope& r : rects) expected += r.Intersects(query);
  EXPECT_EQ(RangeCountSpatial(&cluster.runner, file, query).ValueOrDie(),
            expected);
}

}  // namespace
}  // namespace shadoop::core
