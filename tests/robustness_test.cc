// Robustness tests: malformed inputs at every persistence boundary
// (records, master files, scripts) must produce clean Status errors or
// counted-and-skipped records — never crashes or silent corruption.

#include <gtest/gtest.h>

#include "core/range_query.h"
#include "core/spatial_join.h"
#include "fault/fault_injector.h"
#include "geometry/wkt.h"
#include "index/global_index.h"
#include "index/index_builder.h"
#include "pigeon/executor.h"
#include "pigeon/lexer.h"
#include "pigeon/parser.h"
#include "test_util.h"

namespace shadoop {
namespace {

using index::PartitionScheme;

// ---------------------------------------------------------------------
// Malformed records in data files.

TEST(MalformedRecordTest, IndexBuildSkipsAndCountsBadRecords) {
  testing::TestCluster cluster;
  std::vector<std::string> records = {"1,2",       "oops",       "3,4",
                                      "5,not-a-y", "7,8\tattrs", ",",
                                      "9,10"};
  ASSERT_TRUE(cluster.fs.WriteLines("/mixed", records).ok());
  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  options.scheme = PartitionScheme::kStr;
  const auto file = builder.Build("/mixed", "/mixed.idx", options)
                        .ValueOrDie();
  size_t stored = 0;
  for (const auto& p : file.global_index.partitions()) {
    stored += p.num_records;
  }
  EXPECT_EQ(stored, 4u) << "only the four parseable records are indexed";
}

TEST(MalformedRecordTest, QueriesCountBadRecordsInsteadOfFailing) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/mixed", {"1,1", "garbage", "2,2", "x,y"})
                  .ok());
  core::OpStats stats;
  auto result = core::RangeQueryHadoop(&cluster.runner, "/mixed",
                                       index::ShapeType::kPoint,
                                       Envelope(0, 0, 10, 10), &stats)
                    .ValueOrDie();
  EXPECT_EQ(result.size(), 2u);
  EXPECT_EQ(stats.counters.Get("range.bad_records"), 2);
}

TEST(MalformedRecordTest, EmptyFileCannotBeIndexed) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/empty", {"x", "y"}).ok());
  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  const auto result = builder.Build("/empty", "/empty.idx", options);
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << "a file with no valid records has no MBR to index";
}

// ---------------------------------------------------------------------
// Corrupt master files.

TEST(CorruptMasterTest, LoaderRejectsBadHeaders) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/data", {"1,1"}).ok());

  ASSERT_TRUE(cluster.fs.WriteLines("/data_master", {"no header"}).ok());
  EXPECT_TRUE(
      index::LoadSpatialFile(cluster.fs, "/data").status().IsParseError());
  ASSERT_TRUE(cluster.fs.Delete("/data_master").ok());

  ASSERT_TRUE(
      cluster.fs.WriteLines("/data_master", {"#scheme=warp shape=point"})
          .ok());
  EXPECT_TRUE(index::LoadSpatialFile(cluster.fs, "/data")
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(cluster.fs.Delete("/data_master").ok());

  ASSERT_TRUE(cluster.fs
                  .WriteLines("/data_master",
                              {"#scheme=grid shape=point", "1,2,3"})
                  .ok());
  EXPECT_TRUE(
      index::LoadSpatialFile(cluster.fs, "/data").status().IsParseError());
}

TEST(CorruptMasterTest, GlobalIndexLineRoundTripAndErrors) {
  index::Partition p;
  p.id = 3;
  p.block_index = 7;
  p.cell = Envelope(0, 0, 10, 10);
  p.mbr = Envelope(1, 1, 9, 9);
  p.num_records = 42;
  p.num_bytes = 1234;
  const index::GlobalIndex gi(PartitionScheme::kGrid, {p});
  const auto lines = gi.ToLines();
  const auto parsed =
      index::GlobalIndex::FromLines(PartitionScheme::kGrid, lines)
          .ValueOrDie();
  ASSERT_EQ(parsed.NumPartitions(), 1u);
  EXPECT_EQ(parsed.partitions()[0].mbr, p.mbr);
  EXPECT_EQ(parsed.partitions()[0].num_records, 42u);

  EXPECT_FALSE(index::GlobalIndex::FromLines(PartitionScheme::kGrid,
                                             {"1,2,3"})
                   .ok());
  EXPECT_FALSE(index::GlobalIndex::FromLines(
                   PartitionScheme::kGrid,
                   {"a,b,0,0,1,1,0,0,1,1,5,5"})
                   .ok());
}

// ---------------------------------------------------------------------
// Pigeon parser robustness.

TEST(PigeonRobustnessTest, ParserRejectsMalformedStatements) {
  const char* bad_scripts[] = {
      "= LOAD '/x' AS POINT;",                // Missing name.
      "a LOAD '/x' AS POINT;",                // Missing '='.
      "a = LOAD;",                            // Missing path.
      "a = LOAD '/x';",                       // Missing AS.
      "a = INDEX b WITH;",                    // Missing scheme.
      "a = INDEX b WITH FOO;",                // Unknown scheme.
      "a = RANGE b RECTANGLE(1, 2, 3);",      // Too few numbers.
      "a = RANGE b RECTANGLE(1, 2, 3, x);",   // Non-number.
      "a = KNN b POINT(1) K 2;",              // Bad point.
      "a = KNNJOIN b, c;",                    // Missing K.
      "a = SJOIN b;",                         // Missing second input.
      "STORE a;",                             // Missing INTO.
      "DUMP;",                                // Missing name.
      "a = LOAD '/x' AS POINT",               // Missing ';'.
      "'stray string';",                      // Not a statement.
  };
  for (const char* script : bad_scripts) {
    EXPECT_FALSE(pigeon::Parse(script).ok()) << script;
  }
}

TEST(PigeonRobustnessTest, LexerHandlesTrickyNumbers) {
  auto tokens = pigeon::Tokenize("1e5 -2.5 +3 .5 1E-3").ValueOrDie();
  ASSERT_EQ(tokens.size(), 6u);  // 5 numbers + end.
  EXPECT_DOUBLE_EQ(tokens[0].number, 1e5);
  EXPECT_DOUBLE_EQ(tokens[1].number, -2.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 3);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.5);
  EXPECT_DOUBLE_EQ(tokens[4].number, 1e-3);
  EXPECT_FALSE(pigeon::Tokenize("1.2.3").ok());
}

TEST(PigeonRobustnessTest, ExecutorErrorsNameTheLine) {
  testing::TestCluster cluster;
  pigeon::Executor executor(&cluster.runner);
  const auto status =
      executor.Execute("\n\n\nx = RANGE ghost RECTANGLE(0,0,1,1);").status();
  ASSERT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("line 4"), std::string::npos)
      << status.ToString();
}

TEST(PigeonRobustnessTest, TaskAbortSurfacesAttemptHistoryWithLine) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/pts", {"1,1", "2,2"}).ok());
  // An injector that fails every attempt makes the first job of the
  // statement exhaust its retry budget; the executor's error must carry
  // the statement line, the failing task and the attempt history.
  fault::FaultPolicy policy;
  policy.seed = 3;
  policy.map_failure_prob = 1.0;
  policy.reduce_failure_prob = 1.0;
  fault::FaultInjector injector(policy);
  cluster.runner.set_fault_injector(&injector);
  pigeon::Executor executor(&cluster.runner);
  const auto status =
      executor.Execute("p = LOAD '/pts' AS POINT;\nx = RANGE p "
                       "RECTANGLE(0,0,10,10);")
          .status();
  cluster.runner.set_fault_injector(nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("task 0"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("attempt(s)"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("#3 FAILED"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------
// Fault-matrix sweep: seeds × failure rates × ops. The invariant under
// deterministic fault injection is checksum parity — every op's rows are
// identical to the fault-free run; only the fault counters move, and they
// move monotonically with the injected rates.

struct SweepOutcome {
  std::vector<std::string> index_lines;  // Global index of the build.
  std::vector<std::string> range_rows;
  std::vector<std::string> join_rows;
  int64_t task_retries = 0;
  int64_t speculative_launched = 0;
  int64_t replica_failovers = 0;
};

/// Runs index build + range query + spatial join on a fresh cluster with
/// the given fault policy (all-zero = clean run).
SweepOutcome RunFaultMatrixCell(uint64_t seed, double task_failure_rate,
                                double read_fault_rate) {
  testing::TestCluster cluster;
  fault::FaultPolicy policy;
  policy.seed = seed;
  policy.map_failure_prob = task_failure_rate;
  policy.reduce_failure_prob = task_failure_rate;
  policy.straggler_prob = task_failure_rate;
  policy.read_io_error_prob = read_fault_rate;
  policy.read_corruption_prob = read_fault_rate / 2;
  fault::FaultInjector injector(policy);
  if (policy.AnyTaskFaults()) cluster.runner.set_fault_injector(&injector);
  if (policy.AnyReadFaults()) cluster.fs.set_fault_injector(&injector);

  testing::WritePoints(&cluster.fs, "/a", 600, workload::Distribution::kUniform,
                       /*seed=*/5);
  workload::RectGenOptions rects;
  rects.centers.count = 250;
  rects.centers.seed = 6;
  rects.max_side_fraction = 0.04;
  EXPECT_TRUE(cluster.fs
                  .WriteLines("/ra", workload::RectanglesToRecords(
                                         workload::GenerateRectangles(rects)))
                  .ok());
  rects.centers.count = 200;
  rects.centers.seed = 7;
  EXPECT_TRUE(cluster.fs
                  .WriteLines("/rb", workload::RectanglesToRecords(
                                         workload::GenerateRectangles(rects)))
                  .ok());

  SweepOutcome outcome;
  core::OpStats stats;

  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/a", "/a.idx", PartitionScheme::kStr);
  outcome.index_lines = file.global_index.ToLines();

  outcome.range_rows =
      core::RangeQuerySpatial(&cluster.runner, file,
                              Envelope(2e5, 2e5, 7e5, 7e5), &stats)
          .ValueOrDie();
  outcome.join_rows = core::SjmrJoin(&cluster.runner, "/ra",
                                     index::ShapeType::kRectangle, "/rb",
                                     index::ShapeType::kRectangle, &stats)
                          .ValueOrDie();

  outcome.task_retries = stats.cost.task_retries;
  outcome.speculative_launched = stats.cost.speculative_launched;
  outcome.replica_failovers =
      static_cast<int64_t>(injector.replica_failovers());
  return outcome;
}

TEST(FaultMatrixTest, ChecksumParityAndCounterMonotonicityAcrossTheMatrix) {
  const SweepOutcome clean = RunFaultMatrixCell(0, 0.0, 0.0);
  ASSERT_FALSE(clean.range_rows.empty());
  ASSERT_FALSE(clean.join_rows.empty());
  EXPECT_EQ(clean.task_retries, 0);
  EXPECT_EQ(clean.replica_failovers, 0);

  for (uint64_t seed : {101u, 202u, 303u}) {
    // Task-fault sweep (two rates, same seed): identical rows; retries
    // monotone in the rate — the per-attempt failure draws are threshold
    // comparisons, so raising the rate only adds failures.
    const SweepOutcome low = RunFaultMatrixCell(seed, 0.05, 0.0);
    const SweepOutcome high = RunFaultMatrixCell(seed, 0.12, 0.0);
    for (const SweepOutcome* faulty : {&low, &high}) {
      EXPECT_EQ(faulty->index_lines, clean.index_lines) << "seed " << seed;
      EXPECT_EQ(faulty->range_rows, clean.range_rows) << "seed " << seed;
      EXPECT_EQ(faulty->join_rows, clean.join_rows) << "seed " << seed;
    }
    EXPECT_LE(low.task_retries, high.task_retries) << "seed " << seed;
    EXPECT_LE(low.speculative_launched, high.speculative_launched)
        << "seed " << seed;

    // Read-fault sweep: replica failovers recover silently (identical
    // rows) and grow with the rate.
    const SweepOutcome read_low = RunFaultMatrixCell(seed, 0.0, 0.2);
    const SweepOutcome read_high = RunFaultMatrixCell(seed, 0.0, 0.5);
    EXPECT_EQ(read_low.range_rows, clean.range_rows) << "seed " << seed;
    EXPECT_EQ(read_high.join_rows, clean.join_rows) << "seed " << seed;
    EXPECT_EQ(read_high.index_lines, clean.index_lines) << "seed " << seed;
    EXPECT_GT(read_high.replica_failovers, 0) << "seed " << seed;
    EXPECT_LE(read_low.replica_failovers, read_high.replica_failovers)
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// Misc persistence boundaries.

TEST(PersistenceTest, StoreOfFileDatasetCopiesIt) {
  testing::TestCluster cluster;
  shadoop::testing::WritePoints(&cluster.fs, "/pts", 50);
  pigeon::Executor executor(&cluster.runner);
  ASSERT_TRUE(executor
                  .Execute("p = LOAD '/pts' AS POINT;"
                           "STORE p INTO '/copy';")
                  .ok());
  EXPECT_EQ(cluster.fs.ReadLines("/copy").ValueOrDie(),
            cluster.fs.ReadLines("/pts").ValueOrDie());
}

TEST(PersistenceTest, ReindexingViaPigeonOverSameDestFails) {
  testing::TestCluster cluster;
  shadoop::testing::WritePoints(&cluster.fs, "/pts", 50);
  pigeon::Executor executor(&cluster.runner);
  ASSERT_TRUE(executor
                  .Execute("p = LOAD '/pts' AS POINT;"
                           "i = INDEX p WITH GRID INTO '/pts.g';")
                  .ok());
  EXPECT_TRUE(executor
                  .Execute("p2 = LOAD '/pts' AS POINT;"
                           "i2 = INDEX p2 WITH GRID INTO '/pts.g';")
                  .status()
                  .IsAlreadyExists());
}

}  // namespace
}  // namespace shadoop
