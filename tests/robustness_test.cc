// Robustness tests: malformed inputs at every persistence boundary
// (records, master files, scripts) must produce clean Status errors or
// counted-and-skipped records — never crashes or silent corruption.

#include <gtest/gtest.h>

#include "core/range_query.h"
#include "geometry/wkt.h"
#include "index/global_index.h"
#include "index/index_builder.h"
#include "pigeon/executor.h"
#include "pigeon/lexer.h"
#include "pigeon/parser.h"
#include "test_util.h"

namespace shadoop {
namespace {

using index::PartitionScheme;

// ---------------------------------------------------------------------
// Malformed records in data files.

TEST(MalformedRecordTest, IndexBuildSkipsAndCountsBadRecords) {
  testing::TestCluster cluster;
  std::vector<std::string> records = {"1,2",       "oops",       "3,4",
                                      "5,not-a-y", "7,8\tattrs", ",",
                                      "9,10"};
  ASSERT_TRUE(cluster.fs.WriteLines("/mixed", records).ok());
  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  options.scheme = PartitionScheme::kStr;
  const auto file = builder.Build("/mixed", "/mixed.idx", options)
                        .ValueOrDie();
  size_t stored = 0;
  for (const auto& p : file.global_index.partitions()) {
    stored += p.num_records;
  }
  EXPECT_EQ(stored, 4u) << "only the four parseable records are indexed";
}

TEST(MalformedRecordTest, QueriesCountBadRecordsInsteadOfFailing) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/mixed", {"1,1", "garbage", "2,2", "x,y"})
                  .ok());
  core::OpStats stats;
  auto result = core::RangeQueryHadoop(&cluster.runner, "/mixed",
                                       index::ShapeType::kPoint,
                                       Envelope(0, 0, 10, 10), &stats)
                    .ValueOrDie();
  EXPECT_EQ(result.size(), 2u);
  EXPECT_EQ(stats.counters.Get("range.bad_records"), 2);
}

TEST(MalformedRecordTest, EmptyFileCannotBeIndexed) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/empty", {"x", "y"}).ok());
  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  const auto result = builder.Build("/empty", "/empty.idx", options);
  EXPECT_TRUE(result.status().IsInvalidArgument())
      << "a file with no valid records has no MBR to index";
}

// ---------------------------------------------------------------------
// Corrupt master files.

TEST(CorruptMasterTest, LoaderRejectsBadHeaders) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/data", {"1,1"}).ok());

  ASSERT_TRUE(cluster.fs.WriteLines("/data_master", {"no header"}).ok());
  EXPECT_TRUE(
      index::LoadSpatialFile(cluster.fs, "/data").status().IsParseError());
  ASSERT_TRUE(cluster.fs.Delete("/data_master").ok());

  ASSERT_TRUE(
      cluster.fs.WriteLines("/data_master", {"#scheme=warp shape=point"})
          .ok());
  EXPECT_TRUE(index::LoadSpatialFile(cluster.fs, "/data")
                  .status()
                  .IsInvalidArgument());
  ASSERT_TRUE(cluster.fs.Delete("/data_master").ok());

  ASSERT_TRUE(cluster.fs
                  .WriteLines("/data_master",
                              {"#scheme=grid shape=point", "1,2,3"})
                  .ok());
  EXPECT_TRUE(
      index::LoadSpatialFile(cluster.fs, "/data").status().IsParseError());
}

TEST(CorruptMasterTest, GlobalIndexLineRoundTripAndErrors) {
  index::Partition p;
  p.id = 3;
  p.block_index = 7;
  p.cell = Envelope(0, 0, 10, 10);
  p.mbr = Envelope(1, 1, 9, 9);
  p.num_records = 42;
  p.num_bytes = 1234;
  const index::GlobalIndex gi(PartitionScheme::kGrid, {p});
  const auto lines = gi.ToLines();
  const auto parsed =
      index::GlobalIndex::FromLines(PartitionScheme::kGrid, lines)
          .ValueOrDie();
  ASSERT_EQ(parsed.NumPartitions(), 1u);
  EXPECT_EQ(parsed.partitions()[0].mbr, p.mbr);
  EXPECT_EQ(parsed.partitions()[0].num_records, 42u);

  EXPECT_FALSE(index::GlobalIndex::FromLines(PartitionScheme::kGrid,
                                             {"1,2,3"})
                   .ok());
  EXPECT_FALSE(index::GlobalIndex::FromLines(
                   PartitionScheme::kGrid,
                   {"a,b,0,0,1,1,0,0,1,1,5,5"})
                   .ok());
}

// ---------------------------------------------------------------------
// Pigeon parser robustness.

TEST(PigeonRobustnessTest, ParserRejectsMalformedStatements) {
  const char* bad_scripts[] = {
      "= LOAD '/x' AS POINT;",                // Missing name.
      "a LOAD '/x' AS POINT;",                // Missing '='.
      "a = LOAD;",                            // Missing path.
      "a = LOAD '/x';",                       // Missing AS.
      "a = INDEX b WITH;",                    // Missing scheme.
      "a = INDEX b WITH FOO;",                // Unknown scheme.
      "a = RANGE b RECTANGLE(1, 2, 3);",      // Too few numbers.
      "a = RANGE b RECTANGLE(1, 2, 3, x);",   // Non-number.
      "a = KNN b POINT(1) K 2;",              // Bad point.
      "a = KNNJOIN b, c;",                    // Missing K.
      "a = SJOIN b;",                         // Missing second input.
      "STORE a;",                             // Missing INTO.
      "DUMP;",                                // Missing name.
      "a = LOAD '/x' AS POINT",               // Missing ';'.
      "'stray string';",                      // Not a statement.
  };
  for (const char* script : bad_scripts) {
    EXPECT_FALSE(pigeon::Parse(script).ok()) << script;
  }
}

TEST(PigeonRobustnessTest, LexerHandlesTrickyNumbers) {
  auto tokens = pigeon::Tokenize("1e5 -2.5 +3 .5 1E-3").ValueOrDie();
  ASSERT_EQ(tokens.size(), 6u);  // 5 numbers + end.
  EXPECT_DOUBLE_EQ(tokens[0].number, 1e5);
  EXPECT_DOUBLE_EQ(tokens[1].number, -2.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 3);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.5);
  EXPECT_DOUBLE_EQ(tokens[4].number, 1e-3);
  EXPECT_FALSE(pigeon::Tokenize("1.2.3").ok());
}

TEST(PigeonRobustnessTest, ExecutorErrorsNameTheLine) {
  testing::TestCluster cluster;
  pigeon::Executor executor(&cluster.runner);
  const auto status =
      executor.Execute("\n\n\nx = RANGE ghost RECTANGLE(0,0,1,1);").status();
  ASSERT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("line 4"), std::string::npos)
      << status.ToString();
}

// ---------------------------------------------------------------------
// Misc persistence boundaries.

TEST(PersistenceTest, StoreOfFileDatasetCopiesIt) {
  testing::TestCluster cluster;
  shadoop::testing::WritePoints(&cluster.fs, "/pts", 50);
  pigeon::Executor executor(&cluster.runner);
  ASSERT_TRUE(executor
                  .Execute("p = LOAD '/pts' AS POINT;"
                           "STORE p INTO '/copy';")
                  .ok());
  EXPECT_EQ(cluster.fs.ReadLines("/copy").ValueOrDie(),
            cluster.fs.ReadLines("/pts").ValueOrDie());
}

TEST(PersistenceTest, ReindexingViaPigeonOverSameDestFails) {
  testing::TestCluster cluster;
  shadoop::testing::WritePoints(&cluster.fs, "/pts", 50);
  pigeon::Executor executor(&cluster.runner);
  ASSERT_TRUE(executor
                  .Execute("p = LOAD '/pts' AS POINT;"
                           "i = INDEX p WITH GRID INTO '/pts.g';")
                  .ok());
  EXPECT_TRUE(executor
                  .Execute("p2 = LOAD '/pts' AS POINT;"
                           "i2 = INDEX p2 WITH GRID INTO '/pts.g';")
                  .status()
                  .IsAlreadyExists());
}

}  // namespace
}  // namespace shadoop
