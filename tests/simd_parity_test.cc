// Scalar-vs-SIMD parity suite (DESIGN.md §13): every compiled dispatch
// target must produce bit-identical hit bitmaps, counts and distances to
// the scalar reference kernels — which themselves must match the
// geometry layer's Envelope semantics — and the cache-packed R-tree must
// reproduce RTree::Search exactly (payload order and visited counts).
// Runs under the ASan/UBSan tree via the regular ctest suite.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "geometry/envelope.h"
#include "index/packed_rtree.h"
#include "index/rtree.h"
#include "simd/dispatch.h"
#include "simd/mbr_kernels.h"

namespace shadoop {
namespace {

using simd::BoxLanes;
using simd::Target;
using simd::detail::KernelTable;
using simd::detail::TableFor;

/// Column of boxes in SoA form plus the Envelope each row round-trips
/// through, so expectations can compare against Envelope semantics.
struct BoxColumn {
  std::vector<double> min_x, min_y, max_x, max_y;
  std::vector<Envelope> boxes;

  void Push(const Envelope& e) {
    min_x.push_back(e.min_x());
    min_y.push_back(e.min_y());
    max_x.push_back(e.max_x());
    max_y.push_back(e.max_y());
    boxes.push_back(e);
  }
  size_t size() const { return boxes.size(); }
  BoxLanes Lanes() const {
    return {min_x.data(), min_y.data(), max_x.data(), max_y.data()};
  }
};

/// Batch sizes crossing the vector width (4) and bitmap word (64)
/// boundaries, where lane masking and tail handling can go wrong.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 63, 64, 65, 127, 128, 130, 257};

/// Deterministic mix of regular, degenerate (zero-area), touching and
/// canonical-empty boxes.
BoxColumn MakeBoxes(size_t n, Random* rng) {
  BoxColumn col;
  for (size_t i = 0; i < n; ++i) {
    switch (rng->NextUint32(5)) {
      case 0:  // Canonical empty box: must never hit anything.
        col.Push(Envelope());
        break;
      case 1: {  // Degenerate point box.
        const double x = rng->NextDouble(-100, 100);
        const double y = rng->NextDouble(-100, 100);
        col.Push(Envelope(x, y, x, y));
        break;
      }
      case 2: {  // Degenerate horizontal/vertical segment box.
        const double x = rng->NextDouble(-100, 100);
        const double y = rng->NextDouble(-100, 100);
        const double len = rng->NextDouble(0, 10);
        col.Push(rng->NextBool() ? Envelope(x, y, x + len, y)
                                 : Envelope(x, y, x, y + len));
        break;
      }
      case 3: {  // Box sharing an edge with the canonical query below —
                 // closed semantics must count touching as intersecting.
        const double y = rng->NextDouble(-100, 100);
        col.Push(Envelope(10.0, y, 10.0 + rng->NextDouble(0, 5), y + 1));
        break;
      }
      default: {
        const double x = rng->NextDouble(-100, 100);
        const double y = rng->NextDouble(-100, 100);
        col.Push(Envelope(x, y, x + rng->NextDouble(0, 20),
                          y + rng->NextDouble(0, 20)));
        break;
      }
    }
  }
  return col;
}

std::vector<Target> CompiledTargets() {
  std::vector<Target> targets;
  for (Target t : simd::SupportedTargets()) {
    if (TableFor(t).intersect_box_bitmap != nullptr) targets.push_back(t);
  }
  return targets;
}

TEST(DispatchTest, ScalarAlwaysSupportedAndFirst) {
  const std::vector<Target> targets = simd::SupportedTargets();
  ASSERT_FALSE(targets.empty());
  EXPECT_EQ(targets.front(), Target::kScalar);
  for (Target t : targets) {
    EXPECT_NE(simd::TargetName(t), nullptr);
    EXPECT_NE(TableFor(t).intersect_box_bitmap, nullptr);
  }
}

TEST(DispatchTest, SetActiveTargetRoundTrips) {
  const Target original = simd::ActiveTarget();
  for (Target t : simd::SupportedTargets()) {
    EXPECT_TRUE(simd::SetActiveTarget(t));
    EXPECT_EQ(simd::ActiveTarget(), t);
  }
  EXPECT_TRUE(simd::SetActiveTarget(original));
}

TEST(KernelParityTest, IntersectBoxBitmapMatchesEnvelopeAndAllTargets) {
  Random rng(7);
  for (size_t n : kSizes) {
    const BoxColumn col = MakeBoxes(n, &rng);
    // The canonical query plus an empty and a degenerate one.
    const Envelope queries[] = {Envelope(-10, -10, 10, 10), Envelope(),
                                Envelope(5, 5, 5, 5)};
    for (const Envelope& q : queries) {
      std::vector<uint64_t> expected(simd::BitmapWords(n) + 1, ~uint64_t{0});
      const size_t expected_hits = TableFor(Target::kScalar)
                                       .intersect_box_bitmap(
                                           col.Lanes(), n, q.min_x(),
                                           q.min_y(), q.max_x(), q.max_y(),
                                           expected.data());
      // Scalar kernel == Envelope::Intersects, bit for bit.
      size_t envelope_hits = 0;
      for (size_t i = 0; i < n; ++i) {
        const bool hit = col.boxes[i].Intersects(q);
        envelope_hits += hit;
        EXPECT_EQ((expected[i / 64] >> (i % 64)) & 1, uint64_t{hit})
            << "box " << i << " vs query " << q.ToString();
      }
      EXPECT_EQ(expected_hits, envelope_hits);
      for (Target t : CompiledTargets()) {
        std::vector<uint64_t> bits(simd::BitmapWords(n) + 1, ~uint64_t{0});
        const size_t hits = TableFor(t).intersect_box_bitmap(
            col.Lanes(), n, q.min_x(), q.min_y(), q.max_x(), q.max_y(),
            bits.data());
        EXPECT_EQ(hits, expected_hits) << simd::TargetName(t);
        for (size_t w = 0; w < simd::BitmapWords(n); ++w) {
          EXPECT_EQ(bits[w], expected[w])
              << simd::TargetName(t) << " word " << w << " n=" << n;
        }
        // The word past the bitmap must stay untouched.
        EXPECT_EQ(bits[simd::BitmapWords(n)], ~uint64_t{0});
      }
    }
  }
}

TEST(KernelParityTest, PointInBoxBitmapClosedBoundaries) {
  Random rng(11);
  const Envelope q(0, 0, 10, 10);
  for (size_t n : kSizes) {
    std::vector<double> px, py;
    for (size_t i = 0; i < n; ++i) {
      switch (rng.NextUint32(4)) {
        case 0:  // Exactly on the max corner: closed => inside.
          px.push_back(10.0);
          py.push_back(10.0);
          break;
        case 1:  // On the right edge.
          px.push_back(10.0);
          py.push_back(rng.NextDouble(-2, 12));
          break;
        default:
          px.push_back(rng.NextDouble(-2, 12));
          py.push_back(rng.NextDouble(-2, 12));
          break;
      }
    }
    std::vector<uint64_t> expected(simd::BitmapWords(n) + 1, 0);
    const size_t expected_hits =
        TableFor(Target::kScalar)
            .point_in_box_bitmap(px.data(), py.data(), n, q.min_x(),
                                 q.min_y(), q.max_x(), q.max_y(),
                                 expected.data());
    size_t envelope_hits = 0;
    for (size_t i = 0; i < n; ++i) {
      const bool hit = q.Contains(Point(px[i], py[i]));
      envelope_hits += hit;
      EXPECT_EQ((expected[i / 64] >> (i % 64)) & 1, uint64_t{hit}) << i;
    }
    EXPECT_EQ(expected_hits, envelope_hits);
    for (Target t : CompiledTargets()) {
      std::vector<uint64_t> bits(simd::BitmapWords(n) + 1, 0);
      const size_t hits = TableFor(t).point_in_box_bitmap(
          px.data(), py.data(), n, q.min_x(), q.min_y(), q.max_x(),
          q.max_y(), bits.data());
      EXPECT_EQ(hits, expected_hits) << simd::TargetName(t);
      for (size_t w = 0; w < simd::BitmapWords(n); ++w) {
        EXPECT_EQ(bits[w], expected[w]) << simd::TargetName(t);
      }
    }
  }
}

TEST(KernelParityTest, BoxMinDistanceBitIdentical) {
  Random rng(13);
  for (size_t n : kSizes) {
    const BoxColumn col = MakeBoxes(n, &rng);
    const double px = rng.NextDouble(-50, 50);
    const double py = rng.NextDouble(-50, 50);
    std::vector<double> expected(n, -1);
    TableFor(Target::kScalar)
        .box_min_distance(col.Lanes(), n, px, py, expected.data());
    for (size_t i = 0; i < n; ++i) {
      // Scalar kernel == Envelope::MinDistance, bit for bit (empty box
      // => +inf).
      EXPECT_EQ(std::bit_cast<uint64_t>(expected[i]),
                std::bit_cast<uint64_t>(
                    col.boxes[i].MinDistance(Point(px, py))))
          << i;
    }
    for (Target t : CompiledTargets()) {
      std::vector<double> out(n, -1);
      TableFor(t).box_min_distance(col.Lanes(), n, px, py, out.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(std::bit_cast<uint64_t>(out[i]),
                  std::bit_cast<uint64_t>(expected[i]))
            << simd::TargetName(t) << " i=" << i;
      }
    }
  }
}

TEST(KernelParityTest, PrefixCountLessEqualAllTargets) {
  Random rng(17);
  for (size_t n : kSizes) {
    std::vector<double> values;
    double v = -100;
    for (size_t i = 0; i < n; ++i) {
      v += rng.NextDouble(0, 3);  // Ascending, with duplicates possible.
      values.push_back(v);
    }
    const double limits[] = {-std::numeric_limits<double>::infinity(), -100,
                             0, v, v + 1,
                             std::numeric_limits<double>::infinity()};
    for (double limit : limits) {
      const size_t expected = TableFor(Target::kScalar)
                                  .prefix_count_less_equal(values.data(), n,
                                                           limit);
      size_t naive = 0;
      while (naive < n && values[naive] <= limit) ++naive;
      EXPECT_EQ(expected, naive);
      for (Target t : CompiledTargets()) {
        EXPECT_EQ(TableFor(t).prefix_count_less_equal(values.data(), n,
                                                      limit),
                  expected)
            << simd::TargetName(t) << " n=" << n << " limit=" << limit;
      }
    }
  }
}

TEST(KernelParityTest, DispatchedEntryPointsFollowActiveTarget) {
  const Target original = simd::ActiveTarget();
  Random rng(19);
  const BoxColumn col = MakeBoxes(130, &rng);
  std::vector<uint64_t> reference(simd::BitmapWords(col.size()));
  simd::SetActiveTarget(Target::kScalar);
  const size_t expected = simd::IntersectBoxBitmap(
      col.Lanes(), col.size(), -10, -10, 10, 10, reference.data());
  for (Target t : simd::SupportedTargets()) {
    ASSERT_TRUE(simd::SetActiveTarget(t));
    std::vector<uint64_t> bits(simd::BitmapWords(col.size()));
    EXPECT_EQ(simd::IntersectBoxBitmap(col.Lanes(), col.size(), -10, -10, 10,
                                       10, bits.data()),
              expected)
        << simd::TargetName(t);
    EXPECT_EQ(bits, reference) << simd::TargetName(t);
  }
  simd::SetActiveTarget(original);
}

// ---------------------------------------------------------------------
// PackedRTree vs RTree

std::vector<index::RTree::Entry> MakeEntries(size_t n, Random* rng) {
  std::vector<index::RTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng->NextDouble(0, 1000);
    const double y = rng->NextDouble(0, 1000);
    entries.push_back({Envelope(x, y, x + rng->NextDouble(0, 8),
                                y + rng->NextDouble(0, 8)),
                       static_cast<uint32_t>(i)});
  }
  return entries;
}

TEST(PackedRTreeParityTest, SearchMatchesRTreeExactly) {
  Random rng(23);
  for (size_t n : {size_t{0}, size_t{1}, size_t{5}, size_t{100},
                   size_t{1000}}) {
    for (int capacity : {2, 4, 32}) {
      const std::vector<index::RTree::Entry> entries = MakeEntries(n, &rng);
      const index::RTree reference(entries, capacity);
      const index::PackedRTree packed(entries, capacity);
      const index::PackedRTree flattened(reference);
      EXPECT_EQ(packed.NumEntries(), reference.NumEntries());
      EXPECT_EQ(packed.Bounds().ToString(), reference.Bounds().ToString());
      for (int qi = 0; qi < 50; ++qi) {
        const double x = rng.NextDouble(-50, 1050);
        const double y = rng.NextDouble(-50, 1050);
        const Envelope query(x, y, x + rng.NextDouble(0, 120),
                             y + rng.NextDouble(0, 120));
        std::vector<uint32_t> expected_hits, packed_hits, flat_hits;
        const size_t expected_visited =
            reference.Search(query, &expected_hits);
        // Same payloads in the same order, same visited count (the
        // CPU-cost proxy), for both construction paths.
        EXPECT_EQ(packed.Search(query, &packed_hits), expected_visited);
        EXPECT_EQ(packed_hits, expected_hits);
        EXPECT_EQ(flattened.Search(query, &flat_hits), expected_visited);
        EXPECT_EQ(flat_hits, expected_hits);
      }
      // Empty query never matches and never visits.
      std::vector<uint32_t> hits;
      EXPECT_EQ(packed.Search(Envelope(), &hits), 0u);
      EXPECT_TRUE(hits.empty());
    }
  }
}

TEST(PackedRTreeParityTest, SearchParityOnEveryTarget) {
  Random rng(29);
  const std::vector<index::RTree::Entry> entries = MakeEntries(500, &rng);
  const index::RTree reference(entries);
  const index::PackedRTree packed(entries);
  const Target original = simd::ActiveTarget();
  for (Target t : simd::SupportedTargets()) {
    ASSERT_TRUE(simd::SetActiveTarget(t));
    for (int qi = 0; qi < 20; ++qi) {
      const double x = rng.NextDouble(0, 1000);
      const double y = rng.NextDouble(0, 1000);
      const Envelope query(x, y, x + 90, y + 90);
      std::vector<uint32_t> expected_hits, hits;
      const size_t expected_visited = reference.Search(query, &expected_hits);
      EXPECT_EQ(packed.Search(query, &hits), expected_visited)
          << simd::TargetName(t);
      EXPECT_EQ(hits, expected_hits) << simd::TargetName(t);
    }
  }
  simd::SetActiveTarget(original);
}

}  // namespace
}  // namespace shadoop
