#include <gtest/gtest.h>

#include <algorithm>

#include "core/knn.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;

std::vector<double> BruteForceKnnDistances(const std::vector<Point>& points,
                                           const Point& q, size_t k) {
  std::vector<double> dists;
  dists.reserve(points.size());
  for (const Point& p : points) dists.push_back(Distance(p, q));
  std::sort(dists.begin(), dists.end());
  dists.resize(std::min(k, dists.size()));
  return dists;
}

void ExpectSameDistances(const std::vector<KnnAnswer>& got,
                         const std::vector<double>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i].distance, expected[i], 1e-9) << "rank " << i;
  }
}

class KnnSchemeTest : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(KnnSchemeTest, MatchesBruteForceForVariousKAndQueries) {
  testing::TestCluster cluster;
  const std::vector<Point> points = testing::WritePoints(
      &cluster.fs, "/pts", 2000, workload::Distribution::kClustered, 31);
  const index::SpatialFileInfo file =
      testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx", GetParam());

  Random rng(11);
  for (size_t k : {1u, 5u, 50u}) {
    const Point q(rng.NextDouble(0, 1e6), rng.NextDouble(0, 1e6));
    auto spatial = KnnSpatial(&cluster.runner, file, q, k).ValueOrDie();
    ExpectSameDistances(spatial, BruteForceKnnDistances(points, q, k));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, KnnSchemeTest, ::testing::ValuesIn(testing::AllSchemes()),
    [](const ::testing::TestParamInfo<PartitionScheme>& info) {
      std::string name = index::PartitionSchemeName(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
      }
      return name;
    });

TEST(KnnTest, HadoopMatchesBruteForce) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 1500);
  const Point q(5e5, 5e5);
  auto result =
      KnnHadoop(&cluster.runner, "/pts", index::ShapeType::kPoint, q, 10)
          .ValueOrDie();
  ExpectSameDistances(result, BruteForceKnnDistances(points, q, 10));
}

TEST(KnnTest, QueryOutsideSpaceStillCorrect) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 1000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kStr);
  const Point q(-5e5, 2e6);  // Far outside the data MBR.
  auto result = KnnSpatial(&cluster.runner, file, q, 7).ValueOrDie();
  ExpectSameDistances(result, BruteForceKnnDistances(points, q, 7));
}

TEST(KnnTest, KLargerThanDatasetReturnsEverything) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 40);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kGrid);
  auto result =
      KnnSpatial(&cluster.runner, file, Point(0, 0), 100).ValueOrDie();
  EXPECT_EQ(result.size(), points.size());
}

TEST(KnnTest, SpatialReadsFewerBytesThanHadoop) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 8000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kStr);
  const Point q(5e5, 5e5);
  OpStats hadoop_stats;
  OpStats spatial_stats;
  auto h = KnnHadoop(&cluster.runner, "/pts", index::ShapeType::kPoint, q, 5,
                     &hadoop_stats)
               .ValueOrDie();
  auto s = KnnSpatial(&cluster.runner, file, q, 5, &spatial_stats)
               .ValueOrDie();
  ASSERT_EQ(h.size(), s.size());
  for (size_t i = 0; i < h.size(); ++i) {
    EXPECT_NEAR(h[i].distance, s[i].distance, 1e-9);
  }
  EXPECT_LT(spatial_stats.cost.bytes_read, hadoop_stats.cost.bytes_read / 3);
}

TEST(KnnTest, CorrectnessLoopTriggersNearPartitionBoundary) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 4000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kGrid);
  ASSERT_GT(file.global_index.NumPartitions(), 4u);
  // Query on a partition boundary: neighbours must be consulted.
  const index::Partition& part = file.global_index.partitions()[0];
  const Point q(part.cell.max_x(), part.cell.max_y());
  OpStats stats;
  auto result = KnnSpatial(&cluster.runner, file, q, 20, &stats).ValueOrDie();
  ASSERT_EQ(result.size(), 20u);
  EXPECT_GE(stats.jobs_run, 2) << "boundary query should need a second round";
}

}  // namespace
}  // namespace shadoop::core
