// Cross-operation consistency properties: independent code paths that
// must agree with each other (count vs materialized size, histogram vs
// total, permutation invariance, build determinism, hull/skyline
// invariants) across schemes and distributions.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/aggregate_op.h"
#include "core/convex_hull_op.h"
#include "core/histogram_op.h"
#include "core/range_query.h"
#include "core/skyline_op.h"
#include "geometry/convex_hull.h"
#include "geometry/polygon_union.h"
#include "geometry/skyline.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;
using workload::Distribution;

struct ConsistencyCase {
  PartitionScheme scheme;
  Distribution distribution;
};

class ConsistencyTest : public ::testing::TestWithParam<ConsistencyCase> {};

TEST_P(ConsistencyTest, CountEqualsRangeSizeAndHistogramTotal) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 2200, GetParam().distribution,
                       13);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        GetParam().scheme);
  Random rng(6);
  for (int q = 0; q < 3; ++q) {
    const double x = rng.NextDouble(0, 7e5);
    const double y = rng.NextDouble(0, 7e5);
    const Envelope query(x, y, x + 3e5, y + 3e5);
    const auto range =
        RangeQuerySpatial(&cluster.runner, file, query).ValueOrDie();
    const int64_t count =
        RangeCountSpatial(&cluster.runner, file, query).ValueOrDie();
    EXPECT_EQ(count, static_cast<int64_t>(range.size()));
  }
  const auto histogram =
      ComputeGridHistogram(&cluster.runner, "/pts", index::ShapeType::kPoint,
                           Envelope(0, 0, 1e6, 1e6), 16, 16)
          .ValueOrDie();
  EXPECT_EQ(histogram.TotalCount(), 2200);
}

TEST_P(ConsistencyTest, DistributedSkylineIsIdempotentAndUndominated) {
  testing::TestCluster cluster;
  const auto points = testing::WritePoints(&cluster.fs, "/pts", 1800,
                                           GetParam().distribution, 14);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        GetParam().scheme);
  const auto sky = SkylineSpatial(&cluster.runner, file).ValueOrDie();
  // Invariant 1: every skyline point is an input point.
  const std::set<std::pair<double, double>> input = [&] {
    std::set<std::pair<double, double>> s;
    for (const Point& p : points) s.insert({p.x, p.y});
    return s;
  }();
  for (const Point& p : sky) {
    EXPECT_TRUE(input.count({p.x, p.y})) << p.x << "," << p.y;
  }
  // Invariant 2: no input point dominates any skyline point.
  for (const Point& s : sky) {
    for (const Point& p : points) {
      EXPECT_FALSE(Dominates(p, s, SkylineDominance::kMaxMax));
    }
  }
  // Invariant 3: idempotence.
  EXPECT_EQ(Skyline(sky), sky);
}

TEST_P(ConsistencyTest, DistributedHullContainsEveryInputPoint) {
  testing::TestCluster cluster;
  const auto points = testing::WritePoints(&cluster.fs, "/pts", 1500,
                                           GetParam().distribution, 15);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        GetParam().scheme);
  const auto hull = ConvexHullSpatial(&cluster.runner, file).ValueOrDie();
  for (const Point& p : points) {
    EXPECT_TRUE(HullContains(hull, p)) << p.x << "," << p.y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ConsistencyTest,
    ::testing::Values(
        ConsistencyCase{PartitionScheme::kGrid, Distribution::kUniform},
        ConsistencyCase{PartitionScheme::kStr, Distribution::kClustered},
        ConsistencyCase{PartitionScheme::kQuadTree,
                        Distribution::kAntiCorrelated},
        ConsistencyCase{PartitionScheme::kZCurve, Distribution::kGaussian}),
    [](const ::testing::TestParamInfo<ConsistencyCase>& info) {
      std::string name = index::PartitionSchemeName(info.param.scheme);
      name += "_";
      name += workload::DistributionName(info.param.distribution);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
      }
      return name;
    });

TEST(DeterminismTest, IndexBuildsAreBitIdentical) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 2500,
                       Distribution::kClustered, 16);
  testing::BuildIndex(&cluster.runner, "/pts", "/first",
                      PartitionScheme::kStr);
  testing::BuildIndex(&cluster.runner, "/pts", "/second",
                      PartitionScheme::kStr);
  EXPECT_EQ(cluster.fs.ReadLines("/first").ValueOrDie(),
            cluster.fs.ReadLines("/second").ValueOrDie());
  // Master files differ only in... nothing: identical too.
  EXPECT_EQ(cluster.fs.ReadLines("/first_master").ValueOrDie(),
            cluster.fs.ReadLines("/second_master").ValueOrDie());
}

TEST(PermutationInvarianceTest, UnionBoundaryLength) {
  workload::PolygonGenOptions options;
  options.centers.count = 60;
  options.centers.seed = 31;
  options.max_radius_fraction = 0.08;
  std::vector<Polygon> polygons = workload::GeneratePolygons(options);
  const double original = UnionBoundaryLength(polygons);
  Random rng(2);
  for (int round = 0; round < 3; ++round) {
    // Fisher-Yates with the deterministic RNG.
    for (size_t i = polygons.size(); i > 1; --i) {
      std::swap(polygons[i - 1], polygons[rng.NextUint64(i)]);
    }
    EXPECT_NEAR(UnionBoundaryLength(polygons), original, original * 1e-9);
  }
}

TEST(PermutationInvarianceTest, RangeQueryIgnoresClusterShape) {
  // The same query over the same indexed data must return the same
  // records regardless of datanode count and worker slots.
  std::multiset<std::string> reference;
  for (int slots : {2, 7}) {
    hdfs::HdfsConfig hdfs_config;
    hdfs_config.block_size = 4 * 1024;
    hdfs_config.num_datanodes = slots * 3;
    hdfs::FileSystem fs(hdfs_config);
    mapreduce::ClusterConfig cluster_config;
    cluster_config.num_slots = slots;
    mapreduce::JobRunner runner(&fs, cluster_config);
    workload::PointGenOptions gen;
    gen.count = 1500;
    gen.seed = 44;
    SHADOOP_CHECK_OK(workload::WritePointFile(&fs, "/pts", gen));
    index::IndexBuilder builder(&runner);
    index::IndexBuildOptions options;
    options.scheme = PartitionScheme::kKdTree;
    const auto file = builder.Build("/pts", "/pts.idx", options).ValueOrDie();
    auto result = RangeQuerySpatial(&runner, file,
                                    Envelope(1e5, 1e5, 6e5, 6e5))
                      .ValueOrDie();
    std::multiset<std::string> current(result.begin(), result.end());
    if (reference.empty()) {
      reference = current;
    } else {
      EXPECT_EQ(current, reference);
    }
  }
  EXPECT_FALSE(reference.empty());
}

}  // namespace
}  // namespace shadoop::core
