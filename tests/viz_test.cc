#include <gtest/gtest.h>

#include "geometry/wkt.h"
#include "test_util.h"
#include "viz/plot.h"

namespace shadoop::viz {
namespace {

TEST(CanvasTest, PointAccumulation) {
  Canvas canvas(10, 10, Envelope(0, 0, 100, 100));
  canvas.AddPoint(Point(5, 95));    // Top-left pixel (0, 0).
  canvas.AddPoint(Point(5, 95));
  canvas.AddPoint(Point(95, 5));    // Bottom-right pixel (9, 9).
  canvas.AddPoint(Point(500, 500)); // Outside: dropped.
  EXPECT_DOUBLE_EQ(canvas.At(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(canvas.At(9, 9), 1.0);
  EXPECT_EQ(canvas.CountNonZero(), 2u);
  EXPECT_DOUBLE_EQ(canvas.MaxIntensity(), 2.0);
}

TEST(CanvasTest, BoundaryPixelsStayInRange) {
  Canvas canvas(4, 4, Envelope(0, 0, 1, 1));
  canvas.AddPoint(Point(1, 1));  // Max corner maps to pixel (3, 0).
  canvas.AddPoint(Point(0, 0));  // Min corner maps to pixel (0, 3).
  EXPECT_DOUBLE_EQ(canvas.At(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(canvas.At(0, 3), 1.0);
}

TEST(CanvasTest, SegmentDrawsContiguousPixels) {
  Canvas canvas(10, 10, Envelope(0, 0, 10, 10));
  canvas.DrawSegment(Segment(Point(0.5, 5.5), Point(9.5, 5.5)));
  // The horizontal line touches all 10 columns of one row.
  int touched = 0;
  for (int x = 0; x < 10; ++x) {
    if (canvas.At(x, 4) > 0) ++touched;
  }
  EXPECT_EQ(touched, 10);
}

TEST(CanvasTest, MergeAndSparseCodecRoundTrip) {
  Canvas a(8, 8, Envelope(0, 0, 1, 1));
  a.AddPoint(Point(0.1, 0.1));
  a.AddPoint(Point(0.9, 0.9), 3.0);
  Canvas b(8, 8, Envelope(0, 0, 1, 1));
  for (const std::string& record : a.ToSparseRecords()) {
    ASSERT_TRUE(b.AccumulateSparseRecord(record).ok());
  }
  ASSERT_TRUE(b.MergeFrom(a).ok());
  EXPECT_DOUBLE_EQ(b.MaxIntensity(), 2.0 * a.MaxIntensity());

  Canvas wrong(4, 4, Envelope(0, 0, 1, 1));
  EXPECT_TRUE(wrong.MergeFrom(a).IsInvalidArgument());
  EXPECT_FALSE(b.AccumulateSparseRecord("1,2").ok());
  EXPECT_FALSE(b.AccumulateSparseRecord("100,2,1").ok());
}

TEST(CanvasTest, ImageEncodings) {
  Canvas canvas(3, 2, Envelope(0, 0, 1, 1));
  canvas.Set(0, 0, 5.0);
  const std::string pgm = canvas.ToPgm();
  EXPECT_EQ(pgm.rfind("P5\n3 2\n255\n", 0), 0u);
  EXPECT_EQ(pgm.size(), std::string("P5\n3 2\n255\n").size() + 6);
  const std::string ppm = canvas.ToPpm();
  EXPECT_EQ(ppm.rfind("P6\n3 2\n255\n", 0), 0u);
  EXPECT_EQ(ppm.size(), std::string("P6\n3 2\n255\n").size() + 18);
}

TEST(PlotTest, HadoopAndSpatialProduceIdenticalImages) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 3000,
                       workload::Distribution::kClustered, 5);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", index::PartitionScheme::kStr);
  PlotOptions options;
  options.width = 64;
  options.height = 64;

  core::OpStats hadoop_stats;
  core::OpStats spatial_stats;
  const Canvas hadoop = PlotHadoop(&cluster.runner, "/pts",
                                   index::ShapeType::kPoint, options,
                                   &hadoop_stats)
                            .ValueOrDie();
  // Constrain the spatial plot to the same world (the Hadoop path derives
  // it from the scan; the spatial path from the index — identical MBRs).
  const Canvas spatial =
      PlotSpatial(&cluster.runner, file, options, &spatial_stats)
          .ValueOrDie();
  ASSERT_EQ(hadoop.width(), spatial.width());
  ASSERT_EQ(hadoop.world(), spatial.world());
  for (int y = 0; y < hadoop.height(); ++y) {
    for (int x = 0; x < hadoop.width(); ++x) {
      ASSERT_DOUBLE_EQ(hadoop.At(x, y), spatial.At(x, y))
          << "pixel " << x << "," << y;
    }
  }
  // Every point landed somewhere.
  double total = 0;
  for (int y = 0; y < spatial.height(); ++y) {
    for (int x = 0; x < spatial.width(); ++x) total += spatial.At(x, y);
  }
  EXPECT_DOUBLE_EQ(total, 3000.0);
  // The Hadoop path needed an extra MBR job.
  EXPECT_EQ(hadoop_stats.jobs_run, spatial_stats.jobs_run + 1);
}

TEST(PlotTest, OutlinePlotDrawsRectangles) {
  testing::TestCluster cluster;
  workload::RectGenOptions rects;
  rects.centers.count = 200;
  rects.centers.seed = 3;
  rects.max_side_fraction = 0.2;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/rects", workload::RectanglesToRecords(
                                            workload::GenerateRectangles(rects)))
                  .ok());
  PlotOptions options;
  options.width = 64;
  options.height = 64;
  options.layer = PlotLayer::kOutlines;
  const Canvas canvas = PlotHadoop(&cluster.runner, "/rects",
                                   index::ShapeType::kRectangle, options)
                            .ValueOrDie();
  EXPECT_GT(canvas.CountNonZero(), 500u);
}

TEST(PlotTest, PyramidTilesSumToDataset) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 2000,
                       workload::Distribution::kClustered, 9);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", index::PartitionScheme::kStr);
  PyramidOptions options;
  options.tile_size = 64;
  options.num_levels = 3;
  const auto tiles =
      PlotPyramid(&cluster.runner, file, options, "/tiles").ValueOrDie();

  // Per level, total intensity equals the number of points.
  std::map<int, double> level_total;
  std::map<int, int> level_tiles;
  for (const auto& [id, canvas] : tiles) {
    for (int y = 0; y < canvas.height(); ++y) {
      for (int x = 0; x < canvas.width(); ++x) {
        level_total[id.level] += canvas.At(x, y);
      }
    }
    level_tiles[id.level]++;
    EXPECT_LT(id.x, 1 << id.level);
    EXPECT_LT(id.y, 1 << id.level);
  }
  for (int level = 0; level < options.num_levels; ++level) {
    EXPECT_DOUBLE_EQ(level_total[level], 2000.0) << "level " << level;
  }
  EXPECT_EQ(level_tiles[0], 1);
  EXPECT_GT(level_tiles[2], 1);

  // Tiles were persisted and load back identically.
  const auto paths = cluster.fs.ListFiles("/tiles/");
  EXPECT_EQ(paths.size(), tiles.size());
  const Canvas reloaded =
      LoadCanvas(cluster.fs, "/tiles/tile-0-0-0").ValueOrDie();
  const Canvas& original = tiles.at(TileId{0, 0, 0});
  EXPECT_EQ(reloaded.width(), original.width());
  EXPECT_DOUBLE_EQ(reloaded.MaxIntensity(), original.MaxIntensity());
  EXPECT_EQ(reloaded.CountNonZero(), original.CountNonZero());
}

TEST(PlotTest, TileWorldSubdividesCorrectly) {
  const Envelope world(0, 0, 100, 100);
  EXPECT_EQ(TileWorld(world, {0, 0, 0}), world);
  // Level 1, tile (0,0) is the TOP-left quadrant (screen convention).
  EXPECT_EQ(TileWorld(world, {1, 0, 0}), Envelope(0, 50, 50, 100));
  EXPECT_EQ(TileWorld(world, {1, 1, 1}), Envelope(50, 0, 100, 50));
}

TEST(PlotTest, PyramidRejectsBadOptions) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 100);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", index::PartitionScheme::kGrid);
  PyramidOptions options;
  options.layer = PlotLayer::kOutlines;
  EXPECT_TRUE(PlotPyramid(&cluster.runner, file, options)
                  .status()
                  .IsUnimplemented());
  options.layer = PlotLayer::kPoints;
  options.num_levels = 20;
  EXPECT_TRUE(PlotPyramid(&cluster.runner, file, options)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace shadoop::viz
