// Unit tests for the cost-based optimizer (DESIGN.md §15): the simulated
// cost model, the partitioning advisor, and the executor integration
// (plan log, EXPLAIN `; plan:` segment, `SET optimizer off` parity, plan
// fingerprints). Every fixture is synthetic and deterministic — plan
// choices must be identical across reruns and machines.
#include "optimizer/optimizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/histogram_op.h"
#include "core/spatial_join.h"
#include "optimizer/cost_model.h"
#include "optimizer/partitioning_advisor.h"
#include "pigeon/executor.h"
#include "pigeon/parser.h"
#include "test_util.h"

namespace shadoop::optimizer {
namespace {

index::Partition MakePartition(int id, const Envelope& box, size_t records,
                               size_t bytes) {
  index::Partition p;
  p.id = id;
  p.block_index = static_cast<size_t>(id);
  p.cell = box;
  p.mbr = box;
  p.num_records = records;
  p.num_bytes = bytes;
  return p;
}

index::SpatialFileInfo MakeFile(index::PartitionScheme scheme,
                                index::ShapeType shape,
                                std::vector<index::Partition> partitions) {
  index::SpatialFileInfo info;
  info.data_path = "/synthetic";
  info.shape = shape;
  info.global_index = index::GlobalIndex(scheme, std::move(partitions));
  return info;
}

/// `count` partitions side by side on the x axis: partition i covers
/// [i, 0, i+1, 1]. Pairing two such files yields exactly one overlapping
/// pair per partition (plus boundary touches).
std::vector<index::Partition> DisjointStrip(int count, size_t records,
                                            size_t bytes) {
  std::vector<index::Partition> parts;
  for (int i = 0; i < count; ++i) {
    parts.push_back(MakePartition(i, Envelope(i, 0, i + 0.9, 1), records,
                                  bytes));
  }
  return parts;
}

/// `count` partitions all covering the same unit square — every A x B
/// pair overlaps, the worst case for the pairwise distributed join.
std::vector<index::Partition> OverlappingPile(int count, size_t records,
                                              size_t bytes) {
  std::vector<index::Partition> parts;
  for (int i = 0; i < count; ++i) {
    parts.push_back(MakePartition(i, Envelope(0, 0, 1, 1), records, bytes));
  }
  return parts;
}

mapreduce::ClusterConfig DefaultCluster() { return {}; }

// ---------------------------------------------------------------------------
// Selectivity estimation

TEST(Selectivity, FullCoverageAndDisjointExtremes) {
  const index::SpatialFileInfo file = MakeFile(
      index::PartitionScheme::kStr, index::ShapeType::kPoint,
      DisjointStrip(4, 100, 4096));
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(file.global_index, Envelope(-1, -1, 10, 2)), 1.0);
  EXPECT_DOUBLE_EQ(
      EstimateSelectivity(file.global_index, Envelope(50, 50, 60, 60)), 0.0);
}

TEST(Selectivity, PartialCoverageScalesByArea) {
  // One unit-square partition, query covering its left half.
  const index::SpatialFileInfo file =
      MakeFile(index::PartitionScheme::kStr, index::ShapeType::kPoint,
               {MakePartition(0, Envelope(0, 0, 1, 1), 100, 4096)});
  const double sel =
      EstimateSelectivity(file.global_index, Envelope(0, 0, 0.5, 1));
  EXPECT_NEAR(sel, 0.5, 1e-9);
}

TEST(Selectivity, DegenerateAxisCountsAsCovered) {
  // A zero-height partition (all records on one horizontal line): any
  // intersecting query covers the degenerate axis fully.
  const index::SpatialFileInfo file =
      MakeFile(index::PartitionScheme::kStr, index::ShapeType::kPoint,
               {MakePartition(0, Envelope(0, 5, 10, 5), 100, 4096)});
  const double sel =
      EstimateSelectivity(file.global_index, Envelope(0, 0, 5, 10));
  EXPECT_NEAR(sel, 0.5, 1e-9);  // Half the x extent, full (degenerate) y.
}

TEST(Selectivity, HistogramOverloadMatchesCellCounts) {
  core::GridHistogram hist(2, 2, Envelope(0, 0, 2, 2));
  hist.Add(0, 0, 30);
  hist.Add(1, 1, 10);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(hist, Envelope(0, 0, 1, 1)), 0.75);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(hist, Envelope(0, 0, 2, 2)), 1.0);
  EXPECT_DOUBLE_EQ(EstimateSelectivity(hist, Envelope(5, 5, 6, 6)), 0.0);
}

// ---------------------------------------------------------------------------
// Replicated-storage detection

TEST(ReplicatedStorage, DisjointSchemeWithExtendedShapesReplicates) {
  EXPECT_TRUE(IsReplicatedStorage(
      MakeFile(index::PartitionScheme::kGrid, index::ShapeType::kRectangle,
               DisjointStrip(2, 10, 1024))));
  // Points are never replicated (each lives in exactly one cell).
  EXPECT_FALSE(IsReplicatedStorage(
      MakeFile(index::PartitionScheme::kGrid, index::ShapeType::kPoint,
               DisjointStrip(2, 10, 1024))));
  // Overlapping schemes store every shape once.
  EXPECT_FALSE(IsReplicatedStorage(
      MakeFile(index::PartitionScheme::kStr, index::ShapeType::kRectangle,
               DisjointStrip(2, 10, 1024))));
}

// ---------------------------------------------------------------------------
// Join costing and strategy choice

TEST(JoinPlan, DistributedJoinWinsOnDisjointPairs) {
  // 8 one-to-one partition pairs: DJ runs 8 cheap tasks in one job; SJMR
  // pays three jobs and a full shuffle. DJ must win by a wide margin.
  const auto a = MakeFile(index::PartitionScheme::kStr,
                          index::ShapeType::kPoint,
                          DisjointStrip(8, 2000, 64 * 1024));
  const auto b = MakeFile(index::PartitionScheme::kStr,
                          index::ShapeType::kPoint,
                          DisjointStrip(8, 2000, 64 * 1024));
  const PlanCost dj = CostDistributedJoin(DefaultCluster(), a, b, false);
  const PlanCost sjmr = CostSjmrJoin(DefaultCluster(), a, b);
  EXPECT_LT(dj.total_ms, sjmr.total_ms);
  EXPECT_EQ(dj.jobs, 1);
  EXPECT_EQ(sjmr.jobs, 3);
  EXPECT_GT(sjmr.bytes_shuffled, 0u);
  EXPECT_EQ(dj.bytes_shuffled, 0u);

  const JoinPlan plan = PlanJoin(DefaultCluster(), a, b);
  EXPECT_EQ(plan.strategy, JoinStrategy::kDjBuildLeft);
  EXPECT_EQ(plan.decision.chosen, "dj.l");
  ASSERT_EQ(plan.decision.alternatives.size(), 3u);
}

TEST(JoinPlan, SjmrWinsUnderPairExplosion) {
  // 64 x 64 all-overlapping partitions: DJ degenerates to 4096 pair
  // tasks re-reading every block 64 times; SJMR reads each block a
  // constant number of times. SJMR must win.
  const auto a = MakeFile(index::PartitionScheme::kStr,
                          index::ShapeType::kPoint,
                          OverlappingPile(64, 2000, 64 * 1024));
  const auto b = MakeFile(index::PartitionScheme::kStr,
                          index::ShapeType::kPoint,
                          OverlappingPile(64, 2000, 64 * 1024));
  const PlanCost dj = CostDistributedJoin(DefaultCluster(), a, b, false);
  const PlanCost sjmr = CostSjmrJoin(DefaultCluster(), a, b);
  EXPECT_GT(dj.total_ms, sjmr.total_ms);

  const JoinPlan plan = PlanJoin(DefaultCluster(), a, b);
  EXPECT_EQ(plan.strategy, JoinStrategy::kSjmr);
  EXPECT_EQ(plan.decision.chosen, "sjmr");
}

TEST(JoinPlan, BuildsOnTheSideWithMoreRecords) {
  // Probing charges 5x building per entry-level, so the big side builds.
  const auto big = MakeFile(index::PartitionScheme::kStr,
                            index::ShapeType::kPoint,
                            DisjointStrip(8, 20000, 64 * 1024));
  const auto small = MakeFile(index::PartitionScheme::kStr,
                              index::ShapeType::kPoint,
                              DisjointStrip(8, 200, 8 * 1024));
  EXPECT_EQ(PlanJoin(DefaultCluster(), big, small).strategy,
            JoinStrategy::kDjBuildLeft);
  EXPECT_EQ(PlanJoin(DefaultCluster(), small, big).strategy,
            JoinStrategy::kDjBuildRight);
}

TEST(JoinPlan, SjmrIneligibleOnReplicatedStorage) {
  // Disjoint cells + rectangles replicate boundary shapes: a raw re-scan
  // (SJMR) would double-count, so only the DJ alternatives are priced.
  const auto a = MakeFile(index::PartitionScheme::kGrid,
                          index::ShapeType::kRectangle,
                          OverlappingPile(64, 2000, 64 * 1024));
  const auto b = MakeFile(index::PartitionScheme::kGrid,
                          index::ShapeType::kRectangle,
                          OverlappingPile(64, 2000, 64 * 1024));
  const JoinPlan plan = PlanJoin(DefaultCluster(), a, b);
  EXPECT_NE(plan.strategy, JoinStrategy::kSjmr);
  const PlanAlternative& sjmr = plan.decision.alternatives.back();
  EXPECT_EQ(sjmr.name, "sjmr");
  EXPECT_FALSE(sjmr.eligible);
  EXPECT_NE(sjmr.detail.find("ineligible"), std::string::npos);
}

TEST(JoinPlan, DecisionRendersChosenAndRejectedWithEstimates) {
  const auto a = MakeFile(index::PartitionScheme::kStr,
                          index::ShapeType::kPoint,
                          DisjointStrip(8, 2000, 64 * 1024));
  const JoinPlan plan = PlanJoin(DefaultCluster(), a, a);
  const std::string line = FormatDecision(plan.decision);
  EXPECT_NE(line.find("op=sjoin chosen=dj.l(est="), std::string::npos);
  EXPECT_NE(line.find("rejected=[dj.r(est="), std::string::npos);
  EXPECT_NE(line.find("sjmr(est="), std::string::npos);
  // Identical inputs must render the identical decision, always.
  EXPECT_EQ(line, FormatDecision(PlanJoin(DefaultCluster(), a, a).decision));
}

// ---------------------------------------------------------------------------
// Range costing

TEST(RangePlan, PrefersPrunedAndReportsSelectivity) {
  const auto file = MakeFile(index::PartitionScheme::kStr,
                             index::ShapeType::kPoint,
                             DisjointStrip(16, 2000, 64 * 1024));
  const RangePlan plan =
      PlanRange(DefaultCluster(), file, Envelope(0, 0, 1, 1), "range");
  EXPECT_TRUE(plan.use_index);
  EXPECT_EQ(plan.decision.chosen, "pruned");
  const std::string line = FormatDecision(plan.decision);
  EXPECT_NE(line.find("sel="), std::string::npos);
  EXPECT_NE(line.find("rejected=[scan(est="), std::string::npos);
  // The pruned plan reads a strict subset of the scan's bytes.
  const PlanCost pruned = CostRangePruned(DefaultCluster(), file,
                                          Envelope(0, 0, 1, 1));
  const PlanCost scan = CostRangeScan(DefaultCluster(), file);
  EXPECT_LT(pruned.bytes_read, scan.bytes_read);
  EXPECT_LE(pruned.total_ms, scan.total_ms);
}

TEST(RangePlan, ScanIneligibleOnReplicatedStorage) {
  const auto file = MakeFile(index::PartitionScheme::kGrid,
                             index::ShapeType::kRectangle,
                             DisjointStrip(16, 2000, 64 * 1024));
  const RangePlan plan =
      PlanRange(DefaultCluster(), file, Envelope(0, 0, 1, 1), "range");
  EXPECT_TRUE(plan.use_index);
  ASSERT_EQ(plan.decision.alternatives.size(), 2u);
  EXPECT_FALSE(plan.decision.alternatives[1].eligible);
}

TEST(CostModel, FormatMsRendersWholeMilliseconds) {
  EXPECT_EQ(FormatMs(1234.4), "1234");
  EXPECT_EQ(FormatMs(1234.5), "1235");
  EXPECT_EQ(FormatMs(0.0), "0");
}

// ---------------------------------------------------------------------------
// Partitioning advisor

TEST(Advisor, UniformPointsScoreCleanly) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/uniform", 3000,
                       workload::Distribution::kUniform);
  const AdvisorChoice choice =
      AdvisePartitioning(&cluster.fs, "/uniform", index::ShapeType::kPoint,
                         AdvisorOptions())
          .ValueOrDie();
  ASSERT_FALSE(choice.candidates.empty());
  // The chosen candidate must carry the minimum score.
  double best = choice.candidates[0].score;
  for (const CandidateScore& c : choice.candidates) {
    best = std::min(best, c.score);
    // Points are stored exactly once under every technique.
    EXPECT_DOUBLE_EQ(c.replication, 1.0);
    EXPECT_GE(c.balance, 1.0 - 1e-9);
  }
  for (const CandidateScore& c : choice.candidates) {
    if (c.scheme == choice.scheme &&
        c.target_partitions == choice.target_partitions) {
      EXPECT_DOUBLE_EQ(c.score, best);
    }
  }
}

TEST(Advisor, SkewPenalizesUniformGrid) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/skewed", 3000,
                       workload::Distribution::kClustered);
  const AdvisorChoice choice =
      AdvisePartitioning(&cluster.fs, "/skewed", index::ShapeType::kPoint,
                         AdvisorOptions())
          .ValueOrDie();
  // Sample-adaptive techniques must beat the uniform grid on clustered
  // data: the grid piles most of the sample into a few cells.
  double grid_best = 0;
  double adaptive_best = 1e300;
  for (const CandidateScore& c : choice.candidates) {
    if (c.scheme == index::PartitionScheme::kGrid) {
      grid_best = std::max(grid_best, c.balance);
    } else {
      adaptive_best = std::min(adaptive_best, c.score);
    }
  }
  EXPECT_GT(grid_best, 2.0) << "grid should be visibly imbalanced on skew";
  EXPECT_NE(choice.scheme, index::PartitionScheme::kGrid);
  // Determinism: advising twice yields the identical choice.
  const AdvisorChoice again =
      AdvisePartitioning(&cluster.fs, "/skewed", index::ShapeType::kPoint,
                         AdvisorOptions())
          .ValueOrDie();
  EXPECT_EQ(again.scheme, choice.scheme);
  EXPECT_EQ(again.target_partitions, choice.target_partitions);
  ASSERT_EQ(again.candidates.size(), choice.candidates.size());
  for (size_t i = 0; i < choice.candidates.size(); ++i) {
    EXPECT_EQ(FormatCandidate(again.candidates[i]),
              FormatCandidate(choice.candidates[i]));
  }
}

TEST(Advisor, ErrorsWithoutParseableRecords) {
  testing::TestCluster cluster;
  SHADOOP_CHECK_OK(cluster.fs.WriteLines("/garbage", {"#meta", "not-a-point"}));
  EXPECT_FALSE(AdvisePartitioning(&cluster.fs, "/garbage",
                                  index::ShapeType::kPoint, AdvisorOptions())
                   .ok());
}

// ---------------------------------------------------------------------------
// Executor integration

TEST(ExecutorOptimizer, ExplainShowsJoinPlanWithRejectedAlternatives) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/a", 1500);
  testing::WritePoints(&cluster.fs, "/b", 1500, workload::Distribution::kUniform,
                       /*seed=*/7);
  pigeon::Executor executor(&cluster.runner);
  const pigeon::ExecutionReport report =
      executor
          .Execute(
              "a = LOAD '/a' AS POINT;"
              "b = LOAD '/b' AS POINT;"
              "ai = INDEX a WITH STR INTO '/a_idx';"
              "bi = INDEX b WITH STR INTO '/b_idx';"
              "j = SJOIN ai, bi;"
              "EXPLAIN j;")
          .ValueOrDie();
  ASSERT_FALSE(report.dump_output.empty());
  const std::string& line = report.dump_output.back();
  EXPECT_NE(line.find("; plan: op=sjoin chosen="), std::string::npos) << line;
  EXPECT_NE(line.find("rejected=["), std::string::npos) << line;
  EXPECT_NE(line.find("est="), std::string::npos) << line;
}

TEST(ExecutorOptimizer, ExplainWithoutPlannedOpsStaysClean) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/a", 500);
  pigeon::Executor executor(&cluster.runner);
  const pigeon::ExecutionReport report =
      executor.Execute("a = LOAD '/a' AS POINT; EXPLAIN a;").ValueOrDie();
  ASSERT_FALSE(report.dump_output.empty());
  EXPECT_EQ(report.dump_output.back().find("; plan:"), std::string::npos);
}

TEST(ExecutorOptimizer, OffReproducesLegacyJoinByteIdentically) {
  // `SET optimizer off` must reproduce the pre-optimizer plan exactly:
  // same rows, same order, same charges as a direct build-left DJ.
  const char* script =
      "SET optimizer off;"
      "a = LOAD '/a' AS POINT;"
      "b = LOAD '/b' AS POINT;"
      "ai = INDEX a WITH STR INTO '/a_idx';"
      "bi = INDEX b WITH STR INTO '/b_idx';"
      "j = SJOIN ai, bi;"
      "DUMP j;";
  testing::TestCluster with_executor;
  testing::WritePoints(&with_executor.fs, "/a", 1200);
  testing::WritePoints(&with_executor.fs, "/b", 1200,
                       workload::Distribution::kUniform, /*seed=*/7);
  pigeon::Executor executor(&with_executor.runner);
  const pigeon::ExecutionReport report =
      executor.Execute(script).ValueOrDie();
  EXPECT_FALSE(executor.optimizer_enabled());
  EXPECT_TRUE(executor.plan_log().empty());

  testing::TestCluster direct;
  testing::WritePoints(&direct.fs, "/a", 1200);
  testing::WritePoints(&direct.fs, "/b", 1200,
                       workload::Distribution::kUniform, /*seed=*/7);
  const index::SpatialFileInfo ai = testing::BuildIndex(
      &direct.runner, "/a", "/a_idx", index::PartitionScheme::kStr);
  const index::SpatialFileInfo bi = testing::BuildIndex(
      &direct.runner, "/b", "/b_idx", index::PartitionScheme::kStr);
  const std::vector<std::string> expected =
      core::DistributedJoin(&direct.runner, ai, bi).ValueOrDie();
  EXPECT_EQ(report.dump_output, expected);
}

TEST(ExecutorOptimizer, OnAndOffAgreeOnJoinRowMultisets) {
  // Whatever strategy the optimizer picks, the join *answer* is the
  // same multiset of rows the legacy plan produces.
  auto run = [](const std::string& prelude) {
    testing::TestCluster cluster;
    testing::WritePoints(&cluster.fs, "/a", 1200);
    testing::WritePoints(&cluster.fs, "/b", 1200,
                         workload::Distribution::kUniform, /*seed=*/7);
    pigeon::Executor executor(&cluster.runner);
    pigeon::ExecutionReport report =
        executor
            .Execute(prelude +
                     "a = LOAD '/a' AS POINT;"
                     "b = LOAD '/b' AS POINT;"
                     "ai = INDEX a WITH STR INTO '/a_idx';"
                     "bi = INDEX b WITH STR INTO '/b_idx';"
                     "j = SJOIN ai, bi;"
                     "DUMP j;")
            .ValueOrDie();
    std::sort(report.dump_output.begin(), report.dump_output.end());
    return report.dump_output;
  };
  EXPECT_EQ(run(""), run("SET optimizer off;"));
}

TEST(ExecutorOptimizer, IndexWithAutoConsultsTheAdvisor) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/skewed", 3000,
                       workload::Distribution::kClustered);
  pigeon::Executor executor(&cluster.runner);
  const pigeon::ExecutionReport report =
      executor
          .Execute(
              "pts = LOAD '/skewed' AS POINT;"
              "idx = INDEX pts WITH AUTO;"
              "EXPLAIN idx;")
          .ValueOrDie();
  ASSERT_FALSE(report.dump_output.empty());
  const std::string& line = report.dump_output.back();
  EXPECT_NE(line.find("; plan: op=index chosen="), std::string::npos) << line;
  EXPECT_NE(line.find("balance="), std::string::npos) << line;
  const auto it = executor.environment().find("idx");
  ASSERT_NE(it, executor.environment().end());
  ASSERT_TRUE(it->second.info.has_value());
  // The advisor never picks the uniform grid on clustered data.
  EXPECT_NE(it->second.info->global_index.scheme(),
            index::PartitionScheme::kGrid);
}

TEST(ExecutorOptimizer, AutoFallsBackToStrWhenOff) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 1000);
  pigeon::Executor executor(&cluster.runner);
  const pigeon::ExecutionReport report =
      executor
          .Execute(
              "SET optimizer off;"
              "pts = LOAD '/pts' AS POINT;"
              "idx = INDEX pts WITH AUTO;")
          .ValueOrDie();
  (void)report;
  const auto it = executor.environment().find("idx");
  ASSERT_NE(it, executor.environment().end());
  EXPECT_EQ(it->second.info->global_index.scheme(),
            index::PartitionScheme::kStr);
}

TEST(ExecutorOptimizer, RangePlansAreLoggedPerTarget) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 1500);
  pigeon::Executor executor(&cluster.runner);
  const pigeon::ExecutionReport report =
      executor
          .Execute(
              "pts = LOAD '/pts' AS POINT;"
              "idx = INDEX pts WITH STR INTO '/pts_idx';"
              "r = RANGE idx RECTANGLE(0, 0, 100000, 100000);"
              "c = COUNT idx RECTANGLE(0, 0, 100000, 100000);"
              "EXPLAIN r;"
              "EXPLAIN c;")
          .ValueOrDie();
  ASSERT_GE(report.dump_output.size(), 2u);
  const std::string& r_line = report.dump_output[report.dump_output.size() - 2];
  const std::string& c_line = report.dump_output.back();
  EXPECT_NE(r_line.find("; plan: op=range chosen=pruned"), std::string::npos)
      << r_line;
  EXPECT_NE(c_line.find("; plan: op=count chosen=pruned"), std::string::npos)
      << c_line;
}

TEST(ExecutorOptimizer, PlanFingerprintsAreStableAndModeAware) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/a", 1200);
  testing::WritePoints(&cluster.fs, "/b", 1200,
                       workload::Distribution::kUniform, /*seed=*/7);
  pigeon::Executor executor(&cluster.runner);
  SHADOOP_CHECK_OK(executor
                       .Execute(
                           "a = LOAD '/a' AS POINT;"
                           "b = LOAD '/b' AS POINT;"
                           "ai = INDEX a WITH STR INTO '/a_idx';"
                           "bi = INDEX b WITH STR INTO '/b_idx';")
                       .status());
  const pigeon::Script join = pigeon::Parse("j = SJOIN ai, bi;").ValueOrDie();
  const std::string fp = executor.PlanFingerprint(join[0].expr);
  EXPECT_TRUE(fp == "dj.l" || fp == "dj.r" || fp == "sjmr") << fp;
  EXPECT_EQ(fp, executor.PlanFingerprint(join[0].expr));

  const pigeon::Script range =
      pigeon::Parse("r = RANGE ai RECTANGLE(0, 0, 1, 1);").ValueOrDie();
  EXPECT_EQ(executor.PlanFingerprint(range[0].expr), "pruned");

  const pigeon::Script load = pigeon::Parse("x = LOAD '/a' AS POINT;")
                                  .ValueOrDie();
  EXPECT_EQ(executor.PlanFingerprint(load[0].expr), "default");

  SHADOOP_CHECK_OK(executor.Execute("SET optimizer off;").status());
  EXPECT_EQ(executor.PlanFingerprint(join[0].expr), "legacy");
}

TEST(ExecutorOptimizer, UnknownSetValueIsRejected) {
  EXPECT_FALSE(pigeon::Parse("SET optimizer maybe;").ok());
  const pigeon::Script on = pigeon::Parse("SET optimizer on;").ValueOrDie();
  EXPECT_EQ(on[0].kind, pigeon::Statement::Kind::kSet);
  EXPECT_EQ(on[0].target, "OPTIMIZER");
  EXPECT_EQ(on[0].path, "on");
}

}  // namespace
}  // namespace shadoop::optimizer
