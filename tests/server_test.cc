// Tests for the Pigeon query server (src/server/, DESIGN.md §14): session
// byte-parity with the standalone executor, the shared result cache
// (hit == miss in rows and charges, version bumps invalidate), the
// snapshot_version-0 re-pin fix, and deterministic concurrent serving
// across admission seeds. The concurrent cases run under TSan via
// scripts/check.sh.
#include "server/query_server.h"

#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "mapreduce/job.h"
#include "pigeon/executor.h"
#include "test_util.h"
#include "workload/generators.h"

namespace shadoop::server {
namespace {

using pigeon::ExecutionReport;

// The charge fields a result-cache hit must replay exactly. (wall-clock
// time is deliberately excluded everywhere.)
void ExpectSameCost(const mapreduce::JobCost& a, const mapreduce::JobCost& b) {
  EXPECT_DOUBLE_EQ(a.total_ms, b.total_ms);
  EXPECT_DOUBLE_EQ(a.map_makespan_ms, b.map_makespan_ms);
  EXPECT_DOUBLE_EQ(a.shuffle_ms, b.shuffle_ms);
  EXPECT_DOUBLE_EQ(a.reduce_makespan_ms, b.reduce_makespan_ms);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_shuffled, b.bytes_shuffled);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.num_map_tasks, b.num_map_tasks);
  EXPECT_EQ(a.num_reduce_tasks, b.num_reduce_tasks);
  EXPECT_DOUBLE_EQ(a.admission_wait_ms, b.admission_wait_ms);
  EXPECT_EQ(a.admission_queued, b.admission_queued);
}

// Counters minus the server's own cache.* bookkeeping (the one
// deliberate difference between a served session and a standalone run).
std::map<std::string, int64_t> NonCacheCounters(
    const mapreduce::Counters& counters) {
  std::map<std::string, int64_t> out;
  for (const auto& [name, value] : counters.values()) {
    if (name.rfind("cache.", 0) == 0) continue;
    out.emplace(name, value);
  }
  return out;
}

void WriteBatch(hdfs::FileSystem* fs, const std::string& path, size_t count,
                uint64_t seed) {
  workload::PointGenOptions options;
  options.count = count;
  options.seed = seed;
  SHADOOP_CHECK_OK(fs->WriteLines(
      path, workload::PointsToRecords(workload::GeneratePoints(options))));
}

// Builds "/pts" + a bulk grid index persisted at "/pts_idx" so a server
// can AttachDataset it.
void SeedIndexedDataset(testing::TestCluster* cluster, size_t count = 600) {
  testing::WritePoints(&cluster->fs, "/pts", count);
  testing::BuildIndex(&cluster->runner, "/pts", "/pts_idx",
                      index::PartitionScheme::kGrid);
}

ServerOptions SmallClusterOptions() {
  ServerOptions options;
  options.cluster = testing::TestCluster::MakeCluster(4);
  return options;
}

// ---------------------------------------------------------------------------
// Single-session byte parity with the standalone executor.

TEST(QueryServerTest, SingleSessionMatchesDirectExecutorByteForByte) {
  const char* kScript[] = {
      "p = LOAD '/pts' AS POINT;",
      "i = INDEX p WITH GRID;",
      "r = RANGE i RECTANGLE(0, 0, 400000, 400000);",
      "c = COUNT i RECTANGLE(100000, 100000, 900000, 900000);",
      "DUMP r; DUMP c;",
      "n = KNN i POINT(500000, 500000) K 5; DUMP n;",
      "EXPLAIN i;",
  };

  // Reference: one standalone executor, one Execute call. The first
  // server session materializes temporaries under the "s0_" namespace
  // (so concurrent sessions never collide on the shared filesystem);
  // give the reference executor the same namespace so EXPLAIN prints
  // identical paths.
  testing::TestCluster direct_cluster;
  testing::WritePoints(&direct_cluster.fs, "/pts", 500);
  pigeon::Executor direct(&direct_cluster.runner);
  direct.set_temp_namespace("s0_");
  std::string joined;
  for (const char* stmt : kScript) joined += std::string(stmt) + "\n";
  const ExecutionReport expected = direct.Execute(joined).ValueOrDie();

  // Served: same statements split across one request each. The result
  // cache is off so the session's EXPLAIN/counters carry no cache.*
  // traces at all — cached-path parity is covered separately below.
  testing::TestCluster served_cluster;
  testing::WritePoints(&served_cluster.fs, "/pts", 500);
  ServerOptions options = SmallClusterOptions();
  options.enable_result_cache = false;
  QueryServer server(&served_cluster.fs, options);
  const SessionId session = server.OpenSession().ValueOrDie();
  for (const char* stmt : kScript) {
    ASSERT_TRUE(server.Execute(session, stmt).ok()) << stmt;
  }

  const ExecutionReport& report =
      *server.SessionReport(session).ValueOrDie();
  EXPECT_EQ(report.dump_output, expected.dump_output);
  ExpectSameCost(report.stats.cost, expected.stats.cost);
  EXPECT_EQ(report.stats.jobs_run, expected.stats.jobs_run);
  EXPECT_EQ(NonCacheCounters(report.stats.counters),
            NonCacheCounters(expected.stats.counters));
}

// ---------------------------------------------------------------------------
// Result cache: hits are byte-identical to misses, shared across
// sessions, invalidated by version bumps.

TEST(QueryServerTest, CacheHitReturnsIdenticalRowsAndCharges) {
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster);
  QueryServer server(&cluster.fs, SmallClusterOptions());
  ASSERT_TRUE(server.AttachDataset("idx", "/pts_idx").ok());
  const SessionId session = server.OpenSession().ValueOrDie();

  const RequestResult miss =
      server
          .Execute(session,
                   "a = RANGE idx RECTANGLE(0, 0, 500000, 500000); DUMP a;")
          .ValueOrDie();
  EXPECT_EQ(miss.result_cache_hits, 0);
  EXPECT_EQ(miss.result_cache_misses, 1);
  EXPECT_FALSE(miss.rows.empty());
  EXPECT_GT(miss.sim_latency_ms, 0.0);

  // Different whitespace, comment noise and a different target name:
  // the normalized key matches and the hit replays the stored charges.
  const RequestResult hit =
      server
          .Execute(session,
                   "b =   RANGE idx -- same query, noisier spelling\n"
                   "  RECTANGLE(0,0, 500000,500000); DUMP b;")
          .ValueOrDie();
  EXPECT_EQ(hit.result_cache_hits, 1);
  EXPECT_EQ(hit.result_cache_misses, 0);
  EXPECT_EQ(hit.rows, miss.rows);
  ExpectSameCost(hit.cost, miss.cost);
  EXPECT_DOUBLE_EQ(hit.sim_latency_ms, miss.sim_latency_ms);

  EXPECT_EQ(server.result_cache().size(), 1u);
  EXPECT_EQ(server.result_cache().hits(), 1u);
  EXPECT_EQ(server.result_cache().misses(), 1u);
}

TEST(QueryServerTest, CacheIsSharedAcrossSessions) {
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster);
  QueryServer server(&cluster.fs, SmallClusterOptions());
  ASSERT_TRUE(server.AttachDataset("idx", "/pts_idx").ok());
  const SessionId s1 = server.OpenSession().ValueOrDie();
  const SessionId s2 = server.OpenSession().ValueOrDie();

  const char* kQuery = "q = COUNT idx RECTANGLE(0, 0, 800000, 800000); DUMP q;";
  const RequestResult first = server.Execute(s1, kQuery).ValueOrDie();
  const RequestResult second = server.Execute(s2, kQuery).ValueOrDie();
  EXPECT_EQ(first.result_cache_misses, 1);
  EXPECT_EQ(second.result_cache_hits, 1);
  EXPECT_EQ(second.rows, first.rows);
  ExpectSameCost(second.cost, first.cost);
}

TEST(QueryServerTest, AppendVersionBumpInvalidatesCacheKey) {
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster, 500);
  WriteBatch(&cluster.fs, "/batch", 200, 7);
  QueryServer server(&cluster.fs, SmallClusterOptions());
  ASSERT_TRUE(server.AttachDataset("idx", "/pts_idx").ok());
  const SessionId s1 = server.OpenSession().ValueOrDie();

  const char* kCount =
      "c = COUNT idx RECTANGLE(0, 0, 1000000, 1000000); DUMP c;";
  const RequestResult before = server.Execute(s1, kCount).ValueOrDie();
  EXPECT_EQ(before.rows, std::vector<std::string>{"500"});

  // Ingest a batch: version 2 exists, but s1's binding stays pinned at
  // v1, so the same key still hits.
  ASSERT_TRUE(server.Execute(s1, "g = LOAD '/batch' APPEND idx;").ok());
  const RequestResult pinned = server.Execute(s1, kCount).ValueOrDie();
  EXPECT_EQ(pinned.rows, std::vector<std::string>{"500"});
  EXPECT_EQ(pinned.result_cache_hits, 1);

  // Re-pinning to the latest version changes the key: fresh miss, fresh
  // rows that include the appended batch.
  const RequestResult repinned =
      server.Execute(s1, std::string("SET snapshot_version 0; ") + kCount)
          .ValueOrDie();
  EXPECT_EQ(repinned.rows, std::vector<std::string>{"700"});
  EXPECT_EQ(repinned.result_cache_misses, 1);
  EXPECT_EQ(repinned.result_cache_hits, 0);
}

TEST(QueryServerTest, PlanFingerprintChangeInvalidatesCacheKey) {
  // The cache key carries the optimizer's plan token, so a session that
  // flips the planner must never replay rows cached under a different
  // physical plan — same text, different key.
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster, 500);
  QueryServer server(&cluster.fs, SmallClusterOptions());
  ASSERT_TRUE(server.AttachDataset("idx", "/pts_idx").ok());
  const SessionId s1 = server.OpenSession().ValueOrDie();

  const char* kCount =
      "c = COUNT idx RECTANGLE(0, 0, 1000000, 1000000); DUMP c;";
  const RequestResult planned = server.Execute(s1, kCount).ValueOrDie();
  EXPECT_EQ(planned.rows, std::vector<std::string>{"500"});
  EXPECT_EQ(planned.result_cache_misses, 1);

  // Optimizer off: the plan token flips from "pruned" to "legacy", so
  // the identical text misses instead of replaying the planned entry.
  ASSERT_TRUE(server.Execute(s1, "SET optimizer off;").ok());
  const RequestResult legacy = server.Execute(s1, kCount).ValueOrDie();
  EXPECT_EQ(legacy.rows, std::vector<std::string>{"500"});
  EXPECT_EQ(legacy.result_cache_hits, 0);
  EXPECT_EQ(legacy.result_cache_misses, 1);

  // Back on: the fingerprint is deterministic, so the original entry
  // hits again — and a second session shares it.
  ASSERT_TRUE(server.Execute(s1, "SET optimizer on;").ok());
  const RequestResult replay = server.Execute(s1, kCount).ValueOrDie();
  EXPECT_EQ(replay.result_cache_hits, 1);
  const SessionId s2 = server.OpenSession().ValueOrDie();
  const RequestResult shared = server.Execute(s2, kCount).ValueOrDie();
  EXPECT_EQ(shared.rows, std::vector<std::string>{"500"});
  EXPECT_EQ(shared.result_cache_hits, 1);
}

// ---------------------------------------------------------------------------
// snapshot_version 0 semantics (the re-pin fix) and per-session pinning.

TEST(ExecutorSnapshotTest, ExplicitSnapshotVersionZeroFollowsLatest) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 500);
  WriteBatch(&cluster.fs, "/batch", 200, 11);
  pigeon::Executor executor(&cluster.runner);
  const ExecutionReport report =
      executor
          .Execute(R"(
    raw = LOAD '/pts' AS POINT;
    idx = INDEX raw WITH GRID;
    g = LOAD '/batch' APPEND idx;
    c_pinned = COUNT idx RECTANGLE(0, 0, 1000000, 1000000);
    SET snapshot_version 0;
    c_latest = COUNT idx RECTANGLE(0, 0, 1000000, 1000000);
    DUMP c_pinned;
    DUMP c_latest;
  )")
          .ValueOrDie();
  ASSERT_EQ(report.dump_output.size(), 2u);
  // Before the knob: the binding's own v1 pin.
  EXPECT_EQ(report.dump_output[0], "500");
  // `SET snapshot_version 0` re-pins to the latest version at next use —
  // it must NOT keep serving the stale v1 binding.
  EXPECT_EQ(report.dump_output[1], "700");
}

TEST(QueryServerTest, TwoSessionsPinDifferentVersionsOfOneDataset) {
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster, 500);
  WriteBatch(&cluster.fs, "/batch", 200, 13);
  QueryServer server(&cluster.fs, SmallClusterOptions());
  ASSERT_TRUE(server.AttachDataset("idx", "/pts_idx").ok());

  // s1 opens against v1, then the dataset grows to v2; s2 opens after
  // and pre-binds v2. The two sessions must read their own snapshots.
  const SessionId s1 = server.OpenSession().ValueOrDie();
  ASSERT_TRUE(server.Execute(s1, "g = LOAD '/batch' APPEND idx;").ok());
  const SessionId s2 = server.OpenSession().ValueOrDie();

  const char* kCount =
      "c = COUNT idx RECTANGLE(0, 0, 1000000, 1000000); DUMP c;";
  const RequestResult old_pin = server.Execute(s1, kCount).ValueOrDie();
  const RequestResult new_pin = server.Execute(s2, kCount).ValueOrDie();
  EXPECT_EQ(old_pin.rows, std::vector<std::string>{"500"});
  EXPECT_EQ(new_pin.rows, std::vector<std::string>{"700"});
  // Distinct versions, distinct cache keys: both were misses.
  EXPECT_EQ(old_pin.result_cache_misses, 1);
  EXPECT_EQ(new_pin.result_cache_misses, 1);

  // After s1 re-pins to latest it converges with s2 — and scores a hit
  // on the entry s2 just produced.
  const RequestResult converged =
      server.Execute(s1, std::string("SET snapshot_version 0; ") + kCount)
          .ValueOrDie();
  EXPECT_EQ(converged.rows, new_pin.rows);
  EXPECT_EQ(converged.result_cache_hits, 1);
  ExpectSameCost(converged.cost, new_pin.cost);
}

// ---------------------------------------------------------------------------
// EXPLAIN cache counters.

TEST(QueryServerTest, ExplainSurfacesArtifactAndResultCacheCounters) {
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster);
  QueryServer server(&cluster.fs, SmallClusterOptions());
  ASSERT_TRUE(server.AttachDataset("idx", "/pts_idx").ok());
  const SessionId session = server.OpenSession().ValueOrDie();

  const char* kQuery = "r = RANGE idx RECTANGLE(0, 0, 300000, 300000);";
  ASSERT_TRUE(server.Execute(session, kQuery).ok());
  ASSERT_TRUE(server.Execute(session, kQuery).ok());
  const RequestResult explain =
      server.Execute(session, "EXPLAIN idx;").ValueOrDie();
  ASSERT_EQ(explain.rows.size(), 1u);
  const std::string& line = explain.rows[0];
  // The session ran real jobs, so the artifact cache was consulted.
  EXPECT_NE(line.find("; artifact_cache: hits="), std::string::npos) << line;
  // One executed query, one cached replay.
  EXPECT_NE(line.find("; result_cache: hits=1, misses=1"), std::string::npos)
      << line;
}

TEST(ExecutorExplainTest, NoCacheSegmentsBeforeAnyLookup) {
  // nonzero-only contract: a fresh session that ran no job shows
  // neither cache segment, keeping historical EXPLAIN output
  // byte-identical.
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 100);
  pigeon::Executor executor(&cluster.runner);
  const ExecutionReport report =
      executor.Execute("p = LOAD '/pts' AS POINT; EXPLAIN p;").ValueOrDie();
  ASSERT_EQ(report.dump_output.size(), 1u);
  EXPECT_EQ(report.dump_output[0].find("artifact_cache"), std::string::npos);
  EXPECT_EQ(report.dump_output[0].find("result_cache"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrent serving: determinism across reruns, admission seeds, and
// vs. sequential execution of the same mix.

// The mixed query template stream of one session. Repeats guarantee
// cross-session cache traffic.
std::vector<std::string> MixedScripts(int salt) {
  const std::string r1 = std::to_string(100000 * (salt + 1));
  return {
      "a = RANGE idx RECTANGLE(0, 0, " + r1 + ", " + r1 + "); DUMP a;",
      "b = COUNT idx RECTANGLE(0, 0, 600000, 600000); DUMP b;",
      "c = KNN idx POINT(450000, 550000) K 3; DUMP c;",
      "d = COUNT idx RECTANGLE(0, 0, 600000, 600000); DUMP d;",
  };
}

struct ConcurrentRun {
  std::vector<std::vector<std::string>> rows;     // [stream][request] rows
  std::vector<std::vector<double>> latencies_ms;  // [stream][request]
};

ConcurrentRun RunSaturation(uint64_t admission_seed) {
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster, 800);
  ServerOptions options = SmallClusterOptions();
  options.admission_seed = admission_seed;
  QueryServer server(&cluster.fs, options);
  SHADOOP_CHECK_OK(server.AttachDataset("idx", "/pts_idx"));

  // 4 tenants x 1 slot on a 4-slot cluster: equal, seed-invariant lane
  // shares, and no tenant ever queues behind itself.
  std::vector<SessionStream> streams;
  for (int i = 0; i < 4; ++i) {
    const SessionId id =
        server.OpenSession("tenant" + std::to_string(i), 1).ValueOrDie();
    streams.push_back(SessionStream{id, MixedScripts(i)});
  }
  const auto results = server.ExecuteConcurrent(streams).ValueOrDie();

  ConcurrentRun run;
  run.rows.resize(results.size());
  run.latencies_ms.resize(results.size());
  for (size_t i = 0; i < results.size(); ++i) {
    for (const RequestResult& request : results[i]) {
      std::string flat;
      for (const std::string& row : request.rows) flat += row + "\n";
      run.rows[i].push_back(std::move(flat));
      run.latencies_ms[i].push_back(request.sim_latency_ms);
    }
  }
  return run;
}

TEST(QueryServerTest, ConcurrentExecutionIsDeterministicAcrossSeeds) {
  const ConcurrentRun base = RunSaturation(0);
  for (uint64_t seed : {uint64_t{1}, uint64_t{2}}) {
    const ConcurrentRun other = RunSaturation(seed);
    EXPECT_EQ(other.rows, base.rows) << "seed " << seed;
    ASSERT_EQ(other.latencies_ms.size(), base.latencies_ms.size());
    for (size_t i = 0; i < base.latencies_ms.size(); ++i) {
      ASSERT_EQ(other.latencies_ms[i].size(), base.latencies_ms[i].size());
      for (size_t j = 0; j < base.latencies_ms[i].size(); ++j) {
        EXPECT_DOUBLE_EQ(other.latencies_ms[i][j], base.latencies_ms[i][j])
            << "stream " << i << " request " << j << " seed " << seed;
      }
    }
  }
}

TEST(QueryServerTest, ConcurrentExecutionIsDeterministicAcrossReruns) {
  const ConcurrentRun first = RunSaturation(0);
  const ConcurrentRun second = RunSaturation(0);
  EXPECT_EQ(second.rows, first.rows);
  for (size_t i = 0; i < first.latencies_ms.size(); ++i) {
    for (size_t j = 0; j < first.latencies_ms[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(second.latencies_ms[i][j], first.latencies_ms[i][j]);
    }
  }
}

TEST(QueryServerTest, ConcurrentRowsMatchSequentialExecution) {
  // A fresh server running the same streams one session at a time must
  // produce byte-identical rows: concurrency is invisible in results.
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster, 800);
  QueryServer server(&cluster.fs, SmallClusterOptions());
  ASSERT_TRUE(server.AttachDataset("idx", "/pts_idx").ok());
  std::vector<std::vector<std::string>> sequential_rows;
  for (int i = 0; i < 4; ++i) {
    const SessionId id =
        server.OpenSession("tenant" + std::to_string(i), 1).ValueOrDie();
    sequential_rows.emplace_back();
    for (const std::string& script : MixedScripts(i)) {
      const RequestResult request = server.Execute(id, script).ValueOrDie();
      std::string flat;
      for (const std::string& row : request.rows) flat += row + "\n";
      sequential_rows.back().push_back(std::move(flat));
    }
  }
  const ConcurrentRun concurrent = RunSaturation(0);
  EXPECT_EQ(concurrent.rows, sequential_rows);
}

TEST(QueryServerTest, ConcurrentCacheTrafficIsAccounted) {
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster, 800);
  QueryServer server(&cluster.fs, SmallClusterOptions());
  ASSERT_TRUE(server.AttachDataset("idx", "/pts_idx").ok());
  std::vector<SessionStream> streams;
  for (int i = 0; i < 4; ++i) {
    const SessionId id =
        server.OpenSession("tenant" + std::to_string(i), 1).ValueOrDie();
    streams.push_back(SessionStream{id, MixedScripts(i)});
  }
  const auto results = server.ExecuteConcurrent(streams).ValueOrDie();
  int64_t lookups = 0;
  for (const auto& stream : results) {
    for (const RequestResult& request : stream) {
      lookups += request.result_cache_hits + request.result_cache_misses;
    }
  }
  // Every cacheable assignment consulted the cache exactly once (4
  // sessions x 4 queries). Which side of the race a given request landed
  // on is interleaving-dependent; the total is not.
  EXPECT_EQ(lookups, 16);
  EXPECT_EQ(server.result_cache().hits() + server.result_cache().misses(),
            16u);
  // At least the distinct keys missed; repeats within one session always
  // hit (requests are sequential per session).
  EXPECT_GE(server.result_cache().hits(), 4u);
}

// ---------------------------------------------------------------------------
// Request error paths.

TEST(QueryServerTest, ErrorsCarryLineAnchorsAndDoNotKillTheSession) {
  testing::TestCluster cluster;
  SeedIndexedDataset(&cluster);
  QueryServer server(&cluster.fs, SmallClusterOptions());
  ASSERT_TRUE(server.AttachDataset("idx", "/pts_idx").ok());
  const SessionId session = server.OpenSession().ValueOrDie();

  const auto bad = server.Execute(session, "x = RANGE nope RECTANGLE(0,0,1,1);");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unknown dataset"), std::string::npos);

  // The session keeps serving.
  EXPECT_TRUE(server
                  .Execute(session,
                           "r = COUNT idx RECTANGLE(0, 0, 1000, 1000); DUMP r;")
                  .ok());
  // Unknown sessions are rejected.
  EXPECT_FALSE(server.Execute(99, "DUMP idx;").ok());
}

}  // namespace
}  // namespace shadoop::server
