#ifndef SHADOOP_TESTS_TEST_UTIL_H_
#define SHADOOP_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "hdfs/file_system.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"
#include "workload/generators.h"

namespace shadoop::testing {

/// A small simulated cluster sized so that modest datasets span many
/// blocks (and hence many partitions).
struct TestCluster {
  explicit TestCluster(size_t block_size = 4 * 1024, int num_slots = 4)
      : fs(MakeConfig(block_size)), runner(&fs, MakeCluster(num_slots)) {}

  static hdfs::HdfsConfig MakeConfig(size_t block_size) {
    hdfs::HdfsConfig config;
    config.block_size = block_size;
    config.num_datanodes = 8;
    config.replication = 3;
    return config;
  }

  static mapreduce::ClusterConfig MakeCluster(int num_slots) {
    mapreduce::ClusterConfig config;
    config.num_slots = num_slots;
    return config;
  }

  hdfs::FileSystem fs;
  mapreduce::JobRunner runner;
};

/// Writes a point dataset and returns the generated points.
inline std::vector<Point> WritePoints(
    hdfs::FileSystem* fs, const std::string& path, size_t count,
    workload::Distribution dist = workload::Distribution::kUniform,
    uint64_t seed = 42) {
  workload::PointGenOptions options;
  options.distribution = dist;
  options.count = count;
  options.seed = seed;
  std::vector<Point> points = workload::GeneratePoints(options);
  SHADOOP_CHECK_OK(fs->WriteLines(path, workload::PointsToRecords(points)));
  return points;
}

/// Builds an index over an existing file.
inline index::SpatialFileInfo BuildIndex(
    mapreduce::JobRunner* runner, const std::string& src,
    const std::string& dst, index::PartitionScheme scheme,
    index::ShapeType shape = index::ShapeType::kPoint) {
  index::IndexBuilder builder(runner);
  index::IndexBuildOptions options;
  options.scheme = scheme;
  options.shape = shape;
  return builder.Build(src, dst, options).ValueOrDie();
}

/// All spatial partitioning schemes, for parameterized suites.
inline std::vector<index::PartitionScheme> AllSchemes() {
  return {index::PartitionScheme::kGrid,     index::PartitionScheme::kStr,
          index::PartitionScheme::kStrPlus,  index::PartitionScheme::kQuadTree,
          index::PartitionScheme::kKdTree,   index::PartitionScheme::kZCurve,
          index::PartitionScheme::kHilbert};
}

inline std::vector<index::PartitionScheme> DisjointSchemes() {
  return {index::PartitionScheme::kGrid, index::PartitionScheme::kStrPlus,
          index::PartitionScheme::kQuadTree, index::PartitionScheme::kKdTree};
}

}  // namespace shadoop::testing

#endif  // SHADOOP_TESTS_TEST_UTIL_H_
