// Unit tests for the determinism lint engine (tools/lint, DESIGN.md §11).
//
// Contract per rule: it fires on a violating fixture snippet, stays quiet
// on the clean equivalent, and `// lint:allow(rule)` suppresses exactly
// the annotated line. The `determinism_lint` ctest target separately
// proves src/ itself is clean; these tests prove the rules would notice
// if it were not.
#include "lint/lint_engine.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace shadoop::lint {
namespace {

std::vector<Finding> Lint(const std::string& contents,
                          const std::string& path = "src/core/fixture.cc") {
  return Linter().LintFile(path, contents);
}

std::vector<std::string> RuleIds(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  for (const Finding& finding : findings) ids.push_back(finding.rule);
  return ids;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> ids = RuleIds(findings);
  return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

// ---------------------------------------------------------------------------
// Registry & formatting

TEST(LintRegistry, ExposesEveryRule) {
  Linter linter;
  std::vector<std::string> ids;
  for (const RuleInfo& rule : linter.rules()) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.summary.empty());
    ids.push_back(rule.id);
  }
  for (const char* expected :
       {"banned-clock", "banned-random", "unordered-iteration", "naked-mutex",
        "iostream-include", "banned-float-accum", "unstable-sort-before-emit",
        "size-dependent-seed"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << "missing rule " << expected;
  }
  // The path-scoped wall-clock rules are retired: the cross-TU
  // determinism-taint analysis (tools/analyze, DESIGN.md §16) subsumes
  // them, and tests/analyze_test.cc keeps their scenarios as regression
  // fixtures against the analyzer.
  for (const char* retired : {"server-wall-clock", "optimizer-wall-clock"}) {
    EXPECT_EQ(std::find(ids.begin(), ids.end(), retired), ids.end())
        << "rule " << retired << " should be retired";
  }
}

TEST(LintFormat, FileLineRuleMessage) {
  Finding finding{"src/core/knn.cc", 42, "banned-clock", "no clocks"};
  EXPECT_EQ(FormatFinding(finding),
            "src/core/knn.cc:42: banned-clock: no clocks");
}

TEST(LintFormat, FindingsCarryOneBasedLines) {
  std::vector<Finding> findings = Lint("#include <iostream>\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[0].file, "src/core/fixture.cc");
}

// ---------------------------------------------------------------------------
// banned-clock

TEST(BannedClock, FiresOnSystemClock) {
  EXPECT_TRUE(HasRule(
      Lint("auto t = std::chrono::system_clock::now();\n"), "banned-clock"));
}

TEST(BannedClock, FiresOnSteadyClockAndCTime) {
  EXPECT_TRUE(HasRule(
      Lint("using Clock = std::chrono::steady_clock;\n"), "banned-clock"));
  EXPECT_TRUE(HasRule(Lint("time_t now = time(nullptr);\n"), "banned-clock"));
  EXPECT_TRUE(HasRule(Lint("long t = ::time(nullptr);\n"), "banned-clock"));
}

TEST(BannedClock, QuietOnDurationsAndLookalikes) {
  // Durations and sleeps are deterministic-friendly; only clock *reads*
  // are banned. Identifiers merely containing "time" must not trip it.
  EXPECT_TRUE(Lint("std::this_thread::sleep_for(std::chrono::microseconds(2));\n"
                   "double startup_time(3.0);\n"
                   "double runtime(2.0);\n"
                   "sw.time();\n")
                  .empty());
}

TEST(BannedClock, QuietInComments) {
  EXPECT_TRUE(Lint("// wall time via std::chrono::system_clock is banned\n"
                   "/* time(nullptr) too */\n")
                  .empty());
}

TEST(BannedClock, ExemptInStopwatchHeader) {
  const std::string snippet = "using Clock = std::chrono::steady_clock;\n";
  EXPECT_TRUE(Lint(snippet, "src/common/stopwatch.h").empty());
  EXPECT_FALSE(Lint(snippet, "src/core/knn.cc").empty());
}

// ---------------------------------------------------------------------------
// banned-random

TEST(BannedRandom, FiresOnRandAndDeviceAndEngines) {
  EXPECT_TRUE(HasRule(Lint("int x = rand();\n"), "banned-random"));
  EXPECT_TRUE(HasRule(Lint("std::random_device rd;\n"), "banned-random"));
  EXPECT_TRUE(HasRule(Lint("std::mt19937_64 gen(rd());\n"), "banned-random"));
}

TEST(BannedRandom, QuietOnSeededShadoopRandom) {
  EXPECT_TRUE(Lint("shadoop::Random rng(seed);\n"
                   "double d = rng.NextDouble();\n"
                   "int operand = 1; (void)operand;\n")
                  .empty());
}

TEST(BannedRandom, ExemptInCommonRandom) {
  const std::string snippet = "std::mt19937 gen;\n";
  EXPECT_TRUE(Lint(snippet, "src/common/random.cc").empty());
  EXPECT_TRUE(Lint(snippet, "src/common/random.h").empty());
  EXPECT_FALSE(Lint(snippet, "src/index/rtree.cc").empty());
}

// ---------------------------------------------------------------------------
// unordered-iteration

TEST(UnorderedIteration, FiresOnRangeForOverUnorderedMap) {
  std::vector<Finding> findings =
      Lint("std::unordered_map<std::string, int> counts;\n"
           "for (const auto& [key, n] : counts) Emit(key, n);\n");
  ASSERT_TRUE(HasRule(findings, "unordered-iteration"));
  EXPECT_EQ(findings[0].line, 2);
}

TEST(UnorderedIteration, FiresOnBeginOverUnorderedSet) {
  EXPECT_TRUE(HasRule(Lint("std::unordered_set<int> seen;\n"
                           "auto it = seen.begin();\n"),
                      "unordered-iteration"));
}

TEST(UnorderedIteration, TracksDeclarationsAcrossLines) {
  EXPECT_TRUE(HasRule(Lint("std::unordered_map<std::string,\n"
                           "                   std::vector<int>> index;\n"
                           "for (auto& entry : index) Use(entry);\n"),
                      "unordered-iteration"));
}

TEST(UnorderedIteration, QuietOnLookupAndOrderedContainers) {
  // Point lookups on hash containers are order-independent and legal;
  // only iteration leaks hash order. std::map iteration is fine.
  EXPECT_TRUE(Lint("std::unordered_map<std::string, int> counts;\n"
                   "counts[key] += 1;\n"
                   "auto it = counts.find(key);\n")
                  .empty());
  EXPECT_TRUE(Lint("std::map<std::string, int> sorted;\n"
                   "for (const auto& [k, v] : sorted) Emit(k, v);\n")
                  .empty());
}

TEST(UnorderedIteration, SortedSnapshotUsesAllowEscape) {
  // The blessed pattern: copy into an ordered container, annotate the
  // copy line. Exactly that line is suppressed.
  std::vector<Finding> findings =
      Lint("std::unordered_map<std::string, int> counts;\n"
           "std::map<std::string, int> sorted(\n"
           "    counts.begin(), counts.end());  // lint:allow(unordered-iteration)\n"
           "for (const auto& [k, v] : sorted) Emit(k, v);\n");
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// naked-mutex

TEST(NakedMutex, FiresOnMemberAndInclude) {
  EXPECT_TRUE(HasRule(Lint("#include <mutex>\n"), "naked-mutex"));
  EXPECT_TRUE(HasRule(Lint("mutable std::mutex mu_;\n"), "naked-mutex"));
  EXPECT_TRUE(HasRule(Lint("std::shared_mutex rw_;\n"), "naked-mutex"));
}

TEST(NakedMutex, QuietOnAnnotatedWrapper) {
  EXPECT_TRUE(Lint("#include \"common/thread_annotations.h\"\n"
                   "mutable Mutex mu_;\n"
                   "MutexLock lock(&mu_);\n"
                   "std::condition_variable cv_;\n")
                  .empty());
}

// ---------------------------------------------------------------------------
// iostream-include

TEST(IostreamInclude, FiresOnInclude) {
  std::vector<Finding> findings = Lint("#include <iostream>\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "iostream-include");
}

TEST(IostreamInclude, QuietOnOtherStreams) {
  EXPECT_TRUE(Lint("#include <sstream>\n#include <fstream>\n").empty());
}

// ---------------------------------------------------------------------------
// banned-float-accum

TEST(BannedFloatAccum, FiresOnDeclarationsCastsAndTemplateArgs) {
  EXPECT_TRUE(HasRule(Lint("float sum = 0;\n"), "banned-float-accum"));
  EXPECT_TRUE(HasRule(Lint("auto x = static_cast<float>(area);\n"),
                      "banned-float-accum"));
  EXPECT_TRUE(
      HasRule(Lint("std::vector<float> coords;\n"), "banned-float-accum"));
}

TEST(BannedFloatAccum, QuietOnDoublesAndLookalikes) {
  EXPECT_TRUE(Lint("double sum = 0;\n"
                   "int floaters = 2;\n"
                   "auto y = my_float32(v);\n")
                  .empty());
}

TEST(BannedFloatAccum, QuietInCommentsAndStrings) {
  EXPECT_TRUE(Lint("// float would lose MBR precision here\n"
                   "const char* kMsg = \"float not allowed\";\n")
                  .empty());
}

TEST(BannedFloatAccum, AllowEscapeSuppresses) {
  EXPECT_TRUE(
      Lint("float raw_gl_coord;  // lint:allow(banned-float-accum)\n")
          .empty());
}

// ---------------------------------------------------------------------------
// unstable-sort-before-emit

TEST(UnstableSortBeforeEmit, FiresWhenSortFeedsEmit) {
  std::vector<Finding> findings =
      Lint("std::sort(rows.begin(), rows.end(), ByDistance);\n"
           "for (const Row& row : rows) {\n"
           "  ctx.Emit(row.key, row.value);\n"
           "}\n");
  ASSERT_TRUE(HasRule(findings, "unstable-sort-before-emit"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(UnstableSortBeforeEmit, FiresWhenSortFeedsWriteOutput) {
  EXPECT_TRUE(HasRule(Lint("std::sort(out.begin(), out.end());\n"
                           "for (auto& line : out) ctx.WriteOutput(line);\n"),
                      "unstable-sort-before-emit"));
}

TEST(UnstableSortBeforeEmit, QuietOnStableSortAndFarAwayEmit) {
  EXPECT_TRUE(Lint("std::stable_sort(rows.begin(), rows.end(), ByDistance);\n"
                   "for (const Row& row : rows) ctx.Emit(row.key, row.v);\n")
                  .empty());
  // A sort with no emit in the window is some other computation.
  std::string far = "std::sort(ids.begin(), ids.end());\n";
  for (int i = 0; i < 14; ++i) far += "Use(ids);\n";
  far += "ctx.Emit(key, value);\n";
  EXPECT_TRUE(Lint(far).empty());
}

TEST(UnstableSortBeforeEmit, AllowEscapeSuppresses) {
  EXPECT_TRUE(
      Lint("std::sort(rows.begin(), rows.end(), "
           "TotalOrder);  // lint:allow(unstable-sort-before-emit)\n"
           "for (const Row& row : rows) ctx.Emit(row.key, row.value);\n")
          .empty());
}

// ---------------------------------------------------------------------------
// size-dependent-seed

TEST(SizeDependentSeed, FiresOnRandomSeededWithSize) {
  std::vector<Finding> findings =
      Lint("shadoop::Random rng(entries.size());\n");
  ASSERT_TRUE(HasRule(findings, "size-dependent-seed"));
  EXPECT_EQ(findings[0].line, 1);
}

TEST(SizeDependentSeed, FiresOnSeedVariablesAndArrowCalls) {
  EXPECT_TRUE(HasRule(Lint("const uint64_t seed = boxes.size();\n"),
                      "size-dependent-seed"));
  EXPECT_TRUE(HasRule(Lint("hash_seed ^= records->size();\n"),
                      "size-dependent-seed"));
  EXPECT_TRUE(HasRule(Lint("uint64_t kSeedBase = 17 + parts.size() * 31;\n"),
                      "size-dependent-seed"));
}

TEST(SizeDependentSeed, FiresAcrossAWrappedSeedExpression) {
  std::vector<Finding> findings = Lint("const uint64_t seed =\n"
                                       "    partitions.size();\n");
  ASSERT_TRUE(HasRule(findings, "size-dependent-seed"));
  EXPECT_EQ(findings[0].line, 2);
}

TEST(SizeDependentSeed, QuietOnConstantSeedsAndPlainSizeUse) {
  // A constant-seeded Random next to ordinary .size() arithmetic is the
  // blessed pattern; neither line alone is a seed derivation.
  EXPECT_TRUE(Lint("shadoop::Random rng(0x5110794u);\n"
                   "for (size_t i = 0; i < entries.size(); ++i) Use(i);\n")
                  .empty());
  EXPECT_TRUE(Lint("const size_t n = boxes.size();\n"
                   "out.reserve(items.size());\n")
                  .empty());
  // `sizeof` and free size() lookalikes are not member .size() calls.
  EXPECT_TRUE(Lint("uint64_t seed = sizeof(Header);\n"
                   "uint64_t seed2 = size(7);\n")
                  .empty());
}

TEST(SizeDependentSeed, AllowEscapeSuppresses) {
  EXPECT_TRUE(
      Lint("shadoop::Random rng(\n"
           "    entries.size());  // lint:allow(size-dependent-seed)\n")
          .empty());
}

// ---------------------------------------------------------------------------
// Directory exemptions (the lint roots cover tools/ and bench/ too)

TEST(PathExemptions, BenchKeepsItsWallClock) {
  // The bench harness's whole point is wall-clock measurement; its tree
  // is exempt from banned-clock and iostream-include, but everything
  // else still applies there.
  EXPECT_TRUE(Lint("auto t = std::chrono::steady_clock::now();\n"
                   "#include <iostream>\n",
                   "bench/bench_hotpath.cc")
                  .empty());
  EXPECT_TRUE(HasRule(Lint("int x = rand();\n", "bench/bench_hotpath.cc"),
                      "banned-random"));
}

TEST(PathExemptions, CliMainsMayPrint) {
  EXPECT_TRUE(Lint("#include <iostream>\n", "tools/lint/lint_main.cc").empty());
  EXPECT_TRUE(HasRule(Lint("#include <iostream>\n", "tools/lint/lint_engine.cc"),
                      "iostream-include"));
}

// ---------------------------------------------------------------------------
// lint:allow semantics

TEST(LintAllow, SuppressesExactlyOneLine) {
  std::vector<Finding> findings =
      Lint("int a = rand();  // lint:allow(banned-random)\n"
           "int b = rand();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-random");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintAllow, OnlySuppressesTheNamedRule) {
  // The allow names banned-clock, but the line violates banned-random:
  // the finding survives.
  std::vector<Finding> findings =
      Lint("int a = rand();  // lint:allow(banned-clock)\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-random");
}

TEST(LintAllow, SupportsRuleLists) {
  EXPECT_TRUE(
      Lint("std::mutex mu; srand(1);  "
           "// lint:allow(naked-mutex, banned-random)\n")
          .empty());
}

// ---------------------------------------------------------------------------
// Engine mechanics

TEST(LintEngine, OneFindingPerLineAndRule) {
  // Two banned tokens on one line are one problem to fix.
  std::vector<Finding> findings =
      Lint("auto t = time(nullptr) + clock();\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "banned-clock");
}

TEST(LintEngine, FindingsSortedByLine) {
  std::vector<Finding> findings = Lint("int b = rand();\n"
                                       "#include <iostream>\n"
                                       "std::mutex mu;\n");
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_LT(findings[0].line, findings[1].line);
  EXPECT_LT(findings[1].line, findings[2].line);
}

TEST(LintEngine, StringLiteralsDoNotFire) {
  EXPECT_TRUE(
      Lint("const char* doc = \"never call rand() or time(nullptr)\";\n")
          .empty());
}

}  // namespace
}  // namespace shadoop::lint
