#include "mapreduce/admission_controller.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "fault/fault_injector.h"
#include "mapreduce/job_runner.h"
#include "pigeon/executor.h"
#include "test_util.h"

namespace shadoop {
namespace {

using mapreduce::AdmissionController;
using mapreduce::AdmissionOptions;
using mapreduce::JobConfig;
using mapreduce::JobResult;
using mapreduce::MakeBlockSplits;
using mapreduce::MapContext;
using mapreduce::Mapper;
using mapreduce::TenantStats;
using testing::TestCluster;
using testing::WritePoints;

/// Polls `pred` until true or ~5 s elapse; keeps admission tests from
/// hanging forever when an expected wakeup never happens.
bool WaitFor(const std::function<bool()>& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

// ---------------------------------------------------------------------
// Lane-share math

TEST(LaneShareTest, SingleTenantGetsEveryLane) {
  const auto shares =
      AdmissionController::ComputeLaneShares(25, {{"solo", 25}}, 0);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares.at("solo"), 25);
}

TEST(LaneShareTest, WeightedMaxMinSplitsProportionally) {
  const auto even =
      AdmissionController::ComputeLaneShares(25, {{"a", 1}, {"b", 1}}, 0);
  EXPECT_EQ(even.at("a") + even.at("b"), 25);
  EXPECT_LE(std::abs(even.at("a") - even.at("b")), 1);

  const auto skewed =
      AdmissionController::ComputeLaneShares(24, {{"a", 1}, {"b", 3}}, 0);
  EXPECT_EQ(skewed.at("a"), 6);
  EXPECT_EQ(skewed.at("b"), 18);
}

TEST(LaneShareTest, ZeroWeightTenantsAreExcluded) {
  const auto shares =
      AdmissionController::ComputeLaneShares(10, {{"a", 2}, {"off", 0}}, 0);
  EXPECT_EQ(shares.count("off"), 0u);
  EXPECT_EQ(shares.at("a"), 10);
}

TEST(LaneShareTest, EveryWeightedTenantKeepsALane) {
  const auto shares = AdmissionController::ComputeLaneShares(
      4, {{"whale", 100}, {"a", 1}, {"b", 1}, {"c", 1}}, 7);
  int total = 0;
  for (const auto& [tenant, lanes] : shares) {
    EXPECT_GE(lanes, 1) << tenant;
    total += lanes;
  }
  EXPECT_EQ(total, 4);
}

TEST(LaneShareTest, TieBreakIsDeterministicAndSeedable) {
  // Same seed: identical split on every call. Across seeds the leftover
  // lane moves, so the tie-break is genuinely seed-driven.
  std::set<std::vector<int>> distinct;
  for (uint64_t seed = 0; seed < 32; ++seed) {
    const auto first = AdmissionController::ComputeLaneShares(
        25, {{"a", 1}, {"b", 1}}, seed);
    const auto again = AdmissionController::ComputeLaneShares(
        25, {{"a", 1}, {"b", 1}}, seed);
    EXPECT_EQ(first, again) << "seed " << seed;
    distinct.insert({first.at("a"), first.at("b")});
  }
  EXPECT_GE(distinct.size(), 2u);
}

// ---------------------------------------------------------------------
// FIFO job admission

TEST(AdmissionQueueTest, ZeroQuotaTenantIsRejected) {
  AdmissionController controller(AdmissionOptions{4, 0});
  controller.SetTenantSlots("crawler", 0);
  auto ticket = controller.AdmitJob("crawler");
  ASSERT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().ToString().find("zero admission quota") !=
              std::string::npos)
      << ticket.status().ToString();
}

TEST(AdmissionQueueTest, QuotaBlocksAndServesFifoWithSimulatedWaits) {
  AdmissionController controller(AdmissionOptions{4, 0});
  controller.SetTenantSlots("t", 1);

  auto first = controller.AdmitJob("t");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value()->sim_wait_ms(), 0.0);

  std::mutex order_mu;
  std::vector<std::string> order;
  auto admit_async = [&](const std::string& label) {
    return std::thread([&, label] {
      auto ticket = controller.AdmitJob("t");
      ASSERT_TRUE(ticket.ok());
      {
        std::lock_guard<std::mutex> lock(order_mu);
        order.push_back(label);
      }
      controller.ReleaseJob(ticket.value().get(), 50.0);
    });
  };

  std::thread second = admit_async("second");
  ASSERT_TRUE(WaitFor([&] { return controller.QueuedJobs("t") == 1; }));
  std::thread third = admit_async("third");
  ASSERT_TRUE(WaitFor([&] { return controller.QueuedJobs("t") == 2; }));

  controller.ReleaseJob(first.value().get(), 100.0);
  second.join();
  third.join();

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "second");
  EXPECT_EQ(order[1], "third");

  // Simulated waits follow the tenant's single-lane ledger — 100 ms of
  // backlog when the second job was admitted, 150 when the third was —
  // regardless of the wall-clock race above.
  const TenantStats stats = controller.StatsFor("t");
  EXPECT_EQ(stats.jobs_admitted, 3);
  EXPECT_EQ(stats.jobs_queued, 2);
  EXPECT_DOUBLE_EQ(stats.wait_ms, 250.0);
}

TEST(AdmissionQueueTest, TenantQueuesAreIndependent) {
  AdmissionController controller(AdmissionOptions{4, 0});
  controller.SetTenantSlots("heavy", 1);
  controller.SetTenantSlots("light", 1);

  auto heavy_first = controller.AdmitJob("heavy");
  ASSERT_TRUE(heavy_first.ok());

  std::atomic<bool> heavy_second_admitted{false};
  std::thread heavy_second([&] {
    auto ticket = controller.AdmitJob("heavy");
    ASSERT_TRUE(ticket.ok());
    heavy_second_admitted.store(true);
    controller.ReleaseJob(ticket.value().get(), 10.0);
  });
  ASSERT_TRUE(WaitFor([&] { return controller.QueuedJobs("heavy") == 1; }));

  // The light tenant admits immediately: the heavy backlog is not its
  // queue. (Runs on this thread — a regression would hang, not pass.)
  auto light = controller.AdmitJob("light");
  ASSERT_TRUE(light.ok());
  EXPECT_FALSE(heavy_second_admitted.load());
  EXPECT_EQ(light.value()->sim_wait_ms(), 0.0);
  controller.ReleaseJob(light.value().get(), 5.0);

  controller.ReleaseJob(heavy_first.value().get(), 20.0);
  heavy_second.join();
  EXPECT_EQ(controller.StatsFor("light").jobs_queued, 0);
  EXPECT_EQ(controller.StatsFor("heavy").jobs_queued, 1);
}

// ---------------------------------------------------------------------
// JobRunner integration

/// Map-only job over `path`: one output line per task.
JobConfig CountJob(const TestCluster& cluster, const std::string& path,
                   const std::string& name) {
  class CountMapper : public Mapper {
   public:
    void Map(std::string_view record, MapContext& ctx) override {
      (void)record;
      (void)ctx;
      ++records_;
    }
    void EndSplit(MapContext& ctx) override {
      ctx.WriteOutput("records=" + std::to_string(records_));
    }

   private:
    size_t records_ = 0;
  };
  JobConfig job;
  job.name = name;
  job.splits = MakeBlockSplits(cluster.fs, path).ValueOrDie();
  job.mapper = [] { return std::make_unique<CountMapper>(); };
  return job;
}

/// Mapper that parks in EndSplit until `release` flips — lets a test
/// hold a job "running" while other tenants submit.
JobConfig GateJob(const TestCluster& cluster, const std::string& path,
                  std::atomic<bool>* release) {
  class GateMapper : public Mapper {
   public:
    explicit GateMapper(std::atomic<bool>* release) : release_(release) {}
    void Map(std::string_view record, MapContext& ctx) override {
      (void)record;
      (void)ctx;
    }
    void EndSplit(MapContext& ctx) override {
      (void)ctx;
      while (!release_->load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

   private:
    std::atomic<bool>* release_;
  };
  JobConfig job;
  job.name = "gate";
  job.splits = MakeBlockSplits(cluster.fs, path).ValueOrDie();
  job.mapper = [release] { return std::make_unique<GateMapper>(release); };
  return job;
}

TEST(AdmissionRunnerTest, SingleTenantRunsAreByteIdenticalToNoController) {
  TestCluster plain;
  WritePoints(&plain.fs, "/pts", 2000);
  const JobResult baseline = plain.runner.Run(CountJob(plain, "/pts", "count"));
  ASSERT_TRUE(baseline.status.ok());

  TestCluster gated;
  WritePoints(&gated.fs, "/pts", 2000);
  AdmissionController controller(
      AdmissionOptions{gated.runner.cluster().num_slots, 0});
  gated.runner.set_admission(&controller, "solo");
  const JobResult admitted = gated.runner.Run(CountJob(gated, "/pts", "count"));
  ASSERT_TRUE(admitted.status.ok());

  // A lone tenant with the default quota owns every lane: output rows,
  // counters and the simulated cost all match the ungated runtime.
  EXPECT_EQ(admitted.output, baseline.output);
  EXPECT_EQ(admitted.counters.values(), baseline.counters.values());
  EXPECT_DOUBLE_EQ(admitted.cost.total_ms, baseline.cost.total_ms);
  EXPECT_DOUBLE_EQ(admitted.cost.map_makespan_ms,
                   baseline.cost.map_makespan_ms);
  EXPECT_EQ(admitted.cost.admission_queued, 0);
  EXPECT_DOUBLE_EQ(admitted.cost.admission_wait_ms, 0.0);
}

TEST(AdmissionRunnerTest, TwoTenantFairnessIsDeterministicAcrossSeeds) {
  for (uint64_t seed : {0ULL, 17ULL, 99ULL}) {
    TestCluster cluster;
    WritePoints(&cluster.fs, "/pts", 2000);
    AdmissionController controller(
        AdmissionOptions{cluster.runner.cluster().num_slots, seed});
    controller.SetTenantSlots("heavy", 1);
    controller.SetTenantSlots("light", 1);

    mapreduce::JobRunner heavy_a(&cluster.fs, cluster.runner.cluster());
    mapreduce::JobRunner heavy_b(&cluster.fs, cluster.runner.cluster());
    mapreduce::JobRunner light(&cluster.fs, cluster.runner.cluster());
    heavy_a.set_admission(&controller, "heavy");
    heavy_b.set_admission(&controller, "heavy");
    light.set_admission(&controller, "light");

    std::atomic<bool> release{false};
    std::mutex order_mu;
    std::vector<std::string> order;
    auto record = [&](const std::string& label) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(label);
    };

    // Heavy job A admits and parks mid-run; heavy job B queues behind it.
    std::thread thread_a([&] {
      const JobResult r = heavy_a.Run(GateJob(cluster, "/pts", &release));
      ASSERT_TRUE(r.status.ok());
      record("heavy_a");
    });
    ASSERT_TRUE(WaitFor([&] { return controller.RunningJobs("heavy") == 1; }));
    std::thread thread_b([&] {
      const JobResult r = heavy_b.Run(CountJob(cluster, "/pts", "heavy-b"));
      ASSERT_TRUE(r.status.ok());
      record("heavy_b");
    });
    ASSERT_TRUE(WaitFor([&] { return controller.QueuedJobs("heavy") == 1; }));

    // The light tenant's job is admitted (and finishes) while heavy B is
    // still queued — per-tenant quotas keep the fast lane open.
    const JobResult light_result =
        light.Run(CountJob(cluster, "/pts", "light"));
    ASSERT_TRUE(light_result.status.ok());
    record("light");
    EXPECT_EQ(controller.QueuedJobs("heavy"), 1);

    release.store(true, std::memory_order_release);
    thread_a.join();
    thread_b.join();

    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "light");

    // The light tenant never queued and its simulated wait is exactly
    // zero on every seed; the heavy tenant queued exactly once.
    const TenantStats light_stats = controller.StatsFor("light");
    EXPECT_EQ(light_stats.jobs_queued, 0) << "seed " << seed;
    EXPECT_DOUBLE_EQ(light_stats.wait_ms, 0.0) << "seed " << seed;
    const TenantStats heavy_stats = controller.StatsFor("heavy");
    EXPECT_EQ(heavy_stats.jobs_queued, 1) << "seed " << seed;
    EXPECT_GT(heavy_stats.wait_ms, 0.0) << "seed " << seed;

    // Every attempt lane acquired by either tenant was released.
    EXPECT_EQ(light_stats.lanes_acquired, light_stats.lanes_released);
    EXPECT_EQ(heavy_stats.lanes_acquired, heavy_stats.lanes_released);
  }
}

TEST(AdmissionRunnerTest, SpeculationRespectsOneLaneShares) {
  // Two equal tenants on a two-slot cluster: one lane each, so a
  // speculative backup can never fit. The injector wants to speculate
  // (hard stragglers), the quota vetoes it, and the veto count is a pure
  // function of the injector's decisions — identical on every run.
  fault::FaultPolicy policy;
  policy.seed = 11;
  policy.straggler_prob = 0.6;
  policy.straggler_delay_ms = 30000.0;
  std::vector<int64_t> preempted_runs;
  std::vector<int64_t> launched_runs;
  for (int run = 0; run < 2; ++run) {
    TestCluster cluster(4 * 1024, /*num_slots=*/2);
    WritePoints(&cluster.fs, "/pts", 2000);
    fault::FaultInjector injector(policy);
    AdmissionController controller(AdmissionOptions{2, 0});
    controller.SetTenantSlots("heavy", 1);
    controller.SetTenantSlots("light", 1);
    cluster.runner.set_admission(&controller, "heavy");
    cluster.runner.set_fault_injector(&injector);

    const JobResult result = cluster.runner.Run(
        CountJob(cluster, "/pts", "speculation-quota"));
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.cost.speculative_launched, 0);
    EXPECT_GT(result.cost.admission_preempted_specs, 0);
    EXPECT_EQ(result.counters.Get("admission.preempted_specs"),
              result.cost.admission_preempted_specs);
    preempted_runs.push_back(result.cost.admission_preempted_specs);
    launched_runs.push_back(result.cost.speculative_launched);

    const TenantStats stats = controller.StatsFor("heavy");
    EXPECT_EQ(stats.lanes_acquired, stats.lanes_released);
    EXPECT_LE(stats.peak_lanes, 1);
  }
  EXPECT_EQ(preempted_runs[0], preempted_runs[1]);
  EXPECT_EQ(launched_runs[0], launched_runs[1]);
}

TEST(AdmissionRunnerTest, RetriedAttemptsReleaseTheirLanes) {
  // Injected task failures force retries; every attempt (including the
  // failed ones) must acquire and release exactly one lane.
  fault::FaultPolicy policy;
  policy.seed = 3;
  policy.map_failure_prob = 0.3;
  TestCluster cluster;
  WritePoints(&cluster.fs, "/pts", 2000);
  fault::FaultInjector injector(policy);
  AdmissionController controller(
      AdmissionOptions{cluster.runner.cluster().num_slots, 0});
  cluster.runner.set_admission(&controller, "retrier");
  cluster.runner.set_fault_injector(&injector);

  JobConfig job = CountJob(cluster, "/pts", "retry-lanes");
  job.max_task_attempts = 8;  // Plenty of retries, no job abort.
  const JobResult result = cluster.runner.Run(job);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.cost.task_retries, 0);

  const TenantStats stats = controller.StatsFor("retrier");
  EXPECT_EQ(stats.lanes_acquired, stats.lanes_released);
  // Attempts = committed tasks + retried failures.
  EXPECT_EQ(stats.lanes_acquired,
            static_cast<int64_t>(result.cost.num_map_tasks) +
                result.cost.task_retries);
}

// ---------------------------------------------------------------------
// Pigeon session knobs

TEST(PigeonAdmissionTest, ZeroQuotaTenantFailsWithLinePrefixedError) {
  TestCluster cluster;
  WritePoints(&cluster.fs, "/pts", 500);
  pigeon::Executor executor(&cluster.runner);
  auto report = executor.Execute(
      "SET tenant 'crawler';\n"
      "SET tenant_slots 0;\n"
      "pts = LOAD '/pts' AS POINT;\n"
      "hits = RANGE pts RECTANGLE(0, 0, 500, 500);\n");
  ASSERT_FALSE(report.ok());
  const std::string message = report.status().ToString();
  EXPECT_TRUE(message.find("line 4:") != std::string::npos) << message;
  EXPECT_TRUE(message.find("zero admission quota") != std::string::npos)
      << message;
}

TEST(PigeonAdmissionTest, SessionKnobsDriveRunnerAndExplainCounters) {
  TestCluster cluster;
  WritePoints(&cluster.fs, "/pts", 500);
  pigeon::Executor executor(&cluster.runner);

  // Quota 1 + two sequential jobs: the second job queues in the
  // tenant's simulated ledger, so EXPLAIN reports admission work.
  auto report = executor.Execute(
      "SET tenant 'analyst';\n"
      "SET tenant_slots 1;\n"
      "SET max_task_attempts 5;\n"
      "pts = LOAD '/pts' AS POINT;\n"
      "a = COUNT pts RECTANGLE(0, 0, 500, 500);\n"
      "b = COUNT pts RECTANGLE(0, 0, 250, 250);\n"
      "EXPLAIN b;\n");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(executor.tenant(), "analyst");
  EXPECT_EQ(cluster.runner.max_task_attempts_override(), 5);
  ASSERT_TRUE(executor.admission_controller() != nullptr);
  EXPECT_EQ(executor.admission_controller()->TenantSlots("analyst"), 1);

  ASSERT_FALSE(report->dump_output.empty());
  const std::string& explain = report->dump_output.back();
  EXPECT_TRUE(explain.find("; admission: queued=1, wait_ms=") !=
              std::string::npos)
      << explain;
  EXPECT_EQ(report->stats.cost.admission_queued, 1);
  EXPECT_GT(report->stats.cost.admission_wait_ms, 0.0);
  EXPECT_EQ(report->stats.counters.Get("admission.queued"), 1);
}

TEST(PigeonAdmissionTest, DefaultSessionHasNoAdmissionSegment) {
  TestCluster cluster;
  WritePoints(&cluster.fs, "/pts", 500);
  pigeon::Executor executor(&cluster.runner);
  auto report = executor.Execute(
      "pts = LOAD '/pts' AS POINT;\n"
      "a = COUNT pts RECTANGLE(0, 0, 500, 500);\n"
      "EXPLAIN a;\n");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(executor.admission_controller() == nullptr);
  for (const std::string& line : report->dump_output) {
    EXPECT_EQ(line.find("admission:"), std::string::npos) << line;
  }
  EXPECT_EQ(report->stats.counters.Get("admission.queued"), 0);
}

TEST(PigeonAdmissionTest, SingleTenantScriptMatchesDefaultByteForByte) {
  // The degenerate config — one tenant, default quota — must reproduce
  // the ungated session's rows and counters exactly.
  auto run_script = [](bool with_tenant) {
    TestCluster cluster;
    WritePoints(&cluster.fs, "/pts", 800);
    pigeon::Executor executor(&cluster.runner);
    std::string script;
    if (with_tenant) script += "SET tenant 'solo';\n";
    script +=
        "pts = LOAD '/pts' AS POINT;\n"
        "idx = INDEX pts WITH GRID;\n"
        "hits = RANGE idx RECTANGLE(100, 100, 600, 600);\n"
        "n = COUNT idx RECTANGLE(0, 0, 500, 500);\n"
        "DUMP n;\n"
        "DUMP hits;\n"
        "EXPLAIN idx;\n";
    auto report = executor.Execute(script);
    SHADOOP_CHECK_OK(report.status());
    return std::make_pair(report->dump_output,
                          report->stats.counters.values());
  };
  const auto ungated = run_script(false);
  const auto gated = run_script(true);
  EXPECT_EQ(gated.first, ungated.first);
  EXPECT_EQ(gated.second, ungated.second);
}

TEST(PigeonAdmissionTest, MaxTaskAttemptsKnobBoundsRetries) {
  fault::FaultPolicy policy;
  policy.seed = 1;
  policy.map_failure_prob = 0.995;
  TestCluster cluster;
  WritePoints(&cluster.fs, "/pts", 500);
  fault::FaultInjector injector(policy);
  cluster.runner.set_fault_injector(&injector);
  pigeon::Executor executor(&cluster.runner);
  auto report = executor.Execute(
      "SET max_task_attempts 1;\n"
      "pts = LOAD '/pts' AS POINT;\n"
      "a = COUNT pts RECTANGLE(0, 0, 500, 500);\n");
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().ToString().find("failed after 1 attempt(s)") !=
              std::string::npos)
      << report.status().ToString();
}

TEST(PigeonAdmissionTest, SharedControllerKeepsJoinBacklogOffRangeQueries) {
  // The ISSUE scenario in operator terms: a heavy tenant hammering
  // spatial joins and a light tenant running range queries, two Pigeon
  // sessions sharing one controller. The heavy tenant's quota-1 ledger
  // accrues backlog; the light tenant's stays empty — its wait_ms is
  // exactly zero, and every counter repeats across runs and seeds.
  auto run_scenario = [](uint64_t seed) {
    TestCluster cluster;
    WritePoints(&cluster.fs, "/a", 600, workload::Distribution::kUniform, 1);
    WritePoints(&cluster.fs, "/b", 600, workload::Distribution::kUniform, 2);
    AdmissionController controller(AdmissionOptions{
        cluster.runner.cluster().num_slots, seed});

    pigeon::Executor heavy(&cluster.runner);
    heavy.set_admission_controller(&controller);
    SHADOOP_CHECK_OK(heavy
                         .Execute("SET tenant 'heavy';\n"
                                  "SET tenant_slots 1;\n"
                                  "a = LOAD '/a' AS POINT;\n"
                                  "b = LOAD '/b' AS POINT;\n"
                                  "j1 = SJOIN a, b;\n"
                                  "j2 = SJOIN b, a;\n")
                         .status());

    pigeon::Executor light(&cluster.runner);
    light.set_admission_controller(&controller);
    auto report = light.Execute(
        "SET tenant 'light';\n"
        "p = LOAD '/a' AS POINT;\n"
        "r = RANGE p RECTANGLE(0, 0, 600000, 600000);\n"
        "DUMP r;\n");
    SHADOOP_CHECK_OK(report.status());

    const TenantStats heavy_stats = controller.StatsFor("heavy");
    const TenantStats light_stats = controller.StatsFor("light");
    return std::make_tuple(heavy_stats.jobs_queued, heavy_stats.wait_ms,
                           light_stats.wait_ms,
                           report->stats.cost.admission_wait_ms,
                           report->dump_output.size());
  };

  for (uint64_t seed : {0ULL, 42ULL}) {
    const auto first = run_scenario(seed);
    const auto again = run_scenario(seed);
    EXPECT_EQ(first, again) << "seed " << seed;
    // The heavy tenant's second join queued behind its first...
    EXPECT_GE(std::get<0>(first), 1) << "seed " << seed;
    EXPECT_GT(std::get<1>(first), 0.0) << "seed " << seed;
    // ...while the light tenant's range query never waited at all.
    EXPECT_DOUBLE_EQ(std::get<2>(first), 0.0) << "seed " << seed;
    EXPECT_DOUBLE_EQ(std::get<3>(first), 0.0) << "seed " << seed;
    EXPECT_GT(std::get<4>(first), 0u) << "seed " << seed;
  }
}

TEST(PigeonAdmissionTest, ParserRejectsBadKnobs) {
  TestCluster cluster;
  pigeon::Executor executor(&cluster.runner);
  EXPECT_FALSE(executor.Execute("SET tenant_slots -1;").ok());
  EXPECT_FALSE(executor.Execute("SET max_task_attempts 0;").ok());
  EXPECT_FALSE(executor.Execute("SET warp_speed 9;").ok());
  EXPECT_FALSE(executor.Execute("SET tenant '';").ok());
}

}  // namespace
}  // namespace shadoop
