#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "golden_workload.h"

namespace shadoop::testing {
namespace {

std::vector<std::string> ReadGolden() {
  std::ifstream in(std::string(SHADOOP_GOLDEN_DIR) + "/ops.golden");
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Byte-level parity against the committed baseline captured from the
/// pre-pipeline implementation: every operation's output rows, record
/// counters, and simulated JobCost must be reproduced exactly by the
/// SpatialJobBuilder path. Regenerate with tools/golden_capture only for
/// intentional behavior changes.
TEST(ParityTest, AllOperationsMatchGoldenBaseline) {
  const std::vector<std::string> golden = ReadGolden();
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << SHADOOP_GOLDEN_DIR << "/ops.golden";
  GoldenWorkload workload;
  const std::vector<std::string> actual = workload.Run();

  // Line-by-line diff with the surrounding operation named, so a mismatch
  // reports which operation diverged instead of a giant blob.
  std::string current_op = "?";
  size_t mismatches = 0;
  const size_t n = std::min(golden.size(), actual.size());
  for (size_t i = 0; i < n; ++i) {
    if (golden[i].rfind("== ", 0) == 0) current_op = golden[i].substr(3);
    if (golden[i] != actual[i] && ++mismatches <= 10) {
      ADD_FAILURE() << "parity break in operation '" << current_op
                    << "' at line " << i + 1 << "\n  golden: " << golden[i]
                    << "\n  actual: " << actual[i];
    }
  }
  EXPECT_EQ(golden.size(), actual.size());
  EXPECT_EQ(mismatches, 0u);
}

}  // namespace
}  // namespace shadoop::testing
