#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "core/aggregate_op.h"
#include "core/knn.h"
#include "core/range_query.h"
#include "core/skyline_op.h"
#include "core/spatial_join.h"
#include "geometry/wkt.h"
#include "pigeon/executor.h"
#include "test_util.h"

namespace shadoop {
namespace {

using core::OpStats;
using index::PartitionScheme;

/// End-to-end pipeline: generate -> index with several techniques -> run
/// every read operation -> all systems agree with each other and with
/// brute force.
TEST(IntegrationTest, AllSystemsAgreeOnAllQueries) {
  testing::TestCluster cluster;
  const std::vector<Point> points = testing::WritePoints(
      &cluster.fs, "/pts", 4000, workload::Distribution::kClustered, 3);

  std::vector<index::SpatialFileInfo> files;
  for (PartitionScheme scheme :
       {PartitionScheme::kGrid, PartitionScheme::kStr,
        PartitionScheme::kQuadTree, PartitionScheme::kHilbert}) {
    std::string dest = std::string("/pts.") +
                       index::PartitionSchemeName(scheme);
    files.push_back(
        testing::BuildIndex(&cluster.runner, "/pts", dest, scheme));
  }

  const Envelope query(1.5e5, 2.5e5, 6e5, 7e5);
  auto hadoop_range = core::RangeQueryHadoop(&cluster.runner, "/pts",
                                             index::ShapeType::kPoint, query)
                          .ValueOrDie();
  const std::multiset<std::string> reference(hadoop_range.begin(),
                                             hadoop_range.end());
  for (const auto& file : files) {
    auto spatial = core::RangeQuerySpatial(&cluster.runner, file, query)
                       .ValueOrDie();
    EXPECT_EQ(std::multiset<std::string>(spatial.begin(), spatial.end()),
              reference)
        << index::PartitionSchemeName(file.global_index.scheme());

    auto count =
        core::RangeCountSpatial(&cluster.runner, file, query).ValueOrDie();
    EXPECT_EQ(count, static_cast<int64_t>(reference.size()));

    auto knn = core::KnnSpatial(&cluster.runner, file, Point(4e5, 4e5), 7)
                   .ValueOrDie();
    ASSERT_EQ(knn.size(), 7u);
  }

  // kNN distances agree across all index types and the Hadoop baseline.
  auto hadoop_knn = core::KnnHadoop(&cluster.runner, "/pts",
                                    index::ShapeType::kPoint, Point(4e5, 4e5),
                                    7)
                        .ValueOrDie();
  for (const auto& file : files) {
    auto knn = core::KnnSpatial(&cluster.runner, file, Point(4e5, 4e5), 7)
                   .ValueOrDie();
    for (size_t i = 0; i < 7; ++i) {
      EXPECT_NEAR(knn[i].distance, hadoop_knn[i].distance, 1e-9);
    }
  }
}

/// The Pigeon pipeline must agree with the direct API pipeline.
TEST(IntegrationTest, PigeonAndApiPipelinesAgree) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 1500,
                       workload::Distribution::kAntiCorrelated, 8);

  // API side.
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/api.idx", PartitionScheme::kStr);
  auto api_skyline =
      core::SkylineSpatial(&cluster.runner, file).ValueOrDie();

  // Pigeon side.
  pigeon::Executor executor(&cluster.runner);
  const auto report = executor
                          .Execute(
                              "p = LOAD '/pts' AS POINT;"
                              "i = INDEX p WITH STR INTO '/pigeon.idx';"
                              "s = SKYLINE i;"
                              "DUMP s;")
                          .ValueOrDie();
  std::multiset<std::string> pigeon_result(report.dump_output.begin(),
                                           report.dump_output.end());
  std::multiset<std::string> api_result;
  for (const Point& p : api_skyline) api_result.insert(PointToCsv(p));
  EXPECT_EQ(pigeon_result, api_result);
}

/// Several queries running concurrently against the same file system must
/// not interfere (the simulated namenode and datanodes are shared).
TEST(IntegrationTest, ConcurrentQueriesAreIsolated) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 3000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kStr);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t]() {
      const double lo = t * 1e5;
      const Envelope query(lo, lo, lo + 3e5, lo + 3e5);
      auto result = core::RangeQuerySpatial(&cluster.runner, file, query);
      if (!result.ok()) {
        ++failures;
        return;
      }
      size_t expected = 0;
      for (const Point& p : points) expected += query.Contains(p);
      if (result->size() != expected) ++failures;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

/// Join symmetry: |A x B| == |B x A| and both DJ orders agree with SJMR.
TEST(IntegrationTest, JoinIsSymmetric) {
  testing::TestCluster cluster;
  workload::RectGenOptions options;
  options.centers.count = 400;
  options.centers.seed = 17;
  options.max_side_fraction = 0.04;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/a", workload::RectanglesToRecords(
                                        workload::GenerateRectangles(options)))
                  .ok());
  options.centers.seed = 18;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/b", workload::RectanglesToRecords(
                                        workload::GenerateRectangles(options)))
                  .ok());
  const auto a = testing::BuildIndex(&cluster.runner, "/a", "/a.idx",
                                     PartitionScheme::kStr,
                                     index::ShapeType::kRectangle);
  const auto b = testing::BuildIndex(&cluster.runner, "/b", "/b.idx",
                                     PartitionScheme::kQuadTree,
                                     index::ShapeType::kRectangle);
  auto ab = core::DistributedJoin(&cluster.runner, a, b).ValueOrDie();
  auto ba = core::DistributedJoin(&cluster.runner, b, a).ValueOrDie();
  EXPECT_EQ(ab.size(), ba.size());

  std::multiset<std::pair<std::string, std::string>> ab_pairs;
  for (const std::string& line : ab) {
    ab_pairs.insert(core::SplitJoinOutput(line).ValueOrDie());
  }
  std::multiset<std::pair<std::string, std::string>> ba_flipped;
  for (const std::string& line : ba) {
    auto pair = core::SplitJoinOutput(line).ValueOrDie();
    ba_flipped.insert({pair.second, pair.first});
  }
  EXPECT_EQ(ab_pairs, ba_flipped);
}

}  // namespace
}  // namespace shadoop
