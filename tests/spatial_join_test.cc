#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/spatial_join.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;

std::vector<Envelope> MakeRects(size_t count, uint64_t seed,
                                double max_side_fraction) {
  workload::RectGenOptions options;
  options.centers.count = count;
  options.centers.seed = seed;
  options.max_side_fraction = max_side_fraction;
  return workload::GenerateRectangles(options);
}

std::multiset<std::string> BruteForceJoin(const std::vector<Envelope>& a,
                                          const std::vector<Envelope>& b) {
  std::multiset<std::string> expected;
  for (const Envelope& ra : a) {
    for (const Envelope& rb : b) {
      if (ra.Intersects(rb)) {
        expected.insert(EnvelopeToCsv(ra) + std::string(1, kJoinSeparator) +
                        EnvelopeToCsv(rb));
      }
    }
  }
  return expected;
}

TEST(SpatialJoinTest, SjmrMatchesBruteForce) {
  testing::TestCluster cluster;
  const std::vector<Envelope> a = MakeRects(500, 5, 0.03);
  const std::vector<Envelope> b = MakeRects(400, 6, 0.03);
  ASSERT_TRUE(
      cluster.fs.WriteLines("/a", workload::RectanglesToRecords(a)).ok());
  ASSERT_TRUE(
      cluster.fs.WriteLines("/b", workload::RectanglesToRecords(b)).ok());
  auto result = SjmrJoin(&cluster.runner, "/a", index::ShapeType::kRectangle,
                         "/b", index::ShapeType::kRectangle)
                    .ValueOrDie();
  EXPECT_EQ(std::multiset<std::string>(result.begin(), result.end()),
            BruteForceJoin(a, b));
}

struct JoinCase {
  PartitionScheme scheme_a;
  PartitionScheme scheme_b;
};

class DistributedJoinSchemeTest : public ::testing::TestWithParam<JoinCase> {};

TEST_P(DistributedJoinSchemeTest, MatchesBruteForce) {
  testing::TestCluster cluster;
  const std::vector<Envelope> a = MakeRects(500, 15, 0.04);
  const std::vector<Envelope> b = MakeRects(350, 16, 0.04);
  ASSERT_TRUE(
      cluster.fs.WriteLines("/a", workload::RectanglesToRecords(a)).ok());
  ASSERT_TRUE(
      cluster.fs.WriteLines("/b", workload::RectanglesToRecords(b)).ok());
  const index::SpatialFileInfo file_a =
      testing::BuildIndex(&cluster.runner, "/a", "/a.idx",
                          GetParam().scheme_a, index::ShapeType::kRectangle);
  const index::SpatialFileInfo file_b =
      testing::BuildIndex(&cluster.runner, "/b", "/b.idx",
                          GetParam().scheme_b, index::ShapeType::kRectangle);
  auto result =
      DistributedJoin(&cluster.runner, file_a, file_b).ValueOrDie();
  EXPECT_EQ(std::multiset<std::string>(result.begin(), result.end()),
            BruteForceJoin(a, b));
}

INSTANTIATE_TEST_SUITE_P(
    SchemeMatrix, DistributedJoinSchemeTest,
    ::testing::Values(JoinCase{PartitionScheme::kGrid, PartitionScheme::kGrid},
                      JoinCase{PartitionScheme::kStr, PartitionScheme::kStr},
                      JoinCase{PartitionScheme::kQuadTree,
                               PartitionScheme::kQuadTree},
                      JoinCase{PartitionScheme::kStrPlus,
                               PartitionScheme::kStr},
                      JoinCase{PartitionScheme::kKdTree,
                               PartitionScheme::kZCurve},
                      JoinCase{PartitionScheme::kHilbert,
                               PartitionScheme::kGrid}),
    [](const ::testing::TestParamInfo<JoinCase>& info) {
      std::string name = index::PartitionSchemeName(info.param.scheme_a);
      name += "_";
      name += index::PartitionSchemeName(info.param.scheme_b);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
      }
      return name;
    });

TEST(SpatialJoinTest, DjShufflesNothingAndBeatsSjmr) {
  testing::TestCluster cluster;
  const std::vector<Envelope> a = MakeRects(1500, 25, 0.02);
  const std::vector<Envelope> b = MakeRects(1200, 26, 0.02);
  ASSERT_TRUE(
      cluster.fs.WriteLines("/a", workload::RectanglesToRecords(a)).ok());
  ASSERT_TRUE(
      cluster.fs.WriteLines("/b", workload::RectanglesToRecords(b)).ok());
  const index::SpatialFileInfo file_a =
      testing::BuildIndex(&cluster.runner, "/a", "/a.idx",
                          PartitionScheme::kStr, index::ShapeType::kRectangle);
  const index::SpatialFileInfo file_b =
      testing::BuildIndex(&cluster.runner, "/b", "/b.idx",
                          PartitionScheme::kStr, index::ShapeType::kRectangle);

  OpStats sjmr_stats;
  OpStats dj_stats;
  auto sjmr = SjmrJoin(&cluster.runner, "/a", index::ShapeType::kRectangle,
                       "/b", index::ShapeType::kRectangle, &sjmr_stats)
                  .ValueOrDie();
  auto dj =
      DistributedJoin(&cluster.runner, file_a, file_b, &dj_stats).ValueOrDie();
  EXPECT_EQ(std::multiset<std::string>(sjmr.begin(), sjmr.end()),
            std::multiset<std::string>(dj.begin(), dj.end()));
  EXPECT_EQ(dj_stats.cost.bytes_shuffled, 0u) << "DJ is map-only";
  EXPECT_GT(sjmr_stats.cost.bytes_shuffled, 0u);
  EXPECT_LT(dj_stats.cost.total_ms, sjmr_stats.cost.total_ms);
}

TEST(SpatialJoinTest, PolygonJoinRefinesWithExactTest) {
  testing::TestCluster cluster;
  // Two polygons whose MBRs overlap but shapes do not: thin diagonal
  // triangles in opposite corners of the same box.
  const Polygon t1({{0, 0}, {10, 0}, {0, 1}});
  const Polygon t2({{10, 10}, {0, 10}, {10, 9}});
  // And two that really do intersect.
  const Polygon t3({{20, 0}, {30, 0}, {25, 10}});
  const Polygon t4({{20, 5}, {30, 5}, {25, -5}});
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/pa", {ToWkt(t1), ToWkt(t3)})
                  .ok());
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/pb", {ToWkt(t2), ToWkt(t4)})
                  .ok());
  auto result = SjmrJoin(&cluster.runner, "/pa", index::ShapeType::kPolygon,
                         "/pb", index::ShapeType::kPolygon)
                    .ValueOrDie();
  ASSERT_EQ(result.size(), 1u);
  auto pair = SplitJoinOutput(result.front()).ValueOrDie();
  EXPECT_EQ(pair.first, ToWkt(t3));
  EXPECT_EQ(pair.second, ToWkt(t4));
}

TEST(LocalJoinTest, KernelsFindIdenticalPairs) {
  Random rng(44);
  std::vector<index::RTree::Entry> a;
  std::vector<index::RTree::Entry> b;
  for (uint32_t i = 0; i < 400; ++i) {
    const double x = rng.NextDouble(0, 100);
    const double y = rng.NextDouble(0, 100);
    a.push_back({Envelope(x, y, x + rng.NextDouble(0, 3),
                          y + rng.NextDouble(0, 3)),
                 i});
  }
  for (uint32_t i = 0; i < 300; ++i) {
    const double x = rng.NextDouble(0, 100);
    const double y = rng.NextDouble(0, 100);
    b.push_back({Envelope(x, y, x + rng.NextDouble(0, 3),
                          y + rng.NextDouble(0, 3)),
                 i});
  }
  std::multiset<std::pair<uint32_t, uint32_t>> rtree_pairs;
  std::multiset<std::pair<uint32_t, uint32_t>> sweep_pairs;
  LocalJoinPairs(a, b, LocalJoinAlgorithm::kRTreeProbe,
                 [&](uint32_t pa, uint32_t pb) {
                   rtree_pairs.insert({pa, pb});
                 });
  LocalJoinPairs(a, b, LocalJoinAlgorithm::kPlaneSweep,
                 [&](uint32_t pa, uint32_t pb) {
                   sweep_pairs.insert({pa, pb});
                 });
  EXPECT_EQ(rtree_pairs, sweep_pairs);
  EXPECT_FALSE(rtree_pairs.empty());
}

TEST(LocalJoinTest, EmptySidesYieldNothing) {
  std::vector<index::RTree::Entry> some = {{Envelope(0, 0, 1, 1), 0}};
  for (LocalJoinAlgorithm algorithm :
       {LocalJoinAlgorithm::kRTreeProbe, LocalJoinAlgorithm::kPlaneSweep}) {
    int emitted = 0;
    LocalJoinPairs({}, some, algorithm, [&](uint32_t, uint32_t) { ++emitted; });
    LocalJoinPairs(some, {}, algorithm, [&](uint32_t, uint32_t) { ++emitted; });
    EXPECT_EQ(emitted, 0);
  }
}

TEST(SpatialJoinTest, PlaneSweepKernelMatchesRTreeInBothJoins) {
  testing::TestCluster cluster;
  const std::vector<Envelope> a = MakeRects(400, 45, 0.04);
  const std::vector<Envelope> b = MakeRects(300, 46, 0.04);
  ASSERT_TRUE(
      cluster.fs.WriteLines("/a", workload::RectanglesToRecords(a)).ok());
  ASSERT_TRUE(
      cluster.fs.WriteLines("/b", workload::RectanglesToRecords(b)).ok());
  const auto expected = BruteForceJoin(a, b);

  SjmrOptions sjmr_options;
  sjmr_options.local_algorithm = LocalJoinAlgorithm::kPlaneSweep;
  auto sjmr = SjmrJoin(&cluster.runner, "/a", index::ShapeType::kRectangle,
                       "/b", index::ShapeType::kRectangle, nullptr,
                       sjmr_options)
                  .ValueOrDie();
  EXPECT_EQ(std::multiset<std::string>(sjmr.begin(), sjmr.end()), expected);

  const auto file_a =
      testing::BuildIndex(&cluster.runner, "/a", "/a.idx",
                          PartitionScheme::kGrid, index::ShapeType::kRectangle);
  const auto file_b =
      testing::BuildIndex(&cluster.runner, "/b", "/b.idx",
                          PartitionScheme::kGrid, index::ShapeType::kRectangle);
  DjOptions dj_options;
  dj_options.local_algorithm = LocalJoinAlgorithm::kPlaneSweep;
  auto dj = DistributedJoin(&cluster.runner, file_a, file_b, nullptr,
                            dj_options)
                .ValueOrDie();
  EXPECT_EQ(std::multiset<std::string>(dj.begin(), dj.end()), expected);
}

TEST(SpatialJoinTest, JoinOutputCodecRoundTrips) {
  const std::string left = "1,2,3,4";
  const std::string right = "5,6,7,8";
  auto pair =
      SplitJoinOutput(left + std::string(1, kJoinSeparator) + right)
          .ValueOrDie();
  EXPECT_EQ(pair.first, left);
  EXPECT_EQ(pair.second, right);
  EXPECT_FALSE(SplitJoinOutput("no-separator").ok());
}

}  // namespace
}  // namespace shadoop::core
