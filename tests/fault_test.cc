#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "fault/fault_injector.h"
#include "mapreduce/job_runner.h"
#include "mapreduce/task_scheduler.h"
#include "test_util.h"

namespace shadoop {
namespace {

using fault::FaultInjector;
using fault::FaultPolicy;
using fault::TaskKind;
using mapreduce::AttemptInfo;
using mapreduce::AttemptOutcome;
using mapreduce::AttemptState;
using mapreduce::JobConfig;
using mapreduce::JobResult;
using mapreduce::MakeBlockSplits;
using mapreduce::MapContext;
using mapreduce::Mapper;
using mapreduce::ReduceContext;
using mapreduce::Reducer;
using mapreduce::TaskScheduler;
using mapreduce::TaskSchedulerOptions;

// ---------------------------------------------------------------------
// FaultInjector

TEST(FaultInjectorTest, DecisionsAreDeterministic) {
  FaultPolicy policy;
  policy.seed = 17;
  policy.map_failure_prob = 0.3;
  policy.straggler_prob = 0.2;
  policy.read_io_error_prob = 0.1;
  FaultInjector a(policy);
  FaultInjector b(policy);
  for (size_t task = 0; task < 50; ++task) {
    for (int attempt = 1; attempt <= 3; ++attempt) {
      EXPECT_EQ(a.ShouldFailAttempt(TaskKind::kMap, "job", task, attempt),
                b.ShouldFailAttempt(TaskKind::kMap, "job", task, attempt));
      EXPECT_EQ(a.StragglerDelayMs(TaskKind::kMap, "job", task, attempt),
                b.StragglerDelayMs(TaskKind::kMap, "job", task, attempt));
    }
    EXPECT_EQ(a.ReadFaultAt(task, 0), b.ReadFaultAt(task, 0));
  }
}

TEST(FaultInjectorTest, ZeroProbabilityNeverFires) {
  FaultInjector injector(FaultPolicy{});  // All-zero policy.
  for (size_t task = 0; task < 100; ++task) {
    EXPECT_FALSE(injector.ShouldFailAttempt(TaskKind::kMap, "j", task, 1));
    EXPECT_EQ(injector.StragglerDelayMs(TaskKind::kReduce, "j", task, 1), 0.0);
    EXPECT_EQ(injector.ReadFaultAt(task, 0), FaultInjector::ReadFault::kNone);
  }
  EXPECT_FALSE(injector.policy().AnyEnabled());
}

TEST(FaultInjectorTest, FailureSetGrowsMonotonicallyWithProbability) {
  // Raising the probability must only add faults, never move them: this
  // is what makes fault-matrix sweeps comparable across rates.
  for (double lo = 0.1; lo < 0.8; lo += 0.2) {
    FaultPolicy a;
    a.seed = 5;
    a.map_failure_prob = lo;
    FaultPolicy b = a;
    b.map_failure_prob = lo + 0.2;
    FaultInjector low(a), high(b);
    for (size_t task = 0; task < 200; ++task) {
      if (low.ShouldFailAttempt(TaskKind::kMap, "j", task, 1)) {
        EXPECT_TRUE(high.ShouldFailAttempt(TaskKind::kMap, "j", task, 1));
      }
    }
  }
}

TEST(FaultInjectorTest, SeedsDecorrelateDecisions) {
  FaultPolicy p;
  p.map_failure_prob = 0.5;
  p.seed = 1;
  FaultInjector a(p);
  p.seed = 2;
  FaultInjector b(p);
  int differ = 0;
  for (size_t task = 0; task < 200; ++task) {
    differ += a.ShouldFailAttempt(TaskKind::kMap, "j", task, 1) !=
              b.ShouldFailAttempt(TaskKind::kMap, "j", task, 1);
  }
  EXPECT_GT(differ, 20);
}

TEST(FaultInjectorTest, HitRateTracksProbability) {
  FaultPolicy p;
  p.seed = 99;
  p.map_failure_prob = 0.25;
  FaultInjector injector(p);
  int hits = 0;
  const int n = 2000;
  for (int task = 0; task < n; ++task) {
    hits += injector.ShouldFailAttempt(TaskKind::kMap, "j",
                                       static_cast<size_t>(task), 1);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.05);
}

// ---------------------------------------------------------------------
// TaskScheduler

TaskSchedulerOptions FastOptions() {
  TaskSchedulerOptions options;
  options.job_name = "sched-test";
  options.max_task_attempts = 3;
  return options;
}

TEST(TaskSchedulerTest, TransientFailuresAreRetried) {
  TaskScheduler sched(FastOptions(), nullptr);
  std::vector<std::atomic<int>> committed(4);
  sched.RunTasks(
      4, 4,
      [](size_t, const AttemptInfo& info, int,
         const std::atomic<bool>&) -> AttemptOutcome {
        if (info.id == 1) {
          return {Status::IoError("flaky"), /*transient=*/true};
        }
        return {};
      },
      [&](size_t task, int) { committed[task].fetch_add(1); });
  EXPECT_TRUE(sched.ok());
  EXPECT_EQ(sched.task_retries(), 4);
  for (const auto& c : committed) EXPECT_EQ(c.load(), 1);
  for (const auto& report : sched.reports()) {
    ASSERT_EQ(report.attempts.size(), 2u);
    EXPECT_EQ(report.attempts[0].state, AttemptState::kFailed);
    EXPECT_EQ(report.attempts[1].state, AttemptState::kCommitted);
    EXPECT_EQ(report.committed_attempt, 2);
    EXPECT_GT(report.sim_overhead_ms, 0.0);  // Backoff + wasted launch.
  }
}

TEST(TaskSchedulerTest, NonTransientFailureStopsImmediately) {
  TaskScheduler sched(FastOptions(), nullptr);
  sched.RunTasks(
      1, 1,
      [](size_t, const AttemptInfo&, int,
         const std::atomic<bool>&) -> AttemptOutcome {
        return {Status::ParseError("bad record"), /*transient=*/false};
      },
      [](size_t, int) { FAIL() << "must not commit"; });
  EXPECT_FALSE(sched.ok());
  EXPECT_EQ(sched.task_retries(), 0);
  ASSERT_EQ(sched.reports()[0].attempts.size(), 1u);
  EXPECT_TRUE(sched.MakeStatus().IsParseError());
}

TEST(TaskSchedulerTest, ExhaustedBudgetReportsHistory) {
  TaskScheduler sched(FastOptions(), nullptr);
  sched.RunTasks(
      2, 2,
      [](size_t task, const AttemptInfo&, int,
         const std::atomic<bool>&) -> AttemptOutcome {
        if (task == 1) return {Status::IoError("always down"), true};
        return {};
      },
      [](size_t, int) {});
  EXPECT_FALSE(sched.ok());
  const Status status = sched.MakeStatus();
  EXPECT_TRUE(status.IsIoError());
  EXPECT_NE(status.message().find("task 1"), std::string::npos);
  EXPECT_NE(status.message().find("3 attempt(s)"), std::string::npos);
  EXPECT_NE(status.message().find("#1 FAILED"), std::string::npos);
  EXPECT_EQ(sched.reports()[1].attempts.size(), 3u);
  // Exponential backoff: each relaunch waited twice the previous wait.
  EXPECT_DOUBLE_EQ(sched.reports()[1].attempts[0].backoff_ms, 0.0);
  EXPECT_DOUBLE_EQ(sched.reports()[1].attempts[1].backoff_ms, 1000.0);
  EXPECT_DOUBLE_EQ(sched.reports()[1].attempts[2].backoff_ms, 2000.0);
}

TEST(TaskSchedulerTest, StragglerTriggersSpeculationAndCommitsOnce) {
  FaultPolicy policy;
  policy.seed = 3;
  policy.straggler_prob = 1.0;  // Every attempt straggles.
  policy.straggler_delay_ms = 30000.0;
  FaultInjector injector(policy);
  TaskSchedulerOptions options = FastOptions();
  options.speculative_slack_ms = 5000.0;
  TaskScheduler sched(options, &injector);
  std::vector<std::atomic<int>> committed(8);
  std::atomic<int> runs{0};
  sched.RunTasks(
      8, 4,
      [&](size_t, const AttemptInfo&, int,
          const std::atomic<bool>&) -> AttemptOutcome {
        runs.fetch_add(1);
        return {};
      },
      [&](size_t task, int) { committed[task].fetch_add(1); });
  EXPECT_TRUE(sched.ok());
  EXPECT_EQ(sched.speculative_launched(), 8);
  for (const auto& c : committed) EXPECT_EQ(c.load(), 1);  // Commit-once.
  for (const auto& report : sched.reports()) {
    ASSERT_EQ(report.attempts.size(), 2u);
    int committed_count = 0, killed_count = 0;
    for (const auto& attempt : report.attempts) {
      committed_count += attempt.state == AttemptState::kCommitted;
      killed_count += attempt.state == AttemptState::kKilled;
    }
    EXPECT_EQ(committed_count, 1);
    EXPECT_EQ(killed_count, 1);
  }
}

TEST(TaskSchedulerTest, SpeculativeWinnerIsDeterministic) {
  // Run the same straggler-heavy schedule twice; the simulated outcome
  // (who won, total overhead) must be identical even though the real
  // thread race differs run to run.
  FaultPolicy policy;
  policy.seed = 11;
  policy.straggler_prob = 0.6;
  policy.straggler_delay_ms = 20000.0;
  auto run_once = [&policy]() {
    FaultInjector injector(policy);
    TaskScheduler sched(FastOptions(), &injector);
    sched.RunTasks(
        16, 8,
        [](size_t, const AttemptInfo&, int,
           const std::atomic<bool>&) -> AttemptOutcome { return {}; },
        [](size_t, int) {});
    double overhead = 0;
    std::vector<int> winners;
    for (const auto& report : sched.reports()) {
      overhead += report.sim_overhead_ms;
      winners.push_back(report.committed_attempt);
    }
    return std::make_tuple(sched.speculative_launched(),
                           sched.speculative_won(), overhead, winners);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_GT(std::get<0>(first), 0);
}

// ---------------------------------------------------------------------
// JobRunner integration

class WordCountMapper : public Mapper {
 public:
  void Map(std::string_view record, MapContext& ctx) override {
    for (std::string_view word : SplitWhitespace(record)) {
      ctx.Emit(std::string(word), "1");
    }
  }
};

class SumReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              ReduceContext& ctx) override {
    ctx.Write(key + "=" + std::to_string(values.size()));
  }
};

JobConfig WordCountJob(hdfs::FileSystem& fs, const std::string& path) {
  JobConfig job;
  job.name = "wordcount";
  job.splits = MakeBlockSplits(fs, path).ValueOrDie();
  job.mapper = []() { return std::make_unique<WordCountMapper>(); };
  job.reducer = []() { return std::make_unique<SumReducer>(); };
  job.num_reducers = 3;
  return job;
}

std::vector<std::string> ManyLines() {
  std::vector<std::string> lines;
  for (int i = 0; i < 400; ++i) {
    lines.push_back("w" + std::to_string(i % 23) + " w" +
                    std::to_string(i % 7));
  }
  return lines;
}

TEST(FaultToleranceTest, InjectionPreservesOutputAcrossSeeds) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/text", ManyLines()).ok());
  const JobResult clean = cluster.runner.Run(WordCountJob(cluster.fs, "/text"));
  ASSERT_TRUE(clean.status.ok());
  EXPECT_EQ(clean.cost.task_retries, 0);
  EXPECT_EQ(clean.counters.Get("fault.task_retries"), 0);

  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    FaultPolicy policy;
    policy.seed = seed;
    policy.map_failure_prob = 0.3;
    policy.reduce_failure_prob = 0.2;
    policy.straggler_prob = 0.3;
    FaultInjector injector(policy);
    JobConfig job = WordCountJob(cluster.fs, "/text");
    job.fault_source = &injector;
    job.max_task_attempts = 8;  // Ample budget at a 30% failure rate.
    const JobResult faulty = cluster.runner.Run(job);
    ASSERT_TRUE(faulty.status.ok())
        << "seed " << seed << ": " << faulty.status.ToString();
    // The invariant: identical rows, only the fault counters differ.
    EXPECT_EQ(faulty.output, clean.output) << "seed " << seed;
    EXPECT_EQ(faulty.cost.bytes_shuffled, clean.cost.bytes_shuffled);
    EXPECT_GT(faulty.cost.task_retries + faulty.cost.speculative_launched, 0)
        << "seed " << seed;
    EXPECT_EQ(faulty.counters.Get("fault.task_retries"),
              faulty.cost.task_retries);
    // Recovery work inflates the simulated time, never shrinks it.
    EXPECT_GE(faulty.cost.total_ms, clean.cost.total_ms);
  }
}

TEST(FaultToleranceTest, FaultyCostIsReproducible) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/text", ManyLines()).ok());
  FaultPolicy policy;
  policy.seed = 7;
  policy.map_failure_prob = 0.25;
  policy.straggler_prob = 0.4;
  auto run = [&] {
    FaultInjector injector(policy);
    JobConfig job = WordCountJob(cluster.fs, "/text");
    job.fault_source = &injector;
    job.max_task_attempts = 8;
    return cluster.runner.Run(job);
  };
  const JobResult r1 = run();
  const JobResult r2 = run();
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_DOUBLE_EQ(r1.cost.total_ms, r2.cost.total_ms);
  EXPECT_EQ(r1.cost.task_retries, r2.cost.task_retries);
  EXPECT_EQ(r1.cost.speculative_launched, r2.cost.speculative_launched);
  EXPECT_EQ(r1.cost.speculative_won, r2.cost.speculative_won);
}

TEST(FaultToleranceTest, RunnerLevelInjectorAppliesToEveryJob) {
  testing::TestCluster cluster;
  std::vector<std::string> lines;  // Several blocks -> several map tasks.
  for (int i = 0; i < 2000; ++i) {
    lines.push_back("alpha beta gamma " + std::to_string(i % 7));
  }
  ASSERT_TRUE(cluster.fs.WriteLines("/text", lines).ok());
  FaultPolicy policy;
  policy.seed = 21;
  policy.map_failure_prob = 0.4;
  policy.reduce_failure_prob = 0.4;
  FaultInjector injector(policy);
  cluster.runner.set_fault_injector(&injector);
  JobConfig job = WordCountJob(cluster.fs, "/text");
  job.max_task_attempts = 8;
  const JobResult result = cluster.runner.Run(job);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.cost.task_retries, 0);
  cluster.runner.set_fault_injector(nullptr);
}

TEST(FaultToleranceTest, AbortCarriesTaskIdAndAttemptHistory) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/in", {"r"}).ok());
  class PassMapper : public Mapper {
   public:
    void Map(std::string_view record, MapContext& ctx) override {
      ctx.WriteOutput(record);
    }
  };
  JobConfig job;
  job.name = "doomed";
  job.splits = MakeBlockSplits(cluster.fs, "/in").ValueOrDie();
  job.mapper = []() { return std::make_unique<PassMapper>(); };
  job.fault_injector = [](int, int) { return true; };  // Never succeeds.
  const JobResult result = cluster.runner.Run(job);
  EXPECT_TRUE(result.status.IsIoError());
  EXPECT_NE(result.status.message().find("map task 0"), std::string::npos);
  EXPECT_NE(result.status.message().find("'doomed'"), std::string::npos);
  EXPECT_NE(result.status.message().find("3 attempt(s)"), std::string::npos);
  EXPECT_NE(result.status.message().find("#3 FAILED"), std::string::npos);
}

// ---------------------------------------------------------------------
// HDFS replica failover

TEST(ReplicaFailoverTest, InjectedReadFaultsFailOverWithoutDataLoss) {
  testing::TestCluster cluster;  // Replication 3.
  FaultPolicy policy;
  policy.seed = 13;
  policy.read_io_error_prob = 0.5;
  policy.read_corruption_prob = 0.2;
  FaultInjector injector(policy);
  cluster.fs.set_fault_injector(&injector);  // Before writing: checksums on.
  std::vector<std::string> lines;
  for (int i = 0; i < 2000; ++i) lines.push_back("record-" + std::to_string(i));
  ASSERT_TRUE(cluster.fs.WriteLines("/data", lines).ok());

  auto read = cluster.fs.ReadLines("/data");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), lines);  // Failover, never data loss.
  EXPECT_GT(injector.replica_failovers(), 0u);
  EXPECT_EQ(injector.replica_failovers(),
            injector.read_io_errors() + injector.read_corruptions());
  cluster.fs.set_fault_injector(nullptr);
}

TEST(ReplicaFailoverTest, JobSurfacesReplicaFailoverCounter) {
  testing::TestCluster cluster;
  FaultPolicy policy;
  policy.seed = 29;
  policy.read_io_error_prob = 0.6;
  FaultInjector injector(policy);
  cluster.fs.set_fault_injector(&injector);
  std::vector<std::string> lines;  // Several blocks' worth of input.
  for (int i = 0; i < 2000; ++i) {
    lines.push_back("w" + std::to_string(i % 23) + " w" +
                    std::to_string(i % 7));
  }
  ASSERT_TRUE(cluster.fs.WriteLines("/text", lines).ok());
  const JobResult result = cluster.runner.Run(WordCountJob(cluster.fs, "/text"));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.cost.replica_failovers, 0);
  EXPECT_EQ(result.counters.Get("fault.replica_failovers"),
            result.cost.replica_failovers);
  cluster.fs.set_fault_injector(nullptr);
}

TEST(ReplicaFailoverTest, DisabledInjectorLeavesReadsUntouched) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/data", {"a", "b"}).ok());
  // No injector installed at write time: no checksums recorded.
  ASSERT_TRUE(cluster.fs.GetFileMeta("/data").ok());
  EXPECT_EQ(cluster.fs.GetFileMeta("/data").ValueOrDie().blocks[0].checksum,
            0u);
  EXPECT_EQ(cluster.fs.ReadLines("/data").ValueOrDie(),
            (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace shadoop
