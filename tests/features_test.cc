// Tests for the extended features: grid histograms, histogram-balanced
// SJMR, persisted local indexes, and attribute pass-through.

#include <gtest/gtest.h>

#include <set>

#include "core/histogram_op.h"
#include "core/knn.h"
#include "core/range_query.h"
#include "core/spatial_join.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;

TEST(HistogramTest, CountsMatchBruteForce) {
  testing::TestCluster cluster;
  const std::vector<Point> points = testing::WritePoints(
      &cluster.fs, "/pts", 3000, workload::Distribution::kClustered, 6);
  const Envelope space(0, 0, 1e6, 1e6);
  const GridHistogram histogram =
      ComputeGridHistogram(&cluster.runner, "/pts", index::ShapeType::kPoint,
                           space, 8, 8)
          .ValueOrDie();
  EXPECT_EQ(histogram.TotalCount(), 3000);

  GridHistogram expected(8, 8, space);
  for (const Point& p : points) {
    expected.Add(expected.CellOf(p) % 8, expected.CellOf(p) / 8, 1);
  }
  for (int row = 0; row < 8; ++row) {
    for (int col = 0; col < 8; ++col) {
      EXPECT_EQ(histogram.At(col, row), expected.At(col, row))
          << col << "," << row;
    }
  }
  // Clustered data: heavily skewed histogram.
  EXPECT_GT(histogram.MaxCount(), 3000 / 64 * 4);
}

TEST(HistogramTest, WeightedSampleTracksDensity) {
  GridHistogram histogram(2, 1, Envelope(0, 0, 2, 1));
  histogram.Add(0, 0, 90);
  histogram.Add(1, 0, 10);
  const std::vector<Point> sample = histogram.ToWeightedSample(100);
  size_t left = 0;
  for (const Point& p : sample) left += p.x < 1.0;
  EXPECT_NEAR(static_cast<double>(left) / sample.size(), 0.9, 0.05);
}

TEST(HistogramTest, RejectsBadArguments) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 10);
  EXPECT_TRUE(ComputeGridHistogram(&cluster.runner, "/pts",
                                   index::ShapeType::kPoint,
                                   Envelope(0, 0, 1, 1), 0, 4)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ComputeGridHistogram(&cluster.runner, "/pts",
                                   index::ShapeType::kPoint, Envelope(), 4, 4)
                  .status()
                  .IsInvalidArgument());
}

TEST(BalancedSjmrTest, SameResultsAsUniformGrid) {
  testing::TestCluster cluster;
  workload::RectGenOptions options;
  options.centers.distribution = workload::Distribution::kClustered;
  options.centers.count = 600;
  options.centers.seed = 9;
  options.max_side_fraction = 0.03;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/a", workload::RectanglesToRecords(
                                        workload::GenerateRectangles(options)))
                  .ok());
  options.centers.seed = 10;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/b", workload::RectanglesToRecords(
                                        workload::GenerateRectangles(options)))
                  .ok());
  auto uniform = SjmrJoin(&cluster.runner, "/a", index::ShapeType::kRectangle,
                          "/b", index::ShapeType::kRectangle)
                     .ValueOrDie();
  SjmrOptions balanced_options;
  balanced_options.histogram_balanced = true;
  OpStats stats;
  auto balanced =
      SjmrJoin(&cluster.runner, "/a", index::ShapeType::kRectangle, "/b",
               index::ShapeType::kRectangle, &stats, balanced_options)
          .ValueOrDie();
  EXPECT_EQ(std::multiset<std::string>(uniform.begin(), uniform.end()),
            std::multiset<std::string>(balanced.begin(), balanced.end()));
  EXPECT_GE(stats.jobs_run, 5) << "2 MBR + 2 histogram + 1 join";
}

TEST(LocalIndexTest, HeaderCodecRoundTrips) {
  const std::vector<Envelope> envelopes = {Envelope(1, 2, 3, 4), Envelope(),
                                           Envelope(-1, -2, 0, 0)};
  const std::string header = index::EncodeLocalIndexHeader(envelopes);
  EXPECT_TRUE(index::IsMetadataRecord(header));
  const auto decoded = index::DecodeLocalIndexHeader(header).ValueOrDie();
  // The empty envelope serializes as inf bounds; count must be preserved.
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0], envelopes[0]);
  EXPECT_EQ(decoded[2], envelopes[2]);
  EXPECT_FALSE(index::DecodeLocalIndexHeader("#other").ok());
}

TEST(LocalIndexTest, PersistedIndexGivesSameAnswersWithLessCpu) {
  testing::TestCluster cluster;
  workload::PolygonGenOptions polys;
  polys.centers.count = 1200;
  polys.centers.seed = 4;
  polys.max_radius_fraction = 0.02;
  const auto polygons = workload::GeneratePolygons(polys);
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/poly", workload::PolygonsToRecords(polygons))
                  .ok());

  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions plain;
  plain.scheme = PartitionScheme::kStr;
  plain.shape = index::ShapeType::kPolygon;
  const auto without =
      builder.Build("/poly", "/poly.plain", plain).ValueOrDie();
  index::IndexBuildOptions with = plain;
  with.build_local_indexes = true;
  const auto with_lidx =
      builder.Build("/poly", "/poly.lidx", with).ValueOrDie();
  EXPECT_TRUE(with_lidx.has_local_indexes);
  EXPECT_FALSE(without.has_local_indexes);

  // Reload from the master file keeps the flag.
  EXPECT_TRUE(index::LoadSpatialFile(cluster.fs, "/poly.lidx")
                  .ValueOrDie()
                  .has_local_indexes);

  const Envelope query(2e5, 2e5, 6e5, 6e5);
  OpStats stats_plain;
  OpStats stats_lidx;
  auto r1 = RangeQuerySpatial(&cluster.runner, without, query, &stats_plain)
                .ValueOrDie();
  auto r2 = RangeQuerySpatial(&cluster.runner, with_lidx, query, &stats_lidx)
                .ValueOrDie();
  EXPECT_EQ(std::multiset<std::string>(r1.begin(), r1.end()),
            std::multiset<std::string>(r2.begin(), r2.end()));
  // The header costs extra bytes but saves the O(n log n) build charge.
  EXPECT_GT(stats_lidx.cost.bytes_read, stats_plain.cost.bytes_read);
}

TEST(LocalIndexTest, OtherOperationsIgnoreTheHeader) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 1500);
  index::IndexBuilder builder(&cluster.runner);
  index::IndexBuildOptions options;
  options.scheme = PartitionScheme::kGrid;
  options.build_local_indexes = true;
  const auto file = builder.Build("/pts", "/pts.lidx", options).ValueOrDie();

  // kNN over the lidx file: header lines must not poison the answers.
  auto knn = KnnSpatial(&cluster.runner, file, Point(5e5, 5e5), 5)
                 .ValueOrDie();
  ASSERT_EQ(knn.size(), 5u);
  for (const auto& answer : knn) {
    EXPECT_TRUE(index::RecordPoint(answer.record).ok()) << answer.record;
  }
  // Re-indexing an lidx file also works (headers skipped).
  index::IndexBuildOptions reindex;
  reindex.scheme = PartitionScheme::kStr;
  const auto rebuilt =
      builder.Build("/pts.lidx", "/pts.re", reindex).ValueOrDie();
  size_t total = 0;
  for (const auto& p : rebuilt.global_index.partitions()) {
    total += p.num_records;
  }
  EXPECT_EQ(total, points.size());
}

TEST(AttributeTest, AttributesSurviveIndexingAndQueries) {
  testing::TestCluster cluster;
  workload::PointGenOptions gen;
  gen.count = 800;
  gen.seed = 77;
  const std::vector<Point> points = workload::GeneratePoints(gen);
  const std::vector<std::string> records =
      workload::AttachAttributes(workload::PointsToRecords(points), "poi");
  ASSERT_TRUE(cluster.fs.WriteLines("/pts", records).ok());
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kStr);

  const Envelope query(1e5, 1e5, 8e5, 8e5);
  auto result = RangeQuerySpatial(&cluster.runner, file, query).ValueOrDie();
  std::multiset<std::string> expected;
  for (size_t i = 0; i < points.size(); ++i) {
    if (query.Contains(points[i])) expected.insert(records[i]);
  }
  EXPECT_EQ(std::multiset<std::string>(result.begin(), result.end()),
            expected);
  for (const std::string& record : result) {
    EXPECT_NE(record.find("\tid="), std::string::npos)
        << "attributes must pass through: " << record;
  }
}

}  // namespace
}  // namespace shadoop::core
