#ifndef SHADOOP_TESTS_GOLDEN_WORKLOAD_H_
#define SHADOOP_TESTS_GOLDEN_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/string_util.h"
#include "core/aggregate_op.h"
#include "core/closest_pair_op.h"
#include "core/convex_hull_op.h"
#include "core/farthest_pair_op.h"
#include "core/file_mbr.h"
#include "core/histogram_op.h"
#include "core/knn.h"
#include "core/knn_join.h"
#include "core/operation_skeleton.h"
#include "core/range_query.h"
#include "core/skyline_op.h"
#include "core/spatial_join.h"
#include "core/union_op.h"
#include "geometry/wkt.h"
#include "pigeon/executor.h"
#include "test_util.h"

namespace shadoop::testing {

/// Runs every built-in operation (plus one Pigeon script) on a fixed
/// seeded dataset and serializes rows, record-level counters, and the
/// deterministic JobCost into a flat line list. The committed golden file
/// (tests/golden/ops.golden) was captured from the pre-pipeline seed
/// implementation; the parity test re-runs this workload and diffs —
/// byte-identical output proves the query-pipeline refactor preserved
/// every operation's results and cost accounting.
class GoldenWorkload {
 public:
  std::vector<std::string> Run() {
    TestCluster cluster;
    lines_.clear();

    // --- Fixed seeded datasets ------------------------------------
    WritePoints(&cluster.fs, "/pts", 2400, workload::Distribution::kUniform,
                42);
    WritePoints(&cluster.fs, "/pts2", 1600,
                workload::Distribution::kClustered, 7);
    workload::RectGenOptions rect_options;
    rect_options.centers.count = 500;
    rect_options.centers.seed = 5;
    rect_options.max_side_fraction = 0.02;
    SHADOOP_CHECK_OK(
        workload::WriteRectangleFile(&cluster.fs, "/rects", rect_options));
    workload::RectGenOptions rect_options2;
    rect_options2.centers.count = 400;
    rect_options2.centers.seed = 9;
    rect_options2.max_side_fraction = 0.02;
    SHADOOP_CHECK_OK(
        workload::WriteRectangleFile(&cluster.fs, "/rects2", rect_options2));
    workload::PolygonGenOptions poly_options;
    poly_options.centers.count = 300;
    poly_options.centers.seed = 11;
    poly_options.max_radius_fraction = 0.02;
    SHADOOP_CHECK_OK(
        workload::WritePolygonFile(&cluster.fs, "/polys", poly_options));

    const auto str_file = BuildIndex(&cluster.runner, "/pts", "/pts.str",
                                     index::PartitionScheme::kStr);
    const auto grid_file = BuildIndex(&cluster.runner, "/pts", "/pts.grid",
                                      index::PartitionScheme::kGrid);
    const auto grid_file2 = BuildIndex(&cluster.runner, "/pts2", "/pts2.grid",
                                       index::PartitionScheme::kGrid);
    const auto poly_file =
        BuildIndex(&cluster.runner, "/polys", "/polys.grid",
                   index::PartitionScheme::kGrid, index::ShapeType::kPolygon);
    const auto rect_file =
        BuildIndex(&cluster.runner, "/rects", "/rects.grid",
                   index::PartitionScheme::kGrid,
                   index::ShapeType::kRectangle);
    const auto rect_file2 =
        BuildIndex(&cluster.runner, "/rects2", "/rects2.grid",
                   index::PartitionScheme::kGrid,
                   index::ShapeType::kRectangle);

    const Envelope query(200000, 200000, 600000, 550000);
    const Point q(500000, 500000);

    // --- Range query ----------------------------------------------
    {
      core::OpStats stats;
      auto rows = core::RangeQueryHadoop(&cluster.runner, "/pts",
                                         index::ShapeType::kPoint, query,
                                         &stats);
      Record("range-query-hadoop", rows, stats);
    }
    {
      core::OpStats stats;
      auto rows =
          core::RangeQuerySpatial(&cluster.runner, str_file, query, &stats);
      Record("range-query-str", rows, stats);
    }
    {
      core::OpStats stats;
      auto rows =
          core::RangeQuerySpatial(&cluster.runner, grid_file, query, &stats);
      Record("range-query-grid", rows, stats);
    }

    // --- Range count (aggregate) ----------------------------------
    {
      core::OpStats stats;
      auto count = core::RangeCountHadoop(&cluster.runner, "/pts",
                                          index::ShapeType::kPoint, query,
                                          &stats);
      RecordScalar("range-count-hadoop", count, stats);
    }
    {
      core::OpStats stats;
      auto count =
          core::RangeCountSpatial(&cluster.runner, grid_file, query, &stats);
      RecordScalar("range-count-grid", count, stats);
    }

    // --- File MBR and histogram -----------------------------------
    {
      core::OpStats stats;
      auto mbr = core::ComputeFileMbr(&cluster.runner, "/pts",
                                      index::ShapeType::kPoint, &stats);
      Record("file-mbr",
             mbr.ok() ? Result<std::vector<std::string>>(
                            std::vector<std::string>{EnvelopeToCsv(
                                mbr.value())})
                      : mbr.status(),
             stats);
    }
    {
      core::OpStats stats;
      auto hist = core::ComputeGridHistogram(
          &cluster.runner, "/pts", index::ShapeType::kPoint,
          Envelope(0, 0, 1e6, 1e6), 8, 8, &stats);
      std::vector<std::string> rows;
      if (hist.ok()) {
        for (int row = 0; row < 8; ++row) {
          for (int col = 0; col < 8; ++col) {
            if (hist.value().At(col, row) > 0) {
              rows.push_back(std::to_string(row * 8 + col) + "=" +
                             std::to_string(hist.value().At(col, row)));
            }
          }
        }
      }
      Record("grid-histogram",
             hist.ok() ? Result<std::vector<std::string>>(std::move(rows))
                       : hist.status(),
             stats);
    }

    // --- kNN ------------------------------------------------------
    {
      core::OpStats stats;
      auto answers = core::KnnHadoop(&cluster.runner, "/pts",
                                     index::ShapeType::kPoint, q, 7, &stats);
      Record("knn-hadoop", KnnRows(answers), stats);
    }
    {
      core::OpStats stats;
      auto answers = core::KnnSpatial(&cluster.runner, grid_file, q, 7,
                                      &stats);
      Record("knn-grid", KnnRows(answers), stats);
    }

    // --- Joins ----------------------------------------------------
    {
      core::OpStats stats;
      auto rows = core::SjmrJoin(&cluster.runner, "/rects",
                                 index::ShapeType::kRectangle, "/rects2",
                                 index::ShapeType::kRectangle, &stats);
      Record("sjmr-join", rows, stats);
    }
    {
      core::OpStats stats;
      auto rows = core::DistributedJoin(&cluster.runner, rect_file,
                                        rect_file2, &stats);
      Record("distributed-join", rows, stats);
    }
    {
      core::OpStats stats;
      auto answers =
          core::KnnJoinSpatial(&cluster.runner, grid_file2, grid_file, 3,
                               &stats);
      std::vector<std::string> rows;
      if (answers.ok()) {
        for (const core::KnnJoinAnswer& a : answers.value()) {
          rows.push_back(a.left + "|" + a.right + "|" +
                         FormatDouble(a.distance) + "|" +
                         std::to_string(a.rank));
        }
      }
      Record("knn-join",
             answers.ok() ? Result<std::vector<std::string>>(std::move(rows))
                          : answers.status(),
             stats);
    }

    // --- Computational geometry ops -------------------------------
    {
      core::OpStats stats;
      auto hull = core::ConvexHullHadoop(&cluster.runner, "/pts", &stats);
      Record("convex-hull-hadoop", PointRows(hull), stats);
    }
    {
      core::OpStats stats;
      auto hull = core::ConvexHullSpatial(&cluster.runner, str_file, &stats);
      Record("convex-hull-str", PointRows(hull), stats);
    }
    {
      core::OpStats stats;
      auto sky = core::SkylineHadoop(&cluster.runner, "/pts", &stats);
      Record("skyline-hadoop", PointRows(sky), stats);
    }
    {
      core::OpStats stats;
      auto sky = core::SkylineSpatial(&cluster.runner, str_file, &stats);
      Record("skyline-str", PointRows(sky), stats);
    }
    {
      core::OpStats stats;
      auto pair = core::ClosestPairSpatial(&cluster.runner, grid_file,
                                           &stats);
      Record("closest-pair", PairRows(pair), stats);
    }
    {
      core::OpStats stats;
      auto pair = core::FarthestPairHadoop(&cluster.runner, "/pts", &stats);
      Record("farthest-pair-hadoop", PairRows(pair), stats);
    }
    {
      core::OpStats stats;
      auto pair = core::FarthestPairSpatial(&cluster.runner, grid_file,
                                            &stats);
      Record("farthest-pair-grid", PairRows(pair), stats);
    }

    // --- Union ----------------------------------------------------
    {
      core::OpStats stats;
      auto segments = core::UnionHadoop(&cluster.runner, "/polys", &stats);
      Record("union-hadoop", SegmentRows(segments), stats);
    }
    {
      core::OpStats stats;
      auto segments =
          core::UnionSpatialEnhanced(&cluster.runner, poly_file, &stats);
      Record("union-enhanced", SegmentRows(segments), stats);
    }

    // --- Operation skeleton ---------------------------------------
    {
      core::OpStats stats;
      core::OperationSkeleton op;
      op.name = "partition-counts";
      op.local = [](const core::SplitExtent& extent,
                    const std::vector<std::string>& records,
                    core::LocalOutput* out) {
        out->ChargeCpu(records.size() * 10);
        out->ToMerge(EnvelopeToCsv(extent.cell) + "->" +
                     std::to_string(records.size()));
      };
      op.merge = [](const std::vector<std::string>& candidates,
                    std::vector<std::string>* final_out) {
        std::vector<std::string> sorted = candidates;
        std::sort(sorted.begin(), sorted.end());
        for (std::string& row : sorted) final_out->push_back(std::move(row));
      };
      auto rows = core::RunOperation(&cluster.runner, grid_file, op, &stats);
      Record("skeleton-partition-counts", rows, stats);
    }

    // --- Pigeon (language layer shares the execution path) --------
    {
      pigeon::Executor executor(&cluster.runner);
      auto report = executor.Execute(
          "pts = LOAD '/pts' AS POINT;\n"
          "idx = INDEX pts WITH GRID INTO '/pts.pigeon';\n"
          "hits = RANGE idx RECTANGLE(200000, 200000, 600000, 550000);\n"
          "DUMP hits;\n");
      std::vector<std::string> rows;
      core::OpStats stats;
      if (report.ok()) {
        rows = report.value().dump_output;
        stats = report.value().stats;
      }
      Record("pigeon-range",
             report.ok() ? Result<std::vector<std::string>>(std::move(rows))
                         : report.status(),
             stats);
    }

    return lines_;
  }

 private:
  static Result<std::vector<std::string>> KnnRows(
      const Result<std::vector<core::KnnAnswer>>& answers) {
    if (!answers.ok()) return answers.status();
    std::vector<std::string> rows;
    for (const core::KnnAnswer& a : answers.value()) {
      rows.push_back(FormatDouble(a.distance) + "\t" + a.record);
    }
    return rows;
  }

  static Result<std::vector<std::string>> PointRows(
      const Result<std::vector<Point>>& points) {
    if (!points.ok()) return points.status();
    std::vector<std::string> rows;
    for (const Point& p : points.value()) rows.push_back(PointToCsv(p));
    return rows;
  }

  static Result<std::vector<std::string>> PairRows(
      const Result<PointPair>& pair) {
    if (!pair.ok()) return pair.status();
    return std::vector<std::string>{FormatDouble(pair.value().distance),
                                    PointToCsv(pair.value().first),
                                    PointToCsv(pair.value().second)};
  }

  static Result<std::vector<std::string>> SegmentRows(
      const Result<std::vector<Segment>>& segments) {
    if (!segments.ok()) return segments.status();
    std::vector<std::string> rows;
    for (const Segment& s : segments.value()) {
      rows.push_back(core::SegmentToCsv(s));
    }
    return rows;
  }

  void Record(const std::string& op,
              const Result<std::vector<std::string>>& rows,
              const core::OpStats& stats) {
    lines_.push_back("== " + op);
    if (!rows.ok()) {
      lines_.push_back("status: " + rows.status().ToString());
      return;
    }
    for (const std::string& row : rows.value()) {
      lines_.push_back("row: " + row);
    }
    RecordStats(stats);
  }

  void RecordScalar(const std::string& op, const Result<int64_t>& value,
                    const core::OpStats& stats) {
    Record(op,
           value.ok() ? Result<std::vector<std::string>>(
                            std::vector<std::string>{
                                std::to_string(value.value())})
                      : value.status(),
           stats);
  }

  void RecordStats(const core::OpStats& stats) {
    for (const auto& [name, value] : stats.counters.values()) {
      lines_.push_back("counter: " + name + "=" + std::to_string(value));
    }
    const mapreduce::JobCost& c = stats.cost;
    lines_.push_back(
        "cost: total_ms=" + FormatDouble(c.total_ms) +
        " map_ms=" + FormatDouble(c.map_makespan_ms) +
        " shuffle_ms=" + FormatDouble(c.shuffle_ms) +
        " reduce_ms=" + FormatDouble(c.reduce_makespan_ms) +
        " read=" + std::to_string(c.bytes_read) +
        " shuffled=" + std::to_string(c.bytes_shuffled) +
        " written=" + std::to_string(c.bytes_written) +
        " maps=" + std::to_string(c.num_map_tasks) +
        " reduces=" + std::to_string(c.num_reduce_tasks) +
        " jobs=" + std::to_string(stats.jobs_run));
  }

  std::vector<std::string> lines_;
};

}  // namespace shadoop::testing

#endif  // SHADOOP_TESTS_GOLDEN_WORKLOAD_H_
