#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/range_query.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;
using workload::Distribution;

std::multiset<std::string> BruteForceRange(const std::vector<Point>& points,
                                           const Envelope& query) {
  std::multiset<std::string> expected;
  for (const Point& p : points) {
    if (query.Contains(p)) expected.insert(PointToCsv(p));
  }
  return expected;
}

struct RangeCase {
  PartitionScheme scheme;
  Distribution distribution;
};

class RangeQuerySchemeTest : public ::testing::TestWithParam<RangeCase> {};

TEST_P(RangeQuerySchemeTest, MatchesBruteForceAcrossSelectivities) {
  testing::TestCluster cluster;
  const std::vector<Point> points = testing::WritePoints(
      &cluster.fs, "/pts", 2500, GetParam().distribution, 17);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", GetParam().scheme);

  Envelope space;
  for (const Point& p : points) space.ExpandToInclude(p);

  Random rng(3);
  for (double frac : {0.01, 0.1, 0.4, 1.0}) {
    const double w = space.Width() * frac;
    const double h = space.Height() * frac;
    const double x = space.min_x() + rng.NextDouble() * (space.Width() - w);
    const double y = space.min_y() + rng.NextDouble() * (space.Height() - h);
    const Envelope query(x, y, x + w, y + h);

    const auto expected = BruteForceRange(points, query);
    auto spatial =
        RangeQuerySpatial(&cluster.runner, file, query).ValueOrDie();
    EXPECT_EQ(std::multiset<std::string>(spatial.begin(), spatial.end()),
              expected)
        << "selectivity " << frac;
  }
}

std::vector<RangeCase> AllRangeCases() {
  std::vector<RangeCase> cases;
  for (PartitionScheme scheme : testing::AllSchemes()) {
    for (Distribution dist :
         {Distribution::kUniform, Distribution::kClustered}) {
      cases.push_back({scheme, dist});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, RangeQuerySchemeTest, ::testing::ValuesIn(AllRangeCases()),
    [](const ::testing::TestParamInfo<RangeCase>& info) {
      std::string name = index::PartitionSchemeName(info.param.scheme);
      name += "_";
      name += workload::DistributionName(info.param.distribution);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
      }
      return name;
    });

TEST(RangeQueryTest, HadoopMatchesBruteForce) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 1200);
  const Envelope query(2e5, 2e5, 6e5, 5e5);
  auto result = RangeQueryHadoop(&cluster.runner, "/pts",
                                 index::ShapeType::kPoint, query)
                    .ValueOrDie();
  EXPECT_EQ(std::multiset<std::string>(result.begin(), result.end()),
            BruteForceRange(points, query));
}

TEST(RangeQueryTest, SpatialReadsFewerBytesOnSelectiveQueries) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 5000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kStr);

  const Envelope query(1e5, 1e5, 1.5e5, 1.5e5);  // ~0.25% of the space.
  OpStats hadoop_stats;
  OpStats spatial_stats;
  auto hadoop = RangeQueryHadoop(&cluster.runner, "/pts",
                                 index::ShapeType::kPoint, query,
                                 &hadoop_stats)
                    .ValueOrDie();
  auto spatial =
      RangeQuerySpatial(&cluster.runner, file, query, &spatial_stats)
          .ValueOrDie();
  std::multiset<std::string> a(hadoop.begin(), hadoop.end());
  std::multiset<std::string> b(spatial.begin(), spatial.end());
  EXPECT_EQ(a, b);
  EXPECT_LT(spatial_stats.cost.bytes_read, hadoop_stats.cost.bytes_read / 4)
      << "pruning should skip most partitions";
  EXPECT_LT(spatial_stats.cost.num_map_tasks, hadoop_stats.cost.num_map_tasks);
}

TEST(RangeQueryTest, RectangleFileWithReplicationDeduplicates) {
  testing::TestCluster cluster;
  workload::RectGenOptions options;
  options.centers.count = 1000;
  options.centers.seed = 23;
  options.max_side_fraction = 0.06;
  const std::vector<Envelope> rects = workload::GenerateRectangles(options);
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/rects", workload::RectanglesToRecords(rects))
                  .ok());
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/rects", "/rects.idx", PartitionScheme::kQuadTree,
      index::ShapeType::kRectangle);

  const Envelope query(3e5, 3e5, 7e5, 7e5);
  std::multiset<std::string> expected;
  for (const Envelope& r : rects) {
    if (r.Intersects(query)) expected.insert(EnvelopeToCsv(r));
  }
  auto result = RangeQuerySpatial(&cluster.runner, file, query).ValueOrDie();
  EXPECT_EQ(std::multiset<std::string>(result.begin(), result.end()),
            expected)
      << "replicated rectangles must be reported exactly once";
}

TEST(RangeQueryTest, EmptyQueryRegionReturnsNothing) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 500);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kGrid);
  // A region far outside the data space.
  const Envelope query(2e6, 2e6, 3e6, 3e6);
  OpStats stats;
  auto result =
      RangeQuerySpatial(&cluster.runner, file, query, &stats).ValueOrDie();
  EXPECT_TRUE(result.empty());
  EXPECT_EQ(stats.cost.num_map_tasks, 0);
  EXPECT_EQ(stats.cost.bytes_read, 0u);
}

}  // namespace
}  // namespace shadoop::core
