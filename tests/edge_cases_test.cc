// Edge-case and property sweeps across modules: half-open tiling
// exactness, degenerate inputs, shuffle determinism with custom
// partitioners, and reducer lifecycle hooks.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/string_util.h"
#include "core/knn.h"
#include "core/range_query.h"
#include "geometry/wkt.h"
#include "index/grid_partitioner.h"
#include "index/kdtree_partitioner.h"
#include "test_util.h"

namespace shadoop {
namespace {

using index::PartitionScheme;

// ---------------------------------------------------------------------
// Half-open tiling: every point is accepted by exactly one cell when the
// edge flags are derived from the space bounds — the invariant the
// reference-point deduplication rests on.

class HalfOpenTilingTest : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(HalfOpenTilingTest, EveryPointOwnedByExactlyOneCell) {
  if (!index::IsDisjointScheme(GetParam())) GTEST_SKIP();
  auto partitioner = index::MakePartitioner(GetParam()).ValueOrDie();
  const Envelope space(0, 0, 100, 100);
  workload::PointGenOptions gen;
  gen.count = 500;
  gen.space = space;
  gen.seed = 12;
  const std::vector<Point> sample = workload::GeneratePoints(gen);
  ASSERT_TRUE(partitioner->Construct(space, sample, 12).ok());

  // Probe points include exact cell corners and edges.
  std::vector<Point> probes = sample;
  for (int id = 0; id < partitioner->NumCells(); ++id) {
    const Envelope cell = partitioner->CellExtent(id);
    probes.push_back(cell.BottomLeft());
    probes.push_back(cell.TopRight());
    probes.push_back(Point(cell.min_x(), cell.Center().y));
    probes.push_back(cell.Center());
  }
  for (const Point& p : probes) {
    if (!space.Contains(p)) continue;
    int owners = 0;
    for (int id = 0; id < partitioner->NumCells(); ++id) {
      const Envelope cell = partitioner->CellExtent(id);
      const bool right = cell.max_x() >= space.max_x();
      const bool top = cell.max_y() >= space.max_y();
      owners += cell.ContainsHalfOpen(p, right, top);
    }
    EXPECT_EQ(owners, 1) << "point " << p.x << "," << p.y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DisjointSchemes, HalfOpenTilingTest,
    ::testing::ValuesIn(testing::DisjointSchemes()),
    [](const ::testing::TestParamInfo<PartitionScheme>& info) {
      std::string name = index::PartitionSchemeName(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Degenerate datasets.

TEST(DegenerateDataTest, AllPointsIdentical) {
  testing::TestCluster cluster;
  std::vector<std::string> records(500, "123.5,456.5");
  ASSERT_TRUE(cluster.fs.WriteLines("/same", records).ok());
  const auto file = testing::BuildIndex(&cluster.runner, "/same", "/same.idx",
                                        PartitionScheme::kStr);
  // The index degenerates but must stay correct.
  auto hits = core::RangeQuerySpatial(&cluster.runner, file,
                                      Envelope(123, 456, 124, 457))
                  .ValueOrDie();
  EXPECT_EQ(hits.size(), 500u);
  auto knn =
      core::KnnSpatial(&cluster.runner, file, Point(0, 0), 3).ValueOrDie();
  ASSERT_EQ(knn.size(), 3u);
  EXPECT_DOUBLE_EQ(knn[0].distance, Distance(Point(0, 0),
                                             Point(123.5, 456.5)));
}

TEST(DegenerateDataTest, CollinearPoints) {
  testing::TestCluster cluster;
  std::vector<std::string> records;
  for (int i = 0; i < 800; ++i) {
    records.push_back(PointToCsv(Point(i * 10.0, 500.0)));
  }
  ASSERT_TRUE(cluster.fs.WriteLines("/line", records).ok());
  for (PartitionScheme scheme :
       {PartitionScheme::kGrid, PartitionScheme::kKdTree,
        PartitionScheme::kHilbert}) {
    std::string dest =
        std::string("/line.") + index::PartitionSchemeName(scheme);
    const auto file =
        testing::BuildIndex(&cluster.runner, "/line", dest, scheme);
    auto hits = core::RangeQuerySpatial(&cluster.runner, file,
                                        Envelope(95, 0, 205, 1000))
                    .ValueOrDie();
    EXPECT_EQ(hits.size(), 11u) << index::PartitionSchemeName(scheme);
  }
}

TEST(DegenerateDataTest, SingleRecordFile) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/one", {"5,5"}).ok());
  const auto file = testing::BuildIndex(&cluster.runner, "/one", "/one.idx",
                                        PartitionScheme::kQuadTree);
  EXPECT_EQ(file.global_index.NumPartitions(), 1u);
  auto knn =
      core::KnnSpatial(&cluster.runner, file, Point(0, 0), 5).ValueOrDie();
  EXPECT_EQ(knn.size(), 1u);
}

TEST(DegenerateDataTest, KnnWithKZeroIsEmpty) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 100);
  const auto file = testing::BuildIndex(&cluster.runner, "/pts", "/pts.idx",
                                        PartitionScheme::kGrid);
  EXPECT_TRUE(core::KnnSpatial(&cluster.runner, file, Point(0, 0), 0)
                  .ValueOrDie()
                  .empty());
}

// ---------------------------------------------------------------------
// MapReduce lifecycle details.

TEST(MapReduceLifecycleTest, BeginBlockOrdinalsFollowSplitOrder) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/a", {"a1", "a2"}).ok());
  ASSERT_TRUE(cluster.fs.WriteLines("/b", {"b1"}).ok());
  class TaggingMapper : public mapreduce::Mapper {
   public:
    void BeginBlock(size_t ordinal, mapreduce::MapContext&) override {
      ordinal_ = ordinal;
    }
    void Map(std::string_view record, mapreduce::MapContext& ctx) override {
      ctx.WriteOutput(std::to_string(ordinal_) + ":" + std::string(record));
    }

   private:
    size_t ordinal_ = 0;
  };
  mapreduce::JobConfig job;
  mapreduce::InputSplit split;
  split.blocks.push_back({"/a", 0});
  split.blocks.push_back({"/b", 0});
  job.splits.push_back(split);
  job.mapper = []() { return std::make_unique<TaggingMapper>(); };
  const auto result = cluster.runner.Run(job);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.output,
            (std::vector<std::string>{"0:a1", "0:a2", "1:b1"}));
}

TEST(MapReduceLifecycleTest, FinishHookRunsOncePerReduceTask) {
  testing::TestCluster cluster;
  ASSERT_TRUE(cluster.fs.WriteLines("/in", {"k1 v", "k2 v", "k3 v"}).ok());
  class SplitKeyMapper : public mapreduce::Mapper {
   public:
    void Map(std::string_view record, mapreduce::MapContext& ctx) override {
      const auto fields = SplitWhitespace(record);
      ctx.Emit(std::string(fields[0]), std::string(fields[1]));
    }
  };
  class CountingReducer : public mapreduce::Reducer {
   public:
    void Reduce(const std::string&, const std::vector<std::string>&,
                mapreduce::ReduceContext&) override {
      ++groups_;
    }
    void Finish(mapreduce::ReduceContext& ctx) override {
      ctx.Write("groups=" + std::to_string(groups_));
    }

   private:
    int groups_ = 0;
  };
  mapreduce::JobConfig job;
  job.splits = mapreduce::MakeBlockSplits(cluster.fs, "/in").ValueOrDie();
  job.mapper = []() { return std::make_unique<SplitKeyMapper>(); };
  job.reducer = []() { return std::make_unique<CountingReducer>(); };
  job.num_reducers = 1;
  const auto result = cluster.runner.Run(job);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.output, std::vector<std::string>{"groups=3"});
}

TEST(MapReduceLifecycleTest, CustomPartitionerRoutesDeterministically) {
  testing::TestCluster cluster;
  std::vector<std::string> lines;
  for (int i = 0; i < 60; ++i) lines.push_back("k" + std::to_string(i));
  ASSERT_TRUE(cluster.fs.WriteLines("/in", lines).ok());
  class EchoMapper : public mapreduce::Mapper {
   public:
    void Map(std::string_view record, mapreduce::MapContext& ctx) override {
      ctx.Emit(record, "1");
    }
  };
  class KeyReducer : public mapreduce::Reducer {
   public:
    void Reduce(const std::string& key, const std::vector<std::string>&,
                mapreduce::ReduceContext& ctx) override {
      ctx.Write(key);
    }
  };
  mapreduce::JobConfig job;
  job.splits = mapreduce::MakeBlockSplits(cluster.fs, "/in").ValueOrDie();
  job.mapper = []() { return std::make_unique<EchoMapper>(); };
  job.reducer = []() { return std::make_unique<KeyReducer>(); };
  job.num_reducers = 4;
  job.partitioner = [](std::string_view key, int reducers) {
    // Route by the numeric suffix.
    return static_cast<int>(ParseInt64(key.substr(1)).ValueOrDie() % reducers);
  };
  const auto r1 = cluster.runner.Run(job);
  const auto r2 = cluster.runner.Run(job);
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(std::set<std::string>(r1.output.begin(), r1.output.end()).size(),
            60u);
}

}  // namespace
}  // namespace shadoop
