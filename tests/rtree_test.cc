#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "index/rtree.h"

namespace shadoop::index {
namespace {

std::vector<RTree::Entry> RandomEntries(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<RTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.NextDouble(0, 100);
    const double y = rng.NextDouble(0, 100);
    const double w = rng.NextDouble(0, 2);
    const double h = rng.NextDouble(0, 2);
    entries.push_back({Envelope(x, y, x + w, y + h),
                       static_cast<uint32_t>(i)});
  }
  return entries;
}

std::set<uint32_t> BruteForceSearch(const std::vector<RTree::Entry>& entries,
                                    const Envelope& query) {
  std::set<uint32_t> hits;
  for (const RTree::Entry& e : entries) {
    if (e.box.Intersects(query)) hits.insert(e.payload);
  }
  return hits;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.IsEmpty());
  std::vector<uint32_t> out;
  EXPECT_EQ(tree.Search(Envelope(0, 0, 1, 1), &out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.NearestNeighbors(Point(0, 0), 3).empty());
}

TEST(RTreeTest, SearchMatchesBruteForce) {
  const auto entries = RandomEntries(2000, 7);
  const RTree tree(entries);
  EXPECT_EQ(tree.Bounds(), [&] {
    Envelope e;
    for (const auto& entry : entries) e.ExpandToInclude(entry.box);
    return e;
  }());
  Random rng(8);
  for (int q = 0; q < 50; ++q) {
    const double x = rng.NextDouble(0, 90);
    const double y = rng.NextDouble(0, 90);
    const Envelope query(x, y, x + rng.NextDouble(0, 20),
                         y + rng.NextDouble(0, 20));
    std::vector<uint32_t> out;
    tree.Search(query, &out);
    EXPECT_EQ(std::set<uint32_t>(out.begin(), out.end()),
              BruteForceSearch(entries, query));
  }
}

TEST(RTreeTest, SearchVisitsFewNodesForSelectiveQueries) {
  const auto entries = RandomEntries(10000, 3);
  const RTree tree(entries);
  std::vector<uint32_t> out;
  const size_t visited = tree.Search(Envelope(50, 50, 51, 51), &out);
  // A point-ish query must not traverse the whole tree (~10000/32 leaves).
  EXPECT_LT(visited, 60u);
}

TEST(RTreeTest, NearestNeighborsMatchBruteForce) {
  // Point entries: exact distances.
  Random rng(12);
  std::vector<RTree::Entry> entries;
  std::vector<Point> points;
  for (uint32_t i = 0; i < 500; ++i) {
    const Point p(rng.NextDouble(0, 100), rng.NextDouble(0, 100));
    points.push_back(p);
    entries.push_back({Envelope::FromPoint(p), i});
  }
  const RTree tree(entries);
  const Point q(33, 66);
  const auto knn = tree.NearestNeighbors(q, 10);
  ASSERT_EQ(knn.size(), 10u);
  std::vector<std::pair<double, uint32_t>> expected;
  for (uint32_t i = 0; i < points.size(); ++i) {
    expected.push_back({Distance(points[i], q), i});
  }
  std::sort(expected.begin(), expected.end());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_DOUBLE_EQ(Distance(points[knn[i]], q), expected[i].first);
  }
}

TEST(RTreeTest, KnnLargerThanTreeReturnsAll) {
  const auto entries = RandomEntries(20, 4);
  const RTree tree(entries);
  EXPECT_EQ(tree.NearestNeighbors(Point(0, 0), 100).size(), 20u);
}

TEST(RTreeTest, SingleEntryAndSmallCapacity) {
  RTree tree({{Envelope(1, 1, 2, 2), 9}}, /*leaf_capacity=*/2);
  std::vector<uint32_t> out;
  tree.Search(Envelope(0, 0, 3, 3), &out);
  EXPECT_EQ(out, std::vector<uint32_t>{9});

  // Deep tree via tiny capacity.
  const auto entries = RandomEntries(300, 5);
  const RTree deep(entries, 2);
  out.clear();
  deep.Search(Envelope(0, 0, 100, 102), &out);
  EXPECT_EQ(out.size(), 300u);
}

}  // namespace
}  // namespace shadoop::index
