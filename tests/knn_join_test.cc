#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/knn_join.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;

/// Brute-force reference: sorted distances of the k nearest B points per
/// A point.
std::map<std::string, std::vector<double>> BruteForceKnnJoin(
    const std::vector<Point>& a, const std::vector<Point>& b, size_t k) {
  std::map<std::string, std::vector<double>> expected;
  for (const Point& pa : a) {
    std::vector<double> dists;
    dists.reserve(b.size());
    for (const Point& pb : b) dists.push_back(Distance(pa, pb));
    std::sort(dists.begin(), dists.end());
    dists.resize(std::min(k, dists.size()));
    expected[PointToCsv(pa)] = std::move(dists);
  }
  return expected;
}

std::map<std::string, std::vector<double>> GroupAnswers(
    const std::vector<KnnJoinAnswer>& answers) {
  std::map<std::string, std::vector<std::pair<int, double>>> ranked;
  for (const KnnJoinAnswer& answer : answers) {
    ranked[answer.left].emplace_back(answer.rank, answer.distance);
  }
  std::map<std::string, std::vector<double>> grouped;
  for (auto& [left, pairs] : ranked) {
    std::sort(pairs.begin(), pairs.end());
    std::vector<double> dists;
    for (const auto& [rank, dist] : pairs) dists.push_back(dist);
    grouped[left] = std::move(dists);
  }
  return grouped;
}

struct KnnJoinCase {
  PartitionScheme scheme_a;
  PartitionScheme scheme_b;
  size_t k;
};

class KnnJoinSchemeTest : public ::testing::TestWithParam<KnnJoinCase> {};

TEST_P(KnnJoinSchemeTest, MatchesBruteForce) {
  testing::TestCluster cluster;
  const std::vector<Point> a = testing::WritePoints(
      &cluster.fs, "/a", 400, workload::Distribution::kClustered, 1);
  const std::vector<Point> b = testing::WritePoints(
      &cluster.fs, "/b", 600, workload::Distribution::kClustered, 2);
  const auto file_a = testing::BuildIndex(&cluster.runner, "/a", "/a.idx",
                                          GetParam().scheme_a);
  const auto file_b = testing::BuildIndex(&cluster.runner, "/b", "/b.idx",
                                          GetParam().scheme_b);
  const auto answers =
      KnnJoinSpatial(&cluster.runner, file_a, file_b, GetParam().k)
          .ValueOrDie();
  const auto grouped = GroupAnswers(answers);
  const auto expected = BruteForceKnnJoin(a, b, GetParam().k);
  ASSERT_EQ(grouped.size(), expected.size());
  for (const auto& [left, dists] : expected) {
    auto it = grouped.find(left);
    ASSERT_NE(it, grouped.end()) << left;
    ASSERT_EQ(it->second.size(), dists.size()) << left;
    for (size_t i = 0; i < dists.size(); ++i) {
      EXPECT_NEAR(it->second[i], dists[i], 1e-9) << left << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemeMatrix, KnnJoinSchemeTest,
    ::testing::Values(
        KnnJoinCase{PartitionScheme::kStr, PartitionScheme::kStr, 3},
        KnnJoinCase{PartitionScheme::kGrid, PartitionScheme::kQuadTree, 5},
        KnnJoinCase{PartitionScheme::kHilbert, PartitionScheme::kKdTree, 1},
        KnnJoinCase{PartitionScheme::kStr, PartitionScheme::kGrid, 16}),
    [](const ::testing::TestParamInfo<KnnJoinCase>& info) {
      std::string name = index::PartitionSchemeName(info.param.scheme_a);
      name += "_";
      name += index::PartitionSchemeName(info.param.scheme_b);
      name += "_k" + std::to_string(info.param.k);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
      }
      return name;
    });

TEST(KnnJoinTest, KLargerThanBReturnsAllOfB) {
  testing::TestCluster cluster;
  const std::vector<Point> a =
      testing::WritePoints(&cluster.fs, "/a", 50, workload::Distribution::kUniform, 3);
  testing::WritePoints(&cluster.fs, "/b", 7, workload::Distribution::kUniform,
                       4);
  const auto file_a = testing::BuildIndex(&cluster.runner, "/a", "/a.idx",
                                          PartitionScheme::kGrid);
  const auto file_b = testing::BuildIndex(&cluster.runner, "/b", "/b.idx",
                                          PartitionScheme::kGrid);
  const auto answers =
      KnnJoinSpatial(&cluster.runner, file_a, file_b, 100).ValueOrDie();
  EXPECT_EQ(answers.size(), a.size() * 7);
}

TEST(KnnJoinTest, DegenerateCases) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/a", 100);
  testing::WritePoints(&cluster.fs, "/b", 100, workload::Distribution::kUniform, 9);
  const auto file_a = testing::BuildIndex(&cluster.runner, "/a", "/a.idx",
                                          PartitionScheme::kStr);
  const auto file_b = testing::BuildIndex(&cluster.runner, "/b", "/b.idx",
                                          PartitionScheme::kStr);
  EXPECT_TRUE(
      KnnJoinSpatial(&cluster.runner, file_a, file_b, 0).ValueOrDie().empty());

  // Non-point inputs are rejected.
  workload::RectGenOptions rects;
  rects.centers.count = 50;
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/r", workload::RectanglesToRecords(
                                        workload::GenerateRectangles(rects)))
                  .ok());
  const auto file_r =
      testing::BuildIndex(&cluster.runner, "/r", "/r.idx",
                          PartitionScheme::kStr, index::ShapeType::kRectangle);
  EXPECT_TRUE(KnnJoinSpatial(&cluster.runner, file_a, file_r, 3)
                  .status()
                  .IsInvalidArgument());
}

TEST(KnnJoinTest, BoundRoundLimitsVerifyFanIn) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/a", 2000,
                       workload::Distribution::kClustered, 21);
  testing::WritePoints(&cluster.fs, "/b", 3000,
                       workload::Distribution::kClustered, 21);  // Same seed:
  // B clusters coincide with A clusters, so bounds are tight.
  const auto file_a = testing::BuildIndex(&cluster.runner, "/a", "/a.idx",
                                          PartitionScheme::kStr);
  const auto file_b = testing::BuildIndex(&cluster.runner, "/b", "/b.idx",
                                          PartitionScheme::kStr);
  OpStats stats;
  const auto answers =
      KnnJoinSpatial(&cluster.runner, file_a, file_b, 4, &stats).ValueOrDie();
  EXPECT_EQ(answers.size(), 2000u * 4);
  EXPECT_EQ(stats.jobs_run, 2);
  // The verify round must not degenerate to the full cross product of
  // partitions.
  const size_t na = file_a.global_index.NumPartitions();
  const size_t nb = file_b.global_index.NumPartitions();
  EXPECT_LT(static_cast<size_t>(stats.cost.bytes_read),
            (na * nb / 2) * cluster.fs.config().block_size)
      << "bound round should keep the fan-in well below all-pairs";
}

}  // namespace
}  // namespace shadoop::core
