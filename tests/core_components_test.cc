#include <gtest/gtest.h>

#include "core/file_mbr.h"
#include "core/knn.h"
#include "core/range_query.h"
#include "core/spatial_file_splitter.h"
#include "core/spatial_record_reader.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;

TEST(SplitExtentTest, CodecRoundTrips) {
  SplitExtent extent;
  extent.cell = Envelope(1, 2, 3, 4);
  extent.mbr = Envelope(1.5, 2.5, 2.5, 3.5);
  extent.file_mbr = Envelope(0, 0, 10, 10);
  const SplitExtent parsed =
      ParseSplitExtent(EncodeSplitExtent(extent)).ValueOrDie();
  EXPECT_EQ(parsed.cell, extent.cell);
  EXPECT_EQ(parsed.mbr, extent.mbr);
  EXPECT_EQ(parsed.file_mbr, extent.file_mbr);
  EXPECT_FALSE(ParseSplitExtent("1,2,3,4;5,6,7,8").ok());
  EXPECT_FALSE(ParseSplitExtent("garbage").ok());
}

TEST(SpatialSplitterTest, SplitsCarryPartitionGeometry) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 2000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kStr);
  const auto splits = SpatialSplits(file, KeepAllFilter).ValueOrDie();
  ASSERT_EQ(splits.size(), file.global_index.NumPartitions());
  for (size_t i = 0; i < splits.size(); ++i) {
    const index::Partition& p = file.global_index.partitions()[i];
    ASSERT_EQ(splits[i].blocks.size(), 1u);
    EXPECT_EQ(splits[i].blocks[0].block_index, p.block_index);
    EXPECT_EQ(splits[i].estimated_records, p.num_records);
    const SplitExtent extent =
        ParseSplitExtent(splits[i].meta).ValueOrDie();
    EXPECT_EQ(extent.mbr, p.mbr);
    EXPECT_EQ(extent.cell, p.cell);
  }
}

TEST(SpatialSplitterTest, RejectsBadFilterOutput) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 500);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kGrid);
  FilterFunction bad = [](const index::GlobalIndex&) {
    return std::vector<int>{99999};
  };
  EXPECT_TRUE(SpatialSplits(file, bad).status().IsInvalidArgument());
}

TEST(PairSplitsTest, CoversBothBlocksWithCombinedMeta) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 2000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kGrid);
  ASSERT_GE(file.global_index.NumPartitions(), 2u);
  const auto splits = PairSplits(file, file, {{0, 1}}).ValueOrDie();
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].blocks.size(), 2u);
  const size_t bar = splits[0].meta.find('|');
  ASSERT_NE(bar, std::string::npos);
  EXPECT_TRUE(ParseSplitExtent(splits[0].meta.substr(0, bar)).ok());
  EXPECT_TRUE(ParseSplitExtent(splits[0].meta.substr(bar + 1)).ok());
  EXPECT_TRUE(PairSplits(file, file, {{0, 12345}})
                  .status()
                  .IsInvalidArgument());
}

TEST(SpatialRecordReaderTest, TypedViewsAndBadRecordCounting) {
  SpatialRecordReader reader(index::ShapeType::kPoint);
  reader.Add("1,2");
  reader.Add("not-a-point");
  reader.Add("3,4");
  const std::vector<Point> points = reader.Points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], Point(1, 2));
  EXPECT_EQ(reader.bad_records(), 1u);

  // Envelope payloads index the raw records even with gaps.
  const auto entries = reader.Envelopes();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[1].payload, 2u);
  EXPECT_EQ(reader.records()[entries[1].payload], "3,4");

  const index::RTree local = reader.BuildLocalIndex();
  std::vector<uint32_t> hits;
  local.Search(Envelope(0, 0, 2, 3), &hits);
  EXPECT_EQ(hits, std::vector<uint32_t>{0});
}

TEST(FileMbrTest, MatchesGeneratedBounds) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 700);
  Envelope expected;
  for (const Point& p : points) expected.ExpandToInclude(p);
  OpStats stats;
  const Envelope mbr = ComputeFileMbr(&cluster.runner, "/pts",
                                      index::ShapeType::kPoint, &stats)
                           .ValueOrDie();
  EXPECT_EQ(mbr, expected);
  EXPECT_EQ(stats.jobs_run, 1);
  EXPECT_TRUE(ComputeFileMbr(&cluster.runner, "/nope",
                             index::ShapeType::kPoint)
                  .status()
                  .IsNotFound());
}

// ---------------------------------------------------------------------
// Failure injection through whole operations.

TEST(FaultToleranceTest, OperationsSurviveDatanodeLossWithinReplication) {
  testing::TestCluster cluster;  // 8 datanodes, replication 3.
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 3000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kStr);

  cluster.fs.SetNodeAlive(0, false);
  cluster.fs.SetNodeAlive(3, false);

  const Envelope query(1e5, 1e5, 6e5, 6e5);
  auto result = RangeQuerySpatial(&cluster.runner, file, query).ValueOrDie();
  size_t expected = 0;
  for (const Point& p : points) expected += query.Contains(p);
  EXPECT_EQ(result.size(), expected);

  auto knn = KnnSpatial(&cluster.runner, file, Point(5e5, 5e5), 5)
                 .ValueOrDie();
  EXPECT_EQ(knn.size(), 5u);
}

TEST(FaultToleranceTest, OperationFailsCleanlyWhenAllReplicasDie) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 2000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kStr);
  for (int node = 0; node < 8; ++node) cluster.fs.SetNodeAlive(node, false);
  const auto result =
      RangeQuerySpatial(&cluster.runner, file, Envelope(0, 0, 1e6, 1e6));
  EXPECT_TRUE(result.status().IsIoError());
}

TEST(FaultToleranceTest, TransientTaskFaultsDoNotChangeResults) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 1000);
  // Build a job manually with a fault injector killing every first
  // attempt; the retry must produce exactly the same output.
  mapreduce::JobConfig job;
  job.splits = mapreduce::MakeBlockSplits(cluster.fs, "/pts").ValueOrDie();
  class EchoMapper : public mapreduce::Mapper {
   public:
    void Map(std::string_view record, mapreduce::MapContext& ctx) override {
      ctx.WriteOutput(record);
    }
  };
  job.mapper = []() { return std::make_unique<EchoMapper>(); };
  job.fault_injector = [](int, int attempt) { return attempt == 1; };
  const mapreduce::JobResult with_faults = cluster.runner.Run(job);
  ASSERT_TRUE(with_faults.status.ok());
  job.fault_injector = nullptr;
  const mapreduce::JobResult clean = cluster.runner.Run(job);
  ASSERT_TRUE(clean.status.ok());
  EXPECT_EQ(with_faults.output, clean.output);
}

// ---------------------------------------------------------------------
// Cost model properties over whole operations.

TEST(CostModelTest, MoreSlotsNeverIncreaseSimulatedTime) {
  double previous = std::numeric_limits<double>::infinity();
  for (int slots : {1, 4, 16}) {
    hdfs::FileSystem fs(testing::TestCluster::MakeConfig(4 * 1024));
    mapreduce::ClusterConfig cluster_config;
    cluster_config.num_slots = slots;
    mapreduce::JobRunner runner(&fs, cluster_config);
    workload::PointGenOptions gen;
    gen.count = 4000;
    SHADOOP_CHECK_OK(workload::WritePointFile(&fs, "/pts", gen));
    OpStats stats;
    auto result = RangeQueryHadoop(&runner, "/pts", index::ShapeType::kPoint,
                                   Envelope(0, 0, 1e6, 1e6), &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(stats.cost.total_ms, previous + 1e-6) << slots << " slots";
    previous = stats.cost.total_ms;
  }
}

TEST(CostModelTest, SimulatedCostIsDeterministicAcrossRuns) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 2000);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kQuadTree);
  const Envelope query(2e5, 2e5, 5e5, 5e5);
  OpStats first;
  OpStats second;
  ASSERT_TRUE(RangeQuerySpatial(&cluster.runner, file, query, &first).ok());
  ASSERT_TRUE(RangeQuerySpatial(&cluster.runner, file, query, &second).ok());
  EXPECT_DOUBLE_EQ(first.cost.total_ms, second.cost.total_ms);
  EXPECT_EQ(first.cost.bytes_read, second.cost.bytes_read);
}

}  // namespace
}  // namespace shadoop::core
