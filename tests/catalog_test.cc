#include "catalog/dataset_catalog.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "core/aggregate_op.h"
#include "core/range_query.h"
#include "pigeon/executor.h"
#include "test_util.h"

namespace shadoop::catalog {
namespace {

using index::PartitionScheme;
using index::SpatialFileInfo;

std::multiset<std::string> Sorted(const std::vector<std::string>& lines) {
  return {lines.begin(), lines.end()};
}

std::vector<Point> MakePoints(size_t count, uint64_t seed,
                              workload::Distribution dist =
                                  workload::Distribution::kUniform,
                              Envelope space = Envelope(0, 0, 1e6, 1e6)) {
  workload::PointGenOptions options;
  options.distribution = dist;
  options.count = count;
  options.seed = seed;
  options.space = space;
  return workload::GeneratePoints(options);
}

void WriteRecords(hdfs::FileSystem* fs, const std::string& path,
                  const std::vector<Point>& points) {
  SHADOOP_CHECK_OK(fs->WriteLines(path, workload::PointsToRecords(points)));
}

index::IndexBuildOptions BuildOptions(PartitionScheme scheme) {
  index::IndexBuildOptions options;
  options.scheme = scheme;
  options.shape = index::ShapeType::kPoint;
  return options;
}

/// The query rectangles every parity check runs: a corner, a center box,
/// a thin slab and the full space.
std::vector<Envelope> ParityQueries() {
  return {Envelope(0, 0, 2e5, 2e5), Envelope(3e5, 3e5, 7e5, 7e5),
          Envelope(0, 4.5e5, 1e6, 5.5e5), Envelope(0, 0, 1e6, 1e6)};
}

// ---------------------------------------------------------------------------
// Core invariant: a dataset grown through N append batches answers every
// query exactly like the same records bulk-loaded once — same rows, same
// matching counters — for a disjoint grid, an overlapping STR layout and
// a quadtree.

class IncrementalParityTest
    : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(IncrementalParityTest, AppendedEqualsBulkLoaded) {
  const PartitionScheme scheme = GetParam();
  const std::vector<std::vector<Point>> batches = {
      MakePoints(1200, 11), MakePoints(900, 22, workload::Distribution::kClustered),
      MakePoints(700, 33, workload::Distribution::kGaussian)};
  std::vector<Point> all;
  for (const auto& batch : batches) {
    all.insert(all.end(), batch.begin(), batch.end());
  }

  testing::TestCluster bulk_cluster;
  WriteRecords(&bulk_cluster.fs, "/all", all);
  index::IndexBuilder bulk_builder(&bulk_cluster.runner);
  const SpatialFileInfo bulk =
      bulk_builder.Build("/all", "/all.idx", BuildOptions(scheme)).ValueOrDie();

  testing::TestCluster inc_cluster;
  for (size_t i = 0; i < batches.size(); ++i) {
    WriteRecords(&inc_cluster.fs, "/b" + std::to_string(i), batches[i]);
  }
  DatasetCatalog catalog(&inc_cluster.runner);
  SHADOOP_CHECK_OK(catalog
                       .Create("pts", "/b0", "/pts.idx", BuildOptions(scheme))
                       .status());
  for (size_t i = 1; i < batches.size(); ++i) {
    const auto version = catalog.Append("pts", "/b" + std::to_string(i));
    SHADOOP_CHECK_OK(version.status());
    EXPECT_EQ(version.value(), i + 1);
  }
  const SpatialFileInfo inc = catalog.Snapshot("pts").ValueOrDie();

  for (const Envelope& query : ParityQueries()) {
    core::OpStats bulk_stats;
    core::OpStats inc_stats;
    const auto bulk_rows =
        core::RangeQuerySpatial(&bulk_cluster.runner, bulk, query, &bulk_stats)
            .ValueOrDie();
    const auto inc_rows =
        core::RangeQuerySpatial(&inc_cluster.runner, inc, query, &inc_stats)
            .ValueOrDie();
    EXPECT_EQ(Sorted(bulk_rows), Sorted(inc_rows));
    EXPECT_EQ(bulk_stats.counters.Get("range.matches"),
              inc_stats.counters.Get("range.matches"));
    EXPECT_EQ(bulk_stats.counters.Get("range.bad_records"),
              inc_stats.counters.Get("range.bad_records"));

    const int64_t bulk_count =
        core::RangeCountSpatial(&bulk_cluster.runner, bulk, query)
            .ValueOrDie();
    const int64_t inc_count =
        core::RangeCountSpatial(&inc_cluster.runner, inc, query).ValueOrDie();
    EXPECT_EQ(bulk_count, inc_count);
    EXPECT_EQ(bulk_count, static_cast<int64_t>(bulk_rows.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(GridStrQuadtree, IncrementalParityTest,
                         ::testing::Values(PartitionScheme::kGrid,
                                           PartitionScheme::kStr,
                                           PartitionScheme::kQuadTree),
                         [](const auto& info) {
                           std::string name =
                               index::PartitionSchemeName(info.param);
                           for (char& c : name) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = 'x';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Snapshot isolation: a query pinned to version V keeps returning
// byte-identical results while concurrent appends create V+1, V+2, ...
// (Runs under the TSan suite; the catalog and filesystem are shared, the
// query thread uses its own runner.)

TEST(DatasetCatalogTest, PinnedSnapshotIsStableUnderConcurrentAppend) {
  testing::TestCluster cluster;
  mapreduce::JobRunner query_runner(&cluster.fs,
                                    testing::TestCluster::MakeCluster(4));
  WriteRecords(&cluster.fs, "/b0", MakePoints(1500, 7));
  for (int i = 1; i <= 3; ++i) {
    WriteRecords(&cluster.fs, "/b" + std::to_string(i),
                 MakePoints(600, 100 + i));
  }

  DatasetCatalog catalog(&cluster.runner);
  SHADOOP_CHECK_OK(
      catalog.Create("pts", "/b0", "/pts.idx", BuildOptions(PartitionScheme::kGrid))
          .status());
  const SpatialFileInfo pinned = catalog.Snapshot("pts", 1).ValueOrDie();
  const Envelope query(2e5, 2e5, 8e5, 8e5);
  const std::vector<std::string> baseline =
      core::RangeQuerySpatial(&query_runner, pinned, query).ValueOrDie();

  std::thread ingester([&] {
    for (int i = 1; i <= 3; ++i) {
      SHADOOP_CHECK_OK(
          catalog.Append("pts", "/b" + std::to_string(i)).status());
    }
  });
  for (int iter = 0; iter < 8; ++iter) {
    const std::vector<std::string> rows =
        core::RangeQuerySpatial(&query_runner, pinned, query).ValueOrDie();
    ASSERT_EQ(rows, baseline) << "iteration " << iter;
  }
  ingester.join();

  EXPECT_EQ(catalog.LatestVersion("pts").ValueOrDie(), 4u);
  // The pinned handle still answers identically after all appends landed.
  EXPECT_EQ(core::RangeQuerySpatial(&query_runner, pinned, query).ValueOrDie(),
            baseline);
  // And so does re-resolving version 1 through the catalog.
  const SpatialFileInfo v1 = catalog.Snapshot("pts", 1).ValueOrDie();
  EXPECT_EQ(core::RangeQuerySpatial(&query_runner, v1, query).ValueOrDie(),
            baseline);
}

// ---------------------------------------------------------------------------
// Skew trigger: a heavily clustered batch degrades one partition far past
// threshold * mean, so the append splits it (and only it) instead of
// rebuilding — and the grown dataset still answers exactly.

TEST(DatasetCatalogTest, SkewedAppendSplitsDegradedPartitions) {
  testing::TestCluster cluster;
  WriteRecords(&cluster.fs, "/b0", MakePoints(2000, 5));
  WriteRecords(&cluster.fs, "/hot",
               MakePoints(2000, 6, workload::Distribution::kUniform,
                          Envelope(4e5, 4e5, 4.2e5, 4.2e5)));

  // A 2%-wide hot box needs several rounds of midpoint halving before the
  // covering cell is small enough to cut through the cluster.
  IngestOptions options;
  options.max_split_rounds = 12;
  DatasetCatalog catalog(&cluster.runner, options);
  SHADOOP_CHECK_OK(
      catalog.Create("pts", "/b0", "/pts.idx", BuildOptions(PartitionScheme::kGrid))
          .status());
  const VersionStats before = catalog.Stats("pts").ValueOrDie();

  core::OpStats stats;
  SHADOOP_CHECK_OK(catalog.Append("pts", "/hot", &stats).status());
  const VersionStats after = catalog.Stats("pts").ValueOrDie();

  EXPECT_GT(stats.counters.Get("ingest.split_partitions"), 0);
  EXPECT_GT(after.num_partitions, before.num_partitions);
  EXPECT_EQ(after.num_records, before.num_records + 2000);
  // The splits drove the skew metric back under the trigger threshold —
  // the untreated layout would have piled all 2000 hot records into one
  // partition.
  EXPECT_LE(after.skew, options.skew_threshold + 1e-9);
  EXPECT_LT(after.max_partition_records, 2000u);

  const SpatialFileInfo v2 = catalog.Snapshot("pts").ValueOrDie();
  const auto rows = core::RangeQuerySpatial(&cluster.runner, v2,
                                            Envelope(0, 0, 1e6, 1e6))
                        .ValueOrDie();
  EXPECT_EQ(rows.size(), 4000u);
}

// ---------------------------------------------------------------------------
// Durability: per-version masters plus the @current pointer let a fresh
// catalog reattach the whole lineage.

TEST(DatasetCatalogTest, ReopensPersistedVersionLineage) {
  testing::TestCluster cluster;
  WriteRecords(&cluster.fs, "/b0", MakePoints(1000, 1));
  WriteRecords(&cluster.fs, "/b1", MakePoints(500, 2));
  WriteRecords(&cluster.fs, "/b2", MakePoints(500, 3));

  {
    DatasetCatalog catalog(&cluster.runner);
    SHADOOP_CHECK_OK(catalog
                         .Create("pts", "/b0", "/pts.idx",
                                 BuildOptions(PartitionScheme::kStr))
                         .status());
    SHADOOP_CHECK_OK(catalog.Append("pts", "/b1").status());
    SHADOOP_CHECK_OK(catalog.Append("pts", "/b2").status());
  }
  EXPECT_TRUE(cluster.fs.Exists(DatasetCatalog::CurrentPathFor("/pts.idx")));
  EXPECT_TRUE(
      cluster.fs.Exists(DatasetCatalog::VersionMasterPathFor("/pts.idx", 2)));
  EXPECT_TRUE(
      cluster.fs.Exists(DatasetCatalog::VersionMasterPathFor("/pts.idx", 3)));

  DatasetCatalog reopened(&cluster.runner);
  SHADOOP_CHECK_OK(reopened.Open("pts", "/pts.idx"));
  EXPECT_EQ(reopened.LatestVersion("pts").ValueOrDie(), 3u);
  EXPECT_EQ(reopened.Stats("pts", 1).ValueOrDie().num_records, 1000u);
  EXPECT_EQ(reopened.Stats("pts", 2).ValueOrDie().num_records, 1500u);
  EXPECT_EQ(reopened.Stats("pts", 3).ValueOrDie().num_records, 2000u);
  EXPECT_TRUE(reopened.Snapshot("pts", 5).status().IsNotFound());

  // Version 2 re-read from disk answers like the in-memory lineage did.
  const SpatialFileInfo v2 = reopened.Snapshot("pts", 2).ValueOrDie();
  const auto rows = core::RangeQuerySpatial(&cluster.runner, v2,
                                            Envelope(0, 0, 1e6, 1e6))
                        .ValueOrDie();
  EXPECT_EQ(rows.size(), 1500u);
}

// ---------------------------------------------------------------------------
// Pigeon surface: LOAD ... APPEND creates versions, bindings pin their
// snapshot, SET snapshot_version re-pins, EXPLAIN surfaces version+skew.

TEST(PigeonCatalogTest, AppendAndSnapshotVersionKnob) {
  testing::TestCluster cluster;
  WriteRecords(&cluster.fs, "/pts", MakePoints(1000, 9));
  WriteRecords(&cluster.fs, "/batch", MakePoints(400, 10));

  pigeon::Executor executor(&cluster.runner);
  const auto report = executor
                          .Execute(R"(
    raw = LOAD '/pts' AS POINT;
    idx = INDEX raw WITH GRID;
    grown = LOAD '/batch' APPEND idx;
    c_pinned = COUNT idx RECTANGLE(0, 0, 1000000, 1000000);
    c_grown = COUNT grown RECTANGLE(0, 0, 1000000, 1000000);
    DUMP c_pinned;
    DUMP c_grown;
    SET snapshot_version 2;
    c_repinned = COUNT idx RECTANGLE(0, 0, 1000000, 1000000);
    DUMP c_repinned;
    SET snapshot_version 0;
    EXPLAIN grown;
  )")
                          .ValueOrDie();

  ASSERT_EQ(report.dump_output.size(), 4u);
  EXPECT_EQ(report.dump_output[0], "1000");  // `idx` stays pinned at v1.
  EXPECT_EQ(report.dump_output[1], "1400");  // `grown` sees the append.
  EXPECT_EQ(report.dump_output[2], "1400");  // v1 binding re-pinned to v2.
  const std::string& explain = report.dump_output[3];
  EXPECT_NE(explain.find("version=2/2"), std::string::npos) << explain;
  EXPECT_NE(explain.find("skew="), std::string::npos) << explain;
  EXPECT_NE(explain.find("; ingest: "), std::string::npos) << explain;

  // An append into a non-catalog dataset is a user error.
  const auto bad = executor.Execute("oops = LOAD '/batch' APPEND raw;");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("catalog"), std::string::npos);

  // A version that does not exist fails at lookup time.
  const auto missing = executor.Execute(
      "SET snapshot_version 9; c = COUNT idx RECTANGLE(0, 0, 1, 1);");
  EXPECT_FALSE(missing.ok());
}

}  // namespace
}  // namespace shadoop::catalog
