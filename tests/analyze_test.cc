// Unit tests for the cross-TU analyzer (tools/analyze, DESIGN.md §16).
//
// Fixture trees are synthetic in-memory files fed through AddFile; the
// `analysis_test` ctest target separately proves the real tree is clean
// against its baseline — these tests prove the analyses would notice if
// it were not. The Server/Optimizer wall-clock scenarios at the bottom
// are the retired path-scoped lint rules' cases (PR 8/9), kept as
// regression fixtures against the taint analysis that subsumed them.
#include "analyze/analyzer.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lint/lint_engine.h"

namespace shadoop::analyze {
namespace {

using lint::Finding;

std::vector<std::string> Rules(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  for (const Finding& finding : findings) ids.push_back(finding.rule);
  return ids;
}

bool HasRule(const std::vector<Finding>& findings, const std::string& rule) {
  const std::vector<std::string> ids = Rules(findings);
  return std::find(ids.begin(), ids.end(), rule) != ids.end();
}

const Finding* FindRule(const std::vector<Finding>& findings,
                        const std::string& rule) {
  for (const Finding& finding : findings) {
    if (finding.rule == rule) return &finding;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Registry & docs

TEST(AnalyzeRegistry, ExposesEveryRule) {
  Analyzer analyzer;
  std::vector<std::string> ids;
  for (const lint::RuleInfo& rule : analyzer.rules()) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.summary.empty());
    ids.push_back(rule.id);
  }
  for (const char* expected :
       {"determinism-taint", "layer-violation", "layer-undeclared",
        "include-cycle", "stale-baseline"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << "missing rule " << expected;
  }
}

// Doc drift is a test failure: every registered lint rule needs its
// DESIGN.md §11.2 table row, every analyzer rule its §16 row. Rows name
// the id in backticks as the first cell: "| `rule-id` ...".
TEST(AnalyzeRegistry, EveryRuleHasADesignDocRow) {
  std::ifstream in(SHADOOP_SOURCE_DIR "/DESIGN.md", std::ios::binary);
  ASSERT_TRUE(in) << "cannot read DESIGN.md";
  std::ostringstream contents;
  contents << in.rdbuf();
  const std::string design = contents.str();

  std::vector<std::string> ids;
  const lint::Linter linter;
  for (const lint::RuleInfo& rule : linter.rules()) ids.push_back(rule.id);
  const Analyzer analyzer;
  for (const lint::RuleInfo& rule : analyzer.rules()) ids.push_back(rule.id);
  for (const std::string& id : ids) {
    EXPECT_NE(design.find("| `" + id + "`"), std::string::npos)
        << "rule " << id << " has no DESIGN.md documentation table row";
  }
}

// ---------------------------------------------------------------------------
// Indexer

TEST(SourceIndexer, ExtractsFunctionsCallsAndIncludes) {
  Analyzer analyzer;
  analyzer.AddFile("src/core/probe.cc",
                   "#include \"core/probe.h\"\n"
                   "namespace shadoop {\n"
                   "int Helper(int x) { return x + 1; }\n"
                   "int Probe::Run(int x) {\n"
                   "  return Helper(x);\n"
                   "}\n"
                   "}  // namespace shadoop\n");
  const SourceIndex& index = analyzer.index();
  ASSERT_EQ(index.files().size(), 1u);
  EXPECT_EQ(index.files()[0].repo_path, "src/core/probe.cc");
  EXPECT_EQ(index.files()[0].module, "core");
  ASSERT_EQ(index.files()[0].includes.size(), 1u);
  EXPECT_EQ(index.files()[0].includes[0].spec, "core/probe.h");

  ASSERT_EQ(index.functions().size(), 2u);
  EXPECT_EQ(index.functions()[0].name, "Helper");
  EXPECT_EQ(index.functions()[1].qualified, "Probe::Run");
  ASSERT_EQ(index.functions()[1].calls.size(), 1u);
  EXPECT_EQ(index.functions()[1].calls[0].name, "Helper");
}

TEST(SourceIndexer, RepoRelativeNormalizesAbsolutePaths) {
  EXPECT_EQ(RepoRelative("/home/u/repo/src/core/knn.cc"), "src/core/knn.cc");
  EXPECT_EQ(RepoRelative("src/core/knn.cc"), "src/core/knn.cc");
  EXPECT_EQ(RepoRelative("/home/u/repo/bench/bench_hotpath.cc"),
            "bench/bench_hotpath.cc");
}

// ---------------------------------------------------------------------------
// Determinism taint

// The flagship scenario the per-line lint could never see: the sink is
// three calls away from the serving tier, in a different module.
TEST(DeterminismTaint, FollowsAThreeDeepCallChain) {
  Analyzer analyzer;
  analyzer.AddFile("src/server/handler.cc",
                   "int Handle(int q) { return Helper(q); }\n");
  analyzer.AddFile("src/index/helper.cc",
                   "int Helper(int q) { return ReadNow(q); }\n");
  analyzer.AddFile("src/common/timeutil.cc",
                   "int ReadNow(int q) {\n"
                   "  auto t = std::chrono::steady_clock::now();\n"
                   "  return q + t.time_since_epoch().count();\n"
                   "}\n");
  const std::vector<Finding> findings = analyzer.Run();
  const Finding* finding = FindRule(findings, "determinism-taint");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->file, "src/common/timeutil.cc");
  EXPECT_EQ(finding->line, 2);
  // The explanation prints the full call chain and a stable key.
  EXPECT_NE(finding->message.find("Handle -> Helper -> ReadNow"),
            std::string::npos)
      << finding->message;
  EXPECT_NE(finding->message.find("wall-clock:ReadNow"), std::string::npos)
      << finding->message;
}

TEST(DeterminismTaint, UnreachableSinkStaysQuiet) {
  // Same sink, but nothing on the query path calls it: src/index is not
  // an entry module, so a dead helper there is not a query-path leak.
  Analyzer analyzer;
  analyzer.AddFile("src/index/helper.cc",
                   "int ReadNow(int q) {\n"
                   "  auto t = std::chrono::steady_clock::now();\n"
                   "  return q + t.time_since_epoch().count();\n"
                   "}\n");
  EXPECT_TRUE(analyzer.Run().empty());
}

TEST(DeterminismTaint, AllowlistCutsTheChain) {
  // The Stopwatch wrapper itself and the bench harness are the two
  // sanctioned wall-clock homes; sinks there never taint callers.
  Analyzer analyzer;
  analyzer.AddFile("src/server/handler.cc",
                   "int Handle(int q) { return Sanctioned(q); }\n");
  analyzer.AddFile("src/common/stopwatch.h",
                   "int Sanctioned(int q) {\n"
                   "  auto t = std::chrono::steady_clock::now();\n"
                   "  return q + t.time_since_epoch().count();\n"
                   "}\n");
  analyzer.AddFile("bench/bench_probe.cc",
                   "int BenchLoop() {\n"
                   "  auto t = std::chrono::steady_clock::now();\n"
                   "  return t.time_since_epoch().count();\n"
                   "}\n");
  EXPECT_TRUE(analyzer.Run().empty());
}

TEST(DeterminismTaint, FiresOnNondetSeedAndUnorderedIteration) {
  Analyzer analyzer;
  analyzer.AddFile("src/core/op.cc",
                   "int Draw() { return rand(); }\n"
                   "int Walk() {\n"
                   "  std::unordered_map<int, int> m;\n"
                   "  int sum = 0;\n"
                   "  for (const auto& kv : m) sum += kv.second;\n"
                   "  return sum;\n"
                   "}\n"
                   "bool Lookup() {\n"
                   "  std::unordered_map<int, int> m;\n"
                   "  return m.find(1) != m.end();\n"
                   "}\n");
  const std::vector<Finding> findings = analyzer.Run();
  ASSERT_EQ(findings.size(), 2u);  // Draw + Walk; Lookup is order-free.
  EXPECT_NE(findings[0].message.find("nondet-seed:Draw"), std::string::npos);
  EXPECT_NE(findings[1].message.find("unordered-iteration:Walk"),
            std::string::npos);
}

TEST(DeterminismTaint, EscapesSuppressTheSinkLine) {
  // Both spellings cut the taint at the sink: the legacy lint id the
  // line may already carry, and the analyzer's own kind/rule ids.
  Analyzer analyzer;
  analyzer.AddFile(
      "src/core/op.cc",
      "int Draw() { return rand(); }  // lint:allow(banned-random)\n"
      "int Draw2() { return rand(); }  // analyze:allow(determinism-taint)\n"
      "int Draw3() { return rand(); }\n");
  const std::vector<Finding> findings = analyzer.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);
}

TEST(DeterminismTaint, FlagsFileScopeSinksInEntryModulesOnly) {
  Analyzer analyzer;
  analyzer.AddFile("src/core/stats.h",
                   "struct Stats {\n"
                   "  double wall_ms = 0;\n"
                   "};\n");
  analyzer.AddFile("src/mapreduce/stats.h",
                   "struct JobStats {\n"
                   "  double wall_ms = 0;\n"
                   "};\n");
  const std::vector<Finding> findings = analyzer.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/core/stats.h");
  EXPECT_NE(findings[0].message.find("wall-clock:file:src/core/stats.h"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Layering

TEST(Layering, CoreIncludingServerViolatesTheDag) {
  Analyzer analyzer;
  analyzer.AddFile("src/server/query_server.h", "struct QueryServer {};\n");
  analyzer.AddFile("src/core/knn.h",
                   "#include \"server/query_server.h\"\n"
                   "struct Knn {};\n");
  const std::vector<Finding> findings = analyzer.Run();
  const Finding* finding = FindRule(findings, "layer-violation");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->file, "src/core/knn.h");
  EXPECT_EQ(finding->line, 1);
  EXPECT_NE(finding->message.find("core"), std::string::npos);
  EXPECT_NE(finding->message.find("server"), std::string::npos);
  EXPECT_NE(finding->message.find("core->server"), std::string::npos)
      << finding->message;
}

TEST(Layering, DownwardIncludesAreClean) {
  Analyzer analyzer;
  analyzer.AddFile("src/core/knn.h", "struct Knn {};\n");
  analyzer.AddFile("src/server/query_server.h",
                   "#include \"core/knn.h\"\n"
                   "struct QueryServer {};\n");
  analyzer.AddFile("tools/lint/lint_main.cc",
                   "#include \"server/query_server.h\"\n"
                   "int main() { return 0; }\n");
  EXPECT_TRUE(analyzer.Run().empty());
}

TEST(Layering, UnknownSrcModuleMustDeclareItsRank) {
  Analyzer analyzer;
  analyzer.AddFile("src/common/logging.h", "struct Log {};\n");
  analyzer.AddFile("src/newmod/thing.cc",
                   "#include \"common/logging.h\"\n"
                   "int F() { return 0; }\n");
  const std::vector<Finding> findings = analyzer.Run();
  const Finding* finding = FindRule(findings, "layer-undeclared");
  ASSERT_NE(finding, nullptr);
  EXPECT_NE(finding->message.find("newmod"), std::string::npos);
}

TEST(Layering, IncludeCyclesAreReportedOnce) {
  Analyzer analyzer;
  analyzer.AddFile("src/core/a.h",
                   "#include \"core/b.h\"\n"
                   "struct A {};\n");
  analyzer.AddFile("src/core/b.h",
                   "#include \"core/a.h\"\n"
                   "struct B {};\n");
  const std::vector<Finding> findings = analyzer.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_EQ(findings[0].file, "src/core/a.h");
  // The message prints the whole include path, canonically rotated.
  EXPECT_NE(findings[0].message.find(
                "src/core/a.h -> src/core/b.h -> src/core/a.h"),
            std::string::npos)
      << findings[0].message;
}

// ---------------------------------------------------------------------------
// Baseline

Analyzer TaintedFixture() {
  Analyzer analyzer;
  analyzer.AddFile("src/server/handler.cc",
                   "int Handle(int q) { return ReadNow(q); }\n");
  analyzer.AddFile("src/common/timeutil.cc",
                   "int ReadNow(int q) {\n"
                   "  auto t = std::chrono::steady_clock::now();\n"
                   "  return q + t.time_since_epoch().count();\n"
                   "}\n");
  return analyzer;
}

TEST(Baseline, EntrySuppressesItsFinding) {
  Analyzer analyzer = TaintedFixture();
  analyzer.LoadBaseline("tools/analyze/analysis_baseline.txt",
                        "# sanctioned exception\n"
                        "determinism-taint wall-clock:ReadNow\n");
  EXPECT_TRUE(analyzer.Run().empty());
}

TEST(Baseline, DeletingTheEntryRearmsTheFinding) {
  Analyzer analyzer = TaintedFixture();
  analyzer.LoadBaseline("tools/analyze/analysis_baseline.txt",
                        "# entry deleted\n");
  const std::vector<Finding> findings = analyzer.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "determinism-taint");
  EXPECT_NE(findings[0].message.find("Handle -> ReadNow"), std::string::npos);
}

TEST(Baseline, StaleEntriesAreFindingsThemselves) {
  Analyzer analyzer = TaintedFixture();
  analyzer.LoadBaseline("tools/analyze/analysis_baseline.txt",
                        "determinism-taint wall-clock:ReadNow\n"
                        "determinism-taint wall-clock:GoneFunction\n");
  const std::vector<Finding> findings = analyzer.Run();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "stale-baseline");
  EXPECT_EQ(findings[0].file, "tools/analyze/analysis_baseline.txt");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("wall-clock:GoneFunction"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Determinism of the analyzer itself

TEST(Determinism, FindingOrderIsStableAndSorted) {
  auto run_once = [] {
    Analyzer analyzer;
    analyzer.AddFile("src/core/b.cc",
                     "int DrawB() { return rand(); }\n"
                     "int ClockB() { return clock(); }\n");
    analyzer.AddFile("src/core/a.cc", "int DrawA() { return rand(); }\n");
    analyzer.AddFile("src/server/s.h", "struct S {};\n");
    analyzer.AddFile("src/catalog/c.h",
                     "#include \"server/s.h\"\n"
                     "struct C {};\n");
    std::vector<std::string> lines;
    for (const Finding& finding : analyzer.Run()) {
      lines.push_back(lint::FormatFinding(finding));
    }
    return lines;
  };
  const std::vector<std::string> first = run_once();
  const std::vector<std::string> second = run_once();
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 4u);
  // Sorted by (file, line, rule): catalog layering first, then the two
  // core files in path order, each by line.
  EXPECT_EQ(first[0].rfind("src/catalog/c.h:1: layer-violation", 0), 0u)
      << first[0];
  EXPECT_EQ(first[1].rfind("src/core/a.cc:1: determinism-taint", 0), 0u);
  EXPECT_EQ(first[2].rfind("src/core/b.cc:1: determinism-taint", 0), 0u);
  EXPECT_EQ(first[3].rfind("src/core/b.cc:2: determinism-taint", 0), 0u);
}

// ---------------------------------------------------------------------------
// Retired path-scoped lint rules, re-proved against the analyzer. The
// per-line `server-wall-clock` / `optimizer-wall-clock` rules (and the
// restrict_path_substrings scoping that carried them) are gone; these
// are their lint_test scenarios, re-expressed as taint fixtures, so the
// coverage that retired with them stays pinned here.

TEST(ServerWallClockRegression, StopwatchInServerCodeStillFires) {
  Analyzer analyzer;
  analyzer.AddFile("src/common/stopwatch.h",
                   "class Stopwatch { public: double ElapsedMs(); };\n");
  analyzer.AddFile("src/server/query_server.cc",
                   "double Latency() {\n"
                   "  Stopwatch sw;\n"
                   "  return sw.ElapsedMs();\n"
                   "}\n");
  const std::vector<Finding> findings = analyzer.Run();
  const Finding* finding = FindRule(findings, "determinism-taint");
  ASSERT_NE(finding, nullptr);
  EXPECT_EQ(finding->file, "src/server/query_server.cc");
  EXPECT_NE(finding->message.find("wall-clock:Latency"), std::string::npos);
}

TEST(ServerWallClockRegression, WallMsReadInServerCodeStillFires) {
  Analyzer analyzer;
  analyzer.AddFile("src/server/query_server.cc",
                   "double Report(const Stats& stats) {\n"
                   "  return stats.wall_ms;\n"
                   "}\n");
  EXPECT_TRUE(HasRule(analyzer.Run(), "determinism-taint"));
}

TEST(ServerWallClockRegression, SimulatedLatencyMathStaysQuiet) {
  Analyzer analyzer;
  analyzer.AddFile("src/server/query_server.cc",
                   "double Report(const JobCost& cost) {\n"
                   "  // wall_ms is deliberately absent here\n"
                   "  return cost.total_ms + cost.admission_wait_ms;\n"
                   "}\n"
                   "const char* doc = \"no Stopwatch in the server\";\n");
  EXPECT_TRUE(analyzer.Run().empty());
}

TEST(OptimizerWallClockRegression, WallClockInPlannerStillFires) {
  Analyzer analyzer;
  analyzer.AddFile("src/optimizer/cost_model.cc",
                   "double Price(const Result& result) {\n"
                   "  return result.wall_ms;\n"
                   "}\n");
  const std::vector<Finding> findings = analyzer.Run();
  const Finding* finding = FindRule(findings, "determinism-taint");
  ASSERT_NE(finding, nullptr);
  EXPECT_NE(finding->message.find("wall-clock:Price"), std::string::npos);
}

TEST(OptimizerWallClockRegression, SimulatedCostMathStaysQuiet) {
  Analyzer analyzer;
  analyzer.AddFile("src/optimizer/cost_model.cc",
                   "double Price(const Cluster& cluster) {\n"
                   "  return cluster.job_startup_ms +\n"
                   "         mapreduce::Makespan(tasks, cluster.num_slots);\n"
                   "}\n");
  EXPECT_TRUE(analyzer.Run().empty());
}

}  // namespace
}  // namespace shadoop::analyze
