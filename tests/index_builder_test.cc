#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geometry/wkt.h"
#include "index/index_builder.h"
#include "test_util.h"

namespace shadoop::index {
namespace {

class IndexBuilderSchemeTest
    : public ::testing::TestWithParam<PartitionScheme> {};

TEST_P(IndexBuilderSchemeTest, BuildsLoadableIndexPreservingAllRecords) {
  testing::TestCluster cluster;
  const std::vector<Point> points = testing::WritePoints(
      &cluster.fs, "/points", 3000, workload::Distribution::kClustered);

  const SpatialFileInfo built = testing::BuildIndex(
      &cluster.runner, "/points", "/points.idx", GetParam());

  // The master file loads back to the same global index.
  const SpatialFileInfo loaded =
      LoadSpatialFile(cluster.fs, "/points.idx").ValueOrDie();
  EXPECT_EQ(loaded.global_index.scheme(), GetParam());
  EXPECT_EQ(loaded.shape, ShapeType::kPoint);
  ASSERT_EQ(loaded.global_index.NumPartitions(),
            built.global_index.NumPartitions());

  // Every input point appears in the data file exactly once (points are
  // never replicated) and in the partition covering it.
  std::multiset<std::string> input;
  for (const Point& p : points) input.insert(PointToCsv(p));
  std::multiset<std::string> stored;
  hdfs::FileMeta meta =
      cluster.fs.GetFileMeta("/points.idx").ValueOrDie();
  ASSERT_EQ(meta.blocks.size(), built.global_index.NumPartitions());
  for (const Partition& part : built.global_index.partitions()) {
    const std::vector<std::string> records =
        cluster.fs.ReadBlock("/points.idx", part.block_index).ValueOrDie();
    EXPECT_EQ(records.size(), part.num_records);
    for (const std::string& record : records) {
      stored.insert(record);
      const Point p = RecordPoint(record).ValueOrDie();
      EXPECT_TRUE(part.mbr.Contains(p));
      if (IsDisjointScheme(GetParam())) {
        EXPECT_TRUE(part.cell.Contains(p))
            << "cell " << part.cell.ToString() << " point " << p.x << ","
            << p.y;
      }
    }
  }
  EXPECT_EQ(input, stored);
}

TEST_P(IndexBuilderSchemeTest, PartitionMbrsAreTight) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/points", 1500);
  const SpatialFileInfo built = testing::BuildIndex(
      &cluster.runner, "/points", "/points.idx", GetParam());
  for (const Partition& part : built.global_index.partitions()) {
    Envelope recomputed;
    for (const std::string& record :
         cluster.fs.ReadBlock("/points.idx", part.block_index).ValueOrDie()) {
      recomputed.ExpandToInclude(RecordPoint(record).ValueOrDie());
    }
    EXPECT_EQ(recomputed, part.mbr);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, IndexBuilderSchemeTest,
    ::testing::ValuesIn(testing::AllSchemes()),
    [](const ::testing::TestParamInfo<PartitionScheme>& info) {
      std::string name = PartitionSchemeName(info.param);
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
      }
      return name;
    });

TEST(IndexBuilderTest, RectanglesAreReplicatedAcrossDisjointCells) {
  testing::TestCluster cluster;
  workload::RectGenOptions options;
  options.centers.count = 800;
  options.centers.seed = 7;
  options.max_side_fraction = 0.08;  // Large rects to force replication.
  const std::vector<Envelope> rects = workload::GenerateRectangles(options);
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/rects", workload::RectanglesToRecords(rects))
                  .ok());
  const SpatialFileInfo built =
      testing::BuildIndex(&cluster.runner, "/rects", "/rects.idx",
                          PartitionScheme::kGrid, ShapeType::kRectangle);
  size_t stored = 0;
  for (const Partition& part : built.global_index.partitions()) {
    stored += part.num_records;
  }
  EXPECT_GT(stored, rects.size());  // Replication happened.

  // Every stored copy intersects its partition cell.
  for (const Partition& part : built.global_index.partitions()) {
    for (const std::string& record :
         cluster.fs.ReadBlock("/rects.idx", part.block_index).ValueOrDie()) {
      const Envelope env = RecordRectangle(record).ValueOrDie();
      EXPECT_TRUE(env.Intersects(part.cell));
    }
  }
}

TEST(IndexBuilderTest, FailsOnMissingSource) {
  testing::TestCluster cluster;
  IndexBuilder builder(&cluster.runner);
  IndexBuildOptions options;
  EXPECT_TRUE(builder.Build("/missing", "/idx", options).status().IsNotFound());
}

TEST(IndexBuilderTest, FailsOnExistingDestination) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/points", 100);
  ASSERT_TRUE(cluster.fs.WriteLines("/idx", {"x"}).ok());
  IndexBuilder builder(&cluster.runner);
  IndexBuildOptions options;
  EXPECT_TRUE(
      builder.Build("/points", "/idx", options).status().IsAlreadyExists());
}

TEST(IndexBuilderTest, BuildCostIncludesBothJobs) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/points", 2000);
  const SpatialFileInfo built = testing::BuildIndex(
      &cluster.runner, "/points", "/points.idx", PartitionScheme::kStr);
  // Analysis + partition jobs, each paying a job startup.
  EXPECT_GE(built.build_cost.total_ms,
            2 * cluster.runner.cluster().job_startup_ms);
  EXPECT_GT(built.build_cost.bytes_read, 0u);
  EXPECT_GT(built.build_cost.bytes_shuffled, 0u);
}

TEST(IndexBuilderTest, TargetPartitionsHonoured) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/points", 2000);
  IndexBuilder builder(&cluster.runner);
  IndexBuildOptions options;
  options.scheme = PartitionScheme::kKdTree;
  options.target_partitions = 8;
  const SpatialFileInfo built =
      builder.Build("/points", "/points.idx", options).ValueOrDie();
  EXPECT_EQ(built.global_index.NumPartitions(), 8u);
}

}  // namespace
}  // namespace shadoop::index
