#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/closest_pair_op.h"
#include "core/convex_hull_op.h"
#include "core/farthest_pair_op.h"
#include "core/skyline_op.h"
#include "core/union_op.h"
#include "geometry/convex_hull.h"
#include "geometry/farthest_pair.h"
#include "geometry/polygon_union.h"
#include "geometry/skyline.h"
#include "geometry/wkt.h"
#include "test_util.h"

namespace shadoop::core {
namespace {

using index::PartitionScheme;
using workload::Distribution;

std::multiset<std::pair<double, double>> ToSet(
    const std::vector<Point>& points) {
  std::multiset<std::pair<double, double>> s;
  for (const Point& p : points) s.insert({p.x, p.y});
  return s;
}

struct CgCase {
  PartitionScheme scheme;
  Distribution distribution;
};

std::string CgCaseName(const ::testing::TestParamInfo<CgCase>& info) {
  std::string name = index::PartitionSchemeName(info.param.scheme);
  name += "_";
  name += workload::DistributionName(info.param.distribution);
  for (char& c : name) {
    if (!isalnum(static_cast<unsigned char>(c))) c = 'x';
  }
  return name;
}

class CgOpsSchemeTest : public ::testing::TestWithParam<CgCase> {
 protected:
  void SetUp() override {
    points_ = testing::WritePoints(&cluster_.fs, "/pts", 2500,
                                   GetParam().distribution, 77);
    file_ = testing::BuildIndex(&cluster_.runner, "/pts", "/pts.idx",
                                GetParam().scheme);
  }

  testing::TestCluster cluster_;
  std::vector<Point> points_;
  index::SpatialFileInfo file_;
};

TEST_P(CgOpsSchemeTest, SkylineMatchesSingleMachine) {
  const std::vector<Point> expected = Skyline(points_);
  auto spatial = SkylineSpatial(&cluster_.runner, file_).ValueOrDie();
  EXPECT_EQ(ToSet(spatial), ToSet(expected));
}

TEST_P(CgOpsSchemeTest, ConvexHullMatchesSingleMachine) {
  const std::vector<Point> expected = ConvexHull(points_);
  auto spatial = ConvexHullSpatial(&cluster_.runner, file_).ValueOrDie();
  EXPECT_EQ(ToSet(spatial), ToSet(expected));
}

TEST_P(CgOpsSchemeTest, FarthestPairMatchesSingleMachine) {
  const PointPair expected = FarthestPair(points_);
  auto spatial = FarthestPairSpatial(&cluster_.runner, file_).ValueOrDie();
  EXPECT_NEAR(spatial.distance, expected.distance, 1e-9);
}

TEST_P(CgOpsSchemeTest, ClosestPairMatchesSingleMachine) {
  if (!index::IsDisjointScheme(GetParam().scheme)) {
    auto result = ClosestPairSpatial(&cluster_.runner, file_);
    EXPECT_TRUE(result.status().IsInvalidArgument());
    return;
  }
  const PointPair expected = ClosestPair(points_);
  auto spatial = ClosestPairSpatial(&cluster_.runner, file_).ValueOrDie();
  EXPECT_NEAR(spatial.distance, expected.distance, 1e-9);
}

std::vector<CgCase> AllCgCases() {
  std::vector<CgCase> cases;
  for (PartitionScheme scheme : testing::AllSchemes()) {
    for (Distribution dist :
         {Distribution::kUniform, Distribution::kAntiCorrelated,
          Distribution::kCircular}) {
      cases.push_back({scheme, dist});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, CgOpsSchemeTest,
                         ::testing::ValuesIn(AllCgCases()), CgCaseName);

TEST(CgOpsTest, SkylineHadoopMatchesSingleMachine) {
  testing::TestCluster cluster;
  const std::vector<Point> points = testing::WritePoints(
      &cluster.fs, "/pts", 2000, Distribution::kAntiCorrelated);
  auto hadoop = SkylineHadoop(&cluster.runner, "/pts").ValueOrDie();
  EXPECT_EQ(ToSet(hadoop), ToSet(Skyline(points)));
}

TEST(CgOpsTest, ConvexHullHadoopMatchesSingleMachine) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 2000, Distribution::kCircular);
  auto hadoop = ConvexHullHadoop(&cluster.runner, "/pts").ValueOrDie();
  EXPECT_EQ(ToSet(hadoop), ToSet(ConvexHull(points)));
}

TEST(CgOpsTest, FarthestPairHadoopMatchesSingleMachine) {
  testing::TestCluster cluster;
  const std::vector<Point> points =
      testing::WritePoints(&cluster.fs, "/pts", 1000);
  auto hadoop = FarthestPairHadoop(&cluster.runner, "/pts").ValueOrDie();
  EXPECT_NEAR(hadoop.distance, FarthestPairBruteForce(points).distance, 1e-9);
}

TEST(CgOpsTest, SkylineFilterPrunesMostPartitions) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 8000, Distribution::kUniform);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kStr);
  ASSERT_GT(file.global_index.NumPartitions(), 8u);
  const std::vector<int> kept = SkylinePartitionFilter(file.global_index);
  EXPECT_LT(kept.size(), file.global_index.NumPartitions() / 2)
      << "uniform data: most partitions are dominated";
}

TEST(CgOpsTest, FarthestPairFilterPrunesMostPairs) {
  testing::TestCluster cluster;
  testing::WritePoints(&cluster.fs, "/pts", 8000, Distribution::kUniform);
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/pts", "/pts.idx", PartitionScheme::kGrid);
  const size_t n = file.global_index.NumPartitions();
  ASSERT_GT(n, 8u);
  const auto pairs = FarthestPairPartitionFilter(file.global_index);
  EXPECT_LT(pairs.size(), n * (n + 1) / 4) << "most pairs are dominated";
}

// ---------------------------------------------------------------------
// Union

double TotalLength(const std::vector<Segment>& segments) {
  double total = 0;
  for (const Segment& s : segments) total += s.Length();
  return total;
}

TEST(UnionOpTest, HadoopUnionMatchesSingleMachineLength) {
  testing::TestCluster cluster;
  workload::PolygonGenOptions options;
  options.centers.count = 150;
  options.centers.seed = 3;
  options.max_radius_fraction = 0.06;  // Dense enough to overlap.
  const std::vector<Polygon> polygons = workload::GeneratePolygons(options);
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/poly", workload::PolygonsToRecords(polygons))
                  .ok());
  auto hadoop = UnionHadoop(&cluster.runner, "/poly").ValueOrDie();
  // The single-machine reference computes the same boundary. Lengths are
  // compared because segment subdivision may differ.
  EXPECT_NEAR(TotalLength(hadoop), UnionBoundaryLength(polygons),
              UnionBoundaryLength(polygons) * 1e-6);
}

TEST(UnionOpTest, EnhancedUnionMatchesHadoopUnion) {
  testing::TestCluster cluster(/*block_size=*/2 * 1024);
  workload::PolygonGenOptions options;
  options.centers.count = 200;
  options.centers.seed = 8;
  options.max_radius_fraction = 0.05;
  const std::vector<Polygon> polygons = workload::GeneratePolygons(options);
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/poly", workload::PolygonsToRecords(polygons))
                  .ok());
  const index::SpatialFileInfo file =
      testing::BuildIndex(&cluster.runner, "/poly", "/poly.idx",
                          PartitionScheme::kQuadTree,
                          index::ShapeType::kPolygon);
  ASSERT_GT(file.global_index.NumPartitions(), 2u);
  OpStats hadoop_stats;
  OpStats enhanced_stats;
  auto hadoop =
      UnionHadoop(&cluster.runner, "/poly", &hadoop_stats).ValueOrDie();
  auto enhanced =
      UnionSpatialEnhanced(&cluster.runner, file, &enhanced_stats)
          .ValueOrDie();
  EXPECT_NEAR(TotalLength(enhanced), TotalLength(hadoop),
              TotalLength(hadoop) * 1e-6);
  EXPECT_EQ(enhanced_stats.cost.bytes_shuffled, 0u)
      << "enhanced union is map-only";
}

TEST(UnionOpTest, EnhancedUnionRejectsNonDisjointIndex) {
  testing::TestCluster cluster;
  workload::PolygonGenOptions options;
  options.centers.count = 50;
  const std::vector<Polygon> polygons = workload::GeneratePolygons(options);
  ASSERT_TRUE(cluster.fs
                  .WriteLines("/poly", workload::PolygonsToRecords(polygons))
                  .ok());
  const index::SpatialFileInfo file = testing::BuildIndex(
      &cluster.runner, "/poly", "/poly.idx", PartitionScheme::kStr,
      index::ShapeType::kPolygon);
  EXPECT_TRUE(UnionSpatialEnhanced(&cluster.runner, file)
                  .status()
                  .IsInvalidArgument());
}

TEST(UnionOpTest, SegmentCodecRoundTrips) {
  const Segment s(Point(1.5, -2.25), Point(1e6, 0.125));
  const Segment parsed = ParseSegmentCsv(SegmentToCsv(s)).ValueOrDie();
  EXPECT_EQ(parsed, s);
  EXPECT_FALSE(ParseSegmentCsv("1,2,3").ok());
}

}  // namespace
}  // namespace shadoop::core
