#include <gtest/gtest.h>

#include "hdfs/file_system.h"

namespace shadoop::hdfs {
namespace {

HdfsConfig SmallBlocks() {
  HdfsConfig config;
  config.block_size = 64;  // Tiny blocks force multi-block files.
  config.num_datanodes = 5;
  config.replication = 3;
  return config;
}

TEST(FileSystemTest, WriteReadRoundTrip) {
  FileSystem fs(SmallBlocks());
  const std::vector<std::string> lines = {"alpha", "beta", "gamma"};
  ASSERT_TRUE(fs.WriteLines("/f", lines).ok());
  EXPECT_TRUE(fs.Exists("/f"));
  EXPECT_EQ(fs.ReadLines("/f").ValueOrDie(), lines);
}

TEST(FileSystemTest, FilesSplitIntoBlocksAtRecordBoundaries) {
  FileSystem fs(SmallBlocks());
  std::vector<std::string> lines;
  for (int i = 0; i < 100; ++i) lines.push_back("record-" + std::to_string(i));
  ASSERT_TRUE(fs.WriteLines("/f", lines).ok());
  const FileMeta meta = fs.GetFileMeta("/f").ValueOrDie();
  EXPECT_GT(meta.blocks.size(), 5u);
  EXPECT_EQ(meta.total_records, 100u);
  // Reassembling blocks yields the original records, in order.
  std::vector<std::string> reassembled;
  for (size_t b = 0; b < meta.blocks.size(); ++b) {
    for (std::string& r : fs.ReadBlock("/f", b).ValueOrDie()) {
      reassembled.push_back(std::move(r));
    }
  }
  EXPECT_EQ(reassembled, lines);
}

TEST(FileSystemTest, ForcedBlockBoundaries) {
  FileSystem fs(SmallBlocks());
  auto writer = fs.Create("/f").ValueOrDie();
  writer->set_auto_seal(false);
  for (int part = 0; part < 3; ++part) {
    for (int i = 0; i < 50; ++i) {
      writer->Append("p" + std::to_string(part));
    }
    writer->EndBlock();
  }
  ASSERT_TRUE(writer->Close().ok());
  const FileMeta meta = fs.GetFileMeta("/f").ValueOrDie();
  ASSERT_EQ(meta.blocks.size(), 3u);  // Exactly one block per EndBlock.
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(meta.blocks[b].num_records, 50u);
  }
}

TEST(FileSystemTest, CreateFailsOnExisting) {
  FileSystem fs(SmallBlocks());
  ASSERT_TRUE(fs.WriteLines("/f", {"x"}).ok());
  EXPECT_TRUE(fs.Create("/f").status().IsAlreadyExists());
  EXPECT_TRUE(fs.WriteLines("/f", {"y"}).IsAlreadyExists());
}

TEST(FileSystemTest, DeleteAndRename) {
  FileSystem fs(SmallBlocks());
  ASSERT_TRUE(fs.WriteLines("/a", {"1"}).ok());
  ASSERT_TRUE(fs.Rename("/a", "/b").ok());
  EXPECT_FALSE(fs.Exists("/a"));
  EXPECT_TRUE(fs.Exists("/b"));
  EXPECT_TRUE(fs.Rename("/missing", "/c").IsNotFound());
  ASSERT_TRUE(fs.WriteLines("/c", {"2"}).ok());
  EXPECT_TRUE(fs.Rename("/b", "/c").IsAlreadyExists());
  ASSERT_TRUE(fs.Delete("/b").ok());
  EXPECT_FALSE(fs.Exists("/b"));
  EXPECT_TRUE(fs.Delete("/b").IsNotFound());
}

TEST(FileSystemTest, ListFilesByPrefix) {
  FileSystem fs(SmallBlocks());
  ASSERT_TRUE(fs.WriteLines("/data/a", {"1"}).ok());
  ASSERT_TRUE(fs.WriteLines("/data/b", {"1"}).ok());
  ASSERT_TRUE(fs.WriteLines("/other", {"1"}).ok());
  EXPECT_EQ(fs.ListFiles("/data/"),
            (std::vector<std::string>{"/data/a", "/data/b"}));
  EXPECT_EQ(fs.ListFiles("/nope").size(), 0u);
}

TEST(FileSystemTest, ReplicationSurvivesNodeFailures) {
  FileSystem fs(SmallBlocks());
  std::vector<std::string> lines(50, "payload");
  ASSERT_TRUE(fs.WriteLines("/f", lines).ok());
  // Kill replication-1 nodes: every block still has a live replica.
  fs.SetNodeAlive(0, false);
  fs.SetNodeAlive(1, false);
  EXPECT_EQ(fs.CountAliveNodes(), 3);
  EXPECT_EQ(fs.ReadLines("/f").ValueOrDie(), lines);
  // Kill a third node: with 5 nodes and r=3 some block loses all copies.
  fs.SetNodeAlive(2, false);
  const auto result = fs.ReadLines("/f");
  EXPECT_TRUE(result.status().IsIoError());
  // Recovery: bring a node back.
  fs.SetNodeAlive(0, true);
  EXPECT_EQ(fs.ReadLines("/f").ValueOrDie(), lines);
}

TEST(FileSystemTest, IoStatsAccounting) {
  FileSystem fs(SmallBlocks());
  std::vector<std::string> lines(20, "0123456789");
  ASSERT_TRUE(fs.WriteLines("/f", lines).ok());
  const uint64_t written = fs.io_stats().bytes_written.load();
  EXPECT_EQ(written, 20u * 11);
  fs.io_stats().Reset();
  ASSERT_TRUE(fs.ReadLines("/f").ok());
  EXPECT_EQ(fs.io_stats().bytes_read.load(), written);
}

TEST(FileSystemTest, ReadErrors) {
  FileSystem fs(SmallBlocks());
  EXPECT_TRUE(fs.ReadLines("/missing").status().IsNotFound());
  ASSERT_TRUE(fs.WriteLines("/f", {"x"}).ok());
  EXPECT_TRUE(fs.ReadBlock("/f", 99).status().IsInvalidArgument());
}

TEST(SplitBlockTest, HandlesTrailingNewlineAndEmptyPayload) {
  EXPECT_TRUE(SplitBlockIntoRecords("").empty());
  EXPECT_EQ(SplitBlockIntoRecords("a\nb\n"),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitBlockIntoRecords("a\nb"),
            (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace shadoop::hdfs
