#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace shadoop {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, CopyAndMoveSemantics) {
  Status s = Status::IoError("disk");
  Status copy = s;
  EXPECT_TRUE(copy.IsIoError());
  EXPECT_TRUE(s.IsIoError());
  Status moved = std::move(s);
  EXPECT_TRUE(moved.IsIoError());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SHADOOP_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsInternal());
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok_result = 42;
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);

  Result<int> err_result = Status::ParseError("nope");
  EXPECT_FALSE(err_result.ok());
  EXPECT_TRUE(err_result.status().IsParseError());
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto parse = [](bool good) -> Result<int> {
    if (!good) return Status::ParseError("bad");
    return 7;
  };
  auto wrapper = [&](bool good) -> Result<int> {
    SHADOOP_ASSIGN_OR_RETURN(int v, parse(good));
    return v * 2;
  };
  EXPECT_EQ(wrapper(true).value(), 14);
  EXPECT_TRUE(wrapper(false).status().IsParseError());
}

TEST(StringUtilTest, SplitStringKeepsEmptyFields) {
  auto fields = SplitString("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto fields = SplitWhitespace("  a \t b\nc  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[2], "c");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\n "), "");
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").ValueOrDie(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -1e3 ").ValueOrDie(), -1000.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("12x").ok());
  EXPECT_FALSE(ParseDouble("x").ok());
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(ParseInt64("123").ValueOrDie(), 123);
  EXPECT_EQ(ParseInt64("-5").ValueOrDie(), -5);
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtilTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0 / 3.0, -123456.789012345, 1e-300, 3.14159265358979,
                   1e6, 0.1}) {
    EXPECT_DOUBLE_EQ(ParseDouble(FormatDouble(v)).ValueOrDie(), v);
  }
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_TRUE(StartsWithIgnoreCase("Polygon ((", "POLYGON"));
  EXPECT_FALSE(StartsWithIgnoreCase("POLY", "POLYGON"));
  EXPECT_EQ(AsciiToUpper("MixedCase_9"), "MIXEDCASE_9");
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, BoundedValuesInRange) {
  Random rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double r = rng.NextDouble(-2, 5);
    EXPECT_GE(r, -2.0);
    EXPECT_LT(r, 5.0);
  }
}

TEST(RandomTest, GaussianHasRoughlyUnitVariance) {
  Random rng(4);
  double sum = 0;
  double sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 1.0, 0.1);
}

TEST(RandomTest, ForkedStreamsAreIndependent) {
  Random parent(5);
  Random child1 = parent.Fork();
  Random child2 = parent.Fork();
  std::set<uint64_t> values;
  for (int i = 0; i < 50; ++i) {
    values.insert(child1.NextUint64());
    values.insert(child2.NextUint64());
  }
  EXPECT_EQ(values.size(), 100u);
}

}  // namespace
}  // namespace shadoop
