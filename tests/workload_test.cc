#include <gtest/gtest.h>

#include "geometry/wkt.h"
#include "index/record_shape.h"
#include "workload/generators.h"
#include "workload/import.h"

namespace shadoop::workload {
namespace {

TEST(ImportTest, PointCsvWithMappedColumnsAndHeader) {
  CsvImportOptions options;
  options.x_column = 2;
  options.y_column = 1;
  options.has_header = true;
  size_t skipped = 0;
  const auto records =
      ImportPointCsv({"name,lat,lon", "home,10,20", "work,30,40",
                      "broken,x,y", "short"},
                     options, &skipped)
          .ValueOrDie();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(skipped, 2u);
  EXPECT_EQ(index::RecordPoint(records[0]).ValueOrDie(), Point(20, 10));
  EXPECT_EQ(records[0].substr(records[0].find('\t') + 1), "home");
}

TEST(ImportTest, PointCsvStrictModeFailsOnBadRow) {
  CsvImportOptions options;
  options.skip_bad_rows = false;
  EXPECT_TRUE(ImportPointCsv({"1,2", "bad"}, options).status().IsParseError());
  CsvImportOptions same_column;
  same_column.x_column = same_column.y_column = 0;
  EXPECT_TRUE(
      ImportPointCsv({"1,2"}, same_column).status().IsInvalidArgument());
}

TEST(ImportTest, WktColumnDetectsShapeAndRejectsMixes) {
  WktImportOptions options;
  options.wkt_column = 1;
  index::ShapeType shape;
  size_t skipped = 0;
  const auto records =
      ImportWktColumn({"a\tPOINT (1 2)", "b\tPOINT (3 4)",
                       "c\tPOLYGON ((0 0, 1 0, 1 1))", "d\tnot wkt"},
                      options, &shape, &skipped)
          .ValueOrDie();
  EXPECT_EQ(shape, index::ShapeType::kPoint);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(skipped, 2u) << "the polygon row mixes shapes; skipped";
  EXPECT_EQ(index::RecordPoint(records[1]).ValueOrDie(), Point(3, 4));
  EXPECT_EQ(records[0].substr(records[0].find('\t') + 1), "a");

  const auto polys = ImportWktColumn(
      {"p\tPOLYGON ((0 0, 2 0, 1 2))"}, options, &shape, &skipped);
  ASSERT_TRUE(polys.ok());
  EXPECT_EQ(shape, index::ShapeType::kPolygon);
  EXPECT_TRUE(
      index::RecordPolygon(polys.value().front()).ok());

  EXPECT_TRUE(ImportWktColumn({"x\tgarbage"}, options, &shape)
                  .status()
                  .IsInvalidArgument());
}

TEST(GeneratorTest, DeterministicForSameOptions) {
  PointGenOptions options;
  options.count = 200;
  options.seed = 5;
  EXPECT_EQ(GeneratePoints(options), GeneratePoints(options));
  options.seed = 6;
  EXPECT_NE(GeneratePoints(options), GeneratePoints(PointGenOptions{}));
}

TEST(GeneratorTest, PointsStayInSpace) {
  for (Distribution dist :
       {Distribution::kUniform, Distribution::kGaussian,
        Distribution::kCorrelated, Distribution::kAntiCorrelated,
        Distribution::kCircular, Distribution::kClustered}) {
    PointGenOptions options;
    options.distribution = dist;
    options.count = 1000;
    options.space = Envelope(-50, 100, 50, 400);
    for (const Point& p : GeneratePoints(options)) {
      EXPECT_TRUE(options.space.Contains(p)) << DistributionName(dist);
    }
  }
}

TEST(GeneratorTest, DistributionShapes) {
  PointGenOptions options;
  options.count = 5000;
  options.space = Envelope(0, 0, 1, 1);

  // Gaussian concentrates in the middle.
  options.distribution = Distribution::kGaussian;
  int center_hits = 0;
  for (const Point& p : GeneratePoints(options)) {
    if (Envelope(0.25, 0.25, 0.75, 0.75).Contains(p)) ++center_hits;
  }
  EXPECT_GT(center_hits, 4000);

  // Correlated hugs the diagonal.
  options.distribution = Distribution::kCorrelated;
  for (const Point& p : GeneratePoints(options)) {
    EXPECT_LT(std::abs(p.x - p.y), 0.5);
  }

  // Circular stays away from the center.
  options.distribution = Distribution::kCircular;
  for (const Point& p : GeneratePoints(options)) {
    EXPECT_GT(Distance(p, Point(0.5, 0.5)), 0.2);
  }
}

TEST(GeneratorTest, RectanglesAreValidAndBounded) {
  RectGenOptions options;
  options.centers.count = 500;
  options.max_side_fraction = 0.05;
  for (const Envelope& r : GenerateRectangles(options)) {
    EXPECT_FALSE(r.IsEmpty());
    EXPECT_LE(r.Width(), options.centers.space.Width() * 0.05 + 1e-9);
    EXPECT_TRUE(options.centers.space.Contains(r));
  }
}

TEST(GeneratorTest, PolygonsAreSimpleAndCcw) {
  PolygonGenOptions options;
  options.centers.count = 300;
  for (const Polygon& poly : GeneratePolygons(options)) {
    EXPECT_GE(poly.NumVertices(), 4u);
    EXPECT_LE(poly.NumVertices(), 12u);
    EXPECT_GT(poly.SignedArea(), 0.0) << "normalized to CCW";
  }
}

TEST(GeneratorTest, RecordsParseBackViaRecordShape) {
  PointGenOptions point_options;
  point_options.count = 50;
  const auto points = GeneratePoints(point_options);
  const auto point_records = PointsToRecords(points);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(index::RecordPoint(point_records[i]).ValueOrDie(), points[i]);
  }

  PolygonGenOptions poly_options;
  poly_options.centers.count = 20;
  const auto polygons = GeneratePolygons(poly_options);
  for (const std::string& record : PolygonsToRecords(polygons)) {
    EXPECT_TRUE(index::RecordPolygon(record).ok()) << record;
  }
}

TEST(GeneratorTest, DistributionNamesRoundTrip) {
  for (Distribution dist :
       {Distribution::kUniform, Distribution::kGaussian,
        Distribution::kCorrelated, Distribution::kAntiCorrelated,
        Distribution::kCircular, Distribution::kClustered}) {
    EXPECT_EQ(ParseDistribution(DistributionName(dist)).ValueOrDie(), dist);
  }
  EXPECT_FALSE(ParseDistribution("bogus").ok());
}

}  // namespace
}  // namespace shadoop::workload
