// Regenerates tests/golden/ops.golden, the per-operation parity baseline
// used by parity_test. Run it only when an intentional behavior change
// invalidates the baseline:
//
//   ./build/tools/golden_capture tests/golden/ops.golden

#include <cstdio>
#include <fstream>

#include "golden_workload.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-file>\n", argv[0]);
    return 2;
  }
  shadoop::testing::GoldenWorkload workload;
  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s'\n", argv[1]);
    return 1;
  }
  for (const std::string& line : workload.Run()) out << line << "\n";
  std::printf("wrote %s\n", argv[1]);
  return 0;
}
