#include "analyze/analyzer.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

namespace shadoop::analyze {
namespace {

using lint::Finding;

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Whole-token occurrences of `token` in `line` (same contract as the
/// lint engine: an adjacent identifier character rejects the match).
std::vector<size_t> TokenHits(const std::string& line,
                              std::string_view token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// Non-member C-style calls `name(` — `sw.time()` is some other API.
bool HasFreeCall(const std::string& line, std::string_view name) {
  for (size_t pos : TokenHits(line, name)) {
    if (pos > 0 && (line[pos - 1] == '.' ||
                    (line[pos - 1] == '>' && pos > 1 &&
                     line[pos - 2] == '-'))) {
      continue;
    }
    size_t i = pos + name.size();
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '(') return true;
  }
  return false;
}

/// `// lint:allow(a, b)` and `// analyze:allow(a, b)` ids on one line.
std::set<std::string> AllowedIds(const std::string& raw_line) {
  std::set<std::string> allowed;
  for (std::string_view marker : {"lint:allow(", "analyze:allow("}) {
    size_t pos = 0;
    while ((pos = raw_line.find(marker, pos)) != std::string::npos) {
      size_t i = pos + marker.size();
      std::string id;
      for (; i < raw_line.size() && raw_line[i] != ')'; ++i) {
        const char c = raw_line[i];
        if (c == ',') {
          if (!id.empty()) allowed.insert(id);
          id.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          id.push_back(c);
        }
      }
      if (!id.empty()) allowed.insert(id);
      pos = i;
    }
  }
  return allowed;
}

// ---------------------------------------------------------------------------
// Taint configuration (DESIGN.md §16.2)

/// Modules whose functions are the query path: everything a Pigeon
/// statement, a server request, or a direct op call executes. Any
/// function defined here is a taint root; anything those reach by call
/// is on the query path transitively.
const char* const kEntryModules[] = {"core", "catalog", "optimizer",
                                     "pigeon", "server"};

struct SinkSpec {
  const char* kind;        // Stable half of the baseline key.
  const char* lint_alias;  // Legacy lint rule id honored in escapes.
  std::vector<const char*> tokens;
  std::vector<const char*> calls;
  /// Paths where this sink class is legal: suffix entries match file
  /// tails, entries ending in '/' match directories anywhere in the
  /// path. The wall-clock sinks are legal inside the Stopwatch wrapper
  /// itself and in the bench harness (whose whole point is wall time);
  /// the seeded-RNG engine is legal inside common/random only.
  std::vector<const char*> allowed_paths;
};

const std::vector<SinkSpec>& SinkSpecs() {
  static const std::vector<SinkSpec>* kSpecs = new std::vector<SinkSpec>{
      {"wall-clock",
       "banned-clock",
       {"Stopwatch", "wall_ms", "system_clock", "steady_clock",
        "high_resolution_clock", "gettimeofday", "clock_gettime",
        "localtime", "gmtime"},
       {"time", "clock"},
       {"common/stopwatch.h", "bench/"}},
      {"nondet-seed",
       "banned-random",
       {"random_device", "mt19937", "mt19937_64", "default_random_engine",
        "minstd_rand", "minstd_rand0", "ranlux24", "ranlux48"},
       {"rand", "srand", "drand48", "random"},
       {"common/random.h", "common/random.cc", "bench/"}},
      {"unordered-iteration",
       "unordered-iteration",
       {},  // Structural detection, see UnorderedIterationHits().
       {},
       {}},
  };
  return *kSpecs;
}

bool PathAllowed(const std::string& repo_path, const SinkSpec& spec) {
  for (const char* entry : spec.allowed_paths) {
    const std::string_view e(entry);
    if (!e.empty() && e.back() == '/') {
      if (repo_path.find(e) != std::string::npos ||
          repo_path.rfind(e, 0) == 0) {
        return true;
      }
    } else if (EndsWith(repo_path, e)) {
      return true;
    }
  }
  return false;
}

struct SinkHit {
  std::string kind;
  std::string token;
  int line = 0;
};

/// Names declared with an unordered container type anywhere in the
/// file (template arguments may span lines; scan the joined text).
std::vector<std::string> UnorderedNames(const FileInfo& file) {
  std::string text;
  for (const std::string& line : file.code) {
    text += line;
    text += '\n';
  }
  std::vector<std::string> names;
  for (std::string_view token : {"unordered_map", "unordered_set",
                                 "unordered_multimap", "unordered_multiset"}) {
    size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
      const size_t start = pos;
      pos += token.size();
      if (start > 0 && IsIdentChar(text[start - 1])) continue;
      size_t i = pos;
      while (i < text.size() &&
             std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      if (i >= text.size() || text[i] != '<') continue;
      int depth = 0;
      for (; i < text.size(); ++i) {
        if (text[i] == '<') ++depth;
        if (text[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
      }
      while (i < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[i])) ||
              text[i] == '&' || text[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < text.size() && IsIdentChar(text[i])) name.push_back(text[i++]);
      if (!name.empty()) names.push_back(name);
    }
  }
  return names;
}

/// Hash-order leaks only: a range-for over an unordered name, or an
/// explicit `.begin()` / `.cbegin()` iterator walk. Point lookups
/// (`find`, `count`, `.end()` comparisons) are order-independent.
std::vector<size_t> UnorderedIterationHits(
    const std::string& line, const std::vector<std::string>& names) {
  std::vector<size_t> hits;
  for (const std::string& name : names) {
    for (size_t pos : TokenHits(line, name)) {
      size_t j = pos + name.size();
      while (j < line.size() && line[j] == ' ') ++j;
      if (j < line.size() && line[j] == '.') {
        ++j;
        while (j < line.size() && line[j] == ' ') ++j;
        for (std::string_view it : {"begin", "cbegin"}) {
          if (line.compare(j, it.size(), it) == 0) {
            size_t k = j + it.size();
            while (k < line.size() && line[k] == ' ') ++k;
            if (k < line.size() && line[k] == '(') hits.push_back(pos);
            break;
          }
        }
      }
      size_t before = pos;
      while (before > 0 && line[before - 1] == ' ') --before;
      const bool colon_before = before > 0 && line[before - 1] == ':' &&
                                (before < 2 || line[before - 2] != ':');
      size_t after = pos + name.size();
      while (after < line.size() && line[after] == ' ') ++after;
      const bool paren_after = after < line.size() && line[after] == ')';
      if (colon_before && paren_after && !TokenHits(line, "for").empty()) {
        hits.push_back(pos);
      }
    }
  }
  return hits;
}

/// All sink hits on lines [begin, end] (1-based, inclusive) of `file`,
/// after per-line escapes and per-path allowlists.
std::vector<SinkHit> ScanRange(const FileInfo& file,
                               const std::vector<std::string>& unordered_names,
                               int begin, int end) {
  std::vector<SinkHit> hits;
  begin = std::max(begin, 1);
  end = std::min(end, static_cast<int>(file.code.size()));
  for (int lineno = begin; lineno <= end; ++lineno) {
    const std::string& line = file.code[static_cast<size_t>(lineno) - 1];
    const std::string& raw = file.raw[static_cast<size_t>(lineno) - 1];
    const std::set<std::string> allowed = AllowedIds(raw);
    for (const SinkSpec& spec : SinkSpecs()) {
      if (PathAllowed(file.repo_path, spec)) continue;
      if (allowed.count(spec.kind) > 0 || allowed.count(spec.lint_alias) > 0 ||
          allowed.count("determinism-taint") > 0) {
        continue;
      }
      std::string token;
      for (const char* t : spec.tokens) {
        if (!TokenHits(line, t).empty()) {
          token = t;
          break;
        }
      }
      if (token.empty()) {
        for (const char* c : spec.calls) {
          if (HasFreeCall(line, c)) {
            token = std::string(c) + "()";
            break;
          }
        }
      }
      if (token.empty() && std::string_view(spec.kind) == "unordered-iteration" &&
          !UnorderedIterationHits(line, unordered_names).empty()) {
        token = "hash-order iteration";
      }
      if (!token.empty()) hits.push_back({spec.kind, token, lineno});
    }
  }
  return hits;
}

// ---------------------------------------------------------------------------
// Layer DAG (DESIGN.md §16.3). A module may include itself and strictly
// lower layers; peer (same-rank) and upward includes invert the
// architecture and are findings. Files outside src/ (tools, bench,
// tests, examples) sit on the implicit application layer above
// everything: they may include any src module, and no src module may
// include them.

const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int>* kRanks =
      new std::map<std::string, int>{
          {"common", 0},    {"fault", 0},   {"simd", 0}, {"geometry", 1},
          {"hdfs", 1},      {"mapreduce", 2}, {"index", 3}, {"core", 4},
          {"workload", 4},  {"catalog", 5}, {"viz", 5},  {"optimizer", 6},
          {"pigeon", 7},    {"server", 8},
      };
  return *kRanks;
}

constexpr int kAppRank = 100;

std::string ChainName(const FunctionInfo& fn) {
  return fn.qualified.empty() ? fn.name : fn.qualified;
}

}  // namespace

Analyzer::Analyzer() {
  rules_ = {
      {"determinism-taint",
       "a query-path function transitively reaches a wall-clock read, "
       "nondeterministic seed, or unordered-container iteration outside "
       "the allowlisted modules; the message prints the full call chain "
       "— fix the sink, or baseline it with the printed key"},
      {"layer-violation",
       "an #include crosses the declared layer DAG upward or sideways "
       "(e.g. src/core including src/server); lower layers must not "
       "depend on higher or peer layers"},
      {"layer-undeclared",
       "a src/ module is missing from the declared layer DAG; rank it in "
       "tools/analyze/analyzer.cc and the DESIGN.md §16.3 table"},
      {"include-cycle",
       "project headers include each other in a cycle; break the cycle "
       "with a forward declaration or an interface split"},
      {"stale-baseline",
       "a baseline entry matches no current finding; delete the entry so "
       "the baseline stays an exact inventory of real exceptions"},
  };
}

void Analyzer::LoadBaseline(std::string_view path, std::string_view contents) {
  baseline_path_ = RepoRelative(path);
  int lineno = 0;
  size_t start = 0;
  const std::string text(contents);
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream in(line);
    BaselineEntry entry;
    entry.line = lineno;
    if (!(in >> entry.rule)) continue;  // Blank / comment-only line.
    in >> entry.key;                    // Empty key => malformed, kept.
    baseline_.push_back(std::move(entry));
  }
}

std::vector<lint::Finding> Analyzer::Run() const {
  const std::vector<FileInfo>& files = index_.files();
  const std::vector<FunctionInfo>& functions = index_.functions();

  // Keyed findings: the key is what the baseline file matches against.
  std::vector<std::pair<Finding, std::string>> keyed;

  // -- 1. Sink collection ---------------------------------------------------

  std::vector<std::vector<SinkHit>> fn_sinks(functions.size());
  std::vector<std::vector<SinkHit>> file_scope_sinks(files.size());
  std::set<std::string> entry_modules;
  for (const char* m : kEntryModules) entry_modules.insert(m);

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const FileInfo& file = files[fi];
    const std::vector<std::string> unordered_names = UnorderedNames(file);
    std::vector<bool> covered(file.code.size() + 1, false);
    for (int fid : file.functions) {
      const FunctionInfo& fn = functions[static_cast<size_t>(fid)];
      fn_sinks[static_cast<size_t>(fid)] =
          ScanRange(file, unordered_names, fn.line, fn.body_end);
      for (int l = fn.line; l <= fn.body_end &&
                            l <= static_cast<int>(file.code.size());
           ++l) {
        covered[static_cast<size_t>(l)] = true;
      }
    }
    // File-scope lines (field declarations, globals) have no caller, so
    // reachability cannot see them; flag them directly — but only in
    // query-path modules, mirroring the taint roots.
    if (file.in_src && entry_modules.count(file.module) > 0) {
      for (int l = 1; l <= static_cast<int>(file.code.size()); ++l) {
        if (covered[static_cast<size_t>(l)]) continue;
        std::vector<SinkHit> hits = ScanRange(file, unordered_names, l, l);
        file_scope_sinks[fi].insert(file_scope_sinks[fi].end(), hits.begin(),
                                    hits.end());
      }
    }
  }

  // -- 2. Call graph + reachability from the query-path entries -------------

  std::map<std::string, std::vector<int>> by_name;
  std::map<std::string, std::vector<int>> by_qualified;
  for (size_t i = 0; i < functions.size(); ++i) {
    by_name[functions[i].name].push_back(static_cast<int>(i));
    if (!functions[i].qualified.empty()) {
      by_qualified[functions[i].qualified].push_back(static_cast<int>(i));
    }
  }

  std::vector<std::vector<int>> callees(functions.size());
  for (size_t i = 0; i < functions.size(); ++i) {
    std::set<int> out;
    for (const CallSite& call : functions[i].calls) {
      const std::vector<int>* targets = nullptr;
      if (!call.qualified.empty()) {
        auto it = by_qualified.find(call.qualified);
        if (it != by_qualified.end()) targets = &it->second;
      }
      if (targets == nullptr) {
        auto it = by_name.find(call.name);
        if (it != by_name.end()) targets = &it->second;
      }
      if (targets == nullptr) continue;
      for (int t : *targets) {
        if (t != static_cast<int>(i)) out.insert(t);
      }
    }
    callees[i].assign(out.begin(), out.end());
  }

  std::vector<int> dist(functions.size(), -1);
  std::vector<int> parent(functions.size(), -1);
  std::deque<int> queue;
  for (size_t i = 0; i < functions.size(); ++i) {
    const FileInfo& file = files[static_cast<size_t>(functions[i].file)];
    if (file.in_src && entry_modules.count(file.module) > 0) {
      dist[i] = 0;
      queue.push_back(static_cast<int>(i));
    }
  }
  while (!queue.empty()) {
    const int cur = queue.front();
    queue.pop_front();
    for (int next : callees[static_cast<size_t>(cur)]) {
      if (dist[static_cast<size_t>(next)] >= 0) continue;
      dist[static_cast<size_t>(next)] = dist[static_cast<size_t>(cur)] + 1;
      parent[static_cast<size_t>(next)] = cur;
      queue.push_back(next);
    }
  }

  // -- 3. Taint findings ----------------------------------------------------

  for (size_t i = 0; i < functions.size(); ++i) {
    if (dist[i] < 0 || fn_sinks[i].empty()) continue;
    const FunctionInfo& fn = functions[i];
    const FileInfo& file = files[static_cast<size_t>(fn.file)];
    // One finding per sink kind in this function.
    std::map<std::string, std::vector<const SinkHit*>> by_kind;
    for (const SinkHit& hit : fn_sinks[i]) by_kind[hit.kind].push_back(&hit);
    for (const auto& [kind, hits] : by_kind) {
      std::vector<std::string> chain;
      for (int cur = static_cast<int>(i); cur >= 0;
           cur = parent[static_cast<size_t>(cur)]) {
        chain.push_back(ChainName(functions[static_cast<size_t>(cur)]));
      }
      std::reverse(chain.begin(), chain.end());
      std::ostringstream msg;
      msg << kind << " sink '" << hits.front()->token << "' ("
          << hits.size() << " site" << (hits.size() == 1 ? "" : "s")
          << ") reachable from the query path; call chain: ";
      const FunctionInfo& entry_fn =
          functions[static_cast<size_t>([&] {
            int cur = static_cast<int>(i);
            while (parent[static_cast<size_t>(cur)] >= 0) {
              cur = parent[static_cast<size_t>(cur)];
            }
            return cur;
          }())];
      const FileInfo& entry_file =
          files[static_cast<size_t>(entry_fn.file)];
      for (size_t c = 0; c < chain.size(); ++c) {
        if (c > 0) msg << " -> ";
        msg << chain[c];
      }
      msg << " [entry " << entry_file.repo_path << ":" << entry_fn.line
          << ", sink " << file.repo_path << ":" << hits.front()->line << "]";
      const std::string key = kind + (":" + fn.qualified);
      msg << "; baseline key '" << key << "'";
      keyed.push_back({Finding{file.repo_path, hits.front()->line,
                               "determinism-taint", msg.str()},
                       key});
    }
  }

  for (size_t fi = 0; fi < files.size(); ++fi) {
    if (file_scope_sinks[fi].empty()) continue;
    const FileInfo& file = files[fi];
    std::map<std::string, std::vector<const SinkHit*>> by_kind;
    for (const SinkHit& hit : file_scope_sinks[fi]) {
      by_kind[hit.kind].push_back(&hit);
    }
    for (const auto& [kind, hits] : by_kind) {
      std::ostringstream msg;
      msg << kind << " sink '" << hits.front()->token << "' (" << hits.size()
          << " site" << (hits.size() == 1 ? "" : "s")
          << ") at file scope in query-path module '" << file.module << "'";
      const std::string key = kind + ":file:" + file.repo_path;
      msg << "; baseline key '" << key << "'";
      keyed.push_back({Finding{file.repo_path, hits.front()->line,
                               "determinism-taint", msg.str()},
                       key});
    }
  }

  // -- 4. Layering ----------------------------------------------------------

  const std::map<std::string, int>& ranks = LayerRanks();
  std::set<std::string> undeclared_reported;
  std::vector<std::vector<int>> include_graph(files.size());
  std::vector<std::vector<int>> include_lines(files.size());

  for (size_t fi = 0; fi < files.size(); ++fi) {
    const FileInfo& file = files[fi];
    for (const IncludeEdge& edge : file.includes) {
      const int target = index_.ResolveInclude(static_cast<int>(fi), edge);
      if (target < 0) continue;
      include_graph[fi].push_back(target);
      include_lines[fi].push_back(edge.line);
      if (!file.in_src) continue;  // Apps may include anything.
      const FileInfo& dst = files[static_cast<size_t>(target)];
      if (dst.module == file.module && dst.in_src == file.in_src) continue;
      auto src_rank = ranks.find(file.module);
      if (src_rank == ranks.end()) {
        if (undeclared_reported.insert(file.module).second) {
          keyed.push_back(
              {Finding{file.repo_path, edge.line, "layer-undeclared",
                       "src module '" + file.module +
                           "' is not ranked in the layer DAG (DESIGN.md "
                           "§16.3); declare it in tools/analyze/analyzer.cc"},
               "module:" + file.module});
        }
        continue;
      }
      int dst_rank = kAppRank;
      std::string dst_layer = "application layer";
      if (dst.in_src) {
        auto it = ranks.find(dst.module);
        if (it == ranks.end()) {
          if (undeclared_reported.insert(dst.module).second) {
            keyed.push_back(
                {Finding{dst.repo_path, 1, "layer-undeclared",
                         "src module '" + dst.module +
                             "' is not ranked in the layer DAG (DESIGN.md "
                             "§16.3); declare it in tools/analyze/analyzer.cc"},
                 "module:" + dst.module});
          }
          continue;
        }
        dst_rank = it->second;
        dst_layer = "layer " + std::to_string(dst_rank);
      }
      if (dst_rank < src_rank->second) continue;
      std::ostringstream msg;
      msg << "layer order violated: " << file.module << " (layer "
          << src_rank->second << ") -> " << dst.module << " (" << dst_layer
          << ") via include \"" << edge.spec << "\" of " << dst.repo_path
          << "; a module may include only strictly lower layers";
      const std::string key = file.module + "->" + dst.module;
      msg << "; baseline key '" << key << "'";
      keyed.push_back(
          {Finding{file.repo_path, edge.line, "layer-violation", msg.str()},
           key});
    }
  }

  // -- 5. Include cycles ----------------------------------------------------

  {
    std::vector<int> color(files.size(), 0);  // 0 white, 1 gray, 2 black.
    std::vector<int> path;
    std::set<std::string> seen_cycles;
    // Recursive DFS via explicit stack of (node, next-child-index).
    for (size_t start = 0; start < files.size(); ++start) {
      if (color[start] != 0) continue;
      std::vector<std::pair<int, size_t>> stack{{static_cast<int>(start), 0}};
      color[start] = 1;
      path.push_back(static_cast<int>(start));
      while (!stack.empty()) {
        auto& [node, child] = stack.back();
        if (child >= include_graph[static_cast<size_t>(node)].size()) {
          color[static_cast<size_t>(node)] = 2;
          path.pop_back();
          stack.pop_back();
          continue;
        }
        const int next = include_graph[static_cast<size_t>(node)][child++];
        if (color[static_cast<size_t>(next)] == 1) {
          // Found a cycle: path from `next` to `node`, then back.
          std::vector<int> cycle;
          bool in_cycle = false;
          for (int p : path) {
            if (p == next) in_cycle = true;
            if (in_cycle) cycle.push_back(p);
          }
          // Canonicalize: rotate so the lexicographically smallest
          // repo path leads, so the finding is stable.
          size_t min_at = 0;
          for (size_t c = 1; c < cycle.size(); ++c) {
            if (files[static_cast<size_t>(cycle[c])].repo_path <
                files[static_cast<size_t>(cycle[min_at])].repo_path) {
              min_at = c;
            }
          }
          std::rotate(cycle.begin(), cycle.begin() + static_cast<long>(min_at),
                      cycle.end());
          std::ostringstream chain;
          for (int c : cycle) {
            chain << files[static_cast<size_t>(c)].repo_path << " -> ";
          }
          chain << files[static_cast<size_t>(cycle.front())].repo_path;
          const std::string key =
              "cycle:" + files[static_cast<size_t>(cycle.front())].repo_path;
          if (seen_cycles.insert(chain.str()).second) {
            // Anchor the finding on the first edge of the canonical
            // cycle so it is clickable.
            const int head = cycle.front();
            const int second =
                cycle.size() > 1 ? cycle[1] : cycle.front();
            int line = 1;
            const auto& outs = include_graph[static_cast<size_t>(head)];
            for (size_t e = 0; e < outs.size(); ++e) {
              if (outs[e] == second) {
                line = include_lines[static_cast<size_t>(head)][e];
                break;
              }
            }
            keyed.push_back(
                {Finding{files[static_cast<size_t>(head)].repo_path, line,
                         "include-cycle",
                         "include cycle: " + chain.str() +
                             "; baseline key '" + key + "'"},
                 key});
          }
        } else if (color[static_cast<size_t>(next)] == 0) {
          color[static_cast<size_t>(next)] = 1;
          path.push_back(next);
          stack.push_back({next, 0});
        }
      }
    }
  }

  // -- 6. Baseline subtraction + stale entries ------------------------------

  std::vector<bool> used(baseline_.size(), false);
  std::vector<Finding> findings;
  for (auto& [finding, key] : keyed) {
    bool suppressed = false;
    for (size_t b = 0; b < baseline_.size(); ++b) {
      if (baseline_[b].rule == finding.rule && baseline_[b].key == key &&
          !key.empty()) {
        used[b] = true;
        suppressed = true;
      }
    }
    if (!suppressed) findings.push_back(std::move(finding));
  }
  for (size_t b = 0; b < baseline_.size(); ++b) {
    if (used[b]) continue;
    const BaselineEntry& entry = baseline_[b];
    const std::string what =
        entry.key.empty()
            ? "malformed baseline line (want: rule-id key)"
            : "baseline entry '" + entry.rule + " " + entry.key +
                  "' matches no current finding; delete it (the exception "
                  "it excused is gone)";
    findings.push_back(
        Finding{baseline_path_.empty() ? "<baseline>" : baseline_path_,
                entry.line, "stale-baseline", what});
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
  return findings;
}

}  // namespace shadoop::analyze
