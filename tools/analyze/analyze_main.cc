// CLI over the cross-TU analyzer (DESIGN.md §16).
//
//   spatial_analyze [--baseline FILE] [--report FILE] [path...]
//       index trees/files and run the determinism-taint + layering
//       analyses (default paths: src tools bench)
//   spatial_analyze --rules    list the rule registry
//
// Exit codes: 0 clean, 1 findings, 2 usage error. Findings print as
// "file:line: rule-id: message" — the same contract as spatial_lint —
// so CI annotations and editors can jump to them. --report duplicates
// the findings (plus their call chains) into a file that the CI job
// uploads as an artifact on failure.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "lint/lint_engine.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string baseline_path;
  std::string report_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      shadoop::analyze::Analyzer analyzer;
      for (const shadoop::lint::RuleInfo& rule : analyzer.rules()) {
        std::cout << rule.id << ": " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: spatial_analyze [--rules] [--baseline FILE] "
             "[--report FILE] [path...]\n"
             "cross-TU determinism-taint and layering analysis over "
             ".h/.hpp/.cc/.cpp trees (default paths: src tools bench)\n";
      return 0;
    }
    if (arg == "--baseline" || arg == "--report") {
      if (i + 1 >= argc) {
        std::cerr << "spatial_analyze: " << arg << " needs a file argument\n";
        return 2;
      }
      (arg == "--baseline" ? baseline_path : report_path) = argv[++i];
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "spatial_analyze: unknown flag '" << arg << "'\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  shadoop::analyze::Analyzer analyzer;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      if (!analyzer.AddTree(path)) {
        std::cerr << "spatial_analyze: cannot walk tree: " << path << "\n";
        return 2;
      }
    } else if (std::filesystem::is_regular_file(path, ec)) {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream contents;
      contents << in.rdbuf();
      analyzer.AddFile(path, contents.str());
    } else {
      std::cerr << "spatial_analyze: no such file or directory: " << path
                << "\n";
      return 2;
    }
  }
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "spatial_analyze: cannot read baseline: " << baseline_path
                << "\n";
      return 2;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    analyzer.LoadBaseline(baseline_path, contents.str());
  }

  const std::vector<shadoop::lint::Finding> findings = analyzer.Run();
  std::ostringstream report;
  for (const shadoop::lint::Finding& finding : findings) {
    const std::string line = shadoop::lint::FormatFinding(finding);
    std::cout << line << "\n";
    report << line << "\n";
  }
  if (!report_path.empty()) {
    std::ofstream out(report_path, std::ios::binary | std::ios::trunc);
    out << (findings.empty() ? std::string("spatial_analyze: clean\n")
                             : report.str());
  }
  if (findings.empty()) {
    std::cout << "spatial_analyze: clean\n";
    return 0;
  }
  std::cerr << "spatial_analyze: " << findings.size() << " finding(s)\n";
  return 1;
}
