#ifndef SHADOOP_TOOLS_ANALYZE_ANALYZER_H_
#define SHADOOP_TOOLS_ANALYZE_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

#include "analyze/source_index.h"
#include "lint/lint_engine.h"

/// Cross-TU determinism and architecture analyzer (DESIGN.md §16).
///
/// Two whole-tree analyses over the SourceIndex, sharing the lint
/// engine's finding format, allow-escape convention and CI-annotation
/// contract (`file:line: rule-id: message`):
///
///   1. determinism-taint — seeds a sink set (wall-clock reads,
///      nondeterministic seeds, unordered-container iteration) and
///      propagates reachability over the call graph from the query-path
///      entry modules (core/catalog/optimizer/pigeon/server). Any
///      query-path function that transitively reaches a sink outside
///      the allowlisted modules is a finding whose message prints the
///      full call chain. This subsumes the retired path-scoped
///      `server-wall-clock` / `optimizer-wall-clock` lint rules with
///      one analysis that also sees indirect reads.
///   2. layering — the declared layer DAG (§16.3) checked against the
///      include graph, plus file-level include-cycle detection.
///
/// Pre-existing, deliberate exceptions live in a checked-in baseline
/// file keyed by stable identities (function, module pair, cycle), so
/// an exception is explicit, reviewable, and fails the build again the
/// moment its entry is deleted.
namespace shadoop::analyze {

/// One parsed baseline line: `rule-id key` (with '#' comments).
struct BaselineEntry {
  std::string rule;
  std::string key;
  int line = 0;  // 1-based line in the baseline file.
};

class Analyzer {
 public:
  Analyzer();

  /// The analyzer's rule registry, mirroring the lint engine's: every
  /// id here must have a DESIGN.md documentation row (enforced by the
  /// meta-test in tests/analyze_test.cc).
  const std::vector<lint::RuleInfo>& rules() const { return rules_; }

  /// Adds one in-memory file (fixture trees in tests) or a whole tree.
  void AddFile(std::string_view path, std::string_view contents) {
    index_.AddFile(path, contents);
  }
  bool AddTree(const std::string& root) { return index_.AddTree(root); }

  /// Parses baseline `rule-id key` lines. `path` labels stale-baseline
  /// findings. Returns false (with a usage finding from Run()) on a
  /// malformed line.
  void LoadBaseline(std::string_view path, std::string_view contents);

  const SourceIndex& index() const { return index_; }

  /// Runs both analyses and returns findings sorted by
  /// (file, line, rule), after subtracting baselined exceptions and
  /// adding a `stale-baseline` finding for every entry that no longer
  /// matches anything.
  std::vector<lint::Finding> Run() const;

 private:
  SourceIndex index_;
  std::vector<lint::RuleInfo> rules_;
  std::string baseline_path_;
  std::vector<BaselineEntry> baseline_;
};

}  // namespace shadoop::analyze

#endif  // SHADOOP_TOOLS_ANALYZE_ANALYZER_H_
