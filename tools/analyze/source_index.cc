#include "analyze/source_index.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace shadoop::analyze {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

std::string NormalizePath(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

std::vector<std::string> SplitLines(std::string_view contents) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= contents.size()) {
    size_t end = contents.find('\n', start);
    if (end == std::string_view::npos) {
      if (start < contents.size()) lines.emplace_back(contents.substr(start));
      break;
    }
    lines.emplace_back(contents.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// Same blanking contract as the lint engine: comment bodies and
/// string/char-literal contents become spaces so nothing downstream
/// fires on prose or literals. Block comments carry state across lines;
/// a string never spans a line break in this codebase.
std::vector<std::string> BlankCommentsAndLiterals(
    const std::vector<std::string>& raw) {
  enum class State { kCode, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const std::string& line : raw) {
    std::string code = line;
    for (size_t i = 0; i < code.size(); ++i) {
      switch (state) {
        case State::kCode:
          if (code[i] == '/' && i + 1 < code.size() && code[i + 1] == '/') {
            for (size_t j = i; j < code.size(); ++j) code[j] = ' ';
            i = code.size();
          } else if (code[i] == '/' && i + 1 < code.size() &&
                     code[i + 1] == '*') {
            code[i] = code[i + 1] = ' ';
            ++i;
            state = State::kBlockComment;
          } else if (code[i] == '"') {
            code[i] = ' ';
            state = State::kString;
          } else if (code[i] == '\'') {
            code[i] = ' ';
            state = State::kChar;
          }
          break;
        case State::kBlockComment:
          if (code[i] == '*' && i + 1 < code.size() && code[i + 1] == '/') {
            code[i] = code[i + 1] = ' ';
            ++i;
            state = State::kCode;
          } else {
            code[i] = ' ';
          }
          break;
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (code[i] == '\\' && i + 1 < code.size()) {
            code[i] = code[i + 1] = ' ';
            ++i;
          } else {
            const bool closes = code[i] == quote;
            code[i] = ' ';
            if (closes) state = State::kCode;
          }
          break;
        }
      }
    }
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.push_back(std::move(code));
  }
  return out;
}

/// Include directives are read from the *raw* lines (the blanked text
/// has lost the quoted path), but only on lines whose blanked form
/// still starts with '#' — a directive quoted inside a comment is gone
/// after blanking and must not count.
std::vector<IncludeEdge> ExtractIncludes(const std::vector<std::string>& raw,
                                         const std::vector<std::string>& code) {
  std::vector<IncludeEdge> edges;
  for (size_t i = 0; i < raw.size(); ++i) {
    const std::string& c = code[i];
    size_t k = c.find_first_not_of(" \t");
    if (k == std::string::npos || c[k] != '#') continue;
    const std::string& r = raw[i];
    size_t pos = r.find("include");
    if (pos == std::string::npos) continue;
    pos += 7;
    while (pos < r.size() &&
           std::isspace(static_cast<unsigned char>(r[pos]))) {
      ++pos;
    }
    if (pos >= r.size()) continue;
    char open = r[pos];
    char close = open == '"' ? '"' : open == '<' ? '>' : '\0';
    if (close == '\0') continue;
    size_t end = r.find(close, pos + 1);
    if (end == std::string::npos) continue;
    IncludeEdge edge;
    edge.spec = r.substr(pos + 1, end - pos - 1);
    edge.quoted = open == '"';
    edge.line = static_cast<int>(i) + 1;
    edges.push_back(std::move(edge));
  }
  return edges;
}

// ---------------------------------------------------------------------------
// Tokenizer

struct Token {
  std::string text;
  int line = 0;  // 1-based.
  bool ident = false;
};

/// Tokenizes the blanked code. Preprocessor lines (and their backslash
/// continuations) are skipped entirely: macro bodies routinely contain
/// unbalanced-looking fragments that would corrupt the brace tracking.
std::vector<Token> Tokenize(const std::vector<std::string>& code) {
  std::vector<Token> toks;
  bool continuation = false;
  for (size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    const bool was_continuation = continuation;
    continuation = !line.empty() && line.back() == '\\';
    if (was_continuation) continue;
    size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos && line[first] == '#') continue;
    const int lineno = static_cast<int>(li) + 1;
    for (size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t j = i;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        toks.push_back({line.substr(i, j - i), lineno, true});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t j = i;
        while (j < line.size() && (IsIdentChar(line[j]) || line[j] == '.')) {
          ++j;
        }
        toks.push_back({line.substr(i, j - i), lineno, false});
        i = j;
        continue;
      }
      // Two-char tokens the parser cares about.
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        toks.push_back({"::", lineno, false});
        i += 2;
        continue;
      }
      if (c == '-' && i + 1 < line.size() && line[i + 1] == '>') {
        toks.push_back({"->", lineno, false});
        i += 2;
        continue;
      }
      toks.push_back({std::string(1, c), lineno, false});
      ++i;
    }
  }
  return toks;
}

/// Identifiers that look like a call/definition head but are control
/// flow, operators or primitive-type syntax.
bool IsReservedHead(const std::string& ident) {
  static const char* kReserved[] = {
      "if",       "else",     "for",      "while",    "do",
      "switch",   "case",     "return",   "sizeof",   "alignof",
      "decltype", "static_assert",        "new",      "delete",
      "throw",    "catch",    "constexpr","noexcept", "template",
      "typename", "using",    "namespace","class",    "struct",
      "enum",     "union",    "public",   "private",  "protected",
      "const",    "static",   "inline",   "virtual",  "explicit",
      "void",     "int",      "bool",     "char",     "double",
      "long",     "short",    "unsigned", "signed",   "auto",
      "float",    "defined",  "requires", "alignas",  "co_return",
      "co_await", "co_yield", "goto",     "typedef",  "assert"};
  for (const char* r : kReserved) {
    if (ident == r) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Parser: one forward pass over the token stream per file, tracking a
// scope stack (namespace/class/function/other) and, at non-function
// scope, a "candidate signature" armed by `ident (...)` and confirmed
// by a following '{' (possibly across const/noexcept/override/trailing
// return/ctor-initializer tokens).

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kOther } kind = kOther;
  std::string name;   // Class name for kClass.
  int func = -1;      // functions_ index for kFunction.
};

class FileParser {
 public:
  FileParser(int file_id, const std::vector<Token>& toks,
             std::vector<FunctionInfo>* functions)
      : file_(file_id), toks_(toks), functions_(functions) {}

  std::vector<int> Parse() {
    for (size_t i = 0; i < toks_.size(); ++i) Step(i);
    // Close any function left open by unbalanced input.
    while (!scopes_.empty()) PopScope(toks_.empty() ? 0 : toks_.back().line);
    return defined_;
  }

 private:
  enum class Sig { kNone, kInParams, kArmed, kInitList };

  const Token& T(size_t i) const { return toks_[i]; }

  bool InFunction() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return true;
    }
    return false;
  }

  int EnclosingFunction() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kFunction) return it->func;
    }
    return -1;
  }

  std::string EnclosingClass() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  }

  void PopScope(int line) {
    if (scopes_.empty()) return;
    if (scopes_.back().kind == Scope::kFunction && scopes_.back().func >= 0) {
      (*functions_)[static_cast<size_t>(scopes_.back().func)].body_end = line;
    }
    scopes_.pop_back();
  }

  /// The `A::B::` qualifier chain written immediately before token i.
  std::string QualifierBefore(size_t i) const {
    std::string qual;
    size_t j = i;
    while (j >= 2 && T(j - 1).text == "::" && T(j - 2).ident) {
      qual = T(j - 2).text + (qual.empty() ? "" : "::" + qual);
      j -= 2;
    }
    return qual;
  }

  void RecordCall(size_t i) {
    const int func = EnclosingFunction();
    if (func < 0) return;
    const std::string& name = T(i).text;
    if (IsReservedHead(name)) return;
    CallSite call;
    call.name = name;
    call.line = T(i).line;
    const std::string qual = QualifierBefore(i);
    if (!qual.empty()) call.qualified = qual + "::" + name;
    (*functions_)[static_cast<size_t>(func)].calls.push_back(std::move(call));
  }

  /// Classifies an unexplained '{' at non-function scope by scanning
  /// back to the previous statement boundary.
  Scope ClassifyBrace(size_t i) const {
    Scope scope;
    scope.kind = Scope::kOther;
    size_t j = i;
    while (j > 0) {
      const Token& t = T(j - 1);
      if (t.text == ";" || t.text == "{" || t.text == "}") break;
      if (t.text == "=") return scope;  // Aggregate initializer.
      if (t.ident && t.text == "namespace") {
        scope.kind = Scope::kNamespace;
        if (j < i && T(j).ident) scope.name = T(j).text;
        return scope;
      }
      if (t.ident && (t.text == "class" || t.text == "struct" ||
                      t.text == "union" || t.text == "enum")) {
        scope.kind = Scope::kClass;
        // The name is the last identifier before '{' or a base-list ':'.
        for (size_t k = j; k < i; ++k) {
          if (T(k).text == ":") break;
          if (T(k).ident && !IsReservedHead(T(k).text)) scope.name = T(k).text;
        }
        return scope;
      }
      --j;
    }
    return scope;
  }

  void StartFunction(size_t brace_index) {
    FunctionInfo fn;
    fn.name = cand_name_;
    fn.qualified = cand_qualified_;
    if (fn.qualified.empty()) {
      const std::string cls = EnclosingClass();
      fn.qualified = cls.empty() ? fn.name : cls + "::" + fn.name;
    }
    fn.file = file_;
    fn.line = cand_line_;
    fn.body_begin = T(brace_index).line;
    fn.body_end = T(brace_index).line;
    const int id = static_cast<int>(functions_->size());
    functions_->push_back(std::move(fn));
    defined_.push_back(id);
    Scope scope;
    scope.kind = Scope::kFunction;
    scope.func = id;
    scopes_.push_back(scope);
    sig_ = Sig::kNone;
  }

  void Step(size_t i) {
    const Token& t = T(i);
    if (InFunction()) {
      if (t.text == "{") {
        scopes_.push_back(Scope{Scope::kOther, "", -1});
      } else if (t.text == "}") {
        PopScope(t.line);
      } else if (t.ident && i + 1 < toks_.size() && T(i + 1).text == "(") {
        RecordCall(i);
      }
      return;
    }

    switch (sig_) {
      case Sig::kNone:
        if (t.ident && !IsReservedHead(t.text) && i + 1 < toks_.size() &&
            T(i + 1).text == "(") {
          cand_name_ = t.text;
          cand_line_ = t.line;
          cand_qualified_.clear();
          const std::string qual = QualifierBefore(i);
          if (!qual.empty()) cand_qualified_ = qual + "::" + t.text;
          sig_ = Sig::kInParams;
          paren_depth_ = 0;  // The '(' itself is the next token.
        } else if (t.text == "{") {
          scopes_.push_back(ClassifyBrace(i));
        } else if (t.text == "}") {
          PopScope(t.line);
        }
        break;
      case Sig::kInParams:
        if (t.text == "(") {
          ++paren_depth_;
        } else if (t.text == ")") {
          if (--paren_depth_ == 0) sig_ = Sig::kArmed;
        } else if (t.text == ";" || t.text == "}") {
          sig_ = Sig::kNone;  // Malformed; resync.
          if (t.text == "}") PopScope(t.line);
        }
        break;
      case Sig::kArmed:
        if (t.text == "{") {
          StartFunction(i);
        } else if (t.text == ";") {
          sig_ = Sig::kNone;  // Declaration only.
        } else if (t.text == "(") {
          // Second parameter list (operator()(...), macro qualifiers
          // like SHADOOP_EXCLUDES(mu_)). Same candidate, keep going.
          sig_ = Sig::kInParams;
          paren_depth_ = 1;
        } else if (t.text == ":") {
          sig_ = Sig::kInitList;
          paren_depth_ = 0;
        } else if (t.text == "=") {
          // `= default` / `= delete` / a variable that looked like a
          // signature — either way the next ';' ends it.
          sig_ = Sig::kNone;
        } else if (t.text == "}") {
          sig_ = Sig::kNone;
          PopScope(t.line);
        }
        break;
      case Sig::kInitList:
        if (t.text == "(") {
          ++paren_depth_;
        } else if (t.text == ")") {
          --paren_depth_;
        } else if (t.text == "{" && paren_depth_ == 0) {
          // Brace-init of a member (`x_{1}`) follows an identifier or a
          // closing template '>'; the function body never does.
          if (i > 0 && (T(i - 1).ident || T(i - 1).text == ">")) {
            int depth = 1;
            while (++i < toks_.size() && depth > 0) {
              if (T(i).text == "{") ++depth;
              if (T(i).text == "}") --depth;
            }
          } else {
            StartFunction(i);
          }
        } else if (t.text == ";") {
          sig_ = Sig::kNone;
        }
        break;
    }
  }

  int file_;
  const std::vector<Token>& toks_;
  std::vector<FunctionInfo>* functions_;
  std::vector<Scope> scopes_;
  std::vector<int> defined_;

  Sig sig_ = Sig::kNone;
  std::string cand_name_;
  std::string cand_qualified_;
  int cand_line_ = 0;
  int paren_depth_ = 0;
};

}  // namespace

std::string RepoRelative(std::string_view path) {
  const std::string norm = NormalizePath(path);
  static const char* kRoots[] = {"src/", "tools/", "bench/", "tests/",
                                 "examples/"};
  for (const char* root : kRoots) {
    if (norm.rfind(root, 0) == 0) return norm;
  }
  size_t best = std::string::npos;
  for (const char* root : kRoots) {
    const std::string marker = std::string("/") + root;
    const size_t pos = norm.rfind(marker);
    if (pos != std::string::npos && (best == std::string::npos || pos > best)) {
      best = pos;
    }
  }
  if (best != std::string::npos) return norm.substr(best + 1);
  return norm;
}

std::string ModuleOf(std::string_view repo_path) {
  const std::string path(repo_path);
  auto segment = [&](size_t from) -> std::string {
    const size_t slash = path.find('/', from);
    if (slash == std::string::npos) return "";
    return path.substr(from, slash - from);
  };
  if (path.rfind("src/", 0) == 0) return segment(4);
  if (path.rfind("tools/", 0) == 0) {
    const std::string sub = segment(6);
    return sub.empty() ? "tools" : "tools/" + sub;
  }
  for (const char* top : {"bench", "tests", "examples"}) {
    if (path.rfind(std::string(top) + "/", 0) == 0) return top;
  }
  return "";
}

void SourceIndex::AddFile(std::string_view path, std::string_view contents) {
  FileInfo file;
  file.path = NormalizePath(path);
  file.repo_path = RepoRelative(file.path);
  file.module = ModuleOf(file.repo_path);
  file.in_src = file.repo_path.rfind("src/", 0) == 0;
  file.raw = SplitLines(contents);
  file.code = BlankCommentsAndLiterals(file.raw);
  file.includes = ExtractIncludes(file.raw, file.code);

  const int file_id = static_cast<int>(files_.size());
  const std::vector<Token> toks = Tokenize(file.code);
  FileParser parser(file_id, toks, &functions_);
  file.functions = parser.Parse();
  files_.push_back(std::move(file));
}

bool SourceIndex::AddTree(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) return false;
    if (!it->is_regular_file(ec)) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
      paths.push_back(it->path().string());
    }
  }
  if (ec) return false;
  std::sort(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream contents;
    contents << in.rdbuf();
    AddFile(path, contents.str());
  }
  return true;
}

int SourceIndex::ResolveInclude(int from_file, const IncludeEdge& edge) const {
  if (!edge.quoted && edge.spec.find('/') == std::string::npos) {
    return -1;  // <vector> and friends.
  }
  auto find_repo = [&](const std::string& repo) -> int {
    for (size_t i = 0; i < files_.size(); ++i) {
      if (files_[i].repo_path == repo) return static_cast<int>(i);
    }
    return -1;
  };
  // Project-layout roots first: src/ for the runtime, tools/ for the
  // analysis binaries themselves.
  for (const char* prefix : {"src/", "tools/", ""}) {
    const int hit = find_repo(prefix + edge.spec);
    if (hit >= 0) return hit;
  }
  // Same-directory includes ("bench_common.h") and anything else: a
  // unique "/spec" suffix match.
  const std::string& from = files_[static_cast<size_t>(from_file)].repo_path;
  const size_t slash = from.rfind('/');
  if (slash != std::string::npos) {
    const int hit = find_repo(from.substr(0, slash + 1) + edge.spec);
    if (hit >= 0) return hit;
  }
  const std::string suffix = "/" + edge.spec;
  int match = -1;
  for (size_t i = 0; i < files_.size(); ++i) {
    const std::string& repo = files_[i].repo_path;
    if (repo.size() > suffix.size() &&
        repo.compare(repo.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      if (match >= 0) return -1;  // Ambiguous.
      match = static_cast<int>(i);
    }
  }
  return match;
}

}  // namespace shadoop::analyze
