#ifndef SHADOOP_TOOLS_ANALYZE_SOURCE_INDEX_H_
#define SHADOOP_TOOLS_ANALYZE_SOURCE_INDEX_H_

#include <string>
#include <string_view>
#include <vector>

/// Lightweight cross-TU C++ indexer (DESIGN.md §16).
///
/// The determinism lint (tools/lint) is per-line: it can ban a
/// wall-clock token on the line it appears, but it cannot see a
/// Stopwatch read reached *transitively* through a helper, and it knows
/// nothing about the include graph the architecture depends on. This
/// indexer extracts just enough structure for whole-tree analyses:
///
///   - per file: the `#include` edges (with line numbers) and the
///     comment/string-blanked source text;
///   - per function definition: its (qualified) name, body line span,
///     and every call site inside the body.
///
/// It is a tokenizer-level heuristic, not a compiler: template
/// metaprogramming, overload sets and macros are over-approximated
/// (calls resolve by name, every same-named definition is a candidate
/// callee). For taint analysis an over-approximation is the safe
/// direction — a spurious edge can only surface a finding to triage,
/// never hide one.
namespace shadoop::analyze {

/// A call site inside a function body. `qualified` is filled when the
/// call was written with an explicit `A::B(` qualifier.
struct CallSite {
  std::string name;
  std::string qualified;
  int line = 0;  // 1-based.
};

/// One function (or method/constructor) *definition*.
struct FunctionInfo {
  std::string name;       // Unqualified: "RunAdmitted".
  std::string qualified;  // As written / class-scoped: "JobRunner::RunAdmitted".
  int file = -1;          // Index into SourceIndex::files().
  int line = 0;           // 1-based line of the signature.
  int body_begin = 0;     // 1-based line of the opening '{'.
  int body_end = 0;       // 1-based line of the matching '}'.
  std::vector<CallSite> calls;
};

struct IncludeEdge {
  std::string spec;  // The path between the quotes/brackets.
  bool quoted = false;
  int line = 0;  // 1-based.
};

struct FileInfo {
  std::string path;       // As given, normalized to forward slashes.
  std::string repo_path;  // Repo-relative ("src/core/knn.cc") for keys.
  std::string module;     // "core" for src/core/..., "tools/lint", "bench".
  bool in_src = false;    // True when repo_path starts with "src/".
  std::vector<std::string> raw;   // Raw source lines.
  std::vector<std::string> code;  // Comment/string-blanked lines.
  std::vector<IncludeEdge> includes;
  std::vector<int> functions;  // Indices into SourceIndex::functions().
};

/// Strips a path down to its repo-relative form by searching for the
/// last known top-level segment ("src/", "tools/", "bench/", ...), so
/// absolute paths from ctest and relative fixture paths key identically.
std::string RepoRelative(std::string_view path);

/// The module a repo-relative path belongs to: "core" under src/,
/// "tools/lint" / "bench" / "tests" outside it, "" when unknown.
std::string ModuleOf(std::string_view repo_path);

class SourceIndex {
 public:
  /// Indexes one in-memory file (fixture trees in tests use this).
  void AddFile(std::string_view path, std::string_view contents);

  /// Indexes every .h/.hpp/.cc/.cpp under `root` (recursively, sorted
  /// path order). Returns false when the tree cannot be walked.
  bool AddTree(const std::string& root);

  const std::vector<FileInfo>& files() const { return files_; }
  const std::vector<FunctionInfo>& functions() const { return functions_; }

  /// Resolves an include spec from `from_file` to an indexed file id,
  /// or -1. Quoted includes resolve against src/, tools/, the including
  /// file's directory, and finally by unique path suffix.
  int ResolveInclude(int from_file, const IncludeEdge& edge) const;

 private:
  std::vector<FileInfo> files_;
  std::vector<FunctionInfo> functions_;
};

}  // namespace shadoop::analyze

#endif  // SHADOOP_TOOLS_ANALYZE_SOURCE_INDEX_H_
