#include "lint/lint_engine.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace shadoop::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string NormalizePath(std::string_view path) {
  std::string out(path);
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

/// One file, preprocessed for rule matching.
struct FileView {
  std::string path;  // Normalized to forward slashes.
  std::vector<std::string> raw;
  /// `raw` with comment bodies and string/char-literal contents blanked
  /// to spaces, so rules never fire on prose or literals. Block comments
  /// and raw strings carry state across lines.
  std::vector<std::string> code;
};

std::vector<std::string> SplitLines(std::string_view contents) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= contents.size()) {
    size_t end = contents.find('\n', start);
    if (end == std::string_view::npos) {
      if (start < contents.size()) lines.emplace_back(contents.substr(start));
      break;
    }
    lines.emplace_back(contents.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::vector<std::string> BlankCommentsAndLiterals(
    const std::vector<std::string>& raw) {
  enum class State { kCode, kBlockComment, kString, kChar };
  State state = State::kCode;
  std::vector<std::string> out;
  out.reserve(raw.size());
  for (const std::string& line : raw) {
    std::string code = line;
    for (size_t i = 0; i < code.size(); ++i) {
      switch (state) {
        case State::kCode:
          if (code[i] == '/' && i + 1 < code.size() && code[i + 1] == '/') {
            for (size_t j = i; j < code.size(); ++j) code[j] = ' ';
            i = code.size();
          } else if (code[i] == '/' && i + 1 < code.size() &&
                     code[i + 1] == '*') {
            code[i] = code[i + 1] = ' ';
            ++i;
            state = State::kBlockComment;
          } else if (code[i] == '"') {
            code[i] = ' ';
            state = State::kString;
          } else if (code[i] == '\'') {
            code[i] = ' ';
            state = State::kChar;
          }
          break;
        case State::kBlockComment:
          if (code[i] == '*' && i + 1 < code.size() && code[i + 1] == '/') {
            code[i] = code[i + 1] = ' ';
            ++i;
            state = State::kCode;
          } else {
            code[i] = ' ';
          }
          break;
        case State::kString:
        case State::kChar: {
          const char quote = state == State::kString ? '"' : '\'';
          if (code[i] == '\\' && i + 1 < code.size()) {
            code[i] = code[i + 1] = ' ';
            ++i;
          } else {
            const bool closes = code[i] == quote;
            code[i] = ' ';
            if (closes) state = State::kCode;
          }
          break;
        }
      }
    }
    // A string or char literal never spans a line break in this codebase;
    // reset so a stray quote cannot blank the rest of the file.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.push_back(std::move(code));
  }
  return out;
}

/// `// lint:allow(rule-a, rule-b)` — rules suppressed on this line only.
std::set<std::string> AllowedRules(const std::string& raw_line) {
  std::set<std::string> allowed;
  static constexpr std::string_view kMarker = "lint:allow(";
  size_t pos = 0;
  while ((pos = raw_line.find(kMarker, pos)) != std::string::npos) {
    size_t i = pos + kMarker.size();
    std::string id;
    for (; i < raw_line.size() && raw_line[i] != ')'; ++i) {
      const char c = raw_line[i];
      if (c == ',' ) {
        if (!id.empty()) allowed.insert(id);
        id.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        id.push_back(c);
      }
    }
    if (!id.empty()) allowed.insert(id);
    pos = i;
  }
  return allowed;
}

/// Whole-token occurrences of `token` in `line` (a character before or
/// after that would extend the identifier rejects the match; a leading
/// "::" does not, so qualified names still count).
std::vector<size_t> TokenHits(const std::string& line,
                              std::string_view token) {
  std::vector<size_t> hits;
  size_t pos = 0;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = end;
  }
  return hits;
}

/// Occurrences of a C-style call `name(`. The previous character must not
/// extend the identifier and must not be '.' or '>' (member calls like
/// `sw.time()` are some other API, not libc).
std::vector<size_t> CallHits(const std::string& line, std::string_view name) {
  std::vector<size_t> hits;
  for (size_t pos : TokenHits(line, name)) {
    if (pos > 0 && (line[pos - 1] == '.' ||
                    (line[pos - 1] == '>' && pos > 1 && line[pos - 2] == '-'))) {
      continue;
    }
    size_t i = pos + name.size();
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '(') hits.push_back(pos);
  }
  return hits;
}

bool LineIncludesHeader(const std::string& code_line,
                        std::string_view header) {
  std::string squeezed;
  for (char c : code_line) {
    if (!std::isspace(static_cast<unsigned char>(c))) squeezed.push_back(c);
  }
  return squeezed.rfind(std::string("#include<") + std::string(header) + ">",
                        0) == 0;
}

void AddFinding(const FileView& view, size_t line_idx, const RuleInfo& rule,
                std::vector<Finding>* findings) {
  findings->push_back(Finding{view.path, static_cast<int>(line_idx) + 1,
                              rule.id, rule.summary});
}

// ---------------------------------------------------------------------------
// Rule registry. To add a rule: append an entry here, cover it in
// tests/lint_test.cc (fires + stays quiet + lint:allow), and document it
// in the DESIGN.md §11 rule table.

using RuleFn = void (*)(const FileView&, const RuleInfo&,
                        std::vector<Finding>*);

struct RuleImpl {
  RuleInfo info;
  /// Paths where the rule does not apply. An entry ending in '/' is a
  /// directory exemption and matches anywhere in the path ("bench/"
  /// exempts the whole bench harness); any other entry matches as a
  /// path suffix ("common/stopwatch.h", "_main.cc").
  std::vector<std::string> exempt_paths;
  RuleFn fn;
};

bool PathExempt(const std::string& path,
                const std::vector<std::string>& exemptions) {
  for (const std::string& entry : exemptions) {
    if (!entry.empty() && entry.back() == '/') {
      if (path.find(entry) != std::string::npos || path.rfind(entry, 0) == 0) {
        return true;
      }
    } else if (EndsWith(path, entry)) {
      return true;
    }
  }
  return false;
}

void BannedClockRule(const FileView& view, const RuleInfo& rule,
                     std::vector<Finding>* findings) {
  static const char* kTokens[] = {"system_clock",  "steady_clock",
                                  "high_resolution_clock", "gettimeofday",
                                  "clock_gettime", "localtime", "gmtime"};
  static const char* kCalls[] = {"time", "clock"};
  for (size_t i = 0; i < view.code.size(); ++i) {
    const std::string& line = view.code[i];
    for (const char* token : kTokens) {
      if (!TokenHits(line, token).empty()) AddFinding(view, i, rule, findings);
    }
    for (const char* call : kCalls) {
      if (!CallHits(line, call).empty()) AddFinding(view, i, rule, findings);
    }
  }
}

void BannedRandomRule(const FileView& view, const RuleInfo& rule,
                      std::vector<Finding>* findings) {
  static const char* kTokens[] = {"random_device", "mt19937", "mt19937_64",
                                  "default_random_engine", "minstd_rand",
                                  "minstd_rand0", "ranlux24", "ranlux48"};
  static const char* kCalls[] = {"rand", "srand", "drand48", "random"};
  for (size_t i = 0; i < view.code.size(); ++i) {
    const std::string& line = view.code[i];
    for (const char* token : kTokens) {
      if (!TokenHits(line, token).empty()) AddFinding(view, i, rule, findings);
    }
    for (const char* call : kCalls) {
      if (!CallHits(line, call).empty()) AddFinding(view, i, rule, findings);
    }
  }
}

/// Names declared in this file with an unordered container type —
/// members, locals and parameters alike. Template arguments may span
/// lines; the scan runs over the joined code text.
std::vector<std::string> UnorderedNames(const FileView& view) {
  std::string text;
  for (const std::string& line : view.code) {
    text += line;
    text += '\n';
  }
  std::vector<std::string> names;
  for (std::string_view token : {"unordered_map", "unordered_set",
                                 "unordered_multimap", "unordered_multiset"}) {
    size_t pos = 0;
    while ((pos = text.find(token, pos)) != std::string::npos) {
      const size_t start = pos;
      pos += token.size();
      if (start > 0 && IsIdentChar(text[start - 1])) continue;
      size_t i = pos;
      while (i < text.size() &&
             std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
      }
      if (i >= text.size() || text[i] != '<') continue;
      int depth = 0;
      for (; i < text.size(); ++i) {
        if (text[i] == '<') ++depth;
        if (text[i] == '>' && --depth == 0) {
          ++i;
          break;
        }
      }
      // Skip refs/pointers/whitespace between the type and the name.
      while (i < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[i])) ||
              text[i] == '&' || text[i] == '*')) {
        ++i;
      }
      std::string name;
      while (i < text.size() && IsIdentChar(text[i])) name.push_back(text[i++]);
      if (!name.empty()) names.push_back(name);
    }
  }
  return names;
}

void UnorderedIterationRule(const FileView& view, const RuleInfo& rule,
                            std::vector<Finding>* findings) {
  const std::vector<std::string> names = UnorderedNames(view);
  if (names.empty()) return;
  for (size_t i = 0; i < view.code.size(); ++i) {
    const std::string& line = view.code[i];
    for (const std::string& name : names) {
      for (size_t pos : TokenHits(line, name)) {
        // name.begin() / name.end() / name.cbegin() / name.cend()
        size_t j = pos + name.size();
        while (j < line.size() && line[j] == ' ') ++j;
        if (j < line.size() && line[j] == '.') {
          ++j;
          while (j < line.size() && line[j] == ' ') ++j;
          for (std::string_view it : {"begin", "end", "cbegin", "cend"}) {
            if (line.compare(j, it.size(), it) == 0) {
              size_t k = j + it.size();
              while (k < line.size() && line[k] == ' ') ++k;
              if (k < line.size() && line[k] == '(') {
                AddFinding(view, i, rule, findings);
              }
              break;
            }
          }
        }
        // Range-for: `for (... : name)` — ':' before, ')' after.
        size_t before = pos;
        while (before > 0 && line[before - 1] == ' ') --before;
        const bool colon_before =
            before > 0 && line[before - 1] == ':' &&
            (before < 2 || line[before - 2] != ':');
        size_t after = pos + name.size();
        while (after < line.size() && line[after] == ' ') ++after;
        const bool paren_after = after < line.size() && line[after] == ')';
        if (colon_before && paren_after &&
            !TokenHits(line, "for").empty()) {
          AddFinding(view, i, rule, findings);
        }
      }
    }
  }
}

void NakedMutexRule(const FileView& view, const RuleInfo& rule,
                    std::vector<Finding>* findings) {
  static const char* kTokens[] = {"std::mutex", "std::shared_mutex",
                                  "std::recursive_mutex", "std::timed_mutex",
                                  "std::shared_timed_mutex"};
  for (size_t i = 0; i < view.code.size(); ++i) {
    const std::string& line = view.code[i];
    for (const char* token : kTokens) {
      if (!TokenHits(line, token).empty()) AddFinding(view, i, rule, findings);
    }
    if (LineIncludesHeader(line, "mutex") ||
        LineIncludesHeader(line, "shared_mutex")) {
      AddFinding(view, i, rule, findings);
    }
  }
}

void IostreamIncludeRule(const FileView& view, const RuleInfo& rule,
                         std::vector<Finding>* findings) {
  for (size_t i = 0; i < view.code.size(); ++i) {
    if (LineIncludesHeader(view.code[i], "iostream")) {
      AddFinding(view, i, rule, findings);
    }
  }
}

void BannedFloatAccumRule(const FileView& view, const RuleInfo& rule,
                          std::vector<Finding>* findings) {
  for (size_t i = 0; i < view.code.size(); ++i) {
    // `float` as a whole token covers declarations, casts and template
    // arguments alike; float32_t-style names don't match.
    if (!TokenHits(view.code[i], "float").empty()) {
      AddFinding(view, i, rule, findings);
    }
  }
}

/// `name(` occurrences including member calls (`ctx.Emit(`): the rule
/// cares that records flow out, not through which receiver.
bool HasCallToken(const std::string& line, std::string_view name) {
  for (size_t pos : TokenHits(line, name)) {
    size_t i = pos + name.size();
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '(') return true;
  }
  return false;
}

void UnstableSortBeforeEmitRule(const FileView& view, const RuleInfo& rule,
                                std::vector<Finding>* findings) {
  constexpr size_t kWindow = 12;
  for (size_t i = 0; i < view.code.size(); ++i) {
    bool is_std_sort = false;
    for (size_t pos : TokenHits(view.code[i], "sort")) {
      if (pos >= 5 && view.code[i].compare(pos - 5, 5, "std::") == 0) {
        is_std_sort = true;
      }
    }
    if (!is_std_sort) continue;
    const size_t last = std::min(view.code.size(), i + 1 + kWindow);
    for (size_t j = i; j < last; ++j) {
      if (HasCallToken(view.code[j], "Emit") ||
          HasCallToken(view.code[j], "WriteOutput")) {
        AddFinding(view, i, rule, findings);
        break;
      }
    }
  }
}

/// Positions of member `.size()` / `->size()` calls on a line.
std::vector<size_t> SizeCallHits(const std::string& line) {
  std::vector<size_t> hits;
  for (size_t pos : TokenHits(line, "size")) {
    if (pos == 0) continue;
    const bool member =
        line[pos - 1] == '.' ||
        (line[pos - 1] == '>' && pos > 1 && line[pos - 2] == '-');
    if (!member) continue;
    size_t i = pos + 4;
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '(') hits.push_back(pos);
  }
  return hits;
}

/// True when the line mentions an identifier whose name contains "seed"
/// (any case): `seed`, `kSeed`, `hash_seed`, `SeedFor`, ...
bool MentionsSeedIdentifier(const std::string& line) {
  for (size_t i = 0; i < line.size(); ++i) {
    if (IsIdentChar(line[i]) && (i == 0 || !IsIdentChar(line[i - 1]))) {
      size_t end = i;
      while (end < line.size() && IsIdentChar(line[end])) ++end;
      std::string ident = line.substr(i, end - i);
      std::transform(ident.begin(), ident.end(), ident.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (ident.find("seed") != std::string::npos) return true;
      i = end;
    }
  }
  return false;
}

void SizeDependentSeedRule(const FileView& view, const RuleInfo& rule,
                           std::vector<Finding>* findings) {
  for (size_t i = 0; i < view.code.size(); ++i) {
    const std::string& line = view.code[i];
    if (SizeCallHits(line).empty()) continue;
    // A `.size()` feeding a Random construction or any seed-named value
    // collapses distinct inputs of equal cardinality onto one stream and
    // silently reseeds whenever the data grows. One line of lookback
    // covers a seed expression wrapped before the `.size()` call — but
    // only when the previous line is visibly mid-expression (ends in an
    // opener or operator), so a complete `Random rng(kSeed);` statement
    // followed by an ordinary `.size()` loop stays quiet.
    bool prev_opens_seed = false;
    if (i > 0 && (!TokenHits(view.code[i - 1], "Random").empty() ||
                  MentionsSeedIdentifier(view.code[i - 1]))) {
      const std::string& prev = view.code[i - 1];
      size_t last = prev.find_last_not_of(' ');
      if (last != std::string::npos) {
        const char c = prev[last];
        prev_opens_seed = c == '(' || c == '=' || c == ',' || c == '+' ||
                          c == '^' || c == '&' || c == '|' || c == '*';
      }
    }
    if (!TokenHits(line, "Random").empty() || MentionsSeedIdentifier(line) ||
        prev_opens_seed) {
      AddFinding(view, i, rule, findings);
    }
  }
}

const std::vector<RuleImpl>& RuleRegistry() {
  static const std::vector<RuleImpl>* kRules = new std::vector<RuleImpl>{
      {{"banned-clock",
        "wall-clock read in library code; Stopwatch (common/stopwatch.h) "
        "and simulated time are the only clocks — real time breaks "
        "run-to-run determinism"},
       {"common/stopwatch.h", "bench/"},
       &BannedClockRule},
      {{"banned-random",
        "nondeterministic randomness; draw from an explicitly seeded "
        "shadoop::Random (common/random.h) so runs reproduce"},
       {"common/random.h", "common/random.cc"},
       &BannedRandomRule},
      {{"unordered-iteration",
        "iteration over a hash container; its order feeds emits and "
        "counters — use an ordered container or a sorted snapshot"},
       {},
       &UnorderedIterationRule},
      {{"naked-mutex",
        "naked std::mutex; declare shadoop::Mutex and lock via MutexLock "
        "(common/thread_annotations.h) so Clang thread-safety analysis "
        "sees the lock"},
       {},
       &NakedMutexRule},
      {{"iostream-include",
        "<iostream> in library code; log through common/logging.h "
        "(CLI mains and the bench harness print by design)"},
       {"_main.cc", "bench/"},
       &IostreamIncludeRule},
      {{"banned-float-accum",
        "float in library code; geometry accumulation is double-only — "
        "float rounding shifts MBRs, cell boundaries and dedup reference "
        "points between runs and platforms"},
       {},
       &BannedFloatAccumRule},
      {{"unstable-sort-before-emit",
        "std::sort feeding emitted output; equal-key order is "
        "unspecified and varies across libc++ versions — use "
        "std::stable_sort (or a total tie-breaking comparator) before "
        "Emit/WriteOutput"},
       {},
       &UnstableSortBeforeEmitRule},
      {{"size-dependent-seed",
        ".size() feeding a Random seed; a size-derived seed gives equal-"
        "cardinality inputs the same stream and silently reseeds when "
        "the data grows — seed from an explicit constant or a stable "
        "identity"},
       {},
       &SizeDependentSeedRule},
  };
  return *kRules;
}

}  // namespace

std::string FormatFinding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": " << finding.rule << ": "
      << finding.message;
  return out.str();
}

Linter::Linter() {
  for (const RuleImpl& rule : RuleRegistry()) rules_.push_back(rule.info);
}

std::vector<Finding> Linter::LintFile(std::string_view path,
                                      std::string_view contents) const {
  FileView view;
  view.path = NormalizePath(path);
  view.raw = SplitLines(contents);
  view.code = BlankCommentsAndLiterals(view.raw);

  std::vector<Finding> findings;
  for (const RuleImpl& rule : RuleRegistry()) {
    if (PathExempt(view.path, rule.exempt_paths)) continue;
    rule.fn(view, rule.info, &findings);
  }

  // Apply per-line `lint:allow(rule)` escapes, then order by position so
  // output is stable regardless of rule registration order.
  std::vector<Finding> kept;
  for (Finding& finding : findings) {
    const std::string& raw_line = view.raw[static_cast<size_t>(finding.line) - 1];
    if (AllowedRules(raw_line).count(finding.rule) > 0) continue;
    kept.push_back(std::move(finding));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  // One finding per (line, rule): several banned tokens on one line are
  // one problem to fix.
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.line == b.line && a.rule == b.rule;
                         }),
             kept.end());
  return kept;
}

std::vector<Finding> Linter::LintTree(const std::string& root) const {
  namespace fs = std::filesystem;
  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file(ec)) continue;
    const std::string ext = it->path().extension().string();
    if (ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp") {
      paths.push_back(it->path().string());
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<Finding> findings;
  if (ec) {
    findings.push_back(
        Finding{root, 0, "io-error", "cannot walk tree: " + ec.message()});
    return findings;
  }
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      findings.push_back(Finding{NormalizePath(path), 0, "io-error",
                                 "cannot read file"});
      continue;
    }
    std::ostringstream contents;
    contents << in.rdbuf();
    std::vector<Finding> file_findings = LintFile(path, contents.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

}  // namespace shadoop::lint
