#ifndef SHADOOP_TOOLS_LINT_LINT_ENGINE_H_
#define SHADOOP_TOOLS_LINT_LINT_ENGINE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

/// Repo-specific determinism lint (DESIGN.md §11).
///
/// The runtime's reproducibility contract — byte-identical rows, counters
/// and JobCost for a given seed — is easy to break with one line: an
/// iteration over a hash container feeding an emit, a wall-clock read in
/// library code, an unannotated mutex the thread-safety analysis cannot
/// see. This engine enforces those bans as a blocking lint over src/,
/// with per-line `// lint:allow(rule-id)` escapes for the rare deliberate
/// exception.
///
/// The engine is a library (linked by tests/lint_test.cc) with a thin CLI
/// in lint_main.cc; the `determinism_lint` ctest target runs the CLI over
/// the real tree so `ctest` fails the moment a banned pattern lands.
namespace shadoop::lint {

/// One rule violation at one line.
struct Finding {
  std::string file;
  int line = 0;  // 1-based.
  std::string rule;
  std::string message;
};

/// "file:line: rule-id: message" — the clickable CI annotation format.
std::string FormatFinding(const Finding& finding);

/// Registry entry; `rules()` below is the extension point future PRs add
/// to (register the rule, cover it in lint_test, document it in DESIGN.md
/// §11).
struct RuleInfo {
  std::string id;
  std::string summary;
};

class Linter {
 public:
  Linter();

  const std::vector<RuleInfo>& rules() const { return rules_; }

  /// Lints one file's contents. `path` participates in per-path
  /// exemptions (e.g. wall-clock reads are legal inside
  /// common/stopwatch.h), so tests can exercise them with fixture paths.
  std::vector<Finding> LintFile(std::string_view path,
                                std::string_view contents) const;

  /// Lints every .h/.hpp/.cc/.cpp under `root` (recursively, in sorted
  /// path order so output is deterministic). I/O errors are reported as
  /// findings under the pseudo-rule "io-error".
  std::vector<Finding> LintTree(const std::string& root) const;

 private:
  std::vector<RuleInfo> rules_;
};

}  // namespace shadoop::lint

#endif  // SHADOOP_TOOLS_LINT_LINT_ENGINE_H_
