// CLI over the determinism lint engine (DESIGN.md §11).
//
//   spatial_lint [path...]     lint trees/files (default: src tools bench)
//   spatial_lint --rules       list the rule registry
//
// Exit codes: 0 clean, 1 findings, 2 usage error. Findings print as
// "file:line: rule-id: message", one per line, so CI annotations and
// editors can jump to them.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint_engine.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      shadoop::lint::Linter linter;
      for (const shadoop::lint::RuleInfo& rule : linter.rules()) {
        std::cout << rule.id << ": " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << "usage: spatial_lint [--rules] [path...]\n"
                   "lints .h/.hpp/.cc/.cpp files for determinism and "
                   "lock-discipline violations (default paths: src tools "
                   "bench)\n";
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      std::cerr << "spatial_lint: unknown flag '" << arg << "'\n";
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths = {"src", "tools", "bench"};

  shadoop::lint::Linter linter;
  std::vector<shadoop::lint::Finding> findings;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (std::filesystem::is_directory(path, ec)) {
      std::vector<shadoop::lint::Finding> tree = linter.LintTree(path);
      findings.insert(findings.end(), tree.begin(), tree.end());
    } else if (std::filesystem::is_regular_file(path, ec)) {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream contents;
      contents << in.rdbuf();
      std::vector<shadoop::lint::Finding> file =
          linter.LintFile(path, contents.str());
      findings.insert(findings.end(), file.begin(), file.end());
    } else {
      std::cerr << "spatial_lint: no such file or directory: " << path
                << "\n";
      return 2;
    }
  }

  for (const shadoop::lint::Finding& finding : findings) {
    std::cout << shadoop::lint::FormatFinding(finding) << "\n";
  }
  if (findings.empty()) {
    std::cout << "spatial_lint: clean\n";
    return 0;
  }
  std::cerr << "spatial_lint: " << findings.size() << " finding(s)\n";
  return 1;
}
