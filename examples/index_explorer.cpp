// Index explorer: builds every partitioning technique over the same
// skewed dataset and prints a quality comparison — the hands-on half of
// experiment E2. Useful for choosing a technique for a new workload.
//
// Build & run:  ./build/examples/index_explorer [distribution]
// distribution: uniform | gaussian | correlated | anticorrelated |
//               circular | clustered (default)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "hdfs/file_system.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"
#include "workload/generators.h"

using namespace shadoop;

int main(int argc, char** argv) {
  workload::Distribution dist = workload::Distribution::kClustered;
  if (argc > 1) {
    auto parsed = workload::ParseDistribution(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    dist = parsed.value();
  }

  hdfs::HdfsConfig hdfs_config;
  hdfs_config.block_size = 16 * 1024;
  hdfs::FileSystem fs(hdfs_config);
  mapreduce::JobRunner runner(&fs);

  workload::PointGenOptions gen;
  gen.distribution = dist;
  gen.count = 60000;
  gen.seed = 7;
  SHADOOP_CHECK_OK(workload::WritePointFile(&fs, "/pts", gen));
  std::printf("dataset: %zu %s points\n\n", gen.count,
              workload::DistributionName(dist));

  std::printf("%-10s %6s %10s %10s %9s %12s %10s\n", "scheme", "parts",
              "min_recs", "max_recs", "balance", "replication", "build_s");
  for (index::PartitionScheme scheme :
       {index::PartitionScheme::kGrid, index::PartitionScheme::kStr,
        index::PartitionScheme::kStrPlus, index::PartitionScheme::kQuadTree,
        index::PartitionScheme::kKdTree, index::PartitionScheme::kZCurve,
        index::PartitionScheme::kHilbert}) {
    index::IndexBuilder builder(&runner);
    index::IndexBuildOptions options;
    options.scheme = scheme;
    std::string dest = std::string("/pts.") + index::PartitionSchemeName(scheme);
    for (char& c : dest) {
      if (c == '+') c = 'p';
    }
    auto info = builder.Build("/pts", dest, options);
    if (!info.ok()) {
      std::printf("%-10s build failed: %s\n",
                  index::PartitionSchemeName(scheme),
                  info.status().ToString().c_str());
      continue;
    }
    size_t min_recs = SIZE_MAX;
    size_t max_recs = 0;
    size_t total_recs = 0;
    for (const index::Partition& p : info->global_index.partitions()) {
      min_recs = std::min(min_recs, p.num_records);
      max_recs = std::max(max_recs, p.num_records);
      total_recs += p.num_records;
    }
    const size_t parts = info->global_index.NumPartitions();
    const double average = static_cast<double>(total_recs) / parts;
    std::printf("%-10s %6zu %10zu %10zu %8.2fx %11.3fx %9.1f\n",
                index::PartitionSchemeName(scheme), parts, min_recs, max_recs,
                max_recs / average,
                static_cast<double>(total_recs) / gen.count,
                info->build_cost.total_ms / 1000.0);
  }
  std::printf(
      "\nbalance = largest partition / average (1.0 is perfect);\n"
      "replication = stored copies / input records (1.0 means no "
      "replication; points never replicate,\nso any technique shows 1.0 "
      "here — rectangles and polygons replicate on disjoint schemes).\n");
  return 0;
}
