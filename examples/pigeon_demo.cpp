// Pigeon demo: the language layer in action. The same six-line script an
// analyst would write runs unchanged whether or not an index exists —
// the executor routes to the pruned SpatialHadoop operators when it does.
//
// Build & run:  ./build/examples/pigeon_demo [script.pigeon]
// Without an argument, runs the embedded demo script.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "hdfs/file_system.h"
#include "mapreduce/job_runner.h"
#include "pigeon/executor.h"
#include "workload/generators.h"

using namespace shadoop;

namespace {

constexpr const char* kDemoScript = R"(
-- Load the raw data, index it, and chain three queries.
trips  = LOAD '/taxi/pickups' AS POINT;
zones  = LOAD '/taxi/zones' AS RECTANGLE;
trips_i = INDEX trips WITH STR INTO '/taxi/pickups.str';
zones_i = INDEX zones WITH GRID INTO '/taxi/zones.grid';

downtown = RANGE trips_i RECTANGLE(400000, 400000, 600000, 600000);
hot      = KNN trips_i POINT(500000, 500000) K 8;
zoned    = SJOIN trips_i, zones_i;

STORE downtown INTO '/out/downtown';
DUMP hot;
)";

}  // namespace

int main(int argc, char** argv) {
  hdfs::HdfsConfig hdfs_config;
  hdfs_config.block_size = 32 * 1024;
  hdfs::FileSystem fs(hdfs_config);
  mapreduce::JobRunner runner(&fs);

  // Seed input datasets for the script.
  workload::PointGenOptions pickups;
  pickups.distribution = workload::Distribution::kClustered;
  pickups.count = 40000;
  pickups.seed = 99;
  SHADOOP_CHECK_OK(workload::WritePointFile(&fs, "/taxi/pickups", pickups));
  workload::RectGenOptions zones;
  zones.centers.count = 400;
  zones.centers.seed = 98;
  zones.max_side_fraction = 0.05;
  SHADOOP_CHECK_OK(workload::WriteRectangleFile(&fs, "/taxi/zones", zones));

  std::string script = kDemoScript;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open script '%s'\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    script = buffer.str();
  }

  std::printf("--- script ---\n%s\n--- running ---\n", script.c_str());
  pigeon::Executor executor(&runner);
  auto report = executor.Execute(script);
  if (!report.ok()) {
    std::fprintf(stderr, "pigeon error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (const std::string& line : report->dump_output) {
    std::printf("DUMP> %s\n", line.c_str());
  }
  std::printf(
      "--- done: %d MapReduce jobs, %.1f s simulated cluster time, "
      "%.1f MiB read ---\n",
      report->stats.jobs_run, report->stats.cost.total_ms / 1000.0,
      report->stats.cost.bytes_read / 1048576.0);
  if (fs.Exists("/out/downtown")) {
    std::printf("stored /out/downtown with %zu records\n",
                fs.ReadLines("/out/downtown").ValueOrDie().size());
  }
  return 0;
}
