// Quickstart: upload a point dataset to the simulated HDFS, build an STR
// index, and run a range query plus a k-nearest-neighbors query — the
// "hello world" of the SpatialHadoop API.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/knn.h"
#include "core/range_query.h"
#include "hdfs/file_system.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"
#include "workload/generators.h"

using namespace shadoop;

int main() {
  // 1. A simulated cluster: 25 datanodes, 64 KiB blocks (scaled down from
  //    Hadoop's 64 MB so a laptop-sized dataset spans many blocks).
  hdfs::HdfsConfig hdfs_config;
  hdfs_config.block_size = 64 * 1024;
  hdfs::FileSystem fs(hdfs_config);
  mapreduce::JobRunner runner(&fs);

  // 2. Generate and upload one million-ish points (100k here).
  workload::PointGenOptions gen;
  gen.distribution = workload::Distribution::kClustered;
  gen.count = 100000;
  gen.seed = 2014;
  SHADOOP_CHECK_OK(workload::WritePointFile(&fs, "/data/points", gen));
  std::printf("uploaded %zu points (%zu blocks)\n", gen.count,
              fs.GetFileMeta("/data/points").ValueOrDie().blocks.size());

  // 3. Build the spatial index (an MapReduce pipeline: sample -> compute
  //    boundaries -> partition).
  index::IndexBuilder builder(&runner);
  index::IndexBuildOptions options;
  options.scheme = index::PartitionScheme::kStr;
  options.shape = index::ShapeType::kPoint;
  index::SpatialFileInfo indexed =
      builder.Build("/data/points", "/data/points.str", options).ValueOrDie();
  std::printf("built STR index: %zu partitions, simulated build time %.1f s\n",
              indexed.global_index.NumPartitions(),
              indexed.build_cost.total_ms / 1000.0);

  // 4. Range query: SpatialHadoop prunes partitions via the global index.
  const Envelope query(200000, 200000, 320000, 300000);
  core::OpStats range_stats;
  auto matches =
      core::RangeQuerySpatial(&runner, indexed, query, &range_stats)
          .ValueOrDie();
  std::printf(
      "range query %s -> %zu records, read %.0f KiB in %d map tasks, "
      "simulated %.1f s\n",
      query.ToString().c_str(), matches.size(),
      range_stats.cost.bytes_read / 1024.0, range_stats.cost.num_map_tasks,
      range_stats.cost.total_ms / 1000.0);

  // 5. kNN: iterative pruned search.
  const Point q(500000, 500000);
  core::OpStats knn_stats;
  auto neighbors =
      core::KnnSpatial(&runner, indexed, q, 10, &knn_stats).ValueOrDie();
  std::printf("10-NN of (%.0f, %.0f): nearest at distance %.1f, "
              "%d job round(s)\n",
              q.x, q.y, neighbors.front().distance, knn_stats.jobs_run);
  for (size_t i = 0; i < 3 && i < neighbors.size(); ++i) {
    std::printf("  #%zu  %s  (d=%.1f)\n", i + 1, neighbors[i].record.c_str(),
                neighbors[i].distance);
  }
  return 0;
}
