// Heatmap: the visualization layer. Renders a clustered dataset as a
// single-level heat image plus a three-level tile pyramid, writing PPM /
// PGM files to the local working directory (viewable with any image
// viewer; convert with `magick heatmap.ppm heatmap.png` if preferred).
//
// Build & run:  ./build/examples/heatmap

#include <cstdio>
#include <fstream>

#include "hdfs/file_system.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"
#include "viz/plot.h"
#include "workload/generators.h"

using namespace shadoop;

namespace {

void WriteLocal(const std::string& path, const std::string& payload) {
  std::ofstream out(path, std::ios::binary);
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), payload.size());
}

}  // namespace

int main() {
  hdfs::HdfsConfig hdfs_config;
  hdfs_config.block_size = 32 * 1024;
  hdfs::FileSystem fs(hdfs_config);
  mapreduce::JobRunner runner(&fs);

  workload::PointGenOptions gen;
  gen.distribution = workload::Distribution::kClustered;
  gen.count = 200000;
  gen.num_clusters = 24;
  gen.seed = 1234;
  SHADOOP_CHECK_OK(workload::WritePointFile(&fs, "/pts", gen));

  index::IndexBuilder builder(&runner);
  index::IndexBuildOptions options;
  options.scheme = index::PartitionScheme::kStr;
  const index::SpatialFileInfo file =
      builder.Build("/pts", "/pts.str", options).ValueOrDie();

  // Single-level heatmap.
  viz::PlotOptions plot;
  plot.width = 512;
  plot.height = 512;
  core::OpStats stats;
  const viz::Canvas canvas =
      viz::PlotSpatial(&runner, file, plot, &stats).ValueOrDie();
  std::printf("plotted %zu points into %dx%d canvas "
              "(%.1f s simulated, %zu lit pixels)\n",
              gen.count, canvas.width(), canvas.height(),
              stats.cost.total_ms / 1000.0, canvas.CountNonZero());
  WriteLocal("heatmap.ppm", canvas.ToPpm());
  WriteLocal("heatmap.pgm", canvas.ToPgm());

  // Multilevel pyramid (web-map style tiles).
  viz::PyramidOptions pyramid;
  pyramid.tile_size = 256;
  pyramid.num_levels = 3;
  const auto tiles =
      viz::PlotPyramid(&runner, file, pyramid, "/tiles").ValueOrDie();
  std::printf("pyramid: %zu non-empty tiles across %d levels\n", tiles.size(),
              pyramid.num_levels);
  // Render the most detailed tile that has the most data.
  const viz::TileId* best = nullptr;
  size_t best_pixels = 0;
  for (const auto& [id, tile] : tiles) {
    if (id.level == pyramid.num_levels - 1 &&
        tile.CountNonZero() > best_pixels) {
      best_pixels = tile.CountNonZero();
      best = &id;
    }
  }
  if (best != nullptr) {
    WriteLocal("tile-" + std::to_string(best->level) + "-" +
                   std::to_string(best->x) + "-" + std::to_string(best->y) +
                   ".pgm",
               tiles.at(*best).ToPgm());
  }
  return 0;
}
