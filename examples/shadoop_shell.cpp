// shadoop_shell: an interactive SpatialHadoop session — the analogue of
// the SIGMOD'14 demo. Pigeon statements execute against an in-process
// cluster; '!' meta-commands manage the simulated HDFS and generate data.
//
//   $ ./build/examples/shadoop_shell
//   shadoop> !gen points 50000 clustered /pts
//   shadoop> idx = INDEX (LOAD?) ...            -- Pigeon statements
//   shadoop> pts = LOAD '/pts' AS POINT;
//   shadoop> i = INDEX pts WITH STR INTO '/pts.str';
//   shadoop> c = COUNT i RECTANGLE(0, 0, 500000, 500000); DUMP c;
//   shadoop> !ls /
//   shadoop> !stats
//   shadoop> !quit
//
// Also scriptable: `./shadoop_shell < session.txt`.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "common/string_util.h"
#include "hdfs/file_system.h"
#include "mapreduce/job_runner.h"
#include "pigeon/executor.h"
#include "workload/generators.h"

using namespace shadoop;

namespace {

void PrintHelp() {
  std::printf(
      "Meta commands:\n"
      "  !gen (points|rects|polygons) <count> <distribution> <path>\n"
      "       distributions: uniform gaussian correlated anticorrelated\n"
      "                      circular clustered\n"
      "  !ls [prefix]           list files\n"
      "  !cat <path> [n]        print the first n (default 10) records\n"
      "  !rm <path>             delete a file\n"
      "  !stats                 cumulative cluster statistics\n"
      "  !help                  this text\n"
      "  !quit                  exit\n"
      "Anything else is Pigeon; statements run when a ';' ends the "
      "buffer.\n"
      "  LOAD LOADINDEX INDEX RANGE COUNT KNN SJOIN SKYLINE CONVEXHULL\n"
      "  CLOSESTPAIR FARTHESTPAIR UNION STORE DUMP\n");
}

struct Shell {
  hdfs::FileSystem fs;
  mapreduce::JobRunner runner;
  pigeon::Executor executor;
  core::OpStats total;

  Shell()
      : fs(MakeConfig()), runner(&fs), executor(&runner) {}

  static hdfs::HdfsConfig MakeConfig() {
    hdfs::HdfsConfig config;
    config.block_size = 32 * 1024;
    return config;
  }

  void Generate(const std::vector<std::string_view>& args) {
    if (args.size() != 5) {
      std::printf("usage: !gen (points|rects|polygons) <count> <dist> "
                  "<path>\n");
      return;
    }
    auto count = ParseInt64(args[2]);
    auto dist = workload::ParseDistribution(std::string(args[3]));
    if (!count.ok() || count.value() <= 0 || !dist.ok()) {
      std::printf("bad count or distribution\n");
      return;
    }
    const std::string path(args[4]);
    workload::PointGenOptions centers;
    centers.count = static_cast<size_t>(count.value());
    centers.distribution = dist.value();
    centers.seed = 20140622;
    Status status;
    if (args[1] == "points") {
      status = workload::WritePointFile(&fs, path, centers);
    } else if (args[1] == "rects") {
      workload::RectGenOptions options;
      options.centers = centers;
      status = workload::WriteRectangleFile(&fs, path, options);
    } else if (args[1] == "polygons") {
      workload::PolygonGenOptions options;
      options.centers = centers;
      status = workload::WritePolygonFile(&fs, path, options);
    } else {
      std::printf("unknown kind '%s'\n", std::string(args[1]).c_str());
      return;
    }
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
      return;
    }
    std::printf("generated %lld %s records into %s (%zu blocks)\n",
                static_cast<long long>(count.value()),
                std::string(args[1]).c_str(), path.c_str(),
                fs.GetFileMeta(path).ValueOrDie().blocks.size());
  }

  void Meta(const std::string& line) {
    const auto args = SplitWhitespace(line);
    if (args.empty()) return;
    if (args[0] == "!help") {
      PrintHelp();
    } else if (args[0] == "!gen") {
      Generate(args);
    } else if (args[0] == "!ls") {
      const std::string prefix = args.size() > 1 ? std::string(args[1]) : "";
      for (const std::string& path : fs.ListFiles(prefix)) {
        const auto meta = fs.GetFileMeta(path).ValueOrDie();
        std::printf("%10zu records %6zu KiB  %s\n", meta.total_records,
                    meta.total_bytes / 1024, path.c_str());
      }
    } else if (args[0] == "!cat" && args.size() >= 2) {
      auto lines = fs.ReadLines(std::string(args[1]));
      if (!lines.ok()) {
        std::printf("error: %s\n", lines.status().ToString().c_str());
        return;
      }
      size_t n = 10;
      if (args.size() > 2) {
        auto parsed = ParseInt64(args[2]);
        if (parsed.ok() && parsed.value() > 0) {
          n = static_cast<size_t>(parsed.value());
        }
      }
      for (size_t i = 0; i < lines->size() && i < n; ++i) {
        std::printf("%s\n", (*lines)[i].c_str());
      }
    } else if (args[0] == "!rm" && args.size() == 2) {
      Status status = fs.Delete(std::string(args[1]));
      std::printf("%s\n", status.ok() ? "deleted" : status.ToString().c_str());
    } else if (args[0] == "!stats") {
      std::printf(
          "cumulative: %d jobs, %.1f s simulated cluster time, "
          "%.2f MiB read, %.2f MiB shuffled\n",
          total.jobs_run, total.cost.total_ms / 1000.0,
          total.cost.bytes_read / 1048576.0,
          total.cost.bytes_shuffled / 1048576.0);
    } else {
      std::printf("unknown meta command (try !help)\n");
    }
  }

  void RunPigeon(const std::string& script) {
    auto report = executor.Execute(script);
    if (!report.ok()) {
      std::printf("error: %s\n", report.status().ToString().c_str());
      return;
    }
    for (const std::string& line : report->dump_output) {
      std::printf("%s\n", line.c_str());
    }
    total.jobs_run += report->stats.jobs_run;
    total.cost.total_ms += report->stats.cost.total_ms;
    total.cost.bytes_read += report->stats.cost.bytes_read;
    total.cost.bytes_shuffled += report->stats.cost.bytes_shuffled;
    if (report->stats.jobs_run > 0) {
      std::printf("(%d job(s), %.1f s simulated)\n", report->stats.jobs_run,
                  report->stats.cost.total_ms / 1000.0);
    }
  }
};

}  // namespace

int main() {
  Shell shell;
  std::printf("SpatialHadoop shell — !help for commands\n");
  std::string buffer;
  std::string line;
  for (;;) {
    std::printf(buffer.empty() ? "shadoop> " : "     ...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) continue;
    if (stripped[0] == '!') {
      if (stripped == "!quit" || stripped == "!exit") break;
      shell.Meta(std::string(stripped));
      continue;
    }
    buffer += line;
    buffer += "\n";
    // Execute once the buffer ends with a statement terminator.
    if (StripWhitespace(buffer).back() == ';') {
      shell.RunPigeon(buffer);
      buffer.clear();
    }
  }
  std::printf("\nbye\n");
  return 0;
}
