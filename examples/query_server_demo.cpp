// Query-server demo: the serving tier in action. One process hosts an
// indexed dataset; several tenant sessions hit it concurrently with
// mixed Pigeon queries, sharing the catalog bindings and the result
// cache. Admission lanes meter the tenants, and every request reports
// its *simulated* latency — run it twice and the numbers are identical.
//
// Build & run:  ./build/examples/query_server_demo

#include <cstdio>
#include <string>
#include <vector>

#include "hdfs/file_system.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"
#include "server/query_server.h"
#include "workload/generators.h"

using namespace shadoop;

int main() {
  // A small simulated cluster with one indexed dataset.
  hdfs::HdfsConfig hdfs_config;
  hdfs_config.block_size = 32 * 1024;
  hdfs_config.num_datanodes = 8;
  hdfs::FileSystem fs(hdfs_config);
  mapreduce::ClusterConfig cluster;
  cluster.num_slots = 8;

  workload::PointGenOptions gen;
  gen.count = 50000;
  gen.seed = 9;
  SHADOOP_CHECK_OK(workload::WritePointFile(&fs, "/trips", gen));
  {
    mapreduce::JobRunner bootstrap(&fs, cluster);
    index::IndexBuilder builder(&bootstrap);
    index::IndexBuildOptions options;
    options.scheme = index::PartitionScheme::kStr;
    SHADOOP_CHECK_OK(builder.Build("/trips", "/trips.idx", options).status());
  }

  // The server loads the dataset once; every session shares the binding.
  server::ServerOptions options;
  options.cluster = cluster;
  server::QueryServer qs(&fs, options);
  SHADOOP_CHECK_OK(qs.AttachDataset("trips", "/trips.idx"));

  // Two tenants, four slots each: equal admission lanes.
  std::vector<server::SessionStream> streams;
  for (int i = 0; i < 2; ++i) {
    const server::SessionId session =
        qs.OpenSession("tenant" + std::to_string(i), 4).ValueOrDie();
    streams.push_back(server::SessionStream{
        session,
        {
            "near = KNN trips POINT(500000, 500000) K 5; DUMP near;",
            // Both tenants issue this count: the second one to arrive
            // is served from the result cache with identical rows and
            // identical simulated charges.
            "n = COUNT trips RECTANGLE(200000, 200000, 800000, 800000);"
            " DUMP n;",
        }});
  }

  const auto results = qs.ExecuteConcurrent(streams).ValueOrDie();
  for (size_t i = 0; i < results.size(); ++i) {
    for (size_t j = 0; j < results[i].size(); ++j) {
      const server::RequestResult& r = results[i][j];
      std::printf("tenant%zu request %zu: %zu rows, sim latency %.1f ms, "
                  "cache hits=%lld misses=%lld\n",
                  i, j, r.rows.size(), r.sim_latency_ms,
                  static_cast<long long>(r.result_cache_hits),
                  static_cast<long long>(r.result_cache_misses));
    }
  }
  std::printf("result cache: %zu entries, %llu hits, %llu misses\n",
              qs.result_cache().size(),
              static_cast<unsigned long long>(qs.result_cache().hits()),
              static_cast<unsigned long long>(qs.result_cache().misses()));
  return 0;
}
