// OSM-style analytics: the workload the SpatialHadoop demo motivates —
// city-scale map data with skewed density. Buildings (rectangles) are
// joined with park areas (polygons), restaurant locations are mined for
// the skyline (best rating x cheapest in this toy frame), and the parks
// layer is unioned into district outlines.
//
// Build & run:  ./build/examples/osm_analytics

#include <cstdio>

#include "core/skyline_op.h"
#include "core/spatial_join.h"
#include "core/union_op.h"
#include "hdfs/file_system.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"
#include "workload/generators.h"

using namespace shadoop;

namespace {

index::SpatialFileInfo BuildIndex(mapreduce::JobRunner& runner,
                                  const std::string& src,
                                  const std::string& dst,
                                  index::PartitionScheme scheme,
                                  index::ShapeType shape) {
  index::IndexBuilder builder(&runner);
  index::IndexBuildOptions options;
  options.scheme = scheme;
  options.shape = shape;
  return builder.Build(src, dst, options).ValueOrDie();
}

}  // namespace

int main() {
  hdfs::HdfsConfig hdfs_config;
  hdfs_config.block_size = 32 * 1024;
  hdfs::FileSystem fs(hdfs_config);
  mapreduce::JobRunner runner(&fs);

  // --- Datasets: clustered like real city data -------------------------
  workload::RectGenOptions buildings;
  buildings.centers.distribution = workload::Distribution::kClustered;
  buildings.centers.count = 20000;
  buildings.centers.seed = 11;
  buildings.max_side_fraction = 0.004;
  SHADOOP_CHECK_OK(
      workload::WriteRectangleFile(&fs, "/osm/buildings", buildings));

  workload::PolygonGenOptions parks;
  parks.centers.distribution = workload::Distribution::kClustered;
  parks.centers.count = 1500;
  parks.centers.seed = 12;
  parks.max_radius_fraction = 0.02;
  SHADOOP_CHECK_OK(workload::WritePolygonFile(&fs, "/osm/parks", parks));

  workload::PointGenOptions restaurants;
  restaurants.distribution = workload::Distribution::kClustered;
  restaurants.count = 30000;
  restaurants.seed = 13;
  SHADOOP_CHECK_OK(
      workload::WritePointFile(&fs, "/osm/restaurants", restaurants));
  std::printf("datasets: 20k buildings, 1.5k parks, 30k restaurants\n");

  // --- Indexes ----------------------------------------------------------
  auto buildings_idx =
      BuildIndex(runner, "/osm/buildings", "/osm/buildings.str",
                 index::PartitionScheme::kStr, index::ShapeType::kRectangle);
  auto parks_idx =
      BuildIndex(runner, "/osm/parks", "/osm/parks.quad",
                 index::PartitionScheme::kQuadTree, index::ShapeType::kPolygon);
  auto restaurants_idx =
      BuildIndex(runner, "/osm/restaurants", "/osm/restaurants.str",
                 index::PartitionScheme::kStr, index::ShapeType::kPoint);
  std::printf("indexes: buildings=%zu parts, parks=%zu parts, "
              "restaurants=%zu parts\n",
              buildings_idx.global_index.NumPartitions(),
              parks_idx.global_index.NumPartitions(),
              restaurants_idx.global_index.NumPartitions());

  // --- Which buildings touch a park? (distributed join) -----------------
  core::OpStats join_stats;
  auto park_buildings =
      core::DistributedJoin(&runner, buildings_idx, parks_idx, &join_stats)
          .ValueOrDie();
  std::printf(
      "join buildings x parks: %zu overlapping pairs "
      "(map-only, %.1f s simulated, zero shuffle bytes: %llu)\n",
      park_buildings.size(), join_stats.cost.total_ms / 1000.0,
      static_cast<unsigned long long>(join_stats.cost.bytes_shuffled));

  // --- Skyline of restaurant coordinates --------------------------------
  core::OpStats sky_stats;
  auto skyline =
      core::SkylineSpatial(&runner, restaurants_idx, &sky_stats).ValueOrDie();
  std::printf(
      "restaurant skyline: %zu points; pruned %lld of %zu partitions\n",
      skyline.size(),
      static_cast<long long>(
          sky_stats.counters.Get("skyline.partitions_pruned")),
      restaurants_idx.global_index.NumPartitions());

  // --- District outlines: union of all parks ---------------------------
  core::OpStats union_stats;
  auto outlines =
      core::UnionSpatialEnhanced(&runner, parks_idx, &union_stats)
          .ValueOrDie();
  double outline_length = 0;
  for (const Segment& s : outlines) outline_length += s.Length();
  std::printf("park union: %zu boundary segments, total length %.0f "
              "(%.1f s simulated, fully distributed)\n",
              outlines.size(), outline_length,
              union_stats.cost.total_ms / 1000.0);
  return 0;
}
