// Data pipeline: the adoption path for real data. A raw CSV feed (with
// coordinates buried in arbitrary columns) is imported into the canonical
// record format, indexed, joined against a second layer with a kNN join
// (nearest bike station per taxi pickup), and summarized with a custom
// operation written against the five-step skeleton — no MapReduce code.
//
// Build & run:  ./build/examples/data_pipeline

#include <cstdio>

#include "common/string_util.h"
#include "core/knn_join.h"
#include "core/operation_skeleton.h"
#include "geometry/wkt.h"
#include "hdfs/file_system.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"
#include "workload/generators.h"
#include "workload/import.h"

using namespace shadoop;

namespace {

/// Fakes the raw export of an operational system: "trip_id,fare,lat,lon".
std::vector<std::string> MakeRawTripCsv(size_t count) {
  workload::PointGenOptions gen;
  gen.distribution = workload::Distribution::kClustered;
  gen.count = count;
  gen.seed = 900;
  const auto points = workload::GeneratePoints(gen);
  Random rng(901);
  std::vector<std::string> lines;
  lines.reserve(count + 1);
  lines.push_back("trip_id,fare,lat,lon");
  for (size_t i = 0; i < points.size(); ++i) {
    lines.push_back("T" + std::to_string(i) + "," +
                    FormatDouble(5.0 + rng.NextDouble() * 40) + "," +
                    FormatDouble(points[i].y) + "," +
                    FormatDouble(points[i].x));
  }
  return lines;
}

}  // namespace

int main() {
  hdfs::HdfsConfig hdfs_config;
  hdfs_config.block_size = 32 * 1024;
  hdfs::FileSystem fs(hdfs_config);
  mapreduce::JobRunner runner(&fs);

  // 1. Import: map (lat, lon) columns into the record format; the other
  //    columns ride along as attributes.
  const std::vector<std::string> raw = MakeRawTripCsv(25000);
  workload::CsvImportOptions import;
  import.x_column = 3;  // lon
  import.y_column = 2;  // lat
  import.has_header = true;
  size_t skipped = 0;
  const auto trip_records =
      workload::ImportPointCsv(raw, import, &skipped).ValueOrDie();
  SHADOOP_CHECK_OK(fs.WriteLines("/trips", trip_records));
  std::printf("imported %zu trips (%zu bad rows skipped); sample: %s\n",
              trip_records.size(), skipped, trip_records.front().c_str());

  // 2. A second layer: bike stations.
  workload::PointGenOptions stations;
  stations.distribution = workload::Distribution::kClustered;
  stations.count = 400;
  stations.seed = 902;
  SHADOOP_CHECK_OK(workload::WritePointFile(&fs, "/stations", stations));

  // 3. Index both.
  index::IndexBuilder builder(&runner);
  index::IndexBuildOptions options;
  options.scheme = index::PartitionScheme::kStr;
  const auto trips_idx =
      builder.Build("/trips", "/trips.str", options).ValueOrDie();
  const auto stations_idx =
      builder.Build("/stations", "/stations.str", options).ValueOrDie();

  // 4. Nearest station per pickup (k=1 join).
  core::OpStats join_stats;
  const auto pairs =
      core::KnnJoinSpatial(&runner, trips_idx, stations_idx, 1, &join_stats)
          .ValueOrDie();
  double total_walk = 0;
  for (const auto& pair : pairs) total_walk += pair.distance;
  std::printf("kNN join: matched %zu trips to stations in %d jobs "
              "(%.1f s simulated); mean distance to station %.0f\n",
              pairs.size(), join_stats.jobs_run,
              join_stats.cost.total_ms / 1000.0,
              total_walk / pairs.size());

  // 5. A custom aggregate via the operation skeleton: revenue per
  //    partition (the fare attribute survives import + indexing).
  core::OperationSkeleton revenue;
  revenue.name = "revenue-by-region";
  revenue.local = [](const core::SplitExtent& extent,
                     const std::vector<std::string>& records,
                     core::LocalOutput* out) {
    double fares = 0;
    for (const std::string& record : records) {
      // Attributes: "T<id>,<fare>".
      const size_t tab = record.find('\t');
      if (tab == std::string::npos) continue;
      const auto attrs = SplitString(
          std::string_view(record).substr(tab + 1), ',');
      if (attrs.size() < 2) continue;
      auto fare = ParseDouble(attrs[1]);
      if (fare.ok()) fares += fare.value();
    }
    out->ChargeCpu(records.size() * 30);
    out->ToOutput(extent.mbr.ToString() + " revenue=" + FormatDouble(fares));
  };
  const auto regions =
      core::RunOperation(&runner, trips_idx, revenue).ValueOrDie();
  std::printf("custom skeleton op produced %zu region rows; first: %s\n",
              regions.size(), regions.front().c_str());
  return 0;
}
