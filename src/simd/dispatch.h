#ifndef SHADOOP_SIMD_DISPATCH_H_
#define SHADOOP_SIMD_DISPATCH_H_

#include <string>
#include <vector>

namespace shadoop::simd {

/// Kernel instruction-set targets. kScalar is always compiled in and is
/// the semantic reference: every vector target must produce bit-identical
/// results (hit bitmaps, distances) for the same inputs.
enum class Target {
  kScalar,
  kAvx2,
  kNeon,
};

const char* TargetName(Target target);

/// Targets compiled into this binary AND usable on this CPU. Always
/// contains kScalar. Order: kScalar first, then vector targets.
std::vector<Target> SupportedTargets();

/// The target the kernel entry points currently dispatch to. Defaults to
/// the widest supported vector target (detected once at first use).
Target ActiveTarget();

/// Overrides dispatch (tests and the scalar-forced CI leg use this).
/// Returns false — leaving the active target unchanged — when `target`
/// is not compiled in or not supported by the running CPU.
bool SetActiveTarget(Target target);

}  // namespace shadoop::simd

#endif  // SHADOOP_SIMD_DISPATCH_H_
