#include "simd/kernels_internal.h"

#if SHADOOP_SIMD_HAVE_AVX2

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

// Each kernel carries the per-function target attribute instead of the
// whole library being built with -mavx2: the TU stays linkable into a
// binary that never executes AVX2 (dispatch checks the CPU first).
#define SHADOOP_AVX2_FN __attribute__((target("avx2")))

namespace shadoop::simd::detail {
namespace {

// Exactness notes. _CMP_LE_OQ / _CMP_GE_OQ are the vector twins of the
// scalar <= / >= (ordered, false on NaN), so the bitmap kernels decide
// every lane exactly as the scalar reference. BoxMinDistance uses
// explicit mul/add/sqrt intrinsics — no FMA contraction — and VSQRTPD is
// IEEE-754 correctly rounded, matching std::sqrt bit-for-bit.

SHADOOP_AVX2_FN size_t IntersectBoxBitmapAvx2(const BoxLanes& boxes,
                                              size_t n, double q_min_x,
                                              double q_min_y, double q_max_x,
                                              double q_max_y,
                                              uint64_t* out_bits) {
  std::memset(out_bits, 0, BitmapWords(n) * sizeof(uint64_t));
  const __m256d v_q_min_x = _mm256_set1_pd(q_min_x);
  const __m256d v_q_min_y = _mm256_set1_pd(q_min_y);
  const __m256d v_q_max_x = _mm256_set1_pd(q_max_x);
  const __m256d v_q_max_y = _mm256_set1_pd(q_max_y);
  size_t hits = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d b_min_x = _mm256_loadu_pd(boxes.min_x + i);
    const __m256d b_min_y = _mm256_loadu_pd(boxes.min_y + i);
    const __m256d b_max_x = _mm256_loadu_pd(boxes.max_x + i);
    const __m256d b_max_y = _mm256_loadu_pd(boxes.max_y + i);
    const __m256d hit_x =
        _mm256_and_pd(_mm256_cmp_pd(v_q_min_x, b_max_x, _CMP_LE_OQ),
                      _mm256_cmp_pd(b_min_x, v_q_max_x, _CMP_LE_OQ));
    const __m256d hit_y =
        _mm256_and_pd(_mm256_cmp_pd(v_q_min_y, b_max_y, _CMP_LE_OQ),
                      _mm256_cmp_pd(b_min_y, v_q_max_y, _CMP_LE_OQ));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(hit_x, hit_y)));
    // i is a multiple of 4, so the 4-bit group never straddles a word.
    out_bits[i >> 6] |= static_cast<uint64_t>(mask) << (i & 63);
    hits += static_cast<size_t>(std::popcount(mask));
  }
  for (; i < n; ++i) {
    const bool hit = q_min_x <= boxes.max_x[i] && boxes.min_x[i] <= q_max_x &&
                     q_min_y <= boxes.max_y[i] && boxes.min_y[i] <= q_max_y;
    if (hit) {
      out_bits[i >> 6] |= uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

SHADOOP_AVX2_FN size_t PointInBoxBitmapAvx2(const double* px,
                                            const double* py, size_t n,
                                            double q_min_x, double q_min_y,
                                            double q_max_x, double q_max_y,
                                            uint64_t* out_bits) {
  std::memset(out_bits, 0, BitmapWords(n) * sizeof(uint64_t));
  const __m256d v_q_min_x = _mm256_set1_pd(q_min_x);
  const __m256d v_q_min_y = _mm256_set1_pd(q_min_y);
  const __m256d v_q_max_x = _mm256_set1_pd(q_max_x);
  const __m256d v_q_max_y = _mm256_set1_pd(q_max_y);
  size_t hits = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v_px = _mm256_loadu_pd(px + i);
    const __m256d v_py = _mm256_loadu_pd(py + i);
    const __m256d hit_x =
        _mm256_and_pd(_mm256_cmp_pd(v_px, v_q_min_x, _CMP_GE_OQ),
                      _mm256_cmp_pd(v_px, v_q_max_x, _CMP_LE_OQ));
    const __m256d hit_y =
        _mm256_and_pd(_mm256_cmp_pd(v_py, v_q_min_y, _CMP_GE_OQ),
                      _mm256_cmp_pd(v_py, v_q_max_y, _CMP_LE_OQ));
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(hit_x, hit_y)));
    out_bits[i >> 6] |= static_cast<uint64_t>(mask) << (i & 63);
    hits += static_cast<size_t>(std::popcount(mask));
  }
  for (; i < n; ++i) {
    const bool hit = px[i] >= q_min_x && px[i] <= q_max_x &&
                     py[i] >= q_min_y && py[i] <= q_max_y;
    if (hit) {
      out_bits[i >> 6] |= uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

SHADOOP_AVX2_FN void BoxMinDistanceAvx2(const BoxLanes& boxes, size_t n,
                                        double px, double py, double* out) {
  const __m256d v_px = _mm256_set1_pd(px);
  const __m256d v_py = _mm256_set1_pd(py);
  const __m256d zero = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d dx = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(boxes.min_x + i), v_px),
                      zero),
        _mm256_sub_pd(v_px, _mm256_loadu_pd(boxes.max_x + i)));
    const __m256d dy = _mm256_max_pd(
        _mm256_max_pd(_mm256_sub_pd(_mm256_loadu_pd(boxes.min_y + i), v_py),
                      zero),
        _mm256_sub_pd(v_py, _mm256_loadu_pd(boxes.max_y + i)));
    const __m256d dist = _mm256_sqrt_pd(
        _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
    _mm256_storeu_pd(out + i, dist);
  }
  for (; i < n; ++i) {
    const double dx = std::max({boxes.min_x[i] - px, 0.0, px - boxes.max_x[i]});
    const double dy = std::max({boxes.min_y[i] - py, 0.0, py - boxes.max_y[i]});
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

SHADOOP_AVX2_FN size_t PrefixCountLessEqualAvx2(const double* values,
                                               size_t n, double limit) {
  const __m256d v_limit = _mm256_set1_pd(limit);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const unsigned mask = static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(values + i), v_limit, _CMP_LE_OQ)));
    if (mask != 0xF) {
      return i + static_cast<size_t>(std::countr_one(mask));
    }
  }
  while (i < n && values[i] <= limit) ++i;
  return i;
}

const KernelTable kAvx2Table = {
    &IntersectBoxBitmapAvx2,
    &PointInBoxBitmapAvx2,
    &BoxMinDistanceAvx2,
    &PrefixCountLessEqualAvx2,
};

}  // namespace

const KernelTable* Avx2TableOrNull() { return &kAvx2Table; }

}  // namespace shadoop::simd::detail

#else  // !SHADOOP_SIMD_HAVE_AVX2

namespace shadoop::simd::detail {

const KernelTable* Avx2TableOrNull() { return nullptr; }

}  // namespace shadoop::simd::detail

#endif  // SHADOOP_SIMD_HAVE_AVX2
