#ifndef SHADOOP_SIMD_MBR_KERNELS_H_
#define SHADOOP_SIMD_MBR_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "simd/dispatch.h"

namespace shadoop::simd {

/// Structure-of-arrays view over a column of axis-aligned boxes. The
/// canonical empty box is (+inf, +inf, -inf, -inf); kernels treat it as
/// never matching, which falls out of the closed comparisons — no branch
/// needed. Inputs must be NaN-free (record parsers reject NaN upstream).
struct BoxLanes {
  const double* min_x = nullptr;
  const double* min_y = nullptr;
  const double* max_x = nullptr;
  const double* max_y = nullptr;
};

/// Number of uint64 words a hit bitmap over `n` elements needs.
constexpr size_t BitmapWords(size_t n) { return (n + 63) / 64; }

/// Batch MBR intersection: sets bit i of `out_bits` iff box i intersects
/// the closed query box [q_min_x, q_max_x] x [q_min_y, q_max_y] — the
/// same predicate as Envelope::Intersects (touching boundaries hit,
/// empty boxes and empty queries never hit). The first BitmapWords(n)
/// words of `out_bits` are fully overwritten. Returns the hit count.
size_t IntersectBoxBitmap(const BoxLanes& boxes, size_t n, double q_min_x,
                          double q_min_y, double q_max_x, double q_max_y,
                          uint64_t* out_bits);

/// Batch point-in-envelope: sets bit i iff the closed query box contains
/// point (px[i], py[i]) — same predicate as Envelope::Contains(Point).
/// The first BitmapWords(n) words of `out_bits` are fully overwritten.
/// Returns the hit count.
size_t PointInBoxBitmap(const double* px, const double* py, size_t n,
                        double q_min_x, double q_min_y, double q_max_x,
                        double q_max_y, uint64_t* out_bits);

/// Batch box-to-point distance: out[i] = Envelope::MinDistance for box i
/// to (px, py), bit-identical to the scalar formula (sqrt of the clamped
/// axis gaps; empty boxes yield +inf).
void BoxMinDistance(const BoxLanes& boxes, size_t n, double px, double py,
                    double* out);

/// Length of the leading run of `values` (ascending) with value <= limit.
/// Exactly the plane-sweep inner-loop advance: the scan stops at the
/// first element greater than `limit`. Works on any array, but only a
/// sorted one makes the result a prefix of the candidates.
size_t PrefixCountLessEqual(const double* values, size_t n, double limit);

/// Per-target entry points, exposed so parity tests can pin every
/// compiled target against kScalar on the same inputs. The unsuffixed
/// functions above dispatch to ActiveTarget().
namespace detail {
struct KernelTable;
}

/// Snapshot of the active target's kernel table, for hot loops that make
/// many small batch calls and want to skip the per-call dispatch load.
/// The snapshot stays valid for the process lifetime; a concurrent
/// SetActiveTarget only affects tables fetched afterwards.
const detail::KernelTable& ActiveKernels();

namespace detail {

struct KernelTable {
  size_t (*intersect_box_bitmap)(const BoxLanes&, size_t, double, double,
                                 double, double, uint64_t*) = nullptr;
  size_t (*point_in_box_bitmap)(const double*, const double*, size_t, double,
                                double, double, double, uint64_t*) = nullptr;
  void (*box_min_distance)(const BoxLanes&, size_t, double, double,
                           double*) = nullptr;
  size_t (*prefix_count_less_equal)(const double*, size_t,
                                    double) = nullptr;
};

/// Table for a compiled-in target; nullptr members when `target` is not
/// compiled into this binary.
const KernelTable& TableFor(Target target);

}  // namespace detail

}  // namespace shadoop::simd

#endif  // SHADOOP_SIMD_MBR_KERNELS_H_
