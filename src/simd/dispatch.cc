#include "simd/dispatch.h"

#include <atomic>

#include "simd/kernels_internal.h"

namespace shadoop::simd {
namespace detail {

bool CpuSupports(Target target) {
  switch (target) {
    case Target::kScalar:
      return true;
    case Target::kAvx2:
#if SHADOOP_SIMD_HAVE_AVX2
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Target::kNeon:
      // NEON is baseline on aarch64; compiled-in implies runnable.
      return SHADOOP_SIMD_HAVE_NEON != 0;
  }
  return false;
}

}  // namespace detail

namespace {

bool TargetUsable(Target target) {
  const detail::KernelTable& table = detail::TableFor(target);
  return table.intersect_box_bitmap != nullptr &&
         detail::CpuSupports(target);
}

Target DetectBestTarget() {
  if (TargetUsable(Target::kAvx2)) return Target::kAvx2;
  if (TargetUsable(Target::kNeon)) return Target::kNeon;
  return Target::kScalar;
}

std::atomic<Target>& ActiveSlot() {
  static std::atomic<Target> slot{DetectBestTarget()};
  return slot;
}

}  // namespace

const char* TargetName(Target target) {
  switch (target) {
    case Target::kScalar:
      return "scalar";
    case Target::kAvx2:
      return "avx2";
    case Target::kNeon:
      return "neon";
  }
  return "?";
}

std::vector<Target> SupportedTargets() {
  std::vector<Target> targets = {Target::kScalar};
  if (TargetUsable(Target::kAvx2)) targets.push_back(Target::kAvx2);
  if (TargetUsable(Target::kNeon)) targets.push_back(Target::kNeon);
  return targets;
}

Target ActiveTarget() {
  return ActiveSlot().load(std::memory_order_relaxed);
}

bool SetActiveTarget(Target target) {
  if (!TargetUsable(target)) return false;
  ActiveSlot().store(target, std::memory_order_relaxed);
  return true;
}

}  // namespace shadoop::simd
