#include "simd/mbr_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "simd/kernels_internal.h"

namespace shadoop::simd {
namespace {

// ---------------------------------------------------------------------
// Scalar reference kernels. These are the semantic ground truth: the
// predicates and distance formula are copied from Envelope so that a
// vector target proving bit-parity against kScalar has proved parity
// against the geometry layer too.

size_t IntersectBoxBitmapScalar(const BoxLanes& boxes, size_t n,
                                double q_min_x, double q_min_y,
                                double q_max_x, double q_max_y,
                                uint64_t* out_bits) {
  std::memset(out_bits, 0, BitmapWords(n) * sizeof(uint64_t));
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool hit = q_min_x <= boxes.max_x[i] && boxes.min_x[i] <= q_max_x &&
                     q_min_y <= boxes.max_y[i] && boxes.min_y[i] <= q_max_y;
    if (hit) {
      out_bits[i >> 6] |= uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

size_t PointInBoxBitmapScalar(const double* px, const double* py, size_t n,
                              double q_min_x, double q_min_y, double q_max_x,
                              double q_max_y, uint64_t* out_bits) {
  std::memset(out_bits, 0, BitmapWords(n) * sizeof(uint64_t));
  size_t hits = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool hit = px[i] >= q_min_x && px[i] <= q_max_x &&
                     py[i] >= q_min_y && py[i] <= q_max_y;
    if (hit) {
      out_bits[i >> 6] |= uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

void BoxMinDistanceScalar(const BoxLanes& boxes, size_t n, double px,
                          double py, double* out) {
  for (size_t i = 0; i < n; ++i) {
    // Same expression as Envelope::MinDistance(Point); the canonical
    // empty box (+inf lanes) yields +inf without a branch.
    const double dx =
        std::max({boxes.min_x[i] - px, 0.0, px - boxes.max_x[i]});
    const double dy =
        std::max({boxes.min_y[i] - py, 0.0, py - boxes.max_y[i]});
    out[i] = std::sqrt(dx * dx + dy * dy);
  }
}

size_t PrefixCountLessEqualScalar(const double* values, size_t n,
                                  double limit) {
  size_t i = 0;
  while (i < n && values[i] <= limit) ++i;
  return i;
}

}  // namespace

namespace detail {

const KernelTable kScalarTable = {
    &IntersectBoxBitmapScalar,
    &PointInBoxBitmapScalar,
    &BoxMinDistanceScalar,
    &PrefixCountLessEqualScalar,
};

const KernelTable& TableFor(Target target) {
  static const KernelTable kEmpty;
  switch (target) {
    case Target::kScalar:
      return kScalarTable;
    case Target::kAvx2: {
      const KernelTable* t = Avx2TableOrNull();
      return t != nullptr ? *t : kEmpty;
    }
    case Target::kNeon: {
      const KernelTable* t = NeonTableOrNull();
      return t != nullptr ? *t : kEmpty;
    }
  }
  return kEmpty;
}

}  // namespace detail

// ---------------------------------------------------------------------
// Dispatching entry points.

namespace {

const detail::KernelTable& ActiveTable() {
  return detail::TableFor(ActiveTarget());
}

}  // namespace

const detail::KernelTable& ActiveKernels() { return ActiveTable(); }

size_t IntersectBoxBitmap(const BoxLanes& boxes, size_t n, double q_min_x,
                          double q_min_y, double q_max_x, double q_max_y,
                          uint64_t* out_bits) {
  return ActiveTable().intersect_box_bitmap(boxes, n, q_min_x, q_min_y,
                                            q_max_x, q_max_y, out_bits);
}

size_t PointInBoxBitmap(const double* px, const double* py, size_t n,
                        double q_min_x, double q_min_y, double q_max_x,
                        double q_max_y, uint64_t* out_bits) {
  return ActiveTable().point_in_box_bitmap(px, py, n, q_min_x, q_min_y,
                                           q_max_x, q_max_y, out_bits);
}

void BoxMinDistance(const BoxLanes& boxes, size_t n, double px, double py,
                    double* out) {
  ActiveTable().box_min_distance(boxes, n, px, py, out);
}

size_t PrefixCountLessEqual(const double* values, size_t n, double limit) {
  return ActiveTable().prefix_count_less_equal(values, n, limit);
}

}  // namespace shadoop::simd
