#ifndef SHADOOP_SIMD_KERNELS_INTERNAL_H_
#define SHADOOP_SIMD_KERNELS_INTERNAL_H_

#include "simd/mbr_kernels.h"

// Vector targets compile only when the build enables SIMD
// (-DSPATIAL_SIMD=ON, the default) and the architecture matches; the
// scalar-forced CI leg builds with SPATIAL_SIMD=OFF and gets a binary
// whose only table is kScalar.
#if defined(SHADOOP_SIMD_ENABLED) && defined(__x86_64__) && \
    defined(__GNUC__)
#define SHADOOP_SIMD_HAVE_AVX2 1
#else
#define SHADOOP_SIMD_HAVE_AVX2 0
#endif

#if defined(SHADOOP_SIMD_ENABLED) && defined(__aarch64__)
#define SHADOOP_SIMD_HAVE_NEON 1
#else
#define SHADOOP_SIMD_HAVE_NEON 0
#endif

namespace shadoop::simd::detail {

extern const KernelTable kScalarTable;

/// nullptr when the target is not compiled into this binary.
const KernelTable* Avx2TableOrNull();
const KernelTable* NeonTableOrNull();

/// True when the running CPU can execute the target's instructions.
bool CpuSupports(Target target);

}  // namespace shadoop::simd::detail

#endif  // SHADOOP_SIMD_KERNELS_INTERNAL_H_
