#include "simd/kernels_internal.h"

#if SHADOOP_SIMD_HAVE_NEON

#include <arm_neon.h>

#include <cstring>

namespace shadoop::simd::detail {
namespace {

// NEON implements the comparison kernels (exact by construction: vector
// <= / >= decide lanes exactly like the scalar operators). The distance
// kernel stays on the scalar reference: on aarch64 the compiler may
// contract mul+add into FMA differently per TU, and bit-parity with
// Envelope::MinDistance matters more than the last 2x on that kernel.

inline unsigned Mask2(uint64x2_t bits) {
  return static_cast<unsigned>(vgetq_lane_u64(bits, 0) & 1) |
         (static_cast<unsigned>(vgetq_lane_u64(bits, 1) & 1) << 1);
}

size_t IntersectBoxBitmapNeon(const BoxLanes& boxes, size_t n,
                              double q_min_x, double q_min_y, double q_max_x,
                              double q_max_y, uint64_t* out_bits) {
  std::memset(out_bits, 0, BitmapWords(n) * sizeof(uint64_t));
  const float64x2_t v_q_min_x = vdupq_n_f64(q_min_x);
  const float64x2_t v_q_min_y = vdupq_n_f64(q_min_y);
  const float64x2_t v_q_max_x = vdupq_n_f64(q_max_x);
  const float64x2_t v_q_max_y = vdupq_n_f64(q_max_y);
  size_t hits = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t hit = vandq_u64(
        vandq_u64(vcleq_f64(v_q_min_x, vld1q_f64(boxes.max_x + i)),
                  vcleq_f64(vld1q_f64(boxes.min_x + i), v_q_max_x)),
        vandq_u64(vcleq_f64(v_q_min_y, vld1q_f64(boxes.max_y + i)),
                  vcleq_f64(vld1q_f64(boxes.min_y + i), v_q_max_y)));
    const unsigned mask = Mask2(hit);
    out_bits[i >> 6] |= static_cast<uint64_t>(mask) << (i & 63);
    hits += (mask & 1) + (mask >> 1);
  }
  for (; i < n; ++i) {
    const bool hit = q_min_x <= boxes.max_x[i] && boxes.min_x[i] <= q_max_x &&
                     q_min_y <= boxes.max_y[i] && boxes.min_y[i] <= q_max_y;
    if (hit) {
      out_bits[i >> 6] |= uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

size_t PointInBoxBitmapNeon(const double* px, const double* py, size_t n,
                            double q_min_x, double q_min_y, double q_max_x,
                            double q_max_y, uint64_t* out_bits) {
  std::memset(out_bits, 0, BitmapWords(n) * sizeof(uint64_t));
  const float64x2_t v_q_min_x = vdupq_n_f64(q_min_x);
  const float64x2_t v_q_min_y = vdupq_n_f64(q_min_y);
  const float64x2_t v_q_max_x = vdupq_n_f64(q_max_x);
  const float64x2_t v_q_max_y = vdupq_n_f64(q_max_y);
  size_t hits = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v_px = vld1q_f64(px + i);
    const float64x2_t v_py = vld1q_f64(py + i);
    const uint64x2_t hit =
        vandq_u64(vandq_u64(vcgeq_f64(v_px, v_q_min_x),
                            vcleq_f64(v_px, v_q_max_x)),
                  vandq_u64(vcgeq_f64(v_py, v_q_min_y),
                            vcleq_f64(v_py, v_q_max_y)));
    const unsigned mask = Mask2(hit);
    out_bits[i >> 6] |= static_cast<uint64_t>(mask) << (i & 63);
    hits += (mask & 1) + (mask >> 1);
  }
  for (; i < n; ++i) {
    const bool hit = px[i] >= q_min_x && px[i] <= q_max_x &&
                     py[i] >= q_min_y && py[i] <= q_max_y;
    if (hit) {
      out_bits[i >> 6] |= uint64_t{1} << (i & 63);
      ++hits;
    }
  }
  return hits;
}

size_t PrefixCountLessEqualNeon(const double* values, size_t n,
                                double limit) {
  const float64x2_t v_limit = vdupq_n_f64(limit);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const unsigned mask = Mask2(vcleq_f64(vld1q_f64(values + i), v_limit));
    if (mask != 0x3) return i + (mask & 1);
  }
  while (i < n && values[i] <= limit) ++i;
  return i;
}

}  // namespace

const KernelTable* NeonTableOrNull() {
  static const KernelTable table = {
      &IntersectBoxBitmapNeon,
      &PointInBoxBitmapNeon,
      kScalarTable.box_min_distance,
      kScalarTable.prefix_count_less_equal,
  };
  return &table;
}

}  // namespace shadoop::simd::detail

#else  // !SHADOOP_SIMD_HAVE_NEON

namespace shadoop::simd::detail {

const KernelTable* NeonTableOrNull() { return nullptr; }

}  // namespace shadoop::simd::detail

#endif  // SHADOOP_SIMD_HAVE_NEON
