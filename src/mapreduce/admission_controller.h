#ifndef SHADOOP_MAPREDUCE_ADMISSION_CONTROLLER_H_
#define SHADOOP_MAPREDUCE_ADMISSION_CONTROLLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "mapreduce/task_scheduler.h"

namespace shadoop::mapreduce {

/// Multi-tenant admission control over the job runner (DESIGN.md §10).
///
/// The cluster serves many concurrent sessions ("tenants"); without
/// admission control one heavy spatial join monopolizes every task lane
/// and starves the casual range queries the paper's Pigeon front end is
/// built for. The controller enforces two quotas per tenant:
///
///   - a *job* quota: at most `tenant_slots` jobs of a tenant run
///     concurrently; excess jobs queue FIFO **per tenant**, so one
///     tenant's backlog never delays another tenant's admission.
///   - a *lane* share: the scheduler's task lanes (ClusterConfig::
///     num_slots) are divided among the configured tenants by weighted
///     max-min (weight = the tenant's `tenant_slots`), with leftover
///     lanes tie-broken by a seeded hash so the split is deterministic
///     and seedable. An admitted job runs — and is *costed* — with its
///     tenant's lane share instead of the whole cluster.
///
/// Determinism: real admission blocks on a mutex/condvar (so wall-clock
/// order depends on the callers), but every number the controller emits
/// is modeled, not measured. `wait_ms` comes from a per-tenant simulated
/// lane ledger (greedy least-loaded assignment of each job's simulated
/// JobCost), `queued` counts jobs whose simulated wait was nonzero, and
/// speculative preemption is a pure function of the lane share — so
/// admission counters and JobCost reproduce across runs and machines
/// exactly like the fault counters do (DESIGN.md §9).
struct AdmissionOptions {
  /// Task lanes shared by all tenants; mirrors ClusterConfig::num_slots.
  int total_slots = 25;
  /// Seed of the lane tie-break hash.
  uint64_t seed = 0;
};

/// Cumulative per-tenant admission statistics.
struct TenantStats {
  int64_t jobs_admitted = 0;
  /// Admissions whose simulated FIFO wait was nonzero.
  int64_t jobs_queued = 0;
  /// Total simulated milliseconds jobs of this tenant spent queued.
  double wait_ms = 0;
  /// Speculative backups denied because the lane share cannot fit a
  /// second concurrent attempt of the same task.
  int64_t preempted_specs = 0;
  /// Attempt-lane acquire/release pairs (primary, retried and
  /// speculative attempts all count; the two totals must match after
  /// every job — the quota-release invariant).
  int64_t lanes_acquired = 0;
  int64_t lanes_released = 0;
  /// High-water mark of concurrently running attempts.
  int peak_lanes = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = AdmissionOptions());

  /// One admitted job. Implements the scheduler's AttemptGate so every
  /// task attempt of the job (including retries and speculative backups)
  /// acquires a lane on start and releases it on completion, and so
  /// speculation respects the tenant's lane share.
  class JobTicket : public AttemptGate {
   public:
    const std::string& tenant() const { return tenant_; }
    int lane_share() const { return lane_share_; }
    /// Simulated milliseconds this job waited in its tenant's queue.
    double sim_wait_ms() const { return sim_wait_ms_; }
    /// Speculative backups denied for this job.
    int64_t preempted_specs() const {
      return preempted_specs_.load(std::memory_order_relaxed);
    }

    void OnAttemptStart(bool speculative) override;
    void OnAttemptDone(bool speculative) override;
    bool AllowSpeculative(size_t task) override;

   private:
    friend class AdmissionController;
    AdmissionController* controller_ = nullptr;
    std::string tenant_;
    int lane_share_ = 1;
    double sim_wait_ms_ = 0;
    size_t sim_lane_ = 0;
    std::atomic<int64_t> preempted_specs_{0};
  };

  /// Sets a tenant's slot quota: its maximum concurrent jobs and its
  /// weight in the lane-share split. 0 makes the tenant inadmissible
  /// (every AdmitJob is rejected) until raised again; unconfigured
  /// tenants default to `total_slots` (effectively unconstrained).
  void SetTenantSlots(const std::string& tenant, int slots)
      SHADOOP_EXCLUDES(mu_);
  int TenantSlots(const std::string& tenant) const SHADOOP_EXCLUDES(mu_);

  /// The tenant's current deterministic lane share (see
  /// ComputeLaneShares). A tenant unknown to the controller gets the
  /// share it would receive if admitted now.
  int LaneShare(const std::string& tenant) const SHADOOP_EXCLUDES(mu_);

  /// Blocks until the tenant has a free job slot (FIFO within the
  /// tenant), then returns the job's ticket. Fails immediately with
  /// ResourceExhausted when the tenant's quota is zero. The caller must
  /// pass the finished job's simulated cost to ReleaseJob exactly once.
  Result<std::unique_ptr<JobTicket>> AdmitJob(const std::string& tenant)
      SHADOOP_EXCLUDES(mu_);

  /// Releases the job's slot, charges `sim_cost_ms` to the tenant's
  /// simulated lane ledger, and wakes queued jobs.
  void ReleaseJob(JobTicket* ticket, double sim_cost_ms)
      SHADOOP_EXCLUDES(mu_);

  TenantStats StatsFor(const std::string& tenant) const
      SHADOOP_EXCLUDES(mu_);

  /// Jobs of `tenant` currently waiting in AdmitJob (for tests and
  /// cross-thread synchronization).
  int QueuedJobs(const std::string& tenant) const SHADOOP_EXCLUDES(mu_);
  /// Jobs of `tenant` currently admitted and not yet released.
  int RunningJobs(const std::string& tenant) const SHADOOP_EXCLUDES(mu_);

  const AdmissionOptions& options() const { return options_; }

  /// Deterministic weighted max-min split of `total` lanes among the
  /// given tenants (weight 0 tenants are excluded). Largest-remainder
  /// rounding; ties and leftover lanes go to tenants in seeded-hash
  /// order, and every weighted tenant keeps at least one lane while
  /// lanes remain. Exposed for tests.
  static std::map<std::string, int> ComputeLaneShares(
      int total, const std::map<std::string, int>& weights, uint64_t seed);

 private:
  struct Tenant {
    int slots = -1;  // -1 = unconfigured (defaults to total_slots).
    int running_jobs = 0;
    int waiting_jobs = 0;
    uint64_t next_seq = 0;    // Next FIFO ticket to hand out.
    uint64_t admit_seq = 0;   // Next FIFO ticket allowed to admit.
    int lanes_in_use = 0;     // Attempts currently holding a lane.
    std::vector<double> sim_lanes;  // Simulated lane finish times.
    TenantStats stats;
  };

  int QuotaOf(const Tenant& tenant) const {
    return tenant.slots < 0 ? options_.total_slots : tenant.slots;
  }
  /// Lane shares over every known nonzero-quota tenant, under mu_.
  std::map<std::string, int> CurrentLaneSharesLocked() const
      SHADOOP_REQUIRES(mu_);

  AdmissionOptions options_;
  mutable Mutex mu_;
  std::condition_variable admit_cv_;
  std::map<std::string, Tenant> tenants_ SHADOOP_GUARDED_BY(mu_);
};

}  // namespace shadoop::mapreduce

#endif  // SHADOOP_MAPREDUCE_ADMISSION_CONTROLLER_H_
