#ifndef SHADOOP_MAPREDUCE_THREAD_POOL_H_
#define SHADOOP_MAPREDUCE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace shadoop::mapreduce {

/// Persistent worker pool behind the job runner's ParallelFor. Workers
/// are started once (lazily, on first use) and reused across every phase
/// of every job, replacing the per-phase std::thread spawn/join cycle.
///
/// ParallelFor(n, max_parallelism, fn) runs fn(0..n-1) with the calling
/// thread participating, so the pool can never deadlock the caller: even
/// with zero workers every index still executes. Indices are claimed from
/// a shared atomic counter, which preserves the old ParallelFor's
/// semantics — the assignment of indices to threads is scheduling
/// dependent, and nothing downstream may depend on it (the runner keeps
/// all accounting in per-index slots, so JobCost is deterministic either
/// way).
class ThreadPool {
 public:
  /// The process-wide shared pool, created on first use with
  /// hardware_concurrency - 1 workers (the caller supplies the last lane).
  static ThreadPool& Shared();

  explicit ThreadPool(int num_workers);
  ~ThreadPool() SHADOOP_EXCLUDES(mu_);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs fn(i) for every i in [0, n), using at most `max_parallelism`
  /// threads (including the caller). Blocks until every index completed.
  /// Calls from a pool worker (or while another ParallelFor holds the
  /// pool) degrade to serial execution on the caller — correct, just not
  /// parallel — so nesting cannot deadlock.
  void ParallelFor(size_t n, int max_parallelism,
                   const std::function<void(size_t)>& fn)
      SHADOOP_EXCLUDES(mu_, run_mu_);

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  /// One ParallelFor invocation. Workers and the caller claim indices
  /// from `next`; the last finisher signals `done_cv`. All progress state
  /// is atomic, so `done_mu` guards nothing — it only orders the final
  /// notify against the waiter's predicate check.
  struct Batch {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next{0};
    std::atomic<size_t> completed{0};
    std::atomic<int> extra_workers{0};  // Worker slots still available.
    Mutex done_mu;
    std::condition_variable done_cv;
  };

  void WorkerLoop();
  static void RunBatch(Batch& batch);

  Mutex mu_;
  std::condition_variable wake_cv_;
  std::shared_ptr<Batch> current_ SHADOOP_GUARDED_BY(mu_);
  uint64_t batch_generation_ SHADOOP_GUARDED_BY(mu_) = 0;
  bool stopping_ SHADOOP_GUARDED_BY(mu_) = false;
  Mutex run_mu_;  // Serializes ParallelFor callers.
  std::vector<std::thread> workers_;
};

}  // namespace shadoop::mapreduce

#endif  // SHADOOP_MAPREDUCE_THREAD_POOL_H_
