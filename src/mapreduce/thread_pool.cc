#include "mapreduce/thread_pool.h"

#include <algorithm>

namespace shadoop::mapreduce {
namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      std::max(0, static_cast<int>(std::thread::hardware_concurrency()) - 1));
  return pool;
}

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(0, num_workers)));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunBatch(Batch& batch) {
  for (;;) {
    const size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    (*batch.fn)(i);
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.n) {
      std::lock_guard<std::mutex> lock(batch.done_mu);
      batch.done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_cv_.wait(lock, [&]() {
        return stopping_ || (current_ != nullptr &&
                             batch_generation_ != seen_generation);
      });
      if (stopping_) return;
      seen_generation = batch_generation_;
      batch = current_;
    }
    if (batch->extra_workers.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
      batch->extra_workers.fetch_add(1, std::memory_order_relaxed);
      continue;  // Parallelism cap reached; wait for the next batch.
    }
    RunBatch(*batch);
  }
}

void ThreadPool::ParallelFor(size_t n, int max_parallelism,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const int parallelism = static_cast<int>(std::min<size_t>(
      n, static_cast<size_t>(std::max(
             1, std::min(max_parallelism,
                         num_workers() + 1)))));
  std::unique_lock<std::mutex> run_lock(run_mu_, std::defer_lock);
  if (parallelism <= 1 || t_in_pool_worker || !run_lock.try_lock()) {
    // Serial fallback: single lane requested, nested call from a worker,
    // or another caller already owns the pool.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  batch->extra_workers.store(parallelism - 1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = batch;
    ++batch_generation_;
  }
  wake_cv_.notify_all();

  RunBatch(*batch);  // The caller is one of the lanes.

  {
    std::unique_lock<std::mutex> lock(batch->done_mu);
    batch->done_cv.wait(lock, [&]() {
      return batch->completed.load(std::memory_order_acquire) == batch->n;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_ == batch) current_ = nullptr;
  }
}

}  // namespace shadoop::mapreduce
