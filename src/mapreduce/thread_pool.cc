#include "mapreduce/thread_pool.h"

#include <algorithm>

namespace shadoop::mapreduce {
namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(
      std::max(0, static_cast<int>(std::thread::hardware_concurrency()) - 1));
  return pool;
}

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(static_cast<size_t>(std::max(0, num_workers)));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunBatch(Batch& batch) {
  for (;;) {
    const size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    (*batch.fn)(i);
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.n) {
      MutexLock lock(&batch.done_mu);
      batch.done_cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      // An explicit wait loop (not a predicate lambda): the analysis sees
      // mu_ held across every access to the guarded members, which a
      // lambda body would hide from it.
      MutexLock lock(&mu_);
      while (!stopping_ && (current_ == nullptr ||
                            batch_generation_ == seen_generation)) {
        wake_cv_.wait(lock.native());
      }
      if (stopping_) return;
      seen_generation = batch_generation_;
      batch = current_;
    }
    if (batch->extra_workers.fetch_sub(1, std::memory_order_acq_rel) <= 0) {
      batch->extra_workers.fetch_add(1, std::memory_order_relaxed);
      continue;  // Parallelism cap reached; wait for the next batch.
    }
    RunBatch(*batch);
  }
}

void ThreadPool::ParallelFor(size_t n, int max_parallelism,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const int parallelism = static_cast<int>(std::min<size_t>(
      n, static_cast<size_t>(std::max(
             1, std::min(max_parallelism,
                         num_workers() + 1)))));
  if (parallelism <= 1 || t_in_pool_worker) {
    // Serial fallback: single lane requested or nested call from a worker.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (!run_mu_.TryLock()) {
    // Another caller already owns the pool; run serially rather than wait.
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // run_mu_ is held manually (not RAII) so the try-acquire stays visible
  // to the thread-safety analysis; released on the single exit below.

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  batch->extra_workers.store(parallelism - 1, std::memory_order_relaxed);
  {
    MutexLock lock(&mu_);
    current_ = batch;
    ++batch_generation_;
  }
  wake_cv_.notify_all();

  RunBatch(*batch);  // The caller is one of the lanes.

  {
    MutexLock lock(&batch->done_mu);
    while (batch->completed.load(std::memory_order_acquire) != batch->n) {
      batch->done_cv.wait(lock.native());
    }
  }
  {
    MutexLock lock(&mu_);
    if (current_ == batch) current_ = nullptr;
  }
  run_mu_.Unlock();
}

}  // namespace shadoop::mapreduce
