#ifndef SHADOOP_MAPREDUCE_CLUSTER_H_
#define SHADOOP_MAPREDUCE_CLUSTER_H_

#include <cstdint>
#include <vector>

namespace shadoop::mapreduce {

/// Parameters of the simulated cluster's deterministic cost model. The
/// defaults approximate the Hadoop-era commodity cluster of the paper:
/// 25 nodes, ~100 MB/s disks, shared 1 Gb/s network, multi-second job
/// startup (JVM spin-up, scheduling) and sub-second task startup.
struct ClusterConfig {
  /// Parallel task slots; the makespan model assigns tasks greedily to the
  /// least-loaded slot.
  int num_slots = 25;

  /// Sequential scan rate of one node's disk, bytes per millisecond.
  double disk_bytes_per_ms = 100.0 * 1024;  // 100 MB/s

  /// Aggregate shuffle bandwidth, bytes per millisecond (shared medium:
  /// shuffle time is total shuffled bytes / this).
  double net_bytes_per_ms = 125.0 * 1024;  // 1 Gb/s

  /// Fixed per-job overhead (job setup, scheduling, cleanup).
  double job_startup_ms = 5000.0;

  /// Fixed per-task overhead (task launch).
  double task_startup_ms = 200.0;

  /// CPU throughput used to convert charged operations into time.
  double cpu_ops_per_ms = 1.0e6;

  /// Operations charged automatically for every record that passes
  /// through a map or reduce function (parse + function call).
  double ops_per_record = 2000.0;

  /// Simulated wait before relaunching a failed task attempt; doubles per
  /// consecutive failure of the same task (exponential backoff).
  double retry_backoff_ms = 1000.0;

  /// Speculative execution: when an attempt straggles past
  /// `speculative_slack_ms` of simulated delay, a backup attempt is
  /// launched and whichever attempt commits first wins.
  bool speculative_execution = true;
  double speculative_slack_ms = 5000.0;
};

/// Greedy list-scheduling makespan: assigns task costs in order to the
/// least-loaded of `num_slots` machines and returns the maximum load.
/// Deterministic for a deterministic task order.
double Makespan(const std::vector<double>& task_costs_ms, int num_slots);

}  // namespace shadoop::mapreduce

#endif  // SHADOOP_MAPREDUCE_CLUSTER_H_
