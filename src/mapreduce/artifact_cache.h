#ifndef SHADOOP_MAPREDUCE_ARTIFACT_CACHE_H_
#define SHADOOP_MAPREDUCE_ARTIFACT_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"

namespace shadoop::mapreduce {

/// Process-wide cache of immutable artifacts derived from a block's bytes
/// — decoded local-index headers, parsed geometry columns, packed local
/// R-trees — shared across the map tasks of every job a runner executes.
///
/// Keys embed the HDFS BlockId, which is globally unique and never
/// reused (Replace/Append allocate fresh ids), so a hit can only return
/// an artifact built from exactly the bytes the task would have parsed.
/// Values are type-erased shared_ptrs: the caller that built the
/// artifact knows its concrete type, and entries own their data (no
/// views into block payloads), so the cache never pins block bytes.
///
/// The cache is strictly a wall-clock optimization: consumers must
/// charge the simulated cost model identically on hit and miss, and the
/// runner disables it entirely while any fault injector is active so
/// injected corruption or failover is never masked by a pre-fault
/// artifact.
class ArtifactCache {
 public:
  using Ptr = std::shared_ptr<const void>;

  explicit ArtifactCache(size_t capacity = 4096) : capacity_(capacity) {}

  /// The cached artifact for `key`, or nullptr. Counts one hit or miss;
  /// the counters are diagnostics only (surfaced through Pigeon EXPLAIN)
  /// and never feed the simulated cost model, which stays identical on
  /// hit and miss.
  Ptr Lookup(const std::string& key) const SHADOOP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const auto it = map_.find(key);
    // Point lookup — no order observed.
    if (it == map_.end()) {  // lint:allow(unordered-iteration)
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Inserts `value` if `key` is absent and returns the resident value —
  /// the first inserter wins, so concurrent builders of the same block's
  /// artifact converge on one instance. Build artifacts *outside* any
  /// call into the cache; insertion itself is O(1) under the lock.
  Ptr Insert(const std::string& key, Ptr value) SHADOOP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const auto [it, inserted] = map_.emplace(key, std::move(value));
    Ptr resident = it->second;  // Taken before eviction can touch `it`.
    if (inserted) {
      fifo_.push_back(key);
      while (fifo_.size() > capacity_) {
        map_.erase(fifo_.front());
        fifo_.pop_front();
      }
    }
    return resident;
  }

  size_t size() const SHADOOP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return map_.size();
  }

  /// Lifetime Lookup() outcomes for this cache instance. Deterministic
  /// for a deterministic job sequence: each runner owns its cache, and
  /// a task performs the same lookups regardless of thread interleaving.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::unordered_map<std::string, Ptr> map_ SHADOOP_GUARDED_BY(mu_);
  std::deque<std::string> fifo_ SHADOOP_GUARDED_BY(mu_);
};

}  // namespace shadoop::mapreduce

#endif  // SHADOOP_MAPREDUCE_ARTIFACT_CACHE_H_
