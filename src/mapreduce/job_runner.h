#ifndef SHADOOP_MAPREDUCE_JOB_RUNNER_H_
#define SHADOOP_MAPREDUCE_JOB_RUNNER_H_

#include <string>

#include "hdfs/file_system.h"
#include "mapreduce/admission_controller.h"
#include "mapreduce/artifact_cache.h"
#include "mapreduce/cluster.h"
#include "mapreduce/job.h"

namespace shadoop::mapreduce {

/// Executes MapReduce jobs against a simulated HDFS instance.
///
/// Execution is *real* (map and reduce functions run on a thread pool and
/// produce real output) while time is *modeled*: JobResult::cost carries
/// the deterministic simulated cluster time derived from bytes moved,
/// records processed, task counts and the ClusterConfig — this is the
/// metric the benchmark suite reports, because it is machine-independent
/// and reproduces the paper's cost structure (job startup, scan, shuffle).
///
/// Failed task attempts (I/O errors on dead datanodes, injected faults)
/// are retried with exponential backoff up to JobConfig::max_task_attempts
/// before failing the job; stragglers are speculatively re-executed. See
/// TaskScheduler and DESIGN.md §9.
class JobRunner {
 public:
  JobRunner(hdfs::FileSystem* fs, ClusterConfig cluster = ClusterConfig())
      : fs_(fs), cluster_(cluster) {}

  const ClusterConfig& cluster() const { return cluster_; }
  hdfs::FileSystem* file_system() const { return fs_; }

  /// Installs the deterministic fault source used by every subsequent
  /// Run() (unless the job overrides it via JobConfig::fault_source).
  /// Not owned; null (the default) disables task-fault injection.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_ = injector;
  }
  fault::FaultInjector* fault_injector() const { return fault_injector_; }

  /// Binds this runner's session to an admission controller and tenant:
  /// every subsequent Run() is admitted under the tenant's quotas (jobs
  /// queue FIFO-per-tenant, task lanes shrink to the tenant's share, and
  /// speculation respects it — DESIGN.md §10). Neither is owned; a null
  /// controller (the default) disables admission entirely and keeps the
  /// runtime byte-identical to the pre-admission behavior.
  void set_admission(AdmissionController* controller, std::string tenant) {
    admission_ = controller;
    tenant_ = std::move(tenant);
  }
  AdmissionController* admission_controller() const { return admission_; }
  const std::string& tenant() const { return tenant_; }

  /// Session-level override of JobConfig::max_task_attempts (the Pigeon
  /// `SET max_task_attempts` knob); 0 (the default) keeps each job's own
  /// setting.
  void set_max_task_attempts_override(int attempts) {
    max_task_attempts_override_ = attempts;
  }
  int max_task_attempts_override() const {
    return max_task_attempts_override_;
  }

  /// Runs the job to completion. Never throws; failures are reported in
  /// JobResult::status. With an admission controller bound, blocks until
  /// the session's tenant has a free job slot first, and fails without
  /// running when the tenant's quota is zero.
  JobResult Run(const JobConfig& job);

  /// The runner's per-block artifact cache, handed to map tasks through
  /// MapContext::artifact_cache() — except while any fault injector is
  /// active, when tasks see null so injected faults are never masked.
  ArtifactCache* artifact_cache() { return &artifact_cache_; }

 private:
  /// The admitted run: `lanes` caps task parallelism (real threads and
  /// the simulated makespan alike) and `gate` brackets every attempt.
  JobResult RunAdmitted(const JobConfig& job, int lanes, AttemptGate* gate);

  hdfs::FileSystem* fs_;
  ClusterConfig cluster_;
  ArtifactCache artifact_cache_;
  fault::FaultInjector* fault_injector_ = nullptr;
  AdmissionController* admission_ = nullptr;
  std::string tenant_ = "default";
  int max_task_attempts_override_ = 0;
};

/// Builds one split per block of `path`, with empty metadata — the
/// default, non-spatial splitter of plain Hadoop.
Result<std::vector<InputSplit>> MakeBlockSplits(const hdfs::FileSystem& fs,
                                                const std::string& path);

/// The default partitioner: FNV-1a hash of the key modulo num_reducers.
int HashPartition(std::string_view key, int num_reducers);

}  // namespace shadoop::mapreduce

#endif  // SHADOOP_MAPREDUCE_JOB_RUNNER_H_
