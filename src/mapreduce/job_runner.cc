#include "mapreduce/job_runner.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <unordered_map>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "fault/fault_injector.h"
#include "hdfs/block_arena.h"
#include "mapreduce/task_scheduler.h"
#include "mapreduce/thread_pool.h"

namespace shadoop::mapreduce {
namespace {

/// Per-task accounting shared by both context implementations.
struct TaskAccounting {
  Counters counters;
  uint64_t charged_cpu_ops = 0;
  uint64_t records_processed = 0;
  Status status;  // First failure reported by user code.
};

/// One emitted pair, stored as offsets into the owning task's shuffle
/// buffer instead of a pair of owned strings: the key bytes start at
/// `offset`, the value bytes follow immediately.
struct EmitSlice {
  uint64_t offset = 0;
  uint32_t key_len = 0;
  uint32_t value_len = 0;
};

class MapContextImpl : public MapContext {
 public:
  MapContextImpl(const InputSplit& split, int num_reducers)
      : split_(split), emitted_(std::max(1, num_reducers)) {}

  void Emit(std::string_view key, std::string_view value) override {
    const int bucket =
        partition_ ? partition_(key, static_cast<int>(emitted_.size()))
                   : HashPartition(key, static_cast<int>(emitted_.size()));
    emitted_bytes_ += key.size() + value.size();
    const uint64_t offset = buffer_.size();
    buffer_.append(key);
    buffer_.append(value);
    emitted_[bucket].push_back({offset, static_cast<uint32_t>(key.size()),
                                static_cast<uint32_t>(value.size())});
  }

  void WriteOutput(std::string_view line) override {
    output_bytes_ += line.size() + 1;
    output_.emplace_back(line);
  }

  void ChargeCpu(uint64_t ops) override { acct_.charged_cpu_ops += ops; }

  Counters& counters() override { return acct_.counters; }
  const InputSplit& split() const override { return split_; }
  void Fail(Status status) override {
    if (acct_.status.ok()) acct_.status = std::move(status);
  }

  void set_partitioner(const Partitioner& p) { partition_ = p; }

  ArtifactCache* artifact_cache() override { return cache_; }
  uint64_t block_cache_id(size_t ordinal) const override {
    return ordinal < block_ids_.size() ? block_ids_[ordinal] : 0;
  }
  void set_artifact_cache(ArtifactCache* cache,
                          std::vector<uint64_t> block_ids) {
    cache_ = cache;
    block_ids_ = std::move(block_ids);
  }

  std::string_view KeyOf(const EmitSlice& s) const {
    return std::string_view(buffer_).substr(s.offset, s.key_len);
  }
  std::string_view ValueOf(const EmitSlice& s) const {
    return std::string_view(buffer_).substr(s.offset + s.key_len, s.value_len);
  }

  const InputSplit& split_;
  Partitioner partition_;
  ArtifactCache* cache_ = nullptr;
  std::vector<uint64_t> block_ids_;  // Per split ordinal; 0 = unknown.
  std::string buffer_;  // Backing bytes of every emitted pair.
  std::vector<std::vector<EmitSlice>> emitted_;  // One bucket per reducer.
  std::vector<std::string> output_;              // Map-side final output.
  uint64_t emitted_bytes_ = 0;
  uint64_t output_bytes_ = 0;
  uint64_t bytes_read_ = 0;
  TaskAccounting acct_;
};

class ReduceContextImpl : public ReduceContext {
 public:
  void Write(std::string line) override {
    output_bytes_ += line.size() + 1;
    output_.push_back(std::move(line));
  }
  void ChargeCpu(uint64_t ops) override { acct_.charged_cpu_ops += ops; }
  Counters& counters() override { return acct_.counters; }
  void Fail(Status status) override {
    if (acct_.status.ok()) acct_.status = std::move(status);
  }

  std::vector<std::string> output_;
  uint64_t output_bytes_ = 0;
  TaskAccounting acct_;
};

/// Combiner context: Write() re-emits the line under the current group
/// key instead of producing final output.
class CombineContextImpl : public ReduceContext {
 public:
  explicit CombineContextImpl(TaskAccounting* acct) : acct_(acct) {}

  void Write(std::string line) override {
    combined_.push_back({current_key_, std::move(line)});
  }
  void ChargeCpu(uint64_t ops) override { acct_->charged_cpu_ops += ops; }
  Counters& counters() override { return acct_->counters; }
  void Fail(Status status) override {
    if (acct_->status.ok()) acct_->status = std::move(status);
  }

  std::string current_key_;
  std::vector<KeyValue> combined_;
  TaskAccounting* acct_;
};

/// Reference to one shuffled pair: points into the emitting map task's
/// buffer, which stays alive for the whole job, so the shuffle moves
/// 16-byte references instead of copying key/value strings.
struct ShuffleRef {
  const std::string* buffer = nullptr;
  uint64_t offset = 0;
  uint32_t key_len = 0;
  uint32_t value_len = 0;

  std::string_view key() const {
    return std::string_view(*buffer).substr(offset, key_len);
  }
  std::string_view value() const {
    return std::string_view(*buffer).substr(offset + key_len, value_len);
  }
};

/// Same ordering as the old KeyValue operator<: by key, then value.
bool ShuffleRefLess(const ShuffleRef& a, const ShuffleRef& b) {
  const std::string_view ka = a.key();
  const std::string_view kb = b.key();
  if (ka != kb) return ka < kb;
  return a.value() < b.value();
}

/// Runs `fn(i)` for i in [0, n) on up to `max_threads` threads, via the
/// shared persistent pool.
void ParallelFor(size_t n, int max_threads,
                 const std::function<void(size_t)>& fn) {
  ThreadPool::Shared().ParallelFor(n, max_threads, fn);
}

/// Groups a key-sorted run of pairs and invokes the reducer per group.
/// Values are materialized here, at the reduce boundary — the only place
/// the public Reducer API still requires owned strings.
void ReduceSortedRun(const std::vector<ShuffleRef>& pairs, Reducer& reducer,
                     ReduceContext& ctx) {
  size_t i = 0;
  while (i < pairs.size()) {
    size_t j = i;
    const std::string_view group_key = pairs[i].key();
    std::vector<std::string> values;
    while (j < pairs.size() && pairs[j].key() == group_key) {
      values.emplace_back(pairs[j].value());
      ++j;
    }
    const std::string key(group_key);
    reducer.Reduce(key, values, ctx);
    i = j;
  }
  reducer.Finish(ctx);
}

double CpuMs(const ClusterConfig& cfg, const TaskAccounting& acct) {
  const double ops = static_cast<double>(acct.charged_cpu_ops) +
                     static_cast<double>(acct.records_processed) *
                         cfg.ops_per_record;
  return ops / cfg.cpu_ops_per_ms;
}

TaskSchedulerOptions SchedulerOptions(const JobConfig& job,
                                      const ClusterConfig& cluster,
                                      fault::TaskKind kind,
                                      int max_attempts_override,
                                      AttemptGate* gate) {
  TaskSchedulerOptions options;
  options.job_name = job.name;
  options.kind = kind;
  options.max_task_attempts = max_attempts_override > 0
                                  ? max_attempts_override
                                  : job.max_task_attempts;
  options.task_startup_ms = cluster.task_startup_ms;
  options.retry_backoff_ms = cluster.retry_backoff_ms;
  options.speculative_execution = cluster.speculative_execution;
  options.speculative_slack_ms = cluster.speculative_slack_ms;
  options.gate = gate;
  return options;
}

}  // namespace

int HashPartition(std::string_view key, int num_reducers) {
  uint64_t hash = 14695981039346656037ULL;
  for (char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return static_cast<int>(hash % static_cast<uint64_t>(
                                     std::max(1, num_reducers)));
}

Result<std::vector<InputSplit>> MakeBlockSplits(const hdfs::FileSystem& fs,
                                                const std::string& path) {
  SHADOOP_ASSIGN_OR_RETURN(hdfs::FileMeta meta, fs.GetFileMeta(path));
  std::vector<InputSplit> splits;
  splits.reserve(meta.blocks.size());
  for (size_t i = 0; i < meta.blocks.size(); ++i) {
    InputSplit split;
    split.blocks.push_back({path, i});
    split.estimated_bytes = meta.blocks[i].num_bytes;
    split.estimated_records = meta.blocks[i].num_records;
    splits.push_back(std::move(split));
  }
  return splits;
}

JobResult JobRunner::Run(const JobConfig& job) {
  if (admission_ == nullptr) {
    return RunAdmitted(job, cluster_.num_slots, /*gate=*/nullptr);
  }
  // Admission gate: blocks until the session's tenant has a free job
  // slot (FIFO within the tenant; other tenants' queues are independent)
  // and pins the tenant's deterministic lane share for the whole run.
  auto admit = admission_->AdmitJob(tenant_);
  if (!admit.ok()) {
    JobResult result;
    result.status = admit.status();
    return result;
  }
  std::unique_ptr<AdmissionController::JobTicket> ticket =
      std::move(admit).value();
  const int lanes =
      std::max(1, std::min(cluster_.num_slots, ticket->lane_share()));
  JobResult result = RunAdmitted(job, lanes, ticket.get());

  // Admission accounting rides on the result the same way the fault
  // counters do: JobCost fields always, Counters entries only when
  // nonzero, so un-contended runs stay byte-identical.
  result.cost.admission_wait_ms = ticket->sim_wait_ms();
  result.cost.admission_queued = ticket->sim_wait_ms() > 0 ? 1 : 0;
  result.cost.admission_preempted_specs = ticket->preempted_specs();
  if (result.cost.admission_queued > 0) {
    result.counters.Increment("admission.queued",
                              result.cost.admission_queued);
  }
  if (result.cost.admission_wait_ms > 0) {
    result.counters.Increment(
        "admission.wait_ms",
        static_cast<int64_t>(result.cost.admission_wait_ms + 0.5));
  }
  if (result.cost.admission_preempted_specs > 0) {
    result.counters.Increment("admission.preempted_specs",
                              result.cost.admission_preempted_specs);
  }
  // Release even for failed jobs: a job that aborted mid-phase still
  // held its slot (an aborted job's total_ms is 0, so it adds no
  // simulated backlog to the tenant's ledger).
  admission_->ReleaseJob(ticket.get(), result.cost.total_ms);
  return result;
}

JobResult JobRunner::RunAdmitted(const JobConfig& job, int lanes,
                                 AttemptGate* gate) {
  Stopwatch wall;
  JobResult result;
  result.cost.num_map_tasks = static_cast<int>(job.splits.size());
  const bool has_reduce = static_cast<bool>(job.reducer);
  const int num_reducers = has_reduce ? std::max(1, job.num_reducers) : 1;
  result.cost.num_reduce_tasks = has_reduce ? num_reducers : 0;

  if (!job.mapper) {
    result.status = Status::InvalidArgument("job '" + job.name +
                                            "' has no mapper");
    return result;
  }

  fault::FaultInjector* injector =
      job.fault_source != nullptr ? job.fault_source : fault_injector_;

  // Read-fault counters are owned by the file system's injector; the
  // job's share is the delta across the run.
  fault::FaultInjector* fs_injector = fs_->fault_injector();
  const uint64_t failovers_before =
      fs_injector != nullptr ? fs_injector->replica_failovers() : 0;

  // ------------------------------------------------------------------
  // Map phase: each task runs as a sequence of attempts under the task
  // scheduler. Every attempt builds a fresh, private context in its lane
  // slot; only the committed attempt's context is published to
  // `map_ctxs`, so a retried or speculative attempt can never double-emit
  // (commit-once, DESIGN.md §9).
  const size_t num_maps = job.splits.size();
  std::vector<std::unique_ptr<MapContextImpl>> map_ctxs(num_maps);
  std::vector<std::array<std::unique_ptr<MapContextImpl>, 2>> map_slots(
      num_maps);

  // Artifact caching is offered only on fully fault-free runs: any active
  // injector (scheduler faults, legacy per-call hook, or HDFS read
  // faults) could otherwise be masked by an artifact parsed before the
  // fault fired. Block ids are resolved once per job from the namenode.
  const bool cache_enabled = injector == nullptr && fs_injector == nullptr &&
                             !job.fault_injector;
  std::vector<std::vector<uint64_t>> split_block_ids;
  if (cache_enabled) {
    split_block_ids.resize(num_maps);
    std::unordered_map<std::string, hdfs::FileMeta> metas;
    for (size_t i = 0; i < num_maps; ++i) {
      for (const BlockRef& block : job.splits[i].blocks) {
        auto it = metas.find(block.path);
        // Point lookup — no order observed.
        if (it == metas.end()) {  // lint:allow(unordered-iteration)
          auto meta = fs_->GetFileMeta(block.path);
          it = metas.emplace(
                        block.path,
                        meta.ok() ? std::move(meta).value() : hdfs::FileMeta())
                   .first;
        }
        const hdfs::FileMeta& meta = it->second;
        split_block_ids[i].push_back(
            block.block_index < meta.blocks.size()
                ? meta.blocks[block.block_index].id
                : 0);
      }
    }
  }

  TaskScheduler map_sched(
      SchedulerOptions(job, cluster_, fault::TaskKind::kMap,
                       max_task_attempts_override_, gate),
      injector);
  map_sched.RunTasks(
      num_maps, lanes,
      [&](size_t i, const AttemptInfo& info, int slot,
          const std::atomic<bool>& cancelled) -> AttemptOutcome {
        const InputSplit& split = job.splits[i];
        // Legacy per-call fault hook (tests): fail before doing any work.
        if (job.fault_injector &&
            job.fault_injector(static_cast<int>(i), info.id)) {
          return {Status::IoError("injected fault in map task " +
                                  std::to_string(i)),
                  /*transient=*/true};
        }
        auto ctx = std::make_unique<MapContextImpl>(split, num_reducers);
        ctx->set_partitioner(job.partitioner);
        if (cache_enabled) {
          ctx->set_artifact_cache(&artifact_cache_, split_block_ids[i]);
        }
        std::unique_ptr<Mapper> mapper = job.mapper();
        mapper->BeginSplit(*ctx);
        // The arena pins every block of the attempt, so record views stay
        // valid across the whole split — through EndSplit() — without any
        // per-record copies.
        hdfs::BlockArena arena;
        uint64_t bytes = 0;
        for (size_t ordinal = 0; ordinal < split.blocks.size(); ++ordinal) {
          if (cancelled.load(std::memory_order_acquire)) {
            return {Status::Cancelled("map attempt killed by rival commit"),
                    /*transient=*/true};
          }
          const BlockRef& block = split.blocks[ordinal];
          auto payload = fs_->ReadBlockRaw(block.path, block.block_index);
          if (!payload.ok()) {
            // Transient: a replica may still be alive on retry.
            return {payload.status(), /*transient=*/true};
          }
          mapper->BeginBlock(ordinal, *ctx);
          for (std::string_view record :
               arena.AddBlock(std::move(payload).value())) {
            bytes += record.size() + 1;
            ++ctx->acct_.records_processed;
            mapper->Map(record, *ctx);
            if (!ctx->acct_.status.ok()) break;
          }
          if (!ctx->acct_.status.ok()) break;
        }
        if (ctx->acct_.status.ok()) mapper->EndSplit(*ctx);
        if (!ctx->acct_.status.ok()) {
          // User-code failure: deterministic, retrying would repeat it.
          return {ctx->acct_.status, /*transient=*/false};
        }
        ctx->bytes_read_ = bytes;
        map_slots[i][slot] = std::move(ctx);
        return {};
      },
      [&](size_t i, int slot) {
        map_ctxs[i] = std::move(map_slots[i][slot]);
      });
  map_slots.clear();  // Discard losing attempts' partial output.

  TaskScheduler reduce_sched(
      SchedulerOptions(job, cluster_, fault::TaskKind::kReduce,
                       max_task_attempts_override_, gate),
      injector);

  auto finish_fault_accounting = [&] {
    result.cost.task_retries =
        map_sched.task_retries() + reduce_sched.task_retries();
    result.cost.speculative_launched =
        map_sched.speculative_launched() + reduce_sched.speculative_launched();
    result.cost.speculative_won =
        map_sched.speculative_won() + reduce_sched.speculative_won();
    if (fs_injector != nullptr) {
      result.cost.replica_failovers = static_cast<int64_t>(
          fs_injector->replica_failovers() - failovers_before);
    }
    // Counters appear only when nonzero, so fault-free runs (and the
    // golden parity suite) serialize byte-identically to the pre-fault
    // runtime.
    if (result.cost.task_retries > 0) {
      result.counters.Increment("fault.task_retries",
                                result.cost.task_retries);
    }
    if (result.cost.speculative_launched > 0) {
      result.counters.Increment("fault.speculative_launched",
                                result.cost.speculative_launched);
    }
    if (result.cost.speculative_won > 0) {
      result.counters.Increment("fault.speculative_won",
                                result.cost.speculative_won);
    }
    if (result.cost.replica_failovers > 0) {
      result.counters.Increment("fault.replica_failovers",
                                result.cost.replica_failovers);
    }
  };

  if (!map_sched.ok()) {
    finish_fault_accounting();
    result.status = map_sched.MakeStatus();
    result.wall_ms = wall.ElapsedMillis();
    return result;
  }

  // Optional combiner: per map task, sort + group + combine in place,
  // then rebuild the task's shuffle buffer from the combined pairs.
  if (job.combiner) {
    ParallelFor(num_maps, lanes, [&](size_t i) {
      MapContextImpl& ctx = *map_ctxs[i];
      std::unique_ptr<Reducer> combiner = job.combiner();
      uint64_t new_bytes = 0;
      std::string new_buffer;
      for (auto& bucket : ctx.emitted_) {
        std::sort(bucket.begin(), bucket.end(),
                  [&ctx](const EmitSlice& a, const EmitSlice& b) {
                    const std::string_view ka = ctx.KeyOf(a);
                    const std::string_view kb = ctx.KeyOf(b);
                    if (ka != kb) return ka < kb;
                    return ctx.ValueOf(a) < ctx.ValueOf(b);
                  });
        CombineContextImpl cc(&ctx.acct_);
        size_t p = 0;
        while (p < bucket.size()) {
          size_t q = p;
          const std::string_view group_key = ctx.KeyOf(bucket[p]);
          std::vector<std::string> values;
          while (q < bucket.size() && ctx.KeyOf(bucket[q]) == group_key) {
            values.emplace_back(ctx.ValueOf(bucket[q]));
            ++q;
          }
          cc.current_key_ = std::string(group_key);
          ctx.acct_.records_processed += values.size();
          combiner->Reduce(cc.current_key_, values, cc);
          p = q;
        }
        std::vector<EmitSlice> rebuilt;
        rebuilt.reserve(cc.combined_.size());
        for (const KeyValue& kv : cc.combined_) {
          const uint64_t offset = new_buffer.size();
          new_buffer.append(kv.key);
          new_buffer.append(kv.value);
          rebuilt.push_back({offset, static_cast<uint32_t>(kv.key.size()),
                             static_cast<uint32_t>(kv.value.size())});
          new_bytes += kv.key.size() + kv.value.size();
        }
        bucket = std::move(rebuilt);
      }
      ctx.buffer_ = std::move(new_buffer);
      ctx.emitted_bytes_ = new_bytes;
    });
  }

  // ------------------------------------------------------------------
  // Shuffle: route each map task's buckets to reduce task inputs. Only
  // (buffer, offset) references move; the bytes stay in the map tasks'
  // buffers, which outlive the reduce phase.
  std::vector<std::vector<ShuffleRef>> reduce_inputs(num_reducers);
  uint64_t shuffle_bytes = 0;
  for (size_t i = 0; i < num_maps; ++i) {
    MapContextImpl& ctx = *map_ctxs[i];
    shuffle_bytes += ctx.emitted_bytes_;
    for (int r = 0; r < num_reducers; ++r) {
      auto& bucket = ctx.emitted_[r];
      reduce_inputs[r].reserve(reduce_inputs[r].size() + bucket.size());
      for (const EmitSlice& s : bucket) {
        reduce_inputs[r].push_back(
            {&ctx.buffer_, s.offset, s.key_len, s.value_len});
      }
      bucket.clear();
      bucket.shrink_to_fit();
    }
  }

  // Sort each reduce input once, before any attempt runs: concurrent
  // speculative attempts then share the sorted run read-only, so a
  // re-executed reducer sees bit-identical input.
  ParallelFor(static_cast<size_t>(num_reducers), lanes,
              [&](size_t r) {
                std::sort(reduce_inputs[r].begin(), reduce_inputs[r].end(),
                          ShuffleRefLess);
              });

  // ------------------------------------------------------------------
  // Reduce phase, under the same attempt scheduler as the map phase.
  std::vector<std::unique_ptr<ReduceContextImpl>> reduce_ctxs(num_reducers);
  if (has_reduce) {
    std::vector<std::array<std::unique_ptr<ReduceContextImpl>, 2>>
        reduce_slots(num_reducers);
    reduce_sched.RunTasks(
        static_cast<size_t>(num_reducers), lanes,
        [&](size_t r, const AttemptInfo& info, int slot,
            const std::atomic<bool>& cancelled) -> AttemptOutcome {
          (void)info;
          (void)cancelled;
          auto ctx = std::make_unique<ReduceContextImpl>();
          std::unique_ptr<Reducer> reducer = job.reducer();
          ctx->acct_.records_processed += reduce_inputs[r].size();
          ReduceSortedRun(reduce_inputs[r], *reducer, *ctx);
          if (!ctx->acct_.status.ok()) {
            return {ctx->acct_.status, /*transient=*/false};
          }
          reduce_slots[r][slot] = std::move(ctx);
          return {};
        },
        [&](size_t r, int slot) {
          reduce_ctxs[r] = std::move(reduce_slots[r][slot]);
        });
    if (!reduce_sched.ok()) {
      finish_fault_accounting();
      result.status = reduce_sched.MakeStatus();
      result.wall_ms = wall.ElapsedMillis();
      return result;
    }
  } else {
    // Map-only job: emitted pairs (if any) pass through as "key<TAB>value".
    for (int r = 0; r < num_reducers; ++r) {
      reduce_ctxs[r] = std::make_unique<ReduceContextImpl>();
      for (const ShuffleRef& ref : reduce_inputs[r]) {
        reduce_ctxs[r]->Write(ref.key_len == 0
                                  ? std::string(ref.value())
                                  : std::string(ref.key()) + "\t" +
                                        std::string(ref.value()));
      }
    }
  }

  // ------------------------------------------------------------------
  // Assemble output and counters deterministically (task order).
  for (size_t i = 0; i < num_maps; ++i) {
    MapContextImpl& ctx = *map_ctxs[i];
    result.counters.MergeFrom(ctx.acct_.counters);
    for (std::string& line : ctx.output_) {
      result.output.push_back(std::move(line));
    }
  }
  for (std::unique_ptr<ReduceContextImpl>& ctx : reduce_ctxs) {
    result.counters.MergeFrom(ctx->acct_.counters);
    for (std::string& line : ctx->output_) {
      result.output.push_back(std::move(line));
    }
  }
  finish_fault_accounting();

  if (!job.output_path.empty()) {
    Status write_status = fs_->WriteLines(job.output_path, result.output);
    if (!write_status.ok()) {
      result.status = write_status;
      result.wall_ms = wall.ElapsedMillis();
      return result;
    }
  }

  // ------------------------------------------------------------------
  // Deterministic simulated cost. Retries, backoff waits and straggler
  // delays show up as per-task overhead from the scheduler reports —
  // pure functions of the fault policy, independent of real scheduling.
  std::vector<double> map_costs;
  map_costs.reserve(num_maps);
  uint64_t total_read = 0;
  uint64_t map_output_bytes = 0;
  for (size_t i = 0; i < num_maps; ++i) {
    MapContextImpl& ctx = *map_ctxs[i];
    total_read += ctx.bytes_read_;
    map_output_bytes += ctx.output_bytes_;
    const double io_ms =
        static_cast<double>(ctx.bytes_read_) / cluster_.disk_bytes_per_ms +
        static_cast<double>(ctx.emitted_bytes_ + ctx.output_bytes_) /
            cluster_.disk_bytes_per_ms;
    map_costs.push_back(cluster_.task_startup_ms + io_ms +
                        CpuMs(cluster_, ctx.acct_) +
                        map_sched.reports()[i].sim_overhead_ms);
  }

  std::vector<double> reduce_costs;
  uint64_t reduce_output_bytes = 0;
  if (has_reduce) {
    reduce_costs.reserve(num_reducers);
    for (int r = 0; r < num_reducers; ++r) {
      uint64_t in_bytes = 0;
      for (const ShuffleRef& ref : reduce_inputs[r]) {
        in_bytes += ref.key_len + ref.value_len;
      }
      reduce_output_bytes += reduce_ctxs[r]->output_bytes_;
      const double io_ms =
          static_cast<double>(in_bytes + reduce_ctxs[r]->output_bytes_) /
          cluster_.disk_bytes_per_ms;
      reduce_costs.push_back(cluster_.task_startup_ms + io_ms +
                             CpuMs(cluster_, reduce_ctxs[r]->acct_) +
                             reduce_sched.reports()[r].sim_overhead_ms);
    }
  }

  result.cost.bytes_read = total_read;
  result.cost.bytes_shuffled = shuffle_bytes;
  result.cost.bytes_written = map_output_bytes + reduce_output_bytes;
  result.cost.map_makespan_ms = Makespan(map_costs, lanes);
  result.cost.shuffle_ms =
      static_cast<double>(shuffle_bytes) / cluster_.net_bytes_per_ms;
  result.cost.reduce_makespan_ms = Makespan(reduce_costs, lanes);
  result.cost.total_ms = cluster_.job_startup_ms + result.cost.map_makespan_ms +
                         result.cost.shuffle_ms +
                         result.cost.reduce_makespan_ms;
  result.wall_ms = wall.ElapsedMillis();
  result.status = Status::OK();
  return result;
}

}  // namespace shadoop::mapreduce
