#include "mapreduce/admission_controller.h"

#include <algorithm>
#include <limits>

namespace shadoop::mapreduce {
namespace {

/// FNV-1a of (seed, tenant): the seeded tie-break order of the lane
/// split. Stable across platforms, unlike std::hash.
uint64_t TieBreakHash(uint64_t seed, std::string_view tenant) {
  uint64_t hash = 14695981039346656037ULL ^ (seed * 1099511628211ULL);
  for (char c : tenant) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  options_.total_slots = std::max(1, options_.total_slots);
}

std::map<std::string, int> AdmissionController::ComputeLaneShares(
    int total, const std::map<std::string, int>& weights, uint64_t seed) {
  total = std::max(1, total);
  // Tenants in deterministic tie-break order: seeded hash first, name as
  // the final tie-break so equal hashes cannot reorder across runs.
  struct Entry {
    std::string tenant;
    int weight;
    uint64_t hash;
  };
  std::vector<Entry> entries;
  int64_t weight_sum = 0;
  for (const auto& [tenant, weight] : weights) {
    if (weight <= 0) continue;
    entries.push_back({tenant, weight, TieBreakHash(seed, tenant)});
    weight_sum += weight;
  }
  std::map<std::string, int> shares;
  if (entries.empty()) return shares;

  // Largest-remainder apportionment of `total` lanes by weight.
  struct Alloc {
    const Entry* entry;
    int lanes;
    int64_t remainder;  // weight*total - lanes*weight_sum, scaled units.
  };
  std::vector<Alloc> allocs;
  int assigned = 0;
  for (const Entry& e : entries) {
    const int64_t scaled = static_cast<int64_t>(e.weight) * total;
    const int lanes = static_cast<int>(scaled / weight_sum);
    allocs.push_back({&e, lanes, scaled % weight_sum});
    assigned += lanes;
  }
  std::sort(allocs.begin(), allocs.end(), [](const Alloc& a, const Alloc& b) {
    if (a.remainder != b.remainder) return a.remainder > b.remainder;
    if (a.entry->hash != b.entry->hash) return a.entry->hash < b.entry->hash;
    return a.entry->tenant < b.entry->tenant;
  });
  for (size_t i = 0; i < allocs.size() && assigned < total; ++i, ++assigned) {
    ++allocs[i].lanes;
  }

  // Every weighted tenant keeps at least one lane while lanes remain:
  // zero-lane tenants (tiny weights) take from the largest shares, in
  // the same deterministic order.
  auto largest = [&]() -> Alloc* {
    Alloc* best = nullptr;
    for (Alloc& a : allocs) {
      if (a.lanes > 1 && (best == nullptr || a.lanes > best->lanes)) best = &a;
    }
    return best;
  };
  for (Alloc& a : allocs) {
    if (a.lanes > 0) continue;
    Alloc* donor = largest();
    if (donor == nullptr) break;
    --donor->lanes;
    a.lanes = 1;
  }

  for (const Alloc& a : allocs) shares[a.entry->tenant] = a.lanes;
  return shares;
}

std::map<std::string, int> AdmissionController::CurrentLaneSharesLocked()
    const {
  std::map<std::string, int> weights;
  for (const auto& [name, tenant] : tenants_) {
    const int quota = QuotaOf(tenant);
    if (quota > 0) weights[name] = quota;
  }
  return ComputeLaneShares(options_.total_slots, weights, options_.seed);
}

void AdmissionController::SetTenantSlots(const std::string& tenant,
                                         int slots) {
  MutexLock lock(&mu_);
  tenants_[tenant].slots = std::max(0, slots);
  // A raised quota may unblock queued jobs.
  admit_cv_.notify_all();
}

int AdmissionController::TenantSlots(const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? options_.total_slots : QuotaOf(it->second);
}

int AdmissionController::LaneShare(const std::string& tenant) const {
  MutexLock lock(&mu_);
  std::map<std::string, int> shares = CurrentLaneSharesLocked();
  auto it = shares.find(tenant);
  if (it != shares.end()) return it->second;
  // Unknown tenant: the share it would get if admitted now with the
  // default quota. With no other tenants that is the whole cluster.
  return shares.empty() ? options_.total_slots
                        : std::max(1, options_.total_slots /
                                          static_cast<int>(shares.size() + 1));
}

Result<std::unique_ptr<AdmissionController::JobTicket>>
AdmissionController::AdmitJob(const std::string& tenant) {
  MutexLock lock(&mu_);
  Tenant& t = tenants_[tenant];
  if (QuotaOf(t) == 0) {
    return Status::ResourceExhausted(
        "tenant '" + tenant +
        "' has a zero admission quota; SET tenant_slots to a positive "
        "value to run jobs");
  }

  // FIFO within the tenant: tickets are served strictly in issue order,
  // and only while the tenant has a free job slot. Other tenants' queues
  // are independent — their backlog never delays this admission.
  const uint64_t seq = t.next_seq++;
  ++t.waiting_jobs;
  // Explicit wait loop so the guarded tenant state is accessed in a scope
  // the thread-safety analysis can see holds mu_ (a predicate lambda
  // would hide it).
  while (!(seq == t.admit_seq && t.running_jobs < QuotaOf(t))) {
    admit_cv_.wait(lock.native());
  }
  --t.waiting_jobs;
  ++t.admit_seq;
  ++t.running_jobs;

  // Simulated queue wait: the tenant's jobs are modeled as arriving
  // together and draining through `quota` lanes, greedily assigned to
  // the least-loaded lane (the Makespan model, per tenant). The wait is
  // that lane's backlog — a pure function of the tenant's own admission
  // order and simulated job costs, independent of wall-clock races and
  // of every other tenant.
  const int quota = QuotaOf(t);
  const size_t sim_lanes = static_cast<size_t>(
      std::max(1, std::min(quota, options_.total_slots)));
  t.sim_lanes.resize(sim_lanes, 0.0);
  size_t lane = 0;
  for (size_t i = 1; i < t.sim_lanes.size(); ++i) {
    if (t.sim_lanes[i] < t.sim_lanes[lane]) lane = i;
  }
  const double wait_ms = t.sim_lanes[lane];

  auto ticket = std::unique_ptr<JobTicket>(new JobTicket());
  ticket->controller_ = this;
  ticket->tenant_ = tenant;
  ticket->sim_wait_ms_ = wait_ms;
  ticket->sim_lane_ = lane;
  std::map<std::string, int> shares = CurrentLaneSharesLocked();
  auto share_it = shares.find(tenant);
  ticket->lane_share_ = share_it != shares.end()
                            ? share_it->second
                            : options_.total_slots;

  ++t.stats.jobs_admitted;
  if (wait_ms > 0) ++t.stats.jobs_queued;
  t.stats.wait_ms += wait_ms;
  return ticket;
}

void AdmissionController::ReleaseJob(JobTicket* ticket, double sim_cost_ms) {
  if (ticket == nullptr) return;
  MutexLock lock(&mu_);
  Tenant& t = tenants_[ticket->tenant_];
  if (ticket->sim_lane_ < t.sim_lanes.size()) {
    t.sim_lanes[ticket->sim_lane_] += std::max(0.0, sim_cost_ms);
  }
  t.stats.preempted_specs += ticket->preempted_specs();
  t.running_jobs = std::max(0, t.running_jobs - 1);
  admit_cv_.notify_all();
}

TenantStats AdmissionController::StatsFor(const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStats{} : it->second.stats;
}

int AdmissionController::QueuedJobs(const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.waiting_jobs;
}

int AdmissionController::RunningJobs(const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.running_jobs;
}

void AdmissionController::JobTicket::OnAttemptStart(bool speculative) {
  (void)speculative;
  MutexLock lock(&controller_->mu_);
  Tenant& t = controller_->tenants_[tenant_];
  ++t.lanes_in_use;
  ++t.stats.lanes_acquired;
  t.stats.peak_lanes = std::max(t.stats.peak_lanes, t.lanes_in_use);
}

void AdmissionController::JobTicket::OnAttemptDone(bool speculative) {
  (void)speculative;
  MutexLock lock(&controller_->mu_);
  Tenant& t = controller_->tenants_[tenant_];
  t.lanes_in_use = std::max(0, t.lanes_in_use - 1);
  ++t.stats.lanes_released;
}

bool AdmissionController::JobTicket::AllowSpeculative(size_t task) {
  (void)task;
  // Deterministic: a backup needs a second lane concurrently with the
  // straggling primary, so a one-lane share can never speculate. The
  // share is fixed at admission, making the answer identical on every
  // run regardless of which attempts happen to be in flight.
  if (lane_share_ >= 2) return true;
  preempted_specs_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

}  // namespace shadoop::mapreduce
