#include "mapreduce/task_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <thread>

#include "mapreduce/thread_pool.h"

namespace shadoop::mapreduce {
namespace {

/// RAII bracket for one attempt's lane: OnAttemptStart on construction,
/// OnAttemptDone on destruction — so a lane is released on every exit
/// path (success, failure, injected fault, lost commit race).
class LaneHold {
 public:
  LaneHold(AttemptGate* gate, bool speculative)
      : gate_(gate), speculative_(speculative) {
    if (gate_ != nullptr) gate_->OnAttemptStart(speculative_);
  }
  ~LaneHold() {
    if (gate_ != nullptr) gate_->OnAttemptDone(speculative_);
  }
  LaneHold(const LaneHold&) = delete;
  LaneHold& operator=(const LaneHold&) = delete;

 private:
  AttemptGate* gate_;
  bool speculative_;
};

}  // namespace

const char* AttemptStateName(AttemptState state) {
  switch (state) {
    case AttemptState::kScheduled:
      return "SCHEDULED";
    case AttemptState::kRunning:
      return "RUNNING";
    case AttemptState::kCommitted:
      return "COMMITTED";
    case AttemptState::kFailed:
      return "FAILED";
    case AttemptState::kKilled:
      return "KILLED";
  }
  return "UNKNOWN";
}

std::string TaskReport::History() const {
  std::ostringstream out;
  for (size_t i = 0; i < attempts.size(); ++i) {
    const AttemptRecord& a = attempts[i];
    if (i > 0) out << "; ";
    out << "#" << a.id;
    if (a.speculative) out << " (speculative)";
    out << " " << AttemptStateName(a.state);
    if (a.state == AttemptState::kFailed && !a.status.ok()) {
      out << " (" << a.status.ToString() << ")";
    }
  }
  return out.str();
}

TaskScheduler::TaskScheduler(TaskSchedulerOptions options,
                             fault::FaultInjector* injector)
    : options_(std::move(options)), injector_(injector) {
  if (injector_ != nullptr && !injector_->policy().AnyTaskFaults()) {
    injector_ = nullptr;
  }
}

bool TaskScheduler::RealDelay(double sim_ms,
                              const std::atomic<bool>& cancelled) const {
  if (sim_ms <= 0 || injector_ == nullptr) return true;
  const fault::FaultPolicy& policy = injector_->policy();
  double real_ms = sim_ms * policy.real_sleep_ms_per_sim_ms;
  real_ms = std::min(real_ms, policy.max_real_sleep_ms);
  if (real_ms <= 0) return true;
  // Sleep in small slices so a rival's commit cancels the wait promptly.
  auto remaining = std::chrono::duration<double, std::milli>(real_ms);
  const auto slice = std::chrono::microseconds(200);
  while (remaining.count() > 0) {
    if (cancelled.load(std::memory_order_acquire)) return false;
    auto nap = std::min<std::chrono::duration<double, std::milli>>(
        remaining, std::chrono::duration<double, std::milli>(slice));
    std::this_thread::sleep_for(nap);
    remaining -= nap;
  }
  return !cancelled.load(std::memory_order_acquire);
}

void TaskScheduler::RunTask(size_t task, const AttemptFn& attempt_fn,
                            const CommitFn& commit_fn) {
  TaskReport& report = reports_[task];
  report.task = task;

  int next_attempt_id = 1;
  int failures = 0;
  static const std::atomic<bool> kNeverCancelled{false};

  while (report.committed_attempt < 0 &&
         next_attempt_id <= options_.max_task_attempts) {
    const int attempt_id = next_attempt_id++;
    const double backoff_ms =
        failures == 0 ? 0.0
                      : options_.retry_backoff_ms *
                            std::pow(2.0, static_cast<double>(failures - 1));
    double delay_ms = 0;
    bool injected_failure = false;
    if (injector_ != nullptr) {
      injected_failure = injector_->ShouldFailAttempt(
          options_.kind, options_.job_name, task, attempt_id);
      delay_ms = injector_->StragglerDelayMs(options_.kind, options_.job_name,
                                             task, attempt_id);
    }

    // The admission gate can veto the backup: a tenant whose lane share
    // cannot fit a second concurrent attempt runs the straggler alone
    // (counted by the gate as a preempted speculation). The gate is
    // consulted only when the scheduler actually wants to speculate, so
    // the preemption count is as deterministic as the injector's
    // straggler decisions.
    const bool wants_speculation = options_.speculative_execution &&
                                   options_.speculative_slack_ms > 0 &&
                                   delay_ms > options_.speculative_slack_ms &&
                                   next_attempt_id <= options_.max_task_attempts;
    const bool speculate =
        wants_speculation &&
        (options_.gate == nullptr || options_.gate->AllowSpeculative(task));

    if (!speculate) {
      AttemptRecord rec;
      rec.id = attempt_id;
      rec.backoff_ms = backoff_ms;
      rec.injected_delay_ms = delay_ms;
      rec.state = AttemptState::kRunning;
      AttemptOutcome outcome;
      {
        LaneHold lane(options_.gate, /*speculative=*/false);
        if (injected_failure) {
          outcome.status = Status::IoError("injected task failure (attempt " +
                                           std::to_string(attempt_id) + ")");
          outcome.transient = true;
        } else {
          RealDelay(delay_ms, kNeverCancelled);
          AttemptInfo info{attempt_id, /*speculative=*/false};
          outcome = attempt_fn(task, info, /*slot=*/0, kNeverCancelled);
        }
      }
      if (outcome.status.ok()) {
        rec.state = AttemptState::kCommitted;
        report.attempts.push_back(rec);
        report.committed_attempt = attempt_id;
        report.sim_overhead_ms += backoff_ms + delay_ms;
        commit_fn(task, /*slot=*/0);
        return;
      }
      rec.state = AttemptState::kFailed;
      rec.status = outcome.status;
      report.attempts.push_back(rec);
      report.sim_overhead_ms += backoff_ms + options_.task_startup_ms;
      ++failures;
      if (!outcome.transient) return;
      if (next_attempt_id <= options_.max_task_attempts) {
        retries_.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }

    // Speculative race: the straggling primary and a fresh backup run
    // concurrently into separate slots; first clean finisher commits the
    // task via a compare-and-swap, the loser is killed. The backup
    // consumes the next attempt id.
    const int backup_id = next_attempt_id++;
    speculative_launched_.fetch_add(1, std::memory_order_relaxed);

    AttemptRecord primary_rec;
    primary_rec.id = attempt_id;
    primary_rec.backoff_ms = backoff_ms;
    primary_rec.injected_delay_ms = delay_ms;
    AttemptRecord backup_rec;
    backup_rec.id = backup_id;
    backup_rec.speculative = true;
    if (injector_ != nullptr) {
      backup_rec.injected_delay_ms = injector_->StragglerDelayMs(
          options_.kind, options_.job_name, task, backup_id);
    }
    const bool backup_injected_failure =
        injector_ != nullptr &&
        injector_->ShouldFailAttempt(options_.kind, options_.job_name, task,
                                     backup_id);

    std::atomic<int> committed_slot{-1};
    std::atomic<bool> cancel[2] = {{false}, {false}};

    auto run_lane = [&](int slot, const AttemptRecord& rec, bool injected,
                        AttemptOutcome* out) {
      LaneHold lane(options_.gate, rec.speculative);
      if (injected) {
        out->status = Status::IoError("injected task failure (attempt " +
                                      std::to_string(rec.id) + ")");
        out->transient = true;
        return;
      }
      if (!RealDelay(rec.injected_delay_ms, cancel[slot])) {
        out->status = Status::Cancelled("attempt killed by rival commit");
        out->transient = true;
        return;
      }
      AttemptInfo info{rec.id, rec.speculative};
      *out = attempt_fn(task, info, slot, cancel[slot]);
      if (!out->status.ok()) return;
      int expected = -1;
      if (committed_slot.compare_exchange_strong(expected, slot,
                                                 std::memory_order_acq_rel)) {
        cancel[1 - slot].store(true, std::memory_order_release);
      } else {
        // A rival committed first; our clean output is discarded.
        out->status = Status::Cancelled("attempt lost commit race");
      }
    };

    AttemptOutcome primary_out, backup_out;
    std::thread backup_thread(
        [&] { run_lane(1, backup_rec, backup_injected_failure, &backup_out); });
    run_lane(0, primary_rec, injected_failure, &primary_out);
    backup_thread.join();

    const int winner_slot = committed_slot.load(std::memory_order_acquire);

    // Records follow the *simulated* outcome, decided by the injector —
    // not by which attempt happened to win the wall-clock race. A clean
    // attempt (succeeded, or killed after the rival committed) is
    // COMMITTED when the sim says it won and KILLED otherwise; both
    // produce the same output, so the committed result is identical
    // either way.
    auto finalize = [&](AttemptRecord rec, const AttemptOutcome& out,
                        bool won_sim) {
      const bool clean = out.status.ok() || out.status.IsCancelled();
      if (clean) {
        rec.state = won_sim ? AttemptState::kCommitted : AttemptState::kKilled;
      } else {
        rec.state = AttemptState::kFailed;
        rec.status = out.status;
      }
      report.attempts.push_back(rec);
    };

    if (winner_slot >= 0) {
      const bool primary_clean = primary_out.status.ok() ||
                                 primary_out.status.IsCancelled();
      const bool backup_clean =
          backup_out.status.ok() || backup_out.status.IsCancelled();
      // Sim race: the backup wins iff the primary's straggler delay
      // exceeds the backup's launch latency plus its own delay.
      const double backup_total_ms =
          options_.task_startup_ms + backup_rec.injected_delay_ms;
      bool backup_wins_sim = delay_ms > backup_total_ms;
      if (!backup_clean) backup_wins_sim = false;
      if (!primary_clean) backup_wins_sim = true;

      finalize(primary_rec, primary_out, !backup_wins_sim);
      finalize(backup_rec, backup_out, backup_wins_sim);
      if (backup_wins_sim) {
        speculative_won_.fetch_add(1, std::memory_order_relaxed);
        report.sim_overhead_ms += backoff_ms + backup_total_ms;
      } else {
        report.sim_overhead_ms += backoff_ms + delay_ms;
      }
      report.committed_attempt =
          backup_wins_sim ? backup_rec.id : primary_rec.id;
      commit_fn(task, winner_slot);
      return;
    }

    // Both attempts failed; charge both launches and retry if possible.
    finalize(primary_rec, primary_out, false);
    finalize(backup_rec, backup_out, false);
    failures += 2;
    report.sim_overhead_ms += backoff_ms + 2 * options_.task_startup_ms;
    if (!primary_out.transient && !backup_out.transient) return;
    if (next_attempt_id <= options_.max_task_attempts) {
      retries_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void TaskScheduler::RunTasks(size_t num_tasks, int max_parallel,
                             const AttemptFn& attempt_fn,
                             const CommitFn& commit_fn) {
  reports_.assign(num_tasks, TaskReport{});
  ThreadPool::Shared().ParallelFor(num_tasks, max_parallel, [&](size_t task) {
    RunTask(task, attempt_fn, commit_fn);
  });
}

bool TaskScheduler::ok() const {
  for (const TaskReport& report : reports_) {
    if (report.committed_attempt < 0) return false;
  }
  return true;
}

Status TaskScheduler::MakeStatus() const {
  for (const TaskReport& report : reports_) {
    if (report.committed_attempt >= 0) continue;
    Status last = Status::IoError("task never ran");
    for (auto it = report.attempts.rbegin(); it != report.attempts.rend();
         ++it) {
      if (it->state == AttemptState::kFailed) {
        last = it->status;
        break;
      }
    }
    std::ostringstream msg;
    msg << (options_.kind == fault::TaskKind::kMap ? "map" : "reduce")
        << " task " << report.task << " of job '" << options_.job_name
        << "' failed after " << report.attempts.size()
        << " attempt(s): " << report.History();
    return Status(last.code(), msg.str());
  }
  return Status::OK();
}

}  // namespace shadoop::mapreduce
