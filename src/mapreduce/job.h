#ifndef SHADOOP_MAPREDUCE_JOB_H_
#define SHADOOP_MAPREDUCE_JOB_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace shadoop::fault {
class FaultInjector;
}  // namespace shadoop::fault

namespace shadoop::mapreduce {

class ArtifactCache;

/// One intermediate key-value pair. Keys and values are text, in the
/// spirit of Hadoop streaming: every operation defines its own record
/// encodings on top (typically CSV or WKT, see geometry/wkt.h).
struct KeyValue {
  std::string key;
  std::string value;

  friend bool operator<(const KeyValue& a, const KeyValue& b) {
    return a.key < b.key || (a.key == b.key && a.value < b.value);
  }
  friend bool operator==(const KeyValue& a, const KeyValue& b) {
    return a.key == b.key && a.value == b.value;
  }
};

/// Reference to one stored block of an input file.
struct BlockRef {
  std::string path;
  size_t block_index = 0;
};

/// Unit of work for one map task. A split normally covers one block; some
/// spatial operations (e.g. farthest pair) build splits that cover a
/// *pair* of partitions, hence the vector. `meta` carries operation
/// defined context — for spatially partitioned files it is the partition
/// MBR in CSV form, so the map function knows its cell boundaries.
struct InputSplit {
  std::vector<BlockRef> blocks;
  std::string meta;
  size_t estimated_bytes = 0;
  size_t estimated_records = 0;
};

/// Thread-compatible counter set; each task accumulates locally and the
/// runner merges after the phase, so no locking is needed in user code.
class Counters {
 public:
  /// Heterogeneous lookup (std::less<> map): incrementing with a string
  /// literal or string_view allocates only when the counter is first seen.
  void Increment(std::string_view name, int64_t delta = 1) {
    auto it = values_.find(name);
    if (it == values_.end()) {
      values_.emplace(std::string(name), delta);
    } else {
      it->second += delta;
    }
  }
  int64_t Get(std::string_view name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }
  void MergeFrom(const Counters& other) {
    for (const auto& [name, value] : other.values_) Increment(name, value);
  }
  const std::map<std::string, int64_t, std::less<>>& values() const {
    return values_;
  }

 private:
  std::map<std::string, int64_t, std::less<>> values_;
};

/// Context handed to map tasks. Emit() feeds the shuffle; WriteOutput()
/// bypasses the shuffle and appends to the job's final output — this is
/// how SpatialHadoop's pruning steps "early flush" final results from the
/// map side. ChargeCpu() lets algorithms report super-linear work to the
/// simulated-time model.
class MapContext {
 public:
  virtual ~MapContext() = default;

  /// Key/value bytes are copied into the task's shuffle buffer before the
  /// call returns, so views into short-lived storage are fine.
  virtual void Emit(std::string_view key, std::string_view value) = 0;
  virtual void WriteOutput(std::string_view line) = 0;
  virtual void ChargeCpu(uint64_t ops) = 0;
  virtual Counters& counters() = 0;
  /// The split being processed (access to `meta`).
  virtual const InputSplit& split() const = 0;
  /// Marks the task (and hence the job) failed; record processing stops
  /// after the current record. For data errors the job must not ignore.
  virtual void Fail(Status status) = 0;

  /// Runner-wide cache of immutable per-block artifacts (see
  /// artifact_cache.h), or null when caching is unavailable — fault
  /// injection active, or a context outside the job runner. Hits must
  /// only save wall-clock time, never change simulated charges, output
  /// or counters.
  virtual ArtifactCache* artifact_cache() { return nullptr; }

  /// Globally unique immutable id of the split's `ordinal`-th block
  /// (hdfs::BlockId), or 0 when unknown. Safe as a cache key: rewritten
  /// files get fresh ids, so a stale artifact can never alias new bytes.
  virtual uint64_t block_cache_id(size_t ordinal) const {
    (void)ordinal;
    return 0;
  }
};

/// Context handed to reduce tasks.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;

  virtual void Write(std::string line) = 0;
  virtual void ChargeCpu(uint64_t ops) = 0;
  virtual Counters& counters() = 0;
  /// Marks the task (and hence the job) failed.
  virtual void Fail(Status status) = 0;
};

/// User map function. One instance is created per map task (so instances
/// may keep per-split state without locking). BeginSplit/EndSplit bracket
/// the records of the split; whole-partition algorithms buffer in Map()
/// and compute in EndSplit().
class Mapper {
 public:
  virtual ~Mapper() = default;

  virtual void BeginSplit(MapContext& ctx) { (void)ctx; }
  /// Called before the records of the split's `ordinal`-th block; lets
  /// multi-block splits (partition pairs) tell their inputs apart.
  virtual void BeginBlock(size_t ordinal, MapContext& ctx) {
    (void)ordinal;
    (void)ctx;
  }
  /// `record` is a zero-copy view into the block being read; it stays
  /// valid until EndSplit() returns (the runner pins the block's bytes
  /// for the whole task attempt), so mappers may buffer views across
  /// Map() calls. Anything that must outlive the task — Emit(),
  /// WriteOutput() — is copied by the context.
  virtual void Map(std::string_view record, MapContext& ctx) = 0;
  virtual void EndSplit(MapContext& ctx) { (void)ctx; }
};

/// User reduce function. Also used for combiners (map-side pre-reduce);
/// a combiner's Write() re-emits under the group key instead of writing
/// final output.
class Reducer {
 public:
  virtual ~Reducer() = default;

  virtual void Reduce(const std::string& key,
                      const std::vector<std::string>& values,
                      ReduceContext& ctx) = 0;

  /// Called once after the last group of the task; reducers that combine
  /// state across keys write their final answer here.
  virtual void Finish(ReduceContext& ctx) { (void)ctx; }
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// Routes an intermediate key to a reduce task in [0, num_reducers).
using Partitioner = std::function<int(std::string_view key, int num_reducers)>;

/// Fault-injection hook for tests: return true to make the given task
/// attempt fail artificially.
using FaultInjector = std::function<bool(int task_index, int attempt)>;

/// Full specification of one MapReduce job.
struct JobConfig {
  std::string name = "job";
  std::vector<InputSplit> splits;
  MapperFactory mapper;
  ReducerFactory combiner;  // Optional.
  ReducerFactory reducer;   // Optional: absent means a map-only job.
  Partitioner partitioner;  // Optional: defaults to hash(key) % R.
  int num_reducers = 1;
  /// When non-empty, the output lines are also written as an HDFS file.
  std::string output_path;
  int max_task_attempts = 3;
  FaultInjector fault_injector;  // Optional, tests only.
  /// Deterministic fault source driving the task-attempt scheduler (task
  /// failures, stragglers). Not owned; null means no injection. Jobs run
  /// through SpatialJobBuilder inherit the pipeline's injector instead of
  /// setting this directly.
  fault::FaultInjector* fault_source = nullptr;
};

/// Deterministic simulated-cost breakdown of a finished job (see
/// DESIGN.md §5). All times in milliseconds of simulated cluster time.
struct JobCost {
  double total_ms = 0;
  double map_makespan_ms = 0;
  double shuffle_ms = 0;
  double reduce_makespan_ms = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_shuffled = 0;
  uint64_t bytes_written = 0;
  int num_map_tasks = 0;
  int num_reduce_tasks = 0;

  // Fault-tolerance counters (all zero on a fault-free run; retries,
  // backoff waits and straggler delays also inflate the makespans above).
  int64_t task_retries = 0;
  int64_t speculative_launched = 0;
  int64_t speculative_won = 0;
  int64_t replica_failovers = 0;

  // Multi-tenant admission counters (all zero without an admission
  // controller, or when the job never waited — see DESIGN.md §10).
  int64_t admission_queued = 0;       // 1 when this job queued for a slot.
  double admission_wait_ms = 0;       // Simulated queue wait.
  int64_t admission_preempted_specs = 0;  // Backups denied by the quota.
};

struct JobResult {
  Status status;
  Counters counters;
  JobCost cost;
  double wall_ms = 0;
  /// Final output lines in deterministic order (map-task order for
  /// map-side writes, then reduce-task order).
  std::vector<std::string> output;
};

}  // namespace shadoop::mapreduce

#endif  // SHADOOP_MAPREDUCE_JOB_H_
