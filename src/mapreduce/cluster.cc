#include "mapreduce/cluster.h"

#include <algorithm>
#include <queue>

namespace shadoop::mapreduce {

double Makespan(const std::vector<double>& task_costs_ms, int num_slots) {
  if (task_costs_ms.empty()) return 0.0;
  num_slots = std::max(1, num_slots);
  // Min-heap of slot loads.
  std::priority_queue<double, std::vector<double>, std::greater<double>> slots;
  for (int i = 0; i < num_slots; ++i) slots.push(0.0);
  for (double cost : task_costs_ms) {
    double load = slots.top();
    slots.pop();
    slots.push(load + cost);
  }
  double makespan = 0.0;
  while (!slots.empty()) {
    makespan = slots.top();
    slots.pop();
  }
  return makespan;
}

}  // namespace shadoop::mapreduce
