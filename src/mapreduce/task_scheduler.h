#ifndef SHADOOP_MAPREDUCE_TASK_SCHEDULER_H_
#define SHADOOP_MAPREDUCE_TASK_SCHEDULER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "fault/fault_injector.h"

namespace shadoop::mapreduce {

/// Attempt lifecycle (DESIGN.md §9):
///
///   SCHEDULED → RUNNING → { COMMITTED, FAILED, KILLED }
///
/// COMMITTED: the attempt finished cleanly and won the task's commit race.
/// FAILED:    the attempt reported an error; retried while transient and
///            the attempt budget lasts.
/// KILLED:    a rival attempt committed first — the attempt's output is
///            discarded (never merged into the job).
enum class AttemptState { kScheduled, kRunning, kCommitted, kFailed, kKilled };

const char* AttemptStateName(AttemptState state);

/// One launched attempt of a task, as recorded in the task's history.
struct AttemptRecord {
  int id = 1;  // 1-based launch order within the task.
  bool speculative = false;
  AttemptState state = AttemptState::kScheduled;
  Status status;                 // Failure reason when state == kFailed.
  double injected_delay_ms = 0;  // Simulated straggler delay.
  double backoff_ms = 0;         // Simulated wait before this launch.
};

/// Full attempt history of one task.
struct TaskReport {
  size_t task = 0;
  std::vector<AttemptRecord> attempts;
  int committed_attempt = -1;  // Attempt id, or -1 when the task failed.
  /// Simulated milliseconds the task's retries, backoff waits and
  /// effective straggler delay added on top of its clean single-attempt
  /// cost. Deterministic: derived from the injector's decisions, never
  /// from which attempt happened to win the wall-clock race.
  double sim_overhead_ms = 0;

  /// "#1 FAILED (IoError: ...); #2 COMMITTED" — for error messages.
  std::string History() const;
};

/// Identity of the attempt being run, passed to the attempt body.
struct AttemptInfo {
  int id = 1;
  bool speculative = false;
};

/// What one attempt produced. `transient` distinguishes environment
/// failures (I/O errors, injected faults — worth retrying elsewhere) from
/// deterministic user-code failures (retrying would repeat them).
struct AttemptOutcome {
  Status status;
  bool transient = true;
};

/// Admission hook around task attempts (see AdmissionController). The
/// scheduler brackets *every* attempt — first launches, retries and
/// speculative backups alike — with OnAttemptStart/OnAttemptDone, so a
/// quota holder can account lanes and verify that every acquired lane is
/// released whatever the attempt's fate. AllowSpeculative is consulted
/// once per task the scheduler wants to back up; returning false vetoes
/// the backup (counted by the gate as a preempted speculation). All
/// three methods are called from worker threads and must be thread-safe.
class AttemptGate {
 public:
  virtual ~AttemptGate() = default;

  virtual void OnAttemptStart(bool speculative) = 0;
  virtual void OnAttemptDone(bool speculative) = 0;
  /// Whether a speculative backup may occupy a second lane. Must be
  /// deterministic for the same gate state: the set of tasks asking is
  /// injector-decided, and JobCost reproducibility hinges on the same
  /// tasks getting the same answer on every run.
  virtual bool AllowSpeculative(size_t task) = 0;
};

/// Runs one attempt of `task` into private, attempt-scoped state keyed by
/// `slot` (0 = primary, 1 = speculative backup). The body must not
/// publish anything outside its slot: publication happens exactly once,
/// through the CommitFn, for the winning attempt only — this is the
/// commit-once rule that makes retries and speculation unable to
/// double-emit. `cancelled` flips when a rival attempt commits; long
/// attempts should poll it and bail out early.
using AttemptFn = std::function<AttemptOutcome(
    size_t task, const AttemptInfo& info, int slot,
    const std::atomic<bool>& cancelled)>;

/// Publishes the given slot's output as the task's committed result.
/// Invoked at most once per task, after every attempt of the task has
/// stopped running (so it never races the losing attempt).
using CommitFn = std::function<void(size_t task, int slot)>;

struct TaskSchedulerOptions {
  std::string job_name = "job";
  fault::TaskKind kind = fault::TaskKind::kMap;
  int max_task_attempts = 3;
  /// Mirrors ClusterConfig::task_startup_ms: each failed attempt charges
  /// one task launch to the simulated cost.
  double task_startup_ms = 200.0;
  /// Simulated wait before relaunching a failed attempt; doubles per
  /// consecutive failure (exponential backoff).
  double retry_backoff_ms = 1000.0;
  /// Speculative execution: when an attempt's injected straggler delay
  /// exceeds `speculative_slack_ms`, a backup attempt launches and
  /// whichever attempt commits first wins; the loser is killed.
  bool speculative_execution = true;
  double speculative_slack_ms = 5000.0;
  /// Admission gate bracketing every attempt; not owned, null (the
  /// default) disables admission accounting entirely.
  AttemptGate* gate = nullptr;
};

/// Task-attempt scheduler: drives every task of one phase through the
/// attempt state machine with bounded retries, exponential backoff and
/// speculative execution of stragglers. Execution is real (attempts run
/// user code on the shared thread pool; backups race on their own
/// threads) while time is modeled: all cost/counter outputs are pure
/// functions of the injector's deterministic decisions, so JobCost and
/// the fault counters are reproducible even though which attempt wins a
/// wall-clock race is not.
class TaskScheduler {
 public:
  TaskScheduler(TaskSchedulerOptions options, fault::FaultInjector* injector);

  /// Runs all `num_tasks` tasks on the shared thread pool with at most
  /// `max_parallel` lanes; each lane drives one task's attempts to
  /// completion (including joining its speculative backup) before
  /// returning.
  void RunTasks(size_t num_tasks, int max_parallel,
                const AttemptFn& attempt_fn, const CommitFn& commit_fn);

  /// True when every task committed an attempt.
  bool ok() const;

  /// OK, or the first failing task's status: its phase, task id, attempt
  /// count and full attempt history, with the last failure's code.
  Status MakeStatus() const;

  const std::vector<TaskReport>& reports() const { return reports_; }

  int64_t task_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  int64_t speculative_launched() const {
    return speculative_launched_.load(std::memory_order_relaxed);
  }
  /// Backups that finish first in *simulated* time (injected delay
  /// exceeded the slack) — deterministic, unlike the wall-clock race.
  int64_t speculative_won() const {
    return speculative_won_.load(std::memory_order_relaxed);
  }

 private:
  void RunTask(size_t task, const AttemptFn& attempt_fn,
               const CommitFn& commit_fn);

  /// Sleeps the scaled real-time equivalent of `sim_ms` (policy knobs),
  /// polling `cancelled`; returns false when cancelled mid-sleep.
  bool RealDelay(double sim_ms, const std::atomic<bool>& cancelled) const;

  TaskSchedulerOptions options_;
  fault::FaultInjector* injector_;  // Nullable: no injection.
  std::vector<TaskReport> reports_;
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> speculative_launched_{0};
  std::atomic<int64_t> speculative_won_{0};
};

}  // namespace shadoop::mapreduce

#endif  // SHADOOP_MAPREDUCE_TASK_SCHEDULER_H_
