#ifndef SHADOOP_PIGEON_LEXER_H_
#define SHADOOP_PIGEON_LEXER_H_

#include <string_view>
#include <vector>

#include "common/result.h"
#include "pigeon/token.h"

namespace shadoop::pigeon {

/// Tokenizes a Pigeon script. Comments run from "--" to end of line.
/// Identifiers are [A-Za-z_][A-Za-z0-9_]*; strings are single-quoted with
/// no escapes (paths never need them); numbers accept a sign, decimals
/// and exponents.
Result<std::vector<Token>> Tokenize(std::string_view script);

}  // namespace shadoop::pigeon

#endif  // SHADOOP_PIGEON_LEXER_H_
