#ifndef SHADOOP_PIGEON_PARSER_H_
#define SHADOOP_PIGEON_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "pigeon/ast.h"

namespace shadoop::pigeon {

/// Parses a Pigeon script into statements. Keywords are case-insensitive;
/// every statement ends with ';'. Errors carry the source line.
Result<Script> Parse(std::string_view script);

}  // namespace shadoop::pigeon

#endif  // SHADOOP_PIGEON_PARSER_H_
