#include "pigeon/parser.h"

#include "common/string_util.h"
#include "pigeon/lexer.h"

namespace shadoop::pigeon {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Script> ParseScript() {
    Script script;
    while (Peek().type != TokenType::kEnd) {
      SHADOOP_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      script.push_back(std::move(stmt));
    }
    return script;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Next() { return tokens_[pos_++]; }

  Status ErrorAt(const Token& token, const std::string& message) {
    return Status::ParseError("line " + std::to_string(token.line) + ": " +
                              message);
  }

  Result<Token> Expect(TokenType type, const char* what) {
    Token token = Next();
    if (token.type != type) {
      return ErrorAt(token, std::string("expected ") + what + ", got " +
                                TokenTypeName(token.type) +
                                (token.text.empty() ? "" : " '" + token.text +
                                                              "'"));
    }
    return token;
  }

  /// Consumes an identifier and returns it upper-cased (keyword form).
  Result<std::string> Keyword() {
    SHADOOP_ASSIGN_OR_RETURN(Token token,
                             Expect(TokenType::kIdentifier, "a keyword"));
    return AsciiToUpper(token.text);
  }

  /// True (and consumes) if the next token is the given keyword.
  bool AcceptKeyword(const char* keyword) {
    if (Peek().type == TokenType::kIdentifier &&
        AsciiToUpper(Peek().text) == keyword) {
      Next();
      return true;
    }
    return false;
  }

  Result<double> Number() {
    SHADOOP_ASSIGN_OR_RETURN(Token token,
                             Expect(TokenType::kNumber, "a number"));
    return token.number;
  }

  /// Renders tokens [begin, end) back to canonical source text: token
  /// texts separated by single spaces, strings re-quoted, punctuation
  /// spelled out. Comments and original whitespace are already gone, so
  /// any two spellings with the same token stream render identically.
  std::string RenderTokens(size_t begin, size_t end) const {
    std::string out;
    for (size_t i = begin; i < end && i < tokens_.size(); ++i) {
      const Token& token = tokens_[i];
      if (token.type == TokenType::kEnd) break;
      if (!out.empty()) out.push_back(' ');
      switch (token.type) {
        case TokenType::kString:
          out += "'" + token.text + "'";
          break;
        case TokenType::kEquals:
          out += "=";
          break;
        case TokenType::kComma:
          out += ",";
          break;
        case TokenType::kSemicolon:
          out += ";";
          break;
        case TokenType::kLeftParen:
          out += "(";
          break;
        case TokenType::kRightParen:
          out += ")";
          break;
        default:  // Identifiers and numbers carry their own text.
          out += token.text;
          break;
      }
    }
    return out;
  }

  Result<Statement> ParseStatement() {
    const size_t start = pos_;
    const Token first = Peek();
    if (first.type != TokenType::kIdentifier) {
      return ErrorAt(first, "expected a statement");
    }
    Statement stmt;
    stmt.line = first.line;
    const std::string upper = AsciiToUpper(first.text);
    if (upper == "STORE") {
      Next();
      stmt.kind = Statement::Kind::kStore;
      SHADOOP_ASSIGN_OR_RETURN(
          Token name, Expect(TokenType::kIdentifier, "a dataset name"));
      stmt.target = name.text;
      SHADOOP_ASSIGN_OR_RETURN(std::string into, Keyword());
      if (into != "INTO") return ErrorAt(name, "expected INTO");
      SHADOOP_ASSIGN_OR_RETURN(Token path,
                               Expect(TokenType::kString, "a path string"));
      stmt.path = path.text;
    } else if (upper == "SET") {
      Next();
      stmt.kind = Statement::Kind::kSet;
      SHADOOP_ASSIGN_OR_RETURN(
          Token knob, Expect(TokenType::kIdentifier, "a session knob"));
      stmt.target = AsciiToUpper(knob.text);
      if (stmt.target == "TENANT") {
        SHADOOP_ASSIGN_OR_RETURN(
            Token name, Expect(TokenType::kString, "a tenant name string"));
        if (name.text.empty()) {
          return ErrorAt(knob, "tenant name must not be empty");
        }
        stmt.path = name.text;
      } else if (stmt.target == "TENANT_SLOTS" ||
                 stmt.target == "MAX_TASK_ATTEMPTS" ||
                 stmt.target == "SNAPSHOT_VERSION") {
        SHADOOP_ASSIGN_OR_RETURN(stmt.number, Number());
        if (stmt.target == "TENANT_SLOTS" && stmt.number < 0) {
          return ErrorAt(knob, "tenant_slots must be >= 0");
        }
        if (stmt.target == "MAX_TASK_ATTEMPTS" && stmt.number < 1) {
          return ErrorAt(knob, "max_task_attempts must be >= 1");
        }
        if (stmt.target == "SNAPSHOT_VERSION" && stmt.number < 0) {
          return ErrorAt(knob, "snapshot_version must be >= 0");
        }
      } else if (stmt.target == "OPTIMIZER") {
        SHADOOP_ASSIGN_OR_RETURN(std::string mode, Keyword());
        if (mode != "ON" && mode != "OFF") {
          return ErrorAt(knob, "optimizer must be 'on' or 'off'");
        }
        stmt.path = mode == "ON" ? "on" : "off";
      } else {
        return ErrorAt(knob, "unknown session knob '" + knob.text +
                                 "' (expected tenant, tenant_slots, "
                                 "max_task_attempts, snapshot_version or "
                                 "optimizer)");
      }
    } else if (upper == "DUMP" || upper == "EXPLAIN") {
      Next();
      stmt.kind = upper == "DUMP" ? Statement::Kind::kDump
                                  : Statement::Kind::kExplain;
      SHADOOP_ASSIGN_OR_RETURN(
          Token name, Expect(TokenType::kIdentifier, "a dataset name"));
      stmt.target = name.text;
    } else {
      stmt.kind = Statement::Kind::kAssign;
      SHADOOP_ASSIGN_OR_RETURN(
          Token name, Expect(TokenType::kIdentifier, "a dataset name"));
      stmt.target = name.text;
      SHADOOP_RETURN_NOT_OK(Expect(TokenType::kEquals, "'='").status());
      SHADOOP_ASSIGN_OR_RETURN(stmt.expr, ParseExpr());
    }
    SHADOOP_RETURN_NOT_OK(Expect(TokenType::kSemicolon, "';'").status());
    stmt.text = RenderTokens(start, pos_);
    return stmt;
  }

  Result<Expr> ParseExpr() {
    const Token op_token = Peek();
    SHADOOP_ASSIGN_OR_RETURN(std::string op, Keyword());
    Expr expr;
    expr.line = op_token.line;
    if (op == "LOADINDEX") {
      expr.kind = Expr::Kind::kLoadIndex;
      SHADOOP_ASSIGN_OR_RETURN(Token path,
                               Expect(TokenType::kString, "a path string"));
      expr.path = path.text;
    } else if (op == "LOAD") {
      expr.kind = Expr::Kind::kLoad;
      SHADOOP_ASSIGN_OR_RETURN(Token path,
                               Expect(TokenType::kString, "a path string"));
      expr.path = path.text;
      SHADOOP_ASSIGN_OR_RETURN(std::string as, Keyword());
      if (as == "APPEND") {
        expr.kind = Expr::Kind::kAppend;
        SHADOOP_ASSIGN_OR_RETURN(
            Token src, Expect(TokenType::kIdentifier, "a dataset name"));
        expr.source = src.text;
      } else if (as == "AS") {
        SHADOOP_ASSIGN_OR_RETURN(std::string shape, Keyword());
        SHADOOP_ASSIGN_OR_RETURN(expr.shape, index::ParseShapeType(shape));
      } else {
        return ErrorAt(op_token, "expected AS or APPEND after LOAD path");
      }
    } else if (op == "INDEX") {
      expr.kind = Expr::Kind::kIndex;
      SHADOOP_ASSIGN_OR_RETURN(
          Token src, Expect(TokenType::kIdentifier, "a dataset name"));
      expr.source = src.text;
      SHADOOP_ASSIGN_OR_RETURN(std::string with, Keyword());
      if (with != "WITH") return ErrorAt(op_token, "expected WITH");
      SHADOOP_ASSIGN_OR_RETURN(std::string scheme, Keyword());
      if (scheme == "AUTO") {
        // The advisor picks the technique at execution time; STR is the
        // fallback when the optimizer is off.
        expr.auto_scheme = true;
        expr.scheme = index::PartitionScheme::kStr;
      } else {
        SHADOOP_ASSIGN_OR_RETURN(expr.scheme,
                                 index::ParsePartitionScheme(scheme));
      }
      if (AcceptKeyword("INTO")) {
        SHADOOP_ASSIGN_OR_RETURN(Token path,
                                 Expect(TokenType::kString, "a path string"));
        expr.path = path.text;
      }
    } else if (op == "RANGE" || op == "COUNT") {
      expr.kind = op == "RANGE" ? Expr::Kind::kRange : Expr::Kind::kCount;
      SHADOOP_ASSIGN_OR_RETURN(
          Token src, Expect(TokenType::kIdentifier, "a dataset name"));
      expr.source = src.text;
      SHADOOP_ASSIGN_OR_RETURN(std::string rect, Keyword());
      if (rect != "RECTANGLE") return ErrorAt(op_token, "expected RECTANGLE");
      SHADOOP_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('").status());
      double v[4];
      for (int i = 0; i < 4; ++i) {
        SHADOOP_ASSIGN_OR_RETURN(v[i], Number());
        if (i < 3) {
          SHADOOP_RETURN_NOT_OK(Expect(TokenType::kComma, "','").status());
        }
      }
      SHADOOP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'").status());
      if (v[2] < v[0] || v[3] < v[1]) {
        return ErrorAt(op_token, "RECTANGLE bounds are inverted");
      }
      expr.range = Envelope(v[0], v[1], v[2], v[3]);
    } else if (op == "KNN") {
      expr.kind = Expr::Kind::kKnn;
      SHADOOP_ASSIGN_OR_RETURN(
          Token src, Expect(TokenType::kIdentifier, "a dataset name"));
      expr.source = src.text;
      SHADOOP_ASSIGN_OR_RETURN(std::string point, Keyword());
      if (point != "POINT") return ErrorAt(op_token, "expected POINT");
      SHADOOP_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('").status());
      SHADOOP_ASSIGN_OR_RETURN(double x, Number());
      SHADOOP_RETURN_NOT_OK(Expect(TokenType::kComma, "','").status());
      SHADOOP_ASSIGN_OR_RETURN(double y, Number());
      SHADOOP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'").status());
      expr.query = Point(x, y);
      SHADOOP_ASSIGN_OR_RETURN(std::string k_kw, Keyword());
      if (k_kw != "K") return ErrorAt(op_token, "expected K <count>");
      SHADOOP_ASSIGN_OR_RETURN(double k, Number());
      if (k < 1) return ErrorAt(op_token, "K must be >= 1");
      expr.k = static_cast<size_t>(k);
    } else if (op == "SJOIN" || op == "KNNJOIN") {
      expr.kind =
          op == "SJOIN" ? Expr::Kind::kJoin : Expr::Kind::kKnnJoin;
      SHADOOP_ASSIGN_OR_RETURN(
          Token left, Expect(TokenType::kIdentifier, "a dataset name"));
      expr.source = left.text;
      SHADOOP_RETURN_NOT_OK(Expect(TokenType::kComma, "','").status());
      SHADOOP_ASSIGN_OR_RETURN(
          Token right, Expect(TokenType::kIdentifier, "a dataset name"));
      expr.source_b = right.text;
      if (expr.kind == Expr::Kind::kKnnJoin) {
        SHADOOP_ASSIGN_OR_RETURN(std::string k_kw, Keyword());
        if (k_kw != "K") return ErrorAt(op_token, "expected K <count>");
        SHADOOP_ASSIGN_OR_RETURN(double k, Number());
        if (k < 1) return ErrorAt(op_token, "K must be >= 1");
        expr.k = static_cast<size_t>(k);
      }
    } else if (op == "SKYLINE" || op == "CONVEXHULL" || op == "CLOSESTPAIR" ||
               op == "FARTHESTPAIR" || op == "UNION") {
      if (op == "SKYLINE") expr.kind = Expr::Kind::kSkyline;
      if (op == "CONVEXHULL") expr.kind = Expr::Kind::kConvexHull;
      if (op == "CLOSESTPAIR") expr.kind = Expr::Kind::kClosestPair;
      if (op == "FARTHESTPAIR") expr.kind = Expr::Kind::kFarthestPair;
      if (op == "UNION") expr.kind = Expr::Kind::kUnion;
      SHADOOP_ASSIGN_OR_RETURN(
          Token src, Expect(TokenType::kIdentifier, "a dataset name"));
      expr.source = src.text;
    } else {
      return ErrorAt(op_token, "unknown operation '" + op + "'");
    }
    return expr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Script> Parse(std::string_view script) {
  SHADOOP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(script));
  return Parser(std::move(tokens)).ParseScript();
}

}  // namespace shadoop::pigeon
