#include "pigeon/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace shadoop::pigeon {

const char* TokenTypeName(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kString:
      return "string";
    case TokenType::kNumber:
      return "number";
    case TokenType::kEquals:
      return "'='";
    case TokenType::kComma:
      return "','";
    case TokenType::kSemicolon:
      return "';'";
    case TokenType::kLeftParen:
      return "'('";
    case TokenType::kRightParen:
      return "')'";
    case TokenType::kEnd:
      return "end of script";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(std::string_view script) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  while (i < script.size()) {
    const char c = script[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: "--" to end of line.
    if (c == '-' && i + 1 < script.size() && script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.line = line;
    switch (c) {
      case '=':
        token.type = TokenType::kEquals;
        ++i;
        break;
      case ',':
        token.type = TokenType::kComma;
        ++i;
        break;
      case ';':
        token.type = TokenType::kSemicolon;
        ++i;
        break;
      case '(':
        token.type = TokenType::kLeftParen;
        ++i;
        break;
      case ')':
        token.type = TokenType::kRightParen;
        ++i;
        break;
      case '\'': {
        token.type = TokenType::kString;
        size_t end = script.find('\'', i + 1);
        if (end == std::string_view::npos) {
          return Status::ParseError("unterminated string at line " +
                                    std::to_string(line));
        }
        token.text = std::string(script.substr(i + 1, end - i - 1));
        i = end + 1;
        break;
      }
      default: {
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
          size_t end = i;
          while (end < script.size() &&
                 (std::isalnum(static_cast<unsigned char>(script[end])) ||
                  script[end] == '_')) {
            ++end;
          }
          token.type = TokenType::kIdentifier;
          token.text = std::string(script.substr(i, end - i));
          i = end;
        } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
                   c == '+' || c == '.') {
          size_t end = i + 1;
          while (end < script.size() &&
                 (std::isdigit(static_cast<unsigned char>(script[end])) ||
                  script[end] == '.' || script[end] == 'e' ||
                  script[end] == 'E' ||
                  ((script[end] == '-' || script[end] == '+') &&
                   (script[end - 1] == 'e' || script[end - 1] == 'E')))) {
            ++end;
          }
          token.type = TokenType::kNumber;
          token.text = std::string(script.substr(i, end - i));
          // std::from_chars rejects an explicit leading '+'.
          auto value = ParseDouble(token.text.front() == '+'
                                       ? std::string_view(token.text).substr(1)
                                       : std::string_view(token.text));
          if (!value.ok()) {
            return Status::ParseError("bad number '" + token.text +
                                      "' at line " + std::to_string(line));
          }
          token.number = value.value();
          i = end;
        } else {
          return Status::ParseError(std::string("unexpected character '") + c +
                                    "' at line " + std::to_string(line));
        }
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.type = TokenType::kEnd;
  end_token.line = line;
  tokens.push_back(end_token);
  return tokens;
}

}  // namespace shadoop::pigeon
