#ifndef SHADOOP_PIGEON_AST_H_
#define SHADOOP_PIGEON_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "geometry/envelope.h"
#include "geometry/point.h"
#include "index/partition.h"
#include "index/record_shape.h"

namespace shadoop::pigeon {

/// Dataset-producing expressions of the Pigeon language.
///
///   LOAD '<path>' AS (POINT | RECTANGLE | POLYGON)
///   LOAD '<path>' APPEND <name>   -- ingest a batch into a catalog dataset
///   LOADINDEX '<path>'
///   INDEX <name> WITH (AUTO | GRID | STR | STR+ | QUADTREE | KDTREE |
///                      ZCURVE | HILBERT) [INTO '<path>']
///     -- AUTO defers the technique to the partitioning advisor (falls
///     -- back to STR when the optimizer is off)
///   RANGE <name> RECTANGLE(x1, y1, x2, y2)
///   COUNT <name> RECTANGLE(x1, y1, x2, y2)
///   KNN <name> POINT(x, y) K <k>
///   SJOIN <name>, <name>
///   KNNJOIN <name>, <name> K <k>
///   SKYLINE <name>
///   CONVEXHULL <name>
///   CLOSESTPAIR <name>
///   FARTHESTPAIR <name>
///   UNION <name>
struct Expr {
  enum class Kind {
    kLoad,
    kAppend,
    kLoadIndex,
    kIndex,
    kRange,
    kCount,
    kKnn,
    kJoin,
    kKnnJoin,
    kSkyline,
    kConvexHull,
    kClosestPair,
    kFarthestPair,
    kUnion,
  };

  Kind kind = Kind::kLoad;
  int line = 1;

  // kLoad / kAppend / kIndex.
  std::string path;
  index::ShapeType shape = index::ShapeType::kPoint;
  index::PartitionScheme scheme = index::PartitionScheme::kStr;
  /// kIndex: WITH AUTO — the advisor picks `scheme` at execution time.
  bool auto_scheme = false;

  // Operation inputs: referenced dataset names.
  std::string source;
  std::string source_b;  // kJoin only.

  // Operation parameters.
  Envelope range;   // kRange / kCount.
  Point query;      // kKnn.
  size_t k = 1;     // kKnn / kKnnJoin.
};

/// Top-level statements.
///
///   <name> = <expr> ;
///   STORE <name> INTO '<path>' ;
///   DUMP <name> ;
///   EXPLAIN <name> ;   -- describes the binding (kind, index, size)
///   SET tenant '<name>' ;         -- session knobs (admission control)
///   SET tenant_slots <n> ;
///   SET max_task_attempts <n> ;
///   SET snapshot_version <n> ;    -- pin catalog datasets to version n
///                                 -- (0 follows the latest version)
///   SET optimizer (on | off) ;    -- cost-based planning (default on;
///                                 -- off reproduces the legacy plans)
struct Statement {
  enum class Kind { kAssign, kStore, kDump, kExplain, kSet };

  Kind kind = Kind::kAssign;
  int line = 1;
  std::string target;  // Assigned name, dataset to store/dump, or SET key.
  std::string path;    // kStore destination; kSet string value.
  double number = 0;   // kSet numeric value.
  Expr expr;           // kAssign only.

  /// The statement's source rendered canonically from its tokens (one
  /// space between tokens, strings re-quoted, comments gone). Two
  /// spellings that tokenize identically render identically, which is
  /// what the server's result cache keys on (after normalization).
  std::string text;
};

using Script = std::vector<Statement>;

}  // namespace shadoop::pigeon

#endif  // SHADOOP_PIGEON_AST_H_
