#ifndef SHADOOP_PIGEON_TOKEN_H_
#define SHADOOP_PIGEON_TOKEN_H_

#include <string>

namespace shadoop::pigeon {

enum class TokenType {
  kIdentifier,  // dataset names and keywords (keywords resolved in parser)
  kString,      // '...' single-quoted
  kNumber,
  kEquals,
  kComma,
  kSemicolon,
  kLeftParen,
  kRightParen,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // Identifier name, string contents, or number text.
  double number = 0;  // Valid when type == kNumber.
  int line = 1;       // 1-based source line, for error messages.
};

const char* TokenTypeName(TokenType type);

}  // namespace shadoop::pigeon

#endif  // SHADOOP_PIGEON_TOKEN_H_
