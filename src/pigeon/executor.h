#ifndef SHADOOP_PIGEON_EXECUTOR_H_
#define SHADOOP_PIGEON_EXECUTOR_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/dataset_catalog.h"
#include "common/result.h"
#include "core/op_stats.h"
#include "index/index_builder.h"
#include "mapreduce/admission_controller.h"
#include "mapreduce/job_runner.h"
#include "optimizer/optimizer.h"
#include "pigeon/ast.h"

namespace shadoop::pigeon {

/// A bound dataset in the executor's environment: a raw HDFS file, a
/// spatially indexed file, or materialized result lines.
struct Dataset {
  enum class Kind { kFile, kIndexed, kLines };

  Kind kind = Kind::kFile;
  index::ShapeType shape = index::ShapeType::kPoint;
  std::string path;                            // kFile / kIndexed.
  std::optional<index::SpatialFileInfo> info;  // kIndexed.
  std::vector<std::string> lines;              // kLines.

  /// Catalog lineage of an indexed dataset (empty for plain files and
  /// results): the binding is pinned to `version` of `catalog_name`, and
  /// stays on that snapshot while appends create later versions.
  std::string catalog_name;
  uint64_t version = 0;
};

/// Result of running a script: everything DUMP produced, per-dataset row
/// counts, and the aggregated cost of all jobs the script triggered.
struct ExecutionReport {
  std::vector<std::string> dump_output;
  core::OpStats stats;
};

/// Executes Pigeon scripts against a cluster. The executor routes each
/// logical operation to the best physical operator available: indexed
/// inputs use the SpatialHadoop operators (pruned splits, distributed
/// join), unindexed inputs fall back to the Hadoop full-scan operators.
/// This routing *is* the demo's "flexibility" claim: the script does not
/// change when an index appears, only its cost does.
class Executor {
 public:
  /// A standalone session: the executor owns its dataset catalog.
  explicit Executor(mapreduce::JobRunner* runner)
      : runner_(runner),
        owned_catalog_(std::make_unique<catalog::DatasetCatalog>(runner)),
        catalog_(owned_catalog_.get()) {}

  /// A server session (DESIGN.md §14): many executors share one catalog
  /// so datasets and their indexes are loaded once and read by every
  /// session. The catalog must outlive the executor; the caller (the
  /// query server) is responsible for serializing writes — catalog reads
  /// themselves are thread-safe.
  Executor(mapreduce::JobRunner* runner, catalog::DatasetCatalog* catalog)
      : runner_(runner), catalog_(catalog) {}

  /// Parses and runs `script`. The environment persists across calls, so
  /// a REPL can feed statements incrementally.
  Result<ExecutionReport> Execute(std::string_view script);

  /// Like Execute, but accumulates into an existing report. The query
  /// server keeps one cumulative report per session, so splitting a
  /// script across many requests yields byte-identical dump output and
  /// EXPLAIN counters to running it in one Execute call.
  Status ExecuteInto(std::string_view script, ExecutionReport* report);

  /// Runs one already-parsed statement against the session. The server's
  /// result cache sits between Parse and this call: cacheable assignments
  /// are intercepted, everything else flows through unchanged.
  Status ExecuteStatement(const Statement& stmt, ExecutionReport* report);

  /// Resolves `name` exactly as a query would (including any SET
  /// snapshot_version re-pinning). `line` anchors error messages.
  Result<Dataset> ResolveBinding(const std::string& name, int line) const {
    return LookUp(name, line);
  }

  /// Binds `name` directly, bypassing evaluation — the server uses this
  /// to pre-bind shared catalog datasets into a fresh session and to
  /// install result-cache hits.
  void Bind(const std::string& name, Dataset dataset) {
    env_[name] = std::move(dataset);
  }

  /// Access to bound datasets (for tests and tooling).
  const std::map<std::string, Dataset>& environment() const { return env_; }

  /// The session's dataset catalog: every INDEX registers its result here
  /// (version 1), `LOAD ... APPEND` grows it, and `SET snapshot_version`
  /// re-pins catalog-bound datasets at lookup time.
  catalog::DatasetCatalog& catalog() { return *catalog_; }
  uint64_t snapshot_version() const { return snapshot_version_; }

  /// Namespace prefix for the temporary files that materialize result
  /// datasets ("/.pigeon_tmp_<ns><n>"). Concurrent server sessions share
  /// one file system, so each session must set a unique prefix; the
  /// default (empty) keeps standalone paths byte-identical to before.
  void set_temp_namespace(std::string ns) { temp_namespace_ = std::move(ns); }

  /// Multi-tenant admission (DESIGN.md §10). A session starts with no
  /// controller — jobs run unconstrained, byte-identical to the
  /// pre-admission runtime. The first `SET tenant`/`SET tenant_slots`
  /// statement lazily creates a session-owned controller sized to the
  /// runner's cluster; call set_admission_controller first to share one
  /// controller across sessions instead (multi-session fairness). The
  /// executor does not take ownership of a shared controller.
  void set_admission_controller(mapreduce::AdmissionController* controller) {
    admission_ = controller;
    BindAdmission();
  }
  mapreduce::AdmissionController* admission_controller() const {
    return admission_;
  }
  const std::string& tenant() const { return tenant_; }

  /// Cost-based planning (DESIGN.md §15). On by default; `SET optimizer
  /// off` pins every operation to the legacy hard-coded plan, reproducing
  /// pre-optimizer rows, counters and charges byte-identically.
  bool optimizer_enabled() const { return optimizer_on_; }

  /// Every plan decision this session made, in execution order. EXPLAIN
  /// renders the latest decision for its target as the `; plan:` segment.
  const std::vector<optimizer::PlanDecision>& plan_log() const {
    return plan_log_;
  }

  /// The plan the optimizer would pick for `expr` right now, as a short
  /// token ("dj.l", "sjmr", "pruned", ...). "legacy" when the optimizer
  /// is off, "default" for operations without costed alternatives (or
  /// when the inputs cannot be resolved — the statement will fail with
  /// its own error). The server folds this into its result-cache key so a
  /// plan change invalidates structurally.
  std::string PlanFingerprint(const Expr& expr) const;

 private:
  /// `bind_name` is the assignment target; INDEX and LOADINDEX register
  /// catalog datasets under it.
  Result<Dataset> Eval(const Expr& expr, ExecutionReport* report,
                       const std::string& bind_name);
  Result<Dataset> LookUp(const std::string& name, int line) const;

  /// Materializes a dataset as an HDFS file (writing result lines to a
  /// temporary file when needed) so it can feed another operation.
  Result<std::string> EnsureFile(const Dataset& dataset);

  /// The physical-operator router behind every query expression: indexed
  /// datasets run `spatial` (the pruned SpatialJobBuilder plan over the
  /// global index), everything else is materialized as a file and runs
  /// `hadoop` (the full-scan plan). `allow_spatial` lets an operation add
  /// extra requirements on the index (e.g. UNION needs disjoint cells).
  template <typename Spatial, typename Hadoop>
  auto Dispatch(const Dataset& source, Spatial&& spatial, Hadoop&& hadoop,
                bool allow_spatial = true) -> decltype(hadoop(std::string())) {
    if (source.kind == Dataset::Kind::kIndexed && allow_spatial) {
      return spatial(*source.info);
    }
    SHADOOP_ASSIGN_OR_RETURN(std::string path, EnsureFile(source));
    return hadoop(path);
  }

  /// Ensures an admission controller exists (creating the session-owned
  /// one if none was shared) and rebinds the runner to it.
  void EnsureAdmission();
  void BindAdmission();

  mapreduce::JobRunner* runner_;
  std::unique_ptr<catalog::DatasetCatalog> owned_catalog_;
  catalog::DatasetCatalog* catalog_;
  /// SET snapshot_version override: n >= 1 re-resolves catalog-bound
  /// datasets to version n at lookup time. An *explicit* `SET
  /// snapshot_version 0` (snapshot_follow_latest_) re-pins each binding
  /// to the catalog's latest version at its next use — a session that
  /// never touched the knob keeps each binding's own pinned version.
  uint64_t snapshot_version_ = 0;
  bool snapshot_follow_latest_ = false;
  std::map<std::string, Dataset> env_;
  int temp_counter_ = 0;
  std::string temp_namespace_;
  std::string tenant_ = "default";
  std::unique_ptr<mapreduce::AdmissionController> owned_admission_;
  mapreduce::AdmissionController* admission_ = nullptr;
  bool optimizer_on_ = true;
  std::vector<optimizer::PlanDecision> plan_log_;
};

}  // namespace shadoop::pigeon

#endif  // SHADOOP_PIGEON_EXECUTOR_H_
