#include "pigeon/executor.h"

#include <cstdio>

#include "core/aggregate_op.h"
#include "core/closest_pair_op.h"
#include "core/convex_hull_op.h"
#include "core/farthest_pair_op.h"
#include "core/knn.h"
#include "core/knn_join.h"
#include "core/range_query.h"
#include "core/skyline_op.h"
#include "core/spatial_join.h"
#include "core/union_op.h"
#include "geometry/wkt.h"
#include "pigeon/parser.h"

namespace shadoop::pigeon {
namespace {

Status ErrorAt(int line, const std::string& message) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                 message);
}

/// Prefixes a failure (e.g. a job abort carrying the failing task id and
/// attempt history) with the statement's line, preserving the status code
/// so callers can still distinguish I/O from user errors. Statuses already
/// anchored to a line pass through untouched.
Status AtLine(int line, const Status& status) {
  if (status.ok() || status.message().rfind("line ", 0) == 0) return status;
  return Status(status.code(),
                "line " + std::to_string(line) + ": " + status.message());
}

std::vector<std::string> PointsToLines(const std::vector<Point>& points) {
  std::vector<std::string> lines;
  lines.reserve(points.size());
  for (const Point& p : points) lines.push_back(PointToCsv(p));
  return lines;
}

}  // namespace

Result<ExecutionReport> Executor::Execute(std::string_view script) {
  ExecutionReport report;
  SHADOOP_RETURN_NOT_OK(ExecuteInto(script, &report));
  return report;
}

Status Executor::ExecuteInto(std::string_view script,
                             ExecutionReport* report) {
  SHADOOP_ASSIGN_OR_RETURN(Script statements, Parse(script));
  for (const Statement& stmt : statements) {
    SHADOOP_RETURN_NOT_OK(ExecuteStatement(stmt, report));
  }
  return Status::OK();
}

Status Executor::ExecuteStatement(const Statement& stmt,
                                  ExecutionReport* report_ptr) {
  ExecutionReport& report = *report_ptr;
  {
    switch (stmt.kind) {
      case Statement::Kind::kAssign: {
        Result<Dataset> dataset = Eval(stmt.expr, &report, stmt.target);
        if (!dataset.ok()) return AtLine(stmt.line, dataset.status());
        env_[stmt.target] = std::move(dataset).value();
        break;
      }
      case Statement::Kind::kStore: {
        SHADOOP_ASSIGN_OR_RETURN(Dataset dataset,
                                 LookUp(stmt.target, stmt.line));
        if (dataset.kind == Dataset::Kind::kLines) {
          SHADOOP_RETURN_NOT_OK(
              runner_->file_system()->WriteLines(stmt.path, dataset.lines));
        } else {
          SHADOOP_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                                   runner_->file_system()->ReadLines(
                                       dataset.path));
          SHADOOP_RETURN_NOT_OK(
              runner_->file_system()->WriteLines(stmt.path, lines));
        }
        break;
      }
      case Statement::Kind::kSet: {
        if (stmt.target == "TENANT") {
          tenant_ = stmt.path;
          EnsureAdmission();
        } else if (stmt.target == "TENANT_SLOTS") {
          EnsureAdmission();
          admission_->SetTenantSlots(tenant_, static_cast<int>(stmt.number));
        } else if (stmt.target == "MAX_TASK_ATTEMPTS") {
          runner_->set_max_task_attempts_override(
              static_cast<int>(stmt.number));
        } else if (stmt.target == "OPTIMIZER") {
          optimizer_on_ = stmt.path == "on";
        } else if (stmt.target == "SNAPSHOT_VERSION") {
          snapshot_version_ = static_cast<uint64_t>(stmt.number);
          // An explicit `SET snapshot_version 0` means "follow the
          // latest version", re-pinned at each binding's next use — not
          // "keep whatever snapshot the binding happens to hold". A
          // server session that inherited a shared binding would
          // otherwise silently read a stale version forever.
          snapshot_follow_latest_ = snapshot_version_ == 0;
        } else {
          return ErrorAt(stmt.line,
                         "unknown session knob '" + stmt.target + "'");
        }
        break;
      }
      case Statement::Kind::kExplain: {
        SHADOOP_ASSIGN_OR_RETURN(Dataset dataset,
                                 LookUp(stmt.target, stmt.line));
        std::string line = "dataset '" + stmt.target + "': ";
        switch (dataset.kind) {
          case Dataset::Kind::kFile:
            line += "raw file '" + dataset.path + "' (shape=" +
                    index::ShapeTypeName(dataset.shape) +
                    "); queries use full-scan Hadoop operators";
            break;
          case Dataset::Kind::kIndexed: {
            const index::GlobalIndex& gi = dataset.info->global_index;
            size_t records = 0;
            for (const auto& p : gi.partitions()) records += p.num_records;
            line += "indexed file '" + dataset.path + "' (scheme=" +
                    index::PartitionSchemeName(gi.scheme()) + ", shape=" +
                    index::ShapeTypeName(dataset.shape) + ", partitions=" +
                    std::to_string(gi.NumPartitions()) + ", records=" +
                    std::to_string(records) + ", local_indexes=" +
                    (dataset.info->has_local_indexes ? "yes" : "no");
            // Catalog-bound datasets also surface their pinned version and
            // the skew metric driving incremental repartitioning.
            if (!dataset.catalog_name.empty()) {
              auto latest = catalog_->LatestVersion(dataset.catalog_name);
              auto vstats =
                  catalog_->Stats(dataset.catalog_name, dataset.version);
              if (latest.ok() && vstats.ok()) {
                char skew[32];
                std::snprintf(skew, sizeof(skew), "%.2f", vstats->skew);
                line += ", version=" + std::to_string(dataset.version) + "/" +
                        std::to_string(latest.value()) + ", skew=" + skew;
              }
            }
            line += "); queries use pruned SpatialHadoop operators";
            break;
          }
          case Dataset::Kind::kLines:
            line += "materialized result (" +
                    std::to_string(dataset.lines.size()) + " records)";
            break;
        }
        // Fault-tolerance work done by the script so far; absent on clean
        // runs so existing EXPLAIN output stays byte-identical.
        const mapreduce::JobCost& cost = report.stats.cost;
        if (cost.task_retries > 0 || cost.speculative_launched > 0 ||
            cost.replica_failovers > 0) {
          line += "; exec: task_retries=" +
                  std::to_string(cost.task_retries) + ", speculative=" +
                  std::to_string(cost.speculative_launched) + "/won=" +
                  std::to_string(cost.speculative_won) +
                  ", replica_failovers=" +
                  std::to_string(cost.replica_failovers);
        }
        // Admission-control work, same nonzero-only contract: sessions
        // that never queued (in particular every session without SET
        // tenant) keep byte-identical EXPLAIN output.
        if (cost.admission_queued > 0 || cost.admission_wait_ms > 0 ||
            cost.admission_preempted_specs > 0) {
          line += "; admission: queued=" +
                  std::to_string(cost.admission_queued) + ", wait_ms=" +
                  std::to_string(static_cast<int64_t>(
                      cost.admission_wait_ms + 0.5)) +
                  ", preempted_specs=" +
                  std::to_string(cost.admission_preempted_specs);
        }
        // Ingest work, same nonzero-only contract: ingest.* counters only
        // exist once an append ran, so bulk-only scripts keep byte-
        // identical EXPLAIN output.
        std::string ingest;
        for (const auto& [name, value] : report.stats.counters.values()) {
          if (name.rfind("ingest.", 0) != 0 || value == 0) continue;
          ingest += (ingest.empty() ? "" : ", ") + name.substr(7) + "=" +
                    std::to_string(value);
        }
        if (!ingest.empty()) line += "; ingest: " + ingest;
        // Artifact-cache reuse across the jobs this runner executed —
        // lifetime counts, diagnostics only (the cache is a wall-clock
        // optimization; simulated charges are identical on hit and
        // miss). Nonzero-only: a session that never consulted the cache
        // keeps byte-identical EXPLAIN output.
        const mapreduce::ArtifactCache* acache = runner_->artifact_cache();
        if (acache != nullptr && acache->hits() + acache->misses() > 0) {
          line += "; artifact_cache: hits=" + std::to_string(acache->hits()) +
                  ", misses=" + std::to_string(acache->misses());
        }
        // Result-cache outcomes for this session (server sessions only —
        // a standalone executor never produces cache.* counters).
        const int64_t result_hits =
            report.stats.counters.Get("cache.result_hits");
        const int64_t result_misses =
            report.stats.counters.Get("cache.result_misses");
        if (result_hits > 0 || result_misses > 0) {
          line += "; result_cache: hits=" + std::to_string(result_hits) +
                  ", misses=" + std::to_string(result_misses);
        }
        // The latest plan decision made for this binding, same
        // nonzero-only contract: only operations the optimizer actually
        // planned (joins, ranges, counts, AUTO index builds with the
        // optimizer on) add the segment, so every other EXPLAIN stays
        // byte-identical.
        for (auto it = plan_log_.rbegin(); it != plan_log_.rend(); ++it) {
          if (it->target != stmt.target) continue;
          line += "; plan: " + optimizer::FormatDecision(*it);
          break;
        }
        report.dump_output.push_back(std::move(line));
        break;
      }
      case Statement::Kind::kDump: {
        SHADOOP_ASSIGN_OR_RETURN(Dataset dataset,
                                 LookUp(stmt.target, stmt.line));
        if (dataset.kind == Dataset::Kind::kLines) {
          for (const std::string& line : dataset.lines) {
            report.dump_output.push_back(line);
          }
        } else {
          SHADOOP_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                                   runner_->file_system()->ReadLines(
                                       dataset.path));
          for (std::string& line : lines) {
            report.dump_output.push_back(std::move(line));
          }
        }
        break;
      }
    }
  }
  return Status::OK();
}

void Executor::EnsureAdmission() {
  if (admission_ == nullptr) {
    mapreduce::AdmissionOptions options;
    options.total_slots = runner_->cluster().num_slots;
    owned_admission_ =
        std::make_unique<mapreduce::AdmissionController>(options);
    admission_ = owned_admission_.get();
  }
  BindAdmission();
}

void Executor::BindAdmission() {
  if (admission_ != nullptr) runner_->set_admission(admission_, tenant_);
}

Result<Dataset> Executor::LookUp(const std::string& name, int line) const {
  auto it = env_.find(name);
  if (it == env_.end()) {
    return ErrorAt(line, "unknown dataset '" + name + "'");
  }
  // A SET snapshot_version override re-pins catalog-bound datasets at
  // lookup time, so one session knob retargets every subsequent query
  // without rebinding anything. snapshot_version 0 (explicitly set)
  // resolves to the catalog's latest version at every use, so sessions
  // can opt into fresh reads over a shared, still-ingesting dataset.
  if (!it->second.catalog_name.empty()) {
    uint64_t want = snapshot_version_;
    if (want == 0 && snapshot_follow_latest_) {
      auto latest = catalog_->LatestVersion(it->second.catalog_name);
      if (!latest.ok()) return AtLine(line, latest.status());
      want = latest.value();
    }
    if (want != 0 && it->second.version != want) {
      auto info = catalog_->Snapshot(it->second.catalog_name, want);
      if (!info.ok()) return AtLine(line, info.status());
      Dataset pinned = it->second;
      pinned.info = std::move(info).value();
      pinned.version = want;
      return pinned;
    }
  }
  return it->second;
}

Result<std::string> Executor::EnsureFile(const Dataset& dataset) {
  if (dataset.kind != Dataset::Kind::kLines) return dataset.path;
  const std::string path =
      "/.pigeon_tmp_" + temp_namespace_ + std::to_string(temp_counter_++);
  SHADOOP_RETURN_NOT_OK(
      runner_->file_system()->WriteLines(path, dataset.lines));
  return path;
}

Result<Dataset> Executor::Eval(const Expr& expr, ExecutionReport* report,
                               const std::string& bind_name) {
  core::OpStats* stats = &report->stats;
  switch (expr.kind) {
    case Expr::Kind::kLoad: {
      if (!runner_->file_system()->Exists(expr.path)) {
        return ErrorAt(expr.line, "no such file '" + expr.path + "'");
      }
      Dataset dataset;
      dataset.kind = Dataset::Kind::kFile;
      dataset.shape = expr.shape;
      dataset.path = expr.path;
      return dataset;
    }
    case Expr::Kind::kAppend: {
      auto it = env_.find(expr.source);
      if (it == env_.end()) {
        return ErrorAt(expr.line, "unknown dataset '" + expr.source + "'");
      }
      const Dataset& target = it->second;
      if (target.catalog_name.empty()) {
        return ErrorAt(expr.line,
                       "APPEND needs a catalog-registered dataset (INDEX or "
                       "LOADINDEX '" + expr.source + "' first)");
      }
      if (!runner_->file_system()->Exists(expr.path)) {
        return ErrorAt(expr.line, "no such file '" + expr.path + "'");
      }
      SHADOOP_ASSIGN_OR_RETURN(
          uint64_t version,
          catalog_->Append(target.catalog_name, expr.path, stats));
      // The binding `expr.source` keeps its pinned snapshot; the assigned
      // result sees the new version.
      SHADOOP_ASSIGN_OR_RETURN(index::SpatialFileInfo info,
                               catalog_->Snapshot(target.catalog_name, version));
      Dataset dataset;
      dataset.kind = Dataset::Kind::kIndexed;
      dataset.shape = info.shape;
      dataset.path = info.data_path;
      dataset.catalog_name = target.catalog_name;
      dataset.version = version;
      dataset.info = std::move(info);
      return dataset;
    }
    case Expr::Kind::kLoadIndex: {
      // A dataset persisted by the catalog (it has an "@current" pointer)
      // reattaches with its full version lineage; a plain indexed file
      // registers as version 1.
      Status opened = catalog_->Open(bind_name, expr.path);
      if (!opened.ok()) {
        return ErrorAt(expr.line, "cannot open index '" + expr.path +
                                      "': " + opened.ToString());
      }
      SHADOOP_ASSIGN_OR_RETURN(uint64_t version,
                               catalog_->LatestVersion(bind_name));
      SHADOOP_ASSIGN_OR_RETURN(index::SpatialFileInfo info,
                               catalog_->Snapshot(bind_name));
      Dataset dataset;
      dataset.kind = Dataset::Kind::kIndexed;
      dataset.shape = info.shape;
      dataset.path = expr.path;
      dataset.info = std::move(info);
      dataset.catalog_name = bind_name;
      dataset.version = version;
      return dataset;
    }
    case Expr::Kind::kCount: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset source, LookUp(expr.source, expr.line));
      bool use_index = true;
      if (optimizer_on_ && source.kind == Dataset::Kind::kIndexed) {
        optimizer::RangePlan plan = optimizer::PlanRange(
            runner_->cluster(), *source.info, expr.range, "count");
        plan.decision.target = bind_name;
        use_index = plan.use_index;
        plan_log_.push_back(std::move(plan.decision));
      }
      SHADOOP_ASSIGN_OR_RETURN(
          int64_t count,
          Dispatch(
              source,
              [&](const index::SpatialFileInfo& info) {
                return core::RangeCountSpatial(runner_, info, expr.range,
                                               stats);
              },
              [&](const std::string& path) {
                return core::RangeCountHadoop(runner_, path, source.shape,
                                              expr.range, stats);
              },
              /*allow_spatial=*/use_index));
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      result.lines = {std::to_string(count)};
      return result;
    }
    case Expr::Kind::kIndex: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset source, LookUp(expr.source, expr.line));
      SHADOOP_ASSIGN_OR_RETURN(std::string source_path, EnsureFile(source));
      index::IndexBuilder builder(runner_);
      index::IndexBuildOptions options;
      options.scheme = expr.scheme;
      options.shape = source.shape;
      if (expr.auto_scheme && optimizer_on_) {
        // WITH AUTO: the advisor scores candidate (technique, granularity)
        // pairs on a deterministic sample of the source file. Master-side
        // work only — no job runs, no counter moves. With the optimizer
        // off, AUTO decays to the STR default the parser installed.
        Result<optimizer::IndexPlan> plan = optimizer::PlanIndexBuild(
            runner_->file_system(), source_path, source.shape);
        if (!plan.ok()) return AtLine(expr.line, plan.status());
        options.scheme = plan->scheme;
        options.target_partitions = plan->target_partitions;
        plan->decision.target = bind_name;
        plan_log_.push_back(std::move(plan->decision));
      }
      std::string dest = expr.path.empty()
                             ? source_path + ".idx_" +
                                   index::PartitionSchemeName(options.scheme)
                             : expr.path;
      // "str+" is not a valid path suffix everywhere; normalize.
      for (char& c : dest) {
        if (c == '+') c = 'p';
      }
      SHADOOP_ASSIGN_OR_RETURN(index::SpatialFileInfo info,
                               builder.Build(source_path, dest, options));
      stats->cost.total_ms += info.build_cost.total_ms;
      stats->cost.bytes_read += info.build_cost.bytes_read;
      stats->cost.bytes_shuffled += info.build_cost.bytes_shuffled;
      stats->cost.bytes_written += info.build_cost.bytes_written;
      stats->jobs_run += 2;  // Analysis + partition jobs.
      Dataset dataset;
      dataset.kind = Dataset::Kind::kIndexed;
      dataset.shape = source.shape;
      dataset.path = dest;
      dataset.info = std::move(info);
      // Register the build as version 1 of the binding, so the dataset is
      // appendable and snapshot-addressable. Pure bookkeeping: no job
      // runs, no counter moves.
      SHADOOP_RETURN_NOT_OK(catalog_->Register(bind_name, *dataset.info));
      dataset.catalog_name = bind_name;
      dataset.version = 1;
      return dataset;
    }
    case Expr::Kind::kRange: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset source, LookUp(expr.source, expr.line));
      bool use_index = true;
      if (optimizer_on_ && source.kind == Dataset::Kind::kIndexed) {
        optimizer::RangePlan plan = optimizer::PlanRange(
            runner_->cluster(), *source.info, expr.range, "range");
        plan.decision.target = bind_name;
        use_index = plan.use_index;
        plan_log_.push_back(std::move(plan.decision));
      }
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      result.shape = source.shape;
      SHADOOP_ASSIGN_OR_RETURN(
          result.lines,
          Dispatch(
              source,
              [&](const index::SpatialFileInfo& info) {
                return core::RangeQuerySpatial(runner_, info, expr.range,
                                               stats);
              },
              [&](const std::string& path) {
                return core::RangeQueryHadoop(runner_, path, source.shape,
                                              expr.range, stats);
              },
              /*allow_spatial=*/use_index));
      return result;
    }
    case Expr::Kind::kKnn: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset source, LookUp(expr.source, expr.line));
      SHADOOP_ASSIGN_OR_RETURN(
          std::vector<core::KnnAnswer> answers,
          Dispatch(
              source,
              [&](const index::SpatialFileInfo& info) {
                return core::KnnSpatial(runner_, info, expr.query, expr.k,
                                        stats);
              },
              [&](const std::string& path) {
                return core::KnnHadoop(runner_, path, source.shape, expr.query,
                                       expr.k, stats);
              }));
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      result.shape = source.shape;
      for (const core::KnnAnswer& a : answers) result.lines.push_back(a.record);
      return result;
    }
    case Expr::Kind::kJoin: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset left, LookUp(expr.source, expr.line));
      SHADOOP_ASSIGN_OR_RETURN(Dataset right,
                               LookUp(expr.source_b, expr.line));
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      result.shape = left.shape;
      if (left.kind == Dataset::Kind::kIndexed &&
          right.kind == Dataset::Kind::kIndexed) {
        core::DjOptions dj_options;
        bool use_sjmr = false;
        if (optimizer_on_) {
          optimizer::JoinPlan plan = optimizer::PlanJoin(
              runner_->cluster(), *left.info, *right.info);
          plan.decision.target = bind_name;
          use_sjmr = plan.strategy == optimizer::JoinStrategy::kSjmr;
          dj_options.build_right =
              plan.strategy == optimizer::JoinStrategy::kDjBuildRight;
          plan_log_.push_back(std::move(plan.decision));
        }
        if (use_sjmr) {
          SHADOOP_ASSIGN_OR_RETURN(
              result.lines,
              core::SjmrJoin(runner_, left.path, left.shape, right.path,
                             right.shape, stats));
        } else {
          SHADOOP_ASSIGN_OR_RETURN(
              result.lines, core::DistributedJoin(runner_, *left.info,
                                                  *right.info, stats,
                                                  dj_options));
        }
      } else {
        SHADOOP_ASSIGN_OR_RETURN(std::string left_path, EnsureFile(left));
        SHADOOP_ASSIGN_OR_RETURN(std::string right_path, EnsureFile(right));
        SHADOOP_ASSIGN_OR_RETURN(
            result.lines,
            core::SjmrJoin(runner_, left_path, left.shape, right_path,
                           right.shape, stats));
      }
      return result;
    }
    case Expr::Kind::kKnnJoin: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset left, LookUp(expr.source, expr.line));
      SHADOOP_ASSIGN_OR_RETURN(Dataset right,
                               LookUp(expr.source_b, expr.line));
      if (left.kind != Dataset::Kind::kIndexed ||
          right.kind != Dataset::Kind::kIndexed) {
        return ErrorAt(expr.line,
                       "KNNJOIN needs two indexed datasets (INDEX both "
                       "inputs first)");
      }
      SHADOOP_ASSIGN_OR_RETURN(
          std::vector<core::KnnJoinAnswer> answers,
          core::KnnJoinSpatial(runner_, *left.info, *right.info, expr.k,
                               stats));
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      result.shape = left.shape;
      for (const core::KnnJoinAnswer& a : answers) {
        result.lines.push_back(a.left + std::string(1, core::kJoinSeparator) +
                               a.right);
      }
      return result;
    }
    case Expr::Kind::kSkyline: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset source, LookUp(expr.source, expr.line));
      SHADOOP_ASSIGN_OR_RETURN(
          std::vector<Point> skyline,
          Dispatch(
              source,
              [&](const index::SpatialFileInfo& info) {
                return core::SkylineSpatial(runner_, info, stats);
              },
              [&](const std::string& path) {
                return core::SkylineHadoop(runner_, path, stats);
              }));
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      result.lines = PointsToLines(skyline);
      return result;
    }
    case Expr::Kind::kConvexHull: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset source, LookUp(expr.source, expr.line));
      SHADOOP_ASSIGN_OR_RETURN(
          std::vector<Point> hull,
          Dispatch(
              source,
              [&](const index::SpatialFileInfo& info) {
                return core::ConvexHullSpatial(runner_, info, stats);
              },
              [&](const std::string& path) {
                return core::ConvexHullHadoop(runner_, path, stats);
              }));
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      result.lines = PointsToLines(hull);
      return result;
    }
    case Expr::Kind::kClosestPair: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset source, LookUp(expr.source, expr.line));
      if (source.kind != Dataset::Kind::kIndexed) {
        return ErrorAt(expr.line,
                       "CLOSESTPAIR needs an indexed dataset (use INDEX "
                       "... WITH GRID/STR+/QUADTREE/KDTREE first)");
      }
      SHADOOP_ASSIGN_OR_RETURN(
          PointPair pair, core::ClosestPairSpatial(runner_, *source.info,
                                                   stats));
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      result.lines = {PointToCsv(pair.first), PointToCsv(pair.second)};
      return result;
    }
    case Expr::Kind::kFarthestPair: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset source, LookUp(expr.source, expr.line));
      SHADOOP_ASSIGN_OR_RETURN(
          PointPair pair,
          Dispatch(
              source,
              [&](const index::SpatialFileInfo& info) {
                return core::FarthestPairSpatial(runner_, info, stats);
              },
              [&](const std::string& path) {
                return core::FarthestPairHadoop(runner_, path, stats);
              }));
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      result.lines = {PointToCsv(pair.first), PointToCsv(pair.second)};
      return result;
    }
    case Expr::Kind::kUnion: {
      SHADOOP_ASSIGN_OR_RETURN(Dataset source, LookUp(expr.source, expr.line));
      if (source.shape != index::ShapeType::kPolygon) {
        return ErrorAt(expr.line, "UNION needs a polygon dataset");
      }
      const bool disjoint = source.kind == Dataset::Kind::kIndexed &&
                            source.info->global_index.IsDisjoint();
      SHADOOP_ASSIGN_OR_RETURN(
          std::vector<Segment> segments,
          Dispatch(
              source,
              [&](const index::SpatialFileInfo& info) {
                return core::UnionSpatialEnhanced(runner_, info, stats);
              },
              [&](const std::string& path) {
                return core::UnionHadoop(runner_, path, stats);
              },
              /*allow_spatial=*/disjoint));
      Dataset result;
      result.kind = Dataset::Kind::kLines;
      for (const Segment& s : segments) {
        result.lines.push_back(core::SegmentToCsv(s));
      }
      return result;
    }
  }
  return Status::Internal("unhandled expression kind");
}

std::string Executor::PlanFingerprint(const Expr& expr) const {
  if (!optimizer_on_) return "legacy";
  switch (expr.kind) {
    case Expr::Kind::kJoin: {
      Result<Dataset> left = LookUp(expr.source, expr.line);
      Result<Dataset> right = LookUp(expr.source_b, expr.line);
      if (!left.ok() || !right.ok()) return "default";
      if (left->kind != Dataset::Kind::kIndexed ||
          right->kind != Dataset::Kind::kIndexed) {
        return "default";
      }
      return optimizer::PlanJoin(runner_->cluster(), *left->info,
                                 *right->info)
          .decision.chosen;
    }
    case Expr::Kind::kRange:
    case Expr::Kind::kCount: {
      Result<Dataset> source = LookUp(expr.source, expr.line);
      if (!source.ok() || source->kind != Dataset::Kind::kIndexed) {
        return "default";
      }
      return optimizer::PlanRange(
                 runner_->cluster(), *source->info, expr.range,
                 expr.kind == Expr::Kind::kRange ? "range" : "count")
          .decision.chosen;
    }
    default:
      return "default";
  }
}

}  // namespace shadoop::pigeon
