#ifndef SHADOOP_INDEX_GRID_PARTITIONER_H_
#define SHADOOP_INDEX_GRID_PARTITIONER_H_

#include "index/partitioner.h"

namespace shadoop::index {

/// Uniform grid partitioning: ceil(sqrt(n)) columns x rows over the input
/// MBR. Ignores the sample — the only technique that cannot adapt to
/// skew, which experiment E2 demonstrates.
class GridPartitioner : public Partitioner {
 public:
  PartitionScheme scheme() const override { return PartitionScheme::kGrid; }

  Status Construct(const Envelope& space, const std::vector<Point>& sample,
                   int target_partitions) override;

  int NumCells() const override { return cols_ * rows_; }
  Envelope CellExtent(int id) const override;
  int AssignPoint(const Point& p) const override;

  int cols() const { return cols_; }
  int rows() const { return rows_; }

 protected:
  std::vector<int> OverlappingCells(const Envelope& extent) const override;

 private:
  int ColumnOf(double x) const;
  int RowOf(double y) const;

  Envelope space_;
  int cols_ = 0;
  int rows_ = 0;
};

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_GRID_PARTITIONER_H_
