#include "index/space_filling_curve.h"

#include <algorithm>

namespace shadoop::index {

void QuantizePoint(const Point& p, const Envelope& space, uint32_t* ix,
                   uint32_t* iy) {
  constexpr uint32_t kMax = (1u << kCurveBits) - 1;
  const double w = space.Width();
  const double h = space.Height();
  const double fx = w > 0 ? (p.x - space.min_x()) / w : 0.0;
  const double fy = h > 0 ? (p.y - space.min_y()) / h : 0.0;
  *ix = static_cast<uint32_t>(
      std::clamp(fx * (kMax + 1.0), 0.0, static_cast<double>(kMax)));
  *iy = static_cast<uint32_t>(
      std::clamp(fy * (kMax + 1.0), 0.0, static_cast<double>(kMax)));
}

namespace {

uint64_t InterleaveBits(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

}  // namespace

uint64_t ZOrderValue(const Point& p, const Envelope& space) {
  uint32_t ix = 0;
  uint32_t iy = 0;
  QuantizePoint(p, space, &ix, &iy);
  return InterleaveBits(ix) | (InterleaveBits(iy) << 1);
}

uint64_t HilbertValue(const Point& p, const Envelope& space) {
  uint32_t x = 0;
  uint32_t y = 0;
  QuantizePoint(p, space, &x, &y);
  // Classic xy -> d conversion (Hilbert, via quadrant rotation).
  uint64_t d = 0;
  for (uint32_t s = 1u << (kCurveBits - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) > 0 ? 1 : 0;
    const uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    // Rotate the quadrant.
    if (ry == 0) {
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
  }
  return d;
}

}  // namespace shadoop::index
