#include "index/record_shape.h"

#include <atomic>

#include "common/string_util.h"
#include "geometry/wkt.h"

namespace shadoop::index {
namespace {

std::atomic<uint64_t> g_geometry_parses{0};

}  // namespace

uint64_t GeometryParseCount() {
  return g_geometry_parses.load(std::memory_order_relaxed);
}

void ResetGeometryParseCount() {
  g_geometry_parses.store(0, std::memory_order_relaxed);
}

const char* ShapeTypeName(ShapeType type) {
  switch (type) {
    case ShapeType::kPoint:
      return "point";
    case ShapeType::kRectangle:
      return "rectangle";
    case ShapeType::kPolygon:
      return "polygon";
  }
  return "?";
}

Result<ShapeType> ParseShapeType(const std::string& name) {
  const std::string upper = AsciiToUpper(name);
  if (upper == "POINT") return ShapeType::kPoint;
  if (upper == "RECTANGLE" || upper == "RECT") return ShapeType::kRectangle;
  if (upper == "POLYGON") return ShapeType::kPolygon;
  return Status::InvalidArgument("unknown shape type: " + name);
}

std::string_view GeometryField(std::string_view record) {
  const size_t tab = record.find('\t');
  return tab == std::string_view::npos ? record : record.substr(0, tab);
}

bool IsMetadataRecord(std::string_view record) {
  return !record.empty() && record.front() == '#';
}

std::string EncodeLocalIndexHeader(const std::vector<Envelope>& envelopes) {
  std::string header = "#lidx ";
  for (size_t i = 0; i < envelopes.size(); ++i) {
    if (i > 0) header.push_back('|');
    header += EnvelopeToCsv(envelopes[i]);
  }
  return header;
}

Result<std::vector<Envelope>> DecodeLocalIndexHeader(
    std::string_view record) {
  constexpr std::string_view kPrefix = "#lidx ";
  if (record.substr(0, kPrefix.size()) != kPrefix) {
    return Status::ParseError("not a local-index header");
  }
  std::vector<Envelope> envelopes;
  FieldCursor entries(record.substr(kPrefix.size()), '|');
  std::string_view field;
  while (entries.Next(&field)) {
    if (field.empty()) continue;
    // Slots for records that failed to parse at build time are stored as
    // the empty envelope ("inf,inf,-inf,-inf"), which the strict
    // rectangle parser rejects — decode the coordinates directly. Fields
    // are scanned in place: this decode runs once per partition per query,
    // over every record's envelope.
    FieldCursor coords(field, ',');
    std::string_view c[4];
    std::string_view extra;
    if (!coords.Next(&c[0]) || !coords.Next(&c[1]) || !coords.Next(&c[2]) ||
        !coords.Next(&c[3]) || coords.Next(&extra)) {
      return Status::ParseError("bad local-index entry: '" +
                                std::string(field) + "'");
    }
    double v[4];
    for (int i = 0; i < 4; ++i) {
      SHADOOP_ASSIGN_OR_RETURN(v[i], ParseDouble(c[i]));
    }
    envelopes.push_back(v[2] < v[0] || v[3] < v[1]
                            ? Envelope()
                            : Envelope(v[0], v[1], v[2], v[3]));
  }
  return envelopes;
}

Result<Envelope> RecordEnvelope(ShapeType type, std::string_view record) {
  g_geometry_parses.fetch_add(1, std::memory_order_relaxed);
  const std::string_view geom = GeometryField(record);
  switch (type) {
    case ShapeType::kPoint: {
      SHADOOP_ASSIGN_OR_RETURN(Point p, ParsePointCsv(geom));
      return Envelope::FromPoint(p);
    }
    case ShapeType::kRectangle:
      return ParseEnvelopeCsv(geom);
    case ShapeType::kPolygon: {
      SHADOOP_ASSIGN_OR_RETURN(Polygon poly, ParsePolygonWkt(geom));
      return poly.Bounds();
    }
  }
  return Status::InvalidArgument("unknown shape type");
}

Result<Point> RecordPoint(std::string_view record) {
  g_geometry_parses.fetch_add(1, std::memory_order_relaxed);
  return ParsePointCsv(GeometryField(record));
}

Result<Polygon> RecordPolygon(std::string_view record) {
  g_geometry_parses.fetch_add(1, std::memory_order_relaxed);
  return ParsePolygonWkt(GeometryField(record));
}

Result<Envelope> RecordRectangle(std::string_view record) {
  g_geometry_parses.fetch_add(1, std::memory_order_relaxed);
  return ParseEnvelopeCsv(GeometryField(record));
}

}  // namespace shadoop::index
