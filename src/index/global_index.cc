#include "index/global_index.h"

#include <bit>
#include <cstdint>
#include <limits>

#include "common/string_util.h"
#include "geometry/wkt.h"
#include "simd/mbr_kernels.h"

namespace shadoop::index {

std::vector<std::pair<int, int>> OverlappingPartitionPairs(
    const GlobalIndex& a, const GlobalIndex& b) {
  // One batch sweep over b's MBR lanes per a-partition; hit order is
  // ascending, so the pair list is identical to the old nested loops.
  std::vector<std::pair<int, int>> pairs;
  for (const Partition& pa : a.partitions()) {
    for (int ib : b.OverlappingPartitions(pa.mbr)) {
      pairs.emplace_back(pa.id, ib);
    }
  }
  return pairs;
}

void GlobalIndex::BuildMbrLanes() {
  const size_t n = partitions_.size();
  mbr_min_x_.resize(n);
  mbr_min_y_.resize(n);
  mbr_max_x_.resize(n);
  mbr_max_y_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    mbr_min_x_[i] = partitions_[i].mbr.min_x();
    mbr_min_y_[i] = partitions_[i].mbr.min_y();
    mbr_max_x_[i] = partitions_[i].mbr.max_x();
    mbr_max_y_[i] = partitions_[i].mbr.max_y();
  }
}

Envelope GlobalIndex::Bounds() const {
  Envelope bounds;
  for (const Partition& p : partitions_) bounds.ExpandToInclude(p.mbr);
  return bounds;
}

std::vector<int> GlobalIndex::OverlappingPartitions(
    const Envelope& query) const {
  std::vector<int> ids;
  if (partitions_.empty() || query.IsEmpty()) return ids;
  const simd::BoxLanes lanes{mbr_min_x_.data(), mbr_min_y_.data(),
                             mbr_max_x_.data(), mbr_max_y_.data()};
  std::vector<uint64_t> bits(simd::BitmapWords(partitions_.size()));
  simd::IntersectBoxBitmap(lanes, partitions_.size(), query.min_x(),
                           query.min_y(), query.max_x(), query.max_y(),
                           bits.data());
  for (size_t w = 0; w < bits.size(); ++w) {
    uint64_t word = bits[w];
    while (word != 0) {
      const size_t i = w * 64 + static_cast<size_t>(std::countr_zero(word));
      word &= word - 1;
      ids.push_back(partitions_[i].id);
    }
  }
  return ids;
}

int GlobalIndex::NearestPartition(const Point& p) const {
  const std::vector<double> distances = PartitionDistances(p);
  int best = -1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < partitions_.size(); ++i) {
    if (distances[i] < best_dist) {
      best_dist = distances[i];
      best = partitions_[i].id;
    }
  }
  return best;
}

std::vector<double> GlobalIndex::PartitionDistances(const Point& p) const {
  std::vector<double> distances(partitions_.size());
  if (partitions_.empty()) return distances;
  const simd::BoxLanes lanes{mbr_min_x_.data(), mbr_min_y_.data(),
                             mbr_max_x_.data(), mbr_max_y_.data()};
  simd::BoxMinDistance(lanes, partitions_.size(), p.x, p.y,
                       distances.data());
  return distances;
}

std::vector<std::string> GlobalIndex::ToLines() const {
  // The 13th (source path) field appears only when some partition lives
  // outside the data file, so pre-catalog masters stay byte-identical.
  bool any_source = false;
  for (const Partition& p : partitions_) {
    if (!p.source_path.empty()) any_source = true;
  }
  std::vector<std::string> lines;
  lines.reserve(partitions_.size());
  for (const Partition& p : partitions_) {
    std::string line = std::to_string(p.id) + "," +
                       std::to_string(p.block_index) + "," +
                       EnvelopeToCsv(p.cell) + "," + EnvelopeToCsv(p.mbr) +
                       "," + std::to_string(p.num_records) + "," +
                       std::to_string(p.num_bytes);
    if (any_source) line += "," + p.source_path;
    lines.push_back(std::move(line));
  }
  return lines;
}

Result<GlobalIndex> GlobalIndex::FromLines(
    PartitionScheme scheme, const std::vector<std::string>& lines) {
  std::vector<Partition> partitions;
  partitions.reserve(lines.size());
  for (const std::string& line : lines) {
    auto fields = SplitString(line, ',');
    // 12 fields is the original format; 13 adds the per-partition source
    // path of versioned datasets (possibly empty for "the data file").
    if (fields.size() != 12 && fields.size() != 13) {
      return Status::ParseError("bad master-file line: '" + line + "'");
    }
    Partition p;
    if (fields.size() == 13) p.source_path = std::string(fields[12]);
    SHADOOP_ASSIGN_OR_RETURN(int64_t id, ParseInt64(fields[0]));
    SHADOOP_ASSIGN_OR_RETURN(int64_t block, ParseInt64(fields[1]));
    double coords[8];
    for (int i = 0; i < 8; ++i) {
      SHADOOP_ASSIGN_OR_RETURN(coords[i], ParseDouble(fields[2 + i]));
    }
    SHADOOP_ASSIGN_OR_RETURN(int64_t records, ParseInt64(fields[10]));
    SHADOOP_ASSIGN_OR_RETURN(int64_t bytes, ParseInt64(fields[11]));
    p.id = static_cast<int>(id);
    p.block_index = static_cast<size_t>(block);
    p.cell = Envelope(coords[0], coords[1], coords[2], coords[3]);
    p.mbr = Envelope(coords[4], coords[5], coords[6], coords[7]);
    p.num_records = static_cast<size_t>(records);
    p.num_bytes = static_cast<size_t>(bytes);
    partitions.push_back(p);
  }
  return GlobalIndex(scheme, std::move(partitions));
}

}  // namespace shadoop::index
