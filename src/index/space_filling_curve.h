#ifndef SHADOOP_INDEX_SPACE_FILLING_CURVE_H_
#define SHADOOP_INDEX_SPACE_FILLING_CURVE_H_

#include <cstdint>

#include "geometry/envelope.h"
#include "geometry/point.h"

namespace shadoop::index {

/// Resolution of the curve quantization grid: coordinates are quantized
/// to 16 bits per dimension, giving 32-bit curve keys. 2^16 cells per axis
/// is far finer than any partitioning this library produces.
inline constexpr int kCurveBits = 16;

/// Quantizes `p` within `space` to integer grid coordinates in
/// [0, 2^kCurveBits).
void QuantizePoint(const Point& p, const Envelope& space, uint32_t* ix,
                   uint32_t* iy);

/// Z-order (Morton) key: bit-interleaves the quantized coordinates.
uint64_t ZOrderValue(const Point& p, const Envelope& space);

/// Hilbert-curve key of order kCurveBits; preserves locality better than
/// Z-order (no long diagonal jumps).
uint64_t HilbertValue(const Point& p, const Envelope& space);

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_SPACE_FILLING_CURVE_H_
