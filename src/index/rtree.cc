#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace shadoop::index {

RTree::RTree(std::vector<Entry> entries, int leaf_capacity)
    : entries_(std::move(entries)), capacity_(std::max(2, leaf_capacity)) {
  if (entries_.empty()) return;

  // --- STR packing of the leaf level ------------------------------------
  const size_t n = entries_.size();
  const size_t num_leaves = (n + capacity_ - 1) / capacity_;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_size =
      ((num_leaves + num_slabs - 1) / num_slabs) * capacity_;

  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              return a.box.Center().x < b.box.Center().x;
            });
  for (size_t s = 0; s < n; s += slab_size) {
    const size_t e = std::min(n, s + slab_size);
    std::sort(entries_.begin() + s, entries_.begin() + e,
              [](const Entry& a, const Entry& b) {
                return a.box.Center().y < b.box.Center().y;
              });
  }

  // Leaves over consecutive runs of `capacity_` entries.
  std::vector<uint32_t> level;
  for (size_t s = 0; s < n; s += capacity_) {
    const size_t e = std::min(n, s + capacity_);
    Node leaf;
    leaf.is_leaf = true;
    leaf.first = static_cast<uint32_t>(s);
    leaf.last = static_cast<uint32_t>(e);
    for (size_t i = s; i < e; ++i) leaf.box.ExpandToInclude(entries_[i].box);
    level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(leaf);
  }

  // --- Pack internal levels bottom-up (children are already in STR
  // order, so consecutive grouping preserves locality) -------------------
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t s = 0; s < level.size(); s += capacity_) {
      const size_t e = std::min(level.size(), s + capacity_);
      Node inner;
      inner.is_leaf = false;
      inner.first = level[s];
      inner.last = level[e - 1] + 1;  // Children are contiguous in nodes_.
      for (size_t i = s; i < e; ++i) {
        inner.box.ExpandToInclude(nodes_[level[i]].box);
      }
      next.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(inner);
    }
    level = std::move(next);
  }
  root_ = level.front();
}

Envelope RTree::Bounds() const {
  return nodes_.empty() ? Envelope() : nodes_[root_].box;
}

size_t RTree::Search(const Envelope& query, std::vector<uint32_t>* out) const {
  if (nodes_.empty() || !nodes_[root_].box.Intersects(query)) return 0;
  size_t visited = 0;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    ++visited;
    if (node.is_leaf) {
      for (uint32_t i = node.first; i < node.last; ++i) {
        if (entries_[i].box.Intersects(query)) {
          out->push_back(entries_[i].payload);
        }
      }
    } else {
      // Prune before pushing: only subtrees whose box overlaps the query
      // are ever visited.
      for (uint32_t c = node.first; c < node.last; ++c) {
        if (nodes_[c].box.Intersects(query)) stack.push_back(c);
      }
    }
  }
  return visited;
}

std::vector<uint32_t> RTree::NearestNeighbors(const Point& q, size_t k) const {
  std::vector<uint32_t> result;
  if (nodes_.empty() || k == 0) return result;

  // Best-first search over nodes and entries by MinDistance.
  struct Item {
    double dist;
    bool is_entry;
    uint32_t index;
  };
  auto greater = [](const Item& a, const Item& b) { return a.dist > b.dist; };
  std::priority_queue<Item, std::vector<Item>, decltype(greater)> queue(
      greater);
  queue.push({nodes_[root_].box.MinDistance(q), false, root_});
  while (!queue.empty() && result.size() < k) {
    const Item item = queue.top();
    queue.pop();
    if (item.is_entry) {
      result.push_back(entries_[item.index].payload);
      continue;
    }
    const Node& node = nodes_[item.index];
    if (node.is_leaf) {
      for (uint32_t i = node.first; i < node.last; ++i) {
        queue.push({entries_[i].box.MinDistance(q), true, i});
      }
    } else {
      for (uint32_t c = node.first; c < node.last; ++c) {
        queue.push({nodes_[c].box.MinDistance(q), false, c});
      }
    }
  }
  return result;
}

}  // namespace shadoop::index
