#ifndef SHADOOP_INDEX_STR_PARTITIONER_H_
#define SHADOOP_INDEX_STR_PARTITIONER_H_

#include "index/partitioner.h"

namespace shadoop::index {

/// Sort-Tile-Recursive partitioning (the packing step of an STR-bulk-
/// loaded R-tree): the sample is cut into vertical slabs at x-quantiles,
/// and each slab into cells at y-quantiles, yielding near-equal-count
/// cells that adapt to skew.
///
/// Two flavours share the boundary computation:
///  - STR  (`replicate = false`): every shape is stored once, in the cell
///    of its center; cells effectively overlap once shapes have extent.
///  - STR+ (`replicate = true`): the tiling is treated as disjoint cells
///    and shapes are replicated to every cell they overlap.
class StrPartitioner : public Partitioner {
 public:
  explicit StrPartitioner(bool replicate) : replicate_(replicate) {}

  PartitionScheme scheme() const override {
    return replicate_ ? PartitionScheme::kStrPlus : PartitionScheme::kStr;
  }

  Status Construct(const Envelope& space, const std::vector<Point>& sample,
                   int target_partitions) override;

  int NumCells() const override { return num_cells_; }
  Envelope CellExtent(int id) const override;
  int AssignPoint(const Point& p) const override;

 private:
  int SlabOf(double x) const;

  bool replicate_;
  Envelope space_;
  int num_cells_ = 0;
  std::vector<double> x_bounds_;               // Size: slabs + 1.
  std::vector<std::vector<double>> y_bounds_;  // Per slab, rows + 1.
  std::vector<int> first_cell_of_slab_;        // Prefix sums of rows.
};

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_STR_PARTITIONER_H_
