#ifndef SHADOOP_INDEX_INDEX_BUILDER_H_
#define SHADOOP_INDEX_INDEX_BUILDER_H_

#include <string>

#include "common/result.h"
#include "index/global_index.h"
#include "index/record_shape.h"
#include "mapreduce/job_runner.h"

namespace shadoop::index {

/// Options of a spatial index build.
struct IndexBuildOptions {
  PartitionScheme scheme = PartitionScheme::kStr;
  ShapeType shape = ShapeType::kPoint;

  /// Fraction of records sampled for boundary computation.
  double sample_ratio = 0.02;

  /// Hard cap on the sample size kept on the master.
  size_t max_sample = 100000;

  /// Number of cells to create; 0 derives it from the input size and the
  /// HDFS block size (one partition per block, the paper's layout).
  int target_partitions = 0;

  /// When true, every partition block starts with a persisted local-index
  /// header (the record envelopes in block order), so readers bulk-load
  /// the partition R-tree without parsing any geometry. Costs extra
  /// storage; pays off for geometry-heavy records (polygons).
  bool build_local_indexes = false;
};

/// Handle to a spatially indexed file: the data file (one partition per
/// block) plus its global index, persisted in the companion master file.
struct SpatialFileInfo {
  std::string data_path;
  std::string master_path;
  ShapeType shape = ShapeType::kPoint;
  bool has_local_indexes = false;
  GlobalIndex global_index;

  /// Aggregate simulated cost of the build jobs.
  mapreduce::JobCost build_cost;
};

/// Builds spatially indexed files with the paper's three-phase MapReduce
/// pipeline:
///   1. an analysis job scans the input once, computing the file MBR and
///      drawing a deterministic record sample,
///   2. the master constructs partition boundaries from the sample
///      (Partitioner::Construct),
///   3. a partitioning job routes every record to its cell(s) and the
///      builder lays cells out as one HDFS block each, writing the global
///      index into the master file.
class IndexBuilder {
 public:
  explicit IndexBuilder(mapreduce::JobRunner* runner) : runner_(runner) {}

  /// Indexes `source_path` into `dest_path` (+ "<dest_path>_master").
  Result<SpatialFileInfo> Build(const std::string& source_path,
                                const std::string& dest_path,
                                const IndexBuildOptions& options);

 private:
  mapreduce::JobRunner* runner_;
};

/// Opens an existing indexed file by reading its master file.
Result<SpatialFileInfo> LoadSpatialFile(const hdfs::FileSystem& fs,
                                        const std::string& data_path);

/// Same, but with the master file at an explicit path. Versioned datasets
/// keep one master per version next to a shared data path, so the
/// companion-path convention does not apply to them.
Result<SpatialFileInfo> LoadSpatialFileFromMaster(
    const hdfs::FileSystem& fs, const std::string& data_path,
    const std::string& master_path);

/// Master-file path convention.
std::string MasterPathFor(const std::string& data_path);

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_INDEX_BUILDER_H_
