#include "index/index_builder.h"

#include <algorithm>
#include <map>
#include <memory>

#include "common/random.h"
#include "common/string_util.h"
#include "geometry/wkt.h"
#include "index/partitioner.h"

namespace shadoop::index {
namespace {

using mapreduce::InputSplit;
using mapreduce::JobConfig;
using mapreduce::JobResult;
using mapreduce::MapContext;
using mapreduce::Mapper;

void AccumulateCost(mapreduce::JobCost* total, const mapreduce::JobCost& job) {
  total->total_ms += job.total_ms;
  total->map_makespan_ms += job.map_makespan_ms;
  total->shuffle_ms += job.shuffle_ms;
  total->reduce_makespan_ms += job.reduce_makespan_ms;
  total->bytes_read += job.bytes_read;
  total->bytes_shuffled += job.bytes_shuffled;
  total->bytes_written += job.bytes_written;
  total->num_map_tasks += job.num_map_tasks;
  total->num_reduce_tasks += job.num_reduce_tasks;
}

uint64_t SplitSeed(const InputSplit& split) {
  uint64_t seed = 0xa1b2c3d4e5f60718ULL;
  for (const mapreduce::BlockRef& block : split.blocks) {
    for (char c : block.path) seed = seed * 131 + static_cast<uint64_t>(c);
    seed = seed * 1000003 + block.block_index;
  }
  return seed;
}

/// Analysis phase: computes the per-split MBR and emits a record sample.
/// Output lines: "MBR <csv>" and "S <x,y>".
class AnalysisMapper : public Mapper {
 public:
  AnalysisMapper(ShapeType shape, double sample_ratio)
      : shape_(shape), sample_ratio_(sample_ratio) {}

  void BeginSplit(MapContext& ctx) override {
    rng_ = std::make_unique<Random>(SplitSeed(ctx.split()));
  }

  void Map(std::string_view record, MapContext& ctx) override {
    if (IsMetadataRecord(record)) return;
    auto env = RecordEnvelope(shape_, record);
    if (!env.ok()) {
      ctx.counters().Increment("analysis.bad_records");
      return;
    }
    mbr_.ExpandToInclude(env.value());
    if (rng_->NextBool(sample_ratio_)) {
      ctx.WriteOutput("S " + PointToCsv(env.value().Center()));
    }
  }

  void EndSplit(MapContext& ctx) override {
    if (!mbr_.IsEmpty()) {
      ctx.WriteOutput("MBR " + EnvelopeToCsv(mbr_));
    }
  }

 private:
  ShapeType shape_;
  double sample_ratio_;
  Envelope mbr_;
  std::unique_ptr<Random> rng_;
};

/// Partitioning phase: routes every record to its cell(s).
class PartitionMapper : public Mapper {
 public:
  PartitionMapper(ShapeType shape, std::shared_ptr<const Partitioner> part)
      : shape_(shape), partitioner_(std::move(part)) {}

  void Map(std::string_view record, MapContext& ctx) override {
    if (IsMetadataRecord(record)) return;
    auto env = RecordEnvelope(shape_, record);
    if (!env.ok()) {
      ctx.counters().Increment("partition.bad_records");
      return;
    }
    const std::vector<int> cells = partitioner_->AssignEnvelope(env.value());
    for (int cell : cells) {
      // Zero-padded keys keep within-reducer groups in numeric order.
      char key[16];
      std::snprintf(key, sizeof(key), "%010d", cell);
      ctx.Emit(key, record);
    }
    if (cells.size() > 1) {
      ctx.counters().Increment("partition.replicated_records",
                               static_cast<int64_t>(cells.size()) - 1);
    }
  }

 private:
  ShapeType shape_;
  std::shared_ptr<const Partitioner> partitioner_;
};

/// Identity reducer tagging each record with its cell id.
class PartitionReducer : public mapreduce::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mapreduce::ReduceContext& ctx) override {
    for (const std::string& value : values) {
      ctx.Write(key + "\t" + value);
    }
  }
};

}  // namespace

std::string MasterPathFor(const std::string& data_path) {
  return data_path + "_master";
}

Result<SpatialFileInfo> IndexBuilder::Build(const std::string& source_path,
                                            const std::string& dest_path,
                                            const IndexBuildOptions& options) {
  hdfs::FileSystem* fs = runner_->file_system();
  SHADOOP_ASSIGN_OR_RETURN(hdfs::FileMeta source_meta,
                           fs->GetFileMeta(source_path));
  if (fs->Exists(dest_path)) {
    return Status::AlreadyExists("destination exists: " + dest_path);
  }

  SpatialFileInfo info;
  info.data_path = dest_path;
  info.master_path = MasterPathFor(dest_path);
  info.shape = options.shape;

  // ---------------------------------------------------------------------
  // Phase 1: analysis job (file MBR + sample).
  JobConfig analysis;
  analysis.name = "index-analysis";
  SHADOOP_ASSIGN_OR_RETURN(analysis.splits,
                           mapreduce::MakeBlockSplits(*fs, source_path));
  const ShapeType shape = options.shape;
  const double ratio = options.sample_ratio;
  analysis.mapper = [shape, ratio]() {
    return std::make_unique<AnalysisMapper>(shape, ratio);
  };
  JobResult analysis_result = runner_->Run(analysis);
  SHADOOP_RETURN_NOT_OK(analysis_result.status);
  AccumulateCost(&info.build_cost, analysis_result.cost);

  Envelope space;
  std::vector<Point> sample;
  for (const std::string& line : analysis_result.output) {
    if (line.rfind("MBR ", 0) == 0) {
      SHADOOP_ASSIGN_OR_RETURN(Envelope e,
                               ParseEnvelopeCsv(line.substr(4)));
      space.ExpandToInclude(e);
    } else if (line.rfind("S ", 0) == 0) {
      SHADOOP_ASSIGN_OR_RETURN(Point p, ParsePointCsv(line.substr(2)));
      sample.push_back(p);
    }
  }
  if (space.IsEmpty()) {
    return Status::InvalidArgument("input file '" + source_path +
                                   "' has no valid records to index");
  }
  if (sample.size() > options.max_sample) {
    // Deterministic thinning: keep a stride subset.
    std::vector<Point> thinned;
    thinned.reserve(options.max_sample);
    const double stride =
        static_cast<double>(sample.size()) / options.max_sample;
    for (size_t i = 0; i < options.max_sample; ++i) {
      thinned.push_back(sample[static_cast<size_t>(i * stride)]);
    }
    sample = std::move(thinned);
  }

  // ---------------------------------------------------------------------
  // Phase 2: boundary computation on the master.
  int target = options.target_partitions;
  if (target <= 0) {
    target = static_cast<int>(
        (source_meta.total_bytes + fs->config().block_size - 1) /
        fs->config().block_size);
    target = std::max(target, 1);
  }
  SHADOOP_ASSIGN_OR_RETURN(std::unique_ptr<Partitioner> partitioner_owned,
                           MakePartitioner(options.scheme));
  SHADOOP_RETURN_NOT_OK(partitioner_owned->Construct(space, sample, target));
  std::shared_ptr<const Partitioner> partitioner(std::move(partitioner_owned));

  // ---------------------------------------------------------------------
  // Phase 3: partitioning job.
  JobConfig partition_job;
  partition_job.name = "index-partition";
  SHADOOP_ASSIGN_OR_RETURN(partition_job.splits,
                           mapreduce::MakeBlockSplits(*fs, source_path));
  partition_job.mapper = [shape, partitioner]() {
    return std::make_unique<PartitionMapper>(shape, partitioner);
  };
  partition_job.reducer = []() { return std::make_unique<PartitionReducer>(); };
  partition_job.num_reducers =
      std::min(partitioner->NumCells(), runner_->cluster().num_slots);
  JobResult partition_result = runner_->Run(partition_job);
  SHADOOP_RETURN_NOT_OK(partition_result.status);
  AccumulateCost(&info.build_cost, partition_result.cost);

  // Group routed records by cell id.
  std::map<int, std::vector<std::string>> cells;
  for (std::string& line : partition_result.output) {
    const size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;
    SHADOOP_ASSIGN_OR_RETURN(int64_t cell, ParseInt64(line.substr(0, tab)));
    cells[static_cast<int>(cell)].push_back(line.substr(tab + 1));
  }

  // Lay out one cell per HDFS block; drop empty cells (standard practice:
  // the global index only records materialized partitions).
  SHADOOP_ASSIGN_OR_RETURN(std::unique_ptr<hdfs::FileWriter> writer,
                           fs->Create(dest_path));
  writer->set_auto_seal(false);  // One partition == one block, exactly.
  std::vector<Partition> partitions;
  size_t block_index = 0;
  for (auto& [cell_id, records] : cells) {
    Partition part;
    part.id = static_cast<int>(partitions.size());
    part.block_index = block_index++;
    part.cell = partitioner->CellExtent(cell_id);
    part.num_records = records.size();
    std::vector<Envelope> envelopes;
    envelopes.reserve(records.size());
    for (const std::string& record : records) {
      auto env = RecordEnvelope(shape, record);
      if (env.ok()) part.mbr.ExpandToInclude(env.value());
      envelopes.push_back(env.ok() ? env.value() : Envelope());
    }
    if (options.build_local_indexes) {
      const std::string header = EncodeLocalIndexHeader(envelopes);
      part.num_bytes += header.size() + 1;
      writer->Append(header);
    }
    for (const std::string& record : records) {
      part.num_bytes += record.size() + 1;
      writer->Append(record);
    }
    writer->EndBlock();
    partitions.push_back(std::move(part));
  }
  SHADOOP_RETURN_NOT_OK(writer->Close());

  info.global_index = GlobalIndex(options.scheme, std::move(partitions));
  info.has_local_indexes = options.build_local_indexes;

  // Persist the master file: a header line plus one line per partition.
  std::vector<std::string> master_lines;
  master_lines.push_back(std::string("#scheme=") +
                         PartitionSchemeName(options.scheme) +
                         " shape=" + ShapeTypeName(options.shape) +
                         (options.build_local_indexes ? " lidx=1" : ""));
  for (std::string& line : info.global_index.ToLines()) {
    master_lines.push_back(std::move(line));
  }
  SHADOOP_RETURN_NOT_OK(fs->WriteLines(info.master_path, master_lines));
  return info;
}

Result<SpatialFileInfo> LoadSpatialFile(const hdfs::FileSystem& fs,
                                        const std::string& data_path) {
  return LoadSpatialFileFromMaster(fs, data_path, MasterPathFor(data_path));
}

Result<SpatialFileInfo> LoadSpatialFileFromMaster(
    const hdfs::FileSystem& fs, const std::string& data_path,
    const std::string& master_path) {
  SHADOOP_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                           fs.ReadLines(master_path));
  if (lines.empty() || lines.front().rfind("#scheme=", 0) != 0) {
    return Status::ParseError("master file missing header: " + master_path);
  }
  // Header format: "#scheme=<name> shape=<name> [lidx=1]".
  const std::string& header = lines.front();
  std::string scheme_name;
  std::string shape_name;
  bool has_lidx = false;
  for (std::string_view field :
       SplitWhitespace(std::string_view(header).substr(1))) {
    const size_t eq = field.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "scheme") {
      scheme_name = std::string(value);
    } else if (key == "shape") {
      shape_name = std::string(value);
    } else if (key == "lidx") {
      has_lidx = value == "1";
    }
  }
  if (scheme_name.empty() || shape_name.empty()) {
    return Status::ParseError("bad master header: " + header);
  }
  SHADOOP_ASSIGN_OR_RETURN(PartitionScheme scheme,
                           ParsePartitionScheme(scheme_name));
  SHADOOP_ASSIGN_OR_RETURN(ShapeType shape, ParseShapeType(shape_name));

  SpatialFileInfo info;
  info.data_path = data_path;
  info.master_path = master_path;
  info.shape = shape;
  info.has_local_indexes = has_lidx;
  SHADOOP_ASSIGN_OR_RETURN(
      info.global_index,
      GlobalIndex::FromLines(
          scheme, std::vector<std::string>(lines.begin() + 1, lines.end())));
  return info;
}

}  // namespace shadoop::index
