#ifndef SHADOOP_INDEX_PACKED_RTREE_H_
#define SHADOOP_INDEX_PACKED_RTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/envelope.h"
#include "index/rtree.h"

namespace shadoop::index {

/// Cache-packed, read-only flattening of the STR R-tree: node and entry
/// boxes live in contiguous SoA lanes (separate min-x / min-y / max-x /
/// max-y arrays) so Search tests a whole node's children with one batch
/// MBR kernel call (simd::IntersectBoxBitmap) instead of a per-child
/// branchy test.
///
/// Parity contract: for the same entries and capacity, a PackedRTree is
/// *structurally identical* to the RTree it mirrors — same STR packing,
/// same node boxes, same DFS push order — so Search returns the same
/// payloads in the same order and reports the same visited-node count
/// (the CPU-cost proxy charged to the simulated cost model). The
/// bulk-load avoids sorting 40-byte Entry structs: it sorts (key, index)
/// pairs, which is the identical permutation because std::sort's element
/// moves are a function of comparator outcomes only, then fills the
/// lanes through the permutation.
class PackedRTree {
 public:
  PackedRTree() = default;

  /// Bulk-loads with the same Sort-Tile-Recursive packing as
  /// RTree(entries, leaf_capacity).
  explicit PackedRTree(const std::vector<RTree::Entry>& entries,
                       int leaf_capacity = 32);

  /// Flattens an already-built RTree (used by the parity suite as the
  /// by-construction-identical reference, and by callers that hold one).
  explicit PackedRTree(const RTree& tree);

  size_t NumEntries() const { return entry_payload_.size(); }
  bool IsEmpty() const { return entry_payload_.empty(); }

  /// Bounds of everything stored.
  Envelope Bounds() const;

  /// Payloads of all entries whose box intersects `query`, appended to
  /// `out` in RTree::Search order. Returns the number of tree nodes
  /// visited — identical to RTree::Search on the same entries.
  size_t Search(const Envelope& query, std::vector<uint32_t>* out) const;

 private:
  struct NodeMeta {
    uint32_t first = 0;  // Children in node lanes (inner) or entry lanes
    uint32_t last = 0;   // (leaf): [first, last).
    bool is_leaf = true;
  };

  void BuildNodes(size_t n);

  // Entry lanes, in STR-packed order.
  std::vector<double> entry_min_x_, entry_min_y_, entry_max_x_, entry_max_y_;
  std::vector<uint32_t> entry_payload_;

  // Node lanes, same index space as the mirrored RTree's nodes_.
  std::vector<double> node_min_x_, node_min_y_, node_max_x_, node_max_y_;
  std::vector<NodeMeta> node_meta_;
  uint32_t root_ = 0;
  int capacity_ = 32;
};

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_PACKED_RTREE_H_
