#include "index/str_partitioner.h"

#include <algorithm>
#include <cmath>

namespace shadoop::index {

Status StrPartitioner::Construct(const Envelope& space,
                                 const std::vector<Point>& sample,
                                 int target_partitions) {
  if (space.IsEmpty()) {
    return Status::InvalidArgument("STR partitioner needs a non-empty space");
  }
  if (target_partitions < 1) {
    return Status::InvalidArgument("target_partitions must be >= 1");
  }
  space_ = space;
  x_bounds_.clear();
  y_bounds_.clear();
  first_cell_of_slab_.clear();

  if (sample.empty()) {
    // Degrade gracefully to a single cell covering the space.
    x_bounds_ = {space.min_x(), space.max_x()};
    y_bounds_ = {{space.min_y(), space.max_y()}};
    first_cell_of_slab_ = {0, 1};
    num_cells_ = 1;
    return Status::OK();
  }

  const int num_slabs = static_cast<int>(
      std::ceil(std::sqrt(static_cast<double>(target_partitions))));
  const int rows_per_slab = (target_partitions + num_slabs - 1) / num_slabs;

  // Slab boundaries at x-quantiles of the sample.
  std::vector<double> xs;
  xs.reserve(sample.size());
  for (const Point& p : sample) xs.push_back(p.x);
  std::sort(xs.begin(), xs.end());
  x_bounds_.push_back(space.min_x());
  for (int s = 1; s < num_slabs; ++s) {
    const size_t idx = s * xs.size() / num_slabs;
    double b = xs[std::min(idx, xs.size() - 1)];
    // Keep boundaries strictly increasing under heavy duplication.
    if (b <= x_bounds_.back()) b = x_bounds_.back();
    x_bounds_.push_back(b);
  }
  x_bounds_.push_back(space.max_x());

  // Row boundaries at y-quantiles within each slab.
  int next_cell = 0;
  for (int s = 0; s < num_slabs; ++s) {
    first_cell_of_slab_.push_back(next_cell);
    std::vector<double> ys;
    for (const Point& p : sample) {
      if (SlabOf(p.x) == s) ys.push_back(p.y);
    }
    std::sort(ys.begin(), ys.end());
    std::vector<double> bounds;
    bounds.push_back(space.min_y());
    const int rows = ys.empty() ? 1 : rows_per_slab;
    for (int r = 1; r < rows; ++r) {
      const size_t idx = r * ys.size() / rows;
      double b = ys[std::min(idx, ys.size() - 1)];
      if (b <= bounds.back()) b = bounds.back();
      bounds.push_back(b);
    }
    bounds.push_back(space.max_y());
    next_cell += static_cast<int>(bounds.size()) - 1;
    y_bounds_.push_back(std::move(bounds));
  }
  first_cell_of_slab_.push_back(next_cell);
  num_cells_ = next_cell;
  return Status::OK();
}

int StrPartitioner::SlabOf(double x) const {
  // upper_bound on interior boundaries: slab i covers [xb[i], xb[i+1]).
  const auto begin = x_bounds_.begin() + 1;
  const auto end = x_bounds_.end() - 1;
  return static_cast<int>(std::upper_bound(begin, end, x) - begin);
}

Envelope StrPartitioner::CellExtent(int id) const {
  // Find the slab via the prefix sums.
  const auto it = std::upper_bound(first_cell_of_slab_.begin(),
                                   first_cell_of_slab_.end(), id);
  const int slab = static_cast<int>(it - first_cell_of_slab_.begin()) - 1;
  const int row = id - first_cell_of_slab_[slab];
  return Envelope(x_bounds_[slab], y_bounds_[slab][row], x_bounds_[slab + 1],
                  y_bounds_[slab][row + 1]);
}

int StrPartitioner::AssignPoint(const Point& p) const {
  const int slab = SlabOf(p.x);
  const std::vector<double>& bounds = y_bounds_[slab];
  const auto begin = bounds.begin() + 1;
  const auto end = bounds.end() - 1;
  const int row = static_cast<int>(std::upper_bound(begin, end, p.y) - begin);
  return first_cell_of_slab_[slab] + row;
}

}  // namespace shadoop::index
