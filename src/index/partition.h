#ifndef SHADOOP_INDEX_PARTITION_H_
#define SHADOOP_INDEX_PARTITION_H_

#include <string>

#include "common/result.h"
#include "geometry/envelope.h"

namespace shadoop::index {

/// The spatial partitioning techniques supported by the indexing layer
/// (Table 1 of the system's partitioning study).
enum class PartitionScheme {
  kNone,      // Default Hadoop: random (non-spatial) block placement.
  kGrid,      // Uniform grid; disjoint.
  kStr,       // Sort-tile-recursive on a sample; overlapping (one copy).
  kStrPlus,   // STR tiling treated as disjoint cells; replicates shapes.
  kQuadTree,  // Sample quad-tree leaves; disjoint.
  kKdTree,    // Sample k-d tree leaves; disjoint.
  kZCurve,    // Z-order range partitioning; overlapping.
  kHilbert,   // Hilbert-curve range partitioning; overlapping.
};

/// True for techniques whose cells tile space without overlap (records
/// whose extent crosses a boundary are replicated). Several operations
/// (closest pair, the pruning-based CG algorithms) require this.
bool IsDisjointScheme(PartitionScheme scheme);

/// True for every spatially aware technique (everything except kNone).
bool IsSpatialScheme(PartitionScheme scheme);

const char* PartitionSchemeName(PartitionScheme scheme);
Result<PartitionScheme> ParsePartitionScheme(const std::string& name);

/// One cell of a global index: the region a partition is responsible for
/// (`cell`, meaningful for disjoint schemes), the tight bounds of what it
/// actually stores (`mbr`, used by filter functions), and its location in
/// the indexed file (block `block_index` of the data file).
struct Partition {
  int id = 0;
  size_t block_index = 0;
  Envelope cell;
  Envelope mbr;
  size_t num_records = 0;
  size_t num_bytes = 0;
  /// Data file holding this partition's block. Empty means "the indexed
  /// file itself" (SpatialFileInfo::data_path) — the only case before the
  /// dataset catalog existed. Versioned datasets share untouched
  /// partitions across versions by pointing several masters at the same
  /// (source_path, block_index) block, so a new version only rewrites the
  /// partitions an append actually touched (copy-on-write).
  std::string source_path;
};

/// The file a partition's block lives in: its explicit source_path, or
/// the owning file's data_path when unset.
inline const std::string& PartitionSourcePath(const Partition& p,
                                              const std::string& data_path) {
  return p.source_path.empty() ? data_path : p.source_path;
}

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_PARTITION_H_
