#include "index/packed_rtree.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "simd/mbr_kernels.h"

namespace shadoop::index {
namespace {

struct KeyIdx {
  double key;
  uint32_t idx;
};

}  // namespace

PackedRTree::PackedRTree(const std::vector<RTree::Entry>& entries,
                         int leaf_capacity)
    : capacity_(std::max(2, leaf_capacity)) {
  const size_t n = entries.size();
  if (n == 0) return;

  // STR packing, mirroring RTree's bulk load move for move. Sorting
  // (key, index) pairs instead of Entry structs yields the identical
  // permutation: every comparator call sees the same key values in the
  // same positions, and std::sort's moves depend only on those outcomes.
  const size_t num_leaves = (n + capacity_ - 1) / capacity_;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_size =
      ((num_leaves + num_slabs - 1) / num_slabs) * capacity_;

  std::vector<KeyIdx> order(n);
  for (size_t i = 0; i < n; ++i) {
    const Envelope& box = entries[i].box;
    // Same expression as Envelope::Center().x.
    order[i] = {(box.min_x() + box.max_x()) / 2, static_cast<uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(),
            [](const KeyIdx& a, const KeyIdx& b) { return a.key < b.key; });
  for (size_t s = 0; s < n; s += slab_size) {
    const size_t e = std::min(n, s + slab_size);
    for (size_t i = s; i < e; ++i) {
      const Envelope& box = entries[order[i].idx].box;
      order[i].key = (box.min_y() + box.max_y()) / 2;
    }
    std::sort(order.begin() + s, order.begin() + e,
              [](const KeyIdx& a, const KeyIdx& b) { return a.key < b.key; });
  }

  entry_min_x_.resize(n);
  entry_min_y_.resize(n);
  entry_max_x_.resize(n);
  entry_max_y_.resize(n);
  entry_payload_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const RTree::Entry& entry = entries[order[i].idx];
    entry_min_x_[i] = entry.box.min_x();
    entry_min_y_[i] = entry.box.min_y();
    entry_max_x_[i] = entry.box.max_x();
    entry_max_y_[i] = entry.box.max_y();
    entry_payload_[i] = entry.payload;
  }
  BuildNodes(n);
}

PackedRTree::PackedRTree(const RTree& tree) : capacity_(tree.capacity_) {
  const size_t n = tree.entries_.size();
  entry_min_x_.resize(n);
  entry_min_y_.resize(n);
  entry_max_x_.resize(n);
  entry_max_y_.resize(n);
  entry_payload_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const RTree::Entry& entry = tree.entries_[i];
    entry_min_x_[i] = entry.box.min_x();
    entry_min_y_[i] = entry.box.min_y();
    entry_max_x_[i] = entry.box.max_x();
    entry_max_y_[i] = entry.box.max_y();
    entry_payload_[i] = entry.payload;
  }
  const size_t m = tree.nodes_.size();
  node_min_x_.resize(m);
  node_min_y_.resize(m);
  node_max_x_.resize(m);
  node_max_y_.resize(m);
  node_meta_.resize(m);
  for (size_t i = 0; i < m; ++i) {
    node_min_x_[i] = tree.nodes_[i].box.min_x();
    node_min_y_[i] = tree.nodes_[i].box.min_y();
    node_max_x_[i] = tree.nodes_[i].box.max_x();
    node_max_y_[i] = tree.nodes_[i].box.max_y();
    node_meta_[i] = {tree.nodes_[i].first, tree.nodes_[i].last,
                     tree.nodes_[i].is_leaf};
  }
  root_ = tree.root_;
}

void PackedRTree::BuildNodes(size_t n) {
  auto push_node = [this](const Envelope& box, uint32_t first, uint32_t last,
                          bool is_leaf) {
    node_min_x_.push_back(box.min_x());
    node_min_y_.push_back(box.min_y());
    node_max_x_.push_back(box.max_x());
    node_max_y_.push_back(box.max_y());
    node_meta_.push_back({first, last, is_leaf});
  };

  std::vector<uint32_t> level;
  for (size_t s = 0; s < n; s += capacity_) {
    const size_t e = std::min(n, s + capacity_);
    Envelope box;
    for (size_t i = s; i < e; ++i) {
      box.ExpandToInclude(Envelope(entry_min_x_[i], entry_min_y_[i],
                                   entry_max_x_[i], entry_max_y_[i]));
    }
    level.push_back(static_cast<uint32_t>(node_meta_.size()));
    push_node(box, static_cast<uint32_t>(s), static_cast<uint32_t>(e), true);
  }
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t s = 0; s < level.size(); s += capacity_) {
      const size_t e = std::min(level.size(), s + capacity_);
      Envelope box;
      for (size_t i = s; i < e; ++i) {
        const uint32_t c = level[i];
        box.ExpandToInclude(Envelope(node_min_x_[c], node_min_y_[c],
                                     node_max_x_[c], node_max_y_[c]));
      }
      next.push_back(static_cast<uint32_t>(node_meta_.size()));
      push_node(box, level[s], level[e - 1] + 1, false);
    }
    level = std::move(next);
  }
  root_ = level.front();
}

Envelope PackedRTree::Bounds() const {
  if (node_meta_.empty()) return Envelope();
  return Envelope(node_min_x_[root_], node_min_y_[root_], node_max_x_[root_],
                  node_max_y_[root_]);
}

size_t PackedRTree::Search(const Envelope& query,
                           std::vector<uint32_t>* out) const {
  if (node_meta_.empty() || !Bounds().Intersects(query)) return 0;
  const simd::detail::KernelTable& kernels = simd::ActiveKernels();

  // Scratch hit bitmap: one batch call covers one node's children, so
  // `capacity_` bits suffice. Nodes wider than the stack buffer (unusual
  // capacities) spill to a heap buffer once per search.
  uint64_t stack_bits[4];
  std::vector<uint64_t> heap_bits;
  uint64_t* bits = stack_bits;
  const size_t words = simd::BitmapWords(static_cast<size_t>(capacity_));
  if (words > 4) {
    heap_bits.resize(words);
    bits = heap_bits.data();
  }

  size_t visited = 0;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const NodeMeta node = node_meta_[stack.back()];
    stack.pop_back();
    ++visited;
    const uint32_t first = node.first;
    const size_t count = node.last - first;
    const simd::BoxLanes lanes =
        node.is_leaf
            ? simd::BoxLanes{entry_min_x_.data() + first,
                             entry_min_y_.data() + first,
                             entry_max_x_.data() + first,
                             entry_max_y_.data() + first}
            : simd::BoxLanes{node_min_x_.data() + first,
                             node_min_y_.data() + first,
                             node_max_x_.data() + first,
                             node_max_y_.data() + first};
    const size_t hits =
        kernels.intersect_box_bitmap(lanes, count, query.min_x(),
                                     query.min_y(), query.max_x(),
                                     query.max_y(), bits);
    if (hits == 0) continue;
    // Ascending bit order matches RTree's ascending child loop: pushed
    // children pop in the same LIFO order, and leaf payloads append in
    // the same sequence.
    for (size_t w = 0; w < simd::BitmapWords(count); ++w) {
      uint64_t word = bits[w];
      while (word != 0) {
        const uint32_t offset =
            first + static_cast<uint32_t>(w * 64) +
            static_cast<uint32_t>(std::countr_zero(word));
        word &= word - 1;
        if (node.is_leaf) {
          out->push_back(entry_payload_[offset]);
        } else {
          stack.push_back(offset);
        }
      }
    }
  }
  return visited;
}

}  // namespace shadoop::index
