#include "index/curve_partitioner.h"

#include <algorithm>

#include "index/space_filling_curve.h"

namespace shadoop::index {

uint64_t CurvePartitioner::ValueOf(const Point& p) const {
  return curve_ == Curve::kZOrder ? ZOrderValue(p, space_)
                                  : HilbertValue(p, space_);
}

Status CurvePartitioner::Construct(const Envelope& space,
                                   const std::vector<Point>& sample,
                                   int target_partitions) {
  if (space.IsEmpty()) {
    return Status::InvalidArgument(
        "curve partitioner needs a non-empty space");
  }
  if (target_partitions < 1) {
    return Status::InvalidArgument("target_partitions must be >= 1");
  }
  space_ = space;
  split_values_.clear();
  extents_.clear();

  if (sample.empty()) {
    extents_.push_back(space);
    return Status::OK();
  }

  std::vector<std::pair<uint64_t, Point>> keyed;
  keyed.reserve(sample.size());
  for (const Point& p : sample) keyed.emplace_back(ValueOf(p), p);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  const int cells = std::min<int>(target_partitions,
                                  static_cast<int>(keyed.size()));
  for (int c = 0; c < cells; ++c) {
    const size_t begin = static_cast<size_t>(c) * keyed.size() / cells;
    const size_t end = static_cast<size_t>(c + 1) * keyed.size() / cells;
    Envelope extent;
    for (size_t i = begin; i < end; ++i) extent.ExpandToInclude(keyed[i].second);
    if (extent.IsEmpty()) extent = space;  // Empty run: fall back to space.
    extents_.push_back(extent);
    if (c > 0) split_values_.push_back(keyed[begin].first);
  }
  return Status::OK();
}

int CurvePartitioner::AssignPoint(const Point& p) const {
  const uint64_t v = ValueOf(p);
  return static_cast<int>(
      std::upper_bound(split_values_.begin(), split_values_.end(), v) -
      split_values_.begin());
}

}  // namespace shadoop::index
