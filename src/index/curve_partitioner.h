#ifndef SHADOOP_INDEX_CURVE_PARTITIONER_H_
#define SHADOOP_INDEX_CURVE_PARTITIONER_H_

#include <cstdint>

#include "index/partitioner.h"

namespace shadoop::index {

/// Space-filling-curve partitioning (Z-order or Hilbert): sample points
/// are sorted by curve value and cut into equal-count runs; a record is
/// assigned to the run containing its center's curve value. Cells are not
/// disjoint in 2-D space (curve ranges interleave spatially), so the cell
/// extents reported to the global index are sample-derived MBRs.
class CurvePartitioner : public Partitioner {
 public:
  enum class Curve { kZOrder, kHilbert };

  explicit CurvePartitioner(Curve curve) : curve_(curve) {}

  PartitionScheme scheme() const override {
    return curve_ == Curve::kZOrder ? PartitionScheme::kZCurve
                                    : PartitionScheme::kHilbert;
  }

  Status Construct(const Envelope& space, const std::vector<Point>& sample,
                   int target_partitions) override;

  int NumCells() const override { return static_cast<int>(extents_.size()); }
  Envelope CellExtent(int id) const override { return extents_[id]; }
  int AssignPoint(const Point& p) const override;

 private:
  uint64_t ValueOf(const Point& p) const;

  Curve curve_;
  Envelope space_;
  std::vector<uint64_t> split_values_;  // Size: cells - 1, sorted.
  std::vector<Envelope> extents_;       // Sample-derived MBR per cell.
};

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_CURVE_PARTITIONER_H_
