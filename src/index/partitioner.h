#ifndef SHADOOP_INDEX_PARTITIONER_H_
#define SHADOOP_INDEX_PARTITIONER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "geometry/envelope.h"
#include "geometry/point.h"
#include "index/partition.h"

namespace shadoop::index {

/// Boundary computation + record assignment for one partitioning
/// technique. A partitioner is constructed once on the master node from a
/// sample of the input (the "boundary computation" phase of index
/// building) and is then broadcast, read-only, to every map task of the
/// partitioning job. All methods are const and thread-safe after
/// Construct().
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual PartitionScheme scheme() const = 0;
  bool IsDisjoint() const { return IsDisjointScheme(scheme()); }

  /// Computes cell boundaries for roughly `target_partitions` cells from a
  /// point `sample` drawn inside `space`. `space` must be non-empty.
  virtual Status Construct(const Envelope& space,
                           const std::vector<Point>& sample,
                           int target_partitions) = 0;

  /// Number of cells produced by Construct().
  virtual int NumCells() const = 0;

  /// Responsibility region of cell `id` (tiling cells for disjoint
  /// schemes; sample-derived bounds for overlapping schemes).
  virtual Envelope CellExtent(int id) const = 0;

  /// The single cell a point belongs to.
  virtual int AssignPoint(const Point& p) const = 0;

  /// Every cell a shape with the given extent is stored in. For disjoint
  /// schemes this is every overlapping cell (replication); overlapping
  /// schemes store the shape once, in the cell of its center.
  std::vector<int> AssignEnvelope(const Envelope& extent) const;

 protected:
  /// Cells overlapping `extent`; default scans all cells (subclasses with
  /// structure override for speed).
  virtual std::vector<int> OverlappingCells(const Envelope& extent) const;
};

/// Factory over all techniques.
Result<std::unique_ptr<Partitioner>> MakePartitioner(PartitionScheme scheme);

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_PARTITIONER_H_
