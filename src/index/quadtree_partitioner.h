#ifndef SHADOOP_INDEX_QUADTREE_PARTITIONER_H_
#define SHADOOP_INDEX_QUADTREE_PARTITIONER_H_

#include <memory>

#include "index/partitioner.h"

namespace shadoop::index {

/// Quad-tree partitioning: the space is recursively split into four
/// quadrants while a quadrant holds more than `capacity` sample points.
/// Leaves form a disjoint tiling; shapes with extent are replicated to
/// every leaf they overlap.
class QuadTreePartitioner : public Partitioner {
 public:
  PartitionScheme scheme() const override { return PartitionScheme::kQuadTree; }

  Status Construct(const Envelope& space, const std::vector<Point>& sample,
                   int target_partitions) override;

  int NumCells() const override { return static_cast<int>(leaves_.size()); }
  Envelope CellExtent(int id) const override { return leaves_[id]; }
  int AssignPoint(const Point& p) const override;

  int MaxDepth() const { return max_depth_reached_; }

 protected:
  std::vector<int> OverlappingCells(const Envelope& extent) const override;

 private:
  struct Node {
    Envelope box;
    int leaf_id = -1;                    // >= 0 for leaves.
    std::unique_ptr<Node> children[4];   // SW, SE, NW, NE when internal.
  };

  void Split(Node* node, std::vector<Point> points, size_t capacity,
             int depth);
  void CollectOverlaps(const Node* node, const Envelope& extent,
                       std::vector<int>* out) const;

  std::unique_ptr<Node> root_;
  std::vector<Envelope> leaves_;
  int max_depth_reached_ = 0;

  static constexpr int kMaxDepth = 20;
};

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_QUADTREE_PARTITIONER_H_
