#include "index/partitioner.h"

#include "index/curve_partitioner.h"
#include "index/grid_partitioner.h"
#include "index/kdtree_partitioner.h"
#include "index/quadtree_partitioner.h"
#include "index/str_partitioner.h"

namespace shadoop::index {

std::vector<int> Partitioner::AssignEnvelope(const Envelope& extent) const {
  // Degenerate (point) extents follow the half-open point assignment: a
  // point on a shared cell edge belongs to exactly one cell, never two.
  if (extent.Width() == 0.0 && extent.Height() == 0.0) {
    return {AssignPoint(extent.Center())};
  }
  if (IsDisjoint()) {
    std::vector<int> cells = OverlappingCells(extent);
    if (cells.empty()) cells.push_back(AssignPoint(extent.Center()));
    return cells;
  }
  return {AssignPoint(extent.Center())};
}

std::vector<int> Partitioner::OverlappingCells(const Envelope& extent) const {
  std::vector<int> cells;
  for (int id = 0; id < NumCells(); ++id) {
    if (CellExtent(id).Intersects(extent)) cells.push_back(id);
  }
  return cells;
}

Result<std::unique_ptr<Partitioner>> MakePartitioner(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kGrid:
      return std::unique_ptr<Partitioner>(new GridPartitioner());
    case PartitionScheme::kStr:
      return std::unique_ptr<Partitioner>(new StrPartitioner(false));
    case PartitionScheme::kStrPlus:
      return std::unique_ptr<Partitioner>(new StrPartitioner(true));
    case PartitionScheme::kQuadTree:
      return std::unique_ptr<Partitioner>(new QuadTreePartitioner());
    case PartitionScheme::kKdTree:
      return std::unique_ptr<Partitioner>(new KdTreePartitioner());
    case PartitionScheme::kZCurve:
      return std::unique_ptr<Partitioner>(
          new CurvePartitioner(CurvePartitioner::Curve::kZOrder));
    case PartitionScheme::kHilbert:
      return std::unique_ptr<Partitioner>(
          new CurvePartitioner(CurvePartitioner::Curve::kHilbert));
    case PartitionScheme::kNone:
      return Status::InvalidArgument(
          "scheme 'none' has no partitioner (use the default Hadoop loader)");
  }
  return Status::InvalidArgument("unknown partition scheme");
}

}  // namespace shadoop::index
