#ifndef SHADOOP_INDEX_GLOBAL_INDEX_H_
#define SHADOOP_INDEX_GLOBAL_INDEX_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "geometry/envelope.h"
#include "geometry/point.h"
#include "index/partition.h"

namespace shadoop::index {

/// The master-node view of a spatially indexed file: one Partition entry
/// per data block, queried by the SpatialFileSplitter to prune blocks.
/// Persisted as the "_master.<scheme>" companion file of the data file.
class GlobalIndex {
 public:
  GlobalIndex() = default;
  GlobalIndex(PartitionScheme scheme, std::vector<Partition> partitions)
      : scheme_(scheme), partitions_(std::move(partitions)) {
    BuildMbrLanes();
  }

  PartitionScheme scheme() const { return scheme_; }
  bool IsDisjoint() const { return IsDisjointScheme(scheme_); }

  const std::vector<Partition>& partitions() const { return partitions_; }
  size_t NumPartitions() const { return partitions_.size(); }

  /// MBR of the whole file.
  Envelope Bounds() const;

  /// Partition ids whose MBR intersects `query` — the built-in range
  /// filter function.
  std::vector<int> OverlappingPartitions(const Envelope& query) const;

  /// Partition whose MBR is nearest to `p` (by MinDistance); -1 if the
  /// index is empty. Seed partition of the kNN operation.
  int NearestPartition(const Point& p) const;

  /// MinDistance of every partition's MBR to `p`, in partition order —
  /// one batch kernel call, bit-identical to calling
  /// Envelope::MinDistance per partition. The kNN seeding/pruning steps
  /// rank partitions with this.
  std::vector<double> PartitionDistances(const Point& p) const;

  /// Serialization to/from the master-file line format:
  /// id,block,cell_x1,cell_y1,cell_x2,cell_y2,mbr_x1,mbr_y1,mbr_x2,mbr_y2,
  /// records,bytes[,source_path]
  /// The optional 13th field is emitted only when some partition carries a
  /// source path (versioned datasets sharing blocks across versions), so
  /// pre-catalog master files round-trip byte-identically.
  std::vector<std::string> ToLines() const;
  static Result<GlobalIndex> FromLines(PartitionScheme scheme,
                                       const std::vector<std::string>& lines);

 private:
  void BuildMbrLanes();

  PartitionScheme scheme_ = PartitionScheme::kNone;
  std::vector<Partition> partitions_;
  // Packed SoA lanes of the partition MBRs, in partition order: the
  // filter/prune steps (range filter, kNN seeding, join pairing) test
  // every partition with one batch MBR kernel call. Rebuilt whenever
  // partitions_ is (re)assigned — only the constructor does.
  std::vector<double> mbr_min_x_, mbr_min_y_, mbr_max_x_, mbr_max_y_;
};

/// Partition pairs (a_id, b_id) whose MBRs intersect — the global-join
/// step of the distributed spatial join, run master-side over the two
/// master files before any block is read.
std::vector<std::pair<int, int>> OverlappingPartitionPairs(
    const GlobalIndex& a, const GlobalIndex& b);

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_GLOBAL_INDEX_H_
