#include "index/kdtree_partitioner.h"

#include <algorithm>

namespace shadoop::index {

Status KdTreePartitioner::Construct(const Envelope& space,
                                    const std::vector<Point>& sample,
                                    int target_partitions) {
  if (space.IsEmpty()) {
    return Status::InvalidArgument(
        "k-d tree partitioner needs a non-empty space");
  }
  if (target_partitions < 1) {
    return Status::InvalidArgument("target_partitions must be >= 1");
  }
  leaves_.clear();
  root_ = std::make_unique<Node>();
  root_->box = space;
  Split(root_.get(), sample, target_partitions);
  return Status::OK();
}

void KdTreePartitioner::Split(Node* node, std::vector<Point> points,
                              int target) {
  if (target <= 1 || points.size() < 2) {
    node->leaf_id = static_cast<int>(leaves_.size());
    leaves_.push_back(node->box);
    return;
  }
  node->split_on_x = node->box.Width() >= node->box.Height();
  const int low_target = target / 2;
  // Median position proportional to the target split so odd targets stay
  // balanced in expected record count.
  const size_t k = points.size() * static_cast<size_t>(low_target) /
                   static_cast<size_t>(target);
  auto cmp_x = [](const Point& a, const Point& b) { return a.x < b.x; };
  auto cmp_y = [](const Point& a, const Point& b) { return a.y < b.y; };
  if (node->split_on_x) {
    std::nth_element(points.begin(), points.begin() + k, points.end(), cmp_x);
    node->split_value = points[k].x;
  } else {
    std::nth_element(points.begin(), points.begin() + k, points.end(), cmp_y);
    node->split_value = points[k].y;
  }

  // Degenerate split (all sample values equal): make this a leaf.
  const Envelope& box = node->box;
  const double lo = node->split_on_x ? box.min_x() : box.min_y();
  const double hi = node->split_on_x ? box.max_x() : box.max_y();
  if (node->split_value <= lo || node->split_value >= hi) {
    node->leaf_id = static_cast<int>(leaves_.size());
    leaves_.push_back(node->box);
    return;
  }

  std::vector<Point> low_points;
  std::vector<Point> high_points;
  for (const Point& p : points) {
    const double v = node->split_on_x ? p.x : p.y;
    (v < node->split_value ? low_points : high_points).push_back(p);
  }
  points.clear();
  points.shrink_to_fit();

  node->low = std::make_unique<Node>();
  node->high = std::make_unique<Node>();
  if (node->split_on_x) {
    node->low->box =
        Envelope(box.min_x(), box.min_y(), node->split_value, box.max_y());
    node->high->box =
        Envelope(node->split_value, box.min_y(), box.max_x(), box.max_y());
  } else {
    node->low->box =
        Envelope(box.min_x(), box.min_y(), box.max_x(), node->split_value);
    node->high->box =
        Envelope(box.min_x(), node->split_value, box.max_x(), box.max_y());
  }
  Split(node->low.get(), std::move(low_points), low_target);
  Split(node->high.get(), std::move(high_points), target - low_target);
}

int KdTreePartitioner::AssignPoint(const Point& p) const {
  const Node* node = root_.get();
  while (node->leaf_id < 0) {
    const double v = node->split_on_x ? p.x : p.y;
    node = v < node->split_value ? node->low.get() : node->high.get();
  }
  return node->leaf_id;
}

void KdTreePartitioner::CollectOverlaps(const Node* node,
                                        const Envelope& extent,
                                        std::vector<int>* out) const {
  if (!node->box.Intersects(extent)) return;
  if (node->leaf_id >= 0) {
    out->push_back(node->leaf_id);
    return;
  }
  CollectOverlaps(node->low.get(), extent, out);
  CollectOverlaps(node->high.get(), extent, out);
}

std::vector<int> KdTreePartitioner::OverlappingCells(
    const Envelope& extent) const {
  std::vector<int> out;
  CollectOverlaps(root_.get(), extent, &out);
  return out;
}

}  // namespace shadoop::index
