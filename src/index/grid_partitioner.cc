#include "index/grid_partitioner.h"

#include <algorithm>
#include <cmath>

namespace shadoop::index {

Status GridPartitioner::Construct(const Envelope& space,
                                  const std::vector<Point>& sample,
                                  int target_partitions) {
  (void)sample;  // The uniform grid is oblivious to the data distribution.
  if (space.IsEmpty()) {
    return Status::InvalidArgument("grid partitioner needs a non-empty space");
  }
  if (target_partitions < 1) {
    return Status::InvalidArgument("target_partitions must be >= 1");
  }
  space_ = space;
  cols_ = static_cast<int>(std::ceil(std::sqrt(target_partitions)));
  rows_ = (target_partitions + cols_ - 1) / cols_;
  return Status::OK();
}

int GridPartitioner::ColumnOf(double x) const {
  const double w = space_.Width();
  if (w <= 0) return 0;
  const int col = static_cast<int>((x - space_.min_x()) / w * cols_);
  return std::clamp(col, 0, cols_ - 1);
}

int GridPartitioner::RowOf(double y) const {
  const double h = space_.Height();
  if (h <= 0) return 0;
  const int row = static_cast<int>((y - space_.min_y()) / h * rows_);
  return std::clamp(row, 0, rows_ - 1);
}

Envelope GridPartitioner::CellExtent(int id) const {
  const int col = id % cols_;
  const int row = id / cols_;
  const double w = space_.Width() / cols_;
  const double h = space_.Height() / rows_;
  return Envelope(space_.min_x() + col * w, space_.min_y() + row * h,
                  col == cols_ - 1 ? space_.max_x() : space_.min_x() + (col + 1) * w,
                  row == rows_ - 1 ? space_.max_y() : space_.min_y() + (row + 1) * h);
}

int GridPartitioner::AssignPoint(const Point& p) const {
  return RowOf(p.y) * cols_ + ColumnOf(p.x);
}

std::vector<int> GridPartitioner::OverlappingCells(
    const Envelope& extent) const {
  std::vector<int> cells;
  const int c0 = ColumnOf(extent.min_x());
  const int c1 = ColumnOf(extent.max_x());
  const int r0 = RowOf(extent.min_y());
  const int r1 = RowOf(extent.max_y());
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      cells.push_back(r * cols_ + c);
    }
  }
  return cells;
}

}  // namespace shadoop::index
