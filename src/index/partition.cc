#include "index/partition.h"

#include "common/string_util.h"

namespace shadoop::index {

bool IsDisjointScheme(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kGrid:
    case PartitionScheme::kStrPlus:
    case PartitionScheme::kQuadTree:
    case PartitionScheme::kKdTree:
      return true;
    default:
      return false;
  }
}

bool IsSpatialScheme(PartitionScheme scheme) {
  return scheme != PartitionScheme::kNone;
}

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kNone:
      return "none";
    case PartitionScheme::kGrid:
      return "grid";
    case PartitionScheme::kStr:
      return "str";
    case PartitionScheme::kStrPlus:
      return "str+";
    case PartitionScheme::kQuadTree:
      return "quadtree";
    case PartitionScheme::kKdTree:
      return "kdtree";
    case PartitionScheme::kZCurve:
      return "zcurve";
    case PartitionScheme::kHilbert:
      return "hilbert";
  }
  return "?";
}

Result<PartitionScheme> ParsePartitionScheme(const std::string& name) {
  const std::string upper = AsciiToUpper(name);
  if (upper == "NONE") return PartitionScheme::kNone;
  if (upper == "GRID") return PartitionScheme::kGrid;
  if (upper == "STR") return PartitionScheme::kStr;
  if (upper == "STR+" || upper == "STRPLUS") return PartitionScheme::kStrPlus;
  if (upper == "QUADTREE" || upper == "QUAD") return PartitionScheme::kQuadTree;
  if (upper == "KDTREE" || upper == "KD") return PartitionScheme::kKdTree;
  if (upper == "ZCURVE" || upper == "Z") return PartitionScheme::kZCurve;
  if (upper == "HILBERT") return PartitionScheme::kHilbert;
  return Status::InvalidArgument("unknown partition scheme: " + name);
}

}  // namespace shadoop::index
