#ifndef SHADOOP_INDEX_RECORD_SHAPE_H_
#define SHADOOP_INDEX_RECORD_SHAPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "geometry/envelope.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

/// Feature-test macro for the parse-accounting API below; lets benchmark
/// sources compile against trees that predate it.
#define SHADOOP_HAS_PARSE_COUNTERS 1

namespace shadoop::index {

/// Geometry encodings of the text record formats stored in HDFS files.
/// A record line is "<geometry>" or "<geometry>\t<attributes>"; only the
/// geometry part is interpreted by the spatial layers.
///   kPoint:     "x,y"
///   kRectangle: "x1,y1,x2,y2"
///   kPolygon:   "POLYGON ((x y, ...))"
enum class ShapeType { kPoint, kRectangle, kPolygon };

const char* ShapeTypeName(ShapeType type);
Result<ShapeType> ParseShapeType(const std::string& name);

/// The geometry portion of a record line (text before the first tab).
std::string_view GeometryField(std::string_view record);

/// True for in-band metadata records ('#'-prefixed lines), e.g. the
/// persisted local-index header the index builder can place at the start
/// of each partition block. Map functions skip these.
bool IsMetadataRecord(std::string_view record);

/// Local-index header codec: "#lidx <csv>|<csv>|..." with one envelope
/// per data record of the block, in record order. A reader that finds the
/// header can bulk-load the partition's R-tree without parsing any
/// geometry.
std::string EncodeLocalIndexHeader(const std::vector<Envelope>& envelopes);
Result<std::vector<Envelope>> DecodeLocalIndexHeader(std::string_view record);

/// Minimum bounding rectangle of a record's geometry. Points yield a
/// degenerate (zero-area) envelope.
Result<Envelope> RecordEnvelope(ShapeType type, std::string_view record);

/// Parses the geometry of a point record.
Result<Point> RecordPoint(std::string_view record);

/// Parses the geometry of a polygon record.
Result<Polygon> RecordPolygon(std::string_view record);

/// Parses the geometry of a rectangle record.
Result<Envelope> RecordRectangle(std::string_view record);

/// Process-wide count of geometry parses (every Record* call above adds
/// one). Deliberately NOT a MapReduce counter: job counters feed the
/// golden parity suite, while this is pure observability — the bench
/// harness snapshots it around a job to prove the parse-once invariant
/// (parses <= records processed).
uint64_t GeometryParseCount();
void ResetGeometryParseCount();

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_RECORD_SHAPE_H_
