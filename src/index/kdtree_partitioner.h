#ifndef SHADOOP_INDEX_KDTREE_PARTITIONER_H_
#define SHADOOP_INDEX_KDTREE_PARTITIONER_H_

#include <memory>

#include "index/partitioner.h"

namespace shadoop::index {

/// K-d tree partitioning: recursive median splits of the sample along the
/// wider axis of each cell until the target number of leaves is reached.
/// Produces a disjoint tiling with near-equal record counts regardless of
/// skew.
class KdTreePartitioner : public Partitioner {
 public:
  PartitionScheme scheme() const override { return PartitionScheme::kKdTree; }

  Status Construct(const Envelope& space, const std::vector<Point>& sample,
                   int target_partitions) override;

  int NumCells() const override { return static_cast<int>(leaves_.size()); }
  Envelope CellExtent(int id) const override { return leaves_[id]; }
  int AssignPoint(const Point& p) const override;

 protected:
  std::vector<int> OverlappingCells(const Envelope& extent) const override;

 private:
  struct Node {
    Envelope box;
    int leaf_id = -1;
    bool split_on_x = true;
    double split_value = 0.0;
    std::unique_ptr<Node> low;   // Coordinate < split_value.
    std::unique_ptr<Node> high;  // Coordinate >= split_value.
  };

  void Split(Node* node, std::vector<Point> points, int target);
  void CollectOverlaps(const Node* node, const Envelope& extent,
                       std::vector<int>* out) const;

  std::unique_ptr<Node> root_;
  std::vector<Envelope> leaves_;
};

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_KDTREE_PARTITIONER_H_
