#ifndef SHADOOP_INDEX_RTREE_H_
#define SHADOOP_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/envelope.h"
#include "geometry/point.h"

namespace shadoop::index {

/// Static, STR-bulk-loaded R-tree used as the *local index* of a
/// partition: built once over the records of a block and queried many
/// times. Entries carry an opaque uint32 payload (the record's index in
/// the block).
class RTree {
 public:
  struct Entry {
    Envelope box;
    uint32_t payload = 0;
  };

  /// Bulk-loads from entries with Sort-Tile-Recursive packing.
  /// `leaf_capacity` is the R-tree node fan-out.
  explicit RTree(std::vector<Entry> entries, int leaf_capacity = 32);

  RTree() = default;

  size_t NumEntries() const { return entries_.size(); }
  bool IsEmpty() const { return entries_.empty(); }

  /// Bounds of everything stored.
  Envelope Bounds() const;

  /// Payloads of all entries whose box intersects `query`. Appends to
  /// `out`. Returns the number of tree nodes visited (the CPU-cost proxy
  /// reported to the MapReduce cost model).
  size_t Search(const Envelope& query, std::vector<uint32_t>* out) const;

  /// Payloads of the `k` entries nearest to `q` by MinDistance of their
  /// boxes (exact for point entries). Best-first search.
  std::vector<uint32_t> NearestNeighbors(const Point& q, size_t k) const;

 private:
  struct Node {
    Envelope box;
    // Children are [first, last) in nodes_ (internal) or entry indices
    // [first, last) in entries_ (leaf).
    uint32_t first = 0;
    uint32_t last = 0;
    bool is_leaf = true;
  };

  std::vector<Entry> entries_;
  std::vector<Node> nodes_;  // nodes_[root_] is the root when non-empty.
  uint32_t root_ = 0;
  int capacity_ = 32;

  // PackedRTree flattens this tree's arrays into SoA lanes.
  friend class PackedRTree;
};

}  // namespace shadoop::index

#endif  // SHADOOP_INDEX_RTREE_H_
