#include "index/quadtree_partitioner.h"

#include <algorithm>

namespace shadoop::index {

Status QuadTreePartitioner::Construct(const Envelope& space,
                                      const std::vector<Point>& sample,
                                      int target_partitions) {
  if (space.IsEmpty()) {
    return Status::InvalidArgument(
        "quad-tree partitioner needs a non-empty space");
  }
  if (target_partitions < 1) {
    return Status::InvalidArgument("target_partitions must be >= 1");
  }
  leaves_.clear();
  max_depth_reached_ = 0;
  root_ = std::make_unique<Node>();
  root_->box = space;
  const size_t capacity =
      std::max<size_t>(1, sample.size() / static_cast<size_t>(target_partitions));
  Split(root_.get(), sample, capacity, 0);
  return Status::OK();
}

void QuadTreePartitioner::Split(Node* node, std::vector<Point> points,
                                size_t capacity, int depth) {
  max_depth_reached_ = std::max(max_depth_reached_, depth);
  if (points.size() <= capacity || depth >= kMaxDepth) {
    node->leaf_id = static_cast<int>(leaves_.size());
    leaves_.push_back(node->box);
    return;
  }
  const Point center = node->box.Center();
  const Envelope& box = node->box;
  const Envelope quadrants[4] = {
      Envelope(box.min_x(), box.min_y(), center.x, center.y),   // SW
      Envelope(center.x, box.min_y(), box.max_x(), center.y),   // SE
      Envelope(box.min_x(), center.y, center.x, box.max_y()),   // NW
      Envelope(center.x, center.y, box.max_x(), box.max_y()),   // NE
  };
  std::vector<Point> buckets[4];
  for (const Point& p : points) {
    // Half-open assignment: boundary points go to the higher quadrant.
    const int qx = p.x < center.x ? 0 : 1;
    const int qy = p.y < center.y ? 0 : 1;
    buckets[qy * 2 + qx].push_back(p);
  }
  points.clear();
  points.shrink_to_fit();
  for (int q = 0; q < 4; ++q) {
    node->children[q] = std::make_unique<Node>();
    node->children[q]->box = quadrants[q];
    Split(node->children[q].get(), std::move(buckets[q]), capacity, depth + 1);
  }
}

int QuadTreePartitioner::AssignPoint(const Point& p) const {
  const Node* node = root_.get();
  while (node->leaf_id < 0) {
    const Point center = node->box.Center();
    const int qx = p.x < center.x ? 0 : 1;
    const int qy = p.y < center.y ? 0 : 1;
    node = node->children[qy * 2 + qx].get();
  }
  return node->leaf_id;
}

void QuadTreePartitioner::CollectOverlaps(const Node* node,
                                          const Envelope& extent,
                                          std::vector<int>* out) const {
  if (!node->box.Intersects(extent)) return;
  if (node->leaf_id >= 0) {
    out->push_back(node->leaf_id);
    return;
  }
  for (const auto& child : node->children) {
    CollectOverlaps(child.get(), extent, out);
  }
}

std::vector<int> QuadTreePartitioner::OverlappingCells(
    const Envelope& extent) const {
  std::vector<int> out;
  CollectOverlaps(root_.get(), extent, &out);
  return out;
}

}  // namespace shadoop::index
