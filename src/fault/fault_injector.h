#ifndef SHADOOP_FAULT_FAULT_INJECTOR_H_
#define SHADOOP_FAULT_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string_view>

namespace shadoop::fault {

/// Which phase a task belongs to; part of every task-level decision key so
/// map and reduce faults are independent streams.
enum class TaskKind { kMap = 0, kReduce = 1 };

/// Declarative description of the faults to inject into a run. A
/// default-constructed policy injects nothing; the runtime treats a null
/// FaultInjector and an all-zero policy identically (zero overhead,
/// byte-identical behavior).
///
/// All probabilities are evaluated with *deterministic* draws keyed by
/// (seed, decision identifiers) — see FaultInjector — so a given policy
/// produces the same fault pattern on every run, on every machine,
/// regardless of thread scheduling. Raising a probability strictly grows
/// the set of injected faults (the draw is compared against the
/// threshold), which is what makes fault-matrix sweeps monotone.
struct FaultPolicy {
  uint64_t seed = 0;

  // -- Task-level faults (consumed by mapreduce::TaskScheduler) --------

  /// Probability that a given map/reduce task *attempt* fails at launch.
  double map_failure_prob = 0.0;
  double reduce_failure_prob = 0.0;

  /// Probability that an attempt runs on a "slow node" and becomes a
  /// straggler; when it fires, the attempt is delayed by
  /// `straggler_delay_ms` of simulated time (triggering speculative
  /// execution when the delay exceeds the cluster's slack).
  double straggler_prob = 0.0;
  double straggler_delay_ms = 30000.0;

  // -- Block-read faults (consumed by hdfs::FileSystem) ----------------

  /// Per-replica-read probability that the read errors out (dead disk) or
  /// returns corrupt bytes (detected via the stored block checksum). Both
  /// make the client fail over to the next replica; the last reachable
  /// replica is always allowed to succeed, so injected read faults degrade
  /// to failovers, never to data loss.
  double read_io_error_prob = 0.0;
  double read_corruption_prob = 0.0;

  // -- Wall-clock faithfulness ----------------------------------------

  /// Real milliseconds slept per *simulated* straggler millisecond, so the
  /// speculative race is exercised in real time without real 30 s waits.
  /// 0 (default) keeps tests instant: attempts still race, just without
  /// an artificial head start.
  double real_sleep_ms_per_sim_ms = 0.0;
  double max_real_sleep_ms = 20.0;

  bool AnyTaskFaults() const {
    return map_failure_prob > 0 || reduce_failure_prob > 0 ||
           straggler_prob > 0;
  }
  bool AnyReadFaults() const {
    return read_io_error_prob > 0 || read_corruption_prob > 0;
  }
  bool AnyEnabled() const { return AnyTaskFaults() || AnyReadFaults(); }
};

/// Deterministic, thread-safe fault source. Every decision is a pure
/// function of the policy seed and the decision's identity (job name,
/// task, attempt, block, replica): no internal RNG state advances, so
/// concurrent queries from worker threads cannot reorder the fault
/// pattern. The only mutable state is the read-fault counters, which the
/// file system bumps when an injected fault makes it skip a replica.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPolicy policy) : policy_(policy) {}

  const FaultPolicy& policy() const { return policy_; }

  /// True when the given attempt of a task should fail at launch.
  bool ShouldFailAttempt(TaskKind kind, std::string_view job, size_t task,
                         int attempt) const;

  /// Simulated straggler delay of the attempt; 0 when it is healthy.
  double StragglerDelayMs(TaskKind kind, std::string_view job, size_t task,
                          int attempt) const;

  /// Outcome of reading one replica of a block.
  enum class ReadFault { kNone = 0, kIoError, kCorruption };
  ReadFault ReadFaultAt(uint64_t block_id, int replica_node) const;

  /// Called by the file system when an injected fault (or a checksum
  /// mismatch) made it fail over to another replica.
  void RecordReplicaFailover(ReadFault fault);

  uint64_t replica_failovers() const {
    return replica_failovers_.load(std::memory_order_relaxed);
  }
  uint64_t read_io_errors() const {
    return read_io_errors_.load(std::memory_order_relaxed);
  }
  uint64_t read_corruptions() const {
    return read_corruptions_.load(std::memory_order_relaxed);
  }

 private:
  /// Uniform draw in [0, 1) keyed by (seed, stream, a, b, c).
  double UnitDraw(uint64_t stream, uint64_t a, uint64_t b, uint64_t c) const;

  FaultPolicy policy_;
  std::atomic<uint64_t> replica_failovers_{0};
  std::atomic<uint64_t> read_io_errors_{0};
  std::atomic<uint64_t> read_corruptions_{0};
};

}  // namespace shadoop::fault

#endif  // SHADOOP_FAULT_FAULT_INJECTOR_H_
