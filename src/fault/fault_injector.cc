#include "fault/fault_injector.h"

namespace shadoop::fault {
namespace {

/// Decision streams keep the independent fault sources decorrelated even
/// when their other key components collide.
enum Stream : uint64_t {
  kAttemptFailure = 1,
  kStraggler = 2,
  kReplicaRead = 3,
};

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashString(std::string_view s) {
  uint64_t hash = 14695981039346656037ULL;  // FNV-1a.
  for (char c : s) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

}  // namespace

double FaultInjector::UnitDraw(uint64_t stream, uint64_t a, uint64_t b,
                               uint64_t c) const {
  // Each component is pre-multiplied by a large odd constant: small
  // integers (task ids, attempt numbers) then differ in *high* bits, so a
  // single SplitMix64 round avalanches fully. Without this, xor-ing raw
  // low-bit deltas leaves occasional narrow output bands — one unlucky
  // task would fail every attempt no matter the retry budget.
  uint64_t h = SplitMix64(policy_.seed ^ (stream * 0xd6e8feb86659fd93ULL));
  h = SplitMix64(h ^ (a * 0x9e3779b97f4a7c15ULL));
  h = SplitMix64(h ^ (b * 0xc2b2ae3d27d4eb4fULL));
  h = SplitMix64(h ^ (c * 0x165667b19e3779f9ULL));
  // 53 high bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::ShouldFailAttempt(TaskKind kind, std::string_view job,
                                      size_t task, int attempt) const {
  const double prob = kind == TaskKind::kMap ? policy_.map_failure_prob
                                             : policy_.reduce_failure_prob;
  if (prob <= 0) return false;
  const uint64_t key = HashString(job) ^ static_cast<uint64_t>(kind);
  return UnitDraw(kAttemptFailure, key, task, static_cast<uint64_t>(attempt)) <
         prob;
}

double FaultInjector::StragglerDelayMs(TaskKind kind, std::string_view job,
                                       size_t task, int attempt) const {
  if (policy_.straggler_prob <= 0) return 0.0;
  const uint64_t key = HashString(job) ^ static_cast<uint64_t>(kind);
  if (UnitDraw(kStraggler, key, task, static_cast<uint64_t>(attempt)) >=
      policy_.straggler_prob) {
    return 0.0;
  }
  return policy_.straggler_delay_ms;
}

FaultInjector::ReadFault FaultInjector::ReadFaultAt(uint64_t block_id,
                                                    int replica_node) const {
  const double corrupt = policy_.read_corruption_prob;
  const double io_error = policy_.read_io_error_prob;
  if (corrupt <= 0 && io_error <= 0) return ReadFault::kNone;
  // One draw decides both modes so their union stays monotone in either
  // probability: [0, corrupt) corrupts, [corrupt, corrupt + io) errors.
  const double u = UnitDraw(kReplicaRead, block_id,
                            static_cast<uint64_t>(replica_node), 0);
  if (u < corrupt) return ReadFault::kCorruption;
  if (u < corrupt + io_error) return ReadFault::kIoError;
  return ReadFault::kNone;
}

void FaultInjector::RecordReplicaFailover(ReadFault fault) {
  replica_failovers_.fetch_add(1, std::memory_order_relaxed);
  if (fault == ReadFault::kCorruption) {
    read_corruptions_.fetch_add(1, std::memory_order_relaxed);
  } else {
    read_io_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace shadoop::fault
