#include "viz/canvas.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace shadoop::viz {

Canvas::Canvas(int width, int height, const Envelope& world)
    : width_(std::max(1, width)),
      height_(std::max(1, height)),
      world_(world),
      pixels_(static_cast<size_t>(width_) * height_, 0.0) {}

bool Canvas::ToPixel(const Point& p, int* x, int* y) const {
  if (!world_.Contains(p) || world_.Width() <= 0 || world_.Height() <= 0) {
    return false;
  }
  const double fx = (p.x - world_.min_x()) / world_.Width();
  // Screen convention: y grows downward.
  const double fy = (world_.max_y() - p.y) / world_.Height();
  *x = std::min(width_ - 1, static_cast<int>(fx * width_));
  *y = std::min(height_ - 1, static_cast<int>(fy * height_));
  return true;
}

void Canvas::AddPoint(const Point& p, double weight) {
  int x = 0;
  int y = 0;
  if (ToPixel(p, &x, &y)) pixels_[Index(x, y)] += weight;
}

void Canvas::DrawSegment(const Segment& s, double weight) {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;
  // Clip by sampling: walk the segment at sub-pixel steps (robust against
  // endpoints outside the world; plotting accuracy, not geometry).
  if (!ToPixel(s.a, &x0, &y0) && !ToPixel(s.b, &x1, &y1) &&
      !world_.Intersects(s.Bounds())) {
    return;
  }
  const double length_px =
      std::max(std::abs(s.b.x - s.a.x) / world_.Width() * width_,
               std::abs(s.b.y - s.a.y) / world_.Height() * height_);
  const int steps = std::max(1, static_cast<int>(std::ceil(length_px * 2)));
  int last_x = -1;
  int last_y = -1;
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    const Point p(s.a.x + t * (s.b.x - s.a.x), s.a.y + t * (s.b.y - s.a.y));
    int x = 0;
    int y = 0;
    if (!ToPixel(p, &x, &y)) continue;
    if (x == last_x && y == last_y) continue;
    pixels_[Index(x, y)] += weight;
    last_x = x;
    last_y = y;
  }
}

Status Canvas::MergeFrom(const Canvas& other) {
  if (other.width_ != width_ || other.height_ != height_ ||
      other.world_ != world_) {
    return Status::InvalidArgument("merging canvases of different geometry");
  }
  for (size_t i = 0; i < pixels_.size(); ++i) pixels_[i] += other.pixels_[i];
  return Status::OK();
}

double Canvas::MaxIntensity() const {
  double max = 0;
  for (double v : pixels_) max = std::max(max, v);
  return max;
}

size_t Canvas::CountNonZero() const {
  size_t count = 0;
  for (double v : pixels_) count += v != 0.0;
  return count;
}

std::vector<std::string> Canvas::ToSparseRecords() const {
  std::vector<std::string> records;
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      const double v = pixels_[Index(x, y)];
      if (v != 0.0) {
        records.push_back(std::to_string(x) + "," + std::to_string(y) + "," +
                          FormatDouble(v));
      }
    }
  }
  return records;
}

Status Canvas::AccumulateSparseRecord(std::string_view record) {
  auto fields = SplitString(record, ',');
  if (fields.size() != 3) {
    return Status::ParseError("bad pixel record: '" + std::string(record) +
                              "'");
  }
  SHADOOP_ASSIGN_OR_RETURN(int64_t x, ParseInt64(fields[0]));
  SHADOOP_ASSIGN_OR_RETURN(int64_t y, ParseInt64(fields[1]));
  SHADOOP_ASSIGN_OR_RETURN(double v, ParseDouble(fields[2]));
  if (x < 0 || x >= width_ || y < 0 || y >= height_) {
    return Status::InvalidArgument("pixel out of canvas: '" +
                                   std::string(record) + "'");
  }
  pixels_[Index(static_cast<int>(x), static_cast<int>(y))] += v;
  return Status::OK();
}

namespace {

/// Log-scaled intensity in [0, 1].
double Tone(double value, double max) {
  if (value <= 0 || max <= 0) return 0;
  return std::log1p(value) / std::log1p(max);
}

}  // namespace

std::string Canvas::ToPgm() const {
  const double max = MaxIntensity();
  std::string out = "P5\n" + std::to_string(width_) + " " +
                    std::to_string(height_) + "\n255\n";
  out.reserve(out.size() + pixels_.size());
  for (double v : pixels_) {
    out.push_back(static_cast<char>(
        static_cast<unsigned char>(Tone(v, max) * 255.0)));
  }
  return out;
}

std::string Canvas::ToPpm() const {
  const double max = MaxIntensity();
  std::string out = "P6\n" + std::to_string(width_) + " " +
                    std::to_string(height_) + "\n255\n";
  out.reserve(out.size() + pixels_.size() * 3);
  for (double v : pixels_) {
    const double t = Tone(v, max);
    // Heat ramp: black -> red -> yellow -> white.
    const double r = std::clamp(t * 3.0, 0.0, 1.0);
    const double g = std::clamp(t * 3.0 - 1.0, 0.0, 1.0);
    const double b = std::clamp(t * 3.0 - 2.0, 0.0, 1.0);
    out.push_back(static_cast<char>(static_cast<unsigned char>(r * 255)));
    out.push_back(static_cast<char>(static_cast<unsigned char>(g * 255)));
    out.push_back(static_cast<char>(static_cast<unsigned char>(b * 255)));
  }
  return out;
}

}  // namespace shadoop::viz
