#include "viz/plot.h"

#include <cmath>
#include <memory>

#include "common/string_util.h"
#include "core/file_mbr.h"
#include "core/spatial_file_splitter.h"
#include "geometry/polygon.h"
#include "geometry/simplify.h"
#include "geometry/wkt.h"

namespace shadoop::viz {
namespace {

using mapreduce::JobConfig;
using mapreduce::JobResult;
using mapreduce::MapContext;

/// Rasterizes one record into `canvas`. Returns false on a parse error.
bool RasterizeRecord(index::ShapeType shape, PlotLayer layer,
                     double simplify_tolerance, std::string_view record,
                     Canvas* canvas) {
  switch (layer) {
    case PlotLayer::kPoints: {
      auto env = index::RecordEnvelope(shape, record);
      if (!env.ok()) return false;
      canvas->AddPoint(env.value().Center());
      return true;
    }
    case PlotLayer::kOutlines: {
      if (shape == index::ShapeType::kPolygon) {
        auto poly = index::RecordPolygon(record);
        if (!poly.ok()) return false;
        const Polygon drawn =
            SimplifyPolygon(poly.value(), simplify_tolerance);
        for (const Segment& edge : drawn.Edges()) {
          canvas->DrawSegment(edge);
        }
        return true;
      }
      auto env = index::RecordEnvelope(shape, record);
      if (!env.ok()) return false;
      const Envelope& e = env.value();
      canvas->DrawSegment(Segment(e.BottomLeft(), e.BottomRight()));
      canvas->DrawSegment(Segment(e.BottomRight(), e.TopRight()));
      canvas->DrawSegment(Segment(e.TopRight(), e.TopLeft()));
      canvas->DrawSegment(Segment(e.TopLeft(), e.BottomLeft()));
      return true;
    }
  }
  return false;
}

/// Map side of the single-level plot: rasterize the split into a private
/// canvas, emit non-zero pixels keyed by row (zero-padded, so each
/// reducer handles a band of rows).
class PlotMapper : public mapreduce::Mapper {
 public:
  PlotMapper(index::ShapeType shape, PlotOptions options, Envelope world)
      : shape_(shape),
        options_(options),
        canvas_(options.width, options.height, world) {}

  void Map(std::string_view record, MapContext& ctx) override {
    if (index::IsMetadataRecord(record)) return;
    if (!RasterizeRecord(shape_, options_.layer, options_.simplify_tolerance,
                         record, &canvas_)) {
      ctx.counters().Increment("plot.bad_records");
    }
    ctx.ChargeCpu(100);  // Rasterization per record.
  }

  void EndSplit(MapContext& ctx) override {
    for (int y = 0; y < canvas_.height(); ++y) {
      for (int x = 0; x < canvas_.width(); ++x) {
        const double v = canvas_.At(x, y);
        if (v == 0.0) continue;
        char key[16];
        std::snprintf(key, sizeof(key), "%08d", y);
        ctx.Emit(key, std::to_string(x) + "," + FormatDouble(v));
      }
    }
  }

 private:
  index::ShapeType shape_;
  PlotOptions options_;
  Canvas canvas_;
};

/// Reduce side: pixel-wise sum of one row.
class PlotReducer : public mapreduce::Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mapreduce::ReduceContext& ctx) override {
    auto row = ParseInt64(key);
    if (!row.ok()) {
      ctx.Fail(row.status());
      return;
    }
    std::map<int64_t, double> pixels;
    for (const std::string& value : values) {
      auto fields = SplitString(value, ',');
      if (fields.size() != 2) continue;
      auto x = ParseInt64(fields[0]);
      auto v = ParseDouble(fields[1]);
      if (x.ok() && v.ok()) pixels[x.value()] += v.value();
    }
    ctx.ChargeCpu(pixels.size() * 20);
    for (const auto& [x, v] : pixels) {
      ctx.Write(std::to_string(x) + "," + key + "," + FormatDouble(v));
    }
  }
};

Result<Canvas> RunPlotJob(mapreduce::JobRunner* runner,
                          std::vector<mapreduce::InputSplit> splits,
                          index::ShapeType shape, const PlotOptions& options,
                          const Envelope& world, core::OpStats* stats) {
  JobConfig job;
  job.name = "plot";
  job.splits = std::move(splits);
  job.mapper = [shape, options, world]() {
    return std::make_unique<PlotMapper>(shape, options, world);
  };
  job.reducer = []() { return std::make_unique<PlotReducer>(); };
  job.num_reducers = runner->cluster().num_slots;
  JobResult result = runner->Run(job);
  SHADOOP_RETURN_NOT_OK(result.status);
  if (stats != nullptr) stats->Accumulate(result);

  Canvas canvas(options.width, options.height, world);
  for (const std::string& line : result.output) {
    SHADOOP_RETURN_NOT_OK(canvas.AccumulateSparseRecord(line));
  }
  return canvas;
}

// ---------------------------------------------------------------------
// Pyramid

/// Map side of the multilevel plot: each record center contributes one
/// pixel per level, keyed by tile.
class PyramidMapper : public mapreduce::Mapper {
 public:
  PyramidMapper(index::ShapeType shape, PyramidOptions options,
                Envelope world)
      : shape_(shape), options_(options), world_(world) {}

  void Map(std::string_view record, MapContext& ctx) override {
    if (index::IsMetadataRecord(record)) return;
    auto env = index::RecordEnvelope(shape_, record);
    if (!env.ok()) {
      ctx.counters().Increment("plot.bad_records");
      return;
    }
    const Point p = env.value().Center();
    if (!world_.Contains(p) || world_.Width() <= 0 || world_.Height() <= 0) {
      return;
    }
    for (int level = 0; level < options_.num_levels; ++level) {
      const int tiles = 1 << level;
      const double fx = (p.x - world_.min_x()) / world_.Width();
      const double fy = (world_.max_y() - p.y) / world_.Height();
      const int global_px = std::min(
          tiles * options_.tile_size - 1,
          static_cast<int>(fx * tiles * options_.tile_size));
      const int global_py = std::min(
          tiles * options_.tile_size - 1,
          static_cast<int>(fy * tiles * options_.tile_size));
      const int tx = global_px / options_.tile_size;
      const int ty = global_py / options_.tile_size;
      char key[32];
      std::snprintf(key, sizeof(key), "%02d-%04d-%04d", level, tx, ty);
      ctx.Emit(key,
               std::to_string(global_px % options_.tile_size) + "," +
                   std::to_string(global_py % options_.tile_size) + ",1");
      ctx.ChargeCpu(50);
    }
  }

 private:
  index::ShapeType shape_;
  PyramidOptions options_;
  Envelope world_;
};

/// Combiner/reducer for pyramid tiles: sums pixel weights within a tile.
class PyramidReducer : public mapreduce::Reducer {
 public:
  explicit PyramidReducer(bool final_pass) : final_(final_pass) {}

  void Reduce(const std::string& key, const std::vector<std::string>& values,
              mapreduce::ReduceContext& ctx) override {
    std::map<std::pair<int64_t, int64_t>, double> pixels;
    for (const std::string& value : values) {
      auto fields = SplitString(value, ',');
      if (fields.size() != 3) continue;
      auto x = ParseInt64(fields[0]);
      auto y = ParseInt64(fields[1]);
      auto v = ParseDouble(fields[2]);
      if (x.ok() && y.ok() && v.ok()) {
        pixels[{x.value(), y.value()}] += v.value();
      }
    }
    ctx.ChargeCpu(pixels.size() * 20);
    for (const auto& [xy, v] : pixels) {
      const std::string pixel = std::to_string(xy.first) + "," +
                                std::to_string(xy.second) + "," +
                                FormatDouble(v);
      ctx.Write(final_ ? key + "|" + pixel : pixel);
    }
  }

 private:
  bool final_;
};

}  // namespace

Envelope TileWorld(const Envelope& world, const TileId& tile) {
  const int tiles = 1 << tile.level;
  const double w = world.Width() / tiles;
  const double h = world.Height() / tiles;
  // Tile y counts from the top (screen convention).
  const double max_y = world.max_y() - tile.y * h;
  return Envelope(world.min_x() + tile.x * w, max_y - h,
                  world.min_x() + (tile.x + 1) * w, max_y);
}

Result<Canvas> PlotHadoop(mapreduce::JobRunner* runner,
                          const std::string& path, index::ShapeType shape,
                          const PlotOptions& options, core::OpStats* stats) {
  // Unindexed inputs need an MBR scan first (one extra job).
  SHADOOP_ASSIGN_OR_RETURN(Envelope world,
                           core::ComputeFileMbr(runner, path, shape, stats));
  SHADOOP_ASSIGN_OR_RETURN(
      std::vector<mapreduce::InputSplit> splits,
      mapreduce::MakeBlockSplits(*runner->file_system(), path));
  return RunPlotJob(runner, std::move(splits), shape, options, world, stats);
}

Result<Canvas> PlotSpatial(mapreduce::JobRunner* runner,
                           const index::SpatialFileInfo& file,
                           const PlotOptions& options, core::OpStats* stats) {
  const Envelope world = file.global_index.Bounds();
  SHADOOP_ASSIGN_OR_RETURN(std::vector<mapreduce::InputSplit> splits,
                           core::SpatialSplits(file, core::KeepAllFilter));
  return RunPlotJob(runner, std::move(splits), file.shape, options, world,
                    stats);
}

Result<std::map<TileId, Canvas>> PlotPyramid(mapreduce::JobRunner* runner,
                                             const index::SpatialFileInfo& file,
                                             const PyramidOptions& options,
                                             const std::string& output_prefix,
                                             core::OpStats* stats) {
  if (options.layer != PlotLayer::kPoints) {
    return Status::Unimplemented(
        "pyramid plotting currently supports the points layer only");
  }
  if (options.num_levels < 1 || options.num_levels > 8) {
    return Status::InvalidArgument("num_levels must be in [1, 8]");
  }
  const Envelope world = file.global_index.Bounds();

  JobConfig job;
  job.name = "plot-pyramid";
  SHADOOP_ASSIGN_OR_RETURN(job.splits,
                           core::SpatialSplits(file, core::KeepAllFilter));
  const index::ShapeType shape = file.shape;
  const PyramidOptions opts = options;
  job.mapper = [shape, opts, world]() {
    return std::make_unique<PyramidMapper>(shape, opts, world);
  };
  job.combiner = []() { return std::make_unique<PyramidReducer>(false); };
  job.reducer = []() { return std::make_unique<PyramidReducer>(true); };
  job.num_reducers = runner->cluster().num_slots;
  JobResult result = runner->Run(job);
  SHADOOP_RETURN_NOT_OK(result.status);
  if (stats != nullptr) stats->Accumulate(result);

  // Assemble tiles from "LL-XXXX-YYYY|px,py,v" lines.
  std::map<TileId, Canvas> tiles;
  for (const std::string& line : result.output) {
    const size_t bar = line.find('|');
    if (bar == std::string::npos || bar < 10) {
      return Status::Internal("bad pyramid output line: " + line);
    }
    TileId id;
    SHADOOP_ASSIGN_OR_RETURN(int64_t level, ParseInt64(line.substr(0, 2)));
    SHADOOP_ASSIGN_OR_RETURN(int64_t tx, ParseInt64(line.substr(3, 4)));
    SHADOOP_ASSIGN_OR_RETURN(int64_t ty, ParseInt64(line.substr(8, 4)));
    id.level = static_cast<int>(level);
    id.x = static_cast<int>(tx);
    id.y = static_cast<int>(ty);
    auto [it, inserted] = tiles.try_emplace(
        id, options.tile_size, options.tile_size, TileWorld(world, id));
    SHADOOP_RETURN_NOT_OK(
        it->second.AccumulateSparseRecord(line.substr(bar + 1)));
  }

  if (!output_prefix.empty()) {
    for (const auto& [id, canvas] : tiles) {
      const std::string path = output_prefix + "/tile-" +
                               std::to_string(id.level) + "-" +
                               std::to_string(id.x) + "-" +
                               std::to_string(id.y);
      SHADOOP_RETURN_NOT_OK(
          StoreCanvas(runner->file_system(), path, canvas));
    }
  }
  return tiles;
}

Status StoreCanvas(hdfs::FileSystem* fs, const std::string& path,
                   const Canvas& canvas) {
  std::vector<std::string> lines;
  lines.push_back("#canvas " + std::to_string(canvas.width()) + " " +
                  std::to_string(canvas.height()) + " " +
                  EnvelopeToCsv(canvas.world()));
  for (std::string& record : canvas.ToSparseRecords()) {
    lines.push_back(std::move(record));
  }
  return fs->WriteLines(path, lines);
}

Result<Canvas> LoadCanvas(const hdfs::FileSystem& fs,
                          const std::string& path) {
  SHADOOP_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                           fs.ReadLines(path));
  if (lines.empty() || lines.front().rfind("#canvas ", 0) != 0) {
    return Status::ParseError("missing canvas header in " + path);
  }
  auto fields = SplitWhitespace(std::string_view(lines.front()).substr(8));
  if (fields.size() != 3) {
    return Status::ParseError("bad canvas header: " + lines.front());
  }
  SHADOOP_ASSIGN_OR_RETURN(int64_t width, ParseInt64(fields[0]));
  SHADOOP_ASSIGN_OR_RETURN(int64_t height, ParseInt64(fields[1]));
  SHADOOP_ASSIGN_OR_RETURN(Envelope world, ParseEnvelopeCsv(fields[2]));
  Canvas canvas(static_cast<int>(width), static_cast<int>(height), world);
  for (size_t i = 1; i < lines.size(); ++i) {
    SHADOOP_RETURN_NOT_OK(canvas.AccumulateSparseRecord(lines[i]));
  }
  return canvas;
}

}  // namespace shadoop::viz
