#ifndef SHADOOP_VIZ_CANVAS_H_
#define SHADOOP_VIZ_CANVAS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "geometry/envelope.h"
#include "geometry/point.h"
#include "geometry/segment.h"

namespace shadoop::viz {

/// A raster accumulation canvas: a width x height grid of double
/// intensities mapped onto a world-coordinate envelope. Map tasks
/// rasterize their partition into a private Canvas, ship it through the
/// shuffle in sparse text form, and reducers merge by pixel — the
/// HadoopViz single-level plotting pattern.
class Canvas {
 public:
  Canvas() = default;
  Canvas(int width, int height, const Envelope& world);

  int width() const { return width_; }
  int height() const { return height_; }
  const Envelope& world() const { return world_; }
  bool IsEmpty() const { return pixels_.empty(); }

  /// Intensity at pixel (x, y); (0, 0) is the top-left corner.
  double At(int x, int y) const { return pixels_[Index(x, y)]; }
  void Set(int x, int y, double value) { pixels_[Index(x, y)] = value; }

  /// Accumulates `weight` at the pixel covering world point `p`
  /// (no-op outside the world envelope).
  void AddPoint(const Point& p, double weight = 1.0);

  /// Rasterizes a world-coordinate segment (DDA walk), accumulating
  /// `weight` into every pixel it crosses.
  void DrawSegment(const Segment& s, double weight = 1.0);

  /// Pixel-wise sum; canvases must have identical geometry.
  Status MergeFrom(const Canvas& other);

  /// Largest intensity (0 for an empty canvas).
  double MaxIntensity() const;

  /// Number of pixels with non-zero intensity.
  size_t CountNonZero() const;

  /// Sparse text codec used on the shuffle: one "x,y,value" record per
  /// non-zero pixel.
  std::vector<std::string> ToSparseRecords() const;
  Status AccumulateSparseRecord(std::string_view record);

  /// Binary PGM (grayscale) with log intensity scaling — dense point data
  /// stays readable. The returned string is the full file payload.
  std::string ToPgm() const;

  /// Binary PPM with a heat palette (black -> red -> yellow -> white).
  std::string ToPpm() const;

 private:
  size_t Index(int x, int y) const {
    return static_cast<size_t>(y) * width_ + x;
  }
  /// World -> pixel transform; false when outside.
  bool ToPixel(const Point& p, int* x, int* y) const;

  int width_ = 0;
  int height_ = 0;
  Envelope world_;
  std::vector<double> pixels_;
};

}  // namespace shadoop::viz

#endif  // SHADOOP_VIZ_CANVAS_H_
