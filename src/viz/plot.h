#ifndef SHADOOP_VIZ_PLOT_H_
#define SHADOOP_VIZ_PLOT_H_

#include <map>
#include <string>

#include "common/result.h"
#include "core/op_stats.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"
#include "viz/canvas.h"

namespace shadoop::viz {

/// What to rasterize per record.
enum class PlotLayer {
  kPoints,    // One pixel per record center.
  kOutlines,  // Polygon / rectangle boundaries as line work.
};

struct PlotOptions {
  int width = 512;
  int height = 512;
  PlotLayer layer = PlotLayer::kPoints;
  /// kOutlines only: Douglas–Peucker tolerance (world units) applied to
  /// polygon rings before rasterizing — sub-pixel detail is invisible at
  /// low zoom and costs rasterization CPU. 0 disables.
  double simplify_tolerance = 0.0;
};

/// Single-level plot: rasterizes a whole file into one canvas with a
/// MapReduce job (map: rasterize one split into a partial canvas; shuffle:
/// sparse pixels keyed by row band; reduce: pixel-wise merge).
///
/// The Hadoop flavour computes the file MBR with an extra scan job. The
/// SpatialHadoop flavour gets the MBR from the global index for free, and
/// its spatially clustered partitions touch few pixel rows each, so the
/// row-band shuffle is better aggregated — less data shuffled for the
/// same image.
Result<Canvas> PlotHadoop(mapreduce::JobRunner* runner,
                          const std::string& path, index::ShapeType shape,
                          const PlotOptions& options,
                          core::OpStats* stats = nullptr);

Result<Canvas> PlotSpatial(mapreduce::JobRunner* runner,
                           const index::SpatialFileInfo& file,
                           const PlotOptions& options,
                           core::OpStats* stats = nullptr);

/// Tile address in a multilevel pyramid: level 0 is one tile covering the
/// world; level L is a 2^L x 2^L tile grid.
struct TileId {
  int level = 0;
  int x = 0;
  int y = 0;

  friend bool operator<(const TileId& a, const TileId& b) {
    return std::tie(a.level, a.x, a.y) < std::tie(b.level, b.x, b.y);
  }
  friend bool operator==(const TileId& a, const TileId& b) {
    return a.level == b.level && a.x == b.x && a.y == b.y;
  }
};

struct PyramidOptions {
  int tile_size = 256;
  int num_levels = 3;  // Levels 0 .. num_levels-1.
  PlotLayer layer = PlotLayer::kPoints;
};

/// Multilevel plot: one MapReduce job produces every tile of every zoom
/// level (the web-map pyramid). Only non-empty tiles are materialized.
/// When `output_prefix` is non-empty, each tile is also stored in HDFS as
/// "<prefix>/tile-<level>-<x>-<y>" in the text canvas format (see
/// StoreCanvas); convert to PGM/PPM locally with Canvas::ToPgm().
Result<std::map<TileId, Canvas>> PlotPyramid(
    mapreduce::JobRunner* runner, const index::SpatialFileInfo& file,
    const PyramidOptions& options, const std::string& output_prefix = "",
    core::OpStats* stats = nullptr);

/// World envelope of one pyramid tile.
Envelope TileWorld(const Envelope& world, const TileId& tile);

/// Persists a canvas as an HDFS text file: a "#canvas W H <world-csv>"
/// header followed by sparse pixel records. (HDFS files here are
/// line-oriented, so binary image formats are rendered locally instead.)
Status StoreCanvas(hdfs::FileSystem* fs, const std::string& path,
                   const Canvas& canvas);
Result<Canvas> LoadCanvas(const hdfs::FileSystem& fs, const std::string& path);

}  // namespace shadoop::viz

#endif  // SHADOOP_VIZ_PLOT_H_
