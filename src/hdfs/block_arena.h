#ifndef SHADOOP_HDFS_BLOCK_ARENA_H_
#define SHADOOP_HDFS_BLOCK_ARENA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace shadoop::hdfs {

/// Owns the bytes behind `std::string_view` records so the data path can
/// stay zero-copy: a block's payload is pinned once (shared with the
/// datanode store, never duplicated) and every record of the block is a
/// slice of it. Bytes that do not come from a block — combiner output,
/// records assembled by an operation — are interned into bump-allocated
/// chunks, so their views are equally stable.
///
/// Lifetime contract: every view returned by AddBlock()/Intern() stays
/// valid until Clear() or destruction, regardless of how much is added
/// afterwards (chunks grow by adding new chunks, never by reallocating
/// old ones).
class BlockArena {
 public:
  BlockArena() = default;
  BlockArena(const BlockArena&) = delete;
  BlockArena& operator=(const BlockArena&) = delete;
  BlockArena(BlockArena&&) = default;
  BlockArena& operator=(BlockArena&&) = default;

  /// Pins a block payload and returns views of its records (lines). The
  /// payload is shared with the file system's block store — no bytes are
  /// copied.
  std::vector<std::string_view> AddBlock(
      std::shared_ptr<const std::string> payload);

  /// Copies `bytes` into arena-owned storage and returns a stable view.
  std::string_view Intern(std::string_view bytes);

  /// Releases every pinned block and interned chunk. All previously
  /// returned views become invalid.
  void Clear();

  size_t pinned_blocks() const { return pinned_.size(); }
  size_t interned_bytes() const { return interned_bytes_; }
  bool empty() const { return pinned_.empty() && chunks_.empty(); }

 private:
  static constexpr size_t kMinChunkBytes = 16 * 1024;

  std::vector<std::shared_ptr<const std::string>> pinned_;
  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_capacity_ = 0;  // Capacity of chunks_.back().
  size_t chunk_used_ = 0;      // Bytes used in chunks_.back().
  size_t interned_bytes_ = 0;
};

/// Splits a block payload into record views (lines) without copying. The
/// views alias `payload`; an unterminated final line is included.
std::vector<std::string_view> SplitBlockIntoRecordViews(
    std::string_view payload);

}  // namespace shadoop::hdfs

#endif  // SHADOOP_HDFS_BLOCK_ARENA_H_
