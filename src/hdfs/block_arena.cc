#include "hdfs/block_arena.h"

#include <algorithm>
#include <cstring>

namespace shadoop::hdfs {

std::vector<std::string_view> BlockArena::AddBlock(
    std::shared_ptr<const std::string> payload) {
  if (payload == nullptr || payload->empty()) return {};
  std::vector<std::string_view> records = SplitBlockIntoRecordViews(*payload);
  pinned_.push_back(std::move(payload));
  return records;
}

std::string_view BlockArena::Intern(std::string_view bytes) {
  if (bytes.empty()) return {};
  if (chunks_.empty() || chunk_used_ + bytes.size() > chunk_capacity_) {
    chunk_capacity_ = std::max(kMinChunkBytes, bytes.size());
    chunks_.push_back(std::make_unique<char[]>(chunk_capacity_));
    chunk_used_ = 0;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, bytes.data(), bytes.size());
  chunk_used_ += bytes.size();
  interned_bytes_ += bytes.size();
  return {dst, bytes.size()};
}

void BlockArena::Clear() {
  pinned_.clear();
  chunks_.clear();
  chunk_capacity_ = 0;
  chunk_used_ = 0;
  interned_bytes_ = 0;
}

std::vector<std::string_view> SplitBlockIntoRecordViews(
    std::string_view payload) {
  std::vector<std::string_view> records;
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string_view::npos) end = payload.size();
    records.push_back(payload.substr(start, end - start));
    start = end + 1;
  }
  return records;
}

}  // namespace shadoop::hdfs
