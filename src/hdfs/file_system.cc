#include "hdfs/file_system.h"

#include <algorithm>

#include "common/logging.h"
#include "fault/fault_injector.h"

namespace shadoop::hdfs {
namespace {

/// FNV-1a over the payload; never returns 0 (0 means "unrecorded").
uint64_t BlockChecksum(const std::string& payload) {
  uint64_t hash = 14695981039346656037ULL;
  for (char c : payload) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash == 0 ? 1 : hash;
}

}  // namespace

// ---------------------------------------------------------------------------
// FileWriter

FileWriter::FileWriter(FileSystem* fs, std::string path) : fs_(fs) {
  meta_.path = std::move(path);
}

FileWriter::~FileWriter() {
  if (!closed_) {
    SHADOOP_LOG(Warning) << "FileWriter for '" << meta_.path
                         << "' destroyed without Close(); file discarded";
  }
}

void FileWriter::Append(std::string_view line) {
  SHADOOP_DCHECK(!closed_);
  current_block_.append(line);
  current_block_.push_back('\n');
  ++current_records_;
  if (auto_seal_ && current_block_.size() >= fs_->config().block_size) {
    SealCurrentBlock();
  }
}

void FileWriter::EndBlock() {
  SHADOOP_DCHECK(!closed_);
  SealCurrentBlock();
}

void FileWriter::SealCurrentBlock() {
  if (current_block_.empty()) return;
  meta_.total_bytes += current_block_.size();
  meta_.total_records += current_records_;
  meta_.blocks.push_back(
      fs_->StoreBlock(std::move(current_block_), current_records_));
  current_block_.clear();
  current_records_ = 0;
}

Status FileWriter::Close() {
  if (closed_) return Status::OK();
  SealCurrentBlock();
  closed_ = true;
  return appending_ ? fs_->Update(std::move(meta_))
                    : fs_->Register(std::move(meta_));
}

// ---------------------------------------------------------------------------
// FileSystem

FileSystem::FileSystem(HdfsConfig config)
    : config_(config),
      nodes_(static_cast<size_t>(std::max(1, config.num_datanodes))),
      node_alive_(nodes_.size(), true) {
  config_.num_datanodes = static_cast<int>(nodes_.size());
  config_.replication =
      std::clamp(config_.replication, 1, config_.num_datanodes);
}

Result<std::unique_ptr<FileWriter>> FileSystem::Create(
    const std::string& path) {
  {
    MutexLock lock(&mu_);
    if (files_.count(path) > 0) {
      return Status::AlreadyExists("file exists: " + path);
    }
  }
  return std::unique_ptr<FileWriter>(new FileWriter(this, path));
}

Result<std::unique_ptr<FileWriter>> FileSystem::Append(
    const std::string& path) {
  auto writer = std::unique_ptr<FileWriter>(new FileWriter(this, path));
  {
    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    // The writer starts from the current meta; existing blocks (shared
    // payloads) stay where they are and keep their indexes.
    writer->meta_ = it->second;
  }
  writer->appending_ = true;
  return writer;
}

Status FileSystem::WriteLines(const std::string& path,
                              const std::vector<std::string>& lines) {
  SHADOOP_ASSIGN_OR_RETURN(std::unique_ptr<FileWriter> writer, Create(path));
  for (const std::string& line : lines) writer->Append(line);
  return writer->Close();
}

bool FileSystem::Exists(const std::string& path) const {
  MutexLock lock(&mu_);
  return files_.count(path) > 0;
}

Result<FileMeta> FileSystem::GetFileMeta(const std::string& path) const {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second;
}

Result<std::vector<std::string>> FileSystem::ReadBlock(
    const std::string& path, size_t block_index) const {
  SHADOOP_ASSIGN_OR_RETURN(std::shared_ptr<const std::string> payload,
                           ReadBlockRaw(path, block_index));
  return SplitBlockIntoRecords(*payload);
}

Result<std::shared_ptr<const std::string>> FileSystem::ReadBlockRaw(
    const std::string& path, size_t block_index) const {
  std::shared_ptr<const std::string> payload;
  size_t payload_bytes = 0;
  {
    MutexLock lock(&mu_);
    auto it = files_.find(path);
    if (it == files_.end()) return Status::NotFound("no such file: " + path);
    if (block_index >= it->second.blocks.size()) {
      return Status::InvalidArgument("block index out of range for " + path);
    }
    const BlockMeta& block = it->second.blocks[block_index];
    std::vector<int> alive;
    alive.reserve(block.replica_nodes.size());
    for (int node : block.replica_nodes) {
      if (node_alive_[node]) alive.push_back(node);
    }
    if (alive.empty()) {
      return Status::IoError("all replicas unavailable for block " +
                             std::to_string(block.id) + " of " + path);
    }
    fault::FaultInjector* injector =
        fault_injector_.load(std::memory_order_acquire);
    for (size_t r = 0; r < alive.size(); ++r) {
      const int node = alive[r];
      // The last alive replica is always allowed to succeed, so injected
      // read faults degrade to failovers, never to data loss.
      const bool last_resort = r + 1 == alive.size();
      if (injector != nullptr && !last_resort) {
        // Injected replica fault: a dead-disk I/O error, or corrupt bytes
        // (modeled as a checksum mismatch). Either way the client skips
        // this replica and fails over to the next one.
        const fault::FaultInjector::ReadFault fault =
            injector->ReadFaultAt(block.id, node);
        if (fault != fault::FaultInjector::ReadFault::kNone) {
          injector->RecordReplicaFailover(fault);
          continue;
        }
      }
      auto blk = nodes_[node].find(block.id);
      SHADOOP_DCHECK(blk != nodes_[node].end());
      // End-to-end verification of genuinely corrupt stored bytes, active
      // only for blocks whose checksum was recorded at write time.
      if (block.checksum != 0 && !last_resort &&
          BlockChecksum(*blk->second) != block.checksum) {
        if (injector != nullptr) {
          injector->RecordReplicaFailover(
              fault::FaultInjector::ReadFault::kCorruption);
        }
        continue;
      }
      payload = blk->second;
      break;
    }
    if (payload == nullptr) {
      return Status::IoError("all replicas unavailable for block " +
                             std::to_string(block.id) + " of " + path);
    }
    payload_bytes = block.num_bytes;
  }
  io_stats_.bytes_read += payload_bytes;
  io_stats_.blocks_read += 1;
  return payload;
}

Result<std::vector<std::string>> FileSystem::ReadLines(
    const std::string& path) const {
  SHADOOP_ASSIGN_OR_RETURN(FileMeta meta, GetFileMeta(path));
  std::vector<std::string> lines;
  lines.reserve(meta.total_records);
  for (size_t i = 0; i < meta.blocks.size(); ++i) {
    SHADOOP_ASSIGN_OR_RETURN(std::vector<std::string> block_lines,
                             ReadBlock(path, i));
    for (std::string& line : block_lines) lines.push_back(std::move(line));
  }
  return lines;
}

Status FileSystem::Delete(const std::string& path) {
  MutexLock lock(&mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  DropBlocks(it->second);
  files_.erase(it);
  return Status::OK();
}

Status FileSystem::Rename(const std::string& src, const std::string& dst) {
  MutexLock lock(&mu_);
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound("no such file: " + src);
  if (files_.count(dst) > 0) {
    return Status::AlreadyExists("destination exists: " + dst);
  }
  FileMeta meta = std::move(it->second);
  files_.erase(it);
  meta.path = dst;
  files_.emplace(dst, std::move(meta));
  return Status::OK();
}

Status FileSystem::Replace(const std::string& src, const std::string& dst) {
  MutexLock lock(&mu_);
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound("no such file: " + src);
  auto dst_it = files_.find(dst);
  if (dst_it != files_.end()) {
    DropBlocks(dst_it->second);
    files_.erase(dst_it);
  }
  FileMeta meta = std::move(it->second);
  files_.erase(it);
  meta.path = dst;
  files_.emplace(dst, std::move(meta));
  return Status::OK();
}

std::vector<std::string> FileSystem::ListFiles(
    const std::string& prefix) const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void FileSystem::SetNodeAlive(int node_id, bool alive) {
  MutexLock lock(&mu_);
  if (node_id >= 0 && node_id < static_cast<int>(node_alive_.size())) {
    node_alive_[node_id] = alive;
  }
}

int FileSystem::CountAliveNodes() const {
  MutexLock lock(&mu_);
  return static_cast<int>(
      std::count(node_alive_.begin(), node_alive_.end(), true));
}

BlockMeta FileSystem::StoreBlock(std::string payload, size_t num_records) {
  MutexLock lock(&mu_);
  BlockMeta meta;
  meta.id = next_block_id_++;
  meta.num_bytes = payload.size();
  meta.num_records = num_records;
  // Checksums exist to detect (injected) corruption; recording them only
  // under an installed injector keeps the clean write path untouched.
  if (fault_injector_.load(std::memory_order_acquire) != nullptr) {
    meta.checksum = BlockChecksum(payload);
  }
  auto shared = std::make_shared<const std::string>(std::move(payload));
  for (int r = 0; r < config_.replication; ++r) {
    const int node = (next_placement_node_ + r) % config_.num_datanodes;
    nodes_[node][meta.id] = shared;
    meta.replica_nodes.push_back(node);
  }
  next_placement_node_ = (next_placement_node_ + 1) % config_.num_datanodes;
  io_stats_.bytes_written += meta.num_bytes;
  io_stats_.blocks_written += 1;
  return meta;
}

Status FileSystem::Register(FileMeta meta) {
  MutexLock lock(&mu_);
  if (files_.count(meta.path) > 0) {
    // Lost a create/create race: drop our blocks, keep the winner.
    DropBlocks(meta);
    return Status::AlreadyExists("file exists: " + meta.path);
  }
  std::string path = meta.path;
  files_.emplace(std::move(path), std::move(meta));
  return Status::OK();
}

Status FileSystem::Update(FileMeta meta) {
  MutexLock lock(&mu_);
  auto it = files_.find(meta.path);
  if (it == files_.end()) {
    // The file vanished mid-append; publish anyway (the meta owns every
    // block it references, old and new alike).
    std::string path = meta.path;
    files_.emplace(std::move(path), std::move(meta));
    return Status::OK();
  }
  it->second = std::move(meta);
  return Status::OK();
}

void FileSystem::DropBlocks(const FileMeta& meta) {
  for (const BlockMeta& block : meta.blocks) {
    for (int node : block.replica_nodes) {
      nodes_[node].erase(block.id);
    }
  }
}

std::vector<std::string> SplitBlockIntoRecords(const std::string& payload) {
  std::vector<std::string> records;
  size_t start = 0;
  while (start < payload.size()) {
    size_t end = payload.find('\n', start);
    if (end == std::string::npos) end = payload.size();
    records.emplace_back(payload, start, end - start);
    start = end + 1;
  }
  return records;
}

}  // namespace shadoop::hdfs
