#ifndef SHADOOP_HDFS_HDFS_CONFIG_H_
#define SHADOOP_HDFS_HDFS_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace shadoop::hdfs {

/// Tuning knobs of the simulated distributed file system. Real Hadoop
/// defaults to 64 MB blocks; the simulator defaults to 256 KiB so that a
/// laptop-scale dataset still spans enough blocks to exercise partition
/// pruning, task scheduling and replication the way a cluster-scale
/// dataset would.
struct HdfsConfig {
  /// Target block payload size in bytes. Blocks are split at record
  /// boundaries so the actual size may exceed this by one record.
  size_t block_size = 256 * 1024;

  /// Number of simulated datanodes.
  int num_datanodes = 25;

  /// Copies of each block; reads survive up to replication-1 node losses.
  int replication = 3;
};

}  // namespace shadoop::hdfs

#endif  // SHADOOP_HDFS_HDFS_CONFIG_H_
