#ifndef SHADOOP_HDFS_FILE_SYSTEM_H_
#define SHADOOP_HDFS_FILE_SYSTEM_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "hdfs/hdfs_config.h"

namespace shadoop::fault {
class FaultInjector;
}  // namespace shadoop::fault

namespace shadoop::hdfs {

/// Globally unique block identifier.
using BlockId = uint64_t;

/// Per-block metadata held by the namenode.
struct BlockMeta {
  BlockId id = 0;
  size_t num_bytes = 0;
  size_t num_records = 0;
  std::vector<int> replica_nodes;  // Datanode ids holding a copy.
  /// FNV-1a of the payload, recorded at write time when a fault injector
  /// is installed; 0 means unrecorded (no verification on read). Lets the
  /// client detect a corrupt replica read and fail over.
  uint64_t checksum = 0;
};

/// Per-file metadata held by the namenode.
struct FileMeta {
  std::string path;
  std::vector<BlockMeta> blocks;
  size_t total_bytes = 0;
  size_t total_records = 0;
};

/// Byte-level I/O accounting; the MapReduce cost model reads these.
struct IoStats {
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> blocks_written{0};
  std::atomic<uint64_t> blocks_read{0};

  void Reset() {
    bytes_written = 0;
    bytes_read = 0;
    blocks_written = 0;
    blocks_read = 0;
  }
};

class FileSystem;

/// Streaming writer that packs records (text lines) into blocks, cutting
/// a new block whenever the current one reaches the configured size.
/// Close() must be called to publish the file to the namenode.
class FileWriter {
 public:
  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Appends one record. `line` must not contain '\n'.
  void Append(std::string_view line);

  /// Forces a block boundary after the current record. The spatial index
  /// builder uses this to store exactly one partition per block, so that
  /// the global index can address partitions as (file, block) pairs.
  void EndBlock();

  /// Disables size-based block cuts: blocks end only at EndBlock(). The
  /// index builder sets this so a partition slightly larger than the
  /// block size still occupies exactly one block.
  void set_auto_seal(bool auto_seal) { auto_seal_ = auto_seal; }

  /// Seals the current block (if non-empty) and registers the file.
  Status Close();

 private:
  friend class FileSystem;
  FileWriter(FileSystem* fs, std::string path);
  void SealCurrentBlock();

  FileSystem* fs_;
  FileMeta meta_;
  std::string current_block_;
  size_t current_records_ = 0;
  bool closed_ = false;
  bool auto_seal_ = true;
  bool appending_ = false;  // Opened by FileSystem::Append.
};

/// In-process simulation of HDFS: a namenode (file → blocks → replica
/// placement) plus `num_datanodes` block stores. Thread-safe; the
/// MapReduce engine reads blocks from many worker threads concurrently.
class FileSystem {
 public:
  explicit FileSystem(HdfsConfig config = HdfsConfig());

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  const HdfsConfig& config() const { return config_; }

  /// Creates a file for streaming writes. Fails if the path exists.
  Result<std::unique_ptr<FileWriter>> Create(const std::string& path)
      SHADOOP_EXCLUDES(mu_);

  /// Reopens an existing file for appending. New records go into *new*
  /// blocks after the existing ones, whose (path, block_index) addresses
  /// and payloads stay untouched — readers holding block references (e.g.
  /// a pinned dataset snapshot) are never invalidated by an append.
  /// Close() republishes the extended file meta; concurrent appenders to
  /// one path must serialize externally (last Close wins).
  Result<std::unique_ptr<FileWriter>> Append(const std::string& path)
      SHADOOP_EXCLUDES(mu_);

  /// Renames src onto dst, replacing dst if it exists (the replaced
  /// file's blocks are dropped). This is the atomic pointer-swap the
  /// dataset catalog uses to publish a new current version.
  Status Replace(const std::string& src, const std::string& dst)
      SHADOOP_EXCLUDES(mu_);

  /// Convenience: writes all `lines` as one file.
  Status WriteLines(const std::string& path,
                    const std::vector<std::string>& lines);

  bool Exists(const std::string& path) const SHADOOP_EXCLUDES(mu_);

  Result<FileMeta> GetFileMeta(const std::string& path) const
      SHADOOP_EXCLUDES(mu_);

  /// Reads the records of one block. Fails with IoError when every replica
  /// lives on a dead datanode.
  Result<std::vector<std::string>> ReadBlock(const std::string& path,
                                             size_t block_index) const;

  /// Zero-copy read of one block: returns the stored payload itself
  /// (shared with the datanode, never duplicated) so callers can slice
  /// records out of it without copying — see hdfs/block_arena.h. I/O
  /// accounting is identical to ReadBlock.
  Result<std::shared_ptr<const std::string>> ReadBlockRaw(
      const std::string& path, size_t block_index) const
      SHADOOP_EXCLUDES(mu_);

  /// Reads a whole file in block order.
  Result<std::vector<std::string>> ReadLines(const std::string& path) const;

  Status Delete(const std::string& path) SHADOOP_EXCLUDES(mu_);

  /// Renames src to dst; fails if dst exists.
  Status Rename(const std::string& src, const std::string& dst)
      SHADOOP_EXCLUDES(mu_);

  /// All paths with the given prefix, sorted.
  std::vector<std::string> ListFiles(const std::string& prefix) const
      SHADOOP_EXCLUDES(mu_);

  /// Failure injection: marks a datanode dead (its replicas unreadable) or
  /// alive again.
  void SetNodeAlive(int node_id, bool alive) SHADOOP_EXCLUDES(mu_);
  int CountAliveNodes() const SHADOOP_EXCLUDES(mu_);

  /// Installs a deterministic fault source for replica reads (I/O errors,
  /// corrupt bytes caught by block checksums). Not owned; null (the
  /// default) disables injection and block checksumming — the clean read
  /// path is byte-for-byte the pre-fault one. Install before writing the
  /// files whose reads should verify checksums.
  void set_fault_injector(fault::FaultInjector* injector) {
    fault_injector_.store(injector, std::memory_order_release);
  }
  fault::FaultInjector* fault_injector() const {
    return fault_injector_.load(std::memory_order_acquire);
  }

  IoStats& io_stats() { return io_stats_; }
  const IoStats& io_stats() const { return io_stats_; }

 private:
  friend class FileWriter;

  /// Stores a sealed block on `replication` distinct datanodes
  /// (round-robin placement) and returns its metadata.
  BlockMeta StoreBlock(std::string payload, size_t num_records)
      SHADOOP_EXCLUDES(mu_);
  Status Register(FileMeta meta) SHADOOP_EXCLUDES(mu_);
  /// Publishes the extended meta of an append (replaces the entry without
  /// dropping blocks — the new meta still references them).
  Status Update(FileMeta meta) SHADOOP_EXCLUDES(mu_);
  void DropBlocks(const FileMeta& meta) SHADOOP_REQUIRES(mu_);

  HdfsConfig config_;
  mutable Mutex mu_;
  std::map<std::string, FileMeta> files_ SHADOOP_GUARDED_BY(mu_);
  // Datanode storage: node id -> block id -> payload. Payloads are shared
  // so replicas do not multiply memory in the simulation.
  std::vector<std::map<BlockId, std::shared_ptr<const std::string>>> nodes_
      SHADOOP_GUARDED_BY(mu_);
  std::vector<bool> node_alive_ SHADOOP_GUARDED_BY(mu_);
  BlockId next_block_id_ SHADOOP_GUARDED_BY(mu_) = 1;
  int next_placement_node_ SHADOOP_GUARDED_BY(mu_) = 0;
  // Lock-free: atomic counters / atomic pointer, safe to touch unguarded.
  mutable IoStats io_stats_;
  std::atomic<fault::FaultInjector*> fault_injector_{nullptr};
};

/// Splits a block payload into records (lines). Exposed for the record
/// readers.
std::vector<std::string> SplitBlockIntoRecords(const std::string& payload);

}  // namespace shadoop::hdfs

#endif  // SHADOOP_HDFS_FILE_SYSTEM_H_
