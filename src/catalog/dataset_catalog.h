#ifndef SHADOOP_CATALOG_DATASET_CATALOG_H_
#define SHADOOP_CATALOG_DATASET_CATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/op_stats.h"
#include "index/index_builder.h"
#include "mapreduce/job_runner.h"

namespace shadoop::catalog {

/// Knobs of incremental index maintenance.
struct IngestOptions {
  /// Repartitioning trigger: when max/mean partition records exceeds this
  /// after an append, the degraded partitions (those above threshold *
  /// mean) are split. Partitioning quality degrades measurably under skew
  /// (Aji et al.), so appends must repartition, not just accumulate.
  double skew_threshold = 3.0;

  /// Bound on successive split passes per append, for determinism and
  /// bounded ingest latency.
  int max_split_rounds = 4;
};

/// Per-version partition statistics (the skew metric EXPLAIN surfaces).
struct VersionStats {
  uint64_t version = 0;
  size_t num_partitions = 0;
  uint64_t num_records = 0;
  uint64_t max_partition_records = 0;
  double mean_partition_records = 0;
  double skew = 0;  // max/mean partition records; 0 for an empty dataset.
};

/// Versioned dataset lifecycle over spatially indexed files.
///
/// Each registered dataset carries a monotonically increasing version.
/// Version 1 is a bulk build (IndexBuilder); every Append() creates a new
/// *immutable* version by copy-on-write at the partition level: only the
/// partitions the batch touches are rewritten (into the dataset's
/// append-only "@delta" file), untouched partitions are shared with the
/// previous version by (source_path, block_index) reference. Blocks are
/// never mutated, so a SpatialFileInfo obtained from Snapshot() keeps
/// returning byte-identical query results while later appends land — the
/// snapshot-pinning contract every query relies on.
///
/// Appended records are routed against the frozen partition boundaries of
/// the previous version (cells stretch outward deterministically when a
/// batch grows the space, so disjoint tilings keep covering the file and
/// the reference-point dedup of range queries stays exact). When the skew
/// metric (max/mean partition records) crosses IngestOptions::
/// skew_threshold, only the degraded partitions are split — incremental
/// repartitioning instead of a rebuild.
///
/// Durability: per-version master files ("<data>@v<N>_master"; version 1
/// keeps the plain "<data>_master") plus a "<data>@current" pointer file
/// swapped via FileSystem::Replace, so Open() can reattach a dataset in a
/// later session.
///
/// Thread-safe; Append() serializes per catalog, Snapshot() returns a
/// self-contained copy usable without any lock.
class DatasetCatalog {
 public:
  explicit DatasetCatalog(mapreduce::JobRunner* runner,
                          IngestOptions options = IngestOptions())
      : runner_(runner), options_(options) {}

  DatasetCatalog(const DatasetCatalog&) = delete;
  DatasetCatalog& operator=(const DatasetCatalog&) = delete;

  /// Registers an already-built spatial file as version 1 of `name`.
  /// Rebinding an existing name replaces its lineage (the old versions'
  /// files are left untouched).
  Status Register(const std::string& name, index::SpatialFileInfo info)
      SHADOOP_EXCLUDES(mu_);

  /// Bulk-builds `source_path` into `dest_path` (IndexBuilder) and
  /// registers the result as version 1 of `name`.
  Result<index::SpatialFileInfo> Create(const std::string& name,
                                        const std::string& source_path,
                                        const std::string& dest_path,
                                        const index::IndexBuildOptions& options,
                                        core::OpStats* stats = nullptr)
      SHADOOP_EXCLUDES(mu_);

  /// Reattaches a dataset persisted by an earlier catalog: reads the
  /// "@current" pointer (when present) and every version master up to it.
  Status Open(const std::string& name, const std::string& data_path)
      SHADOOP_EXCLUDES(mu_);

  /// Appends the records of `batch_path` as a new immutable version and
  /// returns its number. Emits nonzero-only `ingest.*` counters (and the
  /// scan job's cost) into `stats` when given.
  Result<uint64_t> Append(const std::string& name,
                          const std::string& batch_path,
                          core::OpStats* stats = nullptr)
      SHADOOP_EXCLUDES(mu_);

  /// Immutable handle to a version (0 = latest). The returned info is a
  /// copy; queries planned against it never observe later appends.
  Result<index::SpatialFileInfo> Snapshot(const std::string& name,
                                          uint64_t version = 0) const
      SHADOOP_EXCLUDES(mu_);

  Result<uint64_t> LatestVersion(const std::string& name) const
      SHADOOP_EXCLUDES(mu_);

  Result<VersionStats> Stats(const std::string& name,
                             uint64_t version = 0) const
      SHADOOP_EXCLUDES(mu_);

  bool Contains(const std::string& name) const SHADOOP_EXCLUDES(mu_);

  /// File-layout conventions (exposed for tests and tooling).
  static std::string DeltaPathFor(const std::string& data_path);
  static std::string CurrentPathFor(const std::string& data_path);
  static std::string VersionMasterPathFor(const std::string& data_path,
                                          uint64_t version);

 private:
  struct State {
    std::string data_path;
    std::vector<index::SpatialFileInfo> versions;  // [0] is version 1.
  };

  Result<const State*> Find(const std::string& name) const
      SHADOOP_REQUIRES(mu_);

  mapreduce::JobRunner* runner_;
  IngestOptions options_;
  mutable Mutex mu_;
  std::map<std::string, State> datasets_ SHADOOP_GUARDED_BY(mu_);
};

/// The skew statistics of one version handle.
VersionStats ComputeVersionStats(const index::SpatialFileInfo& info,
                                 uint64_t version);

}  // namespace shadoop::catalog

#endif  // SHADOOP_CATALOG_DATASET_CATALOG_H_
