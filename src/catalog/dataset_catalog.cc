#include "catalog/dataset_catalog.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/string_util.h"
#include "index/record_shape.h"

namespace shadoop::catalog {
namespace {

using index::Partition;

/// Validation pass over an append batch: drops records that do not parse
/// as the dataset's shape (counted, like every other operation's
/// bad-record handling) and forwards the rest to the master-side router.
class IngestScanMapper : public mapreduce::Mapper {
 public:
  explicit IngestScanMapper(index::ShapeType shape) : shape_(shape) {}

  void Map(std::string_view record, mapreduce::MapContext& ctx) override {
    if (index::IsMetadataRecord(record)) return;
    auto env = index::RecordEnvelope(shape_, record);
    if (!env.ok()) {
      ctx.counters().Increment("ingest.bad_records");
      return;
    }
    ctx.counters().Increment("ingest.records");
    ctx.WriteOutput(record);
  }

 private:
  index::ShapeType shape_;
};

/// In-flight state of one partition while an append is being applied.
/// `records`/`envs` are materialized only for partitions the batch
/// touches; everything else stays a by-reference copy of the previous
/// version (copy-on-write).
struct PartState {
  Partition part;
  std::vector<std::string> records;
  std::vector<Envelope> envs;
  std::vector<std::string> pending;
  std::vector<Envelope> pending_envs;
  bool loaded = false;
  bool rewritten = false;
  bool unsplittable = false;

  size_t Count() const {
    return loaded ? records.size() : part.num_records + pending.size();
  }
};

bool IsPointEnv(const Envelope& e) {
  return e.min_x() == e.max_x() && e.min_y() == e.max_y();
}

/// Deterministic boundary stretch: when a batch grows the space, the
/// cells sitting exactly on the old space boundary extend outward to the
/// new one, so a disjoint tiling keeps covering every record and the
/// reference-point dedup of range queries stays exact. Boundary matching
/// is by exact coordinate — every partitioner constructs its outermost
/// cells at the exact space bounds.
int64_t StretchCells(std::vector<PartState>* parts,
                     const std::vector<Envelope>& batch_envs) {
  Envelope old_space;
  for (const PartState& ps : *parts) old_space.ExpandToInclude(ps.part.cell);
  Envelope target = old_space;
  for (const Envelope& e : batch_envs) target.ExpandToInclude(e);
  if (target == old_space) return 0;
  int64_t stretched = 0;
  for (PartState& ps : *parts) {
    const Envelope& c = ps.part.cell;
    const Envelope n(
        c.min_x() == old_space.min_x() ? target.min_x() : c.min_x(),
        c.min_y() == old_space.min_y() ? target.min_y() : c.min_y(),
        c.max_x() == old_space.max_x() ? target.max_x() : c.max_x(),
        c.max_y() == old_space.max_y() ? target.max_y() : c.max_y());
    if (!(n == c)) {
      ps.part.cell = n;
      ++stretched;
    }
  }
  return stretched;
}

/// The cell owning point `p` under the same half-open semantics the
/// range-query dedup applies (max edges closed only on the space
/// boundary); -1 when no cell covers the point (a gap left by a dropped
/// empty cell). Scans in id order, so ties are deterministic.
int OwnerByHalfOpen(const std::vector<PartState>& parts, const Point& p,
                    const Envelope& space) {
  for (size_t i = 0; i < parts.size(); ++i) {
    const Envelope& cell = parts[i].part.cell;
    if (cell.ContainsHalfOpen(p, cell.max_x() >= space.max_x(),
                              cell.max_y() >= space.max_y())) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

/// Routes a record no cell covers: the nearest cell absorbs it and grows
/// to include it, with its max edges nudged past the record so half-open
/// containment holds at query time.
int AbsorbIntoNearest(std::vector<PartState>* parts, const Envelope& env) {
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < parts->size(); ++i) {
    const double d = (*parts)[i].part.cell.MinDistance(env);
    if (d < best_dist) {
      best_dist = d;
      best = static_cast<int>(i);
    }
  }
  Envelope cell = (*parts)[best].part.cell;
  cell.ExpandToInclude(env);
  const double inf = std::numeric_limits<double>::infinity();
  (*parts)[best].part.cell = Envelope(
      cell.min_x(), cell.min_y(),
      env.max_x() >= cell.max_x() ? std::nextafter(cell.max_x(), inf)
                                  : cell.max_x(),
      env.max_y() >= cell.max_y() ? std::nextafter(cell.max_y(), inf)
                                  : cell.max_y());
  return best;
}

Status LoadPart(const hdfs::FileSystem& fs, index::ShapeType shape,
                PartState* ps) {
  SHADOOP_ASSIGN_OR_RETURN(
      std::vector<std::string> lines,
      fs.ReadBlock(ps->part.source_path, ps->part.block_index));
  ps->records.reserve(lines.size() + ps->pending.size());
  ps->envs.reserve(lines.size() + ps->pending.size());
  for (std::string& line : lines) {
    if (index::IsMetadataRecord(line)) continue;
    auto env = index::RecordEnvelope(shape, line);
    ps->envs.push_back(env.ok() ? env.value() : Envelope());
    ps->records.push_back(std::move(line));
  }
  ps->loaded = true;
  return Status::OK();
}

void MergePending(PartState* ps) {
  for (size_t i = 0; i < ps->pending.size(); ++i) {
    ps->records.push_back(std::move(ps->pending[i]));
    ps->envs.push_back(ps->pending_envs[i]);
  }
  ps->pending.clear();
  ps->pending_envs.clear();
  ps->rewritten = true;
}

/// One candidate cut of a partition cell at `mid` along `x_axis`.
/// Disjoint schemes replicate extended shapes crossing the midline, so
/// the children keep the tiling contract; points and overlapping schemes
/// route by owner/center. Returns false when either child ends up empty.
bool TrySplitAt(const Envelope& space, bool disjoint, const PartState& ps,
                bool x_axis, double mid, PartState* left, PartState* right) {
  const Envelope& cell = ps.part.cell;
  *left = PartState();
  *right = PartState();
  left->part = ps.part;
  right->part = ps.part;
  left->part.cell = x_axis
                        ? Envelope(cell.min_x(), cell.min_y(), mid, cell.max_y())
                        : Envelope(cell.min_x(), cell.min_y(), cell.max_x(), mid);
  right->part.cell =
      x_axis ? Envelope(mid, cell.min_y(), cell.max_x(), cell.max_y())
             : Envelope(cell.min_x(), mid, cell.max_x(), cell.max_y());
  std::vector<PartState> children(2);
  children[0].part.cell = left->part.cell;
  children[1].part.cell = right->part.cell;
  for (size_t i = 0; i < ps.records.size(); ++i) {
    const Envelope& env = ps.envs[i];
    if (disjoint && !IsPointEnv(env)) {
      if (env.Intersects(left->part.cell)) {
        left->records.push_back(ps.records[i]);
        left->envs.push_back(env);
      }
      if (env.Intersects(right->part.cell)) {
        right->records.push_back(ps.records[i]);
        right->envs.push_back(env);
      }
      continue;
    }
    int owner = OwnerByHalfOpen(children, env.Center(), space);
    if (owner < 0) {
      // A record on the cell's own max edge (only reachable through the
      // out-of-cell absorb path); keep it with the nearer child.
      owner = (x_axis ? env.Center().x : env.Center().y) < mid ? 0 : 1;
    }
    PartState* child = owner == 0 ? left : right;
    child->records.push_back(ps.records[i]);
    child->envs.push_back(env);
  }
  if (left->records.empty() || right->records.empty()) return false;
  left->loaded = right->loaded = true;
  left->rewritten = right->rewritten = true;
  return true;
}

/// Splits a degraded partition in two. Candidate cuts, in order: the cell
/// midpoint of the longer axis, the record-derived midpoint of that axis
/// (a clustered pile-up can sit entirely inside one half of a large
/// cell), then both again on the shorter axis. The first cut leaving two
/// nonempty children wins; a partition no cut can split reports false.
bool SplitPart(const Envelope& space, bool disjoint, const PartState& ps,
               PartState* left, PartState* right) {
  const Envelope& cell = ps.part.cell;
  const bool x_first = cell.Width() >= cell.Height();
  for (const bool x_axis : {x_first, !x_first}) {
    const double lo = x_axis ? cell.min_x() : cell.min_y();
    const double hi = x_axis ? cell.max_x() : cell.max_y();
    if (hi <= lo) continue;
    double center_lo = std::numeric_limits<double>::infinity();
    double center_hi = -std::numeric_limits<double>::infinity();
    for (const Envelope& env : ps.envs) {
      const double c = x_axis ? env.Center().x : env.Center().y;
      center_lo = std::min(center_lo, c);
      center_hi = std::max(center_hi, c);
    }
    for (double mid : {(lo + hi) / 2, (center_lo + center_hi) / 2}) {
      if (!(mid > lo && mid < hi)) continue;
      if (TrySplitAt(space, disjoint, ps, x_axis, mid, left, right)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

VersionStats ComputeVersionStats(const index::SpatialFileInfo& info,
                                 uint64_t version) {
  VersionStats stats;
  stats.version = version;
  stats.num_partitions = info.global_index.NumPartitions();
  for (const Partition& p : info.global_index.partitions()) {
    stats.num_records += p.num_records;
    stats.max_partition_records =
        std::max(stats.max_partition_records,
                 static_cast<uint64_t>(p.num_records));
  }
  if (stats.num_partitions > 0) {
    stats.mean_partition_records =
        static_cast<double>(stats.num_records) /
        static_cast<double>(stats.num_partitions);
  }
  if (stats.mean_partition_records > 0) {
    stats.skew = static_cast<double>(stats.max_partition_records) /
                 stats.mean_partition_records;
  }
  return stats;
}

std::string DatasetCatalog::DeltaPathFor(const std::string& data_path) {
  return data_path + "@delta";
}

std::string DatasetCatalog::CurrentPathFor(const std::string& data_path) {
  return data_path + "@current";
}

std::string DatasetCatalog::VersionMasterPathFor(const std::string& data_path,
                                                 uint64_t version) {
  if (version <= 1) return index::MasterPathFor(data_path);
  return data_path + "@v" + std::to_string(version) + "_master";
}

Result<const DatasetCatalog::State*> DatasetCatalog::Find(
    const std::string& name) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  return &it->second;
}

Status DatasetCatalog::Register(const std::string& name,
                                index::SpatialFileInfo info) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  MutexLock lock(&mu_);
  State state;
  state.data_path = info.data_path;
  state.versions.push_back(std::move(info));
  datasets_[name] = std::move(state);
  return Status::OK();
}

Result<index::SpatialFileInfo> DatasetCatalog::Create(
    const std::string& name, const std::string& source_path,
    const std::string& dest_path, const index::IndexBuildOptions& options,
    core::OpStats* stats) {
  index::IndexBuilder builder(runner_);
  SHADOOP_ASSIGN_OR_RETURN(index::SpatialFileInfo info,
                           builder.Build(source_path, dest_path, options));
  if (stats != nullptr) {
    stats->cost.total_ms += info.build_cost.total_ms;
    stats->cost.bytes_read += info.build_cost.bytes_read;
    stats->cost.bytes_shuffled += info.build_cost.bytes_shuffled;
    stats->cost.bytes_written += info.build_cost.bytes_written;
    stats->jobs_run += 2;  // Analysis + partition jobs.
  }
  SHADOOP_RETURN_NOT_OK(Register(name, info));
  return info;
}

Status DatasetCatalog::Open(const std::string& name,
                            const std::string& data_path) {
  const hdfs::FileSystem& fs = *runner_->file_system();
  State state;
  state.data_path = data_path;
  SHADOOP_ASSIGN_OR_RETURN(index::SpatialFileInfo v1,
                           index::LoadSpatialFile(fs, data_path));
  state.versions.push_back(std::move(v1));
  const std::string current = CurrentPathFor(data_path);
  if (fs.Exists(current)) {
    SHADOOP_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                             fs.ReadLines(current));
    if (lines.empty()) {
      return Status::ParseError("empty current-version file: " + current);
    }
    SHADOOP_ASSIGN_OR_RETURN(int64_t latest, ParseInt64(lines.front()));
    for (int64_t v = 2; v <= latest; ++v) {
      SHADOOP_ASSIGN_OR_RETURN(
          index::SpatialFileInfo info,
          index::LoadSpatialFileFromMaster(
              fs, data_path,
              VersionMasterPathFor(data_path, static_cast<uint64_t>(v))));
      state.versions.push_back(std::move(info));
    }
  }
  MutexLock lock(&mu_);
  datasets_[name] = std::move(state);
  return Status::OK();
}

Result<index::SpatialFileInfo> DatasetCatalog::Snapshot(
    const std::string& name, uint64_t version) const {
  MutexLock lock(&mu_);
  SHADOOP_ASSIGN_OR_RETURN(const State* state, Find(name));
  if (version == 0) return state->versions.back();
  if (version > state->versions.size()) {
    return Status::NotFound("dataset '" + name + "' has no version " +
                            std::to_string(version));
  }
  return state->versions[version - 1];
}

Result<uint64_t> DatasetCatalog::LatestVersion(const std::string& name) const {
  MutexLock lock(&mu_);
  SHADOOP_ASSIGN_OR_RETURN(const State* state, Find(name));
  return static_cast<uint64_t>(state->versions.size());
}

Result<VersionStats> DatasetCatalog::Stats(const std::string& name,
                                           uint64_t version) const {
  MutexLock lock(&mu_);
  SHADOOP_ASSIGN_OR_RETURN(const State* state, Find(name));
  const uint64_t v =
      version == 0 ? static_cast<uint64_t>(state->versions.size()) : version;
  if (v == 0 || v > state->versions.size()) {
    return Status::NotFound("dataset '" + name + "' has no version " +
                            std::to_string(version));
  }
  return ComputeVersionStats(state->versions[v - 1], v);
}

bool DatasetCatalog::Contains(const std::string& name) const {
  MutexLock lock(&mu_);
  return datasets_.count(name) > 0;
}

Result<uint64_t> DatasetCatalog::Append(const std::string& name,
                                        const std::string& batch_path,
                                        core::OpStats* stats) {
  MutexLock lock(&mu_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no such dataset: " + name);
  }
  State& state = it->second;
  const index::SpatialFileInfo& latest = state.versions.back();
  if (latest.global_index.NumPartitions() == 0) {
    return Status::InvalidArgument("dataset '" + name + "' has no partitions");
  }
  hdfs::FileSystem* fs = runner_->file_system();
  const index::ShapeType shape = latest.shape;
  const index::PartitionScheme scheme = latest.global_index.scheme();
  const bool disjoint = latest.global_index.IsDisjoint();

  // Scan job: validate the batch and surface its records + counters.
  mapreduce::JobConfig scan;
  scan.name = "ingest-scan";
  SHADOOP_ASSIGN_OR_RETURN(scan.splits,
                           mapreduce::MakeBlockSplits(*fs, batch_path));
  scan.mapper = [shape]() { return std::make_unique<IngestScanMapper>(shape); };
  mapreduce::JobResult scan_result = runner_->Run(scan);
  SHADOOP_RETURN_NOT_OK(scan_result.status);
  if (stats != nullptr) stats->Accumulate(scan_result);

  std::vector<std::string> batch_records;
  std::vector<Envelope> batch_envs;
  batch_records.reserve(scan_result.output.size());
  batch_envs.reserve(scan_result.output.size());
  for (std::string& rec : scan_result.output) {
    auto env = index::RecordEnvelope(shape, rec);
    if (!env.ok()) continue;  // The mapper already filtered; defensive.
    batch_envs.push_back(env.value());
    batch_records.push_back(std::move(rec));
  }

  // Copy the previous version's partitions, resolving every source path
  // explicitly — from here on the new version is self-describing.
  std::vector<PartState> parts;
  parts.reserve(latest.global_index.NumPartitions());
  for (const Partition& p : latest.global_index.partitions()) {
    PartState ps;
    ps.part = p;
    ps.part.source_path = index::PartitionSourcePath(p, state.data_path);
    parts.push_back(std::move(ps));
  }

  const int64_t stretched = StretchCells(&parts, batch_envs);
  Envelope space;
  for (const PartState& ps : parts) space.ExpandToInclude(ps.part.cell);
  for (const Envelope& e : batch_envs) space.ExpandToInclude(e);

  // Route every batch record against the frozen boundaries. Disjoint
  // schemes replicate extended shapes into every overlapping cell (the
  // bulk builder's contract); points and overlapping schemes store one
  // copy, chosen with the dedup's own half-open ownership rule so
  // incremental layouts answer queries identically to bulk ones.
  int64_t replicated = 0;
  int64_t out_of_cell = 0;
  for (size_t i = 0; i < batch_records.size(); ++i) {
    const Envelope& env = batch_envs[i];
    std::vector<int> targets;
    if (disjoint && !IsPointEnv(env)) {
      for (size_t j = 0; j < parts.size(); ++j) {
        if (parts[j].part.cell.Intersects(env)) {
          targets.push_back(static_cast<int>(j));
        }
      }
    } else {
      const int owner = OwnerByHalfOpen(parts, env.Center(), space);
      if (owner >= 0) targets.push_back(owner);
    }
    if (targets.empty()) {
      targets.push_back(AbsorbIntoNearest(&parts, env));
      ++out_of_cell;
    }
    replicated += static_cast<int64_t>(targets.size()) - 1;
    for (int t : targets) {
      parts[t].pending.push_back(batch_records[i]);
      parts[t].pending_envs.push_back(env);
    }
  }

  // Materialize the touched partitions (old records + routed ones).
  for (PartState& ps : parts) {
    if (ps.pending.empty()) continue;
    SHADOOP_RETURN_NOT_OK(LoadPart(*fs, shape, &ps));
    MergePending(&ps);
  }
  const int64_t appended_partitions = static_cast<int64_t>(
      std::count_if(parts.begin(), parts.end(),
                    [](const PartState& ps) { return ps.rewritten; }));

  // Skew-triggered incremental repartitioning: while max/mean partition
  // records exceeds the threshold, split only the degraded partitions.
  int64_t split_partitions = 0;
  for (int round = 0; round < options_.max_split_rounds; ++round) {
    if (parts.size() <= 1 && round == 0 && parts[0].Count() < 2) break;
    uint64_t total = 0;
    uint64_t max_count = 0;
    for (const PartState& ps : parts) {
      total += ps.Count();
      max_count = std::max(max_count, static_cast<uint64_t>(ps.Count()));
    }
    const double mean =
        static_cast<double>(total) / static_cast<double>(parts.size());
    if (mean <= 0 ||
        static_cast<double>(max_count) <= options_.skew_threshold * mean) {
      break;
    }
    std::vector<PartState> next;
    next.reserve(parts.size() + 1);
    bool any_split = false;
    for (PartState& ps : parts) {
      const double count = static_cast<double>(ps.Count());
      if (ps.unsplittable || ps.Count() < 2 ||
          count <= options_.skew_threshold * mean) {
        next.push_back(std::move(ps));
        continue;
      }
      if (!ps.loaded) {
        SHADOOP_RETURN_NOT_OK(LoadPart(*fs, shape, &ps));
      }
      PartState left;
      PartState right;
      if (!SplitPart(space, disjoint, ps, &left, &right)) {
        ps.unsplittable = true;
        next.push_back(std::move(ps));
        continue;
      }
      any_split = true;
      ++split_partitions;
      next.push_back(std::move(left));
      next.push_back(std::move(right));
    }
    parts = std::move(next);
    if (!any_split) break;
  }

  // Copy-on-write layout: rewritten partitions go into the append-only
  // delta file (one partition per block, like the bulk layout); shared
  // partitions keep their previous blocks by reference.
  const bool any_rewritten =
      std::any_of(parts.begin(), parts.end(),
                  [](const PartState& ps) { return ps.rewritten; });
  if (any_rewritten) {
    const std::string delta_path = DeltaPathFor(state.data_path);
    size_t base_block = 0;
    std::unique_ptr<hdfs::FileWriter> writer;
    if (fs->Exists(delta_path)) {
      SHADOOP_ASSIGN_OR_RETURN(hdfs::FileMeta meta,
                               fs->GetFileMeta(delta_path));
      base_block = meta.blocks.size();
      SHADOOP_ASSIGN_OR_RETURN(writer, fs->Append(delta_path));
    } else {
      SHADOOP_ASSIGN_OR_RETURN(writer, fs->Create(delta_path));
    }
    writer->set_auto_seal(false);  // One partition == one block, exactly.
    for (PartState& ps : parts) {
      if (!ps.rewritten) continue;
      ps.part.source_path = delta_path;
      ps.part.block_index = base_block++;
      ps.part.num_records = ps.records.size();
      ps.part.num_bytes = 0;
      Envelope mbr;
      for (const Envelope& e : ps.envs) mbr.ExpandToInclude(e);
      ps.part.mbr = mbr;
      if (latest.has_local_indexes) {
        const std::string header = index::EncodeLocalIndexHeader(ps.envs);
        ps.part.num_bytes += header.size() + 1;
        writer->Append(header);
      }
      for (const std::string& rec : ps.records) {
        ps.part.num_bytes += rec.size() + 1;
        writer->Append(rec);
      }
      writer->EndBlock();
    }
    SHADOOP_RETURN_NOT_OK(writer->Close());
  }

  std::vector<Partition> new_partitions;
  new_partitions.reserve(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    parts[i].part.id = static_cast<int>(i);
    new_partitions.push_back(std::move(parts[i].part));
  }

  const uint64_t version = static_cast<uint64_t>(state.versions.size()) + 1;
  index::SpatialFileInfo next = latest;
  next.master_path = VersionMasterPathFor(state.data_path, version);
  next.global_index = index::GlobalIndex(scheme, std::move(new_partitions));

  // Persist the version master, then publish it through the CURRENT
  // pointer (write-temp + Replace, the catalog's atomic swap).
  std::vector<std::string> master_lines;
  master_lines.push_back(std::string("#scheme=") +
                         index::PartitionSchemeName(scheme) +
                         " shape=" + index::ShapeTypeName(shape) +
                         (latest.has_local_indexes ? " lidx=1" : ""));
  for (std::string& line : next.global_index.ToLines()) {
    master_lines.push_back(std::move(line));
  }
  SHADOOP_RETURN_NOT_OK(fs->WriteLines(next.master_path, master_lines));
  const std::string current = CurrentPathFor(state.data_path);
  const std::string tmp = current + ".tmp";
  if (fs->Exists(tmp)) SHADOOP_RETURN_NOT_OK(fs->Delete(tmp));
  SHADOOP_RETURN_NOT_OK(fs->WriteLines(tmp, {std::to_string(version)}));
  SHADOOP_RETURN_NOT_OK(fs->Replace(tmp, current));

  // Nonzero-only ingest counters: appends that did nothing special leave
  // no trace, preserving golden-counter parity for bulk-only workloads.
  if (stats != nullptr) {
    const int64_t shared =
        static_cast<int64_t>(parts.size()) - appended_partitions -
        2 * split_partitions;
    if (appended_partitions > 0) {
      stats->counters.Increment("ingest.appended_partitions",
                                appended_partitions);
    }
    if (shared > 0) stats->counters.Increment("ingest.shared_partitions",
                                              shared);
    if (replicated > 0) {
      stats->counters.Increment("ingest.replicated_records", replicated);
    }
    if (split_partitions > 0) {
      stats->counters.Increment("ingest.split_partitions", split_partitions);
    }
    if (stretched > 0) {
      stats->counters.Increment("ingest.stretched_cells", stretched);
    }
    if (out_of_cell > 0) {
      stats->counters.Increment("ingest.out_of_cell_records", out_of_cell);
    }
  }

  state.versions.push_back(std::move(next));
  return version;
}

}  // namespace shadoop::catalog
